#include "decomp/decomp.h"

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "jo/classical.h"
#include "jo/join_tree.h"
#include "jo/query.h"
#include "jo/query_generator.h"
#include "util/random.h"

namespace qjo {
namespace {

Query MakeGraphQuery(QueryGraphType type, int relations, uint64_t seed) {
  Rng rng(seed);
  QueryGenOptions gen;
  gen.num_relations = relations;
  gen.graph_type = type;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  auto query = GenerateQuery(gen, rng);
  EXPECT_TRUE(query.ok());
  return *std::move(query);
}

/// Fast test budgets: two LNS rounds with small sub-solver sweeps are
/// enough to exercise every stage (partition, sub-solve, stitch, repair).
DecompOptions FastOptions() {
  DecompOptions options;
  options.max_rounds = 2;
  options.stall_rounds = 0;  // always run both partition phases
  options.subsolver_reads = 2;
  options.subsolver_sweeps = 24;
  return options;
}

TEST(PartitionWindowsTest, DisjointCoverWithoutPhase) {
  const auto windows = PartitionWindows(30, 9, 0);
  ASSERT_EQ(windows.size(), 4u);
  int expected_start = 0;
  for (const DecompWindow& w : windows) {
    EXPECT_EQ(w.start, expected_start);
    EXPECT_GE(w.length, 2);
    expected_start += w.length;
  }
  EXPECT_EQ(expected_start, 30);  // disjoint and complete
  EXPECT_EQ(windows.back().length, 3);  // trailing partial window
}

TEST(PartitionWindowsTest, PhaseShiftsTheCutPoints) {
  const auto windows = PartitionWindows(30, 9, 4);
  ASSERT_FALSE(windows.empty());
  // Leading partial window of `phase` positions, then full windows.
  EXPECT_EQ(windows[0].start, 0);
  EXPECT_EQ(windows[0].length, 4);
  EXPECT_EQ(windows[1].start, 4);
  EXPECT_EQ(windows[1].length, 9);
  int covered = 0;
  for (const DecompWindow& w : windows) covered += w.length;
  EXPECT_EQ(covered, 30);
}

TEST(PartitionWindowsTest, DropsDegenerateWindows) {
  // t=5, window=4: the trailing window would be a single position.
  const auto windows = PartitionWindows(5, 4, 0);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].length, 4);
  // A window larger than t yields one full-span window.
  const auto whole = PartitionWindows(5, 9, 0);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].start, 0);
  EXPECT_EQ(whole[0].length, 5);
}

TEST(BuildWindowSubproblemTest, FoldsPrefixIntoPseudoRelation) {
  Query q;
  for (int i = 0; i < 5; ++i) {
    q.AddRelation("R" + std::to_string(i), 10.0 * (i + 1));
  }
  for (int i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(q.AddPredicate(i, i + 1, 0.5).ok());
  }
  const std::vector<int> order = {0, 1, 2, 3, 4};
  auto sub = BuildWindowSubproblem(q, order, DecompWindow{2, 3});
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->has_prefix);
  EXPECT_EQ(sub->relations, (std::vector<int>{2, 3, 4}));
  ASSERT_EQ(sub->subquery.num_relations(), 4);
  // Pseudo-relation 0 carries the joined prefix cardinality |R0 ⋈ R1|.
  EXPECT_DOUBLE_EQ(sub->subquery.relation(0).cardinality,
                   q.JoinCardinality(0b11));
  // The chain edge (1,2) becomes a prefix predicate; (2,3) and (3,4)
  // carry over window-internally. Nothing else.
  ASSERT_EQ(sub->subquery.num_predicates(), 3);
  EXPECT_DOUBLE_EQ(sub->subquery.SelectivityBetween(0b1, 1), 0.5);
  EXPECT_DOUBLE_EQ(sub->subquery.SelectivityBetween(0b10, 2), 0.5);
  EXPECT_DOUBLE_EQ(sub->subquery.SelectivityBetween(0b100, 3), 0.5);
  // Cost equivalence: appending the window relations to the prefix adds
  // the same intermediates in the subquery as in the full query.
  const CostBreakdown full = EvaluateCost(q, LeftDeepOrder(order));
  const CostBreakdown local =
      EvaluateCost(sub->subquery, LeftDeepOrder({0, 1, 2, 3}));
  ASSERT_EQ(local.intermediate_cardinalities.size(), 3u);
  EXPECT_DOUBLE_EQ(local.intermediate_cardinalities[0],
                   full.intermediate_cardinalities[1]);
  EXPECT_DOUBLE_EQ(local.intermediate_cardinalities[1],
                   full.intermediate_cardinalities[2]);
  EXPECT_DOUBLE_EQ(local.intermediate_cardinalities[2],
                   full.intermediate_cardinalities[3]);
}

TEST(BuildWindowSubproblemTest, LeadingWindowHasNoPrefix) {
  Query q;
  for (int i = 0; i < 4; ++i) q.AddRelation("R" + std::to_string(i), 10.0);
  ASSERT_TRUE(q.AddPredicate(0, 1, 0.5).ok());
  const std::vector<int> order = {3, 2, 1, 0};
  auto sub = BuildWindowSubproblem(q, order, DecompWindow{0, 2});
  ASSERT_TRUE(sub.ok());
  EXPECT_FALSE(sub->has_prefix);
  EXPECT_EQ(sub->relations, (std::vector<int>{3, 2}));
  EXPECT_EQ(sub->subquery.num_relations(), 2);
  EXPECT_EQ(sub->subquery.num_predicates(), 0);  // 3-2 are not connected
}

TEST(DecompTest, RejectsDegenerateInputs) {
  Query tiny;
  tiny.AddRelation("R0", 10.0);
  DecompOptions options;
  Rng rng(1);
  EXPECT_FALSE(OptimizeJoinOrderDecomposed(tiny, options, rng).ok());

  Query q = MakeGraphQuery(QueryGraphType::kChain, 5, 11);
  DecompOptions unbounded;
  unbounded.max_rounds = 0;
  unbounded.run.deadline_ms = -1.0;
  EXPECT_FALSE(OptimizeJoinOrderDecomposed(q, unbounded, rng).ok());
}

struct LargeCase {
  QueryGraphType type;
  int relations;
};

class DecompLargeQueryTest : public ::testing::TestWithParam<LargeCase> {};

TEST_P(DecompLargeQueryTest, ValidTreeCostAtMostGreedy) {
  const LargeCase c = GetParam();
  const Query q = MakeGraphQuery(c.type, c.relations, 31 + c.relations);
  Rng rng(7);
  auto report = OptimizeJoinOrderDecomposed(q, FastOptions(), rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Valid join tree covering every relation.
  auto valid = LeftDeepOrder::Create(report->order.order(), q);
  ASSERT_TRUE(valid.ok()) << QueryGraphTypeName(c.type);
  // Never worse than the greedy seed, and self-consistent.
  const auto greedy = OptimizeGreedy(q);
  ASSERT_TRUE(greedy.ok());
  EXPECT_DOUBLE_EQ(report->greedy_cost, greedy->cost);
  EXPECT_LE(report->cost, greedy->cost);
  EXPECT_DOUBLE_EQ(report->cost, Cost(q, report->order));
  EXPECT_GT(report->rounds, 0);
  EXPECT_GT(report->windows_solved, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecompLargeQueryTest,
    ::testing::Values(LargeCase{QueryGraphType::kChain, 30},
                      LargeCase{QueryGraphType::kStar, 30},
                      LargeCase{QueryGraphType::kCycle, 30},
                      LargeCase{QueryGraphType::kClique, 30},
                      LargeCase{QueryGraphType::kChain, 50},
                      LargeCase{QueryGraphType::kCycle, 50}));

TEST(DecompTest, DeterministicAcrossParallelism) {
  const Query q = MakeGraphQuery(QueryGraphType::kCycle, 30, 23);
  std::optional<DecompReport> baseline;
  for (int parallelism : {1, 4, 8}) {
    DecompOptions options = FastOptions();
    options.run.parallelism = parallelism;
    Rng rng(99);
    auto report = OptimizeJoinOrderDecomposed(q, options, rng);
    ASSERT_TRUE(report.ok()) << "parallelism " << parallelism;
    if (!baseline.has_value()) {
      baseline = *std::move(report);
      continue;
    }
    // A rounds-bounded run is bit-identical at every parallelism level.
    EXPECT_EQ(report->order.order(), baseline->order.order())
        << "parallelism " << parallelism;
    EXPECT_EQ(report->cost, baseline->cost);
    EXPECT_EQ(report->rounds, baseline->rounds);
    EXPECT_EQ(report->windows_solved, baseline->windows_solved);
    EXPECT_EQ(report->improvements, baseline->improvements);
    EXPECT_EQ(report->repairs, baseline->repairs);
  }
}

TEST(DecompTest, SharedCacheAbsorbsRepeatedWindowShapes) {
  const Query q = MakeGraphQuery(QueryGraphType::kChain, 30, 41);
  QuboBuildCache cache(256);
  DecompOptions options = FastOptions();
  options.max_rounds = 4;
  options.stall_rounds = 0;
  options.cache = &cache;
  Rng rng(5);
  ASSERT_TRUE(OptimizeJoinOrderDecomposed(q, options, rng).ok());
  const QuboBuildCache::Stats stats = cache.stats();
  // Rounds 3 and 4 repeat the phase-0/phase-1 partitions of rounds 1 and
  // 2 over an (unimproved or identical-shape) incumbent: the cache must
  // see hits, not rebuild every window.
  EXPECT_GT(stats.hits, 0u) << "misses=" << stats.misses;
}

TEST(DecompTest, StopTokenShortCircuits) {
  const Query q = MakeGraphQuery(QueryGraphType::kChain, 30, 17);
  DecompOptions options = FastOptions();
  std::atomic<bool> stop{true};  // pre-cancelled
  options.run.stop = &stop;
  Rng rng(3);
  auto report = OptimizeJoinOrderDecomposed(q, options, rng);
  ASSERT_TRUE(report.ok());
  // Still a valid plan (the greedy seed), with no rounds run.
  EXPECT_EQ(report->rounds, 0);
  auto valid = LeftDeepOrder::Create(report->order.order(), q);
  EXPECT_TRUE(valid.ok());
  EXPECT_DOUBLE_EQ(report->cost, report->greedy_cost);
}

TEST(DecompTest, ObservabilityRecordsSpansAndCounters) {
  const Query q = MakeGraphQuery(QueryGraphType::kStar, 30, 13);
  TraceRecorder trace;
  MetricsRegistry metrics;
  DecompOptions options = FastOptions();
  options.run.trace = &trace;
  options.run.metrics = &metrics;
  Rng rng(7);
  auto report = OptimizeJoinOrderDecomposed(q, options, rng);
  ASSERT_TRUE(report.ok());
  const std::vector<TraceEvent> events = trace.Snapshot();
  const auto has_span = [&](const std::string& name) {
    for (const TraceEvent& e : events) {
      if (e.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_span("decomp.partition"));
  EXPECT_TRUE(has_span("decomp.subsolve.0"));
  EXPECT_TRUE(has_span("decomp.stitch"));
  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counters.at("decomp.rounds"),
            static_cast<uint64_t>(report->rounds));
  EXPECT_EQ(snapshot.counters.at("decomp.windows_solved"),
            static_cast<uint64_t>(report->windows_solved));
  EXPECT_TRUE(snapshot.counters.contains("decomp.improvements"));
  EXPECT_TRUE(snapshot.counters.contains("decomp.repairs"));
}

}  // namespace
}  // namespace qjo

#include "util/simd.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace qjo {
namespace {

// Every tier available on this host+build. The scalar tier is the oracle
// and always present; wider tiers join when the compiler produced them
// and the CPU can run them.
std::vector<const SimdOps*> AvailableTiers() {
  std::vector<const SimdOps*> tiers;
  for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kSse2, SimdIsa::kAvx2,
                      SimdIsa::kAvx512}) {
    if (const SimdOps* ops = SimdOpsFor(isa)) tiers.push_back(ops);
  }
  return tiers;
}

std::vector<float> RandomFloats(Rng& rng, int64_t count) {
  std::vector<float> v(count);
  for (auto& x : v) x = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  return v;
}

std::vector<double> RandomDoubles(Rng& rng, int64_t count) {
  std::vector<double> v(count);
  for (auto& x : v) x = rng.UniformDouble() * 2.0 - 1.0;
  return v;
}

// Bitwise comparison: the cross-tier contract is exact equality of
// produced bit patterns, not epsilon closeness.
template <typename T>
void ExpectBitsEqual(const std::vector<T>& got, const std::vector<T>& want,
                     const char* tier) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(), got.size() * sizeof(T)))
      << "tier " << tier << " diverged from scalar";
}

TEST(SimdTest, ScalarTierAlwaysAvailable) {
  const SimdOps* scalar = SimdOpsFor(SimdIsa::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->isa, SimdIsa::kScalar);
  ASSERT_NE(scalar->mixer_low_block, nullptr);
  ASSERT_NE(scalar->butterfly_rows, nullptr);
  ASSERT_NE(scalar->phase_rows, nullptr);
  ASSERT_NE(scalar->sa_row_update, nullptr);
  ASSERT_NE(scalar->sqa_row_update, nullptr);
}

TEST(SimdTest, DispatchResolvesToAvailableTier) {
  const SimdOps& ops = Simd();
  EXPECT_NE(SimdOpsFor(ops.isa), nullptr);
  EXPECT_STREQ(ops.name, SimdIsaName(ops.isa));
}

TEST(SimdTest, ParseSimdIsaRoundTrips) {
  for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kSse2, SimdIsa::kAvx2,
                      SimdIsa::kAvx512}) {
    SimdIsa parsed;
    ASSERT_TRUE(ParseSimdIsa(SimdIsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  SimdIsa parsed;
  EXPECT_FALSE(ParseSimdIsa("neon", &parsed));
  EXPECT_FALSE(ParseSimdIsa("", &parsed));
  EXPECT_FALSE(ParseSimdIsa(nullptr, &parsed));
}

TEST(SimdTest, SetSimdSwitchesAndRestores) {
  const SimdIsa original = Simd().isa;
  ASSERT_TRUE(SetSimd(SimdIsa::kScalar));
  EXPECT_EQ(Simd().isa, SimdIsa::kScalar);
  ASSERT_TRUE(SetSimd(original));
  EXPECT_EQ(Simd().isa, original);
}

// Butterfly rows across tiers, including odd run lengths that exercise
// the 256/128-bit and scalar tails inside the wide TUs.
TEST(SimdKernelsBitIdenticalTest, ButterflyRowsAcrossTiers) {
  Rng rng(20260808);
  const float c = 0.731689f;
  const float sn = -0.681642f;
  for (int64_t floats : {2, 4, 6, 8, 10, 14, 16, 18, 30, 32, 34, 64, 126}) {
    const std::vector<float> lo0 = RandomFloats(rng, floats);
    const std::vector<float> hi0 = RandomFloats(rng, floats);
    std::vector<float> lo_ref = lo0, hi_ref = hi0;
    SimdOpsFor(SimdIsa::kScalar)
        ->butterfly_rows(lo_ref.data(), hi_ref.data(), floats, c, sn);
    for (const SimdOps* ops : AvailableTiers()) {
      std::vector<float> lo = lo0, hi = hi0;
      ops->butterfly_rows(lo.data(), hi.data(), floats, c, sn);
      ExpectBitsEqual(lo, lo_ref, ops->name);
      ExpectBitsEqual(hi, hi_ref, ops->name);
    }
  }
}

TEST(SimdKernelsBitIdenticalTest, MixerLowBlockAcrossTiers) {
  Rng rng(99);
  const float c = 0.921061f;
  const float sn = 0.389418f;
  // (bsz, block_qubits): powers of two down to the smallest block, with
  // both full and partial qubit counts.
  const std::pair<int64_t, int>
      cases[] = {{2, 1}, {4, 2}, {8, 3}, {8, 2}, {64, 6}, {256, 8}, {256, 5}};
  for (const auto& [bsz, bq] : cases) {
    const std::vector<float> a0 = RandomFloats(rng, 2 * bsz);
    std::vector<float> a_ref = a0;
    SimdOpsFor(SimdIsa::kScalar)->mixer_low_block(a_ref.data(), bsz, bq, c, sn);
    for (const SimdOps* ops : AvailableTiers()) {
      std::vector<float> a = a0;
      ops->mixer_low_block(a.data(), bsz, bq, c, sn);
      ExpectBitsEqual(a, a_ref, ops->name);
    }
  }
}

TEST(SimdKernelsBitIdenticalTest, PhaseRowsAcrossTiers) {
  Rng rng(7);
  for (int64_t floats : {2, 4, 6, 8, 10, 16, 22, 32, 34, 62}) {
    const std::vector<float> a0 = RandomFloats(rng, floats);
    const std::vector<float> t = RandomFloats(rng, floats);
    std::vector<float> a_ref = a0;
    SimdOpsFor(SimdIsa::kScalar)->phase_rows(a_ref.data(), t.data(), floats);
    for (const SimdOps* ops : AvailableTiers()) {
      std::vector<float> a = a0;
      ops->phase_rows(a.data(), t.data(), floats);
      ExpectBitsEqual(a, a_ref, ops->name);
    }
  }
}

// Replica-plane updates: lane counts deliberately include 1, odd values,
// and non-multiples of every vector width to exercise the tails.
TEST(SimdKernelsBitIdenticalTest, SaRowUpdateAcrossTiersAndLaneTails) {
  Rng rng(4242);
  const int n = 23;
  for (int64_t lanes : {1, 3, 4, 7, 8, 13, 16, 17}) {
    const int count = 11;
    std::vector<int32_t> cols(count);
    for (auto& col : cols) {
      col = static_cast<int32_t>(rng.UniformDouble() * n);
    }
    const std::vector<double> w = RandomDoubles(rng, count);
    std::vector<double> dir = RandomDoubles(rng, lanes);
    for (int64_t r = 0; r < lanes; ++r) {
      dir[r] = (r % 3 == 0) ? 0.0 : ((r % 2 == 0) ? 1.0 : -1.0);
    }
    const std::vector<double> fields0 = RandomDoubles(rng, n * lanes);
    std::vector<double> ref = fields0;
    SimdOpsFor(SimdIsa::kScalar)
        ->sa_row_update(ref.data(), cols.data(), w.data(), count, lanes,
                        dir.data());
    for (const SimdOps* ops : AvailableTiers()) {
      std::vector<double> fields = fields0;
      ops->sa_row_update(fields.data(), cols.data(), w.data(), count, lanes,
                         dir.data());
      ExpectBitsEqual(fields, ref, ops->name);
    }
  }
}

TEST(SimdKernelsBitIdenticalTest, SqaRowUpdateAcrossTiersAndLaneTails) {
  Rng rng(31337);
  const int n = 17;
  const int num_edges = 29;
  for (int64_t lanes : {1, 3, 4, 7, 8, 13, 16, 17}) {
    const int count = 9;
    std::vector<int32_t> cols(count);
    std::vector<int32_t> edge_ids(count);
    for (int k = 0; k < count; ++k) {
      cols[k] = static_cast<int32_t>(rng.UniformDouble() * n);
      edge_ids[k] = static_cast<int32_t>(rng.UniformDouble() * num_edges);
    }
    const std::vector<double> w_planes = RandomDoubles(rng, num_edges * lanes);
    std::vector<double> dir(lanes);
    for (int64_t r = 0; r < lanes; ++r) {
      dir[r] = (r % 3 == 0) ? 0.0 : ((r % 2 == 0) ? 2.0 : -2.0);
    }
    const std::vector<double> fields0 = RandomDoubles(rng, n * lanes);
    std::vector<double> ref = fields0;
    SimdOpsFor(SimdIsa::kScalar)
        ->sqa_row_update(ref.data(), cols.data(), edge_ids.data(),
                         w_planes.data(), count, lanes, dir.data());
    for (const SimdOps* ops : AvailableTiers()) {
      std::vector<double> fields = fields0;
      ops->sqa_row_update(fields.data(), cols.data(), edge_ids.data(),
                          w_planes.data(), count, lanes, dir.data());
      ExpectBitsEqual(fields, ref, ops->name);
    }
  }
}

}  // namespace
}  // namespace qjo

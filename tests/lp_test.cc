#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "jo/query.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "lp/model.h"
#include "util/random.h"

namespace qjo {
namespace {

/// The paper's Fig. 2 / Table 2 base instance: three relations of
/// cardinality 10, chain-first predicates with selectivity 0.1, and a
/// single threshold theta_0 = 10.
Query MakePaperInstance(int num_predicates) {
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 10);
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {0, 2}};
  for (int p = 0; p < num_predicates; ++p) {
    EXPECT_TRUE(q.AddPredicate(edges[p].first, edges[p].second, 0.1).ok());
  }
  return q;
}

JoMilpOptions PaperOptions(double omega = 1.0) {
  JoMilpOptions options;
  options.thresholds = {10.0};
  options.omega = omega;
  return options;
}

TEST(LinearExprTest, CanonicalizeMergesAndDropsZeros) {
  LinearExpr e;
  e.AddTerm(0, 1.0);
  e.AddTerm(1, 2.0);
  e.AddTerm(0, -1.0);
  e.Canonicalize();
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].first, 1);
  EXPECT_DOUBLE_EQ(e.terms()[0].second, 2.0);
}

TEST(LinearExprTest, Evaluate) {
  LinearExpr e;
  e.AddTerm(0, 2.0);
  e.AddTerm(2, -1.0);
  e.AddConstant(0.5);
  EXPECT_DOUBLE_EQ(e.Evaluate({1, 0, 1}), 1.5);
}

TEST(LpModelTest, FeasibilityChecks) {
  LpModel m;
  const int x = m.AddVariable("x");
  const int y = m.AddVariable("y");
  LpConstraint le;
  le.expr.AddTerm(x, 1.0);
  le.expr.AddTerm(y, 1.0);
  le.sense = Sense::kLe;
  le.rhs = 1.0;
  m.AddConstraint(le);
  LpConstraint eq;
  eq.expr.AddTerm(x, 1.0);
  eq.sense = Sense::kEq;
  eq.rhs = 1.0;
  m.AddConstraint(eq);
  EXPECT_TRUE(m.IsFeasible({1, 0}));
  EXPECT_FALSE(m.IsFeasible({1, 1}));  // violates <=
  EXPECT_FALSE(m.IsFeasible({0, 1}));  // violates ==
}

TEST(JoEncoderTest, RejectsBadInputs) {
  Query q = MakePaperInstance(0);
  JoMilpOptions options;
  EXPECT_FALSE(EncodeJoAsMilp(q, options).ok());  // no thresholds
  options.thresholds = {10.0, 10.0};
  EXPECT_FALSE(EncodeJoAsMilp(q, options).ok());  // not increasing
  options.thresholds = {10.0};
  options.omega = 0.0;
  EXPECT_FALSE(EncodeJoAsMilp(q, options).ok());  // bad omega
  Query tiny;
  tiny.AddRelation("R", 10);
  EXPECT_FALSE(EncodeJoAsMilp(tiny, PaperOptions()).ok());
}

TEST(JoEncoderTest, MaxLogCardinalityLemma52) {
  Query q;
  q.AddRelation("A", 1000);  // log 3
  q.AddRelation("B", 10);    // log 1
  q.AddRelation("C", 100);   // log 2
  auto model = EncodeJoAsMilp(q, PaperOptions());
  ASSERT_TRUE(model.ok());
  // Outer operand of join j holds j+1 relations; largest-first.
  EXPECT_NEAR(model->MaxLogCardinality(0), 3.0, 1e-9);
  EXPECT_NEAR(model->MaxLogCardinality(1), 5.0, 1e-9);
}

/// The paper's qubit ladder: predicates 0..3 at omega=1 give 18/21/24/27
/// binary variables, and precisions 0..3 decimals at P=0 give the same
/// ladder (Sec. 4.1, Fig. 2).
TEST(JoEncoderTest, PaperQubitLadderByPredicates) {
  const int expected[] = {18, 21, 24, 27};
  for (int p = 0; p <= 3; ++p) {
    Query q = MakePaperInstance(p);
    auto milp = EncodeJoAsMilp(q, PaperOptions());
    ASSERT_TRUE(milp.ok());
    auto bilp = LowerToBilp(milp->model(), 1.0);
    ASSERT_TRUE(bilp.ok());
    EXPECT_EQ(bilp->num_variables(), expected[p]) << "predicates=" << p;
  }
}

TEST(JoEncoderTest, PaperQubitLadderByPrecision) {
  const double omegas[] = {1.0, 0.1, 0.01, 0.001};
  const int expected[] = {18, 21, 24, 27};
  for (int i = 0; i < 4; ++i) {
    Query q = MakePaperInstance(0);
    auto milp = EncodeJoAsMilp(q, PaperOptions(omegas[i]));
    ASSERT_TRUE(milp.ok());
    auto bilp = LowerToBilp(milp->model(), omegas[i]);
    ASSERT_TRUE(bilp.ok());
    EXPECT_EQ(bilp->num_variables(), expected[i]) << "omega=" << omegas[i];
  }
}

/// Table 1: variable/constraint tallies of the pruned vs original model.
TEST(JoEncoderTest, Table1Counts) {
  Rng rng(3);
  QueryGenOptions gen;
  gen.num_relations = 6;
  gen.graph_type = QueryGraphType::kCycle;
  auto query = GenerateQuery(gen, rng);
  ASSERT_TRUE(query.ok());
  const int t = query->num_relations();
  const int j = query->num_joins();
  const int p = query->num_predicates();
  JoMilpOptions options;
  options.thresholds = MakeGeometricThresholds(*query, 3);
  const int r = 3;

  auto pruned = EncodeJoAsMilp(*query, options);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->stats().tio, t * j);
  EXPECT_EQ(pruned->stats().tii, t * j);
  EXPECT_EQ(pruned->stats().pao, p * (j - 1));
  EXPECT_LE(pruned->stats().cto, r * (j - 1));
  EXPECT_EQ(pruned->stats().cj, 0);
  EXPECT_EQ(pruned->stats().constraints_overlap, t);
  EXPECT_EQ(pruned->stats().constraints_pao, 2 * p * (j - 1));
  EXPECT_LE(pruned->stats().constraints_cto, r * (j - 1));
  EXPECT_EQ(pruned->stats().constraints_cto, pruned->stats().cto);

  options.variant = JoModelVariant::kOriginal;
  auto original = EncodeJoAsMilp(*query, options);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(original->stats().pao, p * j);
  EXPECT_EQ(original->stats().cto, r * j);
  EXPECT_EQ(original->stats().cj, j);
  EXPECT_EQ(original->stats().constraints_overlap, t * j);
  EXPECT_EQ(original->stats().constraints_pao, 2 * p * j);
  EXPECT_EQ(original->stats().constraints_cto, r * j);
}

TEST(JoEncoderTest, OriginalModelCannotLowerToBilp) {
  Query q = MakePaperInstance(1);
  JoMilpOptions options = PaperOptions();
  options.variant = JoModelVariant::kOriginal;
  auto milp = EncodeJoAsMilp(q, options);
  ASSERT_TRUE(milp.ok());
  EXPECT_FALSE(LowerToBilp(milp->model(), 1.0).ok());
}

/// Example 3.1/3.3: the assignment for (R ⋈ S) ⋈ T is MILP-feasible and
/// the staircase objective adds exactly theta_0 = 100.
TEST(JoEncoderTest, Example33FeasibilityAndObjective) {
  Query q;
  q.AddRelation("R", 100);
  q.AddRelation("S", 100);
  q.AddRelation("T", 100);
  ASSERT_TRUE(q.AddPredicate(0, 1, 0.1).ok());
  JoMilpOptions options;
  options.thresholds = {100.0, 1000.0};
  auto milp = EncodeJoAsMilp(q, options);
  ASSERT_TRUE(milp.ok());

  // c_1max = 4 exceeds both log-thresholds (2 and 3): nothing pruned.
  ASSERT_GE(milp->cto(0, 1), 0);
  ASSERT_GE(milp->cto(1, 1), 0);
  ASSERT_GE(milp->pao(0, 1), 0);
  EXPECT_EQ(milp->pao(0, 0), -1);  // pruned
  EXPECT_EQ(milp->cto(0, 0), -1);  // pruned

  std::vector<int> bits(milp->model().num_variables(), 0);
  bits[milp->tio(0, 0)] = 1;  // R outer of join 0
  bits[milp->tii(1, 0)] = 1;  // S inner of join 0
  bits[milp->tio(0, 1)] = 1;  // R in outer of join 1
  bits[milp->tio(1, 1)] = 1;  // S in outer of join 1
  bits[milp->tii(2, 1)] = 1;  // T inner of join 1
  bits[milp->pao(0, 1)] = 1;  // p_RS applicable at join 1
  // c_1 = 2 + 2 - 1 = 3 > log(100): cto_01 forced; 3 <= log(1000): cto_11
  // stays 0.
  bits[milp->cto(0, 1)] = 1;
  EXPECT_TRUE(milp->model().IsFeasible(bits));
  EXPECT_DOUBLE_EQ(milp->model().EvaluateObjective(bits), 100.0);

  // Leaving cto_01 = 0 violates Eq. (7).
  bits[milp->cto(0, 1)] = 0;
  EXPECT_FALSE(milp->model().IsFeasible(bits));
  // Claiming the predicate without S in the outer operand violates Eq. (5).
  bits[milp->cto(0, 1)] = 1;
  bits[milp->tio(1, 1)] = 0;
  EXPECT_FALSE(milp->model().IsFeasible(bits));
}

TEST(JoEncoderTest, CtoPruningDropsUnreachableThresholds) {
  Query q;
  q.AddRelation("R", 10);
  q.AddRelation("S", 10);
  q.AddRelation("T", 10);
  q.AddRelation("U", 10);
  JoMilpOptions options;
  // log c_1max = 2, log c_2max = 3; theta=500 (log ~2.7) is unreachable
  // for join 1 but reachable for join 2.
  options.thresholds = {500.0};
  auto milp = EncodeJoAsMilp(q, options);
  ASSERT_TRUE(milp.ok());
  EXPECT_EQ(milp->cto(0, 1), -1);
  EXPECT_GE(milp->cto(0, 2), 0);
  EXPECT_EQ(milp->stats().cto, 1);
}

TEST(BilpTest, NumSlackBitsEquation9) {
  EXPECT_EQ(NumSlackBits(1.0, 1.0), 1);
  EXPECT_EQ(NumSlackBits(2.0, 1.0), 2);
  EXPECT_EQ(NumSlackBits(3.0, 1.0), 2);
  EXPECT_EQ(NumSlackBits(4.0, 1.0), 3);
  EXPECT_EQ(NumSlackBits(0.5, 1.0), 0);
  EXPECT_EQ(NumSlackBits(2.0, 0.01), 8);   // floor(log2 200)+1
  EXPECT_EQ(NumSlackBits(2.0, 0.001), 11); // floor(log2 2000)+1
}

TEST(BilpTest, SlackGroupsAndMetadata) {
  Query q = MakePaperInstance(1);
  auto milp = EncodeJoAsMilp(q, PaperOptions());
  ASSERT_TRUE(milp.ok());
  auto bilp = LowerToBilp(milp->model(), 1.0);
  ASSERT_TRUE(bilp.ok());
  EXPECT_EQ(bilp->num_problem_variables, milp->model().num_variables());
  // T=3 overlap slacks + 2 pao slacks + 1 cto slack group.
  EXPECT_EQ(bilp->slack_groups.size(), 3u + 2u + 1u);
  int slack_bits = 0;
  for (const auto& g : bilp->slack_groups) slack_bits += g.num_bits;
  EXPECT_EQ(slack_bits, bilp->num_slack_variables());
}

/// Feasibility equivalence: a MILP-feasible assignment extends to a
/// BILP-feasible one via some slack setting, and the BILP restricted to
/// problem variables is MILP-feasible.
TEST(BilpTest, FeasibilityEquivalenceBySearch) {
  Query q = MakePaperInstance(1);
  auto milp = EncodeJoAsMilp(q, PaperOptions());
  ASSERT_TRUE(milp.ok());
  auto bilp = LowerToBilp(milp->model(), 1.0);
  ASSERT_TRUE(bilp.ok());
  const int problem_vars = bilp->num_problem_variables;
  const int slack_vars = bilp->num_slack_variables();
  ASSERT_LE(slack_vars, 12);

  // The valid (R0 ⋈ R1) ⋈ R2 assignment.
  std::vector<int> bits(problem_vars, 0);
  bits[milp->tio(0, 0)] = 1;
  bits[milp->tii(1, 0)] = 1;
  bits[milp->tio(0, 1)] = 1;
  bits[milp->tio(1, 1)] = 1;
  bits[milp->tii(2, 1)] = 1;
  bits[milp->pao(0, 1)] = 1;
  // c_1 = 1 + 1 - 1 = 1 <= log(10) = 1: threshold not exceeded.
  ASSERT_TRUE(milp->model().IsFeasible(bits));

  bool found = false;
  std::vector<int> full(bilp->num_variables(), 0);
  std::copy(bits.begin(), bits.end(), full.begin());
  for (int mask = 0; mask < (1 << slack_vars) && !found; ++mask) {
    for (int b = 0; b < slack_vars; ++b) {
      full[problem_vars + b] = (mask >> b) & 1;
    }
    if (bilp->IsFeasible(full)) found = true;
  }
  EXPECT_TRUE(found);
  // And the MILP objective agrees with the BILP objective (cto unset).
  EXPECT_DOUBLE_EQ(bilp->EvaluateObjective(full), 0.0);

  // An invalid assignment (two inner operands for join 0) has no feasible
  // slack completion.
  bits[milp->tii(0, 0)] = 1;
  std::copy(bits.begin(), bits.end(), full.begin());
  bool invalid_found = false;
  for (int mask = 0; mask < (1 << slack_vars) && !invalid_found; ++mask) {
    for (int b = 0; b < slack_vars; ++b) {
      full[problem_vars + b] = (mask >> b) & 1;
    }
    if (bilp->IsFeasible(full)) invalid_found = true;
  }
  EXPECT_FALSE(invalid_found);
}

TEST(BilpTest, GeometricThresholdsIncreasing) {
  Rng rng(4);
  QueryGenOptions gen;
  gen.num_relations = 8;
  auto query = GenerateQuery(gen, rng);
  ASSERT_TRUE(query.ok());
  const std::vector<double> thresholds = MakeGeometricThresholds(*query, 5);
  ASSERT_EQ(thresholds.size(), 5u);
  for (size_t i = 1; i < thresholds.size(); ++i) {
    EXPECT_GT(thresholds[i], thresholds[i - 1]);
  }
  // Usable in the encoder.
  JoMilpOptions options;
  options.thresholds = thresholds;
  EXPECT_TRUE(EncodeJoAsMilp(*query, options).ok());
}

}  // namespace
}  // namespace qjo

// Cross-module integration tests: consistency theorems that tie the whole
// Sec. 3 pipeline together.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/qaoa_builder.h"
#include "codesign/qubit_bound.h"
#include "core/postprocess.h"
#include "core/quantum_optimizer.h"
#include "embedding/embedded_qubo.h"
#include "embedding/minor_embedding.h"
#include "jo/classical.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "qubo/solvers.h"
#include "sim/sqa.h"
#include "sim/statevector.h"
#include "topology/vendor_topologies.h"
#include "transpiler/transpiler.h"
#include "util/random.h"

namespace qjo {
namespace {

/// Every left-deep order of a 3-relation query: its canonical assignment
/// is MILP-feasible, decodes back to itself, and the MILP objective equals
/// the staircase-approximated cost; moreover the exact QUBO optimum picks
/// (one of) the staircase-minimal orders.
TEST(PipelineConsistencyTest, StaircaseObjectiveMatchesExactQuboOptimum) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    QueryGenOptions gen;
    gen.num_relations = 3;
    gen.graph_type =
        seed % 2 == 0 ? QueryGraphType::kChain : QueryGraphType::kCycle;
    gen.min_log_card = 1.0;
    gen.max_log_card = 1.0;  // keeps the QUBO within brute-force reach
    auto query = GenerateQuery(gen, rng);
    ASSERT_TRUE(query.ok());

    JoMilpOptions options;
    // Cycle queries carry an extra predicate; use one threshold fewer so
    // the brute-force solver (<= 28 variables) stays applicable.
    const int num_thresholds =
        gen.graph_type == QueryGraphType::kCycle ? 1 : 2;
    options.thresholds = MakeGeometricThresholds(*query, num_thresholds);
    auto milp = EncodeJoAsMilp(*query, options);
    ASSERT_TRUE(milp.ok());

    // Enumerate all 6 orders; track the best staircase objective.
    std::vector<int> perm = {0, 1, 2};
    double best_objective = 1e300;
    std::sort(perm.begin(), perm.end());
    do {
      const LeftDeepOrder order(perm);
      auto bits = EncodeOrderAsAssignment(*milp, order);
      ASSERT_TRUE(bits.ok());
      EXPECT_TRUE(milp->model().IsFeasible(*bits))
          << "seed " << seed << " order " << order.ToString(*query);
      auto decoded = DecodeSample(*milp, *bits);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->order(), perm);
      best_objective = std::min(
          best_objective, milp->model().EvaluateObjective(*bits));
    } while (std::next_permutation(perm.begin(), perm.end()));

    // Exact QUBO optimum achieves exactly that staircase objective.
    auto bilp = LowerToBilp(milp->model(), 1.0);
    ASSERT_TRUE(bilp.ok());
    auto encoding = ConvertBilpToQubo(*bilp, QuboConversionOptions{});
    ASSERT_TRUE(encoding.ok());
    auto ground = SolveQuboBruteForce(encoding->qubo);
    ASSERT_TRUE(ground.ok());
    EXPECT_NEAR(ground->energy, best_objective, 1e-6) << "seed " << seed;
  }
}

/// Transpiled QAOA circuits remain semantically equivalent to the logical
/// circuit under the final qubit layout, across gate sets.
TEST(PipelineConsistencyTest, TranspiledQaoaPreservesDistribution) {
  Rng rng(9);
  Qubo qubo(6);
  for (int i = 0; i < 6; ++i) {
    qubo.AddLinear(i, rng.UniformDouble(-1, 1));
    for (int j = i + 1; j < 6; ++j) {
      if (rng.Bernoulli(0.5)) {
        qubo.AddQuadratic(i, j, rng.UniformDouble(-1, 1));
      }
    }
  }
  auto logical = BuildQaoaCircuit(qubo, QaoaParameters{{0.37}, {0.61}});
  ASSERT_TRUE(logical.ok());
  auto reference = StateVector::Create(6);
  ASSERT_TRUE(reference.ok());
  reference->ApplyCircuit(*logical);

  const CouplingGraph device = MakeGridGraph(3, 3);
  for (NativeGateSet set : {NativeGateSet::kIbm, NativeGateSet::kRigetti,
                            NativeGateSet::kIonq}) {
    TranspileOptions options;
    options.gate_set = set;
    options.seed = 31;
    auto result = Transpile(*logical, device, options);
    ASSERT_TRUE(result.ok());
    auto physical = StateVector::Create(device.num_qubits());
    ASSERT_TRUE(physical.ok());
    physical->ApplyCircuit(result->circuit);
    for (uint64_t x = 0; x < 64; ++x) {
      uint64_t y = 0;
      for (int l = 0; l < 6; ++l) {
        if (x & (uint64_t{1} << l)) {
          y |= uint64_t{1} << result->final_layout[l];
        }
      }
      EXPECT_NEAR(reference->Probability(x), physical->Probability(y), 1e-6)
          << "gate set " << NativeGateSetName(set) << " x=" << x;
    }
  }
}

/// Embedding + SQA recovers the exact logical ground state of a small
/// QUBO end to end (embed -> anneal physical -> unembed -> compare).
TEST(PipelineConsistencyTest, EmbeddedAnnealingFindsLogicalGroundState) {
  Rng rng(17);
  Qubo logical(8);
  for (int i = 0; i < 8; ++i) {
    logical.AddLinear(i, rng.UniformDouble(-1, 1));
    for (int j = i + 1; j < 8; ++j) {
      if (rng.Bernoulli(0.4)) {
        logical.AddQuadratic(i, j, rng.UniformDouble(-1, 1));
      }
    }
  }
  auto exact = SolveQuboBruteForce(logical);
  ASSERT_TRUE(exact.ok());

  auto target = MakePegasus(3);
  ASSERT_TRUE(target.ok());
  auto embedding = FindMinorEmbedding(logical.Edges(), 8, *target,
                                      EmbeddingOptions{}, rng);
  ASSERT_TRUE(embedding.ok());
  auto embedded =
      EmbedQubo(logical, *embedding, *target, EmbedQuboOptions{});
  ASSERT_TRUE(embedded.ok());

  SqaOptions sqa;
  sqa.num_reads = 30;
  sqa.annealing_time_us = 40.0;
  sqa.sweeps_per_us = 10.0;
  auto reads = RunSqa(QuboToIsing(embedded->physical), sqa, rng);
  ASSERT_TRUE(reads.ok());
  double best = 1e300;
  for (const SqaSample& read : *reads) {
    const UnembeddedSample logical_sample =
        UnembedSample(SpinsToBits(read.spins), *embedding, rng);
    best = std::min(best, logical.Energy(logical_sample.logical_bits));
  }
  EXPECT_NEAR(best, exact->energy, 1e-6);
}

/// Theorem 5.3's bound is *tight* when nothing can be pruned: thresholds
/// below every reachable cardinality leave all cto variables alive.
TEST(PipelineConsistencyTest, BoundTightWithoutPruning) {
  Query q;
  q.AddRelation("A", 100);
  q.AddRelation("B", 100);
  q.AddRelation("C", 100);
  q.AddRelation("D", 100);
  JoMilpOptions options;
  options.thresholds = {10.0};  // log 1 < c_jmax for every join
  auto milp = EncodeJoAsMilp(q, options);
  ASSERT_TRUE(milp.ok());
  auto bilp = LowerToBilp(milp->model(), 1.0);
  ASSERT_TRUE(bilp.ok());
  auto bound = QubitUpperBound(q, 1, 1.0);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, bilp->num_variables());
}

/// The noiseless QAOA distribution is biased towards low-energy states
/// relative to uniform sampling.
TEST(PipelineConsistencyTest, QaoaBeatsUniformSamplingNoiselessly) {
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 10);
  ASSERT_TRUE(q.AddPredicate(0, 1, 0.1).ok());

  QjoConfig qaoa;
  qaoa.backend = QjoBackend::kQaoaSimulator;
  qaoa.thresholds = {10.0};
  qaoa.shots = 2048;
  qaoa.qaoa_iterations = 25;
  qaoa.noiseless = true;
  qaoa.seed = 51;
  auto qaoa_report = OptimizeJoinOrder(q, qaoa);
  ASSERT_TRUE(qaoa_report.ok());

  // Uniform baseline = fully depolarised sampling.
  QjoConfig uniform = qaoa;
  uniform.noiseless = false;
  uniform.qaoa_iterations = 0;
  uniform.device.t1_us = 1e-6;  // fidelity ~ 0 -> uniform output
  uniform.device.t2_us = 1e-6;
  uniform.seed = 52;
  auto uniform_report = OptimizeJoinOrder(q, uniform);
  ASSERT_TRUE(uniform_report.ok());
  EXPECT_LT(uniform_report->gate.fidelity, 1e-3);

  EXPECT_GT(qaoa_report->stats.valid_fraction(),
            uniform_report->stats.valid_fraction());
}

/// EncodeOrderAsAssignment produces MILP-feasible assignments for every
/// order of larger queries too (property sweep).
struct EncodeCase {
  QueryGraphType type;
  int relations;
  int thresholds;
  uint64_t seed;
};

class OrderEncodingTest : public ::testing::TestWithParam<EncodeCase> {};

TEST_P(OrderEncodingTest, CanonicalAssignmentsAreFeasible) {
  const EncodeCase& c = GetParam();
  Rng rng(c.seed);
  QueryGenOptions gen;
  gen.num_relations = c.relations;
  gen.graph_type = c.type;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  auto query = GenerateQuery(gen, rng);
  ASSERT_TRUE(query.ok());
  JoMilpOptions options;
  options.thresholds = MakeGeometricThresholds(*query, c.thresholds);
  auto milp = EncodeJoAsMilp(*query, options);
  ASSERT_TRUE(milp.ok());

  std::vector<int> perm(c.relations);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 20; ++trial) {
    rng.Shuffle(perm);
    const LeftDeepOrder order(perm);
    auto bits = EncodeOrderAsAssignment(*milp, order);
    ASSERT_TRUE(bits.ok());
    EXPECT_TRUE(milp->model().IsFeasible(*bits))
        << order.ToString(*query);
    auto decoded = DecodeSample(*milp, *bits);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->order(), perm);
    EXPECT_GE(milp->model().EvaluateObjective(*bits), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderEncodingTest,
    ::testing::Values(EncodeCase{QueryGraphType::kChain, 4, 2, 61},
                      EncodeCase{QueryGraphType::kChain, 6, 3, 62},
                      EncodeCase{QueryGraphType::kChain, 9, 4, 63},
                      EncodeCase{QueryGraphType::kStar, 5, 2, 64},
                      EncodeCase{QueryGraphType::kStar, 8, 5, 65},
                      EncodeCase{QueryGraphType::kCycle, 5, 1, 66},
                      EncodeCase{QueryGraphType::kCycle, 7, 3, 67},
                      EncodeCase{QueryGraphType::kCycle, 12, 2, 68}));

/// Report diagnostics are internally consistent across backends.
TEST(PipelineConsistencyTest, ReportInvariants) {
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 10);
  ASSERT_TRUE(q.AddPredicate(0, 1, 0.1).ok());
  for (QjoBackend backend :
       {QjoBackend::kExact, QjoBackend::kSimulatedAnnealing}) {
    QjoConfig config;
    config.backend = backend;
    config.thresholds = {10.0};
    config.shots = 64;
    auto report = OptimizeJoinOrder(q, config);
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->stats.total, 1);
    EXPECT_LE(report->stats.optimal, report->stats.valid);
    EXPECT_LE(report->stats.valid, report->stats.total);
    if (report->found_valid) {
      EXPECT_GE(report->best_cost, report->optimal_cost * (1 - 1e-9));
    }
    EXPECT_EQ(report->encoding.milp_variables + /*slack*/ report->encoding.bilp_variables -
                  report->encoding.milp_variables,
              report->encoding.bilp_variables);
  }
}

}  // namespace
}  // namespace qjo

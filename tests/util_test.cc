#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/sampling.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad qubit");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad qubit");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad qubit");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  QJO_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformRange(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, StreamForkIsDeterministic) {
  const Rng a(33);
  const Rng b(33);
  for (uint64_t stream : {0ull, 1ull, 7ull, 1000ull}) {
    Rng fa = a.Fork(stream);
    Rng fb = b.Fork(stream);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.Next(), fb.Next());
  }
}

TEST(RngTest, StreamForkDoesNotAdvanceParent) {
  Rng forked(35);
  Rng untouched(35);
  (void)forked.Fork(0);
  (void)forked.Fork(99);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(forked.Next(), untouched.Next());
}

TEST(RngTest, StreamForksAreMutuallyIndependent) {
  // Different stream ids (and different parents) must give different
  // streams — the property the parallel read loops rely on.
  const Rng parent(37);
  std::set<uint64_t> first_draws;
  for (uint64_t stream = 0; stream < 64; ++stream) {
    first_draws.insert(parent.Fork(stream).Next());
  }
  EXPECT_EQ(first_draws.size(), 64u);
  const Rng other(38);
  EXPECT_NE(parent.Fork(5).Next(), other.Fork(5).Next());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4);
  constexpr int kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(0, kCount, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1);
  int sum = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(0, 100, [&](int64_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 0, [&](int64_t) { ++calls; });
  pool.ParallelFor(5, 3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The batch entry point nests query-level ParallelFor over read-level
  // ParallelFor on one shared pool; the caller-participates design must
  // keep making progress even when all workers are busy.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, [&](int64_t) {
    pool.ParallelFor(0, 16, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, NestedParallelForRunsSerialInsideLoopBody) {
  // A ParallelFor issued from inside a loop body must degenerate to a
  // plain serial loop on the calling thread instead of re-entering the
  // queue: the pool is already saturated by the outer loop.
  ThreadPool pool(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int> inner_region_observations{0};
  std::atomic<int> inner_on_other_thread{0};
  pool.ParallelFor(0, 8, [&](int64_t) {
    EXPECT_TRUE(InParallelRegion());
    const std::thread::id outer_thread = std::this_thread::get_id();
    pool.ParallelFor(0, 4, [&](int64_t) {
      if (InParallelRegion()) inner_region_observations.fetch_add(1);
      if (std::this_thread::get_id() != outer_thread) {
        inner_on_other_thread.fetch_add(1);
      }
    });
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_region_observations.load(), 8 * 4);
  EXPECT_EQ(inner_on_other_thread.load(), 0);
}

TEST(ThreadPoolTest, FreeFunctionFallsBackToSerialWithoutPool) {
  int sum = 0;
  ParallelFor(nullptr, 0, 10, [&](int64_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 20, [&](int64_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 20) << "round " << round;
  }
}

TEST(ThreadPoolTest, BlockedLoopChunksAreThreadCountInvariant) {
  // Chunk boundaries must be a pure function of (begin, end, block): the
  // serial and pooled runs have to observe the identical chunk set.
  const auto collect = [](ThreadPool* pool) {
    std::vector<std::pair<int64_t, int64_t>> chunks;
    std::mutex mutex;
    ParallelForBlocks(pool, 3, 50, 8, [&](int64_t begin, int64_t end) {
      std::lock_guard<std::mutex> lock(mutex);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = collect(nullptr);
  ThreadPool pool(4);
  const auto pooled = collect(&pool);
  const std::vector<std::pair<int64_t, int64_t>> expected = {
      {3, 11}, {11, 19}, {19, 27}, {27, 35}, {35, 43}, {43, 50}};
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(pooled, expected);
}

TEST(ThreadPoolTest, BlockedSumIsBitIdenticalAcrossParallelism) {
  // Sums of irrational-ish terms are rounding-order sensitive; the fixed
  // block boundaries and left-to-right combine make every parallelism
  // level produce the same bits.
  constexpr int64_t kCount = 100000;
  const auto partial = [](int64_t begin, int64_t end) {
    double sum = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      sum += 1.0 / std::sqrt(static_cast<double>(i) + 1.0);
    }
    return sum;
  };
  const double serial = ParallelBlockedSum(nullptr, kCount, 1 << 10, partial);
  ThreadPool two(2), eight(8);
  EXPECT_EQ(serial, ParallelBlockedSum(&two, kCount, 1 << 10, partial));
  EXPECT_EQ(serial, ParallelBlockedSum(&eight, kCount, 1 << 10, partial));
  // Single-block degenerates to the plain serial left-to-right sum.
  EXPECT_EQ(partial(0, 100), ParallelBlockedSum(&eight, 100, 1 << 10, partial));
}

TEST(SamplingTest, MatchesDistribution) {
  const std::vector<double> probs = {0.5, 0.25, 0.125, 0.125};
  Rng rng(11);
  std::vector<uint64_t> samples;
  constexpr int kShots = 40000;
  SampleByInverseCdf(
      probs.size(), [&](uint64_t i) { return probs[i]; }, kShots, rng, samples);
  ASSERT_EQ(samples.size(), static_cast<size_t>(kShots));
  std::vector<int> counts(probs.size(), 0);
  for (uint64_t s : samples) {
    ASSERT_LT(s, probs.size());
    ++counts[s];
  }
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kShots, probs[i], 0.02)
        << "state " << i;
  }
}

TEST(SamplingTest, AppendsInAscendingOrder) {
  Rng rng(13);
  std::vector<uint64_t> samples = {42};  // pre-existing content is kept
  SampleByInverseCdf(
      8, [](uint64_t) { return 0.125; }, 100, rng, samples);
  ASSERT_EQ(samples.size(), 101u);
  EXPECT_EQ(samples[0], 42u);
  EXPECT_TRUE(std::is_sorted(samples.begin() + 1, samples.end()));
}

TEST(SamplingTest, RoundingSlackGoesToLastSupportedState) {
  // The distribution deliberately sums to 0.9 with a zero-probability
  // tail state: the ~10% of uniforms that land past the total must be
  // assigned to the last state with support (2), never to the
  // zero-probability state 3.
  const std::vector<double> probs = {0.3, 0.3, 0.3, 0.0};
  Rng rng(17);
  std::vector<uint64_t> samples;
  constexpr int kShots = 2000;
  SampleByInverseCdf(
      probs.size(), [&](uint64_t i) { return probs[i]; }, kShots, rng, samples);
  int last_support_hits = 0;
  for (uint64_t s : samples) {
    ASSERT_NE(s, 3u) << "sampled a zero-probability state";
    if (s == 2) ++last_support_hits;
  }
  // State 2 receives its own 30% plus the 10% slack.
  EXPECT_NEAR(static_cast<double>(last_support_hits) / kShots, 0.4, 0.05);
}

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
}

TEST(StatsTest, SummaryFiveNumbers) {
  const Summary s = Summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(StringsTest, Join) {
  std::vector<int> v = {1, 2, 3};
  EXPECT_EQ(Join(v, ", "), "1, 2, 3");
  EXPECT_EQ(Join(std::vector<int>{}, ","), "");
}

TEST(StringsTest, FormatDoubleAndPercent) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace qjo

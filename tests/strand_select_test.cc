#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quantum_optimizer.h"
#include "core/strand_select.h"
#include "jo/query.h"
#include "util/status.h"

namespace qjo {
namespace {

enum class Shape { kChain, kStar, kCycle, kClique };

Query MakeQuery(int relations, Shape shape) {
  Query q;
  for (int i = 0; i < relations; ++i) {
    q.AddRelation("R" + std::to_string(i), 100.0 * (i + 1));
  }
  switch (shape) {
    case Shape::kChain:
      for (int i = 0; i + 1 < relations; ++i) {
        EXPECT_TRUE(q.AddPredicate(i, i + 1, 0.1).ok());
      }
      break;
    case Shape::kStar:
      for (int i = 1; i < relations; ++i) {
        EXPECT_TRUE(q.AddPredicate(0, i, 0.1).ok());
      }
      break;
    case Shape::kCycle:
      for (int i = 0; i + 1 < relations; ++i) {
        EXPECT_TRUE(q.AddPredicate(i, i + 1, 0.1).ok());
      }
      EXPECT_TRUE(q.AddPredicate(relations - 1, 0, 0.1).ok());
      break;
    case Shape::kClique:
      for (int i = 0; i < relations; ++i) {
        for (int j = i + 1; j < relations; ++j) {
          EXPECT_TRUE(q.AddPredicate(i, j, 0.1).ok());
        }
      }
      break;
  }
  return q;
}

// --- Feature extraction. ---

TEST(FeatureExtractorTest, ClassifiesGraphShapes) {
  EXPECT_EQ(ExtractQueryFeatures(MakeQuery(5, Shape::kChain), 0).graph_class,
            "chain");
  EXPECT_EQ(ExtractQueryFeatures(MakeQuery(5, Shape::kStar), 0).graph_class,
            "star");
  EXPECT_EQ(ExtractQueryFeatures(MakeQuery(5, Shape::kCycle), 0).graph_class,
            "cycle");
  EXPECT_EQ(ExtractQueryFeatures(MakeQuery(5, Shape::kClique), 0).graph_class,
            "clique");
}

TEST(FeatureExtractorTest, BucketKeyIsDeterministicAndTokenSafe) {
  const Query q = MakeQuery(5, Shape::kChain);
  const QueryFeatures f = ExtractQueryFeatures(q, 100);
  EXPECT_EQ(f.relations, 5);
  EXPECT_EQ(f.qubo_variables, 100);
  // 4 predicates over C(5,2) = 10 pairs.
  EXPECT_DOUBLE_EQ(f.predicate_density, 0.4);
  const std::string key = FeatureBucketKey(f);
  EXPECT_EQ(key, "r4-7|chain|d1|q64-127");
  EXPECT_EQ(key.find(' '), std::string::npos);
  EXPECT_EQ(key, FeatureBucketKey(ExtractQueryFeatures(q, 100)));
}

TEST(FeatureExtractorTest, FallbackBucketUsesVariableRangeOnly) {
  EXPECT_EQ(FallbackBucketKey(1), "q1");
  EXPECT_EQ(FallbackBucketKey(100), "q64-127");
  EXPECT_EQ(FallbackBucketKey(128), "q128-255");
}

// --- Run records. ---

StrandOutcome MakeOutcome(const std::string& name, bool won, double tti_ms,
                          int64_t sweeps) {
  StrandOutcome o;
  o.name = name;
  o.eligible = true;
  o.won = won;
  o.feasible = true;
  o.time_to_incumbent_ms = tti_ms;
  o.sweeps_to_incumbent = sweeps;
  return o;
}

TEST(RunRecordStoreTest, RecordAccumulatesAndSkipsIneligible) {
  RunRecordStore store;
  StrandOutcome ineligible;
  ineligible.name = "exact";
  ineligible.eligible = false;
  store.Record("b", {MakeOutcome("sa", true, 2.0, 64), ineligible});
  store.Record("b", {MakeOutcome("sa", false, 4.0, 128)});
  EXPECT_EQ(store.BucketTrials("b"), 2u);
  const StrandRecord sa = store.Get("b", "sa");
  EXPECT_EQ(sa.trials, 2u);
  EXPECT_EQ(sa.wins, 1u);
  EXPECT_EQ(sa.feasible, 2u);
  EXPECT_DOUBLE_EQ(sa.time_to_incumbent_ms, 6.0);
  EXPECT_DOUBLE_EQ(sa.sweeps_to_incumbent, 192.0);
  // The ineligible strand carried no signal.
  EXPECT_EQ(store.Get("b", "exact").trials, 0u);
  EXPECT_EQ(store.Get("missing", "sa").trials, 0u);
}

TEST(RunRecordStoreTest, SerializeRoundTripIsByteStable) {
  RunRecordStore store;
  // Awkward doubles on purpose: %.17g must survive the round-trip.
  store.Record("r4-7|chain|d1|q64-127",
               {MakeOutcome("sa", true, 0.1 + 0.2, 64),
                MakeOutcome("tabu", false, 1.0 / 3.0, 96)});
  store.Record("q128-255", {MakeOutcome("sqa", true, 123.456789012345, 4096)});
  const std::string first = store.Serialize();
  EXPECT_EQ(first.rfind("qjo-strand-records v1\n", 0), 0u);

  RunRecordStore copy;
  ASSERT_TRUE(copy.Deserialize(first).ok());
  EXPECT_EQ(copy.Serialize(), first);
  EXPECT_EQ(copy.BucketTrials("q128-255"), 1u);
  const StrandRecord sa = copy.Get("r4-7|chain|d1|q64-127", "sa");
  EXPECT_EQ(sa.trials, 1u);
  EXPECT_DOUBLE_EQ(sa.time_to_incumbent_ms, 0.1 + 0.2);
}

TEST(RunRecordStoreTest, DeserializeRejectsMalformedInput) {
  RunRecordStore store;
  EXPECT_FALSE(store.Deserialize("not-a-records-file\n").ok());
  EXPECT_FALSE(
      store.Deserialize("qjo-strand-records v1\nbucket sa garbage\n").ok());
  // A failed load leaves the store usable and empty.
  EXPECT_EQ(store.NumBuckets(), 0u);
  EXPECT_TRUE(store.Deserialize("qjo-strand-records v1\n").ok());
}

TEST(RunRecordStoreTest, FileRoundTripAndMissingFileIsNotFound) {
  const std::string path = ::testing::TempDir() + "/qjo_strand_records.txt";
  RunRecordStore store;
  store.Record("b", {MakeOutcome("sa", true, 2.5, 64)});
  ASSERT_TRUE(store.SaveRecords(path).ok());

  RunRecordStore loaded;
  ASSERT_TRUE(loaded.LoadRecords(path).ok());
  EXPECT_EQ(loaded.Serialize(), store.Serialize());

  RunRecordStore cold;
  const Status missing =
      cold.LoadRecords(::testing::TempDir() + "/qjo_no_such_records.txt");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
}

// --- Selection. ---

AdaptiveOptions WarmOptions() {
  AdaptiveOptions options;
  options.enabled = true;
  options.min_bucket_trials = 8;
  options.throttle_divisor = 4;
  return options;
}

TEST(StrandSelectorTest, ColdStartWithoutRecordsGrantsFullBudget) {
  const StrandSelector selector(nullptr, "b", {"sa", "tabu", "sqa"},
                                WarmOptions());
  EXPECT_TRUE(selector.cold_start());
  const StrandBudget budget = selector.Allocate(0, 0, true, 4, 64, 4096);
  EXPECT_FALSE(budget.throttled);
  EXPECT_EQ(budget.reads_per_round, 4);
  EXPECT_EQ(budget.sweeps_per_round, 64);
  EXPECT_EQ(budget.sweep_budget, 4096);
}

TEST(StrandSelectorTest, ColdStartBelowMinBucketTrials) {
  RunRecordStore store;
  for (int i = 0; i < 7; ++i) {
    store.Record("b", {MakeOutcome("sa", true, 1.0, 64)});
  }
  const StrandSelector selector(&store, "b", {"sa", "tabu", "sqa"},
                                WarmOptions());
  EXPECT_TRUE(selector.cold_start());
  // One more race crosses the threshold.
  store.Record("b", {MakeOutcome("sa", true, 1.0, 64)});
  const StrandSelector warm(&store, "b", {"sa", "tabu", "sqa"},
                            WarmOptions());
  EXPECT_FALSE(warm.cold_start());
}

TEST(StrandSelectorTest, ThrottlesLowerHalfDeterministically) {
  RunRecordStore store;
  for (int i = 0; i < 8; ++i) {
    store.Record("b", {MakeOutcome("sa", true, 1.0, 64),
                       MakeOutcome("tabu", false, 9.0, 512),
                       MakeOutcome("sqa", false, 9.0, 512)});
  }
  const StrandSelector selector(&store, "b", {"sa", "tabu", "sqa"},
                                WarmOptions());
  ASSERT_FALSE(selector.cold_start());
  // sa's win rate dominates; tabu and sqa tie and the tie breaks by
  // index, so sqa (the lower rank) is the one throttled half.
  EXPECT_GT(selector.UcbScore(0), selector.UcbScore(1));
  EXPECT_FALSE(selector.Throttled(0, /*throttleable=*/true));
  EXPECT_FALSE(selector.Throttled(1, /*throttleable=*/true));
  EXPECT_TRUE(selector.Throttled(2, /*throttleable=*/true));
  // Non-throttleable strands keep full budget regardless of rank.
  EXPECT_FALSE(selector.Throttled(2, /*throttleable=*/false));

  const StrandBudget full = selector.Allocate(0, 0, true, 4, 64, 4096);
  EXPECT_FALSE(full.throttled);
  EXPECT_EQ(full.sweep_budget, 4096);
  const StrandBudget cut = selector.Allocate(2, 0, true, 4, 64, 4096);
  EXPECT_TRUE(cut.throttled);
  EXPECT_EQ(cut.reads_per_round, 1);      // 4 / divisor, floor 1
  EXPECT_EQ(cut.sweeps_per_round, 64);    // rounds shrink, sweeps don't
  EXPECT_EQ(cut.sweep_budget, 4096 / 4);  // never below one round
  EXPECT_GE(cut.sweep_budget,
            static_cast<int64_t>(cut.reads_per_round) * cut.sweeps_per_round);
}

TEST(StrandSelectorTest, UntriedArmIsNeverThrottled) {
  RunRecordStore store;
  for (int i = 0; i < 8; ++i) {
    store.Record("b", {MakeOutcome("sa", true, 1.0, 64),
                       MakeOutcome("tabu", false, 9.0, 512),
                       MakeOutcome("sqa", false, 9.0, 512)});
  }
  // "fresh" never appears in the records: optimism under uncertainty
  // must rank it at the top, pushing a known-bad arm into the throttled
  // half instead.
  const StrandSelector selector(&store, "b", {"sa", "tabu", "sqa", "fresh"},
                                WarmOptions());
  ASSERT_FALSE(selector.cold_start());
  EXPECT_FALSE(selector.Throttled(3, /*throttleable=*/true));
  EXPECT_TRUE(selector.Throttled(2, /*throttleable=*/true));
}

// --- Registry. ---

TEST(StrandRegistryTest, DefaultRegistryKeepsLegacyOrderAndStreams) {
  const StrandRegistry& registry = StrandRegistry::Default();
  const std::vector<std::string> expected = {"exact", "sa",   "tabu",
                                             "sqa",   "qaoa", "decomp"};
  EXPECT_EQ(registry.Names(), expected);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(registry.IndexOf(expected[i]), static_cast<int>(i));
    // RNG stream ids are the registration indices: the cold-start race
    // stays bit-identical to the pre-registry fixed fan-out.
    EXPECT_EQ(registry.strands()[i].rng_stream, i);
  }
  EXPECT_EQ(registry.IndexOf("nope"), -1);
}

TEST(StrandRegistryTest, RegisterRejectsBadDescriptors) {
  StrandRegistry registry;
  StrandDesc missing_run;
  missing_run.name = "x";
  EXPECT_EQ(registry.Register(missing_run).code(),
            StatusCode::kInvalidArgument);
  StrandDesc ok;
  ok.name = "x";
  ok.run = [](const StrandRunEnv&, Rng&) {};
  EXPECT_TRUE(registry.Register(ok).ok());
  StrandDesc dup = ok;
  EXPECT_EQ(registry.Register(dup).code(), StatusCode::kInvalidArgument);
  StrandDesc spacey = ok;
  spacey.name = "a b";
  EXPECT_EQ(registry.Register(spacey).code(), StatusCode::kInvalidArgument);
}

// --- End-to-end adaptive races. ---

QjoConfig PortfolioConfig() {
  QjoConfig config;
  config.backend = QjoBackend::kPortfolio;
  config.portfolio.sweep_budget = 512;  // pure sweep-budget mode
  return config;
}

void ExpectReportsBitIdentical(const QjoReport& got, const QjoReport& want) {
  EXPECT_EQ(got.found_valid, want.found_valid);
  EXPECT_EQ(got.best_order.order(), want.best_order.order());
  EXPECT_EQ(got.best_cost, want.best_cost);
  EXPECT_EQ(got.portfolio.winner, want.portfolio.winner);
  EXPECT_EQ(got.portfolio.race.winner, want.portfolio.race.winner);
  EXPECT_EQ(got.portfolio.race.best_energy, want.portfolio.race.best_energy);
  EXPECT_EQ(got.portfolio.race.best_assignment,
            want.portfolio.race.best_assignment);
  EXPECT_EQ(got.portfolio.race.feature_bucket,
            want.portfolio.race.feature_bucket);
  EXPECT_EQ(got.portfolio.race.adaptive_applied,
            want.portfolio.race.adaptive_applied);
  ASSERT_EQ(got.portfolio.race.strands.size(),
            want.portfolio.race.strands.size());
  for (size_t s = 0; s < want.portfolio.race.strands.size(); ++s) {
    const StrandOutcome& g = got.portfolio.race.strands[s];
    const StrandOutcome& w = want.portfolio.race.strands[s];
    EXPECT_EQ(g.name, w.name) << "strand " << s;
    EXPECT_EQ(g.eligible, w.eligible) << "strand " << s;
    EXPECT_EQ(g.allocation.reads_per_round, w.allocation.reads_per_round)
        << "strand " << s;
    EXPECT_EQ(g.allocation.sweep_budget, w.allocation.sweep_budget)
        << "strand " << s;
    EXPECT_EQ(g.allocation.throttled, w.allocation.throttled)
        << "strand " << s;
    EXPECT_EQ(g.rounds_completed, w.rounds_completed) << "strand " << s;
    EXPECT_EQ(g.sweeps_completed, w.sweeps_completed) << "strand " << s;
    EXPECT_EQ(g.best_energy, w.best_energy) << "strand " << s;
    EXPECT_EQ(g.feasible, w.feasible) << "strand " << s;
    EXPECT_EQ(g.sweeps_to_incumbent, w.sweeps_to_incumbent) << "strand " << s;
    EXPECT_EQ(g.won, w.won) << "strand " << s;
  }
}

TEST(PortfolioAdaptiveTest, ColdStartBitIdenticalToFixedRace) {
  const Query q = MakeQuery(4, Shape::kChain);
  QjoConfig fixed = PortfolioConfig();
  const auto baseline = OptimizeJoinOrder(q, fixed);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  RunRecordStore empty;
  QjoConfig adaptive = PortfolioConfig();
  adaptive.adaptive = true;
  adaptive.strand_records = &empty;
  adaptive.portfolio.adaptive.record = false;
  const auto report = OptimizeJoinOrder(q, adaptive);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->portfolio.race.adaptive_applied);
  EXPECT_FALSE(report->portfolio.race.feature_bucket.empty());

  // An empty store means the fixed race, bit for bit (modulo the
  // adaptive bookkeeping fields the fixed run leaves blank).
  EXPECT_EQ(report->best_order.order(), baseline->best_order.order());
  EXPECT_EQ(report->best_cost, baseline->best_cost);
  EXPECT_EQ(report->portfolio.winner, baseline->portfolio.winner);
  EXPECT_EQ(report->portfolio.race.best_energy,
            baseline->portfolio.race.best_energy);
  EXPECT_EQ(report->portfolio.race.best_assignment,
            baseline->portfolio.race.best_assignment);
  ASSERT_EQ(report->portfolio.race.strands.size(),
            baseline->portfolio.race.strands.size());
  for (size_t s = 0; s < baseline->portfolio.race.strands.size(); ++s) {
    EXPECT_EQ(report->portfolio.race.strands[s].sweeps_completed,
              baseline->portfolio.race.strands[s].sweeps_completed);
    EXPECT_EQ(report->portfolio.race.strands[s].best_energy,
              baseline->portfolio.race.strands[s].best_energy);
  }
}

TEST(PortfolioAdaptiveTest, RecordsAreFedAtRaceEpilogue) {
  const Query q = MakeQuery(4, Shape::kChain);
  RunRecordStore store;
  QjoConfig config = PortfolioConfig();
  config.adaptive = true;
  config.strand_records = &store;
  const auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string bucket = report->portfolio.race.feature_bucket;
  ASSERT_FALSE(bucket.empty());
  EXPECT_EQ(store.BucketTrials(bucket), 1u);
  // The winner's record carries the win.
  EXPECT_EQ(store.Get(bucket, report->portfolio.winner).wins, 1u);
}

TEST(PortfolioAdaptiveTest, WarmRaceBitIdenticalAcrossParallelism) {
  const Query q = MakeQuery(4, Shape::kChain);

  // Learn the bucket key once, then fabricate a decisive history: the
  // replay contract only cares that the snapshot is fixed, not earned.
  RunRecordStore probe;
  QjoConfig probe_config = PortfolioConfig();
  probe_config.adaptive = true;
  probe_config.strand_records = &probe;
  const auto probed = OptimizeJoinOrder(q, probe_config);
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  const std::string bucket = probed->portfolio.race.feature_bucket;
  ASSERT_FALSE(bucket.empty());

  RunRecordStore store;
  for (int i = 0; i < 16; ++i) {
    store.Record(bucket, {MakeOutcome("sa", true, 1.0, 64),
                          MakeOutcome("tabu", false, 8.0, 512),
                          MakeOutcome("sqa", false, 20.0, 512)});
  }
  // A frozen snapshot: the races below must not feed back into it.
  const std::string frozen = store.Serialize();

  std::optional<QjoReport> baseline;
  for (int parallelism : {1, 4, 8}) {
    QjoConfig config = PortfolioConfig();
    config.adaptive = true;
    config.strand_records = &store;
    config.portfolio.adaptive.record = false;
    config.run.parallelism = parallelism;
    const auto report = OptimizeJoinOrder(q, config);
    ASSERT_TRUE(report.ok()) << "parallelism " << parallelism << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->found_valid);
    EXPECT_TRUE(report->portfolio.race.adaptive_applied);
    // The bandit actually intervened: some strand runs on a cut budget.
    bool any_throttled = false;
    for (const StrandOutcome& s : report->portfolio.race.strands) {
      any_throttled = any_throttled || s.allocation.throttled;
    }
    EXPECT_TRUE(any_throttled);
    if (!baseline.has_value()) {
      baseline = *report;
      continue;
    }
    ExpectReportsBitIdentical(*report, *baseline);
  }
  EXPECT_EQ(store.Serialize(), frozen);
}

TEST(PortfolioAdaptiveTest, ValidationRejectsBadRoundBudgets) {
  const Query q = MakeQuery(3, Shape::kChain);
  QjoConfig bad_reads = PortfolioConfig();
  bad_reads.portfolio.reads_per_round = 0;
  EXPECT_EQ(OptimizeJoinOrder(q, bad_reads).status().code(),
            StatusCode::kInvalidArgument);

  QjoConfig bad_sweeps = PortfolioConfig();
  bad_sweeps.portfolio.sweeps_per_round = 0;
  EXPECT_EQ(OptimizeJoinOrder(q, bad_sweeps).status().code(),
            StatusCode::kInvalidArgument);

  QjoConfig bad_parallelism = PortfolioConfig();
  bad_parallelism.run.parallelism = 0;
  EXPECT_EQ(OptimizeJoinOrder(q, bad_parallelism).status().code(),
            StatusCode::kInvalidArgument);

  // The one documented unbounded-config error path.
  QjoConfig unbounded = PortfolioConfig();
  unbounded.portfolio.run.deadline_ms = -1.0;
  unbounded.portfolio.sweep_budget = 0;
  EXPECT_EQ(OptimizeJoinOrder(q, unbounded).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qjo

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/qaoa_builder.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "sim/statevector.h"
#include "topology/coupling_graph.h"
#include "topology/density.h"
#include "topology/vendor_topologies.h"
#include "transpiler/native_gates.h"
#include "transpiler/routing.h"
#include "transpiler/transpiler.h"
#include "util/random.h"

namespace qjo {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Asserts that decomposing `circuit` to `set` preserves the unitary (up
/// to global phase) and leaves only native gates.
void ExpectEquivalentDecomposition(const QuantumCircuit& circuit,
                                   NativeGateSet set) {
  auto native = DecomposeToNative(circuit, set);
  ASSERT_TRUE(native.ok());
  for (const Gate& g : native->gates()) {
    EXPECT_TRUE(IsNativeGate(set, g.type))
        << GateTypeName(g.type) << " not native on " << NativeGateSetName(set);
  }
  auto u_original = CircuitUnitary(circuit);
  auto u_native = CircuitUnitary(*native);
  ASSERT_TRUE(u_original.ok());
  ASSERT_TRUE(u_native.ok());
  EXPECT_TRUE(UnitariesEqualUpToPhase(*u_original, *u_native, 1e-8))
      << "gate set " << NativeGateSetName(set);
}

QuantumCircuit SingleGateCircuit(int num_qubits, Gate gate) {
  QuantumCircuit c(num_qubits);
  c.Append(std::move(gate));
  return c;
}

class GateDecompositionTest
    : public ::testing::TestWithParam<NativeGateSet> {};

TEST_P(GateDecompositionTest, SingleQubitGates) {
  const NativeGateSet set = GetParam();
  ExpectEquivalentDecomposition(
      SingleGateCircuit(1, Gate::Single(GateType::kH, 0)), set);
  ExpectEquivalentDecomposition(
      SingleGateCircuit(1, Gate::Single(GateType::kX, 0)), set);
  ExpectEquivalentDecomposition(
      SingleGateCircuit(1, Gate::Single(GateType::kSx, 0)), set);
  for (double theta : {0.3, -1.2, kPi / 2, 2.5}) {
    ExpectEquivalentDecomposition(
        SingleGateCircuit(1, Gate::Single(GateType::kRx, 0, theta)), set);
    ExpectEquivalentDecomposition(
        SingleGateCircuit(1, Gate::Single(GateType::kRy, 0, theta)), set);
    ExpectEquivalentDecomposition(
        SingleGateCircuit(1, Gate::Single(GateType::kRz, 0, theta)), set);
  }
}

TEST_P(GateDecompositionTest, TwoQubitGates) {
  const NativeGateSet set = GetParam();
  ExpectEquivalentDecomposition(
      SingleGateCircuit(2, Gate::Two(GateType::kCx, 0, 1)), set);
  ExpectEquivalentDecomposition(
      SingleGateCircuit(2, Gate::Two(GateType::kCx, 1, 0)), set);
  ExpectEquivalentDecomposition(
      SingleGateCircuit(2, Gate::Two(GateType::kCz, 0, 1)), set);
  ExpectEquivalentDecomposition(
      SingleGateCircuit(2, Gate::Two(GateType::kSwap, 0, 1)), set);
  for (double theta : {0.7, -0.4, 1.9}) {
    ExpectEquivalentDecomposition(
        SingleGateCircuit(2, Gate::Two(GateType::kRzz, 0, 1, theta)), set);
    ExpectEquivalentDecomposition(
        SingleGateCircuit(2, Gate::Two(GateType::kMs, 0, 1, theta)), set);
  }
}

TEST_P(GateDecompositionTest, RandomThreeQubitCircuit) {
  const NativeGateSet set = GetParam();
  Rng rng(42);
  QuantumCircuit c(3);
  for (int i = 0; i < 20; ++i) {
    const int choice = static_cast<int>(rng.UniformInt(6));
    const int a = static_cast<int>(rng.UniformInt(3));
    int b = static_cast<int>(rng.UniformInt(3));
    while (b == a) b = static_cast<int>(rng.UniformInt(3));
    const double theta = rng.UniformDouble(-2.0, 2.0);
    switch (choice) {
      case 0: c.H(a); break;
      case 1: c.Rx(a, theta); break;
      case 2: c.Rz(a, theta); break;
      case 3: c.Cx(a, b); break;
      case 4: c.Rzz(a, b, theta); break;
      case 5: c.Ry(a, theta); break;
    }
  }
  ExpectEquivalentDecomposition(c, set);
}

INSTANTIATE_TEST_SUITE_P(AllGateSets, GateDecompositionTest,
                         ::testing::Values(NativeGateSet::kIbm,
                                           NativeGateSet::kRigetti,
                                           NativeGateSet::kIonq,
                                           NativeGateSet::kUnrestricted));

TEST(NativeGatesTest, UnrestrictedIsIdentity) {
  QuantumCircuit c(2);
  c.H(0);
  c.Rzz(0, 1, 0.5);
  auto native = DecomposeToNative(c, NativeGateSet::kUnrestricted);
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(native->num_gates(), 2);
}

TEST(NativeGatesTest, RigettiKeepsQuarterPiRx) {
  QuantumCircuit c(1);
  c.Rx(0, kPi / 2);
  auto native = DecomposeToNative(c, NativeGateSet::kRigetti);
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(native->num_gates(), 1);
  // Arbitrary angles must expand.
  QuantumCircuit c2(1);
  c2.Rx(0, 0.3);
  auto native2 = DecomposeToNative(c2, NativeGateSet::kRigetti);
  ASSERT_TRUE(native2.ok());
  EXPECT_GT(native2->num_gates(), 1);
}

TEST(NativeGatesTest, MergeRotationsCombinesAndCancels) {
  QuantumCircuit c(2);
  c.Rz(0, 0.5);
  c.Rz(0, 0.25);
  c.Rz(1, 1.0);
  c.Rz(1, -1.0);
  c.Rzz(0, 1, 0.3);
  c.Rzz(0, 1, 0.4);
  const QuantumCircuit merged = MergeRotations(c);
  EXPECT_EQ(merged.CountGates(GateType::kRz), 1);
  EXPECT_EQ(merged.CountGates(GateType::kRzz), 1);
  for (const Gate& g : merged.gates()) {
    if (g.type == GateType::kRz) EXPECT_NEAR(g.parameter, 0.75, 1e-12);
    if (g.type == GateType::kRzz) EXPECT_NEAR(g.parameter, 0.7, 1e-12);
  }
}

TEST(NativeGatesTest, MergeDoesNotCrossBlockingGates) {
  QuantumCircuit c(2);
  c.Rz(0, 0.5);
  c.Cx(0, 1);
  c.Rz(0, 0.25);
  const QuantumCircuit merged = MergeRotations(c);
  EXPECT_EQ(merged.CountGates(GateType::kRz), 2);
}

TEST(NativeGatesTest, MergePreservesSemantics) {
  Rng rng(9);
  QuantumCircuit c(3);
  for (int i = 0; i < 30; ++i) {
    const int a = static_cast<int>(rng.UniformInt(3));
    int b = (a + 1) % 3;
    switch (rng.UniformInt(4)) {
      case 0: c.Rz(a, rng.UniformDouble(-1, 1)); break;
      case 1: c.Rx(a, rng.UniformDouble(-1, 1)); break;
      case 2: c.Rzz(a, b, rng.UniformDouble(-1, 1)); break;
      case 3: c.H(a); break;
    }
  }
  const QuantumCircuit merged = MergeRotations(c);
  auto u1 = CircuitUnitary(c);
  auto u2 = CircuitUnitary(merged);
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  EXPECT_TRUE(UnitariesEqualUpToPhase(*u1, *u2, 1e-8));
  EXPECT_LE(merged.num_gates(), c.num_gates());
}

QuantumCircuit RandomTwoQubitHeavyCircuit(int qubits, int gates, Rng& rng) {
  QuantumCircuit c(qubits);
  for (int q = 0; q < qubits; ++q) c.H(q);
  for (int i = 0; i < gates; ++i) {
    const int a = static_cast<int>(rng.UniformInt(qubits));
    int b = static_cast<int>(rng.UniformInt(qubits));
    while (b == a) b = static_cast<int>(rng.UniformInt(qubits));
    c.Rzz(a, b, rng.UniformDouble(-1.0, 1.0));
  }
  return c;
}

class RoutingStrategyTest
    : public ::testing::TestWithParam<RoutingStrategy> {};

TEST_P(RoutingStrategyTest, ProducesProperlyRoutedCircuits) {
  Rng rng(17);
  const CouplingGraph device = MakeIbmFalcon27();
  for (int trial = 0; trial < 3; ++trial) {
    const QuantumCircuit logical =
        RandomTwoQubitHeavyCircuit(10, 25, rng);
    auto layout = ChooseInitialLayout(logical, device, rng);
    ASSERT_TRUE(layout.ok());
    auto routed =
        RouteCircuit(logical, device, *layout, GetParam(), rng);
    ASSERT_TRUE(routed.ok());
    EXPECT_TRUE(IsProperlyRouted(routed->circuit, device));
    // All original gates survive (SWAPs come on top).
    EXPECT_EQ(routed->circuit.num_gates(),
              logical.num_gates() + routed->num_swaps);
  }
}

TEST_P(RoutingStrategyTest, RoutedCircuitIsEquivalentUnderLayout) {
  Rng rng(23);
  const CouplingGraph device = MakeLineGraph(5);
  const QuantumCircuit logical = RandomTwoQubitHeavyCircuit(4, 10, rng);
  auto layout = ChooseInitialLayout(logical, device, rng);
  ASSERT_TRUE(layout.ok());
  auto routed = RouteCircuit(logical, device, *layout, GetParam(), rng);
  ASSERT_TRUE(routed.ok());
  ASSERT_TRUE(IsProperlyRouted(routed->circuit, device));

  // Simulate both; relate via the final layout.
  auto logical_state = StateVector::Create(4);
  ASSERT_TRUE(logical_state.ok());
  logical_state->ApplyCircuit(logical);
  auto physical_state = StateVector::Create(5);
  ASSERT_TRUE(physical_state.ok());
  physical_state->ApplyCircuit(routed->circuit);

  // P(logical basis x) must equal P(physical basis y) where
  // y[final_layout[l]] = x[l], other qubits 0.
  for (uint64_t x = 0; x < 16; ++x) {
    uint64_t y = 0;
    for (int l = 0; l < 4; ++l) {
      if (x & (uint64_t{1} << l)) {
        y |= uint64_t{1} << routed->final_layout[l];
      }
    }
    EXPECT_NEAR(logical_state->Probability(x), physical_state->Probability(y),
                1e-9)
        << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, RoutingStrategyTest,
                         ::testing::Values(RoutingStrategy::kLookahead,
                                           RoutingStrategy::kBasic));

TEST(RoutingTest, RejectsOversizedCircuits) {
  Rng rng(31);
  const CouplingGraph device = MakeLineGraph(3);
  const QuantumCircuit logical = RandomTwoQubitHeavyCircuit(5, 4, rng);
  EXPECT_FALSE(ChooseInitialLayout(logical, device, rng).ok());
}

TEST(RoutingTest, CompleteGraphNeedsNoSwaps) {
  Rng rng(37);
  const CouplingGraph device = MakeCompleteGraph(8);
  const QuantumCircuit logical = RandomTwoQubitHeavyCircuit(8, 20, rng);
  auto layout = ChooseInitialLayout(logical, device, rng);
  ASSERT_TRUE(layout.ok());
  auto routed = RouteCircuit(logical, device, *layout,
                             RoutingStrategy::kLookahead, rng);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->num_swaps, 0);
}

TEST(TranspilerTest, EndToEndPipeline) {
  Rng rng(41);
  Qubo qubo(8);
  for (int i = 0; i < 8; ++i) {
    qubo.AddLinear(i, rng.UniformDouble(-1, 1));
    for (int j = i + 1; j < 8; ++j) {
      if (rng.Bernoulli(0.5)) {
        qubo.AddQuadratic(i, j, rng.UniformDouble(-1, 1));
      }
    }
  }
  QaoaParameters params{{0.4}, {0.9}};
  auto logical = BuildQaoaCircuit(qubo, params);
  ASSERT_TRUE(logical.ok());

  TranspileOptions options;
  options.gate_set = NativeGateSet::kIbm;
  options.seed = 5;
  auto result = Transpile(*logical, MakeIbmFalcon27(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsProperlyRouted(result->circuit, MakeIbmFalcon27()));
  for (const Gate& g : result->circuit.gates()) {
    EXPECT_TRUE(IsNativeGate(NativeGateSet::kIbm, g.type));
  }
  EXPECT_EQ(result->depth, result->circuit.Depth());
  EXPECT_GT(result->depth, logical->Depth());  // routing+decomposition cost
}

TEST(TranspilerTest, SeedsChangeOutcome) {
  Rng rng(43);
  const QuantumCircuit logical = RandomTwoQubitHeavyCircuit(12, 40, rng);
  TranspileOptions options;
  options.gate_set = NativeGateSet::kIbm;
  std::set<int> depths;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    options.seed = seed;
    auto result = Transpile(logical, MakeIbmFalcon27(), options);
    ASSERT_TRUE(result.ok());
    depths.insert(result->depth);
  }
  // Transpilation is stochastic: several distinct depths (Fig. 2 variance).
  EXPECT_GT(depths.size(), 1u);
}

TEST(TranspilerTest, RoutesOnDensityExtrapolatedTopologies) {
  Rng rng(53);
  const QuantumCircuit logical = RandomTwoQubitHeavyCircuit(14, 50, rng);
  const CouplingGraph base = MakeIbmFalcon27();
  TranspileOptions options;
  options.gate_set = NativeGateSet::kIbm;
  options.seed = 9;
  int previous_swaps = 1 << 30;
  for (double density : {0.0, 0.25, 1.0}) {
    Rng density_rng(3);
    auto device = ExtrapolateDensity(base, density, density_rng);
    ASSERT_TRUE(device.ok());
    auto result = Transpile(logical, *device, options);
    ASSERT_TRUE(result.ok()) << density;
    EXPECT_TRUE(IsProperlyRouted(result->circuit, *device));
    // More connectivity, (weakly) fewer swaps.
    EXPECT_LE(result->num_swaps, previous_swaps) << density;
    previous_swaps = result->num_swaps;
  }
}

TEST(TranspilerTest, BasicRouterIsWorseButValid) {
  Rng rng(59);
  const QuantumCircuit logical = RandomTwoQubitHeavyCircuit(16, 80, rng);
  const CouplingGraph device = MakeIbmFalcon27();
  TranspileOptions lookahead;
  lookahead.gate_set = NativeGateSet::kUnrestricted;
  lookahead.seed = 2;
  TranspileOptions basic = lookahead;
  basic.routing = RoutingStrategy::kBasic;
  auto fast = Transpile(logical, device, lookahead);
  auto slow = Transpile(logical, device, basic);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  // The naive router needs at least as many swaps on average; allow some
  // slack for single-instance variance but expect a clear gap.
  EXPECT_GT(slow->num_swaps, fast->num_swaps / 2);
  EXPECT_TRUE(IsProperlyRouted(slow->circuit, device));
}

TEST(TranspilerTest, DenserTopologyShrinksDepth) {
  Rng rng(47);
  const QuantumCircuit logical = RandomTwoQubitHeavyCircuit(14, 60, rng);
  TranspileOptions options;
  options.gate_set = NativeGateSet::kIbm;
  options.seed = 3;
  auto sparse = Transpile(logical, MakeIbmFalcon27(), options);
  auto dense = Transpile(logical, MakeCompleteGraph(27), options);
  ASSERT_TRUE(sparse.ok());
  ASSERT_TRUE(dense.ok());
  EXPECT_LT(dense->depth, sparse->depth);
  EXPECT_EQ(dense->num_swaps, 0);
}

}  // namespace
}  // namespace qjo

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "jo/classical.h"
#include "jo/join_tree.h"
#include "jo/query.h"
#include "jo/query_generator.h"
#include "util/random.h"

namespace qjo {
namespace {

/// The running example of Sec. 3: R, S, T with |.|=100 and Sel(p_RS)=0.1.
Query MakeExampleQuery() {
  Query q;
  q.AddRelation("R", 100);
  q.AddRelation("S", 100);
  q.AddRelation("T", 100);
  EXPECT_TRUE(q.AddPredicate(0, 1, 0.1).ok());
  return q;
}

TEST(QueryTest, PredicateValidation) {
  Query q;
  q.AddRelation("R", 10);
  q.AddRelation("S", 10);
  EXPECT_TRUE(q.AddPredicate(0, 1, 0.5).ok());
  EXPECT_FALSE(q.AddPredicate(0, 0, 0.5).ok());
  EXPECT_FALSE(q.AddPredicate(0, 2, 0.5).ok());
  EXPECT_FALSE(q.AddPredicate(0, 1, 0.0).ok());
  EXPECT_FALSE(q.AddPredicate(0, 1, 1.5).ok());
  EXPECT_FALSE(q.AddPredicate(0, 1, -0.1).ok());
}

TEST(QueryTest, JoinCardinalityAppliesInternalPredicates) {
  const Query q = MakeExampleQuery();
  EXPECT_DOUBLE_EQ(q.JoinCardinality(0b011), 100.0 * 100.0 * 0.1);  // R,S
  EXPECT_DOUBLE_EQ(q.JoinCardinality(0b101), 100.0 * 100.0);        // R,T
  EXPECT_DOUBLE_EQ(q.JoinCardinality(0b111), 100.0 * 100.0 * 100.0 * 0.1);
}

TEST(QueryTest, SelectivityBetween) {
  const Query q = MakeExampleQuery();
  EXPECT_DOUBLE_EQ(q.SelectivityBetween(0b001, 1), 0.1);  // S joins {R}
  EXPECT_DOUBLE_EQ(q.SelectivityBetween(0b001, 2), 1.0);  // T joins {R}
  EXPECT_DOUBLE_EQ(q.SelectivityBetween(0b010, 0), 0.1);  // symmetric
}

TEST(QueryTest, NumJoins) {
  EXPECT_EQ(MakeExampleQuery().num_joins(), 2);
}

TEST(CostModelTest, Example33Costs) {
  // (R ⋈ S) ⋈ T: intermediate 1,000, final 1,000 * 100 = 100,000.
  const Query q = MakeExampleQuery();
  const LeftDeepOrder rst({0, 1, 2});
  const CostBreakdown c = EvaluateCost(q, rst);
  ASSERT_EQ(c.intermediate_cardinalities.size(), 2u);
  EXPECT_DOUBLE_EQ(c.intermediate_cardinalities[0], 1000.0);
  EXPECT_DOUBLE_EQ(c.intermediate_cardinalities[1], 100000.0);
  EXPECT_DOUBLE_EQ(c.total_cost, 101000.0);
}

TEST(CostModelTest, CrossProductOrderCostsMore) {
  const Query q = MakeExampleQuery();
  // (R ⋈ T) needs a cross product: intermediate 10,000.
  EXPECT_GT(Cost(q, LeftDeepOrder({0, 2, 1})),
            Cost(q, LeftDeepOrder({0, 1, 2})));
}

TEST(CostModelTest, FinalResultCardinalityOrderIndependent) {
  Rng rng(5);
  QueryGenOptions options;
  options.num_relations = 5;
  options.graph_type = QueryGraphType::kChain;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  std::vector<int> perm(5);
  std::iota(perm.begin(), perm.end(), 0);
  const double reference =
      EvaluateCost(*q, LeftDeepOrder(perm)).intermediate_cardinalities.back();
  for (int i = 0; i < 10; ++i) {
    rng.Shuffle(perm);
    const double final_card =
        EvaluateCost(*q, LeftDeepOrder(perm)).intermediate_cardinalities.back();
    EXPECT_NEAR(final_card / reference, 1.0, 1e-9);
  }
}

TEST(LeftDeepOrderTest, CreateValidation) {
  const Query q = MakeExampleQuery();
  EXPECT_TRUE(LeftDeepOrder::Create({0, 1, 2}, q).ok());
  EXPECT_FALSE(LeftDeepOrder::Create({0, 1}, q).ok());
  EXPECT_FALSE(LeftDeepOrder::Create({0, 1, 1}, q).ok());
  EXPECT_FALSE(LeftDeepOrder::Create({0, 1, 3}, q).ok());
}

TEST(LeftDeepOrderTest, ToStringNesting) {
  const Query q = MakeExampleQuery();
  EXPECT_EQ(LeftDeepOrder({0, 1, 2}).ToString(q), "(R ⋈ S) ⋈ T");
}

TEST(QueryGeneratorTest, ChainShape) {
  Rng rng(1);
  QueryGenOptions options;
  options.num_relations = 6;
  options.graph_type = QueryGraphType::kChain;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_relations(), 6);
  EXPECT_EQ(q->num_predicates(), 5);
  for (int p = 0; p < q->num_predicates(); ++p) {
    EXPECT_EQ(q->predicate(p).right - q->predicate(p).left, 1);
  }
}

TEST(QueryGeneratorTest, StarShape) {
  Rng rng(2);
  QueryGenOptions options;
  options.num_relations = 6;
  options.graph_type = QueryGraphType::kStar;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_predicates(), 5);
  for (int p = 0; p < q->num_predicates(); ++p) {
    EXPECT_EQ(q->predicate(p).left, 0);
  }
}

TEST(QueryGeneratorTest, CycleShape) {
  Rng rng(3);
  QueryGenOptions options;
  options.num_relations = 6;
  options.graph_type = QueryGraphType::kCycle;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_predicates(), 6);  // one more than chain
}

TEST(QueryGeneratorTest, CliqueShape) {
  Rng rng(4);
  QueryGenOptions options;
  options.num_relations = 5;
  options.graph_type = QueryGraphType::kClique;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_predicates(), 10);
}

TEST(QueryGeneratorTest, RejectsTooFewRelations) {
  Rng rng(5);
  QueryGenOptions options;
  options.num_relations = 1;
  EXPECT_FALSE(GenerateQuery(options, rng).ok());
  options.num_relations = 2;
  options.graph_type = QueryGraphType::kCycle;
  EXPECT_FALSE(GenerateQuery(options, rng).ok());
}

TEST(QueryGeneratorTest, IntegerLogValues) {
  Rng rng(6);
  QueryGenOptions options;
  options.num_relations = 8;
  options.integer_log_values = true;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  for (const Relation& rel : q->relations()) {
    const double log_card = std::log10(rel.cardinality);
    EXPECT_NEAR(log_card, std::round(log_card), 1e-9);
  }
  for (const Predicate& p : q->predicates()) {
    const double log_sel = std::log10(p.selectivity);
    EXPECT_NEAR(log_sel, std::round(log_sel), 1e-9);
  }
}

TEST(QueryGeneratorTest, PredicateCountScenarios) {
  Rng rng(7);
  QueryGenOptions options;
  options.num_relations = 3;
  for (int p = 0; p <= 3; ++p) {
    auto q = GenerateQueryWithPredicateCount(options, p, rng);
    ASSERT_TRUE(q.ok()) << p;
    EXPECT_EQ(q->num_predicates(), p);
  }
  EXPECT_FALSE(GenerateQueryWithPredicateCount(options, 4, rng).ok());
}

TEST(ClassicalTest, ExhaustiveMatchesHandComputedOptimum) {
  const Query q = MakeExampleQuery();
  auto result = OptimizeExhaustive(q);
  ASSERT_TRUE(result.ok());
  // Optimal orders start with the selective R-S join.
  EXPECT_DOUBLE_EQ(result->cost, 101000.0);
  EXPECT_EQ(result->order[2], 2);
}

TEST(ClassicalTest, ExhaustiveRejectsLargeInputs) {
  Rng rng(8);
  QueryGenOptions options;
  options.num_relations = 12;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(OptimizeExhaustive(*q).ok());
}

struct DpCase {
  QueryGraphType type;
  int relations;
  uint64_t seed;
};

class DpMatchesExhaustiveTest : public ::testing::TestWithParam<DpCase> {};

TEST_P(DpMatchesExhaustiveTest, SameOptimalCost) {
  const DpCase& c = GetParam();
  Rng rng(c.seed);
  QueryGenOptions options;
  options.num_relations = c.relations;
  options.graph_type = c.type;
  options.integer_log_values = false;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  auto exhaustive = OptimizeExhaustive(*q);
  auto dp = OptimizeDp(*q);
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_TRUE(dp.ok());
  EXPECT_NEAR(dp->cost / exhaustive->cost, 1.0, 1e-9);
  // DP's reported cost must agree with re-evaluating its own order.
  EXPECT_NEAR(Cost(*q, dp->order) / dp->cost, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpMatchesExhaustiveTest,
    ::testing::Values(DpCase{QueryGraphType::kChain, 4, 11},
                      DpCase{QueryGraphType::kChain, 6, 12},
                      DpCase{QueryGraphType::kChain, 7, 13},
                      DpCase{QueryGraphType::kStar, 4, 14},
                      DpCase{QueryGraphType::kStar, 6, 15},
                      DpCase{QueryGraphType::kStar, 7, 16},
                      DpCase{QueryGraphType::kCycle, 4, 17},
                      DpCase{QueryGraphType::kCycle, 6, 18},
                      DpCase{QueryGraphType::kCycle, 7, 19},
                      DpCase{QueryGraphType::kClique, 5, 20},
                      DpCase{QueryGraphType::kClique, 6, 21}));

TEST(ClassicalTest, HeuristicsNeverBeatDp) {
  for (uint64_t seed = 40; seed < 50; ++seed) {
    Rng rng(seed);
    QueryGenOptions options;
    options.num_relations = 7;
    options.graph_type =
        seed % 2 == 0 ? QueryGraphType::kChain : QueryGraphType::kStar;
    auto q = GenerateQuery(options, rng);
    ASSERT_TRUE(q.ok());
    auto dp = OptimizeDp(*q);
    auto greedy = OptimizeGreedy(*q);
    ASSERT_TRUE(dp.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_GE(greedy->cost, dp->cost * (1.0 - 1e-9));
    Rng ii_rng(seed);
    auto ii = OptimizeIterativeImprovement(*q, ii_rng, 5);
    ASSERT_TRUE(ii.ok());
    EXPECT_GE(ii->cost, dp->cost * (1.0 - 1e-9));
    // Both heuristics must report costs consistent with their orders.
    EXPECT_NEAR(Cost(*q, greedy->order) / greedy->cost, 1.0, 1e-9);
    EXPECT_NEAR(Cost(*q, ii->order) / ii->cost, 1.0, 1e-9);
  }
}

TEST(ClassicalTest, DpHandlesLargerInstances) {
  Rng rng(99);
  QueryGenOptions options;
  options.num_relations = 16;
  options.graph_type = QueryGraphType::kChain;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  auto dp = OptimizeDp(*q);
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(dp->order.size(), 16);
}

TEST(ClassicalTest, DpRefusesPastMemoryCapWithByteEstimate) {
  Rng rng(7);
  QueryGenOptions options;
  options.num_relations = kMaxDpRelations + 1;
  options.graph_type = QueryGraphType::kChain;
  auto q = GenerateQuery(options, rng);
  ASSERT_TRUE(q.ok());
  auto dp = OptimizeDp(*q);
  ASSERT_FALSE(dp.ok());
  EXPECT_EQ(dp.status().code(), StatusCode::kResourceExhausted);
  // The refusal explains itself: table size estimate plus the cap.
  EXPECT_NE(dp.status().message().find("MiB"), std::string::npos)
      << dp.status().ToString();
  EXPECT_NE(dp.status().message().find(std::to_string(kMaxDpRelations)),
            std::string::npos);
}

TEST(ClassicalTest, GreedyPrefersConnectedJoinsOnCardinalityTies) {
  // |R0 x R1| = 100 (cross product, scanned first) ties with
  // |R2 ⋈ R3| = 100 (connected, scanned later); every mixed pair costs
  // 1000. Scan order alone would keep the cross product — the
  // connectivity tie-break must flip the pick to the joined pair.
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 100);
  q.AddRelation("R3", 100);
  ASSERT_TRUE(q.AddPredicate(2, 3, 0.01).ok());
  auto greedy = OptimizeGreedy(q);
  ASSERT_TRUE(greedy.ok());
  const std::vector<int>& order = greedy->order.order();
  EXPECT_TRUE((order[0] == 2 && order[1] == 3) ||
              (order[0] == 3 && order[1] == 2))
      << greedy->order.ToString(q);
}

TEST(ClassicalTest, GreedyExtensionPrefersConnectedRelationOnTies) {
  // After the forced first join R0 ⋈ R1 (card 10), appending the island
  // R2 (cross product, scanned first) and the connected R3 (predicate to
  // R0) both yield card 100; the predicate-connected extension must win
  // the tie even though the scan reaches it later.
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 10);
  q.AddRelation("R3", 100);
  ASSERT_TRUE(q.AddPredicate(0, 1, 0.1).ok());
  ASSERT_TRUE(q.AddPredicate(0, 3, 0.1).ok());
  auto greedy = OptimizeGreedy(q);
  ASSERT_TRUE(greedy.ok());
  const std::vector<int>& order = greedy->order.order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[2], 3) << greedy->order.ToString(q);
}

}  // namespace
}  // namespace qjo

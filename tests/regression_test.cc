// Regression guards for bugs found (and fixed) while building this
// library. Each test pins the exact failure mode so it cannot silently
// reappear.

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "embedding/minor_embedding.h"
#include "qubo/ising.h"
#include "sim/sqa.h"
#include "sim/statevector.h"
#include "topology/vendor_topologies.h"
#include "transpiler/native_gates.h"
#include "transpiler/transpiler.h"
#include "util/random.h"

namespace qjo {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Bug 1: RY was decomposed with the conjugating RZs in matrix order
// instead of circuit order, flipping the rotation axis.
TEST(RegressionTest, RyDecompositionOrientation) {
  QuantumCircuit ry(1);
  ry.Ry(0, kPi / 2);
  auto native = DecomposeToNative(ry, NativeGateSet::kIbm);
  ASSERT_TRUE(native.ok());
  // RY(pi/2)|0> = (|0> + |1>)/sqrt(2) with REAL positive amplitudes.
  auto sv = StateVector::Create(1);
  ASSERT_TRUE(sv.ok());
  sv->ApplyCircuit(*native);
  EXPECT_NEAR(sv->Probability(0), 0.5, 1e-9);
  EXPECT_NEAR(sv->Probability(1), 0.5, 1e-9);
  // The relative phase must match RY, not RY^dagger: applying the ideal
  // inverse rotation must return to |0>.
  sv->Apply(Gate::Single(GateType::kRy, 0, -kPi / 2));
  EXPECT_NEAR(sv->Probability(0), 1.0, 1e-9);
}

// Bug 2: the SQA Metropolis step used dE = +2 s (h + J s) instead of
// -2 s (h + J s), turning the annealer into an energy *maximiser*. A
// ferromagnetic chain then returned the highest-energy staggered state.
TEST(RegressionTest, SqaMinimisesNotMaximises) {
  IsingModel ising;
  const int n = 10;
  ising.h.assign(n, 0.0);
  for (int i = 0; i + 1 < n; ++i) ising.couplings.emplace_back(i, i + 1, -1.0);
  SqaOptions options;
  options.num_reads = 10;
  options.annealing_time_us = 20.0;
  options.sweeps_per_us = 10.0;
  Rng rng(3);
  auto samples = RunSqa(ising, options, rng);
  ASSERT_TRUE(samples.ok());
  double mean = 0.0;
  for (const SqaSample& s : *samples) mean += s.energy;
  mean /= samples->size();
  // The maximiser bug produced mean = +(n-1); the fix gives ~-(n-1).
  EXPECT_LT(mean, 0.0);
}

// Bug 3: the lookahead router could livelock when the extended-window
// term dominated the front-layer term; the escape hatch must guarantee
// termination on any connected device, including extremely sparse lines.
TEST(RegressionTest, RouterTerminatesOnPathologicalInputs) {
  Rng rng(7);
  // Long-range gates on a line: worst case for swap pressure.
  QuantumCircuit c(10);
  for (int i = 0; i < 15; ++i) {
    c.Rzz(i % 10, (i + 5) % 10, 0.3);
  }
  TranspileOptions options;
  options.gate_set = NativeGateSet::kUnrestricted;
  options.seed = 11;
  auto result = Transpile(c, MakeLineGraph(10), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsProperlyRouted(result->circuit, MakeLineGraph(10)));
}

// Bug 4: deterministic path costs made the embedder cycle through the
// same conflicted configurations forever on clique-rich QUBO graphs; the
// jittered costs + best-config tracking must embed a K7 into Pegasus P2
// reliably (it fit physically all along).
TEST(RegressionTest, EmbedderEscapesDeterministicCycles) {
  std::vector<std::pair<int, int>> k7;
  for (int i = 0; i < 7; ++i) {
    for (int j = i + 1; j < 7; ++j) k7.emplace_back(i, j);
  }
  auto pegasus = MakePegasus(2);
  ASSERT_TRUE(pegasus.ok());
  Rng rng(13);
  EmbeddingOptions options;
  auto embedding = FindMinorEmbedding(k7, 7, *pegasus, options, rng);
  ASSERT_TRUE(embedding.ok());
  EXPECT_TRUE(VerifyEmbedding(k7, 7, *pegasus, *embedding));
}

// Bug 5: Gray-code enumeration in the brute-force solver must agree with
// direct evaluation even when quadratic terms cancel to zero (the zero-
// coefficient entries used to linger in the adjacency map).
TEST(RegressionTest, CancelledCouplingsLeaveNoGhostEdges) {
  Qubo qubo(4);
  qubo.AddQuadratic(0, 1, 2.0);
  qubo.AddQuadratic(0, 1, -2.0);  // cancels exactly
  qubo.AddLinear(2, -1.0);
  EXPECT_EQ(qubo.num_quadratic_terms(), 0);
  EXPECT_TRUE(qubo.Edges().empty());
  EXPECT_DOUBLE_EQ(qubo.Energy({1, 1, 1, 0}), -1.0);
}

}  // namespace
}  // namespace qjo

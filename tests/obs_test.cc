// Tests for the observability layer: trace recording, stage timings,
// metrics merge determinism, export schemas, and the two pipeline-level
// contracts — recorded runs are bit-identical to unrecorded ones on
// every backend, and exported portfolio counters mirror the
// PortfolioReport exactly.

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quantum_optimizer.h"
#include "jo/query.h"
#include "obs/obs.h"
#include "qubo/qubo.h"
#include "qubo/solvers.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

Query MakePaperInstance(int num_predicates) {
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 10);
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {0, 2}};
  for (int p = 0; p < num_predicates; ++p) {
    EXPECT_TRUE(q.AddPredicate(edges[p].first, edges[p].second, 0.1).ok());
  }
  return q;
}

Query MakeChainQuery(int relations) {
  Query q;
  for (int i = 0; i < relations; ++i) {
    q.AddRelation("R" + std::to_string(i), 100.0 * (i + 1));
  }
  for (int i = 0; i + 1 < relations; ++i) {
    EXPECT_TRUE(q.AddPredicate(i, i + 1, 0.1).ok());
  }
  return q;
}

Qubo MakeRandomQubo(int n, uint64_t seed) {
  Rng rng(seed);
  Qubo q(n);
  for (int i = 0; i < n; ++i) {
    q.AddLinear(i, rng.UniformDouble(-2, 2));
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.3)) q.AddQuadratic(i, j, rng.UniformDouble(-2, 2));
    }
  }
  return q;
}

// --- TraceRecorder / StageSpan. ---

TEST(TraceRecorderTest, RecordsNestedSpansSortedByStart) {
  TraceRecorder recorder;
  {
    StageSpan outer(&recorder, "outer");
    StageSpan inner(&recorder, "inner");
  }
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start: outer opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  // The outer span closes last, so it covers the inner one.
  EXPECT_GE(events[0].start_ns + events[0].duration_ns,
            events[1].start_ns + events[1].duration_ns);
}

TEST(TraceRecorderTest, NullSinksRecordNothing) {
  { StageSpan span(nullptr, "noop"); }  // must not crash
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceRecorderTest, MergesShardsFromManyThreads) {
  TraceRecorder recorder;
  ThreadPool pool(4);
  ParallelFor(&pool, 0, 64, [&](int64_t) {
    StageSpan span(&recorder, "work");
  });
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  for (const TraceEvent& e : events) EXPECT_EQ(e.name, "work");
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const TraceEvent& a, const TraceEvent& b) {
        return a.start_ns < b.start_ns;
      }));
}

TEST(TraceRecorderTest, ChromeTraceJsonSchema) {
  TraceRecorder recorder;
  {
    StageSpan span(&recorder, "stage \"a\"");  // exercises escaping
  }
  std::ostringstream os;
  recorder.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [",
                       0),
            0u)
      << json;
  EXPECT_NE(json.find("\"name\": \"stage \\\"a\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"qjo\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  ASSERT_GE(json.size(), 4u);
  EXPECT_EQ(json.substr(json.size() - 4), "]\n}\n");
}

TEST(StageTimingsTest, SinkAccumulatesRepeatedStages) {
  StageTimings timings;
  { StageSpan span(nullptr, "read", &timings); }
  { StageSpan span(nullptr, "read", &timings); }
  { StageSpan span(nullptr, "solve", &timings); }
  ASSERT_EQ(timings.stages.size(), 3u);
  EXPECT_TRUE(timings.Has("read"));
  EXPECT_TRUE(timings.Has("solve"));
  EXPECT_FALSE(timings.Has("absent"));
  EXPECT_GE(timings.Of("read"), 0.0);
  EXPECT_DOUBLE_EQ(timings.Of("absent"), 0.0);
}

// --- MetricsRegistry. ---

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.Count("alpha", 3);
  registry.Count("alpha", 2);
  registry.Count("beta");
  registry.GaugeMax("depth", 2.0);
  registry.GaugeMax("depth", 4.5);
  registry.GaugeMax("depth", 3.0);
  registry.Observe("latency", 1.0);
  registry.Observe("latency", 3.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("alpha"), 5u);
  EXPECT_EQ(snapshot.counters.at("beta"), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("depth"), 4.5);
  const MetricsSnapshot::Histogram& h = snapshot.histograms.at("latency");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
}

TEST(MetricsRegistryTest, DeterministicMergeAcrossThreadCounts) {
  // The same logical workload sharded over 1, 4, and 8 threads must merge
  // to identical counters/gauges/histogram buckets: sums and maxima are
  // order-independent.
  std::optional<MetricsSnapshot> baseline;
  for (int threads : {1, 4, 8}) {
    MetricsRegistry registry;
    ThreadPool pool(threads);
    ParallelFor(&pool, 0, 256, [&](int64_t i) {
      registry.Count("items");
      registry.Count("weighted", static_cast<uint64_t>(i));
      registry.GaugeMax("peak", static_cast<double>(i));
      registry.Observe("value", static_cast<double>(i % 17));
    });
    const MetricsSnapshot snapshot = registry.Snapshot();
    if (!baseline.has_value()) {
      baseline = snapshot;
      continue;
    }
    EXPECT_EQ(snapshot.counters, baseline->counters) << threads;
    EXPECT_EQ(snapshot.gauges, baseline->gauges) << threads;
    ASSERT_EQ(snapshot.histograms.size(), baseline->histograms.size());
    for (const auto& [name, h] : snapshot.histograms) {
      const MetricsSnapshot::Histogram& want = baseline->histograms.at(name);
      EXPECT_EQ(h.count, want.count) << name;
      EXPECT_EQ(h.buckets, want.buckets) << name;
      EXPECT_DOUBLE_EQ(h.min, want.min) << name;
      EXPECT_DOUBLE_EQ(h.max, want.max) << name;
    }
  }
}

TEST(MetricsRegistryTest, JsonSchemaGolden) {
  MetricsRegistry registry;
  registry.Count("alpha", 3);
  registry.Count("beta");
  registry.GaugeMax("depth", 4.5);
  registry.Observe("latency", 1.0);
  registry.Observe("latency", 3.0);
  std::ostringstream os;
  registry.WriteJson(os);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"alpha\": 3,\n"
      "    \"beta\": 1\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"depth\": 4.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"latency\": {\"count\": 2, \"min\": 1, \"max\": 3, "
      "\"buckets\": {\"le_1\": 1, \"le_4\": 1}}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(os.str(), expected);
}

// --- Solver-level determinism of recorded runs. ---

TEST(ObsSolverTest, SaMetricsDeterministicAcrossParallelism) {
  const Qubo qubo = MakeRandomQubo(48, 91);
  std::optional<std::map<std::string, uint64_t>> baseline;
  std::optional<std::vector<QuboSolution>> baseline_reads;
  for (int parallelism : {1, 4, 8}) {
    MetricsRegistry registry;
    SaOptions options;
    options.num_reads = 32;
    options.sweeps_per_read = 48;
    options.control.parallelism = parallelism;
    options.control.metrics = &registry;
    Rng rng(93);
    const std::vector<QuboSolution> reads =
        SolveQuboSimulatedAnnealing(qubo, options, rng);
    const MetricsSnapshot snapshot = registry.Snapshot();
    EXPECT_EQ(snapshot.counters.at("sa.reads"), 32u);
    EXPECT_EQ(snapshot.counters.at("sa.sweeps"), 32u * 48u);
    EXPECT_EQ(snapshot.counters.at("sa.proposals"), 32u * 48u * 48u);
    EXPECT_GT(snapshot.counters.at("sa.accepts"), 0u);
    if (!baseline.has_value()) {
      baseline = snapshot.counters;
      baseline_reads = reads;
      continue;
    }
    EXPECT_EQ(snapshot.counters, *baseline) << "parallelism " << parallelism;
    ASSERT_EQ(reads.size(), baseline_reads->size());
    for (size_t i = 0; i < reads.size(); ++i) {
      EXPECT_EQ(reads[i].energy, (*baseline_reads)[i].energy);
      EXPECT_EQ(reads[i].assignment, (*baseline_reads)[i].assignment);
    }
  }
}

TEST(ObsSolverTest, TracedTabuRunBitIdenticalAndSpansNest) {
  const Qubo qubo = MakeRandomQubo(40, 97);
  TabuOptions options;
  options.num_restarts = 8;
  options.iterations_per_restart = 64;
  const auto run = [&](TraceRecorder* trace, MetricsRegistry* metrics) {
    TabuOptions traced = options;
    traced.control.trace = trace;
    traced.control.metrics = metrics;
    Rng rng(99);
    return SolveQuboTabuSearch(qubo, traced, rng);
  };
  const std::vector<QuboSolution> plain = run(nullptr, nullptr);
  TraceRecorder trace;
  MetricsRegistry metrics;
  const std::vector<QuboSolution> traced = run(&trace, &metrics);
  ASSERT_EQ(plain.size(), traced.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].energy, traced[i].energy);
    EXPECT_EQ(plain[i].assignment, traced[i].assignment);
  }
  int solve_spans = 0;
  int restart_spans = 0;
  for (const TraceEvent& e : trace.Snapshot()) {
    if (e.name == "tabu.solve") ++solve_spans;
    if (e.name == "tabu.restart") ++restart_spans;
  }
  EXPECT_EQ(solve_spans, 1);
  EXPECT_EQ(restart_spans, 8);
  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counters.at("tabu.restarts"), 8u);
  EXPECT_EQ(snapshot.counters.at("tabu.iterations"), 8u * 64u);
}

// --- Pipeline-level bit-identity on every backend. ---

struct BackendCase {
  QjoBackend backend;
  const char* name;
};

class ObsBackendBitIdenticalTest
    : public ::testing::TestWithParam<BackendCase> {};

QjoConfig MakeBackendConfig(QjoBackend backend) {
  QjoConfig config;
  config.backend = backend;
  config.seed = 11;
  switch (backend) {
    case QjoBackend::kExact:
      break;
    case QjoBackend::kSimulatedAnnealing:
      config.shots = 160;
      break;
    case QjoBackend::kQaoaSimulator:
      config.shots = 128;
      config.qaoa_iterations = 5;
      config.noiseless = true;
      break;
    case QjoBackend::kQuantumAnnealerSim:
      config.sqa.num_reads = 50;
      config.sqa.annealing_time_us = 10.0;
      break;
    case QjoBackend::kPortfolio:
      config.portfolio.sweep_budget = 256;
      break;
  }
  return config;
}

TEST_P(ObsBackendBitIdenticalTest, TracedRunMatchesUntracedRun) {
  const BackendCase& c = GetParam();
  const Query q = c.backend == QjoBackend::kPortfolio ? MakeChainQuery(4)
                                                      : MakePaperInstance(1);
  for (int parallelism : {1, 4}) {
    QjoConfig plain_config = MakeBackendConfig(c.backend);
    plain_config.run.parallelism = parallelism;
    const auto plain = OptimizeJoinOrder(q, plain_config);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    TraceRecorder trace;
    MetricsRegistry metrics;
    QjoConfig traced_config = MakeBackendConfig(c.backend);
    traced_config.run.parallelism = parallelism;
    traced_config.run.trace = &trace;
    traced_config.run.metrics = &metrics;
    const auto traced = OptimizeJoinOrder(q, traced_config);
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();

    EXPECT_EQ(traced->found_valid, plain->found_valid) << c.name;
    EXPECT_EQ(traced->best_cost, plain->best_cost) << c.name;
    EXPECT_EQ(traced->best_order.order(), plain->best_order.order()) << c.name;
    EXPECT_EQ(traced->stats.total, plain->stats.total) << c.name;
    EXPECT_EQ(traced->stats.valid, plain->stats.valid) << c.name;
    EXPECT_EQ(traced->stats.optimal, plain->stats.optimal) << c.name;
    if (c.backend == QjoBackend::kPortfolio) {
      EXPECT_EQ(traced->portfolio.winner, plain->portfolio.winner);
      EXPECT_EQ(traced->portfolio.race.best_energy,
                plain->portfolio.race.best_energy);
      EXPECT_EQ(traced->portfolio.race.best_assignment,
                plain->portfolio.race.best_assignment);
    }

    // The traced run produced a root span plus the per-stage spans that
    // feed stage_timings on both runs.
    const std::vector<TraceEvent> events = trace.Snapshot();
    const auto has_event = [&](std::string_view name) {
      return std::any_of(events.begin(), events.end(), [&](const TraceEvent& e) {
        return e.name == name;
      });
    };
    EXPECT_TRUE(has_event("pipeline")) << c.name;
    EXPECT_TRUE(has_event("encode")) << c.name;
    EXPECT_TRUE(
        has_event(std::string("solve.") + QjoBackendName(c.backend)))
        << c.name;
    EXPECT_TRUE(traced->stage_timings.Has("encode")) << c.name;
    EXPECT_TRUE(plain->stage_timings.Has("encode")) << c.name;
    EXPECT_GT(traced->stage_timings.total_ms, 0.0) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ObsBackendBitIdenticalTest,
    ::testing::Values(
        BackendCase{QjoBackend::kExact, "exact"},
        BackendCase{QjoBackend::kSimulatedAnnealing, "sa"},
        BackendCase{QjoBackend::kQaoaSimulator, "qaoa"},
        BackendCase{QjoBackend::kQuantumAnnealerSim, "annealer"},
        BackendCase{QjoBackend::kPortfolio, "portfolio"}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.name;
    });

// --- Pipeline metrics: deterministic merge across parallelism. ---

TEST(ObsPipelineTest, PipelineMetricsDeterministicMergeAcrossParallelism) {
  const Query q = MakeChainQuery(4);
  std::optional<std::map<std::string, uint64_t>> counters;
  std::optional<std::map<std::string, double>> gauges;
  for (int parallelism : {1, 4, 8}) {
    MetricsRegistry registry;
    QjoConfig config = MakeBackendConfig(QjoBackend::kPortfolio);
    config.run.parallelism = parallelism;
    config.run.metrics = &registry;
    const auto report = OptimizeJoinOrder(q, config);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const MetricsSnapshot snapshot = registry.Snapshot();
    if (!counters.has_value()) {
      counters = snapshot.counters;
      gauges = snapshot.gauges;
      continue;
    }
    EXPECT_EQ(snapshot.counters, *counters) << "parallelism " << parallelism;
    EXPECT_EQ(snapshot.gauges, *gauges) << "parallelism " << parallelism;
  }
}

// --- Portfolio: exported counters mirror the report; trace covers the
// run. ---

TEST(ObsPipelineTest, PortfolioCountersMatchReportAndTraceCoversRun) {
  const Query q = MakeChainQuery(4);
  TraceRecorder trace;
  MetricsRegistry metrics;
  QjoConfig config = MakeBackendConfig(QjoBackend::kPortfolio);
  config.run.parallelism = 4;
  config.run.trace = &trace;
  config.run.metrics = &metrics;
  const auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const MetricsSnapshot snapshot = metrics.Snapshot();
  for (const StrandOutcome& strand : report->portfolio.race.strands) {
    const std::string prefix =
        std::string("portfolio.") + strand.name;
    const auto counter = [&](const std::string& name) -> uint64_t {
      const auto it = snapshot.counters.find(name);
      return it == snapshot.counters.end() ? 0 : it->second;
    };
    EXPECT_EQ(counter(prefix + ".rounds"),
              static_cast<uint64_t>(strand.rounds_completed))
        << prefix;
    EXPECT_EQ(counter(prefix + ".sweeps"),
              static_cast<uint64_t>(strand.sweeps_completed))
        << prefix;
  }

  // Trace coverage: the named stage spans account for (almost) the whole
  // root "pipeline" span. The threshold is slightly below the 95% design
  // budget to keep slow/noisy CI machines from flaking.
  const std::vector<TraceEvent> events = trace.Snapshot();
  const TraceEvent* pipeline = nullptr;
  uint64_t covered_ns = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "pipeline") {
      pipeline = &e;
    } else if (e.name == "encode" || e.name == "oracle_dp" ||
               e.name.rfind("solve.", 0) == 0 || e.name == "postprocess") {
      covered_ns += e.duration_ns;  // disjoint top-level stages
    }
  }
  ASSERT_NE(pipeline, nullptr);
  ASSERT_GT(pipeline->duration_ns, 0u);
  EXPECT_GE(static_cast<double>(covered_ns),
            0.90 * static_cast<double>(pipeline->duration_ns));
  EXPECT_LE(covered_ns, pipeline->duration_ns);
}

}  // namespace
}  // namespace qjo

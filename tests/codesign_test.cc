#include <cmath>

#include <gtest/gtest.h>

#include "codesign/qubit_bound.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "util/random.h"

namespace qjo {
namespace {

TEST(QubitBoundTest, MaxLogCardinalityOrdersDescending) {
  const std::vector<double> logs = {1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(MaxLogCardinality(logs, 0), 3.0);
  EXPECT_DOUBLE_EQ(MaxLogCardinality(logs, 1), 5.0);
  EXPECT_DOUBLE_EQ(MaxLogCardinality(logs, 2), 6.0);
  EXPECT_DOUBLE_EQ(MaxLogCardinality(logs, 5), 6.0);  // saturates
}

TEST(QubitBoundTest, HandComputedPaperInstance) {
  // The 18-qubit instance: T=3, P=0, R=1, omega=1, all cardinalities 10.
  QubitBoundSpec spec;
  spec.num_relations = 3;
  spec.num_predicates = 0;
  spec.num_thresholds = 1;
  spec.omega = 1.0;
  spec.log_cardinalities = {1.0, 1.0, 1.0};
  auto bound = QubitUpperBound(spec);
  ASSERT_TRUE(bound.ok());
  // 2TJ + (3P+R)(J-1) + T + R*(floor(log2 2)+1) = 12 + 1 + 3 + 2 = 18.
  EXPECT_EQ(*bound, 18);
  spec.num_predicates = 3;
  bound = QubitUpperBound(spec);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 27);
  spec.num_predicates = 0;
  spec.omega = 0.001;
  bound = QubitUpperBound(spec);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 27);
}

TEST(QubitBoundTest, Validation) {
  QubitBoundSpec spec;
  spec.num_relations = 1;
  spec.log_cardinalities = {1.0};
  EXPECT_FALSE(QubitUpperBound(spec).ok());
  spec.num_relations = 2;
  spec.log_cardinalities = {1.0};  // size mismatch
  EXPECT_FALSE(QubitUpperBound(spec).ok());
  spec.log_cardinalities = {1.0, 2.0};
  spec.omega = 0.0;
  EXPECT_FALSE(QubitUpperBound(spec).ok());
}

/// The key property behind Fig. 4: the Theorem 5.3 bound dominates the
/// actual number of binary variables in the lowered model, for every
/// query shape, threshold count, and discretisation precision.
struct BoundCase {
  QueryGraphType type;
  int relations;
  int thresholds;
  double omega;
  uint64_t seed;
};

class BoundDominatesTest : public ::testing::TestWithParam<BoundCase> {};

TEST_P(BoundDominatesTest, BoundIsAnUpperBound) {
  const BoundCase& c = GetParam();
  Rng rng(c.seed);
  QueryGenOptions gen;
  gen.num_relations = c.relations;
  gen.graph_type = c.type;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  auto query = GenerateQuery(gen, rng);
  ASSERT_TRUE(query.ok());

  JoMilpOptions options;
  options.thresholds = MakeGeometricThresholds(*query, c.thresholds);
  options.omega = c.omega;
  auto milp = EncodeJoAsMilp(*query, options);
  ASSERT_TRUE(milp.ok());
  auto bilp = LowerToBilp(milp->model(), c.omega);
  ASSERT_TRUE(bilp.ok());

  auto bound = QubitUpperBound(*query, c.thresholds, c.omega);
  ASSERT_TRUE(bound.ok());
  EXPECT_GE(*bound, bilp->num_variables())
      << QueryGraphTypeName(c.type) << " T=" << c.relations
      << " R=" << c.thresholds << " omega=" << c.omega;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundDominatesTest,
    ::testing::Values(
        BoundCase{QueryGraphType::kChain, 3, 1, 1.0, 1},
        BoundCase{QueryGraphType::kChain, 5, 2, 1.0, 2},
        BoundCase{QueryGraphType::kChain, 8, 3, 0.1, 3},
        BoundCase{QueryGraphType::kChain, 12, 5, 0.01, 4},
        BoundCase{QueryGraphType::kStar, 4, 1, 1.0, 5},
        BoundCase{QueryGraphType::kStar, 8, 2, 0.1, 6},
        BoundCase{QueryGraphType::kStar, 15, 4, 1.0, 7},
        BoundCase{QueryGraphType::kCycle, 4, 1, 1.0, 8},
        BoundCase{QueryGraphType::kCycle, 8, 2, 0.01, 9},
        BoundCase{QueryGraphType::kCycle, 16, 3, 0.001, 10},
        BoundCase{QueryGraphType::kCycle, 24, 2, 1.0, 11}));

TEST(QubitBoundTest, QuadraticScalingInRelations) {
  // Fig. 4: the bound grows quadratically with T (the dominating factor).
  Rng rng(12);
  std::vector<double> bounds;
  for (int t : {8, 16, 32, 64}) {
    QubitBoundSpec spec;
    spec.num_relations = t;
    spec.num_predicates = t;  // cycle query
    spec.num_thresholds = 2;
    spec.omega = 1.0;
    spec.log_cardinalities.assign(t, 3.0);
    auto bound = QubitUpperBound(spec);
    ASSERT_TRUE(bound.ok());
    bounds.push_back(*bound);
  }
  // Doubling T should roughly quadruple the bound.
  for (size_t i = 1; i < bounds.size(); ++i) {
    const double ratio = bounds[i] / bounds[i - 1];
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
  }
}

TEST(QubitBoundTest, PrecisionHasModerateImpact) {
  // Fig. 4: discretisation precision shifts the bound by far less than
  // the number of relations, but can exceed 50% in some scenarios.
  QubitBoundSpec coarse;
  coarse.num_relations = 16;
  coarse.num_predicates = 16;
  coarse.num_thresholds = 2;
  coarse.omega = 1.0;
  coarse.log_cardinalities.assign(16, 3.0);
  QubitBoundSpec fine = coarse;
  fine.omega = 0.0001;
  auto coarse_bound = QubitUpperBound(coarse);
  auto fine_bound = QubitUpperBound(fine);
  ASSERT_TRUE(coarse_bound.ok());
  ASSERT_TRUE(fine_bound.ok());
  EXPECT_GT(*fine_bound, *coarse_bound);
  EXPECT_LT(*fine_bound, 2 * *coarse_bound);
}

}  // namespace
}  // namespace qjo

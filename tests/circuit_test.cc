#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "circuit/qaoa_builder.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "sim/statevector.h"
#include "util/random.h"

namespace qjo {
namespace {

TEST(GateTest, TwoQubitClassification) {
  EXPECT_TRUE(IsTwoQubitGate(GateType::kCx));
  EXPECT_TRUE(IsTwoQubitGate(GateType::kRzz));
  EXPECT_TRUE(IsTwoQubitGate(GateType::kMs));
  EXPECT_FALSE(IsTwoQubitGate(GateType::kH));
  EXPECT_FALSE(IsTwoQubitGate(GateType::kRz));
}

TEST(GateTest, ParameterisedClassification) {
  EXPECT_TRUE(IsParameterised(GateType::kRx));
  EXPECT_TRUE(IsParameterised(GateType::kRzz));
  EXPECT_FALSE(IsParameterised(GateType::kH));
  EXPECT_FALSE(IsParameterised(GateType::kCx));
}

TEST(CircuitTest, DepthSingleQubitChain) {
  QuantumCircuit c(2);
  c.H(0);
  c.H(0);
  c.H(0);
  c.H(1);
  EXPECT_EQ(c.Depth(), 3);
  EXPECT_EQ(c.num_gates(), 4);
}

TEST(CircuitTest, DepthParallelGates) {
  QuantumCircuit c(4);
  c.H(0);
  c.H(1);
  c.H(2);
  c.H(3);
  EXPECT_EQ(c.Depth(), 1);
}

TEST(CircuitTest, DepthTwoQubitDependency) {
  QuantumCircuit c(3);
  c.H(0);        // layer 1 on q0
  c.Cx(0, 1);    // layer 2 on q0,q1
  c.Cx(1, 2);    // layer 3 on q1,q2
  c.H(0);        // layer 3 on q0 (parallel with cx(1,2))
  EXPECT_EQ(c.Depth(), 3);
  EXPECT_EQ(c.TwoQubitDepth(), 2);
}

TEST(CircuitTest, GateCounts) {
  QuantumCircuit c(3);
  c.H(0);
  c.Rzz(0, 1, 0.5);
  c.Rzz(1, 2, 0.5);
  c.Rx(2, 0.1);
  EXPECT_EQ(c.CountGates(GateType::kRzz), 2);
  EXPECT_EQ(c.CountGates(GateType::kH), 1);
  EXPECT_EQ(c.CountTwoQubitGates(), 2);
}

TEST(QaoaBuilderTest, StructureMatchesHamiltonian) {
  Qubo qubo(4);
  qubo.AddLinear(0, 1.0);
  qubo.AddLinear(1, -2.0);
  qubo.AddQuadratic(0, 1, 1.0);
  qubo.AddQuadratic(2, 3, -1.0);
  const IsingModel ising = QuboToIsing(qubo);

  QaoaParameters params;
  params.gammas = {0.3};
  params.betas = {0.7};
  auto circuit = BuildQaoaCircuit(ising, params);
  ASSERT_TRUE(circuit.ok());
  EXPECT_EQ(circuit->num_qubits(), 4);
  EXPECT_EQ(circuit->CountGates(GateType::kH), 4);
  EXPECT_EQ(circuit->CountGates(GateType::kRx), 4);
  EXPECT_EQ(circuit->CountGates(GateType::kRzz), 2);
  // Ising fields: h_0 = -1, h_1 = ... all four variables touched by the
  // QUBO->Ising shift, q2/q3 via the coupling.
  EXPECT_GT(circuit->CountGates(GateType::kRz), 0);
}

TEST(QaoaBuilderTest, DepthGrowsLinearlyInP) {
  Qubo qubo(3);
  qubo.AddQuadratic(0, 1, 1.0);
  qubo.AddQuadratic(1, 2, 1.0);
  const IsingModel ising = QuboToIsing(qubo);
  QaoaParameters p1{{0.1}, {0.2}};
  QaoaParameters p2{{0.1, 0.1}, {0.2, 0.2}};
  auto c1 = BuildQaoaCircuit(ising, p1);
  auto c2 = BuildQaoaCircuit(ising, p2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_GT(c2->Depth(), c1->Depth());
  EXPECT_EQ(c2->CountGates(GateType::kRzz), 2 * c1->CountGates(GateType::kRzz));
}

TEST(SchedulingTest, MatchingRoundsTouchEachQubitOnce) {
  // A star: every term shares qubit 0, so no parallelism is possible and
  // the schedule must keep all terms (order free).
  std::vector<std::tuple<int, int, double>> star = {
      {0, 1, 1.0}, {0, 2, 2.0}, {0, 3, 3.0}};
  auto scheduled = ScheduleCommutingTerms(star, 4);
  EXPECT_EQ(scheduled.size(), 3u);
  // A perfect matching schedules in one round, preserving all terms.
  std::vector<std::tuple<int, int, double>> cycle = {
      {0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}};
  auto cycle_scheduled = ScheduleCommutingTerms(cycle, 4);
  EXPECT_EQ(cycle_scheduled.size(), 4u);
  // First two scheduled terms form a matching: {0,1} then {2,3}.
  const auto& [a0, b0, w0] = cycle_scheduled[0];
  const auto& [a1, b1, w1] = cycle_scheduled[1];
  (void)w0;
  (void)w1;
  EXPECT_TRUE(a0 != a1 && a0 != b1 && b0 != a1 && b0 != b1);
}

TEST(SchedulingTest, ReducesDepthOnDenseProblems) {
  Qubo qubo(8);
  // Adversarial ordering: all edges incident to qubit 0 first would not
  // matter, but an interleaving that serialises by accident does.
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) qubo.AddQuadratic(i, j, 1.0);
  }
  QaoaBuilderOptions scheduled;
  scheduled.schedule_cost_layer = true;
  auto plain = BuildQaoaCircuit(qubo, QaoaParameters{{0.1}, {0.2}});
  auto packed =
      BuildQaoaCircuit(qubo, QaoaParameters{{0.1}, {0.2}}, scheduled);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(packed.ok());
  EXPECT_LT(packed->Depth(), plain->Depth());
  EXPECT_EQ(packed->num_gates(), plain->num_gates());
}

TEST(SchedulingTest, PreservesSemantics) {
  // Cost-layer gates commute: both orders produce the same state.
  Qubo qubo(5);
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    qubo.AddLinear(i, rng.UniformDouble(-1, 1));
    for (int j = i + 1; j < 5; ++j) {
      if (rng.Bernoulli(0.7)) {
        qubo.AddQuadratic(i, j, rng.UniformDouble(-1, 1));
      }
    }
  }
  QaoaBuilderOptions scheduled;
  scheduled.schedule_cost_layer = true;
  QaoaParameters params{{0.31}, {0.77}};
  auto plain = BuildQaoaCircuit(qubo, params);
  auto packed = BuildQaoaCircuit(qubo, params, scheduled);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(packed.ok());
  auto sv_plain = StateVector::Create(5);
  auto sv_packed = StateVector::Create(5);
  ASSERT_TRUE(sv_plain.ok());
  ASSERT_TRUE(sv_packed.ok());
  sv_plain->ApplyCircuit(*plain);
  sv_packed->ApplyCircuit(*packed);
  EXPECT_NEAR(sv_plain->Overlap(*sv_packed), 1.0, 1e-9);
}

TEST(QaoaBuilderTest, RejectsBadParameters) {
  Qubo qubo(2);
  qubo.AddQuadratic(0, 1, 1.0);
  QaoaParameters empty;
  EXPECT_FALSE(BuildQaoaCircuit(qubo, empty).ok());
  QaoaParameters mismatched{{0.1, 0.2}, {0.3}};
  EXPECT_FALSE(BuildQaoaCircuit(qubo, mismatched).ok());
}

TEST(FusionTest, GroupsAdjacentGatesWithoutReordering) {
  QuantumCircuit circuit(16);
  circuit.H(0);
  circuit.Rx(1, 0.3);     // extends the single-qubit run
  circuit.Rz(2, 0.4);     // diagonal: starts a diagonal run
  circuit.Rzz(3, 4, 0.5);  // extends it
  circuit.Cz(5, 6);        // still diagonal
  circuit.Cx(0, 1);        // generic two-qubit gate: own op
  circuit.Ry(7, 0.2);      // new single-qubit run
  circuit.H(15);           // qubit 15 >= block boundary: generic op

  const FusedCircuit fused = FuseCircuit(circuit);
  EXPECT_EQ(fused.num_qubits, 16);
  EXPECT_EQ(fused.num_gates, circuit.num_gates());
  ASSERT_EQ(fused.ops.size(), 5u);
  EXPECT_EQ(fused.ops[0].kind, FusedOpKind::kSingleQubitRun);
  EXPECT_EQ(fused.ops[0].gates.size(), 2u);
  EXPECT_EQ(fused.ops[1].kind, FusedOpKind::kDiagonalRun);
  EXPECT_EQ(fused.ops[1].gates.size(), 3u);
  EXPECT_EQ(fused.ops[2].kind, FusedOpKind::kGate);
  EXPECT_EQ(fused.ops[2].gates.size(), 1u);
  EXPECT_EQ(fused.ops[3].kind, FusedOpKind::kSingleQubitRun);
  EXPECT_EQ(fused.ops[4].kind, FusedOpKind::kGate);

  // Flattening the fused ops must reproduce the gate sequence verbatim:
  // fusion groups, it never reorders.
  std::vector<Gate> flattened;
  for (const FusedOp& op : fused.ops) {
    flattened.insert(flattened.end(), op.gates.begin(), op.gates.end());
  }
  ASSERT_EQ(flattened.size(), circuit.gates().size());
  for (size_t i = 0; i < flattened.size(); ++i) {
    EXPECT_EQ(flattened[i].type, circuit.gates()[i].type) << "gate " << i;
    EXPECT_EQ(flattened[i].qubits, circuit.gates()[i].qubits) << "gate " << i;
    EXPECT_EQ(flattened[i].parameter, circuit.gates()[i].parameter)
        << "gate " << i;
  }
}

TEST(FusionTest, ConsecutiveGateKindsDoNotMergeAcrossKindChange) {
  QuantumCircuit circuit(4);
  circuit.Rz(0, 0.1);
  circuit.H(0);        // breaks the diagonal run
  circuit.Rz(0, 0.2);  // new diagonal run (no merging across the H)
  const FusedCircuit fused = FuseCircuit(circuit);
  ASSERT_EQ(fused.ops.size(), 3u);
  EXPECT_EQ(fused.ops[0].kind, FusedOpKind::kDiagonalRun);
  EXPECT_EQ(fused.ops[1].kind, FusedOpKind::kSingleQubitRun);
  EXPECT_EQ(fused.ops[2].kind, FusedOpKind::kDiagonalRun);
}

TEST(FusionTest, DiagonalClassification) {
  EXPECT_TRUE(IsDiagonalGate(GateType::kRz));
  EXPECT_TRUE(IsDiagonalGate(GateType::kRzz));
  EXPECT_TRUE(IsDiagonalGate(GateType::kCz));
  EXPECT_FALSE(IsDiagonalGate(GateType::kH));
  EXPECT_FALSE(IsDiagonalGate(GateType::kRx));
  EXPECT_FALSE(IsDiagonalGate(GateType::kCx));
  EXPECT_FALSE(IsDiagonalGate(GateType::kMs));
}

TEST(QaoaBuilderTest, RzzAngleEncodesCoupling) {
  Qubo qubo(2);
  qubo.AddQuadratic(0, 1, 2.0);
  const IsingModel ising = QuboToIsing(qubo);  // J_01 = 0.5
  QaoaParameters params{{0.25}, {0.1}};
  auto circuit = BuildQaoaCircuit(ising, params);
  ASSERT_TRUE(circuit.ok());
  for (const Gate& g : circuit->gates()) {
    if (g.type == GateType::kRzz) {
      EXPECT_NEAR(g.parameter, 2.0 * 0.25 * 0.5, 1e-12);
    }
    if (g.type == GateType::kRx) {
      EXPECT_NEAR(g.parameter, 0.2, 1e-12);
    }
  }
}

}  // namespace
}  // namespace qjo

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "circuit/qaoa_builder.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "sim/device.h"
#include "sim/noisy_sampler.h"
#include "sim/qaoa_analytic.h"
#include "sim/qaoa_simulator.h"
#include "sim/statevector.h"
#include "util/random.h"

namespace qjo {
namespace {

NoiseModel Noiseless() {
  NoiseModel noise;
  noise.one_qubit_pauli = 0.0;
  noise.two_qubit_pauli = 0.0;
  noise.readout_flip = 0.0;
  noise.t1_us = 1e12;
  noise.t2_us = 1e12;
  return noise;
}

TEST(NoiseModelTest, FromDeviceCopiesCalibration) {
  const NoiseModel noise = NoiseModel::FromDevice(IbmAucklandProperties());
  EXPECT_DOUBLE_EQ(noise.t1_us, 151.13);
  EXPECT_DOUBLE_EQ(noise.t2_us, 138.72);
  EXPECT_DOUBLE_EQ(noise.one_qubit_pauli, 2.6e-4);
}

TEST(NoiseModelTest, DecoherenceProbabilitiesScaleWithLayerTime) {
  NoiseModel fast = Noiseless();
  fast.t2_us = 100.0;
  fast.t1_us = 100.0;
  fast.layer_time_ns = 100.0;
  NoiseModel slow = fast;
  slow.layer_time_ns = 1000.0;
  EXPECT_GT(slow.DephasingProbability(), fast.DephasingProbability());
  EXPECT_GT(slow.RelaxationProbability(), fast.RelaxationProbability());
  EXPECT_LT(slow.DephasingProbability(), 0.5);
}

TEST(TrajectorySamplerTest, NoiselessMatchesIdealDistribution) {
  QuantumCircuit circuit(3);
  circuit.H(0);
  circuit.Cx(0, 1);
  circuit.Cx(1, 2);  // GHZ
  Rng rng(3);
  auto samples = SampleWithTrajectories(circuit, Noiseless(), 4000, rng);
  ASSERT_TRUE(samples.ok());
  int zeros = 0, ones = 0, other = 0;
  for (uint64_t s : *samples) {
    if (s == 0) {
      ++zeros;
    } else if (s == 7) {
      ++ones;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(other, 0);
  EXPECT_NEAR(static_cast<double>(zeros) / samples->size(), 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(ones) / samples->size(), 0.5, 0.03);
}

TEST(TrajectorySamplerTest, GateNoiseCorruptsGhz) {
  QuantumCircuit circuit(4);
  circuit.H(0);
  for (int q = 0; q + 1 < 4; ++q) circuit.Cx(q, q + 1);
  NoiseModel noise = Noiseless();
  noise.two_qubit_pauli = 0.2;
  Rng rng(5);
  auto samples = SampleWithTrajectories(circuit, noise, 2000, rng);
  ASSERT_TRUE(samples.ok());
  int ghz = 0;
  for (uint64_t s : *samples) {
    if (s == 0 || s == 15) ++ghz;
  }
  // With heavy noise a noticeable fraction of shots leaves the GHZ pair.
  EXPECT_LT(ghz, 1900);
  EXPECT_GT(ghz, 500);  // ... but not everything
}

TEST(TrajectorySamplerTest, FusedKernelsBitIdenticalSampleStream) {
  // The trajectory circuits draw from the rng in a kernel-independent
  // order and the fused/reference StateVector kernels agree under
  // operator==, so the two kernels must emit the identical samples.
  QuantumCircuit circuit(6);
  circuit.H(0);
  for (int q = 0; q + 1 < 6; ++q) circuit.Cx(q, q + 1);
  for (int q = 0; q < 6; ++q) circuit.Rx(q, 0.2 + 0.05 * q);
  NoiseModel noise = Noiseless();
  noise.one_qubit_pauli = 0.05;
  noise.two_qubit_pauli = 0.1;
  noise.readout_flip = 0.02;

  Rng rng_fused(29);
  Rng rng_reference(29);
  auto fused = SampleWithTrajectories(circuit, noise, 300, rng_fused, 16,
                                      SimKernel::kFused);
  auto reference = SampleWithTrajectories(circuit, noise, 300, rng_reference,
                                          16, SimKernel::kReference);
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*fused, *reference);
}

TEST(TrajectorySamplerTest, DeeperCircuitsDegradeMore) {
  NoiseModel noise = Noiseless();
  noise.one_qubit_pauli = 0.02;
  auto ghz_rate = [&](int extra_layers) {
    QuantumCircuit circuit(3);
    circuit.H(0);
    circuit.Cx(0, 1);
    circuit.Cx(1, 2);
    for (int i = 0; i < extra_layers; ++i) {
      for (int q = 0; q < 3; ++q) circuit.Rz(q, 0.0);  // idle padding
    }
    Rng rng(7);
    auto samples = SampleWithTrajectories(circuit, noise, 1500, rng);
    EXPECT_TRUE(samples.ok());
    int hits = 0;
    for (uint64_t s : *samples) {
      if (s == 0 || s == 7) ++hits;
    }
    return static_cast<double>(hits) / samples->size();
  };
  EXPECT_GT(ghz_rate(0), ghz_rate(40) + 0.05);
}

TEST(TrajectorySamplerTest, ReadoutErrorFlipsBits) {
  QuantumCircuit circuit(4);  // stays in |0000>
  circuit.Rz(0, 0.0);
  NoiseModel noise = Noiseless();
  noise.readout_flip = 0.25;
  Rng rng(9);
  auto samples = SampleWithTrajectories(circuit, noise, 4000, rng);
  ASSERT_TRUE(samples.ok());
  double flipped_bits = 0;
  for (uint64_t s : *samples) flipped_bits += __builtin_popcountll(s);
  EXPECT_NEAR(flipped_bits / (4.0 * samples->size()), 0.25, 0.03);
}

TEST(TrajectorySamplerTest, RejectsOversizedCircuits) {
  QuantumCircuit circuit(18);
  circuit.H(0);
  Rng rng(11);
  EXPECT_FALSE(SampleWithTrajectories(circuit, Noiseless(), 1, rng).ok());
  QuantumCircuit small(2);
  small.H(0);
  EXPECT_FALSE(SampleWithTrajectories(small, Noiseless(), 0, rng).ok());
}

TEST(ApplyReadoutErrorTest, ZeroProbabilityIsIdentity) {
  Rng rng(13);
  EXPECT_EQ(ApplyReadoutError(0b1010, 4, 0.0, rng), 0b1010u);
  // Probability one flips every bit.
  EXPECT_EQ(ApplyReadoutError(0b1010, 4, 1.0, rng), 0b0101u);
}

/// Cross-validation: on a QAOA instance small enough for trajectories,
/// the cheap global-depolarising model and the trajectory model agree on
/// the *fraction of low-energy samples* within loose bounds.
TEST(NoiseCrossValidationTest, GlobalDepolarisingTracksTrajectories) {
  Rng rng(17);
  Qubo qubo(8);
  for (int i = 0; i < 8; ++i) {
    qubo.AddLinear(i, rng.UniformDouble(-1, 1));
    for (int j = i + 1; j < 8; ++j) {
      if (rng.Bernoulli(0.35)) {
        qubo.AddQuadratic(i, j, rng.UniformDouble(-1, 1));
      }
    }
  }
  const IsingModel ising = QuboToIsing(qubo);
  Rng opt_rng(29);
  const QaoaAngles angles = OptimizeQaoaAngles(ising, 30, opt_rng);
  QaoaParameters params{{angles.gamma}, {angles.beta}};
  auto circuit = BuildQaoaCircuit(ising, params);
  ASSERT_TRUE(circuit.ok());

  auto sim = QaoaSimulator::Create(ising);
  ASSERT_TRUE(sim.ok());
  sim->Run(params);
  // Energy threshold: lower quartile of the spectrum.
  std::vector<float> spectrum = sim->cost_spectrum();
  std::nth_element(spectrum.begin(), spectrum.begin() + spectrum.size() / 4,
                   spectrum.end());
  const float threshold = spectrum[spectrum.size() / 4];
  auto low_energy_fraction = [&](const std::vector<uint64_t>& samples) {
    int hits = 0;
    for (uint64_t s : samples) {
      if (sim->cost_spectrum()[s] <= threshold) ++hits;
    }
    return static_cast<double>(hits) / samples.size();
  };

  const DeviceProperties device = IbmAucklandProperties();
  const double fidelity = EstimateCircuitFidelity(*circuit, device);
  Rng rng_global(19), rng_traj(23);
  const double global =
      low_energy_fraction(sim->Sample(4000, fidelity, rng_global));
  NoiseModel noise = NoiseModel::FromDevice(device);
  noise.readout_flip = 0.0;
  auto trajectories =
      SampleWithTrajectories(*circuit, noise, 1500, rng_traj);
  ASSERT_TRUE(trajectories.ok());
  const double trajectory = low_energy_fraction(*trajectories);

  // Same ballpark: both clearly above the uniform 25% baseline and within
  // a factor of ~1.5 of each other.
  EXPECT_GT(global, 0.25);
  EXPECT_GT(trajectory, 0.25);
  EXPECT_LT(std::abs(global - trajectory),
            0.5 * std::max(global, trajectory));
}

}  // namespace
}  // namespace qjo

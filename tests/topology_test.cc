#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "topology/coupling_graph.h"
#include "topology/density.h"
#include "topology/vendor_topologies.h"
#include "util/random.h"

namespace qjo {
namespace {

TEST(CouplingGraphTest, BasicEdgeBookkeeping) {
  CouplingGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // duplicate ignored
  g.AddEdge(2, 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(1), 1);
}

TEST(CouplingGraphTest, BfsDistancesAndConnectivity) {
  CouplingGraph g = MakeLineGraph(5);
  const auto dist = g.BfsDistances(0);
  EXPECT_EQ(dist[4], 4);
  EXPECT_TRUE(g.IsConnected());
  CouplingGraph disconnected(3);
  disconnected.AddEdge(0, 1);
  EXPECT_FALSE(disconnected.IsConnected());
  EXPECT_EQ(disconnected.BfsDistances(0)[2], -1);
}

TEST(CouplingGraphTest, CompleteGraphDensityIsOne) {
  const CouplingGraph g = MakeCompleteGraph(6);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_DOUBLE_EQ(g.Density(), 1.0);
  EXPECT_EQ(g.MaxDegree(), 5);
}

TEST(CouplingGraphTest, GridGraphStructure) {
  const CouplingGraph g = MakeGridGraph(3, 4);
  EXPECT_EQ(g.num_qubits(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(g.IsConnected());
  EXPECT_EQ(g.MaxDegree(), 4);
}

TEST(VendorTest, Falcon27MatchesPublishedLayout) {
  const CouplingGraph g = MakeIbmFalcon27();
  EXPECT_EQ(g.num_qubits(), 27);
  EXPECT_EQ(g.num_edges(), 28);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_LE(g.MaxDegree(), 3);  // heavy-hex property
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(25, 26));
}

TEST(VendorTest, Eagle127MatchesWashington) {
  const CouplingGraph g = MakeIbmEagle127();
  EXPECT_EQ(g.num_qubits(), 127);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_LE(g.MaxDegree(), 3);
  // Heavy-hex 7x15: 96 row edges + 24 bridges * 2.
  EXPECT_EQ(g.num_edges(), 144);
}

TEST(VendorTest, HeavyHexValidation) {
  EXPECT_FALSE(MakeIbmHeavyHex(4, 15).ok());  // even rows
  EXPECT_FALSE(MakeIbmHeavyHex(7, 14).ok());  // not 4k+3
  EXPECT_FALSE(MakeIbmHeavyHex(1, 15).ok());  // too few rows
  auto g = MakeIbmHeavyHex(9, 19);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->IsConnected());
  EXPECT_LE(g->MaxDegree(), 3);
}

TEST(VendorTest, HeavyHexExtrapolationGrows) {
  const CouplingGraph small = MakeIbmHeavyHexAtLeast(127);
  EXPECT_GE(small.num_qubits(), 127);
  const CouplingGraph big = MakeIbmHeavyHexAtLeast(400);
  EXPECT_GE(big.num_qubits(), 400);
  EXPECT_GT(big.num_qubits(), small.num_qubits());
  EXPECT_TRUE(big.IsConnected());
  EXPECT_LE(big.MaxDegree(), 3);
}

TEST(VendorTest, RigettiAspenM) {
  auto g = MakeRigettiAspen(2, 5);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_qubits(), 80);
  EXPECT_TRUE(g->IsConnected());
  // Ring edges + inter-octagon couplers: 80 + (horizontal 2*4*2) +
  // (vertical 1*5*2).
  EXPECT_EQ(g->num_edges(), 80 + 16 + 10);
  EXPECT_LE(g->MaxDegree(), 4);
}

TEST(VendorTest, RigettiExtrapolationGrows) {
  const CouplingGraph g = MakeRigettiAspenAtLeast(200);
  EXPECT_GE(g.num_qubits(), 200);
  EXPECT_TRUE(g.IsConnected());
}

TEST(VendorTest, PegasusSizes) {
  for (int m : {2, 3, 6}) {
    auto g = MakePegasus(m);
    ASSERT_TRUE(g.ok()) << m;
    EXPECT_EQ(g->num_qubits(), 24 * m * (m - 1)) << m;
    EXPECT_LE(g->MaxDegree(), 15) << m;
  }
  EXPECT_FALSE(MakePegasus(1).ok());
}

TEST(VendorTest, PegasusP16MatchesAdvantageScale) {
  auto g = MakePegasus(16);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_qubits(), 5760);  // ideal working graph
  EXPECT_LE(g->MaxDegree(), 15);
  // The ideal P16 has ~40k couplers (the real Advantage reports 40279+
  // after defects). Interior qubits reach the full degree 15.
  EXPECT_GT(g->num_edges(), 38000);
  EXPECT_LT(g->num_edges(), 42000);
  EXPECT_EQ(g->MaxDegree(), 15);
}

TEST(VendorTest, PegasusDegreeComposition) {
  // In P_m, interior qubits have 12 internal + 2 external + 1 odd coupler;
  // the interior fraction grows with m (43% at P6, 78% at P16).
  auto g = MakePegasus(6);
  ASSERT_TRUE(g.ok());
  int full_degree = 0;
  for (int q = 0; q < g->num_qubits(); ++q) {
    if (g->Degree(q) == 15) ++full_degree;
  }
  EXPECT_GT(full_degree, g->num_qubits() / 4);
}

TEST(VendorTest, ChimeraStructure) {
  auto g = MakeChimera(4);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_qubits(), 8 * 16);
  EXPECT_TRUE(g->IsConnected());
  EXPECT_LE(g->MaxDegree(), 6);
  // Edges: 16 cells x 16 internal + vertical 4*4*3 + horizontal 4*4*3.
  EXPECT_EQ(g->num_edges(), 16 * 16 + 48 + 48);
  EXPECT_FALSE(MakeChimera(0).ok());
  // Pegasus is strictly better connected than Chimera of comparable size.
  auto pegasus = MakePegasus(4);
  ASSERT_TRUE(pegasus.ok());
  EXPECT_GT(pegasus->AverageDegree(), g->AverageDegree());
}

TEST(DensityTest, ZeroKeepsBaseline) {
  Rng rng(3);
  const CouplingGraph base = MakeIbmFalcon27();
  auto g = ExtrapolateDensity(base, 0.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), base.num_edges());
}

TEST(DensityTest, OneGivesCompleteMesh) {
  Rng rng(4);
  const CouplingGraph base = MakeIbmFalcon27();
  auto g = ExtrapolateDensity(base, 1.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 27 * 26 / 2);
}

TEST(DensityTest, InterpolatesEdgeCount) {
  Rng rng(5);
  const CouplingGraph base = MakeIbmFalcon27();
  const int missing = 27 * 26 / 2 - base.num_edges();
  for (double d : {0.05, 0.1, 0.5, 0.75}) {
    auto g = ExtrapolateDensity(base, d, rng);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->num_edges() - base.num_edges(),
              static_cast<int>(std::llround(d * missing)));
    // Base edges are preserved.
    for (const auto& [a, b] : base.Edges()) {
      EXPECT_TRUE(g->HasEdge(a, b));
    }
  }
}

TEST(DensityTest, PrefersShortDistancePairsFirst) {
  Rng rng(6);
  const CouplingGraph base = MakeLineGraph(20);
  // Adding a few edges at low density must only create distance-2 links.
  auto g = ExtrapolateDensity(base, 0.05, rng);
  ASSERT_TRUE(g.ok());
  const auto dist = base.AllPairsDistances();
  for (const auto& [a, b] : g->Edges()) {
    if (!base.HasEdge(a, b)) {
      EXPECT_EQ(dist[a][b], 2);
    }
  }
}

TEST(DensityTest, RejectsBadInputs) {
  Rng rng(7);
  const CouplingGraph base = MakeLineGraph(5);
  EXPECT_FALSE(ExtrapolateDensity(base, -0.1, rng).ok());
  EXPECT_FALSE(ExtrapolateDensity(base, 1.1, rng).ok());
  CouplingGraph disconnected(4);
  disconnected.AddEdge(0, 1);
  EXPECT_FALSE(ExtrapolateDensity(disconnected, 0.5, rng).ok());
}

}  // namespace
}  // namespace qjo

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/postprocess.h"
#include "core/quantum_optimizer.h"
#include "jo/classical.h"
#include "jo/query_generator.h"
#include "lp/jo_encoder.h"
#include "topology/vendor_topologies.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

Query MakePaperInstance(int num_predicates) {
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 10);
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {0, 2}};
  for (int p = 0; p < num_predicates; ++p) {
    EXPECT_TRUE(q.AddPredicate(edges[p].first, edges[p].second, 0.1).ok());
  }
  return q;
}

JoMilpModel EncodePaperInstance(const Query& q) {
  JoMilpOptions options;
  options.thresholds = {10.0};
  auto milp = EncodeJoAsMilp(q, options);
  EXPECT_TRUE(milp.ok());
  return std::move(milp).value();
}

TEST(PostprocessTest, DecodesValidSample) {
  const Query q = MakePaperInstance(1);
  const JoMilpModel milp = EncodePaperInstance(q);
  std::vector<int> bits(milp.model().num_variables(), 0);
  bits[milp.tii(1, 0)] = 1;  // join 0 inner: R1
  bits[milp.tii(2, 1)] = 1;  // join 1 inner: R2
  auto order = DecodeSample(milp, bits);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->order(), (std::vector<int>{0, 1, 2}));
}

TEST(PostprocessTest, IgnoresCardinalityViolations) {
  // Sec. 3.5: a sample is valid even if cto/pao constraints are violated,
  // as long as the join tree is unambiguous.
  const Query q = MakePaperInstance(1);
  const JoMilpModel milp = EncodePaperInstance(q);
  std::vector<int> bits(milp.model().num_variables(), 0);
  bits[milp.tii(1, 0)] = 1;
  bits[milp.tii(2, 1)] = 1;
  bits[milp.pao(0, 1)] = 1;  // inconsistent with tio = 0: don't care
  EXPECT_TRUE(DecodeSample(milp, bits).ok());
}

TEST(PostprocessTest, RejectsAmbiguousSamples) {
  const Query q = MakePaperInstance(0);
  const JoMilpModel milp = EncodePaperInstance(q);
  std::vector<int> bits(milp.model().num_variables(), 0);
  // No inner operand for join 0.
  bits[milp.tii(2, 1)] = 1;
  EXPECT_FALSE(DecodeSample(milp, bits).ok());
  // Two inner operands for join 0.
  bits[milp.tii(0, 0)] = 1;
  bits[milp.tii(1, 0)] = 1;
  EXPECT_FALSE(DecodeSample(milp, bits).ok());
  // Relation reused across joins.
  bits[milp.tii(0, 0)] = 0;
  bits[milp.tii(1, 1)] = 1;
  bits[milp.tii(2, 1)] = 0;
  EXPECT_FALSE(DecodeSample(milp, bits).ok());
}

TEST(PostprocessTest, EvaluateSamplesCountsAndRanks) {
  const Query q = MakePaperInstance(1);
  const JoMilpModel milp = EncodePaperInstance(q);
  auto oracle = OptimizeDp(q);
  ASSERT_TRUE(oracle.ok());

  std::vector<int> optimal(milp.model().num_variables(), 0);
  optimal[milp.tii(1, 0)] = 1;  // (R0 R1) R2: uses the selective predicate
  optimal[milp.tii(2, 1)] = 1;
  std::vector<int> valid_suboptimal(milp.model().num_variables(), 0);
  valid_suboptimal[milp.tii(2, 0)] = 1;  // cross product first
  valid_suboptimal[milp.tii(1, 1)] = 1;
  std::vector<int> invalid(milp.model().num_variables(), 0);

  const SampleSetStats stats = EvaluateSamples(
      milp, {optimal, valid_suboptimal, invalid}, oracle->cost);
  EXPECT_EQ(stats.total, 3);
  EXPECT_EQ(stats.valid, 2);
  EXPECT_EQ(stats.optimal, 1);
  EXPECT_TRUE(stats.found_valid);
  EXPECT_DOUBLE_EQ(stats.best_cost, oracle->cost);
}

/// The pipeline's central correctness property: on an ideal "QPU" (exact
/// QUBO minimisation), the decoded minimum is a valid, near-optimal join
/// order — optimal up to the staircase cardinality approximation of the
/// threshold grid (Example 3.3 discusses why the granularity matters).
/// Mirroring the paper's hardware reality, exact minimisation is only
/// tractable at the 3-relation / <=27-qubit scale.
struct ExactCase {
  QueryGraphType type;
  int thresholds;
  uint64_t seed;
};

class ExactBackendTest : public ::testing::TestWithParam<ExactCase> {};

TEST_P(ExactBackendTest, QuboMinimumDecodesToOptimalJoinOrder) {
  const ExactCase& c = GetParam();
  Rng rng(c.seed);
  QueryGenOptions gen;
  gen.num_relations = 3;
  gen.graph_type = c.type;
  gen.min_log_card = 1.0;  // cardinality 10, like the paper's instances
  gen.max_log_card = 1.0;
  auto query = GenerateQuery(gen, rng);
  ASSERT_TRUE(query.ok());

  QjoConfig config;
  config.backend = QjoBackend::kExact;
  config.num_thresholds = c.thresholds;
  config.seed = c.seed;
  auto report = OptimizeJoinOrder(*query, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->found_valid);
  EXPECT_LE(report->encoding.bilp_variables, 28);
  EXPECT_LE(report->best_cost, report->optimal_cost * 30.0 + 1e-9)
      << QueryGraphTypeName(c.type) << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactBackendTest,
    ::testing::Values(ExactCase{QueryGraphType::kChain, 2, 101},
                      ExactCase{QueryGraphType::kChain, 2, 102},
                      ExactCase{QueryGraphType::kChain, 1, 103},
                      ExactCase{QueryGraphType::kStar, 2, 104},
                      ExactCase{QueryGraphType::kStar, 1, 105},
                      ExactCase{QueryGraphType::kCycle, 1, 106},
                      ExactCase{QueryGraphType::kCycle, 1, 107}));

/// Beyond three relations the brute-force "ideal QPU" runs out of steam
/// (exactly the paper's scalability wall); classical simulated annealing
/// on the same QUBO still recovers valid near-optimal orders.
TEST(SaBackendTest, FourAndFiveRelationQubos) {
  for (int relations : {4, 5}) {
    Rng rng(200 + relations);
    QueryGenOptions gen;
    gen.num_relations = relations;
    gen.graph_type = QueryGraphType::kChain;
    gen.min_log_card = 1.0;
    gen.max_log_card = 2.0;
    auto query = GenerateQuery(gen, rng);
    ASSERT_TRUE(query.ok());
    QjoConfig config;
    config.backend = QjoBackend::kSimulatedAnnealing;
    config.num_thresholds = 2;
    config.shots = 400;
    config.seed = 200 + relations;
    auto report = OptimizeJoinOrder(*query, config);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->found_valid) << relations;
    EXPECT_GT(report->encoding.bilp_variables, 28);  // beyond brute force
  }
}

TEST(ExactBackendTest, PaperInstanceOptimalOrderExactly) {
  // On the Example 3.3 instance the threshold grid separates the optimal
  // order from all others, so the QUBO minimum is exactly optimal.
  Query q;
  q.AddRelation("R", 100);
  q.AddRelation("S", 100);
  q.AddRelation("T", 100);
  ASSERT_TRUE(q.AddPredicate(0, 1, 0.1).ok());
  QjoConfig config;
  config.backend = QjoBackend::kExact;
  config.thresholds = {100.0, 1000.0, 10000.0};
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found_valid);
  EXPECT_DOUBLE_EQ(report->best_cost, report->optimal_cost);
  // R and S are joined first (in either order).
  EXPECT_EQ(report->best_order[2], 2);
}

TEST(SaBackendTest, FindsValidSolutions) {
  const Query q = MakePaperInstance(2);
  QjoConfig config;
  config.backend = QjoBackend::kSimulatedAnnealing;
  config.shots = 160;
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->found_valid);
  EXPECT_GT(report->stats.valid, 0);
  EXPECT_GT(report->stats.bilp_feasible, 0);
}

TEST(QaoaBackendTest, RunsPaperScaleInstanceNoiselessly) {
  const Query q = MakePaperInstance(0);  // 18 qubits
  QjoConfig config;
  config.backend = QjoBackend::kQaoaSimulator;
  config.shots = 512;
  config.qaoa_iterations = 10;
  config.noiseless = true;
  config.seed = 3;
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->encoding.bilp_variables, 18);
  EXPECT_GT(report->gate.circuit_depth, 0);
  EXPECT_GT(report->stats.total, 0);
  // Even ideal p=1 QAOA yields mostly non-optimal samples, but a few
  // valid ones should appear among 512 shots.
  EXPECT_GT(report->stats.valid, 0);
}

TEST(QaoaBackendTest, NoiseReducesFidelityAndTracksDepth) {
  const Query q = MakePaperInstance(0);
  QjoConfig config;
  config.backend = QjoBackend::kQaoaSimulator;
  config.shots = 64;
  config.qaoa_iterations = 5;
  config.seed = 4;
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->gate.fidelity, 1.0);
  EXPECT_GT(report->gate.fidelity, 0.0);
  EXPECT_GT(report->gate.timings.total_s, 1.0);
  EXPECT_LT(report->gate.timings.sampling_ms / 1000.0, report->gate.timings.total_s);
}

TEST(AnnealerBackendTest, EmbedsAndSolvesThreeRelations) {
  const Query q = MakePaperInstance(2);
  QjoConfig config;
  config.backend = QjoBackend::kQuantumAnnealerSim;
  config.sqa.num_reads = 200;
  config.sqa.annealing_time_us = 20.0;
  config.seed = 5;
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->anneal.physical_qubits, report->encoding.bilp_variables);
  EXPECT_GT(report->anneal.max_chain_length, 0);
  EXPECT_GT(report->stats.total, 0);
  EXPECT_TRUE(report->found_valid);
}

TEST(BatchTest, MatchesSingleQueryRunsExactly) {
  // Batch slot i must be bit-identical to OptimizeJoinOrder(queries[i]):
  // sharing one pool across queries and read loops never changes results.
  std::vector<Query> queries;
  queries.push_back(MakePaperInstance(0));
  queries.push_back(MakePaperInstance(1));
  queries.push_back(MakePaperInstance(2));
  QjoConfig config;
  config.backend = QjoBackend::kSimulatedAnnealing;
  config.shots = 160;
  config.seed = 71;
  const auto batch = OptimizeJoinOrderBatch(queries, config, 4);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << "slot " << i;
    const auto single = OptimizeJoinOrder(queries[i], config);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch[i]->best_cost, single->best_cost) << "slot " << i;
    EXPECT_EQ(batch[i]->best_order, single->best_order);
    EXPECT_EQ(batch[i]->stats.valid, single->stats.valid);
    EXPECT_EQ(batch[i]->stats.optimal, single->stats.optimal);
  }
}

TEST(BatchTest, FailedSlotsDoNotPoisonOthers) {
  Query bad;  // 1 relation: rejected by OptimizeJoinOrder
  bad.AddRelation("R", 10);
  std::vector<Query> queries;
  queries.push_back(MakePaperInstance(1));
  queries.push_back(bad);
  QjoConfig config;
  config.backend = QjoBackend::kExact;
  const auto batch = OptimizeJoinOrderBatch(queries, config, 2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_FALSE(batch[1].ok());
}

TEST(BatchTest, RespectsCallerPool) {
  // Pool ownership rule: with config.run.pool set, the batch fans out on the
  // caller's pool instead of creating its own, and results stay
  // bit-identical to the pool-less run.
  std::vector<Query> queries;
  queries.push_back(MakePaperInstance(0));
  queries.push_back(MakePaperInstance(1));
  QjoConfig config;
  config.backend = QjoBackend::kSimulatedAnnealing;
  config.shots = 160;
  config.seed = 73;
  const auto baseline = OptimizeJoinOrderBatch(queries, config, 4);

  ThreadPool pool(4);
  const uint64_t dispatched_before = pool.tasks_dispatched();
  config.run.pool = &pool;
  const auto with_pool = OptimizeJoinOrderBatch(queries, config, 4);
  EXPECT_GT(pool.tasks_dispatched(), dispatched_before)
      << "batch did not dispatch onto the caller-supplied pool";

  ASSERT_EQ(with_pool.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    ASSERT_TRUE(baseline[i].ok());
    ASSERT_TRUE(with_pool[i].ok());
    EXPECT_EQ(with_pool[i]->best_cost, baseline[i]->best_cost) << i;
    EXPECT_EQ(with_pool[i]->best_order, baseline[i]->best_order);
    EXPECT_EQ(with_pool[i]->stats.valid, baseline[i]->stats.valid);
  }
}

TEST(BatchTest, EmptyBatchReturnsEmpty) {
  QjoConfig config;
  EXPECT_TRUE(
      OptimizeJoinOrderBatch(std::span<const Query>{}, config, 4).empty());
}

TEST(CoreTest, RejectsTinyQueries) {
  Query q;
  q.AddRelation("R", 10);
  QjoConfig config;
  EXPECT_FALSE(OptimizeJoinOrder(q, config).ok());
}

TEST(CoreTest, ReportSummaryMentionsKeyNumbers) {
  const Query q = MakePaperInstance(0);
  QjoConfig config;
  config.backend = QjoBackend::kExact;
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  const std::string summary = report->Summary();
  EXPECT_NE(summary.find("logical qubits"), std::string::npos);
  EXPECT_NE(summary.find("best cost"), std::string::npos);
}


// --- QUBO-build cache. ---

Query MakeChainQuery(int relations) {
  Query q;
  for (int i = 0; i < relations; ++i) {
    q.AddRelation("R" + std::to_string(i), 100.0 * (i + 1));
  }
  for (int i = 0; i + 1 < relations; ++i) {
    EXPECT_TRUE(q.AddPredicate(i, i + 1, 0.1).ok());
  }
  return q;
}

TEST(QuboCacheTest, HitCountingAndEntrySharing) {
  const Query q = MakeChainQuery(3);
  QuboBuildCache cache;
  JoEncodingOptions options;
  auto first = cache.GetOrBuild(q, options);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrBuild(q, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // one shared immutable entry
  EXPECT_EQ(cache.size(), 1u);
  const QuboBuildCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(QuboCacheTest, FingerprintTracksEncodingInputsOnly) {
  const Query q = MakeChainQuery(3);
  JoEncodingOptions options;
  const std::string base = JoEncodingFingerprint(q, options);

  // Renaming a relation does not change the encoding -> same key.
  Query renamed;
  renamed.AddRelation("Alpha", 100.0);
  renamed.AddRelation("Beta", 200.0);
  renamed.AddRelation("Gamma", 300.0);
  ASSERT_TRUE(renamed.AddPredicate(0, 1, 0.1).ok());
  ASSERT_TRUE(renamed.AddPredicate(1, 2, 0.1).ok());
  EXPECT_EQ(JoEncodingFingerprint(renamed, options), base);

  // Any selectivity, cardinality, threshold or omega change -> new key.
  Query selectivity;
  selectivity.AddRelation("R0", 100.0);
  selectivity.AddRelation("R1", 200.0);
  selectivity.AddRelation("R2", 300.0);
  ASSERT_TRUE(selectivity.AddPredicate(0, 1, 0.2).ok());
  ASSERT_TRUE(selectivity.AddPredicate(1, 2, 0.1).ok());
  EXPECT_NE(JoEncodingFingerprint(selectivity, options), base);
  JoEncodingOptions omega = options;
  omega.omega = 2.0;
  EXPECT_NE(JoEncodingFingerprint(q, omega), base);
  JoEncodingOptions more_thresholds = options;
  more_thresholds.num_thresholds = 3;
  EXPECT_NE(JoEncodingFingerprint(q, more_thresholds), base);
}

TEST(QuboCacheTest, ExplicitGeometricThresholdsShareTheDefaultKey) {
  const Query q = MakeChainQuery(3);
  JoEncodingOptions defaults;
  JoEncodingOptions explicit_options;
  explicit_options.thresholds =
      MakeGeometricThresholds(q, defaults.num_thresholds);
  EXPECT_EQ(JoEncodingFingerprint(q, explicit_options),
            JoEncodingFingerprint(q, defaults));
}

TEST(QuboCacheTest, EvictsExactlyTheLeastRecentlyUsedEntry) {
  QuboBuildCache cache(/*max_entries=*/2);
  JoEncodingOptions options;
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(3), options).ok());
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(4), options).ok());
  EXPECT_EQ(cache.stats().evictions, 0u);
  // Inserting a third key at capacity displaces only the oldest (the
  // 3-relation query), not the whole cache.
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(5), options).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  const uint64_t hits_before = cache.stats().hits;
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(4), options).ok());  // hit
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(5), options).ok());  // hit
  EXPECT_EQ(cache.stats().hits, hits_before + 2);
  // The evicted key misses and rebuilds.
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(3), options).ok());
  EXPECT_EQ(cache.stats().hits, hits_before + 2);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(QuboCacheTest, HitRefreshesRecencyOrder) {
  QuboBuildCache cache(/*max_entries=*/2);
  JoEncodingOptions options;
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(3), options).ok());
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(4), options).ok());
  // Touching the 3-relation entry makes the 4-relation one the LRU, so
  // the next insert at capacity displaces 4, not 3.
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(3), options).ok());
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(5), options).ok());
  const uint64_t hits_before = cache.stats().hits;
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(3), options).ok());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(4), options).ok());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);  // 4 was evicted: a miss
}

TEST(QuboCacheTest, PresentKeyNeverEvicts) {
  // Capacity one: the duplicate-heavy workload that used to clear the
  // cache wholesale. Re-getting the same key must neither evict nor grow.
  QuboBuildCache cache(/*max_entries=*/1);
  JoEncodingOptions options;
  auto first = cache.GetOrBuild(MakeChainQuery(3), options);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    auto again = cache.GetOrBuild(MakeChainQuery(3), options);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->get(), first->get());
  }
  const QuboBuildCache::Stats stats = cache.stats();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(QuboCacheTest, ConcurrentGetOrBuildIsSingleFlight) {
  // N threads racing GetOrBuild on one cold key: exactly one build runs
  // (single flight); every other caller either waits on the in-progress
  // build (coalesced) or hits the finished entry, and all of them share
  // the same immutable encoding. Runs under TSan via the concurrency
  // label.
  const Query q = MakeChainQuery(6);
  QuboBuildCache cache;
  JoEncodingOptions options;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const JoQuboEncoding>> results(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Spin barrier so the calls overlap instead of serialising on
      // thread start-up.
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < kThreads) {
      }
      auto encoding = cache.GetOrBuild(q, options);
      if (encoding.ok()) results[t] = *std::move(encoding);
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_NE(results[0], nullptr);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get()) << "thread " << t;
  }
  const QuboBuildCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u) << "exactly one build despite the stampede";
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_LE(stats.coalesced_builds, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QuboCacheTest, EvictedEntriesStayAliveThroughSharedPtr) {
  QuboBuildCache cache(/*max_entries=*/1);
  JoEncodingOptions options;
  auto held = cache.GetOrBuild(MakeChainQuery(3), options);
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(cache.GetOrBuild(MakeChainQuery(4), options).ok());  // evicts 3
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The handed-out entry is unaffected by its eviction.
  EXPECT_GT((*held)->encoding.qubo.num_variables(), 0);
}

// --- Portfolio backend. ---

TEST(PortfolioTest, ZeroDeadlineReturnsClassicalFallback) {
  const Query q = MakeChainQuery(4);
  QjoConfig config;
  config.backend = QjoBackend::kPortfolio;
  config.portfolio.run.deadline_ms = 0.0;
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  // Zero budget: no strand ran, yet a valid plan (the DP fallback, which
  // is optimal at this size) came back.
  EXPECT_TRUE(report->found_valid);
  EXPECT_TRUE(report->portfolio.used_classical_fallback);
  EXPECT_EQ(report->portfolio.winner, "classical_fallback");
  EXPECT_DOUBLE_EQ(report->best_cost, report->optimal_cost);
  EXPECT_EQ(report->best_order.order(), report->optimal_order.order());
  for (const StrandOutcome& strand : report->portfolio.race.strands) {
    EXPECT_EQ(strand.rounds_completed, 0);
  }
}

TEST(PortfolioTest, RejectsUnboundedConfiguration) {
  const Query q = MakeChainQuery(3);
  QjoConfig config;
  config.backend = QjoBackend::kPortfolio;
  config.portfolio.run.deadline_ms = -1.0;
  config.portfolio.sweep_budget = 0;  // no deadline and no sweep bound
  EXPECT_FALSE(OptimizeJoinOrder(q, config).ok());
}

TEST(PortfolioTest, ExactStrandWinsSmallInstances) {
  const Query q = MakePaperInstance(2);  // 18 logical qubits
  QjoConfig config;
  config.backend = QjoBackend::kPortfolio;
  config.portfolio.sweep_budget = 256;
  config.portfolio.max_exact_variables = 28;  // paper instance: 22 qubits
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->found_valid);
  EXPECT_FALSE(report->portfolio.used_classical_fallback);
  ASSERT_FALSE(report->portfolio.race.strands.empty());
  const StrandOutcome& exact = report->portfolio.race.strands[0];
  EXPECT_EQ(exact.name, "exact");
  ASSERT_TRUE(exact.eligible);
  // The exact strand proves the optimum; no strand can beat its score and
  // ties break in its favour.
  EXPECT_TRUE(exact.hit_lower_bound);
  EXPECT_TRUE(exact.won);
  EXPECT_EQ(report->portfolio.winner, "exact");
  EXPECT_DOUBLE_EQ(report->best_cost, report->optimal_cost);
}

TEST(PortfolioTest, DeadlineExpiryStillReturnsValidPlan) {
  const Query q = MakeChainQuery(5);
  QjoConfig config;
  config.backend = QjoBackend::kPortfolio;
  config.portfolio.run.deadline_ms = 30.0;
  config.portfolio.sweep_budget = 0;  // unlimited: only the deadline stops it
  config.run.parallelism = 4;             // race strands concurrently
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->found_valid);
  EXPECT_EQ(report->best_order.order().size(), 5u);
  EXPECT_GT(report->best_cost, 0.0);
}

TEST(PortfolioTest, DeterministicAcrossParallelism) {
  const Query q = MakeChainQuery(4);
  QjoConfig config;
  config.backend = QjoBackend::kPortfolio;
  config.portfolio.sweep_budget = 512;  // pure sweep-budget mode
  std::optional<QjoReport> baseline;
  for (int parallelism : {1, 4, 16}) {
    config.run.parallelism = parallelism;
    auto report = OptimizeJoinOrder(q, config);
    ASSERT_TRUE(report.ok()) << "parallelism " << parallelism;
    ASSERT_TRUE(report->found_valid);
    if (!baseline.has_value()) {
      baseline = *std::move(report);
      continue;
    }
    // Everything except wall-clock timings must be bit-identical.
    EXPECT_EQ(report->best_order.order(), baseline->best_order.order());
    EXPECT_EQ(report->best_cost, baseline->best_cost);
    EXPECT_EQ(report->portfolio.winner, baseline->portfolio.winner);
    EXPECT_EQ(report->portfolio.race.winner, baseline->portfolio.race.winner);
    EXPECT_EQ(report->portfolio.race.best_assignment,
              baseline->portfolio.race.best_assignment);
    EXPECT_EQ(report->portfolio.race.best_energy,
              baseline->portfolio.race.best_energy);
    ASSERT_EQ(report->portfolio.race.strands.size(),
              baseline->portfolio.race.strands.size());
    for (size_t s = 0; s < baseline->portfolio.race.strands.size(); ++s) {
      const StrandOutcome& got = report->portfolio.race.strands[s];
      const StrandOutcome& want = baseline->portfolio.race.strands[s];
      EXPECT_EQ(got.eligible, want.eligible) << "strand " << s;
      EXPECT_EQ(got.rounds_completed, want.rounds_completed) << "strand " << s;
      EXPECT_EQ(got.sweeps_completed, want.sweeps_completed) << "strand " << s;
      EXPECT_EQ(got.best_energy, want.best_energy) << "strand " << s;
      EXPECT_EQ(got.feasible, want.feasible) << "strand " << s;
      if (got.feasible) {
        EXPECT_EQ(got.best_score, want.best_score) << "strand " << s;
      }
      EXPECT_EQ(got.won, want.won) << "strand " << s;
    }
  }
}

TEST(PortfolioTest, DecompStrandIneligibleForSmallQueries) {
  const Query q = MakeChainQuery(4);
  QjoConfig config;
  config.backend = QjoBackend::kPortfolio;
  config.portfolio.sweep_budget = 128;
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok());
  // Below min_decomp_relations the hook is never installed: the QUBO
  // strands own small instances.
  ASSERT_EQ(report->portfolio.race.strands.size(), 6u);
  const StrandOutcome& decomp = report->portfolio.race.strands[5];
  EXPECT_EQ(decomp.name, "decomp");
  EXPECT_FALSE(decomp.eligible);
}

TEST(PortfolioTest, DecompStrandSolvesThirtyRelationQuery) {
  // The headline regression: at 30 relations no monolithic QUBO sample
  // decodes, so before the decomposition strand the portfolio could only
  // answer with the classical fallback.
  const Query q = MakeChainQuery(30);
  QjoConfig config;
  config.backend = QjoBackend::kPortfolio;
  config.portfolio.sweep_budget = 128;  // keep the doomed QUBO strands short
  config.portfolio.enable_sqa = false;
  config.portfolio.decomp.max_rounds = 2;
  auto report = OptimizeJoinOrder(q, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->found_valid);
  EXPECT_FALSE(report->portfolio.used_classical_fallback);
  EXPECT_EQ(report->portfolio.winner, "decomp");
  auto valid = LeftDeepOrder::Create(report->best_order.order(), q);
  ASSERT_TRUE(valid.ok());
  const auto greedy = OptimizeGreedy(q);
  ASSERT_TRUE(greedy.ok());
  EXPECT_LE(report->best_cost, greedy->cost);
  const StrandOutcome& decomp = report->portfolio.race.strands[5];
  EXPECT_TRUE(decomp.won);
  EXPECT_GT(decomp.rounds_completed, 0);
}

TEST(BatchTest, SharedCacheEncodesRepeatedQueriesOnce) {
  const Query q = MakeChainQuery(3);
  std::vector<Query> queries = {q, q, q};
  QuboBuildCache cache;
  QjoConfig config;
  config.backend = QjoBackend::kExact;
  config.qubo_cache = &cache;
  const auto reports =
      OptimizeJoinOrderBatch(queries, config, /*parallelism=*/1);
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& report : reports) ASSERT_TRUE(report.ok());
  // Serial batch: the first lookup misses, the other two hit.
  const QuboBuildCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace qjo

// Serving-layer tests: admission-control edge cases, deadline handling,
// plan-cache TTL/LRU semantics, and the bit-identity contract (a
// cache-miss response equals a direct OptimizeJoinOrder call at any
// worker count). The ctest "concurrency" entries run these under
// ThreadSanitizer via the tsan preset.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/quantum_optimizer.h"
#include "core/qubo_cache.h"
#include "jo/query.h"
#include "obs/obs.h"
#include "qubo/deadline_monitor.h"
#include "serve/optimizer_service.h"
#include "serve/plan_cache.h"
#include "serve/token_bucket.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

using namespace std::chrono_literals;

Query MakeQuery(int relations, double base_card = 10.0) {
  Query q;
  for (int t = 0; t < relations; ++t) {
    q.AddRelation("R" + std::to_string(t), base_card + t);
  }
  for (int t = 0; t + 1 < relations; ++t) {
    EXPECT_TRUE(q.AddPredicate(t, t + 1, 0.1).ok());
  }
  return q;
}

QjoConfig FastConfig(uint64_t seed = 7) {
  QjoConfig config;
  config.backend = QjoBackend::kSimulatedAnnealing;
  config.shots = 32;
  config.seed = seed;
  return config;
}

/// A request whose solve occupies a worker long enough (hundreds of ms)
/// for the test to line up queue states behind it.
ServeRequest SlowRequest(const std::string& tenant = "default") {
  ServeRequest request;
  request.query = MakeQuery(6);
  request.config = FastConfig(11);
  request.config.shots = 1500;
  request.tenant = tenant;
  request.bypass_cache = true;
  return request;
}

/// Coalescible twin of SlowRequest: same long solve, but cache/coalescing
/// stay enabled so repeated calls share one plan key.
ServeRequest SlowCoalescible(const std::string& tenant = "default",
                             int shots = 1500) {
  ServeRequest request;
  request.query = MakeQuery(6);
  request.config = FastConfig(11);
  request.config.shots = shots;
  request.tenant = tenant;
  return request;
}

ServeRequest QuickRequest(const std::string& tenant = "default",
                          uint64_t seed = 7) {
  ServeRequest request;
  request.query = MakeQuery(3);
  request.config = FastConfig(seed);
  request.tenant = tenant;
  return request;
}

/// Waits until the admission queue is empty (every submitted request has
/// been picked up by a worker).
void WaitDequeued(OptimizerService& service) {
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  while (service.queued() > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "requests were never dequeued";
    std::this_thread::sleep_for(1ms);
  }
}

// ---------------------------------------------------------------------------
// DeadlineMonitor.

TEST(DeadlineMonitorTest, FiresPastDeadlineAndCountsIt) {
  DeadlineMonitor monitor;
  std::atomic<bool> token{false};
  monitor.Arm(&token, DeadlineMonitor::Clock::now() - 1ms);
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  while (!token.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "expired token never fired";
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(monitor.fired(), 1u);
  EXPECT_EQ(monitor.armed(), 0u);  // fired entries are removed
}

TEST(DeadlineMonitorTest, DisarmWithdrawsWithoutFiring) {
  DeadlineMonitor monitor;
  std::atomic<bool> token{false};
  const uint64_t id = monitor.Arm(&token, DeadlineMonitor::Clock::now() + 1h);
  EXPECT_EQ(monitor.armed(), 1u);
  monitor.Disarm(id);
  EXPECT_EQ(monitor.armed(), 0u);
  EXPECT_FALSE(token.load());
  EXPECT_EQ(monitor.fired(), 0u);
  monitor.Disarm(id);  // idempotent
}

TEST(DeadlineMonitorTest, NewerEarlierDeadlinePreempts) {
  // Arming an earlier deadline after a later one must wake the monitor's
  // sleep: the earlier token fires first, long before the later deadline.
  DeadlineMonitor monitor;
  std::atomic<bool> late{false};
  std::atomic<bool> early{false};
  monitor.Arm(&late, DeadlineMonitor::Clock::now() + 1h);
  monitor.ArmAfterMs(&early, 5.0);
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  while (!early.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "earlier-armed token never fired";
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_FALSE(late.load());
}

// ---------------------------------------------------------------------------
// PlanCache.

QjoReport MakeReport(double cost) {
  QjoReport report;
  report.found_valid = true;
  report.best_cost = cost;
  return report;
}

TEST(PlanCacheTest, TtlExpiryIsNotAnEviction) {
  PlanCacheOptions options;
  options.num_shards = 1;
  options.capacity_per_shard = 2;
  options.ttl_ms = 100.0;
  PlanCache cache(options);
  const auto t0 = PlanCache::Clock::now();

  cache.InsertAt("a", MakeReport(1.0), t0);
  cache.InsertAt("b", MakeReport(2.0), t0 + 10ms);
  ASSERT_NE(cache.LookupAt("a", t0 + 50ms), nullptr);  // within TTL: hit

  // Insert into the full shard after both TTLs passed: the sweep removes
  // them as ttl_expirations, never as LRU evictions.
  cache.InsertAt("c", MakeReport(3.0), t0 + 200ms);
  auto stats = cache.stats();
  EXPECT_EQ(stats.ttl_expirations, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);

  // A lookup landing on an expired entry also counts ttl_expiration +
  // miss (and removes it).
  cache.InsertAt("d", MakeReport(4.0), t0 + 200ms);
  EXPECT_EQ(cache.LookupAt("d", t0 + 400ms), nullptr);
  stats = cache.stats();
  EXPECT_EQ(stats.ttl_expirations, 3u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PlanCacheTest, LruEvictsOnlyLiveEntries) {
  PlanCacheOptions options;
  options.num_shards = 1;
  options.capacity_per_shard = 2;
  options.ttl_ms = 1000.0;
  PlanCache cache(options);
  const auto t0 = PlanCache::Clock::now();

  cache.InsertAt("a", MakeReport(1.0), t0);
  cache.InsertAt("b", MakeReport(2.0), t0 + 1ms);
  // Touch "a" so "b" is the LRU victim.
  ASSERT_NE(cache.LookupAt("a", t0 + 2ms), nullptr);
  cache.InsertAt("c", MakeReport(3.0), t0 + 3ms);  // full, nothing expired
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.ttl_expirations, 0u);
  EXPECT_EQ(cache.LookupAt("b", t0 + 4ms), nullptr);   // evicted
  EXPECT_NE(cache.LookupAt("a", t0 + 4ms), nullptr);   // survived
  EXPECT_NE(cache.LookupAt("c", t0 + 4ms), nullptr);
}

TEST(PlanCacheTest, ReinsertRefreshesInPlace) {
  PlanCacheOptions options;
  options.num_shards = 1;
  options.capacity_per_shard = 2;
  options.ttl_ms = 100.0;
  PlanCache cache(options);
  const auto t0 = PlanCache::Clock::now();

  cache.InsertAt("a", MakeReport(1.0), t0);
  cache.InsertAt("a", MakeReport(9.0), t0 + 90ms);  // refresh value + TTL
  const auto hit = cache.LookupAt("a", t0 + 150ms);  // alive: TTL restarted
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->best_cost, 9.0);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(PlanCacheTest, StatsReadableWhileConcurrentLookups) {
  // The relaxed-atomic stats contract: readers never block or race
  // writers (run under TSan via the concurrency label).
  PlanCache cache(PlanCacheOptions{});
  cache.Insert("hot", MakeReport(1.0));
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)cache.stats();
    }
  });
  for (int i = 0; i < 5000; ++i) {
    (void)cache.Lookup("hot");
    (void)cache.Lookup("cold");
  }
  done.store(true, std::memory_order_release);
  reader.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 5000u);
  EXPECT_EQ(stats.misses, 5000u);
}

TEST(PlanCacheTest, ExportsServeGauges) {
  PlanCache cache(PlanCacheOptions{});
  cache.Insert("k", MakeReport(1.0));
  (void)cache.Lookup("k");
  (void)cache.Lookup("absent");
  MetricsRegistry metrics;
  cache.ExportGauges(&metrics);
  const auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.gauges.at("serve.cache.hits"), 1.0);
  EXPECT_EQ(snapshot.gauges.at("serve.cache.misses"), 1.0);
  EXPECT_EQ(snapshot.gauges.at("serve.cache.evictions"), 0.0);
  EXPECT_EQ(snapshot.gauges.at("serve.cache.ttl_expirations"), 0.0);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(ServeTest, RejectsWhenQueueFull) {
  ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  OptimizerService service(options);

  auto slow = service.Submit(SlowRequest());
  ASSERT_TRUE(slow.ok());
  WaitDequeued(service);  // the worker holds it; the queue is empty again

  auto queued = service.Submit(QuickRequest());
  ASSERT_TRUE(queued.ok());  // fills the queue to capacity

  // Distinct seed = distinct plan key, so this cannot coalesce onto the
  // queued request and must face the capacity check.
  double retry_after = 0.0;
  auto rejected = service.Submit(QuickRequest("default", 8), &retry_after);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(retry_after, 0.0);

  EXPECT_TRUE(std::move(slow).value().get().status.ok());
  EXPECT_TRUE(std::move(queued).value().get().status.ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServeTest, TenantQuotaExactlyAtLimit) {
  ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 64;
  options.per_tenant_inflight = 2;
  OptimizerService service(options);

  auto a0 = service.Submit(SlowRequest("a"));
  ASSERT_TRUE(a0.ok());
  WaitDequeued(service);
  auto a1 = service.Submit(QuickRequest("a"));
  ASSERT_TRUE(a1.ok()) << "second request is exactly at the quota";

  double retry_after = 0.0;
  auto a2 = service.Submit(QuickRequest("a"), &retry_after);
  ASSERT_FALSE(a2.ok()) << "third request is over the quota";
  EXPECT_EQ(a2.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(retry_after, 0.0);

  // Another tenant is unaffected by tenant a's quota.
  auto b0 = service.Submit(QuickRequest("b"));
  ASSERT_TRUE(b0.ok());

  EXPECT_TRUE(std::move(a0).value().get().status.ok());
  EXPECT_TRUE(std::move(a1).value().get().status.ok());
  EXPECT_TRUE(std::move(b0).value().get().status.ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_tenant_quota, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
}

// ---------------------------------------------------------------------------
// Deadlines and degradation.

TEST(ServeTest, DeadlineExpiredAtDequeueDegradesToClassical) {
  ServeOptions options;
  options.workers = 1;
  OptimizerService service(options);

  auto slow = service.Submit(SlowRequest());
  ASSERT_TRUE(slow.ok());
  WaitDequeued(service);

  // 1 ms of budget, behind a solve that takes hundreds: fully expired by
  // dequeue time. The service answers with the classical fallback rather
  // than failing.
  ServeRequest expiring = QuickRequest();
  expiring.deadline_ms = 1.0;
  expiring.bypass_cache = true;
  auto future = service.Submit(std::move(expiring));
  ASSERT_TRUE(future.ok());

  const ServeResult result = std::move(future).value().get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.deadline_expired_in_queue);
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.report.found_valid);
  EXPECT_TRUE(result.report.portfolio.used_classical_fallback);
  EXPECT_EQ(result.report.portfolio.winner, "classical_fallback");
  EXPECT_FALSE(result.cache_hit);

  EXPECT_TRUE(std::move(slow).value().get().status.ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.degraded, 1u);
}

TEST(ServeTest, DegradesUnderDeadlinePressureBeforeExpiry) {
  // A huge degrade margin makes any finite-deadline request take the
  // degraded path deterministically — with budget still remaining, so
  // deadline_expired_in_queue stays false.
  ServeOptions options;
  options.workers = 1;
  options.degrade_margin_ms = 1e9;
  OptimizerService service(options);

  ServeRequest request = QuickRequest();
  request.deadline_ms = 1e6;
  request.bypass_cache = true;
  auto future = service.Submit(std::move(request));
  ASSERT_TRUE(future.ok());
  const ServeResult result = std::move(future).value().get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.deadline_expired_in_queue);
  EXPECT_TRUE(result.report.found_valid);
  EXPECT_EQ(result.report.portfolio.winner, "classical_fallback");
}

TEST(ServeTest, StopTokenCancelsMidSolve) {
  // A portfolio request with an effectively unbounded sweep budget but a
  // short deadline: the DeadlineMonitor flips the stop token mid-solve
  // and the race winds down with the classical guarantee intact. Without
  // cancellation this solve would run for minutes.
  ServeOptions options;
  options.workers = 1;
  options.degrade_margin_ms = 0.0;  // never take the degraded shortcut
  OptimizerService service(options);

  ServeRequest request;
  request.query = MakeQuery(4);
  request.config = FastConfig();
  request.config.backend = QjoBackend::kPortfolio;
  request.config.portfolio.sweep_budget = int64_t{1} << 40;
  request.deadline_ms = 100.0;
  request.bypass_cache = true;

  const auto t0 = std::chrono::steady_clock::now();
  auto future = service.Submit(std::move(request));
  ASSERT_TRUE(future.ok());
  const ServeResult result = std::move(future).value().get();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.report.found_valid)
      << "portfolio must still hand back a valid plan after cancellation";
  // Winding down is cooperative (between rounds), so allow generous slack
  // over the 100 ms deadline — but far below the uncancelled runtime.
  EXPECT_LT(elapsed_ms, 30000.0);
}

TEST(ServeTest, PreFiredCallerTokenShortCircuitsSolve) {
  // A caller-supplied stop token is respected as-is; pre-fired, the
  // portfolio race stops immediately and the classical fallback answers.
  ServeOptions options;
  options.workers = 1;
  OptimizerService service(options);

  std::atomic<bool> stop{true};
  ServeRequest request;
  request.query = MakeQuery(4);
  request.config = FastConfig();
  request.config.backend = QjoBackend::kPortfolio;
  request.config.portfolio.sweep_budget = int64_t{1} << 40;
  request.config.run.stop = &stop;
  request.bypass_cache = true;

  auto future = service.Submit(std::move(request));
  ASSERT_TRUE(future.ok());
  const ServeResult result = std::move(future).value().get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.report.found_valid);
  EXPECT_TRUE(result.report.portfolio.used_classical_fallback);
}

// ---------------------------------------------------------------------------
// Plan cache through the service.

TEST(ServeTest, CacheHitReturnsIdenticalReport) {
  ServeOptions options;
  options.workers = 1;  // serialise so the second submit sees the insert
  MetricsRegistry metrics;
  options.metrics = &metrics;
  OptimizerService service(options);

  auto first = service.Submit(QuickRequest());
  ASSERT_TRUE(first.ok());
  const ServeResult miss = std::move(first).value().get();
  ASSERT_TRUE(miss.status.ok());
  EXPECT_FALSE(miss.cache_hit);

  auto second = service.Submit(QuickRequest());
  ASSERT_TRUE(second.ok());
  const ServeResult hit = std::move(second).value().get();
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.report.best_cost, miss.report.best_cost);
  EXPECT_EQ(hit.report.best_order, miss.report.best_order);
  EXPECT_EQ(hit.report.stats.valid, miss.report.stats.valid);

  const auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.gauges.at("serve.cache.hits"), 1.0);
  EXPECT_EQ(snapshot.gauges.at("serve.cache.misses"), 1.0);
  EXPECT_EQ(snapshot.counters.at("serve.cache_hit"), 1u);
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(ServeTest, PlanKeySeparatesResultDeterminingFields) {
  const Query query = MakeQuery(3);
  const QjoConfig base = FastConfig(7);
  QjoConfig other_seed = base;
  other_seed.seed = 8;
  QjoConfig other_backend = base;
  other_backend.backend = QjoBackend::kExact;
  QjoConfig other_parallelism = base;
  other_parallelism.run.parallelism = 8;

  const std::string key = OptimizerService::PlanKey(query, base);
  EXPECT_NE(key, OptimizerService::PlanKey(query, other_seed));
  EXPECT_NE(key, OptimizerService::PlanKey(query, other_backend));
  EXPECT_NE(key, OptimizerService::PlanKey(MakeQuery(4), base));
  // Parallelism never changes results, so it must not split the cache.
  EXPECT_EQ(key, OptimizerService::PlanKey(query, other_parallelism));
}

// ---------------------------------------------------------------------------
// Bit-identity.

TEST(ServeTest, BitIdenticalToDirectCallsAcrossWorkerCounts) {
  // The acceptance contract: a cache-miss response is bit-identical to
  // the direct OptimizeJoinOrder call, at any worker count and with a
  // shared pool under the futures.
  std::vector<ServeRequest> requests;
  for (int relations = 3; relations <= 5; ++relations) {
    for (uint64_t seed : {7u, 71u, 713u}) {
      ServeRequest request;
      request.query = MakeQuery(relations);
      request.config = FastConfig(seed);
      request.config.shots = 96;
      request.tenant = "t" + std::to_string(relations);
      request.bypass_cache = true;  // force the solve path every time
      requests.push_back(std::move(request));
    }
  }

  std::vector<QjoReport> direct;
  direct.reserve(requests.size());
  for (const auto& request : requests) {
    auto report = OptimizeJoinOrder(request.query, request.config);
    ASSERT_TRUE(report.ok());
    direct.push_back(std::move(report).value());
  }

  for (int workers : {1, 4, 8}) {
    ThreadPool pool(4);
    ServeOptions options;
    options.workers = workers;
    options.queue_capacity = 64;
    options.pool = &pool;
    OptimizerService service(options);
    std::vector<std::future<ServeResult>> futures;
    futures.reserve(requests.size());
    for (const auto& request : requests) {
      auto future = service.Submit(request);
      ASSERT_TRUE(future.ok());
      futures.push_back(std::move(future).value());
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const ServeResult result = futures[i].get();
      ASSERT_TRUE(result.status.ok()) << "workers=" << workers << " slot " << i;
      EXPECT_FALSE(result.cache_hit);
      EXPECT_EQ(result.report.best_cost, direct[i].best_cost)
          << "workers=" << workers << " slot " << i;
      EXPECT_EQ(result.report.best_order, direct[i].best_order);
      EXPECT_EQ(result.report.stats.valid, direct[i].stats.valid);
      EXPECT_EQ(result.report.stats.optimal, direct[i].stats.optimal);
    }
    service.Drain();
  }
}

// ---------------------------------------------------------------------------
// Lifecycle.

TEST(ServeTest, DrainWaitsForAllAdmittedRequests) {
  ServeOptions options;
  options.workers = 2;
  OptimizerService service(options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 8; ++i) {
    auto future = service.Submit(QuickRequest("t" + std::to_string(i % 3),
                                              static_cast<uint64_t>(i)));
    ASSERT_TRUE(future.ok());
    futures.push_back(std::move(future).value());
  }
  service.Drain();
  for (auto& future : futures) {
    // Drain implies every promise is already fulfilled.
    ASSERT_EQ(future.wait_for(0s), std::future_status::ready);
    EXPECT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(service.stats().completed, 8u);
}

TEST(ServeTest, ShutdownFailsQueuedRequestsCleanly) {
  std::future<ServeResult> in_flight;
  std::future<ServeResult> orphaned;
  {
    ServeOptions options;
    options.workers = 1;
    OptimizerService service(options);
    auto slow = service.Submit(SlowRequest());
    ASSERT_TRUE(slow.ok());
    in_flight = std::move(slow).value();
    WaitDequeued(service);
    auto queued = service.Submit(QuickRequest());
    ASSERT_TRUE(queued.ok());
    orphaned = std::move(queued).value();
    // Service destructor runs here while the slow solve still occupies
    // the only worker: the solve runs to completion, the queued request
    // is never dispatched and fails with FailedPrecondition.
  }
  EXPECT_TRUE(in_flight.get().status.ok());
  const ServeResult result = orphaned.get();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Retry-after hint.

TEST(RetryAfterTest, MonotoneInBacklogAndClamped) {
  const double max_ms = 500.0;
  double prev = 0.0;
  for (size_t backlog = 0; backlog <= 64; ++backlog) {
    const double hint = RetryAfterHintMs(40.0, backlog, 4, max_ms);
    EXPECT_GE(hint, prev) << "hint must grow with queue depth";
    EXPECT_LE(hint, max_ms);
    prev = hint;
  }
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(40.0, 2, 4, max_ms), 20.0);
  // A huge average saturates at the clamp instead of telling clients to
  // come back in an hour.
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(1e9, 64, 1, max_ms), max_ms);
}

TEST(RetryAfterTest, PathologicalAverageFallsBackToDefault) {
  const double pathological[] = {std::nan(""),
                                 std::numeric_limits<double>::infinity(),
                                 -std::numeric_limits<double>::infinity(),
                                 -5.0, 0.0};
  for (const double avg : pathological) {
    double prev = 0.0;
    for (size_t backlog = 0; backlog <= 32; ++backlog) {
      const double hint = RetryAfterHintMs(avg, backlog, 2, 1000.0);
      EXPECT_TRUE(std::isfinite(hint)) << "avg=" << avg;
      EXPECT_GE(hint, prev);
      EXPECT_LE(hint, 1000.0);
      prev = hint;
    }
    // The default estimate (50 ms) takes over: 50 * 2 / 2 workers.
    EXPECT_DOUBLE_EQ(RetryAfterHintMs(avg, 2, 2, 1e9), 50.0);
  }
}

// ---------------------------------------------------------------------------
// Token bucket.

TEST(TokenBucketTest, BurstThenRefillDeterministically) {
  const auto t0 = TokenBucket::Clock::now();
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/2.0, t0);
  EXPECT_DOUBLE_EQ(bucket.TokensAt(t0), 2.0);  // starts full
  EXPECT_TRUE(bucket.TryAcquireAt(t0, 1.0));
  EXPECT_TRUE(bucket.TryAcquireAt(t0, 1.0));
  double retry = 0.0;
  EXPECT_FALSE(bucket.TryAcquireAt(t0, 1.0, &retry));
  EXPECT_DOUBLE_EQ(retry, 100.0);  // one token at 10/s = 100 ms away
  // 50 ms later half a token has accrued — still short for cost 1.
  EXPECT_FALSE(bucket.TryAcquireAt(t0 + 50ms, 1.0, &retry));
  EXPECT_DOUBLE_EQ(retry, 50.0);  // the hint tracks the shrinking deficit
  EXPECT_TRUE(bucket.TryAcquireAt(t0 + 100ms, 1.0));
}

TEST(TokenBucketTest, RefillCapsAtBurstAndFractionalCostsWork) {
  const auto t0 = TokenBucket::Clock::now();
  TokenBucket bucket(/*rate_per_sec=*/100.0, /*burst=*/3.0, t0);
  // An idle eternity never banks more than the burst.
  EXPECT_DOUBLE_EQ(bucket.TokensAt(t0 + std::chrono::minutes(10)), 3.0);
  // Fractional costs (the follower quota weight) debit exactly.
  EXPECT_TRUE(bucket.TryAcquireAt(t0, 0.25));
  EXPECT_DOUBLE_EQ(bucket.TokensAt(t0), 2.75);
}

TEST(ServeTest, RateLimitRejectionsUseBucketRefillHint) {
  ServeOptions options;
  options.workers = 1;
  options.tenant_rate_per_sec = 1.0;  // refill far slower than the test
  options.tenant_burst = 1.0;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  OptimizerService service(options);

  auto admitted = service.Submit(QuickRequest("t"));
  ASSERT_TRUE(admitted.ok()) << "burst admits the first request";
  double retry_after = 0.0;
  auto limited = service.Submit(QuickRequest("t", 8), &retry_after);
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kResourceExhausted);
  // The bucket needs ~1 s to bank a whole token again; the queue-depth
  // estimate would have said a few hundred ms at most.
  EXPECT_GT(retry_after, 500.0);
  EXPECT_LE(retry_after, options.max_retry_after_ms);

  // Another tenant holds its own (full) bucket.
  auto other = service.Submit(QuickRequest("u", 9));
  ASSERT_TRUE(other.ok());

  EXPECT_TRUE(std::move(admitted).value().get().status.ok());
  EXPECT_TRUE(std::move(other).value().get().status.ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_rate_limited, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.rejected_tenant_quota, 0u);
  EXPECT_EQ(metrics.Snapshot().counters.at("serve.rejected.rate_limited"), 1u);
}

// ---------------------------------------------------------------------------
// Single-flight coalescing.

TEST(ServeTest, CoalescesIdenticalSubmitsToOneSolve) {
  // The tentpole acceptance bar: N identical concurrent submits cost
  // exactly one pipeline solve — measured three independent ways (service
  // solve count, shared build-cache misses, thread-pool task dispatches)
  // — at any worker count, and every response is bit-identical to the
  // direct OptimizeJoinOrder call.
  ServeRequest base = SlowCoalescible("default", /*shots=*/600);
  base.config.run.parallelism = 4;

  ThreadPool pool(4);
  QjoConfig direct_config = base.config;
  direct_config.run.pool = &pool;
  const uint64_t direct_before = pool.tasks_dispatched();
  auto direct = OptimizeJoinOrder(base.query, direct_config);
  ASSERT_TRUE(direct.ok());
  const uint64_t direct_tasks = pool.tasks_dispatched() - direct_before;

  constexpr int kDuplicates = 6;
  for (int workers : {1, 4, 8}) {
    ServeOptions options;
    options.workers = workers;
    options.pool = &pool;
    options.enable_plan_cache = false;  // isolate coalescing from the cache
    OptimizerService service(options);
    const uint64_t tasks_before = pool.tasks_dispatched();
    std::vector<std::future<ServeResult>> futures;
    futures.reserve(kDuplicates);
    for (int i = 0; i < kDuplicates; ++i) {
      auto future = service.Submit(base);
      ASSERT_TRUE(future.ok()) << "workers=" << workers << " dup " << i;
      futures.push_back(std::move(future).value());
    }
    int coalesced = 0;
    for (auto& future : futures) {
      const ServeResult result = future.get();
      ASSERT_TRUE(result.status.ok()) << "workers=" << workers;
      if (result.coalesced) {
        ++coalesced;
        EXPECT_EQ(result.solve_ms, 0.0) << "followers never solve";
      }
      EXPECT_EQ(result.report.best_cost, direct->best_cost)
          << "workers=" << workers;
      EXPECT_EQ(result.report.best_order, direct->best_order);
      EXPECT_EQ(result.report.stats.valid, direct->stats.valid);
      EXPECT_EQ(result.report.stats.optimal, direct->stats.optimal);
    }
    service.Drain();
    EXPECT_EQ(coalesced, kDuplicates - 1) << "workers=" << workers;
    const auto stats = service.stats();
    EXPECT_EQ(stats.solves, 1u) << "workers=" << workers;
    EXPECT_EQ(stats.coalesced, static_cast<uint64_t>(kDuplicates - 1));
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(kDuplicates));
    ASSERT_NE(service.build_cache(), nullptr);
    EXPECT_EQ(service.build_cache()->stats().misses, 1u)
        << "one QUBO build total, workers=" << workers;
    EXPECT_EQ(pool.tasks_dispatched() - tasks_before, direct_tasks)
        << "the coalesced batch must dispatch exactly a single solve's "
           "work, workers="
        << workers;
  }
}

TEST(ServeTest, ExpiredFollowerDegradesInsteadOfWaitingForLeader) {
  ServeOptions options;
  options.workers = 1;
  OptimizerService service(options);

  // The leader occupies the only worker for on the order of a second.
  auto leader = service.Submit(SlowCoalescible("default", /*shots=*/4000));
  ASSERT_TRUE(leader.ok());
  WaitDequeued(service);

  // An identical request with a 20 ms budget coalesces onto the leader;
  // the follower reaper must answer it (degraded) on its own deadline
  // instead of letting it block until the leader finishes.
  ServeRequest dup = SlowCoalescible("default", /*shots=*/4000);
  dup.deadline_ms = 20.0;
  auto follower = service.Submit(std::move(dup));
  ASSERT_TRUE(follower.ok());
  EXPECT_EQ(service.queued(), 0u) << "a follower never takes a queue slot";

  const ServeResult result = std::move(follower).value().get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.deadline_expired_in_queue);
  EXPECT_FALSE(result.coalesced);
  EXPECT_TRUE(result.report.found_valid);
  EXPECT_EQ(result.report.portfolio.winner, "classical_fallback");

  const ServeResult leader_result = std::move(leader).value().get();
  ASSERT_TRUE(leader_result.status.ok());
  EXPECT_FALSE(leader_result.degraded) << "the leader ran its full budget";
  const auto stats = service.stats();
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.coalesced, 0u) << "a degraded follower is not coalesced";
}

TEST(ServeTest, FollowerReRunsWhenLeaderResultIsNotShareable) {
  ServeOptions options;
  options.workers = 1;
  OptimizerService service(options);

  // A non-coalescible blocker pins the only worker.
  auto blocker = service.Submit(SlowRequest());
  ASSERT_TRUE(blocker.ok());
  WaitDequeued(service);

  // The leader queues behind it with a budget that expires before
  // dequeue, so its answer is the degraded fallback — private to its own
  // deadline, not something to fan out to the deadline-less follower.
  ServeRequest leader_request = QuickRequest("default", 99);
  leader_request.deadline_ms = 1.0;
  auto leader = service.Submit(std::move(leader_request));
  ASSERT_TRUE(leader.ok());
  auto follower = service.Submit(QuickRequest("default", 99));
  ASSERT_TRUE(follower.ok());

  const ServeResult leader_result = std::move(leader).value().get();
  ASSERT_TRUE(leader_result.status.ok());
  EXPECT_TRUE(leader_result.degraded);

  const ServeResult follower_result = std::move(follower).value().get();
  ASSERT_TRUE(follower_result.status.ok());
  EXPECT_FALSE(follower_result.coalesced) << "re-dispatched, not coalesced";
  EXPECT_FALSE(follower_result.degraded) << "the follower had no deadline";
  EXPECT_TRUE(follower_result.report.found_valid);

  EXPECT_TRUE(std::move(blocker).value().get().status.ok());
  service.Drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.solves, 2u) << "blocker + the re-run follower";
}

// ---------------------------------------------------------------------------
// Plan-cache warm-up.

TEST(ServeTest, WarmupRoundTripServesWarmHits) {
  const std::string path = ::testing::TempDir() + "/qjo_warmup_keys.txt";
  std::remove(path.c_str());
  const std::vector<ServeRequest> workload = {QuickRequest("a", 7),
                                              QuickRequest("b", 8)};
  {
    ServeOptions options;
    options.workers = 2;
    options.warmup_file = path;
    OptimizerService service(options);
    for (const auto& request : workload) {
      auto future = service.Submit(request);
      ASSERT_TRUE(future.ok());
      ASSERT_TRUE(std::move(future).value().get().status.ok());
    }
    service.Drain();  // persists the key set
  }
  ASSERT_EQ(OptimizerService::LoadWarmupKeys(path).size(), 2u);

  ServeOptions options;
  options.workers = 2;
  options.warmup_file = path;
  OptimizerService service(options);
  EXPECT_EQ(service.warmup_keys().size(), 2u);
  EXPECT_EQ(service.WarmUp(workload), 2u) << "both templates match keys";
  EXPECT_EQ(service.stats().warmed, 2u);

  for (const auto& request : workload) {
    auto future = service.Submit(request);
    ASSERT_TRUE(future.ok());
    const ServeResult result = std::move(future).value().get();
    ASSERT_TRUE(result.status.ok());
    EXPECT_TRUE(result.cache_hit) << "warmed entries serve without a solve";
  }
  service.Drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.solves, 0u);
  EXPECT_EQ(stats.warm_hits, 2u);
  std::remove(path.c_str());
}

TEST(ServeTest, LoadWarmupKeysRejectsUnknownHeader) {
  const std::string path = ::testing::TempDir() + "/qjo_bad_warmup.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("some-other-format v9\nkey1\n", f);
    std::fclose(f);
  }
  EXPECT_TRUE(OptimizerService::LoadWarmupKeys(path).empty());
  EXPECT_TRUE(OptimizerService::LoadWarmupKeys(path + ".missing").empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qjo

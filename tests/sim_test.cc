#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/qaoa_builder.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "sim/device.h"
#include "sim/qaoa_analytic.h"
#include "sim/qaoa_simulator.h"
#include "sim/sqa.h"
#include "sim/statevector.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

constexpr double kPi = 3.14159265358979323846;

IsingModel RandomIsing(int n, double edge_probability, Rng& rng,
                       bool with_fields = true) {
  IsingModel ising;
  ising.h.assign(n, 0.0);
  if (with_fields) {
    for (int i = 0; i < n; ++i) ising.h[i] = rng.UniformDouble(-1.0, 1.0);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(edge_probability)) {
        ising.couplings.emplace_back(i, j, rng.UniformDouble(-1.0, 1.0));
      }
    }
  }
  ising.offset = rng.UniformDouble(-0.5, 0.5);
  return ising;
}

TEST(StateVectorTest, BellState) {
  auto sv = StateVector::Create(2);
  ASSERT_TRUE(sv.ok());
  sv->Apply(Gate::Single(GateType::kH, 0));
  sv->Apply(Gate::Two(GateType::kCx, 0, 1));
  EXPECT_NEAR(sv->Probability(0b00), 0.5, 1e-12);
  EXPECT_NEAR(sv->Probability(0b11), 0.5, 1e-12);
  EXPECT_NEAR(sv->Probability(0b01), 0.0, 1e-12);
  EXPECT_NEAR(sv->ExpectationZZ(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(sv->ExpectationZ(0), 0.0, 1e-12);
}

TEST(StateVectorTest, GhzState) {
  auto sv = StateVector::Create(4);
  ASSERT_TRUE(sv.ok());
  sv->Apply(Gate::Single(GateType::kH, 0));
  for (int q = 0; q + 1 < 4; ++q) sv->Apply(Gate::Two(GateType::kCx, q, q + 1));
  EXPECT_NEAR(sv->Probability(0b0000), 0.5, 1e-12);
  EXPECT_NEAR(sv->Probability(0b1111), 0.5, 1e-12);
}

TEST(StateVectorTest, SxSquaredIsX) {
  auto sv = StateVector::Create(1);
  ASSERT_TRUE(sv.ok());
  sv->Apply(Gate::Single(GateType::kSx, 0));
  sv->Apply(Gate::Single(GateType::kSx, 0));
  EXPECT_NEAR(sv->Probability(1), 1.0, 1e-12);
}

TEST(StateVectorTest, RzzIsDiagonalPhase) {
  // On |++>, RZZ must not change probabilities but must change relative
  // phases, visible after a Hadamard basis change.
  auto sv = StateVector::Create(2);
  ASSERT_TRUE(sv.ok());
  sv->Apply(Gate::Single(GateType::kH, 0));
  sv->Apply(Gate::Single(GateType::kH, 1));
  sv->Apply(Gate::Two(GateType::kRzz, 0, 1, kPi));
  for (uint64_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(sv->Probability(b), 0.25, 1e-12);
  }
  sv->Apply(Gate::Single(GateType::kH, 0));
  sv->Apply(Gate::Single(GateType::kH, 1));
  // RZZ(pi) on |++> gives (|01>+|10>)-type correlations after H x H.
  EXPECT_NEAR(sv->Probability(0b00), 0.0, 1e-9);
}

TEST(StateVectorTest, MsOnZeroZero) {
  auto sv = StateVector::Create(2);
  ASSERT_TRUE(sv.ok());
  sv->Apply(Gate::Two(GateType::kMs, 0, 1, kPi / 2));
  // XX(pi/2)|00> = (|00> - i|11>)/sqrt(2).
  EXPECT_NEAR(sv->Probability(0b00), 0.5, 1e-12);
  EXPECT_NEAR(sv->Probability(0b11), 0.5, 1e-12);
}

TEST(StateVectorTest, SwapGate) {
  auto sv = StateVector::Create(2);
  ASSERT_TRUE(sv.ok());
  sv->Apply(Gate::Single(GateType::kX, 0));
  sv->Apply(Gate::Two(GateType::kSwap, 0, 1));
  EXPECT_NEAR(sv->Probability(0b10), 1.0, 1e-12);
}

TEST(StateVectorTest, SamplingMatchesDistribution) {
  auto sv = StateVector::Create(2);
  ASSERT_TRUE(sv.ok());
  sv->Apply(Gate::Single(GateType::kRy, 0, 2.0 * std::asin(std::sqrt(0.3))));
  Rng rng(7);
  const auto samples = sv->Sample(20000, rng);
  int ones = 0;
  for (uint64_t s : samples) ones += static_cast<int>(s & 1);
  EXPECT_NEAR(static_cast<double>(ones) / samples.size(), 0.3, 0.02);
}

TEST(StateVectorTest, RejectsBadSizes) {
  EXPECT_FALSE(StateVector::Create(0).ok());
  EXPECT_FALSE(StateVector::Create(29).ok());
}

TEST(QaoaSimulatorTest, CostSpectrumMatchesIsingEnergy) {
  Rng rng(11);
  const IsingModel ising = RandomIsing(8, 0.5, rng);
  auto sim = QaoaSimulator::Create(ising);
  ASSERT_TRUE(sim.ok());
  for (uint64_t x = 0; x < 256; x += 17) {
    std::vector<int> spins(8);
    for (int i = 0; i < 8; ++i) spins[i] = (x >> i) & 1 ? -1 : 1;
    EXPECT_NEAR(sim->cost_spectrum()[x], ising.Energy(spins), 1e-4);
  }
}

TEST(QaoaSimulatorTest, MatchesDenseSimulatorProbabilities) {
  Rng rng(13);
  const IsingModel ising = RandomIsing(6, 0.5, rng);
  QaoaParameters params{{0.35}, {0.8}};

  auto fast = QaoaSimulator::Create(ising);
  ASSERT_TRUE(fast.ok());
  fast->Run(params);

  auto circuit = BuildQaoaCircuit(ising, params);
  ASSERT_TRUE(circuit.ok());
  auto dense = StateVector::Create(6);
  ASSERT_TRUE(dense.ok());
  dense->ApplyCircuit(*circuit);

  for (uint64_t x = 0; x < 64; ++x) {
    EXPECT_NEAR(fast->Probability(x), dense->Probability(x), 1e-5)
        << "x=" << x;
  }
}

TEST(QaoaSimulatorTest, ExpectationMatchesDense) {
  Rng rng(17);
  const IsingModel ising = RandomIsing(7, 0.4, rng);
  QaoaParameters params{{0.2}, {1.1}};
  auto fast = QaoaSimulator::Create(ising);
  ASSERT_TRUE(fast.ok());
  const double fast_expectation = fast->Run(params);

  auto circuit = BuildQaoaCircuit(ising, params);
  ASSERT_TRUE(circuit.ok());
  auto dense = StateVector::Create(7);
  ASSERT_TRUE(dense.ok());
  dense->ApplyCircuit(*circuit);
  double dense_expectation = ising.offset;
  for (int i = 0; i < 7; ++i) {
    dense_expectation += ising.h[i] * dense->ExpectationZ(i);
  }
  for (const auto& [i, j, w] : ising.couplings) {
    dense_expectation += w * dense->ExpectationZZ(i, j);
  }
  EXPECT_NEAR(fast_expectation, dense_expectation, 1e-4);
}

TEST(QaoaSimulatorTest, MatchesDenseSimulatorAtPTwo) {
  Rng rng(14);
  const IsingModel ising = RandomIsing(5, 0.6, rng);
  QaoaParameters params{{0.3, 0.15}, {0.9, 0.45}};
  auto fast = QaoaSimulator::Create(ising);
  ASSERT_TRUE(fast.ok());
  fast->Run(params);
  auto circuit = BuildQaoaCircuit(ising, params);
  ASSERT_TRUE(circuit.ok());
  auto dense = StateVector::Create(5);
  ASSERT_TRUE(dense.ok());
  dense->ApplyCircuit(*circuit);
  for (uint64_t x = 0; x < 32; ++x) {
    EXPECT_NEAR(fast->Probability(x), dense->Probability(x), 1e-5);
  }
}

TEST(QaoaSimulatorTest, MinCostMatchesEnumeration) {
  Rng rng(15);
  const IsingModel ising = RandomIsing(9, 0.5, rng);
  auto sim = QaoaSimulator::Create(ising);
  ASSERT_TRUE(sim.ok());
  double ground = 1e300;
  for (uint64_t x = 0; x < 512; ++x) {
    std::vector<int> spins(9);
    for (int i = 0; i < 9; ++i) spins[i] = (x >> i) & 1 ? -1 : 1;
    ground = std::min(ground, ising.Energy(spins));
  }
  uint64_t argmin = 0;
  EXPECT_NEAR(sim->MinCost(&argmin), ground, 1e-4);
  EXPECT_NEAR(sim->cost_spectrum()[argmin], ground, 1e-4);
}

TEST(QaoaSimulatorTest, PartialFidelityInterpolates) {
  Rng rng(16);
  // Strongly biased Hamiltonian: optimal QAOA mass concentrates.
  IsingModel ising;
  ising.h = {2.0, 2.0, 2.0, 2.0};  // ground state: all spins -1 (bits 1111)
  auto sim = QaoaSimulator::Create(ising);
  ASSERT_TRUE(sim.ok());
  QaoaParameters params{{0.5}, {0.8}};
  sim->Run(params);
  // Interpolation target: the most likely state of the ideal distribution.
  uint64_t mode = 0;
  for (uint64_t x = 1; x < 16; ++x) {
    if (sim->Probability(x) > sim->Probability(mode)) mode = x;
  }
  auto mass_on_mode = [&](double fidelity, uint64_t seed) {
    Rng local(seed);
    const auto samples = sim->Sample(8000, fidelity, local);
    int hits = 0;
    for (uint64_t s : samples) {
      if (s == mode) ++hits;
    }
    return static_cast<double>(hits) / samples.size();
  };
  const double ideal = mass_on_mode(1.0, 1);
  const double half = mass_on_mode(0.5, 2);
  const double none = mass_on_mode(0.0, 3);
  EXPECT_NEAR(ideal, sim->Probability(mode), 0.02);
  EXPECT_NEAR(none, 1.0 / 16, 0.02);
  EXPECT_NEAR(half, 0.5 * ideal + 0.5 / 16, 0.03);
  EXPECT_GT(ideal, none);
}

TEST(QaoaSimulatorTest, FullDepolarisationIsUniform) {
  Rng rng(19);
  const IsingModel ising = RandomIsing(4, 0.6, rng);
  auto sim = QaoaSimulator::Create(ising);
  ASSERT_TRUE(sim.ok());
  sim->Run(QaoaParameters{{0.3}, {0.4}});
  const auto samples = sim->Sample(16000, 0.0, rng);
  std::map<uint64_t, int> histogram;
  for (uint64_t s : samples) ++histogram[s];
  for (const auto& [basis, count] : histogram) {
    (void)basis;
    EXPECT_NEAR(static_cast<double>(count) / samples.size(), 1.0 / 16, 0.02);
  }
}

/// The central validation: the closed-form p=1 expectations agree with the
/// dense simulator on random Ising instances with fields.
struct AnalyticCase {
  int n;
  double edge_probability;
  bool with_fields;
  uint64_t seed;
};

class AnalyticQaoaTest : public ::testing::TestWithParam<AnalyticCase> {};

TEST_P(AnalyticQaoaTest, MatchesDenseSimulator) {
  const AnalyticCase& c = GetParam();
  Rng rng(c.seed);
  const IsingModel ising =
      RandomIsing(c.n, c.edge_probability, rng, c.with_fields);
  for (const auto& [gamma, beta] :
       std::vector<std::pair<double, double>>{
           {0.3, 0.7}, {0.9, 0.2}, {-0.4, 1.3}, {0.05, 2.7}}) {
    QaoaParameters params{{gamma}, {beta}};
    auto circuit = BuildQaoaCircuit(ising, params);
    ASSERT_TRUE(circuit.ok());
    auto dense = StateVector::Create(c.n);
    ASSERT_TRUE(dense.ok());
    dense->ApplyCircuit(*circuit);

    for (int i = 0; i < c.n; ++i) {
      EXPECT_NEAR(AnalyticExpectationZ(ising, i, gamma, beta),
                  dense->ExpectationZ(i), 1e-9)
          << "Z_" << i << " gamma=" << gamma << " beta=" << beta;
    }
    for (int i = 0; i < c.n; ++i) {
      for (int j = i + 1; j < c.n; ++j) {
        EXPECT_NEAR(AnalyticExpectationZZ(ising, i, j, gamma, beta),
                    dense->ExpectationZZ(i, j), 1e-9)
            << "Z_" << i << "Z_" << j << " gamma=" << gamma
            << " beta=" << beta;
      }
    }
    double dense_expectation = ising.offset;
    for (int i = 0; i < c.n; ++i) {
      dense_expectation += ising.h[i] * dense->ExpectationZ(i);
    }
    for (const auto& [i, j, w] : ising.couplings) {
      dense_expectation += w * dense->ExpectationZZ(i, j);
    }
    EXPECT_NEAR(AnalyticQaoaExpectation(ising, gamma, beta),
                dense_expectation, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnalyticQaoaTest,
    ::testing::Values(AnalyticCase{2, 1.0, true, 21},
                      AnalyticCase{3, 1.0, true, 22},
                      AnalyticCase{4, 0.5, true, 23},
                      AnalyticCase{5, 0.6, true, 24},
                      AnalyticCase{6, 0.4, true, 25},
                      AnalyticCase{6, 0.4, false, 26},
                      AnalyticCase{7, 0.3, true, 27}));

TEST(QaoaOptimizerTest, ImprovesOverRandomAngles) {
  Rng rng(31);
  const IsingModel ising = RandomIsing(8, 0.4, rng);
  const QaoaAngles angles = OptimizeQaoaAngles(ising, 30, rng);
  // Compare against the average over random angles.
  double random_mean = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    random_mean += AnalyticQaoaExpectation(
        ising, rng.UniformDouble(0.0, 2.0), rng.UniformDouble(0.0, kPi));
  }
  random_mean /= trials;
  EXPECT_LT(angles.expectation, random_mean);
  EXPECT_NEAR(angles.expectation,
              AnalyticQaoaExpectation(ising, angles.gamma, angles.beta),
              1e-9);
}

TEST(DeviceTest, PaperCalibrationValues) {
  const DeviceProperties auckland = IbmAucklandProperties();
  EXPECT_DOUBLE_EQ(auckland.t1_us, 151.13);
  EXPECT_DOUBLE_EQ(auckland.t2_us, 138.72);
  // d = floor(min(T1,T2)/g_avg) = floor(138720/472.51) = 293.
  EXPECT_EQ(auckland.MaxFeasibleDepth(), 293);
  const DeviceProperties washington = IbmWashingtonProperties();
  // floor(92810/550.41) = 168: larger machine, *smaller* feasible depth.
  EXPECT_EQ(washington.MaxFeasibleDepth(), 168);
  EXPECT_LT(washington.MaxFeasibleDepth(), auckland.MaxFeasibleDepth());
}

TEST(DeviceTest, FidelityDecreasesWithDepth) {
  const DeviceProperties device = IbmAucklandProperties();
  QuantumCircuit shallow(2);
  shallow.H(0);
  shallow.Cx(0, 1);
  QuantumCircuit deep(2);
  for (int i = 0; i < 200; ++i) deep.Cx(0, 1);
  const double f_shallow = EstimateCircuitFidelity(shallow, device);
  const double f_deep = EstimateCircuitFidelity(deep, device);
  EXPECT_GT(f_shallow, f_deep);
  EXPECT_GT(f_shallow, 0.95);
  EXPECT_LT(f_deep, 0.5);
  EXPECT_GE(f_deep, 0.0);
}

TEST(DeviceTest, QpuTimingsShapeMatchesPaper) {
  // t_qpu must be orders of magnitude above t_s, and problem size must
  // barely matter (Sec. 4.2.1).
  const DeviceProperties device = IbmAucklandProperties();
  QuantumCircuit small(18);
  for (int i = 0; i < 50; ++i) small.Cx(i % 18, (i + 1) % 18);
  QuantumCircuit large(27);
  for (int i = 0; i < 120; ++i) large.Cx(i % 27, (i + 1) % 27);
  const QpuTimings t_small = EstimateQpuTimings(small, 1024, device);
  const QpuTimings t_large = EstimateQpuTimings(large, 1024, device);
  EXPECT_GT(t_small.total_s * 1000.0, 20.0 * t_small.sampling_ms);
  EXPECT_LT(t_large.total_s / t_small.total_s, 1.2);
  EXPECT_GT(t_large.sampling_ms, t_small.sampling_ms);
}

TEST(SqaTest, SolvesFerromagneticChain) {
  // Ground states of a ferromagnetic chain are all-up / all-down.
  IsingModel ising;
  const int n = 16;
  ising.h.assign(n, 0.0);
  for (int i = 0; i + 1 < n; ++i) ising.couplings.emplace_back(i, i + 1, -1.0);
  SqaOptions options;
  options.num_reads = 20;
  options.annealing_time_us = 20.0;
  options.sweeps_per_us = 10.0;
  Rng rng(37);
  auto samples = RunSqa(ising, options, rng);
  ASSERT_TRUE(samples.ok());
  int ground_hits = 0;
  for (const SqaSample& s : *samples) {
    EXPECT_NEAR(s.energy, ising.Energy(s.spins), 1e-9);
    if (s.energy <= -(n - 1) + 1e-9) ++ground_hits;
  }
  EXPECT_GT(ground_hits, 10);
}

TEST(SqaTest, SolvesSmallFrustratedProblem) {
  Rng rng(41);
  const IsingModel ising = RandomIsing(10, 0.5, rng);
  // Exact ground state by enumeration.
  double ground = 1e300;
  for (uint64_t x = 0; x < 1024; ++x) {
    std::vector<int> spins(10);
    for (int i = 0; i < 10; ++i) spins[i] = (x >> i) & 1 ? -1 : 1;
    ground = std::min(ground, ising.Energy(spins));
  }
  SqaOptions options;
  options.num_reads = 30;
  options.annealing_time_us = 50.0;
  options.sweeps_per_us = 10.0;
  auto samples = RunSqa(ising, options, rng);
  ASSERT_TRUE(samples.ok());
  double best = 1e300;
  for (const SqaSample& s : *samples) best = std::min(best, s.energy);
  EXPECT_NEAR(best, ground, 1e-6);
}

TEST(SqaTest, IceNoiseDegradesSolutionQuality) {
  Rng rng(43);
  const IsingModel ising = RandomIsing(14, 0.4, rng);
  SqaOptions clean;
  clean.num_reads = 40;
  clean.annealing_time_us = 30.0;
  SqaOptions noisy = clean;
  noisy.ice_sigma = 0.5;  // heavy control noise
  Rng rng_clean(47), rng_noisy(47);
  auto clean_samples = RunSqa(ising, clean, rng_clean);
  auto noisy_samples = RunSqa(ising, noisy, rng_noisy);
  ASSERT_TRUE(clean_samples.ok());
  ASSERT_TRUE(noisy_samples.ok());
  double clean_mean = 0.0, noisy_mean = 0.0;
  for (const auto& s : *clean_samples) clean_mean += s.energy;
  for (const auto& s : *noisy_samples) noisy_mean += s.energy;
  EXPECT_LT(clean_mean, noisy_mean);
}

TEST(SqaTest, DeterministicAcrossParallelism) {
  Rng make_rng(59);
  const IsingModel ising = RandomIsing(12, 0.4, make_rng);
  SqaOptions options;
  options.num_reads = 12;
  options.annealing_time_us = 10.0;
  options.sweeps_per_us = 5.0;
  options.trotter_slices = 6;
  options.ice_sigma = 0.02;  // per-read noise draws must fork too
  std::vector<std::vector<SqaSample>> runs;
  for (int parallelism : {1, 2, 8}) {
    options.control.parallelism = parallelism;
    Rng rng(61);
    auto samples = RunSqa(ising, options, rng);
    ASSERT_TRUE(samples.ok());
    runs.push_back(*std::move(samples));
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].energy, runs[0][i].energy)
          << "run " << run << " read " << i;
      EXPECT_EQ(runs[run][i].spins, runs[0][i].spins);
    }
  }
}

TEST(SqaTest, RejectsBadOptions) {
  IsingModel empty;
  SqaOptions options;
  Rng rng(53);
  EXPECT_FALSE(RunSqa(empty, options, rng).ok());
  IsingModel one;
  one.h = {1.0};
  options.num_reads = 0;
  EXPECT_FALSE(RunSqa(one, options, rng).ok());
  options.num_reads = 1;
  options.trotter_slices = 1;
  EXPECT_FALSE(RunSqa(one, options, rng).ok());
}

/// Random Ising model whose coefficients are multiples of 1/64: all field
/// sums are exact, so the incremental per-slice local fields must equal
/// the reference O(degree) scans bit for bit (see the dyadic QUBO kernel
/// tests for the same argument).
IsingModel DyadicRandomIsing(int n, double edge_probability, Rng& rng) {
  IsingModel ising;
  const auto dyadic = [&rng] {
    return (static_cast<double>(rng.UniformInt(129)) - 64.0) / 64.0;
  };
  ising.h.assign(n, 0.0);
  for (int i = 0; i < n; ++i) ising.h[i] = dyadic();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(edge_probability)) {
        ising.couplings.emplace_back(i, j, dyadic());
      }
    }
  }
  return ising;
}

TEST(SqaTest, KernelsBitIdenticalOnDyadicProblems) {
  Rng make_rng(67);
  const IsingModel ising = DyadicRandomIsing(20, 0.4, make_rng);
  SqaOptions options;
  options.num_reads = 6;
  options.annealing_time_us = 10.0;
  options.sweeps_per_us = 4.0;
  options.trotter_slices = 8;
  options.ice_sigma = 0.0;  // noise would perturb the dyadic coefficients
  for (int parallelism : {1, 4}) {
    options.control.parallelism = parallelism;
    options.kernel = SolverKernel::kIncremental;
    Rng rng_inc(71);
    auto incremental = RunSqa(ising, options, rng_inc);
    options.kernel = SolverKernel::kReference;
    Rng rng_ref(71);
    auto reference = RunSqa(ising, options, rng_ref);
    ASSERT_TRUE(incremental.ok());
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(incremental->size(), reference->size());
    for (size_t i = 0; i < incremental->size(); ++i) {
      EXPECT_EQ((*incremental)[i].energy, (*reference)[i].energy)
          << "parallelism " << parallelism << " read " << i;
      EXPECT_EQ((*incremental)[i].spins, (*reference)[i].spins);
    }
  }
}

TEST(SqaTest, BatchedKernelsBitIdenticalToScalarReads) {
  // The batched SoA kernel mirrors the incremental kernel's per-replica
  // operand order exactly (exact +-2 * J products, same per-lane draw
  // sequence including the ICE Gaussians), so bit-identity holds on
  // continuous coefficients *with* noise, for full groups, partial tail
  // lanes, and a single lane, at every parallelism.
  Rng make_rng(67);
  const IsingModel ising = RandomIsing(15, 0.4, make_rng);
  SqaOptions options;
  options.annealing_time_us = 4.0;
  options.sweeps_per_us = 4.0;
  options.trotter_slices = 5;
  options.ice_sigma = 0.02;
  for (int num_reads : {1, 4, 17}) {
    options.num_reads = num_reads;
    for (int parallelism : {1, 4, 8}) {
      options.control.parallelism = parallelism;
      options.kernel = SolverKernel::kIncremental;
      Rng rng_inc(71);
      auto scalar = RunSqa(ising, options, rng_inc);
      options.kernel = SolverKernel::kBatched;
      Rng rng_bat(71);
      auto batched = RunSqa(ising, options, rng_bat);
      ASSERT_TRUE(scalar.ok());
      ASSERT_TRUE(batched.ok());
      ASSERT_EQ(scalar->size(), batched->size());
      for (size_t i = 0; i < scalar->size(); ++i) {
        EXPECT_EQ((*scalar)[i].energy, (*batched)[i].energy)
            << "reads " << num_reads << " parallelism " << parallelism
            << " read " << i;
        EXPECT_EQ((*scalar)[i].spins, (*batched)[i].spins);
      }
    }
  }
}

TEST(StateVectorTest, DeterministicAcrossParallelism) {
  // 15 qubits = 32768 amplitudes = two blocks: the blocked kernels and
  // reductions must produce the same bits with and without a pool.
  const int n = 15;
  QuantumCircuit circuit(n);
  for (int q = 0; q < n; ++q) circuit.H(q);
  for (int q = 0; q + 1 < n; ++q) circuit.Rzz(q, q + 1, 0.3 + 0.01 * q);
  for (int q = 0; q < n; ++q) circuit.Rx(q, 0.7 - 0.02 * q);
  circuit.Cx(0, n - 1);
  circuit.Swap(2, 9);
  circuit.Ms(3, 11, 0.4);

  StateVector serial = *StateVector::Create(n);
  serial.ApplyCircuit(circuit);

  ThreadPool pool(4);
  StateVector parallel = *StateVector::Create(n);
  parallel.set_pool(&pool);
  parallel.ApplyCircuit(circuit);

  ASSERT_EQ(serial.amplitudes().size(), parallel.amplitudes().size());
  for (size_t i = 0; i < serial.amplitudes().size(); ++i) {
    ASSERT_EQ(serial.amplitudes()[i], parallel.amplitudes()[i]) << "amp " << i;
  }
  EXPECT_EQ(serial.ExpectationZ(4), parallel.ExpectationZ(4));
  EXPECT_EQ(serial.ExpectationZZ(1, 13), parallel.ExpectationZZ(1, 13));
  EXPECT_EQ(serial.Probabilities(), parallel.Probabilities());
}

TEST(QaoaSimulatorTest, DeterministicAcrossParallelism) {
  Rng make_rng(73);
  const IsingModel ising = RandomIsing(16, 0.3, make_rng);
  QaoaParameters params;
  params.gammas = {0.4, 0.15};
  params.betas = {0.9, 0.35};

  auto serial = QaoaSimulator::Create(ising);
  ASSERT_TRUE(serial.ok());
  const double serial_expectation = serial->Run(params);

  ThreadPool pool(4);
  auto parallel = QaoaSimulator::Create(ising);
  ASSERT_TRUE(parallel.ok());
  parallel->set_pool(&pool);
  const double parallel_expectation = parallel->Run(params);

  EXPECT_EQ(serial_expectation, parallel_expectation);
  const uint64_t size = uint64_t{1} << 16;
  for (uint64_t basis = 0; basis < size; basis += 257) {
    ASSERT_EQ(serial->Probability(basis), parallel->Probability(basis))
        << "basis " << basis;
  }
}


// --- Fused fast path: kernel parity and batched evaluation. ---

TEST(QaoaSimulatorTest, FusedKernelsBitIdenticalToReference) {
  // 16 qubits exercises both halves of the fused layer (qubits 0..13 in
  // the in-block sweep, 14..15 in the tiled high-qubit sweep); 10 qubits
  // stays entirely in-block. Amplitudes must compare equal with
  // operator== at every depth (IEEE zero signs may differ, values not).
  for (int n : {10, 16}) {
    for (int p : {1, 2, 3}) {
      Rng make_rng(1000 + 10 * n + p);
      const IsingModel ising = RandomIsing(n, 0.4, make_rng);
      QaoaParameters params;
      for (int rep = 0; rep < p; ++rep) {
        params.gammas.push_back(0.3 + 0.17 * rep);
        params.betas.push_back(0.8 - 0.21 * rep);
      }

      auto fused = QaoaSimulator::Create(ising);
      auto reference = QaoaSimulator::Create(ising);
      ASSERT_TRUE(fused.ok());
      ASSERT_TRUE(reference.ok());
      const double ef = fused->Run(params, SimKernel::kFused);
      const double er = reference->Run(params, SimKernel::kReference);
      EXPECT_EQ(ef, er) << "n=" << n << " p=" << p;
      ASSERT_EQ(fused->amplitudes().size(), reference->amplitudes().size());
      for (size_t i = 0; i < fused->amplitudes().size(); ++i) {
        ASSERT_EQ(fused->amplitudes()[i], reference->amplitudes()[i])
            << "n=" << n << " p=" << p << " amp " << i;
      }
    }
  }
}

TEST(QaoaSimulatorTest, MixerLayerKernelsBitIdentical) {
  Rng make_rng(421);
  const IsingModel ising = RandomIsing(16, 0.3, make_rng);
  QaoaParameters params{{0.37}, {0.52}};

  auto fused = QaoaSimulator::Create(ising);
  auto reference = QaoaSimulator::Create(ising);
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(reference.ok());
  // Identical starting states (kernel parity is covered above).
  fused->Run(params, SimKernel::kFused);
  reference->Run(params, SimKernel::kFused);
  fused->ApplyMixerLayer(0.23, SimKernel::kFused);
  reference->ApplyMixerLayer(0.23, SimKernel::kReference);
  for (size_t i = 0; i < fused->amplitudes().size(); ++i) {
    ASSERT_EQ(fused->amplitudes()[i], reference->amplitudes()[i])
        << "amp " << i;
  }
}

TEST(QaoaSimulatorTest, EvaluateBatchMatchesRun) {
  Rng make_rng(97);
  const IsingModel ising = RandomIsing(12, 0.4, make_rng);
  auto sim = QaoaSimulator::Create(ising);
  ASSERT_TRUE(sim.ok());

  // Gamma-major grid, the phase-table-friendly order.
  std::vector<QaoaParameters> batch;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      QaoaParameters params;
      params.gammas = {0.2 + 0.15 * i, 0.45};
      params.betas = {0.7 - 0.1 * j, 0.3};
      batch.push_back(std::move(params));
    }
  }
  for (SimKernel kernel : {SimKernel::kFused, SimKernel::kReference}) {
    const std::vector<double> energies = sim->EvaluateBatch(batch, kernel);
    ASSERT_EQ(energies.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(energies[i], sim->Run(batch[i], kernel)) << "entry " << i;
    }
  }
}

TEST(QaoaSimulatorTest, EvaluateBatchDeterministicAcrossParallelism) {
  Rng make_rng(131);
  const IsingModel ising = RandomIsing(14, 0.35, make_rng);
  std::vector<QaoaParameters> batch;
  for (int i = 0; i < 10; ++i) {
    QaoaParameters params;
    params.gammas = {0.1 + 0.08 * i};
    params.betas = {0.9 - 0.06 * i};
    batch.push_back(std::move(params));
  }

  auto serial = QaoaSimulator::Create(ising);
  ASSERT_TRUE(serial.ok());
  const std::vector<double> baseline = serial->EvaluateBatch(batch);
  ASSERT_EQ(baseline.size(), batch.size());

  for (int parallelism : {2, 8}) {
    ThreadPool pool(parallelism);
    auto sim = QaoaSimulator::Create(ising);
    ASSERT_TRUE(sim.ok());
    sim->set_pool(&pool);
    // Twice on the same simulator: the second call reuses the scratch
    // statevectors and must still reproduce the serial bits.
    for (int round = 0; round < 2; ++round) {
      const std::vector<double> energies = sim->EvaluateBatch(batch);
      for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(energies[i], baseline[i])
            << "parallelism " << parallelism << " round " << round
            << " entry " << i;
      }
    }
  }
}

TEST(QaoaSimulatorTest, EvaluateBatchLeavesLoadedStateUntouched) {
  Rng make_rng(61);
  const IsingModel ising = RandomIsing(10, 0.5, make_rng);
  auto sim = QaoaSimulator::Create(ising);
  ASSERT_TRUE(sim.ok());
  QaoaParameters params{{0.4}, {0.6}};
  sim->Run(params);
  const std::vector<std::complex<float>> before = sim->amplitudes();

  std::vector<QaoaParameters> batch(3, QaoaParameters{{0.9}, {0.1}});
  sim->EvaluateBatch(batch);
  EXPECT_EQ(before, sim->amplitudes());
}

TEST(QaoaSimulatorTest, MinCostArgminMatchesLinearScan) {
  // The O(1) argmin is maintained by the Gray-code spectrum walk, which
  // does not visit basis states in ascending order; the tie-break must
  // still pick the smallest index, as the linear scan it replaced did.
  for (uint64_t seed : {15u, 44u, 91u}) {
    Rng rng(seed);
    const IsingModel ising = RandomIsing(9, 0.5, rng);
    auto sim = QaoaSimulator::Create(ising);
    ASSERT_TRUE(sim.ok());
    const std::vector<float>& spectrum = sim->cost_spectrum();
    uint64_t expected = 0;
    for (uint64_t x = 1; x < spectrum.size(); ++x) {
      if (spectrum[x] < spectrum[expected]) expected = x;
    }
    uint64_t argmin = ~uint64_t{0};
    EXPECT_EQ(sim->MinCost(&argmin),
              static_cast<double>(spectrum[expected]));
    EXPECT_EQ(argmin, expected);
  }
}

TEST(QaoaSimulatorTest, MinCostBreaksTiesTowardsSmallestBasisState) {
  // Field-free, coupling-free model: every basis state has the same
  // cost, so the argmin must be 0 by the ascending tie-break.
  IsingModel ising;
  ising.h.assign(6, 0.0);
  ising.offset = -2.5;
  auto sim = QaoaSimulator::Create(ising);
  ASSERT_TRUE(sim.ok());
  uint64_t argmin = ~uint64_t{0};
  EXPECT_EQ(sim->MinCost(&argmin), -2.5);
  EXPECT_EQ(argmin, 0u);
}

TEST(StateVectorTest, FusedCircuitKernelsBitIdentical) {
  // Random circuit over every gate type, including single-qubit gates on
  // qubit 14 (outside the fusable block) and interleaved two-qubit
  // gates: the fused pass must reproduce the reference bits exactly.
  const int n = 15;
  Rng rng(777);
  QuantumCircuit circuit(n);
  for (int q = 0; q < n; ++q) circuit.H(q);
  for (int step = 0; step < 60; ++step) {
    const int q = static_cast<int>(rng.UniformInt(n));
    int r = static_cast<int>(rng.UniformInt(n - 1));
    if (r >= q) ++r;
    switch (rng.UniformInt(9)) {
      case 0: circuit.H(q); break;
      case 1: circuit.X(q); break;
      case 2: circuit.Sx(q); break;
      case 3: circuit.Rx(q, rng.UniformDouble(-1.5, 1.5)); break;
      case 4: circuit.Ry(q, rng.UniformDouble(-1.5, 1.5)); break;
      case 5: circuit.Rz(q, rng.UniformDouble(-1.5, 1.5)); break;
      case 6: circuit.Cx(q, r); break;
      case 7: circuit.Rzz(q, r, rng.UniformDouble(-1.5, 1.5)); break;
      default: circuit.Cz(q, r); break;
    }
  }
  circuit.Swap(2, 9);
  circuit.Ms(3, 11, 0.4);

  StateVector fused = *StateVector::Create(n);
  StateVector reference = *StateVector::Create(n);
  fused.ApplyCircuit(circuit, SimKernel::kFused);
  reference.ApplyCircuit(circuit, SimKernel::kReference);
  for (size_t i = 0; i < fused.amplitudes().size(); ++i) {
    ASSERT_EQ(fused.amplitudes()[i], reference.amplitudes()[i]) << "amp " << i;
  }
}

// --- Cooperative cancellation (the portfolio stop token). ---

TEST(SqaTest, StopTokenCancelsLongRun) {
  Rng make_rng(157);
  const IsingModel ising = RandomIsing(48, 0.5, make_rng);
  SqaOptions options;
  options.num_reads = 2;
  options.annealing_time_us = 1e7;  // ~1e7 sweeps: hours if uncancelled
  std::atomic<bool> stop{false};
  options.control.stop = &stop;
  std::thread canceller([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true, std::memory_order_relaxed);
  });
  Rng rng(53);
  const auto samples = RunSqa(ising, options, rng);
  canceller.join();
  ASSERT_TRUE(samples.ok());
  // Cancelled reads still report their best Trotter slice with a
  // consistent energy.
  ASSERT_EQ(samples->size(), 2u);
  for (const auto& sample : *samples) {
    ASSERT_EQ(sample.spins.size(), 48u);
    EXPECT_DOUBLE_EQ(sample.energy, ising.Energy(sample.spins));
  }
}

TEST(SqaTest, UnsetStopTokenMatchesNoToken) {
  Rng make_rng(163);
  const IsingModel ising = RandomIsing(20, 0.5, make_rng);
  SqaOptions options;
  options.num_reads = 4;
  options.annealing_time_us = 20.0;
  Rng rng_plain(59);
  const auto plain = RunSqa(ising, options, rng_plain);
  ASSERT_TRUE(plain.ok());
  std::atomic<bool> stop{false};
  options.control.stop = &stop;
  Rng rng_token(59);
  const auto with_token = RunSqa(ising, options, rng_token);
  ASSERT_TRUE(with_token.ok());
  ASSERT_EQ(plain->size(), with_token->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_EQ((*plain)[i].energy, (*with_token)[i].energy);
    EXPECT_EQ((*plain)[i].spins, (*with_token)[i].spins);
  }
}

}  // namespace
}  // namespace qjo

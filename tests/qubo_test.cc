#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "jo/query.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "qubo/qubo_csr.h"
#include "qubo/solvers.h"
#include "util/random.h"

namespace qjo {
namespace {

Qubo RandomQubo(int n, double edge_probability, Rng& rng) {
  Qubo q(n);
  for (int i = 0; i < n; ++i) {
    q.AddLinear(i, rng.UniformDouble(-2.0, 2.0));
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(edge_probability)) {
        q.AddQuadratic(i, j, rng.UniformDouble(-2.0, 2.0));
      }
    }
  }
  q.AddOffset(rng.UniformDouble(-1.0, 1.0));
  return q;
}

std::vector<int> BitsOf(uint64_t x, int n) {
  std::vector<int> bits(n);
  for (int i = 0; i < n; ++i) bits[i] = static_cast<int>((x >> i) & 1);
  return bits;
}

TEST(QuboTest, EnergyEvaluation) {
  Qubo q(3);
  q.AddLinear(0, 1.0);
  q.AddLinear(2, -2.0);
  q.AddQuadratic(0, 1, 3.0);
  q.AddOffset(0.5);
  EXPECT_DOUBLE_EQ(q.Energy({0, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(q.Energy({1, 0, 0}), 1.5);
  EXPECT_DOUBLE_EQ(q.Energy({1, 1, 0}), 4.5);
  EXPECT_DOUBLE_EQ(q.Energy({1, 1, 1}), 2.5);
}

TEST(QuboTest, QuadraticAccumulatesSymmetrically) {
  Qubo q(2);
  q.AddQuadratic(0, 1, 1.5);
  q.AddQuadratic(1, 0, 0.5);
  EXPECT_DOUBLE_EQ(q.quadratic(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(q.quadratic(1, 0), 2.0);
  EXPECT_EQ(q.num_quadratic_terms(), 1);
  q.AddQuadratic(0, 1, -2.0);
  EXPECT_EQ(q.num_quadratic_terms(), 0);  // cancelled out
}

TEST(QuboTest, EdgesAndAdjacency) {
  Qubo q(4);
  q.AddQuadratic(2, 0, 1.0);
  q.AddQuadratic(1, 3, 1.0);
  const auto edges = q.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(0, 2));
  EXPECT_EQ(edges[1], std::make_pair(1, 3));
  const auto adjacency = q.AdjacencyLists();
  EXPECT_EQ(adjacency[0], std::vector<int>{2});
  EXPECT_EQ(adjacency[3], std::vector<int>{1});
}

TEST(IsingTest, QuboIsingEnergiesAgreeOnAllStates) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 6;
    const Qubo qubo = RandomQubo(n, 0.5, rng);
    const IsingModel ising = QuboToIsing(qubo);
    for (uint64_t x = 0; x < (uint64_t{1} << n); ++x) {
      const std::vector<int> bits = BitsOf(x, n);
      const std::vector<int> spins = BitsToSpins(bits);
      EXPECT_NEAR(qubo.Energy(bits), ising.Energy(spins), 1e-9);
    }
  }
}

TEST(IsingTest, SpinBitRoundTrip) {
  const std::vector<int> bits = {0, 1, 1, 0};
  EXPECT_EQ(SpinsToBits(BitsToSpins(bits)), bits);
}

TEST(BruteForceTest, FindsExactMinimum) {
  Rng rng(7);
  const Qubo qubo = RandomQubo(10, 0.4, rng);
  auto solution = SolveQuboBruteForce(qubo);
  ASSERT_TRUE(solution.ok());
  // Exhaustive reference.
  double best = 1e300;
  for (uint64_t x = 0; x < 1024; ++x) {
    best = std::min(best, qubo.Energy(BitsOf(x, 10)));
  }
  EXPECT_NEAR(solution->energy, best, 1e-9);
  EXPECT_NEAR(qubo.Energy(solution->assignment), solution->energy, 1e-9);
}

TEST(BruteForceTest, RejectsOversizedProblems) {
  Qubo q(30);
  q.AddLinear(0, 1.0);
  EXPECT_FALSE(SolveQuboBruteForce(q, 28).ok());
}

TEST(BruteForceTest, RejectsSixtyFourVariablesEvenWithRaisedLimit) {
  // The Gray-code walk enumerates 2^n states through a uint64_t;
  // `uint64_t{1} << 64` is UB, so 64 variables must be rejected no matter
  // how high the caller raises max_variables.
  Qubo q(64);
  q.AddLinear(0, 1.0);
  const auto at_limit = SolveQuboBruteForce(q, 64);
  ASSERT_FALSE(at_limit.ok());
  EXPECT_EQ(at_limit.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(SolveQuboBruteForce(q, 100).ok());
}

TEST(SimulatedAnnealingTest, SolvesSmallProblems) {
  Rng rng(11);
  for (int trial = 0; trial < 3; ++trial) {
    const Qubo qubo = RandomQubo(12, 0.4, rng);
    auto exact = SolveQuboBruteForce(qubo);
    ASSERT_TRUE(exact.ok());
    SaOptions options;
    options.num_reads = 20;
    options.sweeps_per_read = 500;
    const auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
    ASSERT_FALSE(reads.empty());
    EXPECT_NEAR(BestSolution(reads).energy, exact->energy, 1e-6);
    // Reads are sorted best-first.
    for (size_t i = 1; i < reads.size(); ++i) {
      EXPECT_LE(reads[i - 1].energy, reads[i].energy);
    }
  }
}

/// Builds the paper's 3-relation instance and converts it end to end.
struct PipelineFixture {
  Query query;
  JoMilpModel milp;
  BilpModel bilp;
  QuboEncoding encoding;

  static PipelineFixture Make(int num_predicates, double omega = 1.0) {
    PipelineFixture f;
    f.query.AddRelation("R0", 10);
    f.query.AddRelation("R1", 10);
    f.query.AddRelation("R2", 10);
    const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {0, 2}};
    for (int p = 0; p < num_predicates; ++p) {
      EXPECT_TRUE(
          f.query.AddPredicate(edges[p].first, edges[p].second, 0.1).ok());
    }
    JoMilpOptions options;
    options.thresholds = {10.0};
    options.omega = omega;
    auto milp = EncodeJoAsMilp(f.query, options);
    EXPECT_TRUE(milp.ok());
    f.milp = std::move(milp).value();
    auto bilp = LowerToBilp(f.milp.model(), omega);
    EXPECT_TRUE(bilp.ok());
    f.bilp = std::move(bilp).value();
    QuboConversionOptions qopts;
    qopts.omega = omega;
    auto encoding = ConvertBilpToQubo(f.bilp, qopts);
    EXPECT_TRUE(encoding.ok());
    f.encoding = std::move(encoding).value();
    return f;
  }
};

TEST(BilpToQuboTest, PenaltyWeightRule) {
  PipelineFixture f = PipelineFixture::Make(1);
  // Objective: theta_0 = 10 on the single cto variable; A = C/w^2 + eps.
  EXPECT_DOUBLE_EQ(f.encoding.penalty_weight, 10.0 + 1.0);
  EXPECT_EQ(f.encoding.num_problem_variables, f.milp.model().num_variables());
}

TEST(BilpToQuboTest, FeasibleAssignmentsSitAtPenaltyFloor) {
  PipelineFixture f = PipelineFixture::Make(0);
  const int n = f.encoding.qubo.num_variables();
  ASSERT_LE(n, 20);
  // For every assignment: energy = A * violation + B * objective.
  Rng rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    const uint64_t x = rng.Next() & ((uint64_t{1} << n) - 1);
    const std::vector<int> bits = BitsOf(x, n);
    const double expected = f.encoding.penalty_weight *
                                f.bilp.ConstraintViolation(bits) +
                            f.bilp.EvaluateObjective(bits);
    EXPECT_NEAR(f.encoding.qubo.Energy(bits), expected, 1e-6);
  }
}

TEST(BilpToQuboTest, MinimumIsFeasibleAndOptimal) {
  for (int predicates = 0; predicates <= 1; ++predicates) {
    PipelineFixture f = PipelineFixture::Make(predicates);
    auto ground = SolveQuboBruteForce(f.encoding.qubo);
    ASSERT_TRUE(ground.ok());
    EXPECT_TRUE(f.bilp.IsFeasible(ground->assignment))
        << "predicates=" << predicates;
    // Energy at the minimum equals the BILP objective (H_A term is 0).
    EXPECT_NEAR(ground->energy, f.bilp.EvaluateObjective(ground->assignment),
                1e-6);
  }
}

TEST(BilpToQuboTest, PenaltyWeightOverrideAblation) {
  // With a tiny penalty weight, cheating becomes energetically attractive:
  // the ground state may violate constraints. This is the ablation that
  // motivates the paper's A = C/w^2 + eps rule.
  PipelineFixture f = PipelineFixture::Make(0);
  QuboConversionOptions weak;
  weak.penalty_weight_override = 0.01;
  auto encoding = ConvertBilpToQubo(f.bilp, weak);
  ASSERT_TRUE(encoding.ok());
  auto ground = SolveQuboBruteForce(encoding->qubo);
  ASSERT_TRUE(ground.ok());
  // The paper-rule ground state stays feasible (checked above); the weak
  // one is strictly lower in "objective - savings" terms and infeasible
  // here because the all-zeros state dodges every leaf constraint.
  EXPECT_FALSE(f.bilp.IsFeasible(ground->assignment));
}

TEST(BilpToQuboTest, CoefficientRoundingKeepsExactFeasibility) {
  // With omega = 0.1 and integer-log inputs, rounding must not break the
  // achievability of zero penalty.
  PipelineFixture f = PipelineFixture::Make(1, 0.1);
  auto ground = SolveQuboBruteForce(f.encoding.qubo);
  ASSERT_TRUE(ground.ok());
  EXPECT_NEAR(f.encoding.qubo.Energy(ground->assignment),
              f.bilp.EvaluateObjective(ground->assignment), 1e-6);
}

TEST(TabuSearchTest, SolvesSmallProblems) {
  Rng rng(19);
  for (int trial = 0; trial < 3; ++trial) {
    const Qubo qubo = RandomQubo(14, 0.4, rng);
    auto exact = SolveQuboBruteForce(qubo);
    ASSERT_TRUE(exact.ok());
    TabuOptions options;
    options.num_restarts = 8;
    options.iterations_per_restart = 1500;
    const auto restarts = SolveQuboTabuSearch(qubo, options, rng);
    ASSERT_EQ(restarts.size(), 8u);
    EXPECT_NEAR(restarts.front().energy, exact->energy, 1e-6);
    // Reported energies match re-evaluation.
    for (const auto& r : restarts) {
      EXPECT_NEAR(qubo.Energy(r.assignment), r.energy, 1e-6);
    }
  }
}

TEST(TabuSearchTest, EscapesLocalMinima) {
  // A frustrated two-cluster instance with a deceptive local minimum:
  // plain steepest descent from all-zeros stalls; tabu keeps moving.
  Qubo qubo(6);
  for (int i = 0; i < 6; ++i) qubo.AddLinear(i, 1.0);
  qubo.AddQuadratic(0, 1, -3.0);
  qubo.AddQuadratic(2, 3, -3.0);
  qubo.AddQuadratic(4, 5, -3.0);
  auto exact = SolveQuboBruteForce(qubo);
  ASSERT_TRUE(exact.ok());
  Rng rng(23);
  TabuOptions options;
  options.num_restarts = 4;
  const auto restarts = SolveQuboTabuSearch(qubo, options, rng);
  EXPECT_NEAR(restarts.front().energy, exact->energy, 1e-9);
}

TEST(SaScheduleTest, FinalSweepRunsAtFinalTemperature) {
  // Regression: the cooling exponent used to be 1/sweeps instead of
  // 1/(sweeps - 1), so the last sweep ran one cooling step short of
  // t_final. Pin the endpoints of the resolved geometric schedule.
  Qubo q(4);
  q.AddLinear(0, 2.0);
  SaOptions options;
  options.sweeps_per_read = 50;
  options.initial_temperature = 8.0;
  options.final_temperature = 0.25;
  const SaSchedule schedule = ResolveSaSchedule(q, options);
  EXPECT_DOUBLE_EQ(schedule.t_initial, 8.0);
  EXPECT_DOUBLE_EQ(schedule.t_final, 0.25);
  double temperature = schedule.t_initial;
  for (int sweep = 1; sweep < options.sweeps_per_read; ++sweep) {
    temperature *= schedule.cooling;
  }
  EXPECT_NEAR(temperature, schedule.t_final, 1e-12);
}

TEST(SaScheduleTest, SingleSweepDegeneratesToInitialTemperature) {
  Qubo q(4);
  q.AddLinear(0, 2.0);
  SaOptions options;
  options.sweeps_per_read = 1;
  options.initial_temperature = 8.0;
  options.final_temperature = 0.25;
  const SaSchedule schedule = ResolveSaSchedule(q, options);
  EXPECT_DOUBLE_EQ(schedule.cooling, 1.0);
}

TEST(SaScheduleTest, AutoTemperaturesTrackCoefficients) {
  Qubo q(4);
  q.AddLinear(0, -6.0);
  q.AddQuadratic(1, 2, 3.0);
  const SaSchedule schedule = ResolveSaSchedule(q, SaOptions{});
  EXPECT_DOUBLE_EQ(schedule.t_initial, 6.0);
  EXPECT_DOUBLE_EQ(schedule.t_final, 6.0 * 1e-3);
  EXPECT_LT(schedule.cooling, 1.0);
  EXPECT_GT(schedule.cooling, 0.0);
}

TEST(SimulatedAnnealingTest, DeterministicAcrossParallelism) {
  Rng make_rng(29);
  const Qubo qubo = RandomQubo(24, 0.3, make_rng);
  SaOptions options;
  options.num_reads = 16;
  options.sweeps_per_read = 120;
  std::vector<std::vector<QuboSolution>> runs;
  for (int parallelism : {1, 2, 8}) {
    options.control.parallelism = parallelism;
    Rng rng(31);
    runs.push_back(SolveQuboSimulatedAnnealing(qubo, options, rng));
    // The solver consumes exactly one draw from the caller's RNG no
    // matter the thread count, so follow-up draws stay aligned too.
    Rng reference(31);
    reference.Next();  // the draw the solver consumed
    EXPECT_EQ(rng.Next(), reference.Next());
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].energy, runs[0][i].energy)
          << "run " << run << " read " << i;
      EXPECT_EQ(runs[run][i].assignment, runs[0][i].assignment);
    }
  }
}

TEST(TabuSearchTest, DeterministicAcrossParallelism) {
  Rng make_rng(37);
  const Qubo qubo = RandomQubo(20, 0.35, make_rng);
  TabuOptions options;
  options.num_restarts = 12;
  options.iterations_per_restart = 300;
  std::vector<std::vector<QuboSolution>> runs;
  for (int parallelism : {1, 2, 8}) {
    options.control.parallelism = parallelism;
    Rng rng(41);
    runs.push_back(SolveQuboTabuSearch(qubo, options, rng));
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].energy, runs[0][i].energy)
          << "run " << run << " restart " << i;
      EXPECT_EQ(runs[run][i].assignment, runs[0][i].assignment);
    }
  }
}

TEST(QuboTest, MaxAbsCoefficient) {
  Qubo q(3);
  q.AddLinear(0, -5.0);
  q.AddQuadratic(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(q.MaxAbsCoefficient(), 5.0);
}

TEST(QuboDeathTest, QuadraticRejectsDiagonalAndOutOfRange) {
  Qubo q(3);
  q.AddQuadratic(0, 1, 1.0);
  EXPECT_DEATH(q.quadratic(1, 1), "CHECK failed");
  EXPECT_DEATH(q.quadratic(-1, 0), "CHECK failed");
  EXPECT_DEATH(q.quadratic(0, 3), "CHECK failed");
  EXPECT_DEATH(q.AddQuadratic(2, 2, 1.0), "CHECK failed");
  EXPECT_DEATH(q.AddQuadratic(-1, 1, 1.0), "CHECK failed");
  EXPECT_DEATH(q.AddQuadratic(1, 3, 1.0), "CHECK failed");
}

/// Reference energy straight off the term list — deliberately independent
/// of both the CSR layout and Qubo::Energy.
double TermListEnergy(const Qubo& q, const std::vector<int>& x) {
  double energy = q.offset();
  for (int i = 0; i < q.num_variables(); ++i) {
    if (x[i]) energy += q.linear(i);
  }
  for (const auto& [i, j, w] : q.QuadraticTerms()) {
    if (x[i] && x[j]) energy += w;
  }
  return energy;
}

TEST(QuboCsrTest, EnergyAndFlipDeltaMatchTermListReference) {
  Rng rng(77);
  for (int trial = 0; trial < 16; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(24));
    const Qubo qubo = RandomQubo(n, 0.4, rng);
    const QuboCsr& csr = qubo.Csr();
    ASSERT_EQ(csr.num_variables(), n);
    ASSERT_EQ(csr.num_entries(), 2 * qubo.num_quadratic_terms());
    for (int s = 0; s < 8; ++s) {
      std::vector<int> x(n);
      for (int i = 0; i < n; ++i) x[i] = rng.Bernoulli(0.5) ? 1 : 0;
      EXPECT_NEAR(csr.Energy(x), TermListEnergy(qubo, x), 1e-9);
      const std::vector<double> fields = csr.LocalFields(x);
      for (int i = 0; i < n; ++i) {
        std::vector<int> flipped = x;
        flipped[i] ^= 1;
        const double expected = TermListEnergy(qubo, flipped) -
                                TermListEnergy(qubo, x);
        EXPECT_NEAR(csr.FlipDelta(x, i), expected, 1e-9)
            << "trial " << trial << " flip " << i;
        // O(1) proposal off the persistent fields must agree with the
        // O(degree) scan.
        EXPECT_NEAR(x[i] ? -fields[i] : fields[i], expected, 1e-9);
      }
    }
  }
}

TEST(QuboCsrTest, ApplyFlipKeepsFieldsAndEnergyInSync) {
  Rng rng(83);
  const int n = 24;
  const Qubo qubo = RandomQubo(n, 0.5, rng);
  const QuboCsr& csr = qubo.Csr();
  std::vector<int> x(n);
  for (int i = 0; i < n; ++i) x[i] = rng.Bernoulli(0.5) ? 1 : 0;
  std::vector<double> fields = csr.LocalFields(x);
  double energy = csr.Energy(x);
  for (int step = 0; step < 300; ++step) {
    const int i = static_cast<int>(rng.UniformInt(n));
    energy += x[i] ? -fields[i] : fields[i];
    csr.ApplyFlip(i, x, fields);
  }
  EXPECT_NEAR(energy, csr.Energy(x), 1e-9);
  const std::vector<double> fresh = csr.LocalFields(x);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(fields[i], fresh[i], 1e-9) << "field " << i;
  }
}

/// Random QUBO whose coefficients are multiples of 1/64 with small
/// magnitude: every sum the kernels form is exactly representable, so
/// floating-point addition is associative on these problems and the
/// incremental kernel must reproduce the reference kernel's trajectory
/// bit for bit, not merely approximately.
Qubo DyadicRandomQubo(int n, double edge_probability, Rng& rng) {
  Qubo q(n);
  const auto dyadic = [&rng] {
    return (static_cast<double>(rng.UniformInt(257)) - 128.0) / 64.0;
  };
  for (int i = 0; i < n; ++i) {
    q.AddLinear(i, dyadic());
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(edge_probability)) q.AddQuadratic(i, j, dyadic());
    }
  }
  return q;
}

TEST(SimulatedAnnealingTest, KernelsBitIdenticalOnDyadicProblems) {
  Rng make_rng(91);
  const Qubo qubo = DyadicRandomQubo(40, 0.5, make_rng);
  SaOptions options;
  options.num_reads = 8;
  options.sweeps_per_read = 100;
  for (int parallelism : {1, 4}) {
    options.control.parallelism = parallelism;
    options.kernel = SolverKernel::kIncremental;
    Rng rng_inc(19);
    const auto incremental = SolveQuboSimulatedAnnealing(qubo, options, rng_inc);
    options.kernel = SolverKernel::kReference;
    Rng rng_ref(19);
    const auto reference = SolveQuboSimulatedAnnealing(qubo, options, rng_ref);
    ASSERT_EQ(incremental.size(), reference.size());
    for (size_t i = 0; i < incremental.size(); ++i) {
      EXPECT_EQ(incremental[i].energy, reference[i].energy)
          << "parallelism " << parallelism << " read " << i;
      EXPECT_EQ(incremental[i].assignment, reference[i].assignment);
    }
  }
}

TEST(SimulatedAnnealingTest, BatchedKernelsBitIdenticalToScalarReads) {
  // The batched SoA kernel performs the *same* per-replica FP operations
  // as the incremental kernel (exact +-1 * w products, same draw
  // sequence), so bit-identity holds on continuous weights — no dyadic
  // restriction — for every replica count (full groups, partial tail
  // lanes, a single lane) at every parallelism.
  Rng make_rng(91);
  for (int n : {17, 40}) {
    const Qubo qubo = RandomQubo(n, 0.5, make_rng);
    SaOptions options;
    options.sweeps_per_read = 80;
    for (int num_reads : {1, 4, 17}) {
      options.num_reads = num_reads;
      for (int parallelism : {1, 4, 8}) {
        options.control.parallelism = parallelism;
        options.kernel = SolverKernel::kIncremental;
        Rng rng_inc(19);
        const auto scalar = SolveQuboSimulatedAnnealing(qubo, options, rng_inc);
        options.kernel = SolverKernel::kBatched;
        Rng rng_bat(19);
        const auto batched = SolveQuboSimulatedAnnealing(qubo, options, rng_bat);
        ASSERT_EQ(scalar.size(), batched.size());
        for (size_t i = 0; i < scalar.size(); ++i) {
          EXPECT_EQ(scalar[i].energy, batched[i].energy)
              << "n " << n << " reads " << num_reads << " parallelism "
              << parallelism << " read " << i;
          EXPECT_EQ(scalar[i].assignment, batched[i].assignment);
        }
      }
    }
  }
}

TEST(TabuSearchTest, KernelsBitIdenticalOnDyadicProblems) {
  Rng make_rng(97);
  const Qubo qubo = DyadicRandomQubo(32, 0.5, make_rng);
  TabuOptions options;
  options.num_restarts = 6;
  options.iterations_per_restart = 250;
  for (int parallelism : {1, 4}) {
    options.control.parallelism = parallelism;
    options.kernel = SolverKernel::kIncremental;
    Rng rng_inc(23);
    const auto incremental = SolveQuboTabuSearch(qubo, options, rng_inc);
    options.kernel = SolverKernel::kReference;
    Rng rng_ref(23);
    const auto reference = SolveQuboTabuSearch(qubo, options, rng_ref);
    ASSERT_EQ(incremental.size(), reference.size());
    for (size_t i = 0; i < incremental.size(); ++i) {
      EXPECT_EQ(incremental[i].energy, reference[i].energy)
          << "parallelism " << parallelism << " restart " << i;
      EXPECT_EQ(incremental[i].assignment, reference[i].assignment);
    }
  }
}

TEST(SimulatedAnnealingTest, KernelsConvergeEquallyOnContinuousProblems) {
  // On continuous weights the trajectories may drift apart by rounding,
  // but both kernels must still find the same optimum of a small problem.
  Rng make_rng(101);
  const Qubo qubo = RandomQubo(14, 0.5, make_rng);
  const QuboSolution exact = *SolveQuboBruteForce(qubo);
  SaOptions options;
  options.num_reads = 24;
  options.sweeps_per_read = 400;
  for (SolverKernel kernel : {SolverKernel::kIncremental,
                              SolverKernel::kReference}) {
    options.kernel = kernel;
    Rng rng(29);
    const auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
    EXPECT_NEAR(reads.front().energy, exact.energy, 1e-6);
  }
}


// --- Cooperative cancellation (the portfolio stop token). ---

TEST(SimulatedAnnealingTest, StopTokenCancelsLongRun) {
  Rng make_rng(131);
  const Qubo qubo = RandomQubo(64, 0.5, make_rng);
  SaOptions options;
  options.num_reads = 4;
  options.sweeps_per_read = 50'000'000;  // hours of work if uncancelled
  std::atomic<bool> stop{false};
  options.control.stop = &stop;
  std::thread canceller([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true, std::memory_order_relaxed);
  });
  Rng rng(31);
  const auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
  canceller.join();
  // The run returned (that is the point); truncated reads are still valid
  // assignments with consistent energies.
  ASSERT_EQ(reads.size(), 4u);
  for (const auto& read : reads) {
    ASSERT_EQ(read.assignment.size(), 64u);
    // The incremental kernel tracks energy by flip deltas; allow the
    // rounding drift of thousands of sweeps.
    EXPECT_NEAR(read.energy, qubo.Energy(read.assignment),
                1e-9 * (1.0 + std::abs(read.energy)) * 1e3);
  }
}

TEST(SimulatedAnnealingTest, PreSetStopTokenReturnsImmediately) {
  Rng make_rng(137);
  const Qubo qubo = RandomQubo(32, 0.5, make_rng);
  SaOptions options;
  options.num_reads = 2;
  options.sweeps_per_read = 50'000'000;
  std::atomic<bool> stop{true};
  options.control.stop = &stop;
  Rng rng(37);
  const auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
  ASSERT_EQ(reads.size(), 2u);
  for (const auto& read : reads) {
    EXPECT_DOUBLE_EQ(read.energy, qubo.Energy(read.assignment));
  }
}

TEST(SimulatedAnnealingTest, UnsetStopTokenMatchesNoToken) {
  Rng make_rng(139);
  const Qubo qubo = RandomQubo(24, 0.5, make_rng);
  SaOptions options;
  options.num_reads = 6;
  options.sweeps_per_read = 200;
  Rng rng_plain(41);
  const auto plain = SolveQuboSimulatedAnnealing(qubo, options, rng_plain);
  std::atomic<bool> stop{false};
  options.control.stop = &stop;
  Rng rng_token(41);
  const auto with_token = SolveQuboSimulatedAnnealing(qubo, options, rng_token);
  ASSERT_EQ(plain.size(), with_token.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].energy, with_token[i].energy);
    EXPECT_EQ(plain[i].assignment, with_token[i].assignment);
  }
}

TEST(TabuSearchTest, StopTokenCancelsLongRun) {
  Rng make_rng(149);
  const Qubo qubo = RandomQubo(64, 0.5, make_rng);
  TabuOptions options;
  options.num_restarts = 4;
  options.iterations_per_restart = 50'000'000;
  std::atomic<bool> stop{false};
  options.control.stop = &stop;
  std::thread canceller([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true, std::memory_order_relaxed);
  });
  Rng rng(43);
  const auto restarts = SolveQuboTabuSearch(qubo, options, rng);
  canceller.join();
  ASSERT_EQ(restarts.size(), 4u);
  for (const auto& restart : restarts) {
    ASSERT_EQ(restart.assignment.size(), 64u);
    EXPECT_NEAR(restart.energy, qubo.Energy(restart.assignment),
                1e-9 * (1.0 + std::abs(restart.energy)) * 1e3);
  }
}

TEST(TabuSearchTest, UnsetStopTokenMatchesNoToken) {
  Rng make_rng(151);
  const Qubo qubo = RandomQubo(24, 0.5, make_rng);
  TabuOptions options;
  options.num_restarts = 4;
  options.iterations_per_restart = 150;
  Rng rng_plain(47);
  const auto plain = SolveQuboTabuSearch(qubo, options, rng_plain);
  std::atomic<bool> stop{false};
  options.control.stop = &stop;
  Rng rng_token(47);
  const auto with_token = SolveQuboTabuSearch(qubo, options, rng_token);
  ASSERT_EQ(plain.size(), with_token.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].energy, with_token[i].energy);
    EXPECT_EQ(plain[i].assignment, with_token[i].assignment);
  }
}

}  // namespace
}  // namespace qjo

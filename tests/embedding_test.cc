#include <vector>

#include <gtest/gtest.h>

#include "embedding/embedded_qubo.h"
#include "embedding/minor_embedding.h"
#include "topology/coupling_graph.h"
#include "topology/vendor_topologies.h"
#include "util/random.h"

namespace qjo {
namespace {

std::vector<std::pair<int, int>> CompleteEdges(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return edges;
}

TEST(MinorEmbeddingTest, IdentityOnMatchingGraph) {
  Rng rng(1);
  const CouplingGraph target = MakeGridGraph(3, 3);
  // A path graph embeds with (mostly) single-qubit chains.
  std::vector<std::pair<int, int>> path = {{0, 1}, {1, 2}, {2, 3}};
  auto embedding =
      FindMinorEmbedding(path, 4, target, EmbeddingOptions{}, rng);
  ASSERT_TRUE(embedding.ok());
  EXPECT_TRUE(VerifyEmbedding(path, 4, target, *embedding));
  EXPECT_LE(embedding->NumPhysicalQubits(), 8);
}

TEST(MinorEmbeddingTest, TriangleIntoGridNeedsNoChainOfLengthThree) {
  Rng rng(2);
  const CouplingGraph target = MakeGridGraph(3, 3);
  const auto triangle = CompleteEdges(3);
  auto embedding =
      FindMinorEmbedding(triangle, 3, target, EmbeddingOptions{}, rng);
  ASSERT_TRUE(embedding.ok());
  EXPECT_TRUE(VerifyEmbedding(triangle, 3, target, *embedding));
  // A triangle in a grid requires one chain of length 2: 4 qubits total.
  EXPECT_GE(embedding->NumPhysicalQubits(), 4);
  EXPECT_LE(embedding->NumPhysicalQubits(), 6);
}

TEST(MinorEmbeddingTest, K4IntoGrid) {
  Rng rng(3);
  const CouplingGraph target = MakeGridGraph(4, 4);
  const auto k4 = CompleteEdges(4);
  auto embedding = FindMinorEmbedding(k4, 4, target, EmbeddingOptions{}, rng);
  ASSERT_TRUE(embedding.ok());
  EXPECT_TRUE(VerifyEmbedding(k4, 4, target, *embedding));
}

TEST(MinorEmbeddingTest, K6IntoPegasus) {
  Rng rng(4);
  auto target = MakePegasus(2);
  ASSERT_TRUE(target.ok());
  const auto k6 = CompleteEdges(6);
  auto embedding = FindMinorEmbedding(k6, 6, *target, EmbeddingOptions{}, rng);
  ASSERT_TRUE(embedding.ok());
  EXPECT_TRUE(VerifyEmbedding(k6, 6, *target, *embedding));
  // Pegasus embeds cliques efficiently; expect short chains.
  EXPECT_LE(embedding->MaxChainLength(), 4);
}

TEST(MinorEmbeddingTest, ImpossibleEmbeddingReturnsNotFound) {
  Rng rng(5);
  const CouplingGraph target = MakeLineGraph(4);
  // K4 has treewidth 3, a path cannot host it.
  auto embedding =
      FindMinorEmbedding(CompleteEdges(4), 4, target, EmbeddingOptions{}, rng);
  EXPECT_FALSE(embedding.ok());
  // Oversized source.
  auto too_big = FindMinorEmbedding({}, 10, target, EmbeddingOptions{}, rng);
  EXPECT_FALSE(too_big.ok());
}

TEST(MinorEmbeddingTest, VerifyEmbeddingRejectsDefects) {
  const CouplingGraph target = MakeGridGraph(2, 3);
  const std::vector<std::pair<int, int>> edge = {{0, 1}};
  Embedding overlap;
  overlap.chains = {{0}, {0}};
  EXPECT_FALSE(VerifyEmbedding(edge, 2, target, overlap));
  Embedding disconnected;
  disconnected.chains = {{0, 5}, {1}};  // 0 and 5 are not adjacent in 2x3
  EXPECT_FALSE(VerifyEmbedding(edge, 2, target, disconnected));
  Embedding unrepresentable;
  unrepresentable.chains = {{0}, {5}};
  EXPECT_FALSE(VerifyEmbedding(edge, 2, target, unrepresentable));
  Embedding empty_chain;
  empty_chain.chains = {{0}, {}};
  EXPECT_FALSE(VerifyEmbedding(edge, 2, target, empty_chain));
  Embedding good;
  good.chains = {{0}, {1}};
  EXPECT_TRUE(VerifyEmbedding(edge, 2, target, good));
}

TEST(MinorEmbeddingTest, DeterministicUnderSeed) {
  const CouplingGraph target = MakeGridGraph(4, 4);
  const auto k4 = CompleteEdges(4);
  Rng rng1(77), rng2(77);
  auto e1 = FindMinorEmbedding(k4, 4, target, EmbeddingOptions{}, rng1);
  auto e2 = FindMinorEmbedding(k4, 4, target, EmbeddingOptions{}, rng2);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e1->chains, e2->chains);
}

/// Fixture: a triangle QUBO embedded into a grid.
struct EmbeddedFixture {
  Qubo logical{3};
  CouplingGraph target = MakeGridGraph(3, 3);
  Embedding embedding;
  EmbeddedQubo embedded;

  static EmbeddedFixture Make(uint64_t seed) {
    EmbeddedFixture f;
    f.logical.AddLinear(0, 1.0);
    f.logical.AddLinear(1, -2.0);
    f.logical.AddQuadratic(0, 1, 1.5);
    f.logical.AddQuadratic(1, 2, -0.5);
    f.logical.AddQuadratic(0, 2, 2.0);
    f.logical.AddOffset(0.25);
    Rng rng(seed);
    auto embedding = FindMinorEmbedding(f.logical.Edges(), 3, f.target,
                                        EmbeddingOptions{}, rng);
    EXPECT_TRUE(embedding.ok());
    f.embedding = std::move(embedding).value();
    auto embedded =
        EmbedQubo(f.logical, f.embedding, f.target, EmbedQuboOptions{});
    EXPECT_TRUE(embedded.ok());
    f.embedded = std::move(embedded).value();
    return f;
  }
};

TEST(EmbeddedQuboTest, ConsistentChainsReproduceLogicalEnergy) {
  EmbeddedFixture f = EmbeddedFixture::Make(11);
  // For every logical assignment, setting all chain qubits consistently
  // must give exactly the logical energy (chain penalty contributes 0).
  for (int x = 0; x < 8; ++x) {
    std::vector<int> logical_bits = {x & 1, (x >> 1) & 1, (x >> 2) & 1};
    std::vector<int> physical_bits(f.target.num_qubits(), 0);
    for (int v = 0; v < 3; ++v) {
      for (int q : f.embedding.chains[v]) physical_bits[q] = logical_bits[v];
    }
    EXPECT_NEAR(f.embedded.physical.Energy(physical_bits),
                f.logical.Energy(logical_bits), 1e-9)
        << "x=" << x;
  }
}

TEST(EmbeddedQuboTest, BrokenChainsPayExactPenalty) {
  // Hand-built embedding on a 3-qubit line: chain A = {0,1}, B = {2};
  // logical edge (A,B) of weight 1 lands on coupler (1,2); the chain
  // penalty cs * (x_0 - x_1)^2 sits on coupler (0,1).
  Qubo logical(2);
  logical.AddQuadratic(0, 1, 1.0);
  const CouplingGraph target = MakeLineGraph(3);
  Embedding embedding;
  embedding.chains = {{0, 1}, {2}};
  EmbedQuboOptions opts;
  opts.chain_strength_override = 2.0;
  auto embedded = EmbedQubo(logical, embedding, target, opts);
  ASSERT_TRUE(embedded.ok());
  // Consistent A=1, B=1: energy = logical = 1.
  EXPECT_DOUBLE_EQ(embedded->physical.Energy({1, 1, 1}), 1.0);
  // Consistent A=1, B=0: energy = 0.
  EXPECT_DOUBLE_EQ(embedded->physical.Energy({1, 1, 0}), 0.0);
  // Breaking the chain (qubit 0 disagrees) pays exactly cs = 2 on top of
  // the remaining logical term.
  EXPECT_DOUBLE_EQ(embedded->physical.Energy({0, 1, 1}), 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(embedded->physical.Energy({1, 0, 1}), 2.0);
}

TEST(EmbeddedQuboTest, ChainStrengthOptions) {
  EmbeddedFixture f = EmbeddedFixture::Make(17);
  EXPECT_DOUBLE_EQ(f.embedded.chain_strength, 2.0);  // max |coefficient|
  EmbedQuboOptions opts;
  opts.chain_strength_override = 7.5;
  auto embedded = EmbedQubo(f.logical, f.embedding, f.target, opts);
  ASSERT_TRUE(embedded.ok());
  EXPECT_DOUBLE_EQ(embedded->chain_strength, 7.5);
  opts.chain_strength_override = -1.0;
  opts.chain_strength_multiplier = 2.0;
  embedded = EmbedQubo(f.logical, f.embedding, f.target, opts);
  ASSERT_TRUE(embedded.ok());
  EXPECT_DOUBLE_EQ(embedded->chain_strength, 4.0);
}

TEST(EmbeddedQuboTest, RejectsMismatchedEmbedding) {
  EmbeddedFixture f = EmbeddedFixture::Make(19);
  Embedding wrong;
  wrong.chains = {{0}, {1}};  // only two chains for three variables
  EXPECT_FALSE(EmbedQubo(f.logical, wrong, f.target, EmbedQuboOptions{}).ok());
}

TEST(UnembedTest, MajorityVote) {
  Embedding embedding;
  embedding.chains = {{0, 1, 2}, {3, 4}, {5}};
  Rng rng(23);
  UnembeddedSample s =
      UnembedSample({1, 1, 0, 0, 0, 1}, embedding, rng);
  EXPECT_EQ(s.logical_bits[0], 1);  // 2 of 3
  EXPECT_EQ(s.logical_bits[1], 0);  // unanimous
  EXPECT_EQ(s.logical_bits[2], 1);
  // Chains 0 is broken, chain 1 and 2 are intact.
  EXPECT_NEAR(s.chain_break_fraction, 1.0 / 3.0, 1e-9);
}

TEST(UnembedTest, TieBreaksAreRandomButValid) {
  Embedding embedding;
  embedding.chains = {{0, 1}};
  Rng rng(29);
  int ones = 0;
  for (int i = 0; i < 200; ++i) {
    UnembeddedSample s = UnembedSample({1, 0}, embedding, rng);
    ones += s.logical_bits[0];
    EXPECT_NEAR(s.chain_break_fraction, 1.0, 1e-9);
  }
  EXPECT_GT(ones, 50);
  EXPECT_LT(ones, 150);
}

}  // namespace
}  // namespace qjo

#!/usr/bin/env python3
"""Validate the checked-in BENCH_*.json files against the bench schema.

Every bench binary in bench/ dumps a flat JSON object of numeric metrics.
CI and downstream tooling (the simd-tiers comparison, the serving-smoke
gate) key on a stable subset of those metrics, so this script fails fast
when a bench stops emitting one of them -- a silent schema drift would
otherwise surface as a mysteriously green comparison over missing data.

Checks, per file:
  * the file parses as JSON and is a flat object of finite numbers;
  * the common keys every bench must carry are present
    (simd_isa, fast_mode, parallelism);
  * the per-bench required keys are present (throughput fields such as
    sa_proposals_per_sec_* for the kernel bench, *_throughput_rps for the
    serving bench);
  * per-case keys derived from the file itself are complete (each decomp
    case with a <case>_valid flag also reports elapsed_ms and
    cost_over_greedy; each portfolio instance i<k> reports its solo and
    portfolio timings).

Usage:
  python3 tools/check_bench_schema.py            # checks repo-root BENCH_*.json
  python3 tools/check_bench_schema.py DIR|FILE…  # checks the given paths

Exits non-zero with one line per violation. Stdlib only.
"""

import glob
import json
import math
import os
import sys

# Keys every bench JSON must carry, regardless of which bench wrote it.
COMMON_KEYS = ("simd_isa", "fast_mode", "parallelism")

# Per-bench required keys, matched on the file's basename prefix (so the
# *_smoke.json variants written by ctest are held to the same schema).
REQUIRED_KEYS = {
    "BENCH_kernels": (
        "sa_proposals_per_sec_reference",
        "sa_proposals_per_sec_incremental",
        "sa_proposals_per_sec_batched",
        "sa_batched_replicas_per_sec",
        "sa_reads_per_sec_serial",
        "sa_reads_per_sec_parallel",
        "tabu_moves_per_sec_incremental",
        "sqa_spin_updates_per_sec_incremental",
        "sqa_batched_spin_updates_per_sec",
        "qaoa_amplitudes_per_sec_serial",
        "qaoa_amplitudes_per_sec_parallel",
    ),
    "BENCH_qaoa": (
        "mixer_amps_per_sec_reference",
        "mixer_amps_per_sec_fused",
        "grid_evals_per_sec_serial_reference",
        "grid_evals_per_sec_batched_fused",
        "amplitudes_identical",
        "simd_tiers_identical",
    ),
    "BENCH_portfolio": (
        "instances",
        "all_tti_le_best_solo",
    ),
    "BENCH_adaptive": (
        "queries",
        "eval_seeds",
        "trained_races",
        "buckets",
        "tti_ratio",
        "sweeps_tti_ratio",
        "work_ratio",
        "elapsed_ratio",
        "mean_cost_ratio",
        "throttled_strands",
        "adaptive_applied",
        "cost_ok",
        "adaptive_ok",
    ),
    "BENCH_decomp": (
        "cases",
        "valid_tree_rate",
    ),
    "BENCH_serving": (
        "closed_throughput_rps",
        "closed_goodput_rps",
        "closed_cache_hit_rate",
        "closed_p50_ms",
        "closed_p95_ms",
        "closed_p99_ms",
        "open_throughput_rps",
        "open_goodput_rps",
        "open_rejected",
        "open_p99_ms",
        # Single-flight coalescing (duplicate-heavy Zipf profile, baseline
        # vs coalesced for both arrival processes).
        "dup_closed_baseline_throughput_rps",
        "dup_closed_coalesced_throughput_rps",
        "dup_open_baseline_throughput_rps",
        "dup_open_coalesced_throughput_rps",
        "coalesced",
        "solves_per_unique_key",
        # Token-bucket rate limiting and plan-cache warm-up scenarios.
        "ratelimited",
        "cache_warm_hits",
        "silent_drops",
        "smoke_ok",
    ),
    "BENCH_obs_overhead": (),  # CI-only artifact; common keys suffice
}

# Per-instance/per-case suffixes expanded from counters in the file.
PORTFOLIO_INSTANCE_KEYS = (
    "solo_sa_seconds",
    "solo_tabu_seconds",
    "solo_sqa_seconds",
    "best_solo_seconds",
    "portfolio_elapsed_seconds",
    "portfolio_best_energy",
    "portfolio_time_to_incumbent_seconds",
)
DECOMP_CASE_KEYS = ("elapsed_ms", "cost_over_greedy")
ADAPTIVE_QUERY_KEYS = (
    "fixed_winner_tti_ms",
    "adaptive_winner_tti_ms",
    "throttled",
    "winner_flips",
)


def check_file(path):
    """Returns a list of violation strings for one bench JSON file."""
    name = os.path.basename(path)
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return ["%s: does not parse as JSON: %s" % (name, err)]

    errors = []
    if not isinstance(data, dict):
        return ["%s: top-level value is %s, expected an object" %
                (name, type(data).__name__)]
    for key, value in data.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append("%s: key %r is %s, expected a number" %
                          (name, key, type(value).__name__))
        elif not math.isfinite(value):
            errors.append("%s: key %r is %r, expected finite" %
                          (name, key, value))

    def require(keys, why):
        for key in keys:
            if key not in data:
                errors.append("%s: missing %s key %r" % (name, why, key))

    require(COMMON_KEYS, "common")

    bench = None
    for prefix in REQUIRED_KEYS:
        if name == prefix + ".json" or name.startswith(prefix + "_"):
            bench = prefix
            break
    if bench is None:
        errors.append("%s: unknown bench file (no schema registered; add one "
                      "to REQUIRED_KEYS in tools/check_bench_schema.py)" %
                      name)
        return errors
    require(REQUIRED_KEYS[bench], bench)

    if bench == "BENCH_portfolio":
        for inst in range(int(data.get("instances", 0))):
            require(("i%d_%s" % (inst, suffix)
                     for suffix in PORTFOLIO_INSTANCE_KEYS),
                    "instance %d" % inst)
    elif bench == "BENCH_adaptive":
        for query in range(int(data.get("queries", 0))):
            require(("q%d_%s" % (query, suffix)
                     for suffix in ADAPTIVE_QUERY_KEYS),
                    "query %d" % query)
        # The checked-in full-mode artifact carries the acceptance bar:
        # adaptive must beat the fixed race on wall time-to-incumbent.
        # Smoke artifacts (fast_mode == 1) are schema-checked only --
        # their wall timings come from loaded CI machines.
        if data.get("fast_mode") == 0:
            if data.get("adaptive_ok") != 1:
                errors.append("%s: adaptive_ok != 1 (the adaptive race "
                              "regressed; regenerate with "
                              "bench/portfolio_race)" % name)
            if not data.get("tti_ratio", 2.0) <= 1.0:
                errors.append("%s: tti_ratio %r > 1.0 (adaptive must not "
                              "regress time-to-incumbent)" %
                              (name, data.get("tti_ratio")))
    elif bench == "BENCH_decomp":
        prefixes = sorted(key[:-len("_valid")] for key in data
                          if key.endswith("_valid"))
        if not prefixes:
            errors.append("%s: no per-case *_valid keys found" % name)
        for prefix in prefixes:
            require(("%s_%s" % (prefix, suffix)
                     for suffix in DECOMP_CASE_KEYS),
                    "case %s" % prefix)

    return errors


def main(argv):
    if len(argv) > 1:
        paths = []
        for arg in argv[1:]:
            if os.path.isdir(arg):
                paths.extend(sorted(glob.glob(os.path.join(arg,
                                                           "BENCH_*.json"))))
            else:
                paths.append(arg)
    else:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))

    if not paths:
        print("check_bench_schema: no BENCH_*.json files found", file=sys.stderr)
        return 1

    errors = []
    for path in paths:
        errors.extend(check_file(path))

    for error in errors:
        print("check_bench_schema: %s" % error, file=sys.stderr)
    if not errors:
        print("check_bench_schema: %d file(s) OK: %s" %
              (len(paths), ", ".join(os.path.basename(p) for p in paths)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

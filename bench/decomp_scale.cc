// Decomposition scaling benchmark: the qbsolv-style LNS strand on the
// query sizes where every monolithic backend stops returning valid join
// trees (Sec. 6's scalability wall). For 20/30/40/50-relation chain,
// star and cycle queries the bench runs the decomposition loop under a
// 2-second deadline and reports, per case, whether a valid join tree came
// back, its cost relative to the greedy baseline (<= 1 by construction),
// and the loop counters. The headline aggregate is valid_tree_rate: it
// must be 1.0 — decomposition never fails to produce a plan.
//
// Writes BENCH_decomp.json (override with QJO_BENCH_DECOMP_JSON).
// QJO_DECOMP_BENCH_FAST=1 shrinks the suite to the 30-relation cases for
// the ctest smoke entry, which fails (exit 1) when a case yields no valid
// tree within the deadline or costs more than greedy.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "decomp/decomp.h"
#include "jo/classical.h"
#include "jo/join_tree.h"
#include "jo/query_generator.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

struct Metric {
  std::string name;
  double value;
};

int RunSuite() {
  const bool fast = std::getenv("QJO_DECOMP_BENCH_FAST") != nullptr;
  const int parallelism = bench::Parallelism();
  const double deadline_ms = 2000.0;

  bench::Banner("decomp_scale",
                "qbsolv-style decomposition on 20-50 relation queries");
  bench::PaperNote(
      "the co-design question past Table 3: monolithic QUBOs stop decoding "
      "long before 20 relations; decomposition is the hybrid path that "
      "still answers at 50");

  const std::vector<int> sizes = fast ? std::vector<int>{30}
                                      : std::vector<int>{20, 30, 40, 50};
  const QueryGraphType graphs[] = {QueryGraphType::kChain,
                                   QueryGraphType::kStar,
                                   QueryGraphType::kCycle};

  ThreadPool pool(parallelism);
  std::vector<Metric> metrics;
  metrics.push_back(
      {"simd_isa", static_cast<double>(static_cast<int>(Simd().isa))});
  metrics.push_back({"deadline_ms", deadline_ms});
  metrics.push_back({"parallelism", static_cast<double>(parallelism)});
  metrics.push_back({"fast_mode", fast ? 1.0 : 0.0});

  int cases = 0;
  int valid_cases = 0;
  bool all_within_deadline_and_greedy = true;
  for (int t : sizes) {
    for (QueryGraphType graph : graphs) {
      const std::string prefix =
          std::string(QueryGraphTypeName(graph)) + std::to_string(t) + "_";
      Rng gen_rng(1000 + 10 * t + static_cast<int>(graph));
      QueryGenOptions gen;
      gen.num_relations = t;
      gen.graph_type = graph;
      gen.min_log_card = 2.0;
      gen.max_log_card = 4.0;
      auto query = GenerateQuery(gen, gen_rng);
      if (!query.ok()) {
        std::cerr << "query generation failed: "
                  << query.status().ToString() << "\n";
        return 1;
      }
      const auto greedy = OptimizeGreedy(*query);
      if (!greedy.ok()) return 1;

      QuboBuildCache cache(256);
      DecompOptions options;
      options.run.deadline_ms = deadline_ms;
      options.run.parallelism = parallelism;
      options.run.pool = &pool;
      options.cache = &cache;
      options.run.trace = bench::ObsSession::Get().trace();
      options.run.metrics = bench::ObsSession::Get().metrics();
      Rng rng(7);
      const auto t0 = std::chrono::steady_clock::now();
      auto report = OptimizeJoinOrderDecomposed(*query, options, rng);
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();

      ++cases;
      bool valid = false;
      double cost_over_greedy = 0.0;
      if (report.ok()) {
        valid = LeftDeepOrder::Create(report->order.order(), *query).ok();
        cost_over_greedy = report->cost / greedy->cost;
        metrics.push_back(
            {prefix + "rounds", static_cast<double>(report->rounds)});
        metrics.push_back({prefix + "improvements",
                           static_cast<double>(report->improvements)});
        metrics.push_back(
            {prefix + "repairs", static_cast<double>(report->repairs)});
      }
      if (valid) ++valid_cases;
      // The deadline check is cooperative (between window solves), so a
      // run can overshoot by one sub-solve; 1.5x is generous slack.
      const bool ok_case = valid && cost_over_greedy <= 1.0 + 1e-9 &&
                           elapsed_ms <= deadline_ms * 1.5;
      all_within_deadline_and_greedy &= ok_case;
      metrics.push_back({prefix + "valid", valid ? 1.0 : 0.0});
      metrics.push_back({prefix + "elapsed_ms", elapsed_ms});
      metrics.push_back({prefix + "cost_over_greedy", cost_over_greedy});
      std::cout << QueryGraphTypeName(graph) << " t=" << t << ": "
                << (valid ? "valid tree" : "NO VALID TREE") << ", "
                << elapsed_ms << " ms, cost/greedy " << cost_over_greedy
                << (ok_case ? "" : "  [FAIL]") << "\n";
    }
  }
  const double valid_rate =
      cases > 0 ? static_cast<double>(valid_cases) / cases : 0.0;
  metrics.push_back({"cases", static_cast<double>(cases)});
  metrics.push_back({"valid_tree_rate", valid_rate});
  std::cout << "valid-tree rate: " << valid_rate << " (" << valid_cases
            << "/" << cases << ")\n";

  const char* json_path = std::getenv("QJO_BENCH_DECOMP_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_decomp.json";
  std::ofstream out(path);
  out << "{\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << "  \"" << metrics[i].name << "\": " << metrics[i].value
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "}\n";
  out.close();
  std::cout << "wrote " << path << std::endl;

  return all_within_deadline_and_greedy ? 0 : 1;
}

}  // namespace
}  // namespace qjo

int main() { return qjo::RunSuite(); }

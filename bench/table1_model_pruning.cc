// Reproduces Table 1: variable and constraint counts of the original
// Trummer-Koch-style MILP model vs the paper's pruned model, as concrete
// tallies over generated queries.

#include <cstdio>

#include "bench/bench_common.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "util/random.h"

namespace qjo {
namespace {

void Run() {
  bench::Banner("Table 1", "pruned vs original MILP model size");
  bench::PaperNote(
      "constraint rows: overlap TJ->T, pao PJ->P(J-1), cto RJ-><=R(J-1); "
      "variable rows: pao PJ->P(J-1), cto RJ-><=R(J-1)");

  std::printf(
      "\n%5s %5s %5s | %9s %9s | %9s %9s | %11s %11s | %12s %12s\n", "T",
      "P", "R", "vars-orig", "vars-prun", "pao-orig", "pao-prun", "cto-orig",
      "cto-prun", "constr-orig", "constr-prun");

  Rng rng(1);
  for (int t : {3, 5, 8, 12, 16, 20}) {
    QueryGenOptions gen;
    gen.num_relations = t;
    gen.graph_type = QueryGraphType::kCycle;
    gen.min_log_card = 2.0;
    gen.max_log_card = 4.0;
    auto query = GenerateQuery(gen, rng);
    if (!query.ok()) continue;
    const int r = 3;
    JoMilpOptions options;
    options.thresholds = MakeGeometricThresholds(*query, r);

    auto pruned = EncodeJoAsMilp(*query, options);
    options.variant = JoModelVariant::kOriginal;
    auto original = EncodeJoAsMilp(*query, options);
    if (!pruned.ok() || !original.ok()) continue;

    std::printf(
        "%5d %5d %5d | %9d %9d | %9d %9d | %11d %11d | %12d %12d\n", t,
        query->num_predicates(), r, original->model().num_variables(),
        pruned->model().num_variables(), original->stats().pao,
        pruned->stats().pao, original->stats().cto, pruned->stats().cto,
        original->model().num_constraints(),
        pruned->model().num_constraints());
  }

  std::printf(
      "\nQubit (binary variable) impact of pruning after BILP lowering:\n");
  std::printf("%5s | %12s %12s %9s\n", "T", "pruned-qubits", "formula-check",
              "");
  Rng rng2(2);
  for (int t : {3, 5, 8, 12}) {
    QueryGenOptions gen;
    gen.num_relations = t;
    gen.graph_type = QueryGraphType::kCycle;
    auto query = GenerateQuery(gen, rng2);
    if (!query.ok()) continue;
    JoMilpOptions options;
    options.thresholds = MakeGeometricThresholds(*query, 3);
    auto milp = EncodeJoAsMilp(*query, options);
    if (!milp.ok()) continue;
    auto bilp = LowerToBilp(milp->model(), 1.0);
    if (!bilp.ok()) continue;
    std::printf("%5d | %12d (problem %d + slack %d)\n", t,
                bilp->num_variables(), bilp->num_problem_variables,
                bilp->num_slack_variables());
  }
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

// Reproduces Fig. 2: QAOA circuit-depth distributions over repeated
// stochastic transpilations of 3-relation JO instances onto IBM Q
// topologies (left: varying discretisation precision and predicate count
// on Auckland; right: Auckland (Falcon, 27q) vs Washington (Eagle, 127q)).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "circuit/qaoa_builder.h"
#include "jo/query.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "sim/device.h"
#include "topology/vendor_topologies.h"
#include "transpiler/transpiler.h"
#include "util/stats.h"

namespace qjo {
namespace {

Query MakePaperInstance(int num_predicates) {
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 10);
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {0, 2}};
  for (int p = 0; p < num_predicates; ++p) {
    (void)q.AddPredicate(edges[p].first, edges[p].second, 0.1);
  }
  return q;
}

StatusOr<QuantumCircuit> BuildInstanceCircuit(int predicates, double omega) {
  const Query query = MakePaperInstance(predicates);
  JoMilpOptions options;
  options.thresholds = {10.0};
  options.omega = omega;
  QJO_ASSIGN_OR_RETURN(JoMilpModel milp, EncodeJoAsMilp(query, options));
  QJO_ASSIGN_OR_RETURN(BilpModel bilp, LowerToBilp(milp.model(), omega));
  QuboConversionOptions qopts;
  qopts.omega = omega;
  QJO_ASSIGN_OR_RETURN(QuboEncoding encoding, ConvertBilpToQubo(bilp, qopts));
  return BuildQaoaCircuit(encoding.qubo, QaoaParameters{{0.1}, {0.2}});
}

Summary DepthDistribution(const QuantumCircuit& logical,
                          const CouplingGraph& device, int transpilations) {
  std::vector<double> depths;
  for (int run = 0; run < transpilations; ++run) {
    TranspileOptions options;
    options.gate_set = NativeGateSet::kIbm;
    options.seed = 1000 + run;
    auto result = Transpile(logical, device, options);
    if (result.ok()) depths.push_back(result->depth);
  }
  return Summarize(depths);
}

void Run() {
  const int transpilations = bench::Scaled(20, 5);
  bench::Banner("Figure 2", "QAOA circuit depths on IBM Q devices");
  bench::PaperNote(
      "precision is costlier than predicates: 0..3 decimals and 0..3 "
      "predicates both map to 18/21/24/27 qubits, but precision blows up "
      "depth and variance more; Washington (127q) transpiles *deeper* than "
      "Auckland (27q) despite more qubits; depth cap d=min(T1,T2)/g_avg is "
      "293 (Auckland) / 168 (Washington)");

  const CouplingGraph auckland = MakeIbmFalcon27();
  const CouplingGraph washington = MakeIbmEagle127();

  std::printf("\n[left] IBM Q Auckland, %d transpilations per scenario\n",
              transpilations);
  std::printf("%-28s %6s | %7s %7s %7s %7s %7s\n", "scenario", "qubits",
              "min", "q1", "median", "q3", "max");
  const double omegas[] = {1.0, 0.1, 0.01, 0.001};
  for (int i = 0; i < 4; ++i) {
    auto circuit = BuildInstanceCircuit(0, omegas[i]);
    if (!circuit.ok()) continue;
    const Summary s = DepthDistribution(*circuit, auckland, transpilations);
    std::printf("precision %d decimals %9s %6d | %7.0f %7.0f %7.0f %7.0f %7.0f\n",
                i, "", circuit->num_qubits(), s.min, s.q1, s.median, s.q3,
                s.max);
  }
  for (int p = 0; p <= 3; ++p) {
    auto circuit = BuildInstanceCircuit(p, 1.0);
    if (!circuit.ok()) continue;
    const Summary s = DepthDistribution(*circuit, auckland, transpilations);
    std::printf("%d predicates %16s %6d | %7.0f %7.0f %7.0f %7.0f %7.0f\n", p,
                "", circuit->num_qubits(), s.min, s.q1, s.median, s.q3, s.max);
  }

  std::printf("\n[right] Auckland (Falcon r5.11) vs Washington (Eagle r1)\n");
  std::printf("%-12s %8s | %16s | %16s | %8s\n", "predicates", "qubits",
              "auckland median", "washington median", "ratio");
  for (int p = 0; p <= 3; ++p) {
    auto circuit = BuildInstanceCircuit(p, 1.0);
    if (!circuit.ok()) continue;
    const Summary a = DepthDistribution(*circuit, auckland, transpilations);
    const Summary w = DepthDistribution(*circuit, washington, transpilations);
    std::printf("%-12d %8d | %16.0f | %16.0f | %7.2fx\n", p,
                circuit->num_qubits(), a.median, w.median, w.median / a.median);
  }

  std::printf("\n[coherence] feasible depth bound d = min(T1,T2)/g_avg\n");
  for (const DeviceProperties& d :
       {IbmAucklandProperties(), IbmWashingtonProperties()}) {
    std::printf("%-16s T1=%.2fus T2=%.2fus g_avg=%.2fns -> max depth %d\n",
                d.name.c_str(), d.t1_us, d.t2_us, d.avg_gate_time_ns,
                d.MaxFeasibleDepth());
  }
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

// Classical baseline ablation (not a paper table; the paper deliberately
// skips classical comparisons, following McGeoch's guidelines): cost
// quality and runtime of exhaustive, DP, greedy, and iterative-improvement
// join ordering on random queries — the oracles used to label "optimal"
// quantum samples in Tables 2/3.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "jo/classical.h"
#include "jo/query_generator.h"
#include "util/random.h"

namespace qjo {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Run() {
  bench::Banner("Extra", "classical join-ordering baselines");
  const int instances = bench::Scaled(10, 3);

  std::printf("\n%6s %-8s | %12s | %14s %14s | %10s %10s\n", "T", "graph",
              "dp-time[ms]", "greedy/dp", "ii/dp", "greedy-opt%", "ii-opt%");
  for (QueryGraphType type : {QueryGraphType::kChain, QueryGraphType::kStar,
                              QueryGraphType::kCycle}) {
    for (int t : {5, 8, 11, 14, 17, 20}) {
      double dp_time = 0.0;
      double greedy_ratio = 0.0, ii_ratio = 0.0;
      int greedy_optimal = 0, ii_optimal = 0;
      int completed = 0;
      for (int i = 0; i < instances; ++i) {
        Rng rng(1000 * t + i);
        QueryGenOptions gen;
        gen.num_relations = t;
        gen.graph_type = type;
        auto query = GenerateQuery(gen, rng);
        if (!query.ok()) continue;
        const auto start = std::chrono::steady_clock::now();
        auto dp = OptimizeDp(*query);
        dp_time += Seconds(start);
        auto greedy = OptimizeGreedy(*query);
        Rng ii_rng(i);
        auto ii = OptimizeIterativeImprovement(*query, ii_rng, 10);
        if (!dp.ok() || !greedy.ok() || !ii.ok()) continue;
        greedy_ratio += greedy->cost / dp->cost;
        ii_ratio += ii->cost / dp->cost;
        if (greedy->cost <= dp->cost * (1 + 1e-9)) ++greedy_optimal;
        if (ii->cost <= dp->cost * (1 + 1e-9)) ++ii_optimal;
        ++completed;
      }
      if (completed == 0) continue;
      std::printf("%6d %-8s | %12.2f | %14.2f %14.2f | %9.0f%% %9.0f%%\n", t,
                  QueryGraphTypeName(type), 1000.0 * dp_time / completed,
                  greedy_ratio / completed, ii_ratio / completed,
                  100.0 * greedy_optimal / completed,
                  100.0 * ii_optimal / completed);
    }
  }

  std::printf("\n[sanity] exhaustive == DP on small instances:\n");
  int agreements = 0, total = 0;
  for (int i = 0; i < instances; ++i) {
    Rng rng(31 + i);
    QueryGenOptions gen;
    gen.num_relations = 7;
    gen.graph_type = QueryGraphType::kCycle;
    auto query = GenerateQuery(gen, rng);
    if (!query.ok()) continue;
    auto exhaustive = OptimizeExhaustive(*query);
    auto dp = OptimizeDp(*query);
    if (!exhaustive.ok() || !dp.ok()) continue;
    ++total;
    if (std::abs(exhaustive->cost - dp->cost) <=
        1e-9 * std::max(1.0, exhaustive->cost)) {
      ++agreements;
    }
  }
  std::printf("%d/%d instances agree\n", agreements, total);
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

// Reproduces Fig. 4: Theorem 5.3 upper bounds on the number of logical
// qubits for JO problems with up to 64 relations, across threshold counts
// (approximation precision) and discretisation precisions, measured on
// cyclic query graphs (the worst case among the paper's shapes).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "codesign/qubit_bound.h"
#include "jo/query_generator.h"
#include "util/random.h"

namespace qjo {
namespace {

void Run() {
  bench::Banner("Figure 4", "logical qubit upper bounds (Theorem 5.3)");
  bench::PaperNote(
      "bound scales quadratically in relations (dominating factor); "
      "precision shifts it by up to ~50%; 60-relation problems need >20k "
      "qubits; ~1000 logical qubits cover up to ~13 relations");

  const std::vector<int> relation_counts = {3, 4, 6, 8, 13, 16,
                                            24, 32, 48, 60, 64};
  const std::vector<int> threshold_counts = {1, 2, 5, 10};
  const std::vector<double> omegas = {1.0, 0.01, 0.0001};

  for (double omega : omegas) {
    std::printf("\nomega = %g (discretisation precision)\n", omega);
    std::printf("%10s |", "relations");
    for (int r : threshold_counts) std::printf(" %9s=%-2d", "R", r);
    std::printf("\n");
    Rng rng(21);
    for (int t : relation_counts) {
      QueryGenOptions gen;
      gen.num_relations = t;
      gen.graph_type = QueryGraphType::kCycle;
      gen.min_log_card = 2.0;
      gen.max_log_card = 4.0;
      auto query = GenerateQuery(gen, rng);
      if (!query.ok()) continue;
      std::printf("%10d |", t);
      for (int r : threshold_counts) {
        auto bound = QubitUpperBound(*query, r, omega);
        std::printf(" %12d", bound.ok() ? *bound : -1);
      }
      std::printf("\n");
    }
  }

  std::printf("\n[capacity] largest T whose bound fits a QPU budget "
              "(cycle queries, R=2):\n");
  Rng rng(22);
  for (double omega : omegas) {
    for (int budget : {27, 127, 1000, 5000, 20000}) {
      int best_t = 0;
      for (int t = 3; t <= 80; ++t) {
        QueryGenOptions gen;
        gen.num_relations = t;
        gen.graph_type = QueryGraphType::kCycle;
        gen.min_log_card = 2.0;
        gen.max_log_card = 4.0;
        Rng local(500 + t);
        auto query = GenerateQuery(gen, local);
        if (!query.ok()) break;
        auto bound = QubitUpperBound(*query, 2, omega);
        if (!bound.ok() || *bound > budget) break;
        best_t = t;
      }
      std::printf("omega=%-7g budget=%6d qubits -> up to %2d relations\n",
                  omega, budget, best_t);
    }
  }
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

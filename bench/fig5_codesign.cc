// Reproduces Fig. 5: QAOA circuit depths on hypothetical future QPUs —
// IBM heavy-hex and Rigetti Aspen topologies extrapolated in size and
// edge density (d in [0,1] interpolating to a complete mesh), native vs
// unrestricted gate sets, two transpilation strategies, and the IonQ
// complete-mesh baseline.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "circuit/qaoa_builder.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "topology/density.h"
#include "topology/vendor_topologies.h"
#include "transpiler/transpiler.h"
#include "util/stats.h"

namespace qjo {
namespace {

StatusOr<QuantumCircuit> BuildJoQaoaCircuit(int relations, uint64_t seed) {
  Rng rng(seed);
  QueryGenOptions gen;
  gen.num_relations = relations;
  gen.graph_type = QueryGraphType::kChain;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  QJO_ASSIGN_OR_RETURN(Query query, GenerateQuery(gen, rng));
  JoMilpOptions options;
  options.thresholds = MakeGeometricThresholds(query, 2);  // two thresholds
  QJO_ASSIGN_OR_RETURN(JoMilpModel milp, EncodeJoAsMilp(query, options));
  QJO_ASSIGN_OR_RETURN(BilpModel bilp, LowerToBilp(milp.model(), 1.0));
  QJO_ASSIGN_OR_RETURN(QuboEncoding encoding,
                       ConvertBilpToQubo(bilp, QuboConversionOptions{}));
  return BuildQaoaCircuit(encoding.qubo, QaoaParameters{{0.1}, {0.2}});
}

double MedianDepth(const QuantumCircuit& logical, const CouplingGraph& device,
                   NativeGateSet gate_set, RoutingStrategy routing, int reps) {
  std::vector<double> depths;
  for (int rep = 0; rep < reps; ++rep) {
    TranspileOptions options;
    options.gate_set = gate_set;
    options.routing = routing;
    options.seed = 7000 + rep;
    auto result = Transpile(logical, device, options);
    if (result.ok()) depths.push_back(result->depth);
  }
  if (depths.empty()) return -1.0;
  return Quantile(depths, 0.5);
}

void Run() {
  const int reps = bench::Scaled(3, 1);
  const std::vector<int> relation_counts =
      bench::Scale() >= 2.0 ? std::vector<int>{4, 6, 8, 10}
                            : std::vector<int>{4, 6, 8};
  bench::Banner("Figure 5", "circuit depths on extrapolated QPU topologies");
  bench::PaperNote(
      "baseline (d=0) depth grows steeply (log scale in the paper); even "
      "d=0.05-0.1 cuts depth by up to an order of magnitude on IBM; "
      "native-gate transpilation hurts Rigetti much more than IBM; the "
      "basic router carries ~2x overhead over lookahead (the tket-vs-"
      "qiskit gap); IonQ's full mesh is depth-ideal but qubit-limited");

  const std::vector<double> densities = {0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0};

  for (int relations : relation_counts) {
    auto logical = BuildJoQaoaCircuit(relations, 40 + relations);
    if (!logical.ok()) continue;
    const int n = logical->num_qubits();
    std::printf("\n--- %d relations -> %d logical qubits, %d gates ---\n",
                relations, n, logical->num_gates());

    for (const char* vendor : {"ibm", "rigetti"}) {
      const bool is_ibm = vendor[0] == 'i';
      const CouplingGraph base =
          is_ibm ? MakeIbmHeavyHexAtLeast(n) : MakeRigettiAspenAtLeast(n);
      const NativeGateSet native =
          is_ibm ? NativeGateSet::kIbm : NativeGateSet::kRigetti;
      std::printf("%-8s (%d qubits) %-12s |", vendor, base.num_qubits(),
                  "density:");
      for (double d : densities) std::printf(" %8.2f", d);
      std::printf("\n");
      for (NativeGateSet gate_set : {native, NativeGateSet::kUnrestricted}) {
        std::printf("%-8s %-25s |", vendor,
                    gate_set == native ? "native, lookahead"
                                       : "unrestricted, lookahead");
        for (double d : densities) {
          Rng density_rng(17);
          auto device = ExtrapolateDensity(base, d, density_rng);
          if (!device.ok()) {
            std::printf(" %8s", "-");
            continue;
          }
          std::printf(" %8.0f",
                      MedianDepth(*logical, *device, gate_set,
                                  RoutingStrategy::kLookahead, reps));
        }
        std::printf("\n");
      }
      // Router comparison at the interesting low densities.
      std::printf("%-8s %-25s |", vendor, "native, basic router");
      for (double d : densities) {
        if (d > 0.1 + 1e-9) {
          std::printf(" %8s", ".");
          continue;
        }
        Rng density_rng(17);
        auto device = ExtrapolateDensity(base, d, density_rng);
        if (!device.ok()) {
          std::printf(" %8s", "-");
          continue;
        }
        std::printf(" %8.0f",
                    MedianDepth(*logical, *device, native,
                                RoutingStrategy::kBasic, reps));
      }
      std::printf("\n");
    }

    // IonQ: complete mesh at exactly the needed size.
    const CouplingGraph ionq = MakeCompleteGraph(n);
    std::printf("%-8s %-25s | native %8.0f | unrestricted %8.0f\n", "ionq",
                "(complete mesh)",
                MedianDepth(*logical, ionq, NativeGateSet::kIonq,
                            RoutingStrategy::kLookahead, reps),
                MedianDepth(*logical, ionq, NativeGateSet::kUnrestricted,
                            RoutingStrategy::kLookahead, reps));
  }
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

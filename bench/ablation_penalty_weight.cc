// Ablation: the paper's penalty-weight rule A = C/omega^2 + epsilon
// (Sec. 3.4) versus weaker and stronger choices. Too small an A lets the
// QUBO minimum violate BILP constraints; unnecessarily large A wastes the
// limited coupling resolution of physical annealers (quantified here as
// the dynamic range max|coeff|/min|coeff| the hardware must resolve).

#include <cstdio>

#include "bench/bench_common.h"
#include "jo/query.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "qubo/solvers.h"

namespace qjo {
namespace {

void Run() {
  bench::Banner("Ablation", "penalty weight A vs solution validity");
  bench::PaperNote(
      "the paper picks the smallest A for which the minimum-energy state "
      "must be BILP-feasible; larger A is wasted coupler resolution "
      "(annealers have limited parameter precision, Sec. 3.4)");

  // No predicates: every order's intermediate result exceeds theta_0, so
  // the feasible optimum costs 10 — and a weak penalty makes it cheaper
  // to violate the leaf constraints than to pay that objective.
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 10);
  JoMilpOptions options;
  options.thresholds = {10.0};
  auto milp = EncodeJoAsMilp(q, options);
  if (!milp.ok()) return;
  auto bilp = LowerToBilp(milp->model(), 1.0);
  if (!bilp.ok()) return;

  // The paper rule for this instance: C = 10 (one cto at theta=10).
  QuboConversionOptions paper_rule;
  auto paper_encoding = ConvertBilpToQubo(*bilp, paper_rule);
  if (!paper_encoding.ok()) return;
  const double a_star = paper_encoding->penalty_weight;
  std::printf("\npaper rule: A* = C/omega^2 + eps = %.1f\n\n", a_star);
  std::printf("%12s | %10s | %12s | %14s\n", "A", "feasible?", "energy",
              "dynamic range");
  for (double factor : {0.01, 0.1, 0.5, 1.0, 10.0, 100.0}) {
    QuboConversionOptions opts;
    opts.penalty_weight_override = a_star * factor;
    auto encoding = ConvertBilpToQubo(*bilp, opts);
    if (!encoding.ok()) continue;
    auto ground = SolveQuboBruteForce(encoding->qubo);
    if (!ground.ok()) continue;
    // Dynamic range: ratio of largest to smallest non-zero |coefficient|.
    double max_abs = 0.0, min_abs = 1e300;
    for (int i = 0; i < encoding->qubo.num_variables(); ++i) {
      const double v = std::abs(encoding->qubo.linear(i));
      if (v > 0) {
        max_abs = std::max(max_abs, v);
        min_abs = std::min(min_abs, v);
      }
    }
    for (const auto& [i, j, w] : encoding->qubo.QuadraticTerms()) {
      (void)i;
      (void)j;
      max_abs = std::max(max_abs, std::abs(w));
      min_abs = std::min(min_abs, std::abs(w));
    }
    std::printf("%9.2f*A* | %10s | %12.2f | %14.0f\n", factor,
                bilp->IsFeasible(ground->assignment) ? "yes" : "NO",
                ground->energy, max_abs / min_abs);
  }
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

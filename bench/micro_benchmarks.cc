// Google-benchmark microbenchmarks for the performance-critical substrate
// operations: QUBO energy evaluation, state-vector gate application, QAOA
// cost-spectrum construction, SWAP routing, SQA sweeps, Pegasus
// construction, and the parallel read loops of the stochastic solvers
// (items/sec = reads/sec; the per-read fan-out is the paper's classical
// sampling bottleneck).
//
// On top of the google-benchmark registrations, a hand-rolled kernel
// suite times the reference/incremental/batched annealing kernels and
// the serial-vs-pooled 2^n simulator loops and writes the numbers to
// BENCH_kernels.json (machine-readable evidence for the kernel rework).
// The suite exits nonzero when a batched kernel breaks its bit-identity
// contract against the incremental one, so the ctest smoke doubles as a
// correctness gate. Run with --kernels_only to skip the google-benchmark
// part; set QJO_KERNEL_BENCH_FAST=1 for the quick ctest smoke
// configuration and QJO_BENCH_KERNELS_JSON to redirect the output file.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "circuit/qaoa_builder.h"
#include "core/quantum_optimizer.h"
#include "obs/obs.h"
#include "embedding/minor_embedding.h"
#include "jo/query_generator.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "qubo/solvers.h"
#include "sim/qaoa_simulator.h"
#include "sim/sqa.h"
#include "sim/statevector.h"
#include "topology/vendor_topologies.h"
#include "transpiler/transpiler.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

Qubo MakeRandomQubo(int n, double edge_probability, uint64_t seed) {
  Rng rng(seed);
  Qubo q(n);
  for (int i = 0; i < n; ++i) {
    q.AddLinear(i, rng.UniformDouble(-2, 2));
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(edge_probability)) {
        q.AddQuadratic(i, j, rng.UniformDouble(-2, 2));
      }
    }
  }
  return q;
}

void BM_QuboEnergy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Qubo qubo = MakeRandomQubo(n, 0.3, 1);
  Rng rng(2);
  std::vector<int> bits(n);
  for (auto& b : bits) b = rng.Bernoulli(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qubo.Energy(bits));
  }
}
BENCHMARK(BM_QuboEnergy)->Arg(32)->Arg(128)->Arg(512);

void BM_QuboBruteForce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Qubo qubo = MakeRandomQubo(n, 0.3, 3);
  for (auto _ : state) {
    auto result = SolveQuboBruteForce(qubo);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_QuboBruteForce)->Arg(12)->Arg(16)->Arg(20);

void BM_StateVectorLayer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto sv = StateVector::Create(n);
  for (auto _ : state) {
    for (int q = 0; q < n; ++q) sv->Apply(Gate::Single(GateType::kRx, q, 0.3));
  }
  state.SetItemsProcessed(state.iterations() * n * (uint64_t{1} << n));
}
BENCHMARK(BM_StateVectorLayer)->Arg(10)->Arg(14)->Arg(18);

void BM_QaoaCostSpectrum(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(n, 0.3, 4));
  for (auto _ : state) {
    auto sim = QaoaSimulator::Create(ising);
    benchmark::DoNotOptimize(sim);
  }
}
BENCHMARK(BM_QaoaCostSpectrum)->Arg(12)->Arg(16)->Arg(20);

void BM_QaoaRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(n, 0.3, 5));
  auto sim = QaoaSimulator::Create(ising);
  QaoaParameters params{{0.2}, {0.7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->Run(params));
  }
}
BENCHMARK(BM_QaoaRun)->Arg(12)->Arg(16)->Arg(20);

void BM_Transpile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(n, 0.3, 6));
  auto logical = BuildQaoaCircuit(ising, QaoaParameters{{0.1}, {0.2}});
  const CouplingGraph device = MakeIbmFalcon27();
  TranspileOptions options;
  options.gate_set = NativeGateSet::kIbm;
  uint64_t seed = 0;
  for (auto _ : state) {
    options.seed = ++seed;
    auto result = Transpile(*logical, device, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Transpile)->Arg(12)->Arg(20)->Arg(27);

void BM_SqaRead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(n, 0.2, 7));
  SqaOptions options;
  options.num_reads = 1;
  options.annealing_time_us = 20.0;
  Rng rng(8);
  for (auto _ : state) {
    auto samples = RunSqa(ising, options, rng);
    benchmark::DoNotOptimize(samples);
  }
}
BENCHMARK(BM_SqaRead)->Arg(32)->Arg(128)->Arg(512);

// --- Parallel solver runtime: reads/sec across parallelism levels. ---
// Every variant first checks that its sorted energies are bit-identical
// to the serial run — the determinism contract of the runtime — and
// fails the benchmark if not.

SaOptions MakeSaReadOptions(int parallelism) {
  SaOptions options;
  options.num_reads = 1000;
  options.sweeps_per_read = 64;
  options.control.parallelism = parallelism;
  return options;
}

void BM_SaReads(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const Qubo qubo = MakeRandomQubo(64, 0.2, 11);
  static const std::vector<double> kSerialEnergies = [] {
    const Qubo reference_qubo = MakeRandomQubo(64, 0.2, 11);
    Rng rng(21);
    const auto reads =
        SolveQuboSimulatedAnnealing(reference_qubo, MakeSaReadOptions(1), rng);
    std::vector<double> energies;
    for (const auto& read : reads) energies.push_back(read.energy);
    return energies;
  }();
  const SaOptions options = MakeSaReadOptions(parallelism);
  {
    Rng rng(21);
    const auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
    for (size_t i = 0; i < reads.size(); ++i) {
      if (reads[i].energy != kSerialEnergies[i]) {
        state.SkipWithError("energies not bit-identical to serial run");
        return;
      }
    }
  }
  for (auto _ : state) {
    Rng rng(21);
    auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
    benchmark::DoNotOptimize(reads);
  }
  state.SetItemsProcessed(state.iterations() * options.num_reads);
}
BENCHMARK(BM_SaReads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_TabuRestarts(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const Qubo qubo = MakeRandomQubo(64, 0.2, 13);
  TabuOptions options;
  options.num_restarts = 64;
  options.iterations_per_restart = 400;
  options.control.parallelism = parallelism;
  for (auto _ : state) {
    Rng rng(23);
    auto restarts = SolveQuboTabuSearch(qubo, options, rng);
    benchmark::DoNotOptimize(restarts);
  }
  state.SetItemsProcessed(state.iterations() * options.num_restarts);
}
BENCHMARK(BM_TabuRestarts)->Arg(1)->Arg(8)->UseRealTime();

void BM_SqaReadsParallel(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(96, 0.15, 17));
  SqaOptions options;
  options.num_reads = 64;
  options.annealing_time_us = 10.0;
  options.sweeps_per_us = 3.0;
  options.trotter_slices = 8;
  options.ice_sigma = 0.015;
  options.control.parallelism = parallelism;
  for (auto _ : state) {
    Rng rng(27);
    auto samples = RunSqa(ising, options, rng);
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(state.iterations() * options.num_reads);
}
BENCHMARK(BM_SqaReadsParallel)->Arg(1)->Arg(8)->UseRealTime();

void BM_JoinOrderBatch(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  std::vector<Query> queries;
  for (int q = 0; q < 8; ++q) {
    Rng gen_rng(700 + q);
    QueryGenOptions gen;
    gen.num_relations = 4;
    gen.graph_type = QueryGraphType::kChain;
    gen.min_log_card = 1.0;
    gen.max_log_card = 2.0;
    auto query = GenerateQuery(gen, gen_rng);
    if (query.ok()) queries.push_back(*query);
  }
  QjoConfig config;
  config.backend = QjoBackend::kSimulatedAnnealing;
  config.shots = 512;
  config.seed = 29;
  bench::ObsSession::Get().Apply(config);
  for (auto _ : state) {
    auto reports = OptimizeJoinOrderBatch(queries, config, parallelism);
    benchmark::DoNotOptimize(reports);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_JoinOrderBatch)->Arg(1)->Arg(8)->UseRealTime();

void BM_PegasusConstruction(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto g = MakePegasus(m);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_PegasusConstruction)->Arg(4)->Arg(8)->Arg(16);

void BM_MinorEmbedding(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < k; ++i)
    for (int j = i + 1; j < k; ++j) edges.emplace_back(i, j);
  auto target = MakePegasus(4);
  EmbeddingOptions options;
  options.tries = 1;
  Rng rng(9);
  for (auto _ : state) {
    auto e = FindMinorEmbedding(edges, k, *target, options, rng);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_MinorEmbedding)->Arg(4)->Arg(8)->Arg(12);

// --- Hand-rolled kernel suite: BENCH_kernels.json -------------------------

/// Best-of-`repeats` wall time of fn(), in seconds.
template <typename Fn>
double BestSeconds(Fn&& fn, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct KernelMetric {
  std::string name;
  double value;
};

int RunKernelBenchSuite() {
  const bool fast = std::getenv("QJO_KERNEL_BENCH_FAST") != nullptr;
  int parallelism = static_cast<int>(std::thread::hardware_concurrency());
  if (const char* p = std::getenv("QJO_BENCH_PARALLELISM")) {
    parallelism = std::atoi(p);
  }
  parallelism = std::max(parallelism, 2);
  const int repeats = fast ? 2 : 3;
  std::vector<KernelMetric> metrics;
  metrics.push_back({"parallelism", static_cast<double>(parallelism)});
  metrics.push_back(
      {"bench_hw_concurrency",
       static_cast<double>(std::thread::hardware_concurrency())});
  // SIMD tier the dispatched kernels run on: 0 scalar, 1 sse2, 2 avx2,
  // 3 avx512 (host-resolved, capped by QJO_SIMD).
  metrics.push_back(
      {"simd_isa", static_cast<double>(static_cast<int>(Simd().isa))});
  metrics.push_back({"fast_mode", fast ? 1.0 : 0.0});
  double sink = 0.0;  // keeps the timed work observable

  // SA proposals/sec on a fully dense QUBO: the O(degree) reference scan
  // vs incremental local fields vs the SoA replica-batched SIMD kernel.
  // The batched numbers only count if the kernel honours its contract, so
  // the suite first checks its reads bit-identical to the incremental
  // ones and fails (nonzero exit) on any mismatch.
  {
    const int n = 128;
    const int reads = fast ? 4 : 16;
    const int sweeps = fast ? 30 : 200;
    const Qubo qubo = MakeRandomQubo(n, 1.0, 31);
    qubo.Csr();  // build the CSR outside the timed region
    const double proposals =
        static_cast<double>(reads) * sweeps * n;
    const auto solve = [&](SolverKernel kernel) {
      SaOptions options;
      options.num_reads = reads;
      options.sweeps_per_read = sweeps;
      options.kernel = kernel;
      Rng rng(33);
      return SolveQuboSimulatedAnnealing(qubo, options, rng);
    };
    {
      const auto incremental = solve(SolverKernel::kIncremental);
      const auto batched = solve(SolverKernel::kBatched);
      for (size_t i = 0; i < incremental.size(); ++i) {
        if (batched[i].energy != incremental[i].energy ||
            batched[i].assignment != incremental[i].assignment) {
          std::cerr << "kernel bench suite: batched SA reads are not "
                       "bit-identical to the incremental kernel\n";
          return 1;
        }
      }
    }
    const auto time_kernel = [&](SolverKernel kernel) {
      return BestSeconds([&] { sink += solve(kernel).front().energy; },
                         repeats);
    };
    const double t_ref = time_kernel(SolverKernel::kReference);
    const double t_inc = time_kernel(SolverKernel::kIncremental);
    const double t_bat = time_kernel(SolverKernel::kBatched);
    metrics.push_back({"sa_dense_n", static_cast<double>(n)});
    metrics.push_back({"sa_proposals_per_sec_reference", proposals / t_ref});
    metrics.push_back({"sa_proposals_per_sec_incremental", proposals / t_inc});
    metrics.push_back({"sa_proposals_per_sec_batched", proposals / t_bat});
    metrics.push_back(
        {"sa_batched_replicas_per_sec", static_cast<double>(reads) / t_bat});
    metrics.push_back({"sa_incremental_speedup", t_ref / t_inc});
    metrics.push_back({"sa_batched_speedup", t_inc / t_bat});
  }

  // Tabu move rate under the same comparison (each move re-reads all n
  // deltas; the incremental kernel serves them from the field cache).
  {
    const int n = 128;
    const int restarts = fast ? 2 : 6;
    const int iterations = fast ? 60 : 300;
    const Qubo qubo = MakeRandomQubo(n, 1.0, 37);
    qubo.Csr();
    const double moves = static_cast<double>(restarts) * iterations;
    const auto time_kernel = [&](SolverKernel kernel) {
      return BestSeconds(
          [&] {
            TabuOptions options;
            options.num_restarts = restarts;
            options.iterations_per_restart = iterations;
            options.kernel = kernel;
            Rng rng(41);
            sink += SolveQuboTabuSearch(qubo, options, rng).front().energy;
          },
          repeats);
    };
    const double t_ref = time_kernel(SolverKernel::kReference);
    const double t_inc = time_kernel(SolverKernel::kIncremental);
    metrics.push_back({"tabu_moves_per_sec_reference", moves / t_ref});
    metrics.push_back({"tabu_moves_per_sec_incremental", moves / t_inc});
    metrics.push_back({"tabu_incremental_speedup", t_ref / t_inc});
  }

  // SQA per-slice spin updates/sec across the three kernels, with the
  // same bit-identity gate on the batched one.
  {
    const int n = 96;
    const IsingModel ising = QuboToIsing(MakeRandomQubo(n, 0.5, 43));
    SqaOptions base;
    base.num_reads = fast ? 4 : 16;
    base.annealing_time_us = fast ? 5.0 : 10.0;
    base.sweeps_per_us = 2.0;
    base.trotter_slices = 8;
    base.ice_sigma = 0.015;
    const int sweeps = std::max(
        8, static_cast<int>(base.annealing_time_us * base.sweeps_per_us));
    const double updates = static_cast<double>(base.num_reads) * sweeps *
                           base.trotter_slices * n;
    const auto solve = [&](SolverKernel kernel) {
      SqaOptions options = base;
      options.kernel = kernel;
      Rng rng(47);
      return RunSqa(ising, options, rng);
    };
    {
      const auto incremental = solve(SolverKernel::kIncremental);
      const auto batched = solve(SolverKernel::kBatched);
      for (size_t i = 0; i < incremental->size(); ++i) {
        if ((*batched)[i].energy != (*incremental)[i].energy ||
            (*batched)[i].spins != (*incremental)[i].spins) {
          std::cerr << "kernel bench suite: batched SQA samples are not "
                       "bit-identical to the incremental kernel\n";
          return 1;
        }
      }
    }
    const auto time_kernel = [&](SolverKernel kernel) {
      return BestSeconds([&] { sink += solve(kernel)->front().energy; },
                         repeats);
    };
    const double t_ref = time_kernel(SolverKernel::kReference);
    const double t_inc = time_kernel(SolverKernel::kIncremental);
    const double t_bat = time_kernel(SolverKernel::kBatched);
    metrics.push_back({"sqa_spin_updates_per_sec_reference", updates / t_ref});
    metrics.push_back(
        {"sqa_spin_updates_per_sec_incremental", updates / t_inc});
    metrics.push_back({"sqa_batched_spin_updates_per_sec", updates / t_bat});
    metrics.push_back({"sqa_incremental_speedup", t_ref / t_inc});
    metrics.push_back({"sqa_batched_speedup", t_inc / t_bat});
  }

  // QAOA 2^n loops, serial vs pooled, at the paper-scale qubit count.
  {
    const int nq = fast ? 16 : 20;
    const IsingModel ising = QuboToIsing(MakeRandomQubo(nq, 0.3, 53));
    auto sim = QaoaSimulator::Create(ising);
    QaoaParameters params;
    params.gammas = {0.2};
    params.betas = {0.7};
    // Amplitudes touched per Run: cost phase + nq mixer butterflies +
    // the expectation reduction, each a full 2^nq sweep.
    const double amplitudes =
        static_cast<double>(uint64_t{1} << nq) * (nq + 2);
    const double t_serial =
        BestSeconds([&] { sink += sim->Run(params); }, repeats);
    ThreadPool pool(parallelism);
    sim->set_pool(&pool);
    const double t_parallel =
        BestSeconds([&] { sink += sim->Run(params); }, repeats);
    metrics.push_back({"qaoa_qubits", static_cast<double>(nq)});
    metrics.push_back({"qaoa_amplitudes_per_sec_serial", amplitudes / t_serial});
    metrics.push_back(
        {"qaoa_amplitudes_per_sec_parallel", amplitudes / t_parallel});
    metrics.push_back({"qaoa_parallel_speedup", t_serial / t_parallel});
  }

  // SA reads/sec through the pooled per-read fan-out (end-to-end rate the
  // paper's sampling experiments consume). The pool is created once,
  // outside the timed region, and shared across the timed calls via
  // `control.pool` — per-call pool construction/teardown is bench
  // harness overhead, not solver throughput, and on small hosts it used
  // to eat the whole pooled gain. The batched kernel's group fan-out
  // also keeps ~16 reads per task, so dispatch amortises even when the
  // thread count oversubscribes the host.
  {
    const int n = 96;
    const int reads = fast ? 16 : 64;
    const int pool_repeats = fast ? 3 : 7;
    const Qubo qubo = MakeRandomQubo(n, 0.3, 59);
    qubo.Csr();
    ThreadPool pool(parallelism);
    const auto time_reads = [&](int threads) {
      return BestSeconds(
          [&] {
            SaOptions options;
            options.num_reads = reads;
            options.sweeps_per_read = fast ? 32 : 64;
            options.control.parallelism = threads;
            if (threads > 1) options.control.pool = &pool;
            Rng rng(61);
            sink += SolveQuboSimulatedAnnealing(qubo, options, rng)
                        .front()
                        .energy;
          },
          pool_repeats);
    };
    metrics.push_back({"sa_reads_per_sec_serial", reads / time_reads(1)});
    metrics.push_back(
        {"sa_reads_per_sec_parallel", reads / time_reads(parallelism)});
  }

  const char* json_path = std::getenv("QJO_BENCH_KERNELS_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_kernels.json";
  std::ofstream out(path);
  out << "{\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << "  \"" << metrics[i].name << "\": " << metrics[i].value
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "}\n";
  out.close();

  std::cout << "kernel bench suite (" << (fast ? "fast" : "full")
            << " mode), sink=" << sink << ":\n";
  for (const KernelMetric& m : metrics) {
    std::cout << "  " << m.name << " = " << m.value << "\n";
  }
  std::cout << "wrote " << path << std::endl;
  return 0;
}

// --- Observability overhead suite: BENCH_obs_overhead.json ---------------
//
// Gates the "< 1% when disabled" budget of the obs layer. A truly
// uninstrumented binary does not exist any more, so the null-sink cost
// is bounded from primitives: the measured ns/op of a disabled StageSpan
// times the number of null-sink sites a solver run executes, as a
// fraction of the run's wall time. The attached-sink overhead is also
// measured (informational — attached runs pay for real clock reads), and
// attached results are checked bit-identical to null-sink results.
// Returns nonzero (failing the ctest smoke) when the estimated null-sink
// overhead exceeds 5%.
int RunObsOverheadSuite() {
  const bool fast = std::getenv("QJO_KERNEL_BENCH_FAST") != nullptr ||
                    std::getenv("QJO_OBS_BENCH_FAST") != nullptr;
  const int repeats = fast ? 3 : 5;
  std::vector<KernelMetric> metrics_out;
  metrics_out.push_back(
      {"simd_isa", static_cast<double>(static_cast<int>(Simd().isa))});
  metrics_out.push_back({"fast_mode", fast ? 1.0 : 0.0});
  // The overhead workload is deliberately serial; emitted so the suite
  // satisfies the common bench schema (tools/check_bench_schema.py).
  metrics_out.push_back({"parallelism", 1.0});

  // 1. Disabled-primitive cost: a StageSpan with both sinks null must
  // compile down to a couple of branches. DoNotOptimize keeps the loop
  // from being deleted wholesale.
  const int64_t span_ops = fast ? (int64_t{1} << 20) : (int64_t{1} << 22);
  const double span_seconds = BestSeconds(
      [&] {
        for (int64_t i = 0; i < span_ops; ++i) {
          StageSpan span(nullptr, "noop");
          benchmark::DoNotOptimize(&span);
        }
      },
      repeats);
  const double null_span_ns =
      span_seconds / static_cast<double>(span_ops) * 1e9;
  metrics_out.push_back({"null_span_ns", null_span_ns});

  // 2. SA workload, null sinks vs attached sinks, with a bit-identity
  // check between the two.
  const int n = 96;
  const int reads = fast ? 8 : 32;
  const int sweeps = fast ? 48 : 96;
  const Qubo qubo = MakeRandomQubo(n, 0.3, 67);
  qubo.Csr();
  const auto run_sa = [&](TraceRecorder* trace,
                          MetricsRegistry* metrics) {
    SaOptions options;
    options.num_reads = reads;
    options.sweeps_per_read = sweeps;
    options.control.trace = trace;
    options.control.metrics = metrics;
    Rng rng(71);
    return SolveQuboSimulatedAnnealing(qubo, options, rng);
  };
  const std::vector<QuboSolution> null_reads = run_sa(nullptr, nullptr);
  {
    TraceRecorder trace;
    MetricsRegistry metrics;
    const std::vector<QuboSolution> traced_reads = run_sa(&trace, &metrics);
    for (size_t i = 0; i < null_reads.size(); ++i) {
      if (traced_reads[i].energy != null_reads[i].energy ||
          traced_reads[i].assignment != null_reads[i].assignment) {
        std::cerr << "obs overhead suite: traced SA run is not "
                     "bit-identical to the null-sink run\n";
        return 1;
      }
    }
  }
  double sink = 0.0;
  const double t_null = BestSeconds(
      [&] { sink += run_sa(nullptr, nullptr).front().energy; }, repeats);
  double t_attached;
  {
    TraceRecorder trace;
    MetricsRegistry metrics;
    t_attached = BestSeconds(
        [&] { sink += run_sa(&trace, &metrics).front().energy; }, repeats);
  }
  metrics_out.push_back({"sa_solve_seconds_null", t_null});
  metrics_out.push_back({"sa_solve_seconds_attached", t_attached});
  metrics_out.push_back(
      {"attached_overhead_fraction", t_attached / t_null - 1.0});

  // 3. Null-sink overhead estimate: per run the solver executes one
  // solve-level span, one span per read, and one guarded metrics flush
  // per read (the per-sweep/per-proposal paths only touch locals). Count
  // the flush guard as another span-sized site to stay conservative.
  const double null_sites = 1.0 + 2.0 * static_cast<double>(reads);
  const double estimated_null_overhead =
      null_sites * null_span_ns * 1e-9 / t_null;
  metrics_out.push_back(
      {"estimated_null_overhead_fraction", estimated_null_overhead});

  const char* json_path = std::getenv("QJO_OBS_OVERHEAD_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_obs_overhead.json";
  std::ofstream out(path);
  out << "{\n";
  for (size_t i = 0; i < metrics_out.size(); ++i) {
    out << "  \"" << metrics_out[i].name << "\": " << metrics_out[i].value
        << (i + 1 < metrics_out.size() ? "," : "") << "\n";
  }
  out << "}\n";
  out.close();

  std::cout << "obs overhead suite (" << (fast ? "fast" : "full")
            << " mode), sink=" << sink << ":\n";
  for (const KernelMetric& m : metrics_out) {
    std::cout << "  " << m.name << " = " << m.value << "\n";
  }
  std::cout << "wrote " << path << std::endl;

  if (estimated_null_overhead > 0.05) {
    std::cerr << "obs overhead suite: estimated null-sink overhead "
              << estimated_null_overhead * 100.0
              << "% exceeds the 5% regression gate\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace qjo

int main(int argc, char** argv) {
  bool kernels_only = false;
  bool obs_overhead_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--kernels_only") {
      kernels_only = true;
      continue;
    }
    if (std::string(argv[i]) == "--obs_overhead_only") {
      obs_overhead_only = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (obs_overhead_only) return qjo::RunObsOverheadSuite();
  const int obs_status = qjo::RunObsOverheadSuite();
  const int kernel_status = qjo::RunKernelBenchSuite();
  const int suite_status = obs_status != 0 ? obs_status : kernel_status;
  if (kernels_only) return suite_status;
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return suite_status;
}

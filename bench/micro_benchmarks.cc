// Google-benchmark microbenchmarks for the performance-critical substrate
// operations: QUBO energy evaluation, state-vector gate application, QAOA
// cost-spectrum construction, SWAP routing, SQA sweeps, Pegasus
// construction, and the parallel read loops of the stochastic solvers
// (items/sec = reads/sec; the per-read fan-out is the paper's classical
// sampling bottleneck).

#include <benchmark/benchmark.h>

#include <vector>

#include "circuit/qaoa_builder.h"
#include "core/quantum_optimizer.h"
#include "embedding/minor_embedding.h"
#include "jo/query_generator.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "qubo/solvers.h"
#include "sim/qaoa_simulator.h"
#include "sim/sqa.h"
#include "sim/statevector.h"
#include "topology/vendor_topologies.h"
#include "transpiler/transpiler.h"
#include "util/random.h"

namespace qjo {
namespace {

Qubo MakeRandomQubo(int n, double edge_probability, uint64_t seed) {
  Rng rng(seed);
  Qubo q(n);
  for (int i = 0; i < n; ++i) {
    q.AddLinear(i, rng.UniformDouble(-2, 2));
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(edge_probability)) {
        q.AddQuadratic(i, j, rng.UniformDouble(-2, 2));
      }
    }
  }
  return q;
}

void BM_QuboEnergy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Qubo qubo = MakeRandomQubo(n, 0.3, 1);
  Rng rng(2);
  std::vector<int> bits(n);
  for (auto& b : bits) b = rng.Bernoulli(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qubo.Energy(bits));
  }
}
BENCHMARK(BM_QuboEnergy)->Arg(32)->Arg(128)->Arg(512);

void BM_QuboBruteForce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Qubo qubo = MakeRandomQubo(n, 0.3, 3);
  for (auto _ : state) {
    auto result = SolveQuboBruteForce(qubo);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_QuboBruteForce)->Arg(12)->Arg(16)->Arg(20);

void BM_StateVectorLayer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto sv = StateVector::Create(n);
  for (auto _ : state) {
    for (int q = 0; q < n; ++q) sv->Apply(Gate::Single(GateType::kRx, q, 0.3));
  }
  state.SetItemsProcessed(state.iterations() * n * (uint64_t{1} << n));
}
BENCHMARK(BM_StateVectorLayer)->Arg(10)->Arg(14)->Arg(18);

void BM_QaoaCostSpectrum(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(n, 0.3, 4));
  for (auto _ : state) {
    auto sim = QaoaSimulator::Create(ising);
    benchmark::DoNotOptimize(sim);
  }
}
BENCHMARK(BM_QaoaCostSpectrum)->Arg(12)->Arg(16)->Arg(20);

void BM_QaoaRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(n, 0.3, 5));
  auto sim = QaoaSimulator::Create(ising);
  QaoaParameters params{{0.2}, {0.7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->Run(params));
  }
}
BENCHMARK(BM_QaoaRun)->Arg(12)->Arg(16)->Arg(20);

void BM_Transpile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(n, 0.3, 6));
  auto logical = BuildQaoaCircuit(ising, QaoaParameters{{0.1}, {0.2}});
  const CouplingGraph device = MakeIbmFalcon27();
  TranspileOptions options;
  options.gate_set = NativeGateSet::kIbm;
  uint64_t seed = 0;
  for (auto _ : state) {
    options.seed = ++seed;
    auto result = Transpile(*logical, device, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Transpile)->Arg(12)->Arg(20)->Arg(27);

void BM_SqaRead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(n, 0.2, 7));
  SqaOptions options;
  options.num_reads = 1;
  options.annealing_time_us = 20.0;
  Rng rng(8);
  for (auto _ : state) {
    auto samples = RunSqa(ising, options, rng);
    benchmark::DoNotOptimize(samples);
  }
}
BENCHMARK(BM_SqaRead)->Arg(32)->Arg(128)->Arg(512);

// --- Parallel solver runtime: reads/sec across parallelism levels. ---
// Every variant first checks that its sorted energies are bit-identical
// to the serial run — the determinism contract of the runtime — and
// fails the benchmark if not.

SaOptions MakeSaReadOptions(int parallelism) {
  SaOptions options;
  options.num_reads = 1000;
  options.sweeps_per_read = 64;
  options.parallelism = parallelism;
  return options;
}

void BM_SaReads(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const Qubo qubo = MakeRandomQubo(64, 0.2, 11);
  static const std::vector<double> kSerialEnergies = [] {
    const Qubo reference_qubo = MakeRandomQubo(64, 0.2, 11);
    Rng rng(21);
    const auto reads =
        SolveQuboSimulatedAnnealing(reference_qubo, MakeSaReadOptions(1), rng);
    std::vector<double> energies;
    for (const auto& read : reads) energies.push_back(read.energy);
    return energies;
  }();
  const SaOptions options = MakeSaReadOptions(parallelism);
  {
    Rng rng(21);
    const auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
    for (size_t i = 0; i < reads.size(); ++i) {
      if (reads[i].energy != kSerialEnergies[i]) {
        state.SkipWithError("energies not bit-identical to serial run");
        return;
      }
    }
  }
  for (auto _ : state) {
    Rng rng(21);
    auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
    benchmark::DoNotOptimize(reads);
  }
  state.SetItemsProcessed(state.iterations() * options.num_reads);
}
BENCHMARK(BM_SaReads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_TabuRestarts(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const Qubo qubo = MakeRandomQubo(64, 0.2, 13);
  TabuOptions options;
  options.num_restarts = 64;
  options.iterations_per_restart = 400;
  options.parallelism = parallelism;
  for (auto _ : state) {
    Rng rng(23);
    auto restarts = SolveQuboTabuSearch(qubo, options, rng);
    benchmark::DoNotOptimize(restarts);
  }
  state.SetItemsProcessed(state.iterations() * options.num_restarts);
}
BENCHMARK(BM_TabuRestarts)->Arg(1)->Arg(8)->UseRealTime();

void BM_SqaReadsParallel(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const IsingModel ising = QuboToIsing(MakeRandomQubo(96, 0.15, 17));
  SqaOptions options;
  options.num_reads = 64;
  options.annealing_time_us = 10.0;
  options.sweeps_per_us = 3.0;
  options.trotter_slices = 8;
  options.ice_sigma = 0.015;
  options.parallelism = parallelism;
  for (auto _ : state) {
    Rng rng(27);
    auto samples = RunSqa(ising, options, rng);
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(state.iterations() * options.num_reads);
}
BENCHMARK(BM_SqaReadsParallel)->Arg(1)->Arg(8)->UseRealTime();

void BM_JoinOrderBatch(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  std::vector<Query> queries;
  for (int q = 0; q < 8; ++q) {
    Rng gen_rng(700 + q);
    QueryGenOptions gen;
    gen.num_relations = 4;
    gen.graph_type = QueryGraphType::kChain;
    gen.min_log_card = 1.0;
    gen.max_log_card = 2.0;
    auto query = GenerateQuery(gen, gen_rng);
    if (query.ok()) queries.push_back(*query);
  }
  QjoConfig config;
  config.backend = QjoBackend::kSimulatedAnnealing;
  config.shots = 512;
  config.seed = 29;
  for (auto _ : state) {
    auto reports = OptimizeJoinOrderBatch(queries, config, parallelism);
    benchmark::DoNotOptimize(reports);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_JoinOrderBatch)->Arg(1)->Arg(8)->UseRealTime();

void BM_PegasusConstruction(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto g = MakePegasus(m);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_PegasusConstruction)->Arg(4)->Arg(8)->Arg(16);

void BM_MinorEmbedding(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < k; ++i)
    for (int j = i + 1; j < k; ++j) edges.emplace_back(i, j);
  auto target = MakePegasus(4);
  EmbeddingOptions options;
  options.tries = 1;
  Rng rng(9);
  for (auto _ : state) {
    auto e = FindMinorEmbedding(edges, k, *target, options, rng);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_MinorEmbedding)->Arg(4)->Arg(8)->Arg(12);

}  // namespace
}  // namespace qjo

BENCHMARK_MAIN();

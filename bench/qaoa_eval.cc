// Throughput benchmark for the fused QAOA evaluation path, the evidence
// artifact of the simulator fast-path rework (BENCH_qaoa.json):
//
//  - mixer amplitude updates/sec, fused cache-blocked kernel vs the
//    per-qubit reference sweeps;
//  - angle-grid evaluations/sec, batched fused EvaluateBatch vs serial
//    reference Run calls, on the depth-3 gamma x beta sweep the
//    optimiser's grid refinement performs at paper scale (20 qubits).
//
// Both comparisons first assert the determinism contract — fused and
// reference energies (and one full amplitude vector) must be
// bit-identical — and the binary exits non-zero on any mismatch, so the
// speedups it reports are only ever measured between kernels that agree.
//
// Environment:
//   QJO_QAOA_BENCH_FAST=1   small instance for the ctest smoke entry
//   QJO_BENCH_QAOA_JSON     output path (default BENCH_qaoa.json)
//   QJO_BENCH_PARALLELISM   pool size for the batched arm (default:
//                           hardware concurrency; 1 = no pool)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "sim/qaoa_simulator.h"
#include "sim/sim_kernel.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

Qubo MakeRandomQubo(int n, double edge_probability, uint64_t seed) {
  Rng rng(seed);
  Qubo q(n);
  for (int i = 0; i < n; ++i) {
    q.AddLinear(i, rng.UniformDouble(-2, 2));
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(edge_probability)) {
        q.AddQuadratic(i, j, rng.UniformDouble(-2, 2));
      }
    }
  }
  return q;
}

/// Best-of-`repeats` wall time of fn(), in seconds.
template <typename Fn>
double BestSeconds(Fn&& fn, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Metric {
  std::string name;
  double value;
};

int RunQaoaEvalBench() {
  const bool fast = std::getenv("QJO_QAOA_BENCH_FAST") != nullptr;
  int parallelism = static_cast<int>(std::thread::hardware_concurrency());
  if (const char* p = std::getenv("QJO_BENCH_PARALLELISM")) {
    parallelism = std::atoi(p);
  }
  parallelism = std::max(parallelism, 1);

  const int nq = fast ? 16 : 20;
  const int depth = fast ? 2 : 3;
  const int gamma_points = fast ? 3 : 6;
  const int beta_points = fast ? 4 : 8;
  const int repeats = fast ? 2 : 3;
  const uint64_t size = uint64_t{1} << nq;

  const IsingModel ising = QuboToIsing(MakeRandomQubo(nq, 0.3, 53));
  auto sim = QaoaSimulator::Create(ising);
  if (!sim.ok()) {
    std::cerr << "QaoaSimulator::Create failed" << std::endl;
    return 1;
  }

  std::vector<Metric> metrics;
  metrics.push_back({"fast_mode", fast ? 1.0 : 0.0});
  metrics.push_back({"parallelism", static_cast<double>(parallelism)});
  metrics.push_back({"qaoa_qubits", static_cast<double>(nq)});
  metrics.push_back({"qaoa_depth", static_cast<double>(depth)});
  double sink = 0.0;  // keeps the timed work observable
  bool identical = true;

  // --- Kernel identity: one full evaluation, amplitude by amplitude. ---
  {
    QaoaParameters params;
    for (int rep = 0; rep < depth; ++rep) {
      params.gammas.push_back(0.25 + 0.1 * rep);
      params.betas.push_back(0.85 - 0.15 * rep);
    }
    auto reference = QaoaSimulator::Create(ising);
    const double ef = sim->Run(params, SimKernel::kFused);
    const double er = reference->Run(params, SimKernel::kReference);
    if (ef != er) identical = false;
    const auto& af = sim->amplitudes();
    const auto& ar = reference->amplitudes();
    for (uint64_t i = 0; i < size; ++i) {
      if (af[i] != ar[i]) {
        identical = false;
        break;
      }
    }
    metrics.push_back({"amplitudes_identical", identical ? 1.0 : 0.0});
  }

  // --- Mixer layer: amplitude updates/sec, fused vs reference. ---
  // Each of the nq butterfly sweeps updates all 2^nq amplitudes; the
  // fused kernel performs the same updates in ceil(nq/14) memory passes.
  {
    const int layers = fast ? 4 : 8;
    const double updates =
        static_cast<double>(layers) * nq * static_cast<double>(size);
    const auto time_kernel = [&](SimKernel kernel) {
      return BestSeconds(
          [&] {
            for (int l = 0; l < layers; ++l) {
              sim->ApplyMixerLayer(0.3 + 0.01 * l, kernel);
            }
            sink += sim->Probability(0);
          },
          repeats);
    };
    const double t_ref = time_kernel(SimKernel::kReference);
    const double t_fused = time_kernel(SimKernel::kFused);
    metrics.push_back({"mixer_amps_per_sec_reference", updates / t_ref});
    metrics.push_back({"mixer_amps_per_sec_fused", updates / t_fused});
    metrics.push_back({"mixer_fused_speedup", t_ref / t_fused});
  }

  // --- Per-ISA mixer throughput: the fused kernel at every SIMD tier
  // this host can execute (what QJO_SIMD=<tier> would dispatch). Before
  // timing a tier, one deterministic full evaluation is run under it and
  // its energy and amplitude vector are compared bit-for-bit against the
  // scalar tier, so a cross-tier divergence fails the binary the same
  // way a fused/reference mismatch does.
  {
    const SimdIsa dispatch_isa = Simd().isa;
    metrics.push_back(
        {"simd_isa", static_cast<double>(static_cast<int>(dispatch_isa))});
    std::vector<SimdIsa> tiers;
    for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kSse2, SimdIsa::kAvx2,
                        SimdIsa::kAvx512}) {
      if (SimdOpsFor(isa) != nullptr) tiers.push_back(isa);
    }

    QaoaParameters params;
    for (int rep = 0; rep < depth; ++rep) {
      params.gammas.push_back(0.21 + 0.07 * rep);
      params.betas.push_back(0.77 - 0.11 * rep);
    }
    auto tier_sim = QaoaSimulator::Create(ising);
    SetSimd(SimdIsa::kScalar);
    const double scalar_energy = tier_sim->Run(params, SimKernel::kFused);
    const auto scalar_amps = tier_sim->amplitudes();  // copied baseline

    const int layers = fast ? 4 : 8;
    const double updates =
        static_cast<double>(layers) * nq * static_cast<double>(size);
    for (const SimdIsa isa : tiers) {
      SetSimd(isa);
      if (isa != SimdIsa::kScalar) {
        const double e = tier_sim->Run(params, SimKernel::kFused);
        if (e != scalar_energy) identical = false;
        const auto& amps = tier_sim->amplitudes();
        for (uint64_t i = 0; i < size; ++i) {
          if (amps[i] != scalar_amps[i]) {
            identical = false;
            break;
          }
        }
      }
      const double t_tier = BestSeconds(
          [&] {
            for (int l = 0; l < layers; ++l) {
              sim->ApplyMixerLayer(0.3 + 0.01 * l, SimKernel::kFused);
            }
            sink += sim->Probability(0);
          },
          repeats);
      metrics.push_back({std::string("mixer_amps_per_sec_") + SimdIsaName(isa),
                         updates / t_tier});
    }
    SetSimd(dispatch_isa);  // restore the host-resolved dispatch
    metrics.push_back({"simd_tiers_identical", identical ? 1.0 : 0.0});
  }

  // --- Angle grid: evaluations/sec, batched fused vs serial reference. ---
  // Gamma-major order, the layout the optimiser's grid refinement emits:
  // consecutive evaluations share a gamma, so the fused kernel reuses its
  // phase table across the whole beta row.
  {
    std::vector<QaoaParameters> grid;
    grid.reserve(static_cast<size_t>(gamma_points) * beta_points);
    for (int i = 0; i < gamma_points; ++i) {
      for (int j = 0; j < beta_points; ++j) {
        QaoaParameters params;
        for (int rep = 0; rep < depth; ++rep) {
          params.gammas.push_back(0.15 + 0.12 * i + 0.03 * rep);
          params.betas.push_back(0.9 - 0.08 * j - 0.05 * rep);
        }
        grid.push_back(std::move(params));
      }
    }
    const double evals = static_cast<double>(grid.size());
    metrics.push_back({"grid_points", evals});

    std::vector<double> serial_energies(grid.size());
    const double t_serial = BestSeconds(
        [&] {
          for (size_t i = 0; i < grid.size(); ++i) {
            serial_energies[i] = sim->Run(grid[i], SimKernel::kReference);
          }
        },
        fast ? 1 : 2);

    std::optional<ThreadPool> pool;
    if (parallelism > 1) {
      pool.emplace(parallelism);
      sim->set_pool(&*pool);
    }
    std::vector<double> batched_energies;
    const double t_batched = BestSeconds(
        [&] { batched_energies = sim->EvaluateBatch(grid); }, repeats);
    sim->set_pool(nullptr);

    for (size_t i = 0; i < grid.size(); ++i) {
      if (batched_energies[i] != serial_energies[i]) identical = false;
      sink += batched_energies[i];
    }
    metrics.push_back({"energies_identical", identical ? 1.0 : 0.0});
    metrics.push_back({"grid_evals_per_sec_serial_reference",
                       evals / t_serial});
    metrics.push_back({"grid_evals_per_sec_batched_fused", evals / t_batched});
    metrics.push_back({"grid_speedup", t_serial / t_batched});
  }

  const char* json_path = std::getenv("QJO_BENCH_QAOA_JSON");
  const std::string path = json_path != nullptr ? json_path : "BENCH_qaoa.json";
  std::ofstream out(path);
  out << "{\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << "  \"" << metrics[i].name << "\": " << metrics[i].value
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "}\n";
  out.close();

  std::cout << "qaoa eval bench (" << (fast ? "fast" : "full")
            << " mode), sink=" << sink << ":\n";
  for (const Metric& m : metrics) {
    std::cout << "  " << m.name << " = " << m.value << "\n";
  }
  std::cout << "wrote " << path << std::endl;

  if (!identical) {
    std::cerr << "FATAL: fused/batched results are not bit-identical to the "
                 "serial reference kernel"
              << std::endl;
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace qjo

int main() { return qjo::RunQaoaEvalBench(); }

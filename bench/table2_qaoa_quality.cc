// Reproduces Table 2: fraction of valid and optimal QAOA samples for
// 3-relation JO instances with 0..3 predicates (18..27 qubits) and 20/50
// classical optimiser iterations, 1024 shots, on the modelled IBM Q
// Auckland device (noisy sampling driven by the transpiled circuit's
// estimated fidelity), plus the t_s / t_qpu timing observation.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/quantum_optimizer.h"
#include "jo/query.h"
#include "util/strings.h"

namespace qjo {
namespace {

// A 3-relation instance whose BILP lowering hits exactly the paper's
// 18/21/24/27-qubit ladder (c_1max = 2 requires the two largest
// cardinalities to be 10). The third cardinality and the per-predicate
// selectivities are asymmetric so join orders differ in cost — otherwise
// every valid sample would trivially count as optimal.
Query MakePaperInstance(int num_predicates) {
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 4);
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {0, 2}};
  const double selectivities[] = {0.1, 0.01, 0.1};
  for (int p = 0; p < num_predicates; ++p) {
    (void)q.AddPredicate(edges[p].first, edges[p].second, selectivities[p]);
  }
  return q;
}

void Run() {
  const int shots = bench::Scaled(1024, 128);
  bench::Banner("Table 2",
                "QAOA solution quality on IBM Q Auckland (27 qubits)");
  bench::PaperNote(
      "paper: valid 7-13%, optimal 2-5%; no consistent trend with problem "
      "size or iteration count; every hardware sample violated at least "
      "one BILP constraint; t_s ~78-114ms while t_qpu ~9.7-10.4s");

  std::printf("\n%-12s %7s | %-10s | %7s %8s %9s | %9s %9s\n", "predicates",
              "qubits", "iterations", "valid", "optimal", "bilp-ok", "t_s[ms]",
              "t_qpu[s]");
  for (int p = 0; p <= 3; ++p) {
    const Query query = MakePaperInstance(p);
    for (int iterations : {20, 50}) {
      QjoConfig config;
      config.backend = QjoBackend::kQaoaSimulator;
      config.thresholds = {10.0};
      config.shots = shots;
      config.qaoa_iterations = iterations;
      config.seed = 400 + p * 10 + iterations;
      bench::ObsSession::Get().Apply(config);
      auto report = OptimizeJoinOrder(query, config);
      if (!report.ok()) {
        std::printf("%-12d %7s | %-10d | failed: %s\n", p, "-", iterations,
                    report.status().ToString().c_str());
        continue;
      }
      std::printf("%-12d %7d | %-10d | %7s %8s %9s | %9.1f %9.2f\n", p,
                  report->encoding.bilp_variables, iterations,
                  FormatPercent(report->stats.valid_fraction(), 1).c_str(),
                  FormatPercent(report->stats.optimal_fraction(), 1).c_str(),
                  FormatPercent(
                      static_cast<double>(report->stats.bilp_feasible) /
                          std::max(report->stats.total, 1),
                      1)
                      .c_str(),
                  report->gate.timings.sampling_ms, report->gate.timings.total_s);
    }
  }

  std::printf(
      "\n[ablation] ideal (noiseless) sampling at the same angles:\n");
  std::printf("%-12s %7s | %7s %8s\n", "predicates", "qubits", "valid",
              "optimal");
  for (int p = 0; p <= 3; ++p) {
    const Query query = MakePaperInstance(p);
    QjoConfig config;
    config.backend = QjoBackend::kQaoaSimulator;
    config.thresholds = {10.0};
    config.shots = shots;
    config.qaoa_iterations = 20;
    config.noiseless = true;
    config.seed = 500 + p;
    bench::ObsSession::Get().Apply(config);
    auto report = OptimizeJoinOrder(query, config);
    if (!report.ok()) continue;
    std::printf("%-12d %7d | %7s %8s\n", p, report->encoding.bilp_variables,
                FormatPercent(report->stats.valid_fraction(), 1).c_str(),
                FormatPercent(report->stats.optimal_fraction(), 1).c_str());
  }

  // Beyond-paper ablation enabled by the batched fast path: refine the
  // analytic angles over an 8x8 (gamma, beta) grid (one EvaluateBatch
  // sweep per instance) before sampling. The paper sections above remain
  // the reproduction; this quantifies what cheap classical angle tuning
  // buys at the same shot budget.
  std::printf(
      "\n[ablation] batched 8x8 angle-grid refinement, noisy sampling:\n");
  std::printf("%-12s %7s | %7s %8s | %9s %9s\n", "predicates", "qubits",
              "valid", "optimal", "gamma", "beta");
  for (int p = 0; p <= 3; ++p) {
    const Query query = MakePaperInstance(p);
    QjoConfig config;
    config.backend = QjoBackend::kQaoaSimulator;
    config.thresholds = {10.0};
    config.shots = shots;
    config.qaoa_iterations = 20;
    config.qaoa_grid = 8;
    // Same seed as the paper section's iterations=20 row: the only
    // difference is the grid refinement.
    config.seed = 400 + p * 10 + 20;
    bench::ObsSession::Get().Apply(config);
    auto report = OptimizeJoinOrder(query, config);
    if (!report.ok()) continue;
    std::printf("%-12d %7d | %7s %8s | %9.4f %9.4f\n", p,
                report->encoding.bilp_variables,
                FormatPercent(report->stats.valid_fraction(), 1).c_str(),
                FormatPercent(report->stats.optimal_fraction(), 1).c_str(),
                report->gate.gamma, report->gate.beta);
  }
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

// Ablation: QAOA repetition count p. The paper runs p=1 because deeper
// circuits exceed NISQ coherence; this bench quantifies the trade-off —
// higher p improves the energy of the sampled distribution but multiplies
// transpiled depth, so under the coherence-driven noise model the
// *effective* quality collapses.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "circuit/qaoa_builder.h"
#include "jo/query.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "qubo/ising.h"
#include "sim/device.h"
#include "sim/qaoa_analytic.h"
#include "sim/qaoa_simulator.h"
#include "topology/vendor_topologies.h"
#include "transpiler/transpiler.h"
#include "util/random.h"

namespace qjo {
namespace {

void Run() {
  bench::Banner("Ablation", "QAOA depth p vs quality under noise");
  bench::PaperNote(
      "the paper fixes p=1: larger p exceeds machine capability (Sec. 4.1); "
      "Farhi et al. prove quality rises with p on ideal hardware");

  // 18-qubit paper instance.
  Query q;
  q.AddRelation("R0", 10);
  q.AddRelation("R1", 10);
  q.AddRelation("R2", 10);
  JoMilpOptions options;
  options.thresholds = {10.0};
  auto milp = EncodeJoAsMilp(q, options);
  if (!milp.ok()) return;
  auto bilp = LowerToBilp(milp->model(), 1.0);
  if (!bilp.ok()) return;
  auto encoding = ConvertBilpToQubo(*bilp, QuboConversionOptions{});
  if (!encoding.ok()) return;
  const IsingModel ising = QuboToIsing(encoding->qubo);
  auto sim = QaoaSimulator::Create(ising);
  if (!sim.ok()) return;
  const double ground = sim->MinCost();
  const double device_cap = IbmAucklandProperties().MaxFeasibleDepth();

  std::printf("\nground-state energy: %.2f; Auckland depth cap: %.0f\n\n",
              ground, device_cap);
  std::printf("%3s | %12s | %10s | %10s | %s\n", "p", "<H> (ideal)",
              "depth", "fidelity", "feasible?");

  Rng rng(7);
  QaoaAngles base = OptimizeQaoaAngles(ising, 30, rng);
  for (int p = 1; p <= 4; ++p) {
    // Warm start: the optimised p=1 angles replicated on every layer,
    // refined per layer with coordinate descent on the simulator.
    QaoaParameters params;
    for (int rep = 0; rep < p; ++rep) {
      params.gammas.push_back(base.gamma);
      params.betas.push_back(base.beta * (p - rep) / p);
    }
    double expectation = sim->Run(params);
    for (int sweep = 0; sweep < 4; ++sweep) {
      for (int rep = 0; rep < p; ++rep) {
        for (double* angle : {&params.gammas[rep], &params.betas[rep]}) {
          // All four candidate scalings of this angle go through one
          // batched evaluation and the best improving one is accepted.
          // (The pre-batch code evaluated the scales sequentially and
          // let accepted moves compound within the candidate loop; the
          // batched form is best-of-four per coordinate, which the
          // outer sweeps iterate the same way.)
          const double saved = *angle;
          const double scales[] = {0.6, 0.85, 1.2, 1.6};
          std::vector<QaoaParameters> candidates;
          for (double scale : scales) {
            *angle = saved * scale;
            candidates.push_back(params);
          }
          *angle = saved;
          const std::vector<double> values = sim->EvaluateBatch(candidates);
          for (size_t c = 0; c < values.size(); ++c) {
            if (values[c] < expectation - 1e-9) {
              expectation = values[c];
              *angle = saved * scales[c];
            }
          }
        }
      }
    }

    auto logical = BuildQaoaCircuit(ising, params);
    if (!logical.ok()) continue;
    TranspileOptions topts;
    topts.gate_set = NativeGateSet::kIbm;
    topts.seed = 100 + p;
    auto physical = Transpile(*logical, MakeIbmFalcon27(), topts);
    if (!physical.ok()) continue;
    const double fidelity =
        EstimateCircuitFidelity(physical->circuit, IbmAucklandProperties());
    std::printf("%3d | %12.2f | %10d | %10.4f | %s\n", p, expectation,
                physical->depth, fidelity,
                physical->depth <= device_cap ? "yes" : "no");
  }
  std::printf(
      "\nIdeal <H> improves with p, but transpiled depth scales ~linearly\n"
      "and fidelity decays exponentially — p=1 is all the hardware affords.\n");
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

// Serving-layer load benchmark: drives the multi-tenant OptimizerService
// with the two canonical arrival processes and reports latency
// percentiles, admission-control behaviour and plan-cache effectiveness.
//
//  * Closed loop — C clients, each submitting its next request the moment
//    the previous one resolves. Measures peak sustainable throughput and
//    in-service latency with zero queue pressure from the load generator
//    itself.
//  * Open loop — requests arrive on a fixed clock at 1.5x the measured
//    closed-loop throughput (deliberate oversubscription), with a bounded
//    queue and per-request deadlines. Measures how the service sheds load:
//    ResourceExhausted rejects at the queue cap, degradation to the
//    classical fallback under deadline pressure, and the latency of what
//    still completes (open-loop latencies include queue wait, so they —
//    not the closed-loop numbers — are what a client would see under
//    overload).
//
// Every admitted request's future must resolve: admitted != resolved is a
// silent drop and fails the bench (exit 1), as does a closed-loop p99
// above the generous smoke bound. Timing assertions stay loose — CI
// machines are noisy; the hard guarantees (bit-identity, admission edge
// cases) live in tests/serve_test.cc.
//
// Writes BENCH_serving.json (override with QJO_BENCH_SERVING_JSON).
// QJO_SERVING_BENCH_FAST=1 shrinks the load for the ctest / CI smoke.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "jo/query.h"
#include "jo/query_generator.h"
#include "serve/optimizer_service.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

struct Metric {
  std::string name;
  double value;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

struct LoadStats {
  int submitted = 0;
  int admitted = 0;
  int rejected = 0;
  int resolved = 0;
  int ok = 0;
  int failed = 0;
  int cache_hits = 0;
  int degraded = 0;
  double wall_ms = 0.0;
  std::vector<double> latencies_ms;  ///< submit -> future resolution, admitted only

  double throughput_rps() const {
    return wall_ms > 0.0 ? 1000.0 * resolved / wall_ms : 0.0;
  }
  double goodput_rps() const {
    return wall_ms > 0.0 ? 1000.0 * ok / wall_ms : 0.0;
  }
  double cache_hit_rate() const {
    return resolved > 0 ? static_cast<double>(cache_hits) / resolved : 0.0;
  }
};

void EmitCase(std::vector<Metric>* metrics, const std::string& prefix,
              const LoadStats& s) {
  metrics->push_back({prefix + "requests", static_cast<double>(s.submitted)});
  metrics->push_back({prefix + "admitted", static_cast<double>(s.admitted)});
  metrics->push_back({prefix + "rejected", static_cast<double>(s.rejected)});
  metrics->push_back({prefix + "resolved", static_cast<double>(s.resolved)});
  metrics->push_back({prefix + "failed", static_cast<double>(s.failed)});
  metrics->push_back({prefix + "degraded", static_cast<double>(s.degraded)});
  metrics->push_back({prefix + "wall_ms", s.wall_ms});
  metrics->push_back({prefix + "throughput_rps", s.throughput_rps()});
  metrics->push_back({prefix + "goodput_rps", s.goodput_rps()});
  metrics->push_back({prefix + "cache_hit_rate", s.cache_hit_rate()});
  metrics->push_back({prefix + "p50_ms", Percentile(s.latencies_ms, 50.0)});
  metrics->push_back({prefix + "p95_ms", Percentile(s.latencies_ms, 95.0)});
  metrics->push_back({prefix + "p99_ms", Percentile(s.latencies_ms, 99.0)});
  std::cout << prefix << "throughput " << s.throughput_rps() << " req/s, "
            << "goodput " << s.goodput_rps() << " req/s, p50 "
            << Percentile(s.latencies_ms, 50.0) << " ms, p95 "
            << Percentile(s.latencies_ms, 95.0) << " ms, p99 "
            << Percentile(s.latencies_ms, 99.0) << " ms, " << s.rejected
            << " rejected, " << s.degraded << " degraded, cache hit rate "
            << s.cache_hit_rate() << "\n";
}

std::vector<Query> MakeQueries(int count, int relations) {
  Rng rng(4242);
  QueryGenOptions gen;
  gen.num_relations = relations;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  std::vector<Query> queries;
  queries.reserve(count);
  const QueryGraphType graphs[] = {QueryGraphType::kChain,
                                   QueryGraphType::kStar,
                                   QueryGraphType::kCycle};
  for (int i = 0; i < count; ++i) {
    gen.graph_type = graphs[i % 3];
    auto query = GenerateQuery(gen, rng);
    if (!query.ok()) {
      std::cerr << "query generation failed: " << query.status().ToString()
                << "\n";
      std::exit(1);
    }
    queries.push_back(*std::move(query));
  }
  return queries;
}

QjoConfig MakeConfig() {
  QjoConfig config;
  config.backend = QjoBackend::kSimulatedAnnealing;
  config.shots = 32;
  config.seed = 7;
  return config;
}

ServeRequest MakeRequest(const std::vector<Query>& queries, int index,
                         int tenants, double deadline_ms) {
  ServeRequest request;
  request.query = queries[static_cast<size_t>(index) % queries.size()];
  request.config = MakeConfig();
  request.tenant = "tenant-" + std::to_string(index % tenants);
  request.deadline_ms = deadline_ms;
  return request;
}

/// Closed loop: `clients` threads, each keeping exactly one request in
/// flight until `total` requests have been submitted overall.
LoadStats RunClosedLoop(const std::vector<Query>& queries, ThreadPool* pool,
                        int clients, int total, int tenants) {
  ServeOptions options;
  options.workers = clients;
  options.queue_capacity = static_cast<size_t>(2 * clients);
  options.pool = pool;
  OptimizerService service(options);

  std::mutex mutex;  // guards the shared stats
  LoadStats stats;
  std::atomic<int> next{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (int i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
          auto submit = std::chrono::steady_clock::now();
          auto future =
              service.Submit(MakeRequest(queries, i, tenants, -1.0));
          if (!future.ok()) {
            std::lock_guard<std::mutex> lock(mutex);
            ++stats.submitted;
            ++stats.rejected;
            continue;
          }
          ServeResult result = std::move(future).value().get();
          const double latency_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - submit)
                  .count();
          std::lock_guard<std::mutex> lock(mutex);
          ++stats.submitted;
          ++stats.admitted;
          ++stats.resolved;
          stats.latencies_ms.push_back(latency_ms);
          if (result.status.ok()) {
            ++stats.ok;
          } else {
            ++stats.failed;
          }
          if (result.cache_hit) ++stats.cache_hits;
          if (result.degraded) ++stats.degraded;
        }
      });
    }
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return stats;
}

/// Open loop: submit on a fixed arrival clock regardless of completions;
/// the service's admission control is what bounds the backlog.
LoadStats RunOpenLoop(const std::vector<Query>& queries, ThreadPool* pool,
                      int workers, int total, int tenants,
                      double inter_arrival_ms, double deadline_ms,
                      size_t queue_capacity) {
  ServeOptions options;
  options.workers = workers;
  options.queue_capacity = queue_capacity;
  options.default_deadline_ms = deadline_ms;
  options.pool = pool;
  OptimizerService service(options);

  LoadStats stats;
  struct InFlight {
    std::chrono::steady_clock::time_point submit;
    std::future<ServeResult> future;
  };
  std::vector<InFlight> in_flight;
  in_flight.reserve(total);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < total; ++i) {
    const auto arrival =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(i *
                                                           inter_arrival_ms));
    std::this_thread::sleep_until(arrival);
    ++stats.submitted;
    auto future =
        service.Submit(MakeRequest(queries, i, tenants, deadline_ms));
    if (!future.ok()) {
      ++stats.rejected;
      continue;
    }
    ++stats.admitted;
    in_flight.push_back(
        {std::chrono::steady_clock::now(), std::move(future).value()});
  }
  for (auto& flight : in_flight) {
    ServeResult result = flight.future.get();
    ++stats.resolved;
    stats.latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                     std::chrono::steady_clock::now() -
                                     flight.submit)
                                     .count());
    if (result.status.ok()) {
      ++stats.ok;
    } else {
      ++stats.failed;
    }
    if (result.cache_hit) ++stats.cache_hits;
    if (result.degraded) ++stats.degraded;
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return stats;
}

int RunSuite() {
  const bool fast = std::getenv("QJO_SERVING_BENCH_FAST") != nullptr;
  const int parallelism = bench::Parallelism();

  bench::Banner("serving_load",
                "multi-tenant serving layer under open/closed-loop load");
  bench::PaperNote(
      "the co-design question at the systems layer: a quantum-portfolio "
      "optimiser only displaces a classical one if a shared service can "
      "admit, cache, deadline and degrade thousands of requests");

  const int clients = fast ? 4 : 8;
  const int closed_total = fast ? 48 : 320;
  const int open_total = fast ? 48 : 240;
  const int tenants = 4;
  const int query_pool = 6;

  std::vector<Query> queries = MakeQueries(query_pool, 5);
  ThreadPool pool(parallelism);

  std::vector<Metric> metrics;
  metrics.push_back({"simd_isa",
                     static_cast<double>(static_cast<int>(Simd().isa))});
  metrics.push_back({"parallelism", static_cast<double>(parallelism)});
  metrics.push_back({"fast_mode", fast ? 1.0 : 0.0});
  metrics.push_back({"tenants", static_cast<double>(tenants)});
  metrics.push_back({"query_pool", static_cast<double>(query_pool)});
  metrics.push_back({"closed_clients", static_cast<double>(clients)});

  std::cout << "closed loop: " << clients << " clients, " << closed_total
            << " requests\n";
  LoadStats closed =
      RunClosedLoop(queries, &pool, clients, closed_total, tenants);
  EmitCase(&metrics, "closed_", closed);

  // Open loop at 1.5x the closed-loop sustainable rate: admission control
  // has to shed the excess.
  const double sustainable_rps = std::max(1.0, closed.throughput_rps());
  const double inter_arrival_ms = 1000.0 / (1.5 * sustainable_rps);
  const double deadline_ms = fast ? 250.0 : 500.0;
  const size_t queue_cap = fast ? 8 : 16;
  std::cout << "open loop: " << open_total << " arrivals every "
            << inter_arrival_ms << " ms (1.5x closed-loop rate), deadline "
            << deadline_ms << " ms, queue cap " << queue_cap << "\n";
  LoadStats open =
      RunOpenLoop(queries, &pool, clients, open_total, tenants,
                  inter_arrival_ms, deadline_ms, queue_cap);
  metrics.push_back({"open_offered_rps", 1000.0 / inter_arrival_ms});
  metrics.push_back({"open_deadline_ms", deadline_ms});
  metrics.push_back({"open_queue_capacity", static_cast<double>(queue_cap)});
  EmitCase(&metrics, "open_", open);

  // --- Smoke gates. ---
  // Silent drops: every admitted request must resolve its future.
  const int silent_drops =
      (closed.admitted - closed.resolved) + (open.admitted - open.resolved);
  metrics.push_back({"silent_drops", static_cast<double>(silent_drops)});
  // Accounting: submit either admits or rejects, nothing else.
  const bool accounting_exact =
      closed.submitted == closed.admitted + closed.rejected &&
      open.submitted == open.admitted + open.rejected;
  // Generous p99 bound for the closed loop (no queue oversubscription, so
  // latency is essentially solve time; the bound only catches pathologies
  // like a wedged worker or a lost wakeup).
  const double p99_bound_ms = 5000.0;
  const double closed_p99 = Percentile(closed.latencies_ms, 99.0);
  metrics.push_back({"closed_p99_bound_ms", p99_bound_ms});

  bool ok = true;
  if (silent_drops != 0) {
    std::cerr << "FAIL: " << silent_drops << " admitted futures never resolved\n";
    ok = false;
  }
  if (!accounting_exact) {
    std::cerr << "FAIL: admit/reject accounting does not add up\n";
    ok = false;
  }
  if (closed.failed != 0) {
    std::cerr << "FAIL: " << closed.failed
              << " closed-loop requests returned an error status\n";
    ok = false;
  }
  if (closed_p99 > p99_bound_ms) {
    std::cerr << "FAIL: closed-loop p99 " << closed_p99 << " ms exceeds "
              << p99_bound_ms << " ms\n";
    ok = false;
  }
  metrics.push_back({"smoke_ok", ok ? 1.0 : 0.0});

  const char* json_path = std::getenv("QJO_BENCH_SERVING_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_serving.json";
  std::ofstream out(path);
  out << "{\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << "  \"" << metrics[i].name << "\": " << metrics[i].value
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "}\n";
  out.close();
  std::cout << "wrote " << path << std::endl;

  return ok ? 0 : 1;
}

}  // namespace
}  // namespace qjo

int main() { return qjo::RunSuite(); }

// Serving-layer load benchmark: drives the multi-tenant OptimizerService
// with the two canonical arrival processes and reports latency
// percentiles, admission-control behaviour and plan-cache effectiveness.
//
//  * Closed loop — C clients, each submitting its next request the moment
//    the previous one resolves. Measures peak sustainable throughput and
//    in-service latency with zero queue pressure from the load generator
//    itself.
//  * Open loop — requests arrive on a fixed clock at 1.5x the measured
//    closed-loop throughput (deliberate oversubscription), with a bounded
//    queue and per-request deadlines. Measures how the service sheds load:
//    ResourceExhausted rejects at the queue cap, degradation to the
//    classical fallback under deadline pressure, and the latency of what
//    still completes (open-loop latencies include queue wait, so they —
//    not the closed-loop numbers — are what a client would see under
//    overload).
//  * Duplicate-heavy profile — the same Zipf(1.1) arrival schedule
//    replayed with single-flight coalescing off (baseline) and on, for
//    both arrival processes. The coalesced runs must solve each unique
//    plan key exactly once (solves_per_unique_key == 1); the baseline
//    shows the duplicate work coalescing removes.
//  * Token-bucket and warm-up scenarios — a one-tenant burst against a
//    small bucket must be rate limited with refill-derived retry hints,
//    and a drain/restart round trip through the persisted key set must
//    serve the replayed workload from warmed cache entries.
//
// Every admitted request's future must resolve: admitted != resolved is a
// silent drop and fails the bench (exit 1), as does a closed-loop p99
// above the generous smoke bound or a coalesced run that solves a unique
// key twice. Timing assertions stay loose — CI machines are noisy; the
// hard guarantees (bit-identity, admission edge cases) live in
// tests/serve_test.cc.
//
// Writes BENCH_serving.json (override with QJO_BENCH_SERVING_JSON).
// QJO_SERVING_BENCH_FAST=1 shrinks the load for the ctest / CI smoke.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "jo/query.h"
#include "jo/query_generator.h"
#include "serve/optimizer_service.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

struct Metric {
  std::string name;
  double value;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

struct LoadStats {
  int submitted = 0;
  int admitted = 0;
  int rejected = 0;
  int resolved = 0;
  int ok = 0;
  int failed = 0;
  int cache_hits = 0;
  int coalesced = 0;
  int degraded = 0;
  /// From the service's own counters after the drain: full pipeline
  /// solves actually run — the denominator of duplicate work.
  uint64_t solves = 0;
  double wall_ms = 0.0;
  std::vector<double> latencies_ms;  ///< submit -> future resolution, admitted only

  double throughput_rps() const {
    return wall_ms > 0.0 ? 1000.0 * resolved / wall_ms : 0.0;
  }
  double goodput_rps() const {
    return wall_ms > 0.0 ? 1000.0 * ok / wall_ms : 0.0;
  }
  double cache_hit_rate() const {
    return resolved > 0 ? static_cast<double>(cache_hits) / resolved : 0.0;
  }

  void Record(const ServeResult& result, double latency_ms) {
    ++resolved;
    latencies_ms.push_back(latency_ms);
    if (result.status.ok()) {
      ++ok;
    } else {
      ++failed;
    }
    if (result.cache_hit) ++cache_hits;
    if (result.coalesced) ++coalesced;
    if (result.degraded) ++degraded;
  }
};

void EmitCase(std::vector<Metric>* metrics, const std::string& prefix,
              const LoadStats& s) {
  metrics->push_back({prefix + "requests", static_cast<double>(s.submitted)});
  metrics->push_back({prefix + "admitted", static_cast<double>(s.admitted)});
  metrics->push_back({prefix + "rejected", static_cast<double>(s.rejected)});
  metrics->push_back({prefix + "resolved", static_cast<double>(s.resolved)});
  metrics->push_back({prefix + "failed", static_cast<double>(s.failed)});
  metrics->push_back({prefix + "degraded", static_cast<double>(s.degraded)});
  metrics->push_back({prefix + "wall_ms", s.wall_ms});
  metrics->push_back({prefix + "throughput_rps", s.throughput_rps()});
  metrics->push_back({prefix + "goodput_rps", s.goodput_rps()});
  metrics->push_back({prefix + "cache_hit_rate", s.cache_hit_rate()});
  metrics->push_back({prefix + "coalesced", static_cast<double>(s.coalesced)});
  metrics->push_back({prefix + "solves", static_cast<double>(s.solves)});
  metrics->push_back({prefix + "p50_ms", Percentile(s.latencies_ms, 50.0)});
  metrics->push_back({prefix + "p95_ms", Percentile(s.latencies_ms, 95.0)});
  metrics->push_back({prefix + "p99_ms", Percentile(s.latencies_ms, 99.0)});
  std::cout << prefix << "throughput " << s.throughput_rps() << " req/s, "
            << "goodput " << s.goodput_rps() << " req/s, p50 "
            << Percentile(s.latencies_ms, 50.0) << " ms, p95 "
            << Percentile(s.latencies_ms, 95.0) << " ms, p99 "
            << Percentile(s.latencies_ms, 99.0) << " ms, " << s.rejected
            << " rejected, " << s.coalesced << " coalesced, " << s.degraded
            << " degraded, " << s.solves << " solves, cache hit rate "
            << s.cache_hit_rate() << "\n";
}

std::vector<Query> MakeQueries(int count, int relations) {
  Rng rng(4242);
  QueryGenOptions gen;
  gen.num_relations = relations;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  std::vector<Query> queries;
  queries.reserve(count);
  const QueryGraphType graphs[] = {QueryGraphType::kChain,
                                   QueryGraphType::kStar,
                                   QueryGraphType::kCycle};
  for (int i = 0; i < count; ++i) {
    gen.graph_type = graphs[i % 3];
    auto query = GenerateQuery(gen, rng);
    if (!query.ok()) {
      std::cerr << "query generation failed: " << query.status().ToString()
                << "\n";
      std::exit(1);
    }
    queries.push_back(*std::move(query));
  }
  return queries;
}

QjoConfig MakeConfig() {
  QjoConfig config;
  config.backend = QjoBackend::kSimulatedAnnealing;
  config.shots = 32;
  config.seed = 7;
  return config;
}

ServeRequest MakeRequest(const std::vector<Query>& queries, int index,
                         int tenants, double deadline_ms) {
  ServeRequest request;
  request.query = queries[static_cast<size_t>(index) % queries.size()];
  request.config = MakeConfig();
  request.tenant = "tenant-" + std::to_string(index % tenants);
  request.deadline_ms = deadline_ms;
  return request;
}

/// Zipf-ranked indices into a query pool: rank r is drawn with weight
/// 1/(r+1)^exponent. Built once per scenario so the baseline and
/// coalesced runs replay the *same* arrival sequence.
std::vector<int> ZipfSchedule(int total, int pool_size, double exponent,
                              uint64_t seed) {
  std::vector<double> cdf(pool_size, 0.0);
  double sum = 0.0;
  for (int r = 0; r < pool_size; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf[static_cast<size_t>(r)] = sum;
  }
  Rng rng(seed);
  std::vector<int> schedule;
  schedule.reserve(total);
  for (int i = 0; i < total; ++i) {
    const double u = rng.UniformDouble() * sum;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    schedule.push_back(static_cast<int>(it - cdf.begin()));
  }
  return schedule;
}

int UniqueCount(const std::vector<int>& schedule) {
  std::vector<int> sorted = schedule;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return static_cast<int>(sorted.size());
}

void FinishRun(OptimizerService* service, LoadStats* stats) {
  service->Drain();
  const auto service_stats = service->stats();
  stats->solves = service_stats.solves;
}

/// Closed loop: `clients` threads, each keeping exactly one request in
/// flight until the whole schedule has been submitted.
LoadStats RunClosedLoop(const std::vector<ServeRequest>& schedule,
                        ThreadPool* pool, int clients, ServeOptions options) {
  options.workers = clients;
  options.pool = pool;
  OptimizerService service(options);

  std::mutex mutex;  // guards the shared stats
  LoadStats stats;
  std::atomic<int> next{0};
  const int total = static_cast<int>(schedule.size());
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (int i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
          auto submit = std::chrono::steady_clock::now();
          auto future = service.Submit(schedule[static_cast<size_t>(i)]);
          if (!future.ok()) {
            std::lock_guard<std::mutex> lock(mutex);
            ++stats.submitted;
            ++stats.rejected;
            continue;
          }
          ServeResult result = std::move(future).value().get();
          const double latency_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - submit)
                  .count();
          std::lock_guard<std::mutex> lock(mutex);
          ++stats.submitted;
          ++stats.admitted;
          stats.Record(result, latency_ms);
        }
      });
    }
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  FinishRun(&service, &stats);
  return stats;
}

/// Open loop: submit on a fixed arrival clock regardless of completions;
/// the service's admission control is what bounds the backlog.
LoadStats RunOpenLoop(const std::vector<ServeRequest>& schedule,
                      ThreadPool* pool, int workers, double inter_arrival_ms,
                      ServeOptions options) {
  options.workers = workers;
  options.pool = pool;
  OptimizerService service(options);

  LoadStats stats;
  struct InFlight {
    std::chrono::steady_clock::time_point submit;
    std::future<ServeResult> future;
  };
  std::vector<InFlight> in_flight;
  in_flight.reserve(schedule.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < schedule.size(); ++i) {
    const auto arrival =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(
                     static_cast<double>(i) * inter_arrival_ms));
    std::this_thread::sleep_until(arrival);
    ++stats.submitted;
    auto future = service.Submit(schedule[i]);
    if (!future.ok()) {
      ++stats.rejected;
      continue;
    }
    ++stats.admitted;
    in_flight.push_back(
        {std::chrono::steady_clock::now(), std::move(future).value()});
  }
  for (auto& flight : in_flight) {
    ServeResult result = flight.future.get();
    stats.Record(result, std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - flight.submit)
                             .count());
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  FinishRun(&service, &stats);
  return stats;
}

/// Uniform round-robin schedule over the query pool (the original
/// arrival mix: every query equally hot, tenants interleaved).
std::vector<ServeRequest> UniformSchedule(const std::vector<Query>& queries,
                                          int total, int tenants,
                                          double deadline_ms) {
  std::vector<ServeRequest> schedule;
  schedule.reserve(total);
  for (int i = 0; i < total; ++i) {
    schedule.push_back(MakeRequest(queries, i, tenants, deadline_ms));
  }
  return schedule;
}

/// Token-bucket scenario: one tenant bursting distinct-key requests far
/// past its configured rate; counts bucket rejections and checks that
/// every rejection carried a refill-derived retry-after hint.
uint64_t RunRateLimitScenario(ThreadPool* pool, std::vector<Metric>* metrics,
                              bool* hints_ok) {
  ServeOptions options;
  options.workers = 2;
  options.queue_capacity = 256;
  options.tenant_rate_per_sec = 50.0;
  options.tenant_burst = 4.0;
  options.pool = pool;
  OptimizerService service(options);

  const int burst = 32;
  std::vector<Query> queries = MakeQueries(1, 5);
  std::vector<std::future<ServeResult>> futures;
  *hints_ok = true;
  for (int i = 0; i < burst; ++i) {
    ServeRequest request;
    request.query = queries[0];
    request.config = MakeConfig();
    request.config.seed = 1000 + i;  // distinct keys: no coalescing discount
    double retry_after_ms = 0.0;
    auto future = service.Submit(std::move(request), &retry_after_ms);
    if (future.ok()) {
      futures.push_back(std::move(future).value());
    } else if (retry_after_ms <= 0.0) {
      *hints_ok = false;
    }
  }
  for (auto& future : futures) future.get();
  service.Drain();
  const uint64_t ratelimited = service.stats().rejected_rate_limited;
  metrics->push_back({"ratelimit_burst", static_cast<double>(burst)});
  metrics->push_back({"ratelimit_admitted",
                      static_cast<double>(futures.size())});
  std::cout << "rate limit: " << burst << " burst submits at 50/s bucket -> "
            << ratelimited << " rate-limited, " << futures.size()
            << " admitted\n";
  return ratelimited;
}

/// Warm-up scenario: service A solves a small workload and persists its
/// plan-cache key set on Drain(); service B loads the keys, replays the
/// workload through WarmUp() and serves the same requests as warm hits
/// without a single solve.
uint64_t RunWarmupScenario(ThreadPool* pool, std::vector<Metric>* metrics) {
  const std::string key_file = "BENCH_serving_warmup_keys.tmp";
  std::vector<Query> queries = MakeQueries(4, 5);
  std::vector<ServeRequest> workload;
  for (int i = 0; i < 4; ++i) {
    ServeRequest request;
    request.query = queries[static_cast<size_t>(i)];
    request.config = MakeConfig();
    workload.push_back(std::move(request));
  }

  ServeOptions options;
  options.workers = 2;
  options.warmup_file = key_file;
  options.pool = pool;
  {
    OptimizerService first(options);
    std::vector<std::future<ServeResult>> futures;
    for (const auto& request : workload) {
      auto future = first.Submit(request);
      if (future.ok()) futures.push_back(std::move(future).value());
    }
    for (auto& future : futures) future.get();
    first.Drain();  // persists the key set to key_file
  }

  OptimizerService second(options);
  const size_t warmed = second.WarmUp(workload);
  std::vector<std::future<ServeResult>> futures;
  for (const auto& request : workload) {
    auto future = second.Submit(request);
    if (future.ok()) futures.push_back(std::move(future).value());
  }
  for (auto& future : futures) future.get();
  second.Drain();
  const auto stats = second.stats();
  std::remove(key_file.c_str());
  metrics->push_back({"cache_warmed", static_cast<double>(warmed)});
  std::cout << "warm-up: " << warmed << " keys warmed from " << key_file
            << ", " << stats.warm_hits << " warm hits, " << stats.solves
            << " solves after restart\n";
  return stats.warm_hits;
}

int RunSuite() {
  const bool fast = std::getenv("QJO_SERVING_BENCH_FAST") != nullptr;
  const int parallelism = bench::Parallelism();

  bench::Banner("serving_load",
                "multi-tenant serving layer under open/closed-loop load");
  bench::PaperNote(
      "the co-design question at the systems layer: a quantum-portfolio "
      "optimiser only displaces a classical one if a shared service can "
      "admit, cache, deadline and degrade thousands of requests");

  const int clients = fast ? 4 : 8;
  const int closed_total = fast ? 48 : 320;
  const int open_total = fast ? 48 : 240;
  const int dup_total = fast ? 32 : 96;
  const int dup_pool = fast ? 8 : 12;
  const int tenants = 4;
  const int query_pool = 6;

  std::vector<Query> queries = MakeQueries(query_pool, 5);
  ThreadPool pool(parallelism);

  std::vector<Metric> metrics;
  metrics.push_back({"simd_isa",
                     static_cast<double>(static_cast<int>(Simd().isa))});
  metrics.push_back({"parallelism", static_cast<double>(parallelism)});
  metrics.push_back({"fast_mode", fast ? 1.0 : 0.0});
  metrics.push_back({"tenants", static_cast<double>(tenants)});
  metrics.push_back({"query_pool", static_cast<double>(query_pool)});
  metrics.push_back({"closed_clients", static_cast<double>(clients)});

  std::cout << "closed loop: " << clients << " clients, " << closed_total
            << " requests\n";
  ServeOptions closed_options;
  closed_options.queue_capacity = static_cast<size_t>(2 * clients);
  LoadStats closed =
      RunClosedLoop(UniformSchedule(queries, closed_total, tenants, -1.0),
                    &pool, clients, closed_options);
  EmitCase(&metrics, "closed_", closed);

  // Open loop at 1.5x the closed-loop sustainable rate: admission control
  // has to shed the excess.
  const double sustainable_rps = std::max(1.0, closed.throughput_rps());
  const double inter_arrival_ms = 1000.0 / (1.5 * sustainable_rps);
  const double deadline_ms = fast ? 250.0 : 500.0;
  const size_t queue_cap = fast ? 8 : 16;
  std::cout << "open loop: " << open_total << " arrivals every "
            << inter_arrival_ms << " ms (1.5x closed-loop rate), deadline "
            << deadline_ms << " ms, queue cap " << queue_cap << "\n";
  ServeOptions open_options;
  open_options.queue_capacity = queue_cap;
  open_options.default_deadline_ms = deadline_ms;
  LoadStats open =
      RunOpenLoop(UniformSchedule(queries, open_total, tenants, deadline_ms),
                  &pool, clients, inter_arrival_ms, open_options);
  metrics.push_back({"open_offered_rps", 1000.0 / inter_arrival_ms});
  metrics.push_back({"open_deadline_ms", deadline_ms});
  metrics.push_back({"open_queue_capacity", static_cast<double>(queue_cap)});
  EmitCase(&metrics, "open_", open);

  // --- Duplicate-heavy profile: Zipf(1.1) arrivals over a fresh pool,
  // baseline (coalescing + build-cache sharing off, per-request plan
  // cache as before this feature) vs coalesced (defaults), replaying the
  // *identical* schedule for both arrival processes. No deadlines and an
  // effectively unbounded queue: the variable under test is duplicate
  // work, not load shedding. The first `clients` arrivals are pinned to
  // the hottest key so the closed loop's opening salvo is guaranteed to
  // carry concurrent duplicates for the single-flight gate.
  std::vector<Query> dup_queries = MakeQueries(dup_pool, 6);
  std::vector<int> picks = ZipfSchedule(dup_total, dup_pool, 1.1, 99);
  for (int i = 1; i < clients && i < static_cast<int>(picks.size()); ++i) {
    picks[static_cast<size_t>(i)] = picks[0];
  }
  const int dup_unique = UniqueCount(picks);
  std::vector<ServeRequest> dup_schedule;
  dup_schedule.reserve(picks.size());
  for (size_t i = 0; i < picks.size(); ++i) {
    ServeRequest request;
    request.query = dup_queries[static_cast<size_t>(picks[i])];
    request.config = MakeConfig();
    request.config.shots = 48;
    request.tenant = "tenant-" + std::to_string(i % tenants);
    dup_schedule.push_back(std::move(request));
  }
  metrics.push_back({"dup_requests", static_cast<double>(dup_total)});
  metrics.push_back({"dup_unique_keys", static_cast<double>(dup_unique)});

  ServeOptions dup_options;
  dup_options.queue_capacity = 4096;
  ServeOptions dup_baseline = dup_options;
  dup_baseline.enable_coalescing = false;
  dup_baseline.share_build_cache = false;

  std::cout << "duplicate-heavy closed loop: " << dup_total
            << " Zipf arrivals, " << dup_unique << " unique keys\n";
  LoadStats dup_closed_base =
      RunClosedLoop(dup_schedule, &pool, clients, dup_baseline);
  EmitCase(&metrics, "dup_closed_baseline_", dup_closed_base);
  LoadStats dup_closed_coal =
      RunClosedLoop(dup_schedule, &pool, clients, dup_options);
  EmitCase(&metrics, "dup_closed_coalesced_", dup_closed_coal);

  // Open-loop arrivals at 1.2x the baseline's closed-loop throughput:
  // fast enough that duplicates overlap in flight, slow enough that the
  // baseline still finishes without shedding.
  const double dup_rate = std::max(1.0, dup_closed_base.throughput_rps());
  const double dup_inter_ms = 1000.0 / (1.2 * dup_rate);
  std::cout << "duplicate-heavy open loop: arrivals every " << dup_inter_ms
            << " ms (1.2x duplicate closed-loop rate)\n";
  LoadStats dup_open_base =
      RunOpenLoop(dup_schedule, &pool, clients, dup_inter_ms, dup_baseline);
  EmitCase(&metrics, "dup_open_baseline_", dup_open_base);
  LoadStats dup_open_coal =
      RunOpenLoop(dup_schedule, &pool, clients, dup_inter_ms, dup_options);
  EmitCase(&metrics, "dup_open_coalesced_", dup_open_coal);

  const uint64_t coalesced_total = static_cast<uint64_t>(
      dup_closed_coal.coalesced + dup_open_coal.coalesced);
  const double solves_per_unique_key =
      dup_unique > 0
          ? static_cast<double>(dup_open_coal.solves) / dup_unique
          : 0.0;
  metrics.push_back({"coalesced", static_cast<double>(coalesced_total)});
  metrics.push_back({"solves_per_unique_key", solves_per_unique_key});

  // --- Token-bucket and warm-up scenarios. ---
  bool ratelimit_hints_ok = true;
  const uint64_t ratelimited =
      RunRateLimitScenario(&pool, &metrics, &ratelimit_hints_ok);
  metrics.push_back({"ratelimited", static_cast<double>(ratelimited)});
  const uint64_t cache_warm_hits = RunWarmupScenario(&pool, &metrics);
  metrics.push_back({"cache_warm_hits", static_cast<double>(cache_warm_hits)});

  // --- Smoke gates. ---
  const LoadStats* all_runs[] = {&closed,          &open,
                                 &dup_closed_base, &dup_closed_coal,
                                 &dup_open_base,   &dup_open_coal};
  // Silent drops: every admitted request must resolve its future.
  int silent_drops = 0;
  bool accounting_exact = true;
  for (const LoadStats* run : all_runs) {
    silent_drops += run->admitted - run->resolved;
    // Accounting: submit either admits or rejects, nothing else.
    accounting_exact =
        accounting_exact && run->submitted == run->admitted + run->rejected;
  }
  metrics.push_back({"silent_drops", static_cast<double>(silent_drops)});
  // Generous p99 bound for the closed loop (no queue oversubscription, so
  // latency is essentially solve time; the bound only catches pathologies
  // like a wedged worker or a lost wakeup).
  const double p99_bound_ms = 5000.0;
  const double closed_p99 = Percentile(closed.latencies_ms, 99.0);
  metrics.push_back({"closed_p99_bound_ms", p99_bound_ms});

  bool ok = true;
  if (silent_drops != 0) {
    std::cerr << "FAIL: " << silent_drops << " admitted futures never resolved\n";
    ok = false;
  }
  if (!accounting_exact) {
    std::cerr << "FAIL: admit/reject accounting does not add up\n";
    ok = false;
  }
  if (closed.failed != 0) {
    std::cerr << "FAIL: " << closed.failed
              << " closed-loop requests returned an error status\n";
    ok = false;
  }
  if (closed_p99 > p99_bound_ms) {
    std::cerr << "FAIL: closed-loop p99 " << closed_p99 << " ms exceeds "
              << p99_bound_ms << " ms\n";
    ok = false;
  }
  // Single-flight: with coalescing on, no deadlines and an uncapped
  // queue, every duplicate either attaches to an in-flight leader or
  // hits the plan cache — the coalesced runs must solve each unique key
  // exactly once.
  if (dup_closed_coal.solves != static_cast<uint64_t>(dup_unique)) {
    std::cerr << "FAIL: duplicate-heavy closed loop ran "
              << dup_closed_coal.solves << " solves for " << dup_unique
              << " unique keys with coalescing on\n";
    ok = false;
  }
  if (dup_open_coal.solves != static_cast<uint64_t>(dup_unique)) {
    std::cerr << "FAIL: duplicate-heavy open loop ran " << dup_open_coal.solves
              << " solves for " << dup_unique
              << " unique keys with coalescing on\n";
    ok = false;
  }
  if (coalesced_total == 0) {
    std::cerr << "FAIL: duplicate-heavy runs coalesced nothing (the opening "
                 "salvo pins concurrent duplicates, so this should be "
                 "impossible)\n";
    ok = false;
  }
  if (dup_closed_coal.failed != 0 || dup_open_coal.failed != 0 ||
      dup_closed_base.failed != 0 || dup_open_base.failed != 0) {
    std::cerr << "FAIL: duplicate-heavy requests returned an error status\n";
    ok = false;
  }
  if (ratelimited == 0) {
    std::cerr << "FAIL: 32-deep burst against a burst-4 token bucket was "
                 "never rate limited\n";
    ok = false;
  }
  if (!ratelimit_hints_ok) {
    std::cerr << "FAIL: a rate-limit rejection carried no positive "
                 "retry-after hint\n";
    ok = false;
  }
  if (cache_warm_hits < 1) {
    std::cerr << "FAIL: warm-up round trip produced no warm cache hits\n";
    ok = false;
  }
  metrics.push_back({"smoke_ok", ok ? 1.0 : 0.0});

  const char* json_path = std::getenv("QJO_BENCH_SERVING_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_serving.json";
  std::ofstream out(path);
  out << "{\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << "  \"" << metrics[i].name << "\": " << metrics[i].value
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "}\n";
  out.close();
  std::cout << "wrote " << path << std::endl;

  return ok ? 0 : 1;
}

}  // namespace
}  // namespace qjo

int main() { return qjo::RunSuite(); }

// Reproduces Table 3: average fraction of valid and optimal solutions over
// repeated annealing experiments (simulated quantum annealing with ICE
// noise on minor-embedded QUBOs), for 3/4/5-relation chain/star/cycle
// queries and annealing times of 20/60/100 us. Each experiment embeds its
// query once and reuses the embedding across annealing times (as on real
// hardware).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/postprocess.h"
#include "embedding/embedded_qubo.h"
#include "embedding/minor_embedding.h"
#include "jo/classical.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "qubo/ising.h"
#include "sim/sqa.h"
#include "topology/vendor_topologies.h"
#include "util/strings.h"

namespace qjo {
namespace {

constexpr double kAnnealTimes[] = {20.0, 60.0, 100.0};

struct CellStats {
  double valid_sum = 0.0;
  double optimal_sum = 0.0;
  double chain_break_sum = 0.0;
  int completed = 0;
};

void Run() {
  const int reads = bench::Scaled(500, 100);
  const int experiments = bench::Scaled(4, 2);
  bench::Banner("Table 3",
                "annealing solution quality (SQA + ICE noise, Pegasus)");
  bench::PaperNote(
      "paper (1000 reads x 20 experiments): 3 relations ~25-33% valid / "
      "~8-10% optimal; 4 relations ~1.5-3.2% valid / ~0.2-0.4% optimal; 5 "
      "relations <=0.07% valid, 0% optimal; annealing time has minimal "
      "impact");

  auto pegasus = MakePegasus(8);  // 1344 qubits: ample for <=5 relations
  if (!pegasus.ok()) return;

  const int parallelism = bench::Parallelism();
  long long total_reads = 0;
  double total_sqa_seconds = 0.0;

  std::printf("\n%d reads x %d experiments per cell "
              "(QJO_BENCH_SCALE=4 for the paper's 20), "
              "parallelism %d (QJO_BENCH_PARALLELISM)\n",
              reads, experiments, parallelism);
  std::printf("%-8s %3s | %10s | %8s %8s | %10s %10s\n", "graph", "T",
              "t_anneal", "valid", "optimal", "phys-qubits", "chainbreak");

  for (QueryGraphType type : {QueryGraphType::kChain, QueryGraphType::kStar,
                              QueryGraphType::kCycle}) {
    for (int t : {3, 4, 5}) {
      if (type == QueryGraphType::kStar && t == 3) continue;  // = chain
      CellStats cells[3];
      int physical = 0;
      for (int e = 0; e < experiments; ++e) {
        Rng rng(9000 + 1000 * t + 100 * static_cast<int>(type) + e);
        QueryGenOptions gen;
        gen.num_relations = t;
        gen.graph_type = type;
        gen.min_log_card = 2.0;
        gen.max_log_card = 4.0;
        auto query = GenerateQuery(gen, rng);
        if (!query.ok()) continue;
        JoMilpOptions options;
        options.thresholds = MakeGeometricThresholds(*query, 1);
        auto milp = EncodeJoAsMilp(*query, options);
        if (!milp.ok()) continue;
        auto bilp = LowerToBilp(milp->model(), 1.0);
        if (!bilp.ok()) continue;
        auto encoding = ConvertBilpToQubo(*bilp, QuboConversionOptions{});
        if (!encoding.ok()) continue;
        auto oracle = OptimizeDp(*query);
        if (!oracle.ok()) continue;

        auto embedding = FindMinorEmbedding(
            encoding->qubo.Edges(), encoding->qubo.num_variables(), *pegasus,
            EmbeddingOptions{}, rng);
        if (!embedding.ok()) continue;
        auto embedded = EmbedQubo(encoding->qubo, *embedding, *pegasus,
                                  EmbedQuboOptions{});
        if (!embedded.ok()) continue;
        physical = embedding->NumPhysicalQubits();
        const IsingModel physical_ising = QuboToIsing(embedded->physical);

        for (int time_index = 0; time_index < 3; ++time_index) {
          SqaOptions sqa;
          sqa.num_reads = reads;
          sqa.annealing_time_us = kAnnealTimes[time_index];
          sqa.ice_sigma = 0.015;
          // Cost knobs: the paper's own finding is that annealing time
          // hardly matters, so a coarser time -> sweep mapping and fewer
          // Trotter replicas preserve the table's shape at a fraction of
          // the Monte-Carlo cost.
          sqa.sweeps_per_us = 3.0;
          sqa.trotter_slices = 8;
          sqa.control.parallelism = parallelism;
          bench::ObsSession::Get().Apply(sqa.control);
          const auto sqa_start = std::chrono::steady_clock::now();
          auto sqa_reads = RunSqa(physical_ising, sqa, rng);
          total_sqa_seconds +=
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            sqa_start)
                  .count();
          if (!sqa_reads.ok()) continue;
          total_reads += sqa_reads->size();
          std::vector<std::vector<int>> samples;
          double chain_breaks = 0.0;
          for (const SqaSample& read : *sqa_reads) {
            const UnembeddedSample logical =
                UnembedSample(SpinsToBits(read.spins), *embedding, rng);
            chain_breaks += logical.chain_break_fraction;
            samples.push_back(logical.logical_bits);
          }
          const SampleSetStats stats =
              EvaluateSamples(*milp, samples, oracle->cost);
          CellStats& cell = cells[time_index];
          cell.valid_sum += stats.valid_fraction();
          cell.optimal_sum += stats.optimal_fraction();
          cell.chain_break_sum +=
              chain_breaks / static_cast<double>(sqa_reads->size());
          ++cell.completed;
        }
      }
      for (int time_index = 0; time_index < 3; ++time_index) {
        const CellStats& cell = cells[time_index];
        if (cell.completed == 0) {
          std::printf("%-8s %3d | %8.0fus | all experiments failed\n",
                      QueryGraphTypeName(type), t, kAnnealTimes[time_index]);
          continue;
        }
        std::printf(
            "%-8s %3d | %8.0fus | %8s %8s | %10d %10s\n",
            QueryGraphTypeName(type), t, kAnnealTimes[time_index],
            FormatPercent(cell.valid_sum / cell.completed, 2).c_str(),
            FormatPercent(cell.optimal_sum / cell.completed, 2).c_str(),
            physical,
            FormatPercent(cell.chain_break_sum / cell.completed, 1).c_str());
      }
    }
  }
  if (total_sqa_seconds > 0.0) {
    std::printf(
        "\nthroughput: %lld SQA reads in %.1fs -> %.0f reads/sec "
        "(parallelism %d; sample sets are bit-identical at any level)\n",
        total_reads, total_sqa_seconds,
        static_cast<double>(total_reads) / total_sqa_seconds, parallelism);
  }
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

// Portfolio race benchmark: the deadline-aware orchestrator against each
// solver running solo on a dense 128-variable QUBO suite. Baseline: every
// solver runs solo with the full sweep budget; the "best single solver" is
// the one with the lowest energy, ties (within 1e-9 relative) broken
// toward the *fastest* — the strongest defensible baseline, since an
// oracle would pick exactly that run. The portfolio then races with that
// baseline's wall time as its deadline, not knowing which strand is best.
// Headline metrics: the portfolio's time-to-best-incumbent (the moment
// the winning strand last improved) is within the best solo time, and the
// incumbent's energy matches the best solo energy.
//
// Writes BENCH_portfolio.json (override with QJO_BENCH_PORTFOLIO_JSON).
// QJO_PORTFOLIO_BENCH_FAST=1 shrinks the suite to one instance with a
// small budget for the ctest smoke entry; QJO_BENCH_PARALLELISM overrides
// the thread count.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/portfolio.h"
#include "core/quantum_optimizer.h"
#include "core/strand_select.h"
#include "jo/query.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "qubo/solvers.h"
#include "sim/sqa.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

Qubo MakeDenseQubo(int n, uint64_t seed) {
  Rng rng(seed);
  Qubo q(n);
  for (int i = 0; i < n; ++i) {
    q.AddLinear(i, rng.UniformDouble(-2, 2));
    for (int j = i + 1; j < n; ++j) {
      q.AddQuadratic(i, j, rng.UniformDouble(-2, 2));
    }
  }
  return q;
}

struct Metric {
  std::string name;
  double value;
};

void WriteJson(const std::string& path, const std::vector<Metric>& metrics) {
  std::ofstream out(path);
  out << "{\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << "  \"" << metrics[i].name << "\": " << metrics[i].value
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "}\n";
  out.close();
  std::cout << "wrote " << path << std::endl;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SoloResult {
  double seconds = 0.0;
  double best_energy = 0.0;
};

int RunSuite() {
  const bool fast = std::getenv("QJO_PORTFOLIO_BENCH_FAST") != nullptr;
  int parallelism = static_cast<int>(std::thread::hardware_concurrency());
  if (const char* p = std::getenv("QJO_BENCH_PARALLELISM")) {
    parallelism = std::atoi(p);
  }
  parallelism = std::max(parallelism, 2);

  const int n = 128;
  const int instances = fast ? 1 : 3;
  const int64_t sweep_budget = fast ? 512 : 4096;
  const int reads_per_round = 4;
  const int sweeps_per_round = 64;
  // Solo runs spend the identical budget in one solver call.
  const int solo_reads =
      static_cast<int>(sweep_budget / sweeps_per_round);

  ThreadPool pool(parallelism);
  std::vector<Metric> metrics;
  metrics.push_back(
      {"simd_isa", static_cast<double>(static_cast<int>(Simd().isa))});
  metrics.push_back({"n", static_cast<double>(n)});
  metrics.push_back({"instances", static_cast<double>(instances)});
  metrics.push_back({"sweep_budget", static_cast<double>(sweep_budget)});
  metrics.push_back({"parallelism", static_cast<double>(parallelism)});
  metrics.push_back({"fast_mode", fast ? 1.0 : 0.0});

  bool all_within_best_solo = true;
  for (int inst = 0; inst < instances; ++inst) {
    const std::string prefix = "i" + std::to_string(inst) + "_";
    const Qubo qubo = MakeDenseQubo(n, 71 + inst);
    qubo.Csr();

    // --- Solo baselines, each spending the full budget. ---
    SoloResult solo_sa;
    {
      SaOptions options;
      options.num_reads = solo_reads;
      options.sweeps_per_read = sweeps_per_round;
      options.control.parallelism = parallelism;
      options.control.pool = &pool;
      bench::ObsSession::Get().Apply(options.control);
      Rng rng(301 + inst);
      const auto t0 = std::chrono::steady_clock::now();
      const auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
      solo_sa.seconds = Seconds(t0);
      solo_sa.best_energy = BestSolution(reads).energy;
    }
    SoloResult solo_tabu;
    {
      TabuOptions options;
      options.num_restarts = solo_reads;
      options.iterations_per_restart = sweeps_per_round;
      options.control.parallelism = parallelism;
      options.control.pool = &pool;
      bench::ObsSession::Get().Apply(options.control);
      Rng rng(401 + inst);
      const auto t0 = std::chrono::steady_clock::now();
      const auto restarts = SolveQuboTabuSearch(qubo, options, rng);
      solo_tabu.seconds = Seconds(t0);
      solo_tabu.best_energy = BestSolution(restarts).energy;
    }
    SoloResult solo_sqa;
    {
      const IsingModel ising = QuboToIsing(qubo);
      SqaOptions options;
      options.num_reads = solo_reads;
      options.annealing_time_us = sweeps_per_round;
      options.sweeps_per_us = 1.0;
      options.control.parallelism = parallelism;
      options.control.pool = &pool;
      bench::ObsSession::Get().Apply(options.control);
      Rng rng(501 + inst);
      const auto t0 = std::chrono::steady_clock::now();
      const auto samples = RunSqa(ising, options, rng);
      solo_sqa.seconds = Seconds(t0);
      if (samples.ok()) {
        double best = samples->front().energy;
        for (const auto& s : *samples) best = std::min(best, s.energy);
        solo_sqa.best_energy = best;
      }
    }

    // The solo baseline to beat: lowest energy; among quality ties
    // (dense random QUBOs saturate easily) the fastest run — what an
    // oracle that knew the best solver would have paid.
    const SoloResult* best_solo = &solo_sa;
    for (const SoloResult* candidate : {&solo_tabu, &solo_sqa}) {
      const double tol =
          1e-9 * std::max(1.0, std::abs(best_solo->best_energy));
      if (candidate->best_energy < best_solo->best_energy - tol ||
          (std::abs(candidate->best_energy - best_solo->best_energy) <= tol &&
           candidate->seconds < best_solo->seconds)) {
        best_solo = candidate;
      }
    }

    // --- The portfolio, blind to which strand is best, racing within
    // exactly the oracle baseline's wall-clock budget. ---
    PortfolioOptions options;
    options.run.deadline_ms = best_solo->seconds * 1e3;
    options.sweep_budget = 0;  // the deadline is the only bound
    options.reads_per_round = reads_per_round;
    options.sweeps_per_round = sweeps_per_round;
    options.run.parallelism = parallelism;
    options.run.pool = &pool;
    bench::ObsSession::Get().Apply(options);
    Rng rng(601 + inst);
    const auto race = RaceQuboPortfolio(qubo, options, rng);
    if (!race.ok()) {
      std::cerr << "portfolio race failed: " << race.status().ToString()
                << "\n";
      return 1;
    }
    if (race->winner < 0) {
      std::cerr << "portfolio race produced no incumbent\n";
      return 1;
    }
    const StrandOutcome& winner = race->strands[race->winner];
    const double tti_seconds = winner.time_to_incumbent_ms / 1e3;
    const bool within = tti_seconds <= best_solo->seconds;
    all_within_best_solo = all_within_best_solo && within;
    const double energy_gap = race->best_energy - best_solo->best_energy;

    metrics.push_back({prefix + "solo_sa_seconds", solo_sa.seconds});
    metrics.push_back({prefix + "solo_sa_best_energy", solo_sa.best_energy});
    metrics.push_back({prefix + "solo_tabu_seconds", solo_tabu.seconds});
    metrics.push_back(
        {prefix + "solo_tabu_best_energy", solo_tabu.best_energy});
    metrics.push_back({prefix + "solo_sqa_seconds", solo_sqa.seconds});
    metrics.push_back({prefix + "solo_sqa_best_energy", solo_sqa.best_energy});
    metrics.push_back({prefix + "best_solo_seconds", best_solo->seconds});
    metrics.push_back(
        {prefix + "best_solo_best_energy", best_solo->best_energy});
    metrics.push_back({prefix + "portfolio_elapsed_seconds",
                       race->elapsed_ms / 1e3});
    metrics.push_back(
        {prefix + "portfolio_winner_strand",
         static_cast<double>(race->winner)});
    metrics.push_back({prefix + "portfolio_best_energy", race->best_energy});
    metrics.push_back(
        {prefix + "portfolio_time_to_incumbent_seconds", tti_seconds});
    metrics.push_back(
        {prefix + "portfolio_tti_le_best_solo", within ? 1.0 : 0.0});
    metrics.push_back({prefix + "portfolio_energy_gap", energy_gap});

    std::cout << "instance " << inst << ": winner "
              << winner.name << ", incumbent at "
              << tti_seconds << " s vs best solo " << best_solo->seconds
              << " s (" << (within ? "within" : "SLOWER")
              << "), energy gap " << energy_gap << "\n";
  }
  metrics.push_back(
      {"all_tti_le_best_solo", all_within_best_solo ? 1.0 : 0.0});

  const char* json_path = std::getenv("QJO_BENCH_PORTFOLIO_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_portfolio.json";
  WriteJson(path, metrics);
  return 0;
}

// --- Adaptive-vs-fixed section. ---
//
// A mixed chain/star/cycle/clique workload first trains the per-bucket
// bandit (eight recorded races per query — the selector's warm-up bar),
// then replays every query over a fixed set of evaluation seeds: the
// fixed race against the adaptive race over the frozen records, seed by
// seed. Aggregating over several seeds is what makes the comparison
// honest — on a single seed the fixed winner can be a strand the
// training data correctly ranks low (a 1-in-8 lucky draw), and gating
// on that one draw would punish the bandit for the right call.
// Headline metric: the winners' wall time-to-incumbent summed over all
// query x seed evals, adaptive over fixed. In pure sweep-budget mode
// throttling never changes the winner's *sweep* count (strands are
// independent), so the adaptive win shows up in wall clock — throttled
// strands stop competing for cores — and in total race work, which the
// deterministic work_ratio (total sweeps completed, adaptive / fixed)
// captures; throttling can only shrink it, so the gate pins it at
// <= 1.0 exactly. Plan quality is compared through the DP optimum the
// report carries: sum of best_cost/optimal_cost over the evals. Exits
// nonzero when the adaptive race regresses plan quality by more than
// 5%, does more work than the fixed race, fails to engage the bandit on
// any trained bucket, or (full mode only — the smoke sticks to the
// deterministic invariants) regresses wall tti past 5%. Writes
// BENCH_adaptive.json (override with QJO_BENCH_ADAPTIVE_JSON); the
// checked-in full-mode artifact is additionally held to tti_ratio
// <= 1.0 by tools/check_bench_schema.py.

Query MakeJoinQuery(int relations, const std::string& shape) {
  Query q;
  for (int i = 0; i < relations; ++i) {
    q.AddRelation("R" + std::to_string(i), 100.0 * (i + 1));
  }
  const auto edge = [&](int a, int b) { (void)q.AddPredicate(a, b, 0.1); };
  if (shape == "chain") {
    for (int i = 0; i + 1 < relations; ++i) edge(i, i + 1);
  } else if (shape == "star") {
    for (int i = 1; i < relations; ++i) edge(0, i);
  } else if (shape == "cycle") {
    for (int i = 0; i + 1 < relations; ++i) edge(i, i + 1);
    edge(relations - 1, 0);
  } else {  // clique
    for (int i = 0; i < relations; ++i) {
      for (int j = i + 1; j < relations; ++j) edge(i, j);
    }
  }
  return q;
}

std::string SanitizeKey(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

int RunAdaptiveSuite() {
  const bool fast = std::getenv("QJO_PORTFOLIO_BENCH_FAST") != nullptr;
  int parallelism = static_cast<int>(std::thread::hardware_concurrency());
  if (const char* p = std::getenv("QJO_BENCH_PARALLELISM")) {
    parallelism = std::atoi(p);
  }
  parallelism = std::max(parallelism, 2);

  const std::vector<std::string> shapes = {"chain", "star", "cycle", "clique"};
  std::vector<Query> workload;
  for (const std::string& shape : shapes) {
    workload.push_back(MakeJoinQuery(4, shape));
    if (!fast) workload.push_back(MakeJoinQuery(5, shape));
  }

  QjoConfig base;
  base.backend = QjoBackend::kPortfolio;
  base.portfolio.sweep_budget = fast ? 512 : 2048;  // pure sweep-budget mode
  base.run.parallelism = parallelism;

  // Training: eight recorded races per query crosses the selector's
  // min_bucket_trials bar for every bucket in the workload.
  RunRecordStore records;
  const int train_reps = 8;
  int trained = 0;
  for (int rep = 0; rep < train_reps; ++rep) {
    for (const Query& query : workload) {
      QjoConfig config = base;
      config.seed = 100 + rep;
      config.adaptive = true;
      config.strand_records = &records;
      const auto report = OptimizeJoinOrder(query, config);
      if (!report.ok()) {
        std::cerr << "adaptive training run failed: "
                  << report.status().ToString() << "\n";
        return 1;
      }
      ++trained;
    }
  }

  std::vector<Metric> metrics;
  metrics.push_back(
      {"simd_isa", static_cast<double>(static_cast<int>(Simd().isa))});
  metrics.push_back({"parallelism", static_cast<double>(parallelism)});
  metrics.push_back({"fast_mode", fast ? 1.0 : 0.0});
  metrics.push_back({"queries", static_cast<double>(workload.size())});
  metrics.push_back({"trained_races", static_cast<double>(trained)});
  metrics.push_back(
      {"buckets", static_cast<double>(records.NumBuckets())});

  const std::vector<uint64_t> eval_seeds = {7, 11, 23, 42};
  metrics.push_back(
      {"eval_seeds", static_cast<double>(eval_seeds.size())});

  double fixed_sweeps = 0.0, adaptive_sweeps = 0.0;
  double fixed_work = 0.0, adaptive_work = 0.0;
  double fixed_tti_ms = 0.0, adaptive_tti_ms = 0.0;
  double fixed_elapsed_ms = 0.0, adaptive_elapsed_ms = 0.0;
  double fixed_cost_over_opt = 0.0, adaptive_cost_over_opt = 0.0;
  int throttled_strands = 0;
  bool all_applied = true;
  bool all_valid = true;
  for (size_t i = 0; i < workload.size(); ++i) {
    double q_fixed_sweeps = 0.0, q_adaptive_sweeps = 0.0;
    double q_fixed_tti = 0.0, q_adaptive_tti = 0.0;
    int q_throttled = 0;
    int q_flips = 0;
    for (uint64_t seed : eval_seeds) {
      QjoConfig fixed = base;
      fixed.seed = seed;
      const auto fixed_report = OptimizeJoinOrder(workload[i], fixed);

      QjoConfig adaptive = base;
      adaptive.seed = seed;
      adaptive.adaptive = true;
      adaptive.strand_records = &records;
      adaptive.portfolio.adaptive.record = false;  // frozen snapshot replay
      const auto adaptive_report = OptimizeJoinOrder(workload[i], adaptive);
      if (!fixed_report.ok() || !adaptive_report.ok()) {
        std::cerr << "adaptive eval run failed\n";
        return 1;
      }

      const auto& fixed_race = fixed_report->portfolio.race;
      const auto& adaptive_race = adaptive_report->portfolio.race;
      if (fixed_race.winner < 0 || adaptive_race.winner < 0) {
        std::cerr << "adaptive eval produced no incumbent\n";
        return 1;
      }
      const StrandOutcome& fixed_winner =
          fixed_race.strands[fixed_race.winner];
      const StrandOutcome& adaptive_winner =
          adaptive_race.strands[adaptive_race.winner];
      all_applied = all_applied && adaptive_race.adaptive_applied;
      all_valid = all_valid && fixed_report->found_valid &&
                  adaptive_report->found_valid;
      // Plan quality, normalised by the DP optimum the report carries
      // (>= optimal by construction; 1.0 = the race found the optimum).
      const double fixed_opt = std::max(fixed_report->optimal_cost, 1e-12);
      const double adaptive_opt =
          std::max(adaptive_report->optimal_cost, 1e-12);
      fixed_cost_over_opt += fixed_report->best_cost / fixed_opt;
      adaptive_cost_over_opt += adaptive_report->best_cost / adaptive_opt;

      int throttled = 0;
      for (const StrandOutcome& s : adaptive_race.strands) {
        throttled += s.allocation.throttled ? 1 : 0;
        adaptive_work += static_cast<double>(s.sweeps_completed);
      }
      for (const StrandOutcome& s : fixed_race.strands) {
        fixed_work += static_cast<double>(s.sweeps_completed);
      }
      q_throttled += throttled;
      q_flips += fixed_winner.name != adaptive_winner.name ? 1 : 0;
      q_fixed_sweeps += static_cast<double>(fixed_winner.sweeps_to_incumbent);
      q_adaptive_sweeps +=
          static_cast<double>(adaptive_winner.sweeps_to_incumbent);
      q_fixed_tti += fixed_winner.time_to_incumbent_ms;
      q_adaptive_tti += adaptive_winner.time_to_incumbent_ms;
      fixed_elapsed_ms += fixed_race.elapsed_ms;
      adaptive_elapsed_ms += adaptive_race.elapsed_ms;
    }
    throttled_strands += q_throttled;
    fixed_sweeps += q_fixed_sweeps;
    adaptive_sweeps += q_adaptive_sweeps;
    fixed_tti_ms += q_fixed_tti;
    adaptive_tti_ms += q_adaptive_tti;

    const std::string prefix = "q" + std::to_string(i) + "_";
    metrics.push_back({prefix + "fixed_winner_tti_ms", q_fixed_tti});
    metrics.push_back({prefix + "adaptive_winner_tti_ms", q_adaptive_tti});
    metrics.push_back(
        {prefix + "throttled", static_cast<double>(q_throttled)});
    metrics.push_back(
        {prefix + "winner_flips", static_cast<double>(q_flips)});
    std::cout << "query " << i << ": fixed winners "
              << static_cast<int64_t>(q_fixed_sweeps)
              << " sweeps-to-incumbent, adaptive "
              << static_cast<int64_t>(q_adaptive_sweeps) << " sweeps, "
              << q_flips << "/" << eval_seeds.size() << " winner flips, "
              << q_throttled << " throttled strand-run(s)\n";
  }
  // Adaptive mean cost-over-optimal within 5% of the fixed race's: the
  // throttled strands may surrender a lucky seed, never plan quality in
  // aggregate.
  const bool cost_ok =
      all_valid && adaptive_cost_over_opt <= fixed_cost_over_opt * 1.05;

  // Headline: winners' wall time-to-incumbent, adaptive over fixed. The
  // sweeps twin is informational only — winner flips make it
  // incomparable across races (different strands count different sweep
  // units, one-shot winners count zero). work_ratio is the deterministic
  // guarantee: total sweeps the adaptive race spent; throttling divides
  // budgets, so it can never exceed the fixed race's.
  const double tti_ratio =
      fixed_tti_ms > 0.0 ? adaptive_tti_ms / fixed_tti_ms : 1.0;
  const double sweeps_tti_ratio =
      fixed_sweeps > 0.0 ? adaptive_sweeps / fixed_sweeps
                         : (adaptive_sweeps > 0.0 ? 2.0 : 1.0);
  const double work_ratio =
      fixed_work > 0.0 ? adaptive_work / fixed_work : 1.0;
  const double elapsed_ratio =
      fixed_elapsed_ms > 0.0 ? adaptive_elapsed_ms / fixed_elapsed_ms : 1.0;
  const double cost_ratio = fixed_cost_over_opt > 0.0
                                ? adaptive_cost_over_opt / fixed_cost_over_opt
                                : 1.0;
  metrics.push_back({"tti_ratio", tti_ratio});
  metrics.push_back({"sweeps_tti_ratio", sweeps_tti_ratio});
  metrics.push_back({"work_ratio", work_ratio});
  metrics.push_back({"elapsed_ratio", elapsed_ratio});
  metrics.push_back({"mean_cost_ratio", cost_ratio});
  metrics.push_back({"fixed_tti_seconds", fixed_tti_ms / 1e3});
  metrics.push_back({"adaptive_tti_seconds", adaptive_tti_ms / 1e3});
  metrics.push_back(
      {"throttled_strands", static_cast<double>(throttled_strands)});
  metrics.push_back({"adaptive_applied", all_applied ? 1.0 : 0.0});
  metrics.push_back({"cost_ok", cost_ok ? 1.0 : 0.0});

  // Per-bucket win rates from the trained store.
  for (const std::string& bucket : records.Buckets()) {
    const uint64_t races = records.BucketTrials(bucket);
    if (races == 0) continue;
    for (const char* strand : {"sa", "tabu", "sqa", "decomp"}) {
      const StrandRecord record = records.Get(bucket, strand);
      if (record.trials == 0) continue;
      metrics.push_back({"win_rate_" + SanitizeKey(bucket) + "_" + strand,
                         static_cast<double>(record.wins) /
                             static_cast<double>(record.trials)});
    }
  }

  // The smoke (fast) gate sticks to the deterministic invariants — a
  // sweep-budget race is bit-reproducible, so work/cost/engagement never
  // flake under CI load. The wall-clock tti gate only arms in full mode,
  // which produces the checked-in BENCH_adaptive.json; the schema
  // checker holds that artifact to tti_ratio <= 1.0.
  const bool ok = all_applied && cost_ok && work_ratio <= 1.0 &&
                  (fast || tti_ratio <= 1.05);
  metrics.push_back({"adaptive_ok", ok ? 1.0 : 0.0});

  const char* json_path = std::getenv("QJO_BENCH_ADAPTIVE_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_adaptive.json";
  WriteJson(path, metrics);
  std::cout << "adaptive: wall tti ratio " << tti_ratio << " (work "
            << work_ratio << ", elapsed " << elapsed_ratio << ", cost "
            << cost_ratio << ", sweeps-tti " << sweeps_tti_ratio << "), "
            << throttled_strands << " throttled strand-runs — "
            << (ok ? "OK" : "REGRESSED") << "\n";
  if (!ok) {
    std::cerr << "adaptive-vs-fixed gate failed: "
              << (!all_applied
                      ? "bandit never engaged; "
                      : (!cost_ok ? "plan quality regressed; "
                                  : (work_ratio > 1.0
                                         ? "adaptive did more work; "
                                         : "wall tti ratio > 1.05; ")))
              << "see " << path << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace qjo

int main() {
  const int suite = qjo::RunSuite();
  const int adaptive = qjo::RunAdaptiveSuite();
  return suite != 0 ? suite : adaptive;
}

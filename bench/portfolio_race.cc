// Portfolio race benchmark: the deadline-aware orchestrator against each
// solver running solo on a dense 128-variable QUBO suite. Baseline: every
// solver runs solo with the full sweep budget; the "best single solver" is
// the one with the lowest energy, ties (within 1e-9 relative) broken
// toward the *fastest* — the strongest defensible baseline, since an
// oracle would pick exactly that run. The portfolio then races with that
// baseline's wall time as its deadline, not knowing which strand is best.
// Headline metrics: the portfolio's time-to-best-incumbent (the moment
// the winning strand last improved) is within the best solo time, and the
// incumbent's energy matches the best solo energy.
//
// Writes BENCH_portfolio.json (override with QJO_BENCH_PORTFOLIO_JSON).
// QJO_PORTFOLIO_BENCH_FAST=1 shrinks the suite to one instance with a
// small budget for the ctest smoke entry; QJO_BENCH_PARALLELISM overrides
// the thread count.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/portfolio.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "qubo/solvers.h"
#include "sim/sqa.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

Qubo MakeDenseQubo(int n, uint64_t seed) {
  Rng rng(seed);
  Qubo q(n);
  for (int i = 0; i < n; ++i) {
    q.AddLinear(i, rng.UniformDouble(-2, 2));
    for (int j = i + 1; j < n; ++j) {
      q.AddQuadratic(i, j, rng.UniformDouble(-2, 2));
    }
  }
  return q;
}

struct Metric {
  std::string name;
  double value;
};

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SoloResult {
  double seconds = 0.0;
  double best_energy = 0.0;
};

int RunSuite() {
  const bool fast = std::getenv("QJO_PORTFOLIO_BENCH_FAST") != nullptr;
  int parallelism = static_cast<int>(std::thread::hardware_concurrency());
  if (const char* p = std::getenv("QJO_BENCH_PARALLELISM")) {
    parallelism = std::atoi(p);
  }
  parallelism = std::max(parallelism, 2);

  const int n = 128;
  const int instances = fast ? 1 : 3;
  const int64_t sweep_budget = fast ? 512 : 4096;
  const int reads_per_round = 4;
  const int sweeps_per_round = 64;
  // Solo runs spend the identical budget in one solver call.
  const int solo_reads =
      static_cast<int>(sweep_budget / sweeps_per_round);

  ThreadPool pool(parallelism);
  std::vector<Metric> metrics;
  metrics.push_back(
      {"simd_isa", static_cast<double>(static_cast<int>(Simd().isa))});
  metrics.push_back({"n", static_cast<double>(n)});
  metrics.push_back({"instances", static_cast<double>(instances)});
  metrics.push_back({"sweep_budget", static_cast<double>(sweep_budget)});
  metrics.push_back({"parallelism", static_cast<double>(parallelism)});
  metrics.push_back({"fast_mode", fast ? 1.0 : 0.0});

  bool all_within_best_solo = true;
  for (int inst = 0; inst < instances; ++inst) {
    const std::string prefix = "i" + std::to_string(inst) + "_";
    const Qubo qubo = MakeDenseQubo(n, 71 + inst);
    qubo.Csr();

    // --- Solo baselines, each spending the full budget. ---
    SoloResult solo_sa;
    {
      SaOptions options;
      options.num_reads = solo_reads;
      options.sweeps_per_read = sweeps_per_round;
      options.parallelism = parallelism;
      options.pool = &pool;
      bench::ObsSession::Get().Apply(options.control);
      Rng rng(301 + inst);
      const auto t0 = std::chrono::steady_clock::now();
      const auto reads = SolveQuboSimulatedAnnealing(qubo, options, rng);
      solo_sa.seconds = Seconds(t0);
      solo_sa.best_energy = BestSolution(reads).energy;
    }
    SoloResult solo_tabu;
    {
      TabuOptions options;
      options.num_restarts = solo_reads;
      options.iterations_per_restart = sweeps_per_round;
      options.parallelism = parallelism;
      options.pool = &pool;
      bench::ObsSession::Get().Apply(options.control);
      Rng rng(401 + inst);
      const auto t0 = std::chrono::steady_clock::now();
      const auto restarts = SolveQuboTabuSearch(qubo, options, rng);
      solo_tabu.seconds = Seconds(t0);
      solo_tabu.best_energy = BestSolution(restarts).energy;
    }
    SoloResult solo_sqa;
    {
      const IsingModel ising = QuboToIsing(qubo);
      SqaOptions options;
      options.num_reads = solo_reads;
      options.annealing_time_us = sweeps_per_round;
      options.sweeps_per_us = 1.0;
      options.parallelism = parallelism;
      options.pool = &pool;
      bench::ObsSession::Get().Apply(options.control);
      Rng rng(501 + inst);
      const auto t0 = std::chrono::steady_clock::now();
      const auto samples = RunSqa(ising, options, rng);
      solo_sqa.seconds = Seconds(t0);
      if (samples.ok()) {
        double best = samples->front().energy;
        for (const auto& s : *samples) best = std::min(best, s.energy);
        solo_sqa.best_energy = best;
      }
    }

    // The solo baseline to beat: lowest energy; among quality ties
    // (dense random QUBOs saturate easily) the fastest run — what an
    // oracle that knew the best solver would have paid.
    const SoloResult* best_solo = &solo_sa;
    for (const SoloResult* candidate : {&solo_tabu, &solo_sqa}) {
      const double tol =
          1e-9 * std::max(1.0, std::abs(best_solo->best_energy));
      if (candidate->best_energy < best_solo->best_energy - tol ||
          (std::abs(candidate->best_energy - best_solo->best_energy) <= tol &&
           candidate->seconds < best_solo->seconds)) {
        best_solo = candidate;
      }
    }

    // --- The portfolio, blind to which strand is best, racing within
    // exactly the oracle baseline's wall-clock budget. ---
    PortfolioOptions options;
    options.deadline_ms = best_solo->seconds * 1e3;
    options.sweep_budget = 0;  // the deadline is the only bound
    options.reads_per_round = reads_per_round;
    options.sweeps_per_round = sweeps_per_round;
    options.parallelism = parallelism;
    options.pool = &pool;
    bench::ObsSession::Get().Apply(options);
    Rng rng(601 + inst);
    const auto race = RaceQuboPortfolio(qubo, options, rng);
    if (!race.ok()) {
      std::cerr << "portfolio race failed: " << race.status().ToString()
                << "\n";
      return 1;
    }
    if (race->winner < 0) {
      std::cerr << "portfolio race produced no incumbent\n";
      return 1;
    }
    const StrandOutcome& winner = race->strands[race->winner];
    const double tti_seconds = winner.time_to_incumbent_ms / 1e3;
    const bool within = tti_seconds <= best_solo->seconds;
    all_within_best_solo = all_within_best_solo && within;
    const double energy_gap = race->best_energy - best_solo->best_energy;

    metrics.push_back({prefix + "solo_sa_seconds", solo_sa.seconds});
    metrics.push_back({prefix + "solo_sa_best_energy", solo_sa.best_energy});
    metrics.push_back({prefix + "solo_tabu_seconds", solo_tabu.seconds});
    metrics.push_back(
        {prefix + "solo_tabu_best_energy", solo_tabu.best_energy});
    metrics.push_back({prefix + "solo_sqa_seconds", solo_sqa.seconds});
    metrics.push_back({prefix + "solo_sqa_best_energy", solo_sqa.best_energy});
    metrics.push_back({prefix + "best_solo_seconds", best_solo->seconds});
    metrics.push_back(
        {prefix + "best_solo_best_energy", best_solo->best_energy});
    metrics.push_back({prefix + "portfolio_elapsed_seconds",
                       race->elapsed_ms / 1e3});
    metrics.push_back(
        {prefix + "portfolio_winner_strand",
         static_cast<double>(race->winner)});
    metrics.push_back({prefix + "portfolio_best_energy", race->best_energy});
    metrics.push_back(
        {prefix + "portfolio_time_to_incumbent_seconds", tti_seconds});
    metrics.push_back(
        {prefix + "portfolio_tti_le_best_solo", within ? 1.0 : 0.0});
    metrics.push_back({prefix + "portfolio_energy_gap", energy_gap});

    std::cout << "instance " << inst << ": winner "
              << PortfolioStrandName(winner.strand) << ", incumbent at "
              << tti_seconds << " s vs best solo " << best_solo->seconds
              << " s (" << (within ? "within" : "SLOWER")
              << "), energy gap " << energy_gap << "\n";
  }
  metrics.push_back(
      {"all_tti_le_best_solo", all_within_best_solo ? 1.0 : 0.0});

  const char* json_path = std::getenv("QJO_BENCH_PORTFOLIO_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_portfolio.json";
  std::ofstream out(path);
  out << "{\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << "  \"" << metrics[i].name << "\": " << metrics[i].value
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "}\n";
  out.close();
  std::cout << "wrote " << path << std::endl;
  return 0;
}

}  // namespace
}  // namespace qjo

int main() { return qjo::RunSuite(); }

// Reproduces Fig. 3: physical qubits required to minor-embed JO QUBOs onto
// the D-Wave Advantage topology (Pegasus P16). Top: scaling over the
// number of relations for chain/star/cycle query graphs at minimum
// approximation precision. Bottom: a fixed 8-relation instance with
// growing threshold counts at omega = 1 / 0.01 / 0.0001.

#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench/bench_common.h"
#include "embedding/minor_embedding.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "topology/vendor_topologies.h"
#include "util/random.h"

namespace qjo {
namespace {

struct EmbeddingPoint {
  int logical = 0;
  int physical = 0;
  int max_chain = 0;
};

std::optional<EmbeddingPoint> EmbedInstance(const Query& query,
                                            int num_thresholds, double omega,
                                            const CouplingGraph& target,
                                            uint64_t seed) {
  JoMilpOptions options;
  options.thresholds = MakeGeometricThresholds(query, num_thresholds);
  options.omega = omega;
  auto milp = EncodeJoAsMilp(query, options);
  if (!milp.ok()) return std::nullopt;
  auto bilp = LowerToBilp(milp->model(), omega);
  if (!bilp.ok()) return std::nullopt;
  QuboConversionOptions qopts;
  qopts.omega = omega;
  auto encoding = ConvertBilpToQubo(*bilp, qopts);
  if (!encoding.ok()) return std::nullopt;

  Rng rng(seed);
  EmbeddingOptions eopts;
  eopts.tries = 4;
  auto embedding =
      FindMinorEmbedding(encoding->qubo.Edges(),
                         encoding->qubo.num_variables(), target, eopts, rng);
  if (!embedding.ok()) return std::nullopt;
  EmbeddingPoint point;
  point.logical = encoding->qubo.num_variables();
  point.physical = embedding->NumPhysicalQubits();
  point.max_chain = embedding->MaxChainLength();
  return point;
}

void Run() {
  bench::Banner("Figure 3", "physical qubits for Pegasus (P16) embeddings");
  bench::PaperNote(
      "embeddings exist up to 15 relations at minimum precision; physical "
      "qubits scale quadratically in relations (linear overhead over "
      "logical); query graph type barely matters, cycle slightly larger; "
      "at 8 relations: ~20 thresholds fit at omega=1, ~6 at 0.01, ~3 at "
      "0.0001");

  auto pegasus = MakePegasus(16);
  if (!pegasus.ok()) return;

  // The paper's sweep reaches 15 relations; each embedding beyond ~7
  // relations costs minutes of CMR iterations on a single core, so the
  // default stops at 7 (raise QJO_BENCH_SCALE to extend towards 15).
  const int max_relations = std::min(bench::Scaled(7, 5), 15);
  std::printf("\n[top] relations sweep, 1 threshold, omega=1 (up to %d)\n",
              max_relations);
  std::printf("%10s | %-8s %8s %8s %9s %9s\n", "relations", "graph",
              "logical", "physical", "overhead", "max-chain");
  Rng gen_rng(11);
  for (int t = 3; t <= max_relations; ++t) {
    for (QueryGraphType type : {QueryGraphType::kChain, QueryGraphType::kStar,
                                QueryGraphType::kCycle}) {
      QueryGenOptions gen;
      gen.num_relations = t;
      gen.graph_type = type;
      gen.min_log_card = 2.0;
      gen.max_log_card = 4.0;
      auto query = GenerateQuery(gen, gen_rng);
      if (!query.ok()) continue;
      std::optional<EmbeddingPoint> point;
      for (uint64_t attempt = 0; attempt < 3 && !point.has_value();
           ++attempt) {
        point = EmbedInstance(*query, 1, 1.0, *pegasus,
                              100 + t + 1000 * attempt);
      }
      if (!point.has_value()) {
        std::printf("%10d | %-8s no embedding found\n", t,
                    QueryGraphTypeName(type));
        continue;
      }
      std::printf("%10d | %-8s %8d %8d %8.2fx %9d\n", t,
                  QueryGraphTypeName(type), point->logical, point->physical,
                  static_cast<double>(point->physical) / point->logical,
                  point->max_chain);
    }
  }

  // The paper's bottom panel uses 8 relations; the default here uses 6
  // (same blow-up shape, minutes instead of tens of minutes), switching to
  // 8 at QJO_BENCH_SCALE >= 2.
  const int bottom_relations = bench::Scale() >= 2.0 ? 8 : 6;
  std::printf(
      "\n[bottom] %d relations (chain), threshold/precision sweep\n",
      bottom_relations);
  std::printf("%10s | %-10s %8s %8s %9s\n", "thresholds", "omega", "logical",
              "physical", "max-chain");
  QueryGenOptions gen;
  gen.num_relations = bottom_relations;
  gen.graph_type = QueryGraphType::kChain;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  Rng rng8(13);
  auto query8 = GenerateQuery(gen, rng8);
  if (!query8.ok()) return;
  struct Sweep {
    double omega;
    int r_cap;
    std::vector<int> thresholds;
  };
  // Paper result: ~20 thresholds fit at omega=1, ~6 at 0.01, ~3 at 0.0001.
  // Default caps keep the bench to minutes; scale up for the full sweep.
  std::vector<Sweep> sweeps = {
      {1.0, bench::Scaled(4, 2), {1, 2, 4, 8, 12, 16, 20}},
      {0.01, bench::Scaled(2, 1), {1, 2, 4, 6, 8}},
      {0.0001, bench::Scaled(1, 1), {1, 2, 3, 4}},
  };
  for (const Sweep& sweep : sweeps) {
    for (int r : sweep.thresholds) {
      if (r > sweep.r_cap) continue;
      // The embedder is randomised; retry a few seeds before declaring
      // the hardware limit reached.
      std::optional<EmbeddingPoint> point;
      for (uint64_t attempt = 0; attempt < 3 && !point.has_value();
           ++attempt) {
        point = EmbedInstance(*query8, r, sweep.omega, *pegasus,
                              300 + r + 1000 * attempt);
      }
      if (!point.has_value()) {
        std::printf("%10d | %-10g embedding NOT found (limit reached)\n", r,
                    sweep.omega);
        break;
      }
      std::printf("%10d | %-10g %8d %8d %9d\n", r, sweep.omega,
                  point->logical, point->physical, point->max_chain);
    }
  }
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

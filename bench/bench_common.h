#ifndef QJO_BENCH_BENCH_COMMON_H_
#define QJO_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/obs.h"

namespace qjo::bench {

/// Global effort multiplier for the reproduction benches, set via the
/// QJO_BENCH_SCALE environment variable. 1.0 = defaults tuned to finish
/// the whole suite in minutes on a laptop; raise towards the paper's full
/// shot/repeat counts (e.g. QJO_BENCH_SCALE=4), lower for smoke runs.
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("QJO_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double value = std::atof(env);
    return value > 0.0 ? value : 1.0;
  }();
  return scale;
}

inline int Scaled(int base, int min_value = 1) {
  const int value = static_cast<int>(base * Scale());
  return value < min_value ? min_value : value;
}

/// Threads for the parallel read loops (SA / SQA), set via the
/// QJO_BENCH_PARALLELISM environment variable; default = all hardware
/// threads. Results are bit-identical for every value — only reads/sec
/// changes — so benches report the value they ran with.
inline int Parallelism() {
  static const int parallelism = [] {
    const char* env = std::getenv("QJO_BENCH_PARALLELISM");
    if (env != nullptr) {
      const int value = std::atoi(env);
      if (value > 0) return value;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return parallelism;
}

/// Section banner mirroring the paper artefact being reproduced. Also
/// switches stdout to line buffering so long-running benches stream
/// progress when redirected to a file.
inline void Banner(const std::string& id, const std::string& title) {
  static const bool buffered = [] {
    std::setvbuf(stdout, nullptr, _IOLBF, 1 << 14);
    return true;
  }();
  (void)buffered;
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void PaperNote(const std::string& note) {
  std::printf("[paper] %s\n", note.c_str());
}

/// Process-wide observability session for the bench binaries, driven by
/// the QJO_TRACE_OUT / QJO_METRICS_OUT environment variables (unset =
/// null sinks, zero overhead). Every pipeline a bench runs calls
/// Apply(config) so all runs of the process land in one trace/metrics
/// file; Flush() (also invoked at exit) writes the files. Attaching the
/// sinks never changes bench results.
class ObsSession {
 public:
  static ObsSession& Get() {
    static ObsSession session;
    return session;
  }

  TraceRecorder* trace() {
    return trace_out_.empty() ? nullptr : &trace_;
  }
  MetricsRegistry* metrics() {
    return metrics_out_.empty() ? nullptr : &metrics_;
  }

  /// Attaches the session's sinks to any config with `trace`/`metrics`
  /// pointer members (SolverControl, RunContext) or an embedded
  /// RunContext named `run` (QjoConfig, PortfolioOptions, DecompOptions).
  template <typename Config>
  void Apply(Config& config) {
    if constexpr (requires { config.run.trace; }) {
      config.run.trace = trace();
      config.run.metrics = metrics();
    } else {
      config.trace = trace();
      config.metrics = metrics();
    }
  }

  /// Writes the configured output files; safe to call repeatedly (later
  /// calls rewrite with the accumulated data).
  void Flush() {
    if (!trace_out_.empty() && !trace_.WriteChromeTraceFile(trace_out_)) {
      std::fprintf(stderr, "[obs] failed to write trace to %s\n",
                   trace_out_.c_str());
    }
    if (!metrics_out_.empty() && !metrics_.WriteJsonFile(metrics_out_)) {
      std::fprintf(stderr, "[obs] failed to write metrics to %s\n",
                   metrics_out_.c_str());
    }
  }

 private:
  ObsSession() {
    const char* trace_env = std::getenv("QJO_TRACE_OUT");
    const char* metrics_env = std::getenv("QJO_METRICS_OUT");
    if (trace_env != nullptr) trace_out_ = trace_env;
    if (metrics_env != nullptr) metrics_out_ = metrics_env;
  }

  // Flushing from the destructor (not atexit) keeps the write inside the
  // sinks' lifetime: an atexit handler registered during construction
  // would run *after* this static object's destructor.
  ~ObsSession() { Flush(); }

  std::string trace_out_;
  std::string metrics_out_;
  TraceRecorder trace_;
  MetricsRegistry metrics_;
};

}  // namespace qjo::bench

#endif  // QJO_BENCH_BENCH_COMMON_H_

#ifndef QJO_BENCH_BENCH_COMMON_H_
#define QJO_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

namespace qjo::bench {

/// Global effort multiplier for the reproduction benches, set via the
/// QJO_BENCH_SCALE environment variable. 1.0 = defaults tuned to finish
/// the whole suite in minutes on a laptop; raise towards the paper's full
/// shot/repeat counts (e.g. QJO_BENCH_SCALE=4), lower for smoke runs.
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("QJO_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double value = std::atof(env);
    return value > 0.0 ? value : 1.0;
  }();
  return scale;
}

inline int Scaled(int base, int min_value = 1) {
  const int value = static_cast<int>(base * Scale());
  return value < min_value ? min_value : value;
}

/// Threads for the parallel read loops (SA / SQA), set via the
/// QJO_BENCH_PARALLELISM environment variable; default = all hardware
/// threads. Results are bit-identical for every value — only reads/sec
/// changes — so benches report the value they ran with.
inline int Parallelism() {
  static const int parallelism = [] {
    const char* env = std::getenv("QJO_BENCH_PARALLELISM");
    if (env != nullptr) {
      const int value = std::atoi(env);
      if (value > 0) return value;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return parallelism;
}

/// Section banner mirroring the paper artefact being reproduced. Also
/// switches stdout to line buffering so long-running benches stream
/// progress when redirected to a file.
inline void Banner(const std::string& id, const std::string& title) {
  static const bool buffered = [] {
    std::setvbuf(stdout, nullptr, _IOLBF, 1 << 14);
    return true;
  }();
  (void)buffered;
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void PaperNote(const std::string& note) {
  std::printf("[paper] %s\n", note.c_str());
}

}  // namespace qjo::bench

#endif  // QJO_BENCH_BENCH_COMMON_H_

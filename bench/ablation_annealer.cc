// Ablations for the annealing track: (a) chain-strength sweep — the knob
// the paper tuned per problem size; (b) Chimera (2000Q generation) vs
// Pegasus (Advantage) embedding sizes — topology co-design for annealers.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/quantum_optimizer.h"
#include "embedding/minor_embedding.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "topology/vendor_topologies.h"
#include "util/strings.h"

namespace qjo {
namespace {

void ChainStrengthSweep() {
  std::printf("\n[a] chain-strength sweep (4-relation chain query)\n");
  std::printf("%12s | %8s %8s | %12s\n", "multiplier", "valid", "optimal",
              "chain breaks");
  auto pegasus = MakePegasus(6);
  if (!pegasus.ok()) return;
  const int reads = bench::Scaled(400, 50);
  long long total_reads = 0;
  const auto sweep_start = std::chrono::steady_clock::now();
  for (double multiplier : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    Rng gen_rng(31);
    QueryGenOptions gen;
    gen.num_relations = 4;
    gen.graph_type = QueryGraphType::kChain;
    gen.min_log_card = 2.0;
    gen.max_log_card = 4.0;
    auto query = GenerateQuery(gen, gen_rng);
    if (!query.ok()) return;
    QjoConfig config;
    config.backend = QjoBackend::kQuantumAnnealerSim;
    config.num_thresholds = 1;
    config.annealer_topology = *pegasus;
    config.sqa.num_reads = reads;
    config.embed_qubo.chain_strength_multiplier = multiplier;
    config.seed = 41;
    bench::ObsSession::Get().Apply(config);
    config.run.parallelism = bench::Parallelism();
    auto report = OptimizeJoinOrder(*query, config);
    if (!report.ok()) {
      std::printf("%12.2f | failed: %s\n", multiplier,
                  report.status().ToString().c_str());
      continue;
    }
    total_reads += reads;
    std::printf("%12.2f | %8s %8s | %12s\n", multiplier,
                FormatPercent(report->stats.valid_fraction(), 2).c_str(),
                FormatPercent(report->stats.optimal_fraction(), 2).c_str(),
                FormatPercent(report->anneal.mean_chain_break_fraction, 1).c_str());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  if (total_reads > 0 && elapsed > 0.0) {
    std::printf("throughput: %lld reads in %.1fs -> %.0f reads/sec "
                "(parallelism %d, incl. embedding)\n",
                total_reads, elapsed,
                static_cast<double>(total_reads) / elapsed,
                bench::Parallelism());
  }
  std::printf(
      "over-strong chains drown the problem Hamiltonian (quality falls);\n"
      "moderately soft chains tolerate some breaks that majority-vote\n"
      "unembedding repairs — which is why the paper tunes the strength\n"
      "per problem size instead of using a fixed rule.\n");
}

void TopologyGenerationSweep() {
  std::printf("\n[b] annealer topology generations: Chimera vs Pegasus\n");
  std::printf("%10s | %-8s | %8s %9s %9s\n", "relations", "target", "logical",
              "physical", "max-chain");
  auto chimera = MakeChimera(16);   // 2048 qubits (2000Q scale)
  auto pegasus = MakePegasus(8);    // 1344 qubits
  if (!chimera.ok() || !pegasus.ok()) return;
  for (int t : {3, 4, 5}) {
    Rng gen_rng(900 + t);
    QueryGenOptions gen;
    gen.num_relations = t;
    gen.graph_type = QueryGraphType::kChain;
    gen.min_log_card = 2.0;
    gen.max_log_card = 4.0;
    auto query = GenerateQuery(gen, gen_rng);
    if (!query.ok()) continue;
    JoMilpOptions options;
    options.thresholds = MakeGeometricThresholds(*query, 1);
    auto milp = EncodeJoAsMilp(*query, options);
    if (!milp.ok()) continue;
    auto bilp = LowerToBilp(milp->model(), 1.0);
    if (!bilp.ok()) continue;
    auto encoding = ConvertBilpToQubo(*bilp, QuboConversionOptions{});
    if (!encoding.ok()) continue;
    for (const auto& [name, target] :
         {std::pair<const char*, const CouplingGraph*>{"chimera",
                                                       &*chimera},
          {"pegasus", &*pegasus}}) {
      Rng rng(77);
      EmbeddingOptions eopts;
      eopts.tries = 3;
      auto embedding = FindMinorEmbedding(encoding->qubo.Edges(),
                                          encoding->qubo.num_variables(),
                                          *target, eopts, rng);
      if (!embedding.ok()) {
        std::printf("%10d | %-8s | %8d %9s %9s\n", t, name,
                    encoding->qubo.num_variables(), "none", "-");
        continue;
      }
      std::printf("%10d | %-8s | %8d %9d %9d\n", t, name,
                  encoding->qubo.num_variables(),
                  embedding->NumPhysicalQubits(),
                  embedding->MaxChainLength());
    }
  }
  std::printf(
      "Pegasus' degree-15 connectivity needs fewer and shorter chains than\n"
      "degree-6 Chimera — the annealer-side co-design story.\n");
}

void BatchThroughput() {
  std::printf("\n[c] batched pipeline runs (OptimizeJoinOrderBatch, "
              "annealer backend)\n");
  auto pegasus = MakePegasus(6);
  if (!pegasus.ok()) return;
  std::vector<Query> queries;
  for (QueryGraphType type : {QueryGraphType::kChain, QueryGraphType::kStar,
                              QueryGraphType::kCycle, QueryGraphType::kChain}) {
    Rng gen_rng(600 + static_cast<int>(queries.size()));
    QueryGenOptions gen;
    gen.num_relations = 4;
    gen.graph_type = type;
    gen.min_log_card = 2.0;
    gen.max_log_card = 4.0;
    auto query = GenerateQuery(gen, gen_rng);
    if (query.ok()) queries.push_back(*query);
  }
  if (queries.empty()) return;
  const int reads = bench::Scaled(200, 50);
  QjoConfig config;
  config.backend = QjoBackend::kQuantumAnnealerSim;
  config.num_thresholds = 1;
  config.annealer_topology = *pegasus;
  config.sqa.num_reads = reads;
  config.seed = 43;
  bench::ObsSession::Get().Apply(config);
  const int parallelism = bench::Parallelism();
  const auto start = std::chrono::steady_clock::now();
  const auto reports = OptimizeJoinOrderBatch(queries, config, parallelism);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  int completed = 0;
  for (const auto& report : reports) {
    if (report.ok()) ++completed;
  }
  const long long total_reads =
      static_cast<long long>(completed) * static_cast<long long>(reads);
  std::printf("%d/%zu queries x %d reads in %.1fs -> %.0f reads/sec "
              "(one pool of %d threads shared across queries and reads)\n",
              completed, queries.size(), reads, elapsed,
              elapsed > 0.0 ? static_cast<double>(total_reads) / elapsed : 0.0,
              parallelism);
}

void Run() {
  bench::Banner("Ablation", "annealing knobs: chain strength & topology");
  ChainStrengthSweep();
  TopologyGenerationSweep();
  BatchThroughput();
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

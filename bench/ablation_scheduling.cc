// Ablation: commutation-aware cost-layer scheduling. The paper's
// conclusion lists "efficient circuit generation that respects the
// influence of noise" as an open problem; the zero-cost part is that all
// RZZ terms of one QAOA cost layer commute, so reordering them into
// matching rounds compresses depth before transpilation even starts.

#include <cstdio>

#include "bench/bench_common.h"
#include "circuit/qaoa_builder.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "sim/device.h"
#include "topology/vendor_topologies.h"
#include "transpiler/transpiler.h"

namespace qjo {
namespace {

void Run() {
  bench::Banner("Ablation",
                "commutation-aware QAOA cost-layer scheduling");
  const int reps = bench::Scaled(3, 1);

  std::printf("\n%10s %8s | %12s %12s | %12s %12s | %9s\n", "relations",
              "qubits", "logical", "logical*", "transpiled", "transpiled*",
              "savings");
  for (int relations : {3, 4, 5, 6, 8}) {
    Rng rng(70 + relations);
    QueryGenOptions gen;
    gen.num_relations = relations;
    gen.graph_type = QueryGraphType::kChain;
    gen.min_log_card = 2.0;
    gen.max_log_card = 4.0;
    auto query = GenerateQuery(gen, rng);
    if (!query.ok()) continue;
    JoMilpOptions options;
    options.thresholds = MakeGeometricThresholds(*query, 2);
    auto milp = EncodeJoAsMilp(*query, options);
    if (!milp.ok()) continue;
    auto bilp = LowerToBilp(milp->model(), 1.0);
    if (!bilp.ok()) continue;
    auto encoding = ConvertBilpToQubo(*bilp, QuboConversionOptions{});
    if (!encoding.ok()) continue;

    QaoaBuilderOptions plain;
    QaoaBuilderOptions scheduled;
    scheduled.schedule_cost_layer = true;
    auto c_plain =
        BuildQaoaCircuit(encoding->qubo, QaoaParameters{{0.1}, {0.2}}, plain);
    auto c_sched = BuildQaoaCircuit(encoding->qubo,
                                    QaoaParameters{{0.1}, {0.2}}, scheduled);
    if (!c_plain.ok() || !c_sched.ok()) continue;

    const CouplingGraph device =
        MakeIbmHeavyHexAtLeast(c_plain->num_qubits());
    auto median_depth = [&](const QuantumCircuit& logical) {
      double best = -1.0;
      for (int rep = 0; rep < reps; ++rep) {
        TranspileOptions topts;
        topts.gate_set = NativeGateSet::kIbm;
        topts.seed = 500 + rep;
        auto result = Transpile(logical, device, topts);
        if (result.ok() && (best < 0 || result->depth < best)) {
          best = result->depth;
        }
      }
      return best;
    };
    const double t_plain = median_depth(*c_plain);
    const double t_sched = median_depth(*c_sched);
    std::printf("%10d %8d | %12d %12d | %12.0f %12.0f | %8.0f%%\n",
                relations, c_plain->num_qubits(), c_plain->Depth(),
                c_sched->Depth(), t_plain, t_sched,
                100.0 * (1.0 - t_sched / t_plain));
  }
  std::printf(
      "\n(*) = matching-round scheduled. The logical compression carries\n"
      "through transpilation — a software-only co-design win.\n");
}

}  // namespace
}  // namespace qjo

int main() {
  qjo::Run();
  return 0;
}

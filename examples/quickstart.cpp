// Quickstart: optimise the join order of a small query on an ideal
// "quantum processing unit" (exact QUBO minimisation) and inspect every
// stage of the paper's pipeline (JO -> MILP -> BILP -> QUBO -> samples ->
// join tree).

#include <cstdio>

#include "core/quantum_optimizer.h"
#include "jo/classical.h"
#include "jo/query.h"

int main() {
  using namespace qjo;

  // The running example of the paper (Sec. 3): relations R, S, T with
  // |R| = |S| = |T| = 100 and a selective predicate between R and S.
  Query query;
  query.AddRelation("R", 100);
  query.AddRelation("S", 100);
  query.AddRelation("T", 100);
  if (!query.AddPredicate(0, 1, 0.1).ok()) return 1;
  std::printf("query: %s\n\n", query.ToString().c_str());

  // Configure the pipeline: exact QUBO minimisation plays the role of a
  // perfect QPU; thresholds control the cardinality staircase (Ex. 3.3).
  QjoConfig config;
  config.backend = QjoBackend::kExact;
  config.thresholds = {100.0, 1000.0, 10000.0};

  auto report = OptimizeJoinOrder(query, config);
  if (!report.ok()) {
    std::printf("optimisation failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }

  std::printf("pipeline diagnostics:\n%s\n\n", report->Summary().c_str());
  std::printf("decoded join order: %s (cost %.0f)\n",
              report->best_order.ToString(query).c_str(), report->best_cost);

  // Cross-check against the classical dynamic-programming oracle.
  auto oracle = OptimizeDp(query);
  if (oracle.ok()) {
    std::printf("classical DP optimum: %s (cost %.0f)\n",
                oracle->order.ToString(query).c_str(), oracle->cost);
  }
  return 0;
}

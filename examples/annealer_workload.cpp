// Annealer scenario: minor-embed a join-ordering QUBO onto a Pegasus
// hardware graph and solve it with simulated quantum annealing (Table 3's
// setup), reporting embedding statistics, chain breaks, and solution
// quality across annealing times.

#include <cstdio>

#include "core/quantum_optimizer.h"
#include "jo/query_generator.h"
#include "topology/vendor_topologies.h"
#include "util/strings.h"

int main() {
  using namespace qjo;

  Rng rng(5);
  QueryGenOptions gen;
  gen.num_relations = 4;
  gen.graph_type = QueryGraphType::kCycle;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  auto query = GenerateQuery(gen, rng);
  if (!query.ok()) return 1;
  std::printf("query: %s\n\n", query->ToString().c_str());

  auto pegasus = MakePegasus(8);  // 1344-qubit Pegasus, Advantage-style
  if (!pegasus.ok()) return 1;
  std::printf("hardware: Pegasus P8, %d qubits, %d couplers\n\n",
              pegasus->num_qubits(), pegasus->num_edges());

  for (double anneal_us : {20.0, 60.0, 100.0}) {
    QjoConfig config;
    config.backend = QjoBackend::kQuantumAnnealerSim;
    config.num_thresholds = 1;
    config.annealer_topology = *pegasus;
    config.sqa.num_reads = 500;
    config.sqa.annealing_time_us = anneal_us;
    config.seed = 21;

    auto report = OptimizeJoinOrder(*query, config);
    if (!report.ok()) {
      std::printf("failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("annealing time %.0fus:\n", anneal_us);
    std::printf(
        "  logical %d -> physical %d qubits (max chain %d, strength %.1f)\n",
        report->encoding.bilp_variables, report->anneal.physical_qubits,
        report->anneal.max_chain_length, report->anneal.chain_strength);
    std::printf("  valid %s | optimal %s | chain breaks %s\n",
                FormatPercent(report->stats.valid_fraction()).c_str(),
                FormatPercent(report->stats.optimal_fraction()).c_str(),
                FormatPercent(report->anneal.mean_chain_break_fraction).c_str());
    if (report->found_valid) {
      std::printf("  best sampled order: %s (cost %.0f, optimum %.0f)\n\n",
                  report->best_order.ToString(*query).c_str(),
                  report->best_cost, report->optimal_cost);
    } else {
      std::printf("  no valid join order sampled\n\n");
    }
  }
  std::printf(
      "As in the paper, longer annealing barely helps: solution quality is\n"
      "dominated by the embedding overhead and control-error noise.\n");
  return 0;
}

// Command-line driver for the full pipeline: generate (or describe) a
// query, pick a backend, and print the end-to-end report.
//
// Usage:
//   qjo_cli [--relations N] [--graph chain|star|cycle|clique]
//           [--predicates P] [--backend exact|sa|qaoa|annealer|portfolio]
//           [--portfolio] [--decomp] [--decomp-window W]
//           [--deadline-ms D] [--sweep-budget B]
//           [--adaptive] [--strand-records-file FILE]
//           [--thresholds R] [--omega W] [--shots S] [--seed X]
//           [--parallelism T] [--kernel reference|incremental|batched]
//           [--noiseless] [--verbose]
//           [--trace-out FILE] [--metrics-out FILE]
//           [--serve] [--serve-requests R] [--serve-tenants T]
//           [--serve-workers W] [--serve-queue-cap Q]
//           [--serve-tenant-quota Q] [--serve-deadline-ms D]
//           [--serve-duplicate-rate F] [--serve-tenant-rate R]
//           [--serve-tenant-burst B] [--serve-warmup-file FILE]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.h"

#include "core/quantum_optimizer.h"
#include "core/strand_select.h"
#include "jo/classical.h"
#include "jo/query_generator.h"
#include "serve/optimizer_service.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

struct CliArgs {
  int relations = 3;
  QueryGraphType graph = QueryGraphType::kChain;
  int predicates = -1;  // -1: use the graph type's natural edge set
  QjoBackend backend = QjoBackend::kExact;
  int thresholds = 2;
  double omega = 1.0;
  int shots = 1024;
  uint64_t seed = 42;
  int parallelism = 1;
  SolverKernel kernel = SolverKernel::kBatched;
  bool noiseless = false;
  bool verbose = false;
  double deadline_ms = -1.0;  // <0: portfolio runs on its sweep budget
  int64_t sweep_budget = 4096;
  bool decomp = false;    // force the decomposition strand on, any size
  int decomp_window = 0;  // 0 = DecompOptions default
  bool adaptive = false;  // per-bucket bandit shapes strand budgets
  std::string strand_records_file;  // learned run-record persistence
  std::string trace_out;    // empty = no trace recording
  std::string metrics_out;  // empty = no metrics recording

  // --serve mode: drive a batch of requests through OptimizerService.
  bool serve = false;
  int serve_requests = 32;
  int serve_tenants = 4;
  int serve_workers = 2;
  size_t serve_queue_cap = 256;
  size_t serve_tenant_quota = 0;  // 0 = unlimited
  double serve_deadline_ms = -1.0;
  double serve_duplicate_rate = 0.0;  // chance a submit repeats the previous
  double serve_tenant_rate = 0.0;     // token-bucket admissions/sec (0 = off)
  double serve_tenant_burst = 0.0;    // bucket capacity (0 = max(1, rate))
  std::string serve_warmup_file;      // plan-cache key persistence
};

int Fail(const char* message) {
  std::fprintf(stderr, "error: %s (try --help)\n", message);
  return 2;
}

void PrintHelp() {
  std::printf(
      "qjo_cli — quantum join ordering pipeline\n\n"
      "  --relations N     number of relations (default 3)\n"
      "  --graph TYPE      chain|star|cycle|clique (default chain)\n"
      "  --predicates P    override predicate count (chain-first order)\n"
      "  --backend B       exact|sa|qaoa|annealer|portfolio (default exact)\n"
      "  --portfolio       shorthand for --backend portfolio\n"
      "  --decomp          portfolio with the qbsolv-style decomposition\n"
      "                    strand forced on (any query size). This is the\n"
      "                    path that still solves 30-50 relation queries\n"
      "  --decomp-window W relations per decomposition window (default 9)\n"
      "  --deadline-ms D   portfolio wall-clock budget; 0 = skip the race\n"
      "                    and answer with the classical fallback plan\n"
      "                    (default: none — bounded by --sweep-budget)\n"
      "  --sweep-budget B  portfolio per-strand sweep budget (default 4096;\n"
      "                    0 = unlimited, needs --deadline-ms)\n"
      "  --adaptive        let the per-bucket bandit learned from prior\n"
      "                    races throttle weak portfolio strands (cold\n"
      "                    start = the fixed race; see --strand-records-file)\n"
      "  --strand-records-file FILE  load per-strand run records from FILE\n"
      "                    at start (missing = cold start) and persist the\n"
      "                    updated store on exit. Feeds --adaptive; also\n"
      "                    honoured by --serve (service-owned store)\n"
      "  --thresholds R    cardinality thresholds (default 2)\n"
      "  --omega W         discretisation precision (default 1.0)\n"
      "  --shots S         samples/reads for stochastic backends\n"
      "  --seed X          RNG seed (default 42)\n"
      "  --parallelism T   threads for the sa/annealer read loops\n"
      "                    (default 1; results are identical for any T)\n"
      "  --kernel K        solver inner loop: reference|incremental|batched\n"
      "                    (default batched — SoA replica groups in SIMD\n"
      "                    lanes, bit-identical to incremental; the SIMD\n"
      "                    tier is auto-detected, set QJO_SIMD=scalar|sse2|\n"
      "                    avx2|avx512 to cap it)\n"
      "  --noiseless       disable the QAOA noise model\n"
      "  --verbose         print the query and classical baselines\n"
      "  --trace-out FILE  write a Chrome trace-event JSON of every\n"
      "                    pipeline stage (open via chrome://tracing or\n"
      "                    https://ui.perfetto.dev)\n"
      "  --metrics-out FILE  write the merged solver/pipeline metrics as\n"
      "                    flat JSON\n"
      "  --serve           serving-layer demo: submit a stream of requests\n"
      "                    through the multi-tenant OptimizerService (with\n"
      "                    admission control + plan cache) and print the\n"
      "                    per-request outcomes and service stats. The\n"
      "                    backend/query flags above shape each request\n"
      "  --serve-requests R  requests to submit (default 32; repeats of a\n"
      "                    small query set, so the plan cache gets hits)\n"
      "  --serve-tenants T   distinct tenants round-robined (default 4)\n"
      "  --serve-workers W   service dispatcher workers (default 2)\n"
      "  --serve-queue-cap Q admission queue capacity (default 256)\n"
      "  --serve-tenant-quota Q  per-tenant in-flight cap (default 0 = off)\n"
      "  --serve-deadline-ms D   per-request deadline incl. queue wait\n"
      "                    (default: none)\n"
      "  --serve-duplicate-rate F  probability in [0,1] that a submit\n"
      "                    repeats the previous request back-to-back —\n"
      "                    duplicates coalesce onto the in-flight solve\n"
      "                    (default 0)\n"
      "  --serve-tenant-rate R   per-tenant token-bucket rate limit in\n"
      "                    admissions/sec (default 0 = off)\n"
      "  --serve-tenant-burst B  token-bucket capacity (default: max(1, R))\n"
      "  --serve-warmup-file FILE  load plan-cache keys from FILE at start\n"
      "                    (pre-solving matching requests before traffic)\n"
      "                    and persist the live key set on drain\n");
}

int RunServe(const CliArgs& args) {
  // One distinct query per tenant; every tenant re-submits its own query,
  // so the stream exercises both cache misses (first touch) and hits.
  Rng rng(args.seed);
  QueryGenOptions gen;
  gen.num_relations = args.relations;
  gen.graph_type = args.graph;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  const int tenants = std::max(1, args.serve_tenants);
  std::vector<Query> queries;
  queries.reserve(tenants);
  for (int t = 0; t < tenants; ++t) {
    auto query = GenerateQuery(gen, rng);
    if (!query.ok()) {
      std::fprintf(stderr, "query generation failed: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    queries.push_back(*std::move(query));
  }

  QjoConfig config;
  config.backend = args.backend;
  config.num_thresholds = args.thresholds;
  config.omega = args.omega;
  config.shots = args.shots;
  config.sqa.num_reads = args.shots;
  config.noiseless = args.noiseless;
  config.seed = args.seed;
  config.run.parallelism = args.parallelism;
  config.solver_kernel = args.kernel;
  config.portfolio.run.deadline_ms = args.deadline_ms;
  config.portfolio.sweep_budget = args.sweep_budget;

  std::optional<TraceRecorder> trace;
  std::optional<MetricsRegistry> metrics;

  ThreadPool pool(std::max(1, args.parallelism));
  ServeOptions options;
  options.workers = args.serve_workers;
  options.queue_capacity = args.serve_queue_cap;
  options.per_tenant_inflight = args.serve_tenant_quota;
  options.default_deadline_ms = args.serve_deadline_ms;
  options.tenant_rate_per_sec = args.serve_tenant_rate;
  options.tenant_burst = args.serve_tenant_burst;
  options.warmup_file = args.serve_warmup_file;
  options.adaptive = args.adaptive;
  options.strand_records_file = args.strand_records_file;
  options.pool = &pool;
  if (!args.trace_out.empty()) options.trace = &trace.emplace();
  if (!args.metrics_out.empty()) options.metrics = &metrics.emplace();

  OptimizerService service(options);
  if (!service.warmup_keys().empty()) {
    // Replay the tenant query templates against the persisted key set so
    // the cache starts hot for any of them served last run.
    std::vector<ServeRequest> templates;
    templates.reserve(queries.size());
    for (const Query& query : queries) {
      ServeRequest request;
      request.query = query;
      request.config = config;
      templates.push_back(std::move(request));
    }
    const size_t warmed = service.WarmUp(templates);
    std::printf("serve: warmed %zu plan-cache entries from %s\n", warmed,
                args.serve_warmup_file.c_str());
  }
  struct Outcome {
    int index;
    std::string tenant;
    std::future<ServeResult> future;
  };
  std::vector<Outcome> admitted;
  int rejected = 0;
  Rng dup_rng(args.seed + 1);
  int last_t = 0;
  for (int i = 0; i < args.serve_requests; ++i) {
    // A duplicate re-submits the previous (tenant, query) back-to-back
    // while the original is still in flight, so it coalesces instead of
    // costing a second solve.
    const bool duplicate = i > 0 && args.serve_duplicate_rate > 0.0 &&
                           dup_rng.Bernoulli(args.serve_duplicate_rate);
    const int t = duplicate ? last_t : i % tenants;
    last_t = t;
    ServeRequest request;
    request.query = queries[t];
    request.config = config;
    request.tenant = "tenant-" + std::to_string(t);
    double retry_after = 0.0;
    auto future = service.Submit(std::move(request), &retry_after);
    if (!future.ok()) {
      ++rejected;
      if (args.verbose) {
        std::printf("request %3d rejected: %s\n", i,
                    future.status().ToString().c_str());
      }
      continue;
    }
    admitted.push_back(
        {i, "tenant-" + std::to_string(t), std::move(future).value()});
  }

  int ok = 0, failed = 0, hits = 0, degraded = 0, coalesced = 0;
  for (auto& outcome : admitted) {
    ServeResult result = outcome.future.get();
    if (result.status.ok()) {
      ++ok;
    } else {
      ++failed;
    }
    if (result.cache_hit) ++hits;
    if (result.degraded) ++degraded;
    if (result.coalesced) ++coalesced;
    if (args.verbose) {
      std::printf("request %3d %-9s %s queue %.2f ms, solve %.2f ms%s%s%s\n",
                  outcome.index, outcome.tenant.c_str(),
                  result.status.ok() ? "ok    " : "FAILED", result.queue_ms,
                  result.solve_ms, result.cache_hit ? ", cache hit" : "",
                  result.coalesced ? ", coalesced" : "",
                  result.degraded ? ", degraded" : "");
      if (!result.status.ok()) {
        std::printf("            %s\n", result.status.ToString().c_str());
      }
    }
  }
  service.Drain();

  const auto stats = service.stats();
  std::printf(
      "serve: %llu submitted, %d admitted, %d rejected "
      "(%llu queue-full, %llu tenant-quota, %llu rate-limited)\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<int>(admitted.size()), rejected,
      static_cast<unsigned long long>(stats.rejected_queue_full),
      static_cast<unsigned long long>(stats.rejected_tenant_quota),
      static_cast<unsigned long long>(stats.rejected_rate_limited));
  std::printf(
      "serve: %d ok, %d failed, %d cache hits, %d coalesced, %d degraded "
      "(%llu solves for %llu completions",
      ok, failed, hits, coalesced, degraded,
      static_cast<unsigned long long>(stats.solves),
      static_cast<unsigned long long>(stats.completed));
  if (stats.warmed > 0) {
    std::printf("; %llu warmed, %llu warm hits",
                static_cast<unsigned long long>(stats.warmed),
                static_cast<unsigned long long>(stats.warm_hits));
  }
  std::printf(")\n");
  if (service.plan_cache() != nullptr) {
    const auto cache = service.plan_cache()->stats();
    std::printf(
        "plan cache: %llu hits / %llu misses (%.0f%% hit rate), "
        "%llu evictions, %llu ttl expirations\n",
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        100.0 * cache.hit_rate(),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(cache.ttl_expirations));
  }
  if (trace.has_value() && trace->WriteChromeTraceFile(args.trace_out)) {
    std::printf("trace written to %s\n", args.trace_out.c_str());
  }
  if (metrics.has_value() && metrics->WriteJsonFile(args.metrics_out)) {
    std::printf("metrics written to %s\n", args.metrics_out.c_str());
  }
  return failed == 0 ? 0 : 1;
}

int RunCli(const CliArgs& args) {
  if (args.serve) return RunServe(args);
  Rng rng(args.seed);
  QueryGenOptions gen;
  gen.num_relations = args.relations;
  gen.graph_type = args.graph;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  auto query = args.predicates >= 0
                   ? GenerateQueryWithPredicateCount(gen, args.predicates, rng)
                   : GenerateQuery(gen, rng);
  if (!query.ok()) {
    std::fprintf(stderr, "query generation failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  if (args.verbose) std::printf("query: %s\n\n", query->ToString().c_str());

  QjoConfig config;
  config.backend = args.backend;
  config.num_thresholds = args.thresholds;
  config.omega = args.omega;
  config.shots = args.shots;
  config.sqa.num_reads = args.shots;
  config.noiseless = args.noiseless;
  config.seed = args.seed;
  config.run.parallelism = args.parallelism;
  config.solver_kernel = args.kernel;
  config.portfolio.run.deadline_ms = args.deadline_ms;
  config.portfolio.sweep_budget = args.sweep_budget;
  if (args.decomp) {
    config.backend = QjoBackend::kPortfolio;
    config.portfolio.min_decomp_relations = 2;
  }
  if (args.decomp_window > 0) {
    config.portfolio.decomp.window = args.decomp_window;
  }

  // Adaptive strand selection: a CLI-owned record store, primed from the
  // records file when one is named (missing file = cold start) and
  // persisted back on success so later invocations inherit the learning.
  RunRecordStore strand_records;
  if (args.adaptive || !args.strand_records_file.empty()) {
    config.adaptive = args.adaptive;
    config.strand_records = &strand_records;
    if (!args.strand_records_file.empty()) {
      (void)strand_records.LoadRecords(args.strand_records_file);
    }
  }

  // Observability sinks: attached only when requested; a run without them
  // takes the null-sink (zero-overhead) path and is bit-identical either
  // way.
  std::optional<TraceRecorder> trace;
  std::optional<MetricsRegistry> metrics;
  if (!args.trace_out.empty()) config.run.trace = &trace.emplace();
  if (!args.metrics_out.empty()) config.run.metrics = &metrics.emplace();

  auto report = OptimizeJoinOrder(*query, config);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (trace.has_value()) {
    if (!trace->WriteChromeTraceFile(args.trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   args.trace_out.c_str());
      return 1;
    }
    std::printf("trace written to %s\n", args.trace_out.c_str());
  }
  if (metrics.has_value()) {
    if (!metrics->WriteJsonFile(args.metrics_out)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   args.metrics_out.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", args.metrics_out.c_str());
  }
  std::printf("backend: %s\n%s\n", QjoBackendName(config.backend),
              report->Summary().c_str());
  if (report->found_valid) {
    std::printf("join order: %s\n", report->best_order.ToString(*query).c_str());
  }
  if (config.strand_records != nullptr && !args.strand_records_file.empty()) {
    const Status saved =
        strand_records.SaveRecords(args.strand_records_file);
    if (saved.ok()) {
      std::printf("strand records (%zu buckets) written to %s\n",
                  strand_records.NumBuckets(),
                  args.strand_records_file.c_str());
    } else {
      std::fprintf(stderr, "failed to write strand records to %s: %s\n",
                   args.strand_records_file.c_str(),
                   saved.ToString().c_str());
    }
  }

  if (args.verbose) {
    auto greedy = OptimizeGreedy(*query);
    Rng ii_rng(args.seed);
    auto ii = OptimizeIterativeImprovement(*query, ii_rng);
    std::printf("\nclassical baselines: reference %.3g", report->optimal_cost);
    if (greedy.ok()) std::printf(", greedy %.3g", greedy->cost);
    if (ii.ok()) std::printf(", iterative-improvement %.3g", ii->cost);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace qjo

int main(int argc, char** argv) {
  using namespace qjo;
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--help" || flag == "-h") {
      PrintHelp();
      return 0;
    } else if (flag == "--relations") {
      const char* v = next();
      if (!v) return Fail("--relations needs a value");
      args.relations = std::atoi(v);
    } else if (flag == "--graph") {
      const char* v = next();
      if (!v) return Fail("--graph needs a value");
      if (!std::strcmp(v, "chain")) {
        args.graph = QueryGraphType::kChain;
      } else if (!std::strcmp(v, "star")) {
        args.graph = QueryGraphType::kStar;
      } else if (!std::strcmp(v, "cycle")) {
        args.graph = QueryGraphType::kCycle;
      } else if (!std::strcmp(v, "clique")) {
        args.graph = QueryGraphType::kClique;
      } else {
        return Fail("unknown graph type");
      }
    } else if (flag == "--predicates") {
      const char* v = next();
      if (!v) return Fail("--predicates needs a value");
      args.predicates = std::atoi(v);
    } else if (flag == "--backend") {
      const char* v = next();
      if (!v) return Fail("--backend needs a value");
      if (!std::strcmp(v, "exact")) {
        args.backend = QjoBackend::kExact;
      } else if (!std::strcmp(v, "sa")) {
        args.backend = QjoBackend::kSimulatedAnnealing;
      } else if (!std::strcmp(v, "qaoa")) {
        args.backend = QjoBackend::kQaoaSimulator;
      } else if (!std::strcmp(v, "annealer")) {
        args.backend = QjoBackend::kQuantumAnnealerSim;
      } else if (!std::strcmp(v, "portfolio")) {
        args.backend = QjoBackend::kPortfolio;
      } else {
        return Fail("unknown backend");
      }
    } else if (flag == "--portfolio") {
      args.backend = QjoBackend::kPortfolio;
    } else if (flag == "--decomp") {
      args.decomp = true;
    } else if (flag == "--decomp-window") {
      const char* v = next();
      if (!v) return Fail("--decomp-window needs a value");
      args.decomp_window = std::atoi(v);
      if (args.decomp_window < 2) return Fail("--decomp-window must be >= 2");
    } else if (flag == "--deadline-ms") {
      const char* v = next();
      if (!v) return Fail("--deadline-ms needs a value");
      args.deadline_ms = std::atof(v);
    } else if (flag == "--sweep-budget") {
      const char* v = next();
      if (!v) return Fail("--sweep-budget needs a value");
      args.sweep_budget = std::strtoll(v, nullptr, 10);
    } else if (flag == "--adaptive") {
      args.adaptive = true;
    } else if (flag == "--strand-records-file") {
      const char* v = next();
      if (!v) return Fail("--strand-records-file needs a file path");
      args.strand_records_file = v;
    } else if (flag == "--thresholds") {
      const char* v = next();
      if (!v) return Fail("--thresholds needs a value");
      args.thresholds = std::atoi(v);
    } else if (flag == "--omega") {
      const char* v = next();
      if (!v) return Fail("--omega needs a value");
      args.omega = std::atof(v);
    } else if (flag == "--shots") {
      const char* v = next();
      if (!v) return Fail("--shots needs a value");
      args.shots = std::atoi(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return Fail("--seed needs a value");
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--parallelism") {
      const char* v = next();
      if (!v) return Fail("--parallelism needs a value");
      args.parallelism = std::atoi(v);
      if (args.parallelism < 1) return Fail("--parallelism must be >= 1");
    } else if (flag == "--kernel") {
      const char* v = next();
      if (!v) return Fail("--kernel needs a value");
      if (!std::strcmp(v, "reference")) {
        args.kernel = SolverKernel::kReference;
      } else if (!std::strcmp(v, "incremental")) {
        args.kernel = SolverKernel::kIncremental;
      } else if (!std::strcmp(v, "batched")) {
        args.kernel = SolverKernel::kBatched;
      } else {
        return Fail("unknown kernel");
      }
    } else if (flag == "--trace-out") {
      const char* v = next();
      if (!v) return Fail("--trace-out needs a file path");
      args.trace_out = v;
    } else if (flag == "--metrics-out") {
      const char* v = next();
      if (!v) return Fail("--metrics-out needs a file path");
      args.metrics_out = v;
    } else if (flag == "--serve") {
      args.serve = true;
    } else if (flag == "--serve-requests") {
      const char* v = next();
      if (!v) return Fail("--serve-requests needs a value");
      args.serve_requests = std::atoi(v);
    } else if (flag == "--serve-tenants") {
      const char* v = next();
      if (!v) return Fail("--serve-tenants needs a value");
      args.serve_tenants = std::atoi(v);
    } else if (flag == "--serve-workers") {
      const char* v = next();
      if (!v) return Fail("--serve-workers needs a value");
      args.serve_workers = std::atoi(v);
      if (args.serve_workers < 1) return Fail("--serve-workers must be >= 1");
    } else if (flag == "--serve-queue-cap") {
      const char* v = next();
      if (!v) return Fail("--serve-queue-cap needs a value");
      args.serve_queue_cap = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--serve-tenant-quota") {
      const char* v = next();
      if (!v) return Fail("--serve-tenant-quota needs a value");
      args.serve_tenant_quota =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--serve-deadline-ms") {
      const char* v = next();
      if (!v) return Fail("--serve-deadline-ms needs a value");
      args.serve_deadline_ms = std::atof(v);
    } else if (flag == "--serve-duplicate-rate") {
      const char* v = next();
      if (!v) return Fail("--serve-duplicate-rate needs a value");
      args.serve_duplicate_rate = std::atof(v);
      if (args.serve_duplicate_rate < 0.0 || args.serve_duplicate_rate > 1.0) {
        return Fail("--serve-duplicate-rate must be in [0, 1]");
      }
    } else if (flag == "--serve-tenant-rate") {
      const char* v = next();
      if (!v) return Fail("--serve-tenant-rate needs a value");
      args.serve_tenant_rate = std::atof(v);
    } else if (flag == "--serve-tenant-burst") {
      const char* v = next();
      if (!v) return Fail("--serve-tenant-burst needs a value");
      args.serve_tenant_burst = std::atof(v);
    } else if (flag == "--serve-warmup-file") {
      const char* v = next();
      if (!v) return Fail("--serve-warmup-file needs a file path");
      args.serve_warmup_file = v;
    } else if (flag == "--noiseless") {
      args.noiseless = true;
    } else if (flag == "--verbose") {
      args.verbose = true;
    } else {
      return Fail("unknown flag");
    }
  }
  return RunCli(args);
}

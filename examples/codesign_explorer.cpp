// Co-design scenario (Sec. 6): given a target query size, how far is a
// QPU from running it? Sweep topology density and gate sets for an
// extrapolated IBM heavy-hex device, check the resulting circuit depth
// against coherence limits, and report the Theorem 5.3 qubit budget.

#include <cstdio>

#include "circuit/qaoa_builder.h"
#include "codesign/qubit_bound.h"
#include "jo/query_generator.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "sim/device.h"
#include "topology/density.h"
#include "topology/vendor_topologies.h"
#include "transpiler/transpiler.h"

int main() {
  using namespace qjo;

  const int relations = 6;
  Rng rng(3);
  QueryGenOptions gen;
  gen.num_relations = relations;
  gen.graph_type = QueryGraphType::kCycle;
  gen.min_log_card = 2.0;
  gen.max_log_card = 4.0;
  auto query = GenerateQuery(gen, rng);
  if (!query.ok()) return 1;

  // Qubit budget per Theorem 5.3.
  for (int r : {1, 2, 5}) {
    auto bound = QubitUpperBound(*query, r, 1.0);
    if (bound.ok()) {
      std::printf("qubit bound (R=%d thresholds): %d logical qubits\n", r,
                  *bound);
    }
  }

  // Build the actual QAOA circuit.
  JoMilpOptions options;
  options.thresholds = MakeGeometricThresholds(*query, 2);
  auto milp = EncodeJoAsMilp(*query, options);
  if (!milp.ok()) return 1;
  auto bilp = LowerToBilp(milp->model(), 1.0);
  if (!bilp.ok()) return 1;
  auto encoding = ConvertBilpToQubo(*bilp, QuboConversionOptions{});
  if (!encoding.ok()) return 1;
  auto logical = BuildQaoaCircuit(encoding->qubo, QaoaParameters{{0.1}, {0.2}});
  if (!logical.ok()) return 1;
  std::printf("\nQAOA circuit: %d qubits, %d gates (logical depth %d)\n\n",
              logical->num_qubits(), logical->num_gates(), logical->Depth());

  const CouplingGraph base = MakeIbmHeavyHexAtLeast(logical->num_qubits());
  const DeviceProperties device = IbmAucklandProperties();
  std::printf("device: extrapolated heavy-hex, %d qubits; coherence-limited "
              "depth %d\n\n",
              base.num_qubits(), device.MaxFeasibleDepth());

  std::printf("%8s | %12s %12s | %s\n", "density", "native-depth",
              "unrestricted", "feasible?");
  for (double density : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    Rng density_rng(7);
    auto topology = ExtrapolateDensity(base, density, density_rng);
    if (!topology.ok()) continue;
    int depths[2] = {0, 0};
    int index = 0;
    for (NativeGateSet set :
         {NativeGateSet::kIbm, NativeGateSet::kUnrestricted}) {
      TranspileOptions topts;
      topts.gate_set = set;
      topts.seed = 13;
      auto result = Transpile(*logical, *topology, topts);
      depths[index++] = result.ok() ? result->depth : -1;
    }
    std::printf("%8.2f | %12d %12d | %s\n", density, depths[0], depths[1],
                depths[0] <= device.MaxFeasibleDepth() ? "yes" : "no");
  }

  std::printf(
      "\nModest extra connectivity shrinks depth dramatically — the paper's\n"
      "co-design argument: small architectural changes beat waiting for\n"
      "exponentially better hardware.\n");
  return 0;
}

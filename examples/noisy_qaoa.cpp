// Gate-based scenario: run the paper's Table 2 experiment for one query —
// QAOA p=1 with classically optimised angles, transpiled onto the IBM Q
// Auckland topology, sampled through the depth-driven depolarising noise
// model — and compare against ideal (noiseless) sampling.

#include <cstdio>

#include "core/quantum_optimizer.h"
#include "jo/query.h"
#include "util/strings.h"

int main() {
  using namespace qjo;

  // A 3-relation chain query (two predicates): 24 logical qubits, the
  // paper's second-largest gate-based instance.
  Query query;
  query.AddRelation("R0", 10);
  query.AddRelation("R1", 10);
  query.AddRelation("R2", 10);
  if (!query.AddPredicate(0, 1, 0.1).ok()) return 1;
  if (!query.AddPredicate(1, 2, 0.1).ok()) return 1;
  std::printf("query: %s\n\n", query.ToString().c_str());

  QjoConfig config;
  config.backend = QjoBackend::kQaoaSimulator;
  config.thresholds = {10.0};
  config.shots = 1024;
  config.qaoa_iterations = 20;
  config.seed = 11;

  std::printf("--- noisy execution (IBM Q Auckland model) ---\n");
  auto noisy = OptimizeJoinOrder(query, config);
  if (!noisy.ok()) {
    std::printf("failed: %s\n", noisy.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", noisy->Summary().c_str());
  std::printf("optimised angles: gamma=%.4f beta=%.4f\n", noisy->gate.gamma,
              noisy->gate.beta);
  std::printf("estimated timings: t_s=%.1fms, t_qpu=%.2fs\n\n",
              noisy->gate.timings.sampling_ms, noisy->gate.timings.total_s);

  std::printf("--- ideal execution (no decoherence/gate errors) ---\n");
  config.noiseless = true;
  config.seed = 12;
  auto ideal = OptimizeJoinOrder(query, config);
  if (!ideal.ok()) {
    std::printf("failed: %s\n", ideal.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", ideal->Summary().c_str());

  std::printf(
      "Noise turned %s of ideal valid samples into %s — the Table 2 story:\n"
      "circuit depth %d exceeds what coherence sustains, so most shots are\n"
      "effectively random.\n",
      FormatPercent(ideal->stats.valid_fraction()).c_str(),
      FormatPercent(noisy->stats.valid_fraction()).c_str(),
      noisy->gate.circuit_depth);
  return 0;
}

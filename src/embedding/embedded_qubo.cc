#include "embedding/embedded_qubo.h"

#include <algorithm>

#include "util/check.h"

namespace qjo {

StatusOr<EmbeddedQubo> EmbedQubo(const Qubo& logical,
                                 const Embedding& embedding,
                                 const CouplingGraph& target,
                                 const EmbedQuboOptions& options) {
  if (embedding.num_logical() != logical.num_variables()) {
    return Status::InvalidArgument("embedding does not match QUBO size");
  }
  if (!VerifyEmbedding(logical.Edges(), logical.num_variables(), target,
                       embedding)) {
    return Status::InvalidArgument("invalid embedding for this QUBO");
  }

  EmbeddedQubo out;
  out.embedding = embedding;
  out.chain_strength =
      options.chain_strength_override > 0.0
          ? options.chain_strength_override
          : options.chain_strength_multiplier * logical.MaxAbsCoefficient();

  Qubo physical(target.num_qubits());
  physical.AddOffset(logical.offset());

  // Linear terms: split evenly across the chain.
  for (int i = 0; i < logical.num_variables(); ++i) {
    const auto& chain = embedding.chains[i];
    const double share =
        logical.linear(i) / static_cast<double>(chain.size());
    for (int q : chain) {
      if (share != 0.0) physical.AddLinear(q, share);
    }
  }

  // Couplings: split evenly across all physical couplers between chains.
  for (const auto& [i, j, w] : logical.QuadraticTerms()) {
    std::vector<std::pair<int, int>> couplers;
    for (int qa : embedding.chains[i]) {
      for (int qb : embedding.chains[j]) {
        if (target.HasEdge(qa, qb)) couplers.emplace_back(qa, qb);
      }
    }
    QJO_CHECK(!couplers.empty());
    const double share = w / static_cast<double>(couplers.size());
    for (const auto& [qa, qb] : couplers) {
      physical.AddQuadratic(qa, qb, share);
    }
  }

  // Chain penalties: cs * (x_p - x_q)^2 on every intra-chain coupler.
  const double cs = out.chain_strength;
  for (const auto& chain : embedding.chains) {
    for (size_t a = 0; a < chain.size(); ++a) {
      for (size_t b = a + 1; b < chain.size(); ++b) {
        if (target.HasEdge(chain[a], chain[b])) {
          physical.AddLinear(chain[a], cs);
          physical.AddLinear(chain[b], cs);
          physical.AddQuadratic(chain[a], chain[b], -2.0 * cs);
        }
      }
    }
  }

  out.physical = std::move(physical);
  return out;
}

UnembeddedSample UnembedSample(const std::vector<int>& physical_bits,
                               const Embedding& embedding, Rng& rng) {
  UnembeddedSample out;
  out.logical_bits.resize(embedding.num_logical());
  int broken = 0;
  for (int i = 0; i < embedding.num_logical(); ++i) {
    const auto& chain = embedding.chains[i];
    QJO_CHECK(!chain.empty());
    int ones = 0;
    for (int q : chain) {
      QJO_CHECK_LT(static_cast<size_t>(q), physical_bits.size());
      ones += physical_bits[q];
    }
    const int zeros = static_cast<int>(chain.size()) - ones;
    if (ones != 0 && zeros != 0) ++broken;
    if (ones > zeros) {
      out.logical_bits[i] = 1;
    } else if (ones < zeros) {
      out.logical_bits[i] = 0;
    } else {
      out.logical_bits[i] = rng.Bernoulli(0.5) ? 1 : 0;
    }
  }
  out.chain_break_fraction =
      embedding.num_logical() == 0
          ? 0.0
          : static_cast<double>(broken) /
                static_cast<double>(embedding.num_logical());
  return out;
}

}  // namespace qjo

#ifndef QJO_EMBEDDING_EMBEDDED_QUBO_H_
#define QJO_EMBEDDING_EMBEDDED_QUBO_H_

#include <vector>

#include "embedding/minor_embedding.h"
#include "qubo/qubo.h"
#include "topology/coupling_graph.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// A logical QUBO mapped onto hardware: linear terms split across chain
/// qubits, couplings distributed over the available inter-chain couplers,
/// and ferromagnetic chain penalties cs * (x_p - x_q)^2 on intra-chain
/// couplers (Sec. 2.2.2 / Sec. 4.1 "chain strength").
struct EmbeddedQubo {
  Qubo physical;  ///< indexed by physical qubit id
  Embedding embedding;
  double chain_strength = 0.0;
};

/// Options controlling the embedding of coefficients.
struct EmbedQuboOptions {
  /// Chain strength = multiplier * max |logical coefficient|; the paper
  /// determines suitable values per problem size experimentally.
  double chain_strength_multiplier = 1.0;
  /// Explicit chain strength; takes precedence when > 0.
  double chain_strength_override = -1.0;
};

/// Maps `logical` onto the hardware graph using `embedding`. Fails if the
/// embedding is invalid for the QUBO's graph.
StatusOr<EmbeddedQubo> EmbedQubo(const Qubo& logical,
                                 const Embedding& embedding,
                                 const CouplingGraph& target,
                                 const EmbedQuboOptions& options);

/// Result of mapping a physical sample back to logical variables by
/// majority vote over each chain.
struct UnembeddedSample {
  std::vector<int> logical_bits;
  /// Fraction of chains whose qubits disagreed (chain breaks).
  double chain_break_fraction = 0.0;
};

/// Majority-vote unembedding; ties are broken randomly via `rng`.
UnembeddedSample UnembedSample(const std::vector<int>& physical_bits,
                               const Embedding& embedding, Rng& rng);

}  // namespace qjo

#endif  // QJO_EMBEDDING_EMBEDDED_QUBO_H_

#ifndef QJO_EMBEDDING_MINOR_EMBEDDING_H_
#define QJO_EMBEDDING_MINOR_EMBEDDING_H_

#include <vector>

#include "topology/coupling_graph.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// A minor embedding: each logical (source) node is represented by a chain
/// of physical qubits. Valid embeddings have non-empty, pairwise-disjoint,
/// connected chains, and every source edge is representable by at least one
/// physical coupler between the two chains (Sec. 2.2.2).
struct Embedding {
  std::vector<std::vector<int>> chains;

  int num_logical() const { return static_cast<int>(chains.size()); }
  /// Total number of physical qubits used (the Fig. 3 metric).
  int NumPhysicalQubits() const;
  int MaxChainLength() const;
  double AverageChainLength() const;
};

/// Options for the heuristic embedder (a Cai-Macready-Roy-style algorithm,
/// standing in for D-Wave's minorminer).
struct EmbeddingOptions {
  /// Independent randomised attempts; the smallest valid embedding wins.
  int tries = 5;
  /// Improvement passes per attempt after the initial construction.
  int max_passes = 40;
  /// Base of the exponential overuse penalty during chain construction.
  double alpha = 4.0;
  /// Prints per-pass diagnostics to stderr.
  bool verbose = false;
};

/// Finds a minor embedding of the source graph (given as an edge list over
/// `num_source_nodes` nodes) into `target`. Returns NotFound if no valid
/// embedding was found within the configured tries.
StatusOr<Embedding> FindMinorEmbedding(
    const std::vector<std::pair<int, int>>& source_edges, int num_source_nodes,
    const CouplingGraph& target, const EmbeddingOptions& options, Rng& rng);

/// Validates chain disjointness, connectivity, and edge representability.
bool VerifyEmbedding(const std::vector<std::pair<int, int>>& source_edges,
                     int num_source_nodes, const CouplingGraph& target,
                     const Embedding& embedding);

}  // namespace qjo

#endif  // QJO_EMBEDDING_MINOR_EMBEDDING_H_

#include "embedding/minor_embedding.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <cstdio>
#include <queue>
#include <unordered_set>

#include "util/check.h"

namespace qjo {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Working state of one embedding attempt.
struct Attempt {
  Attempt(int num_logical, const CouplingGraph& target)
      : chains(num_logical),
        usage(target.num_qubits(), 0),
        target(&target) {}

  /// Cost of routing *through* physical qubit q: exponential in how many
  /// chains already occupy it (the CMR diffusion penalty).
  double NodeCost(int q, double alpha) const {
    if (usage[q] == 0) return 1.0;
    return std::pow(alpha, std::min(usage[q], 12));
  }

  void AssignChain(int node, std::vector<int> chain) {
    for (int q : chains[node]) --usage[q];
    chains[node] = std::move(chain);
    for (int q : chains[node]) ++usage[q];
  }

  void ClearChain(int node) { AssignChain(node, {}); }

  int OverusedQubits() const {
    int count = 0;
    for (int u : usage) {
      if (u > 1) ++count;
    }
    return count;
  }

  std::vector<std::vector<int>> chains;
  std::vector<int> usage;
  const CouplingGraph* target;
};

/// Multi-source Dijkstra from a chain; node weights (precomputed in
/// `node_cost`) are paid on entry. dist[q] = cheapest cost of a path
/// chain -> q (excluding the chain's own qubits, which cost 0);
/// parent[q] = predecessor towards the chain.
void DijkstraFromChain(const Attempt& attempt, const std::vector<int>& chain,
                       const std::vector<double>& node_cost,
                       std::vector<double>& dist, std::vector<int>& parent) {
  const CouplingGraph& g = *attempt.target;
  dist.assign(g.num_qubits(), kInf);
  parent.assign(g.num_qubits(), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  for (int q : chain) {
    dist[q] = 0.0;
    queue.emplace(0.0, q);
  }
  while (!queue.empty()) {
    const auto [d, q] = queue.top();
    queue.pop();
    if (d > dist[q]) continue;
    for (int next : g.Neighbors(q)) {
      const double nd = d + node_cost[next];
      if (nd < dist[next]) {
        dist[next] = nd;
        parent[next] = q;
        queue.emplace(nd, next);
      }
    }
  }
}

/// (Re-)routes `node`: places a root minimising the summed distance to all
/// embedded neighbours and connects it to each neighbour chain along the
/// Dijkstra tree. Returns false if no placement exists.
void PruneChain(Attempt& attempt, int node,
                const std::vector<std::vector<int>>& source_adj);

enum class RouteMode {
  kCapped,  ///< doubly-used qubits blocked (keeps the packing loose)
  kSoft,    ///< any qubit usable at exponential cost
  kHard,    ///< only free qubits usable
};

/// Routes `node` under the given occupancy policy.
bool RouteNodeImpl(Attempt& attempt, int node,
                   const std::vector<std::vector<int>>& source_adj,
                   double alpha, Rng& rng, RouteMode mode);

/// Routes `node`: optionally capped first (CMR occupancy bound), falling
/// back to the soft exponential-cost policy when the cap makes a
/// neighbour chain unreachable. In `hard` mode occupied qubits are
/// forbidden entirely, so a successful hard re-route can never introduce
/// a new overlap. The cap keeps large instances loosely packed but can
/// lock up tiny targets, so improvement passes alternate it on and off.
bool RouteNode(Attempt& attempt, int node,
               const std::vector<std::vector<int>>& source_adj, double alpha,
               Rng& rng, bool hard = false, bool capped = true) {
  if (hard) {
    return RouteNodeImpl(attempt, node, source_adj, alpha, rng,
                         RouteMode::kHard);
  }
  if (capped && RouteNodeImpl(attempt, node, source_adj, alpha, rng,
                              RouteMode::kCapped)) {
    return true;
  }
  return RouteNodeImpl(attempt, node, source_adj, alpha, rng,
                       RouteMode::kSoft);
}

bool RouteNodeImpl(Attempt& attempt, int node,
                   const std::vector<std::vector<int>>& source_adj,
                   double alpha, Rng& rng, RouteMode mode) {
  const bool hard = mode == RouteMode::kHard;
  const CouplingGraph& g = *attempt.target;
  attempt.ClearChain(node);

  // Usage costs are fixed for the duration of this call; precompute them
  // (pow() per edge relaxation would dominate otherwise). The multiplicative
  // jitter randomises path choices so successive re-routes explore
  // different configurations instead of deterministically recreating the
  // same conflicts. Qubits already shared by two chains are blocked
  // outright (the CMR occupancy cap), which keeps the packing loose enough
  // for conflicts to resolve.
  std::vector<double> node_cost(g.num_qubits());
  for (int q = 0; q < g.num_qubits(); ++q) {
    if (hard) {
      node_cost[q] = attempt.usage[q] > 0 ? kInf : 1.0;
    } else if (mode == RouteMode::kCapped && attempt.usage[q] >= 2) {
      node_cost[q] = kInf;
    } else {
      node_cost[q] = attempt.NodeCost(q, alpha) *
                     (1.0 + 0.5 * rng.UniformDouble());
    }
  }

  std::vector<int> embedded_neighbors;
  for (int nb : source_adj[node]) {
    if (!attempt.chains[nb].empty()) embedded_neighbors.push_back(nb);
  }

  if (embedded_neighbors.empty()) {
    // First node of a component: place on a random least-used qubit.
    int best = -1;
    double best_cost = kInf;
    for (int q = 0; q < g.num_qubits(); ++q) {
      const double cost = node_cost[q] + rng.UniformDouble() * 0.01;
      if (cost < best_cost) {
        best_cost = cost;
        best = q;
      }
    }
    attempt.AssignChain(node, {best});
    return true;
  }

  // Distance fields from every embedded neighbour chain.
  std::vector<std::vector<double>> dists(embedded_neighbors.size());
  std::vector<std::vector<int>> parents(embedded_neighbors.size());
  for (size_t i = 0; i < embedded_neighbors.size(); ++i) {
    DijkstraFromChain(attempt, attempt.chains[embedded_neighbors[i]],
                      node_cost, dists[i], parents[i]);
  }

  // Root choice: minimise sum of distances plus own cost.
  int root = -1;
  double best_total = kInf;
  for (int q = 0; q < g.num_qubits(); ++q) {
    double total = node_cost[q];
    bool reachable = true;
    for (const auto& dist : dists) {
      if (dist[q] == kInf) {
        reachable = false;
        break;
      }
      total += dist[q];
    }
    if (!reachable) continue;
    total += rng.UniformDouble() * 1e-3;  // tie-break
    if (total < best_total) {
      best_total = total;
      root = q;
    }
  }
  if (root < 0) return false;

  // Chain = root plus the interior of each root->neighbour-chain path.
  std::unordered_set<int> chain_set{root};
  for (size_t i = 0; i < embedded_neighbors.size(); ++i) {
    int q = root;
    // Walk towards the neighbour chain; stop at its first qubit.
    while (dists[i][q] > 0.0) {
      const int prev = parents[i][q];
      QJO_CHECK_GE(prev, 0);
      if (dists[i][prev] > 0.0) chain_set.insert(prev);
      q = prev;
    }
  }
  attempt.AssignChain(node,
                      std::vector<int>(chain_set.begin(), chain_set.end()));
  PruneChain(attempt, node, source_adj);
  return true;
}

/// Minimises one chain: keeps only qubits needed for connectivity to the
/// node's neighbour chains (prunes leaves of the chain's induced subtree
/// that touch no neighbour chain). Called after every (re-)route so the
/// working embedding stays lean; blob-shaped intermediate chains would
/// otherwise pack the hardware so densely that conflicts cannot resolve.
void PruneChain(Attempt& attempt, int node,
                const std::vector<std::vector<int>>& source_adj) {
  const CouplingGraph& g = *attempt.target;
  {
    std::vector<int> chain = attempt.chains[node];
    if (chain.size() <= 1) return;
    std::unordered_set<int> members(chain.begin(), chain.end());

    // Mark qubits adjacent to some neighbour chain as required anchors.
    std::unordered_set<int> anchors;
    for (int nb : source_adj[node]) {
      for (int q : attempt.chains[nb]) {
        for (int adj : g.Neighbors(q)) {
          if (members.count(adj)) {
            anchors.insert(adj);
          }
        }
      }
    }
    if (anchors.empty()) anchors.insert(chain[0]);

    // Repeatedly drop non-anchor leaves of the induced subgraph.
    bool changed = true;
    while (changed && members.size() > 1) {
      changed = false;
      for (auto it = members.begin(); it != members.end();) {
        const int q = *it;
        if (anchors.count(q)) {
          ++it;
          continue;
        }
        int internal_degree = 0;
        for (int adj : g.Neighbors(q)) {
          if (members.count(adj)) ++internal_degree;
        }
        if (internal_degree <= 1) {
          it = members.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    attempt.AssignChain(
        node, std::vector<int>(members.begin(), members.end()));
  }
}

/// Minimises every chain.
void PruneChains(Attempt& attempt,
                 const std::vector<std::vector<int>>& source_adj) {
  for (int node = 0; node < static_cast<int>(attempt.chains.size()); ++node) {
    PruneChain(attempt, node, source_adj);
  }
}

}  // namespace

int Embedding::NumPhysicalQubits() const {
  int total = 0;
  for (const auto& chain : chains) total += static_cast<int>(chain.size());
  return total;
}

int Embedding::MaxChainLength() const {
  int max_len = 0;
  for (const auto& chain : chains) {
    max_len = std::max(max_len, static_cast<int>(chain.size()));
  }
  return max_len;
}

double Embedding::AverageChainLength() const {
  if (chains.empty()) return 0.0;
  return static_cast<double>(NumPhysicalQubits()) /
         static_cast<double>(chains.size());
}

StatusOr<Embedding> FindMinorEmbedding(
    const std::vector<std::pair<int, int>>& source_edges, int num_source_nodes,
    const CouplingGraph& target, const EmbeddingOptions& options, Rng& rng) {
  if (num_source_nodes <= 0) {
    return Status::InvalidArgument("need at least one source node");
  }
  if (num_source_nodes > target.num_qubits()) {
    return Status::NotFound("source larger than target");
  }
  std::vector<std::vector<int>> source_adj(num_source_nodes);
  for (const auto& [a, b] : source_edges) {
    if (a < 0 || b < 0 || a >= num_source_nodes || b >= num_source_nodes ||
        a == b) {
      return Status::InvalidArgument("bad source edge");
    }
    source_adj[a].push_back(b);
    source_adj[b].push_back(a);
  }

  Embedding best;
  bool found = false;
  for (int attempt_index = 0; attempt_index < options.tries; ++attempt_index) {
    Attempt attempt(num_source_nodes, target);

    // Construction order: descending source degree with random jitter.
    std::vector<int> order(num_source_nodes);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return source_adj[a].size() > source_adj[b].size();
    });

    bool feasible = true;
    for (int node : order) {
      if (!RouteNode(attempt, node, source_adj, options.alpha, rng)) {
        feasible = false;
        break;
      }
    }
    // Improvement passes: re-route only the nodes whose chains touch
    // overused qubits (plus their source neighbours, to open up space).
    // The best configuration seen is kept; the random exploration can
    // transiently worsen things.
    std::vector<std::vector<int>> best_chains = attempt.chains;
    int best_overused = attempt.OverusedQubits();
    for (int pass = 0; feasible && pass < options.max_passes; ++pass) {
      const int overused_now = attempt.OverusedQubits();
      if (overused_now < best_overused) {
        best_overused = overused_now;
        best_chains = attempt.chains;
      }
      if (options.verbose) {
        int used = 0;
        for (const auto& chain : attempt.chains) {
          used += static_cast<int>(chain.size());
        }
        std::fprintf(stderr,
                     "[embed] attempt %d pass %d: overused=%d used=%d\n",
                     attempt_index, pass, attempt.OverusedQubits(), used);
      }
      if (attempt.OverusedQubits() == 0) break;
      std::vector<bool> needs_reroute(num_source_nodes, false);
      for (int node = 0; node < num_source_nodes; ++node) {
        for (int q : attempt.chains[node]) {
          if (attempt.usage[q] > 1) {
            needs_reroute[node] = true;
            for (int nb : source_adj[node]) needs_reroute[nb] = true;
            break;
          }
        }
      }
      // Every fourth pass re-packs the full embedding; in between only the
      // conflicted neighbourhood is re-routed (cheaper, and the jittered
      // costs keep exploring new configurations).
      const bool full_pass = pass % 4 == 3;
      rng.Shuffle(order);
      // Escalate the overuse penalty across passes so persistent
      // contention is eventually forced out (CMR-style annealed weights).
      const double alpha_pass =
          options.alpha * std::pow(1.5, std::min(pass, 12));
      for (int node : order) {
        if (!full_pass && !needs_reroute[node]) continue;
        if (!RouteNode(attempt, node, source_adj, alpha_pass, rng,
                       /*hard=*/false, /*capped=*/pass % 2 == 0)) {
          feasible = false;
          break;
        }
      }
    }
    // Restore the least-conflicted configuration before the final phase.
    if (feasible && attempt.OverusedQubits() > best_overused) {
      for (int node = 0; node < num_source_nodes; ++node) {
        attempt.AssignChain(node, best_chains[node]);
      }
    }

    // Final conflict resolution: re-route the remaining conflicted nodes
    // with occupied qubits forbidden outright. Each successful hard
    // re-route removes that node's overlaps without creating new ones, so
    // several shuffled rounds suffice whenever the hardware has room.
    for (int round = 0; feasible && round < 10; ++round) {
      const int overused_now = attempt.OverusedQubits();
      if (overused_now == 0) break;
      if (overused_now < best_overused) {
        best_overused = overused_now;
        best_chains = attempt.chains;
      } else if (overused_now > best_overused) {
        for (int node = 0; node < num_source_nodes; ++node) {
          attempt.AssignChain(node, best_chains[node]);
        }
      }
      std::vector<int> conflicted;
      for (int node = 0; node < num_source_nodes; ++node) {
        for (int q : attempt.chains[node]) {
          if (attempt.usage[q] > 1) {
            conflicted.push_back(node);
            break;
          }
        }
      }
      rng.Shuffle(conflicted);
      int hard_failures = 0;
      for (int node : conflicted) {
        if (!RouteNode(attempt, node, source_adj, options.alpha, rng,
                       /*hard=*/true)) {
          ++hard_failures;
          // No free-qubit route exists; fall back to a soft re-route so
          // the chain at least stays valid for the next round.
          if (!RouteNode(attempt, node, source_adj, options.alpha, rng)) {
            feasible = false;
            break;
          }
        }
      }
      if (options.verbose) {
        std::fprintf(stderr,
                     "[embed] attempt %d hard round %d: overused=%d "
                     "(conflicted=%zu, hard failures=%d)\n",
                     attempt_index, round, attempt.OverusedQubits(),
                     conflicted.size(), hard_failures);
      }
    }
    if (!feasible || attempt.OverusedQubits() != 0) continue;

    PruneChains(attempt, source_adj);
    Embedding candidate;
    candidate.chains = attempt.chains;
    if (!VerifyEmbedding(source_edges, num_source_nodes, target, candidate)) {
      continue;
    }
    if (!found ||
        candidate.NumPhysicalQubits() < best.NumPhysicalQubits()) {
      best = std::move(candidate);
      found = true;
    }
  }
  if (!found) return Status::NotFound("no valid embedding found");
  return best;
}

bool VerifyEmbedding(const std::vector<std::pair<int, int>>& source_edges,
                     int num_source_nodes, const CouplingGraph& target,
                     const Embedding& embedding) {
  if (embedding.num_logical() != num_source_nodes) return false;
  std::vector<int> owner(target.num_qubits(), -1);
  for (int node = 0; node < num_source_nodes; ++node) {
    const auto& chain = embedding.chains[node];
    if (chain.empty()) return false;
    for (int q : chain) {
      if (q < 0 || q >= target.num_qubits()) return false;
      if (owner[q] != -1) return false;  // overlap
      owner[q] = node;
    }
    // Chain connectivity: BFS within the chain.
    std::unordered_set<int> members(chain.begin(), chain.end());
    std::vector<int> stack{chain[0]};
    std::unordered_set<int> seen{chain[0]};
    while (!stack.empty()) {
      const int q = stack.back();
      stack.pop_back();
      for (int adj : target.Neighbors(q)) {
        if (members.count(adj) && !seen.count(adj)) {
          seen.insert(adj);
          stack.push_back(adj);
        }
      }
    }
    if (seen.size() != members.size()) return false;
  }
  // Every source edge needs a physical coupler between the chains.
  for (const auto& [a, b] : source_edges) {
    bool coupled = false;
    for (int qa : embedding.chains[a]) {
      for (int qb : embedding.chains[b]) {
        if (target.HasEdge(qa, qb)) {
          coupled = true;
          break;
        }
      }
      if (coupled) break;
    }
    if (!coupled) return false;
  }
  return true;
}

}  // namespace qjo

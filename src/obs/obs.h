#ifndef QJO_OBS_OBS_H_
#define QJO_OBS_OBS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace qjo {

/// Observability layer: stage tracing + solver metrics.
///
/// Both sinks follow the same contract:
///  * Null-sink default. Every instrumentation point takes a nullable
///    recorder/registry pointer; with nullptr the site is a single
///    predictable branch (no clock read, no allocation, no lock), so the
///    instrumented hot paths run at their uninstrumented speed (< 1%
///    budget, gated by the obs-overhead bench smoke).
///  * Results are observation-independent. Neither sink ever touches an
///    RNG stream or a solver state, so recorded runs are bit-identical to
///    unrecorded ones at every parallelism level.
///  * Thread-local shards. Writers append to a per-(thread, sink) shard
///    without cross-thread contention; shards are merged at export time.
///    Integer counters merge by summation and gauges by maximum — both
///    order-independent — so merged metric values are deterministic for a
///    deterministic workload regardless of thread scheduling. Trace
///    events carry wall-clock timestamps and are sorted by (start, tid,
///    name) at export; the timestamps themselves are wall-clock data and
///    inherently nondeterministic.

// ---------------------------------------------------------------------------
// Tracing.

/// One completed span: a named stage with monotonic start/duration and
/// the logical id of the thread that ran it.
struct TraceEvent {
  std::string name;
  uint64_t start_ns = 0;  ///< monotonic, relative to the recorder's epoch
  uint64_t duration_ns = 0;
  uint32_t tid = 0;  ///< logical thread id (shard registration order)
};

/// Collects StageSpan events from any number of threads. Lifetime must
/// cover every span recorded into it (attach/detach is the caller's
/// responsibility; the pipeline structs hold recorders as non-owning
/// pointers).
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Appends one completed span to the calling thread's shard.
  void Record(std::string_view name, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  /// Merged view of every shard, sorted by (start_ns, tid, name).
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur in
  /// microseconds) — load via chrome://tracing or https://ui.perfetto.dev.
  void WriteChromeTrace(std::ostream& os) const;

  /// Writes WriteChromeTrace output to `path`; false on I/O failure.
  bool WriteChromeTraceFile(const std::string& path) const;

  /// Monotonic zero point every event's start_ns is relative to.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

 private:
  friend class StageSpan;
  struct Shard {
    std::mutex mutex;  ///< owner thread appends; Snapshot reads
    std::vector<TraceEvent> events;
    uint32_t tid = 0;
  };

  Shard& LocalShard();

  const uint64_t id_;  ///< process-unique; keys the thread-local shard map
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Aggregated per-stage wall times of one pipeline run, filled by the
/// StageSpan sink. Stages nest (e.g. "embedding" runs inside
/// "solve.annealer"), so the per-stage times are *not* disjoint and can
/// sum past total_ms.
struct StageTimings {
  struct Stage {
    std::string name;
    double ms = 0.0;
  };
  std::vector<Stage> stages;
  double total_ms = 0.0;  ///< duration of the root "pipeline" span

  /// Total ms recorded under `name` (stages can repeat); 0 when absent.
  double Of(std::string_view name) const;
  bool Has(std::string_view name) const;
};

/// RAII span: records [construction, destruction) of a named stage into
/// a TraceRecorder and/or a StageTimings sink. Both sinks are nullable;
/// with both null the span does nothing (not even a clock read).
class StageSpan {
 public:
  explicit StageSpan(TraceRecorder* recorder, const char* name,
                     StageTimings* sink = nullptr)
      : recorder_(recorder), sink_(sink), name_(name) {
    if (recorder_ != nullptr || sink_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~StageSpan();

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  StageTimings* sink_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Metrics.

/// Merged, deterministic view of a MetricsRegistry.
struct MetricsSnapshot {
  /// Power-of-two histogram: buckets[i] counts observations with
  /// value <= 2^(i - kZeroBucket); the first bucket absorbs everything
  /// below its bound and the last everything above.
  struct Histogram {
    static constexpr int kNumBuckets = 40;
    static constexpr int kZeroBucket = 8;  ///< bucket of value == 1
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
  };

  std::map<std::string, uint64_t> counters;  ///< merged by summation
  std::map<std::string, double> gauges;      ///< merged by maximum
  std::map<std::string, Histogram> histograms;
};

/// Registry of named counters, gauges, and histograms. Writers go
/// through the calling thread's shard (no contention on the hot path);
/// Snapshot() merges shards with order-independent rules (counter sums,
/// gauge maxima, histogram bucket sums), so for a deterministic workload
/// the merged values are identical at every parallelism level. Metrics
/// that observe scheduling itself (scratch reuse, phase-table hits under
/// batched evaluation) are documented as telemetry and excluded from the
/// determinism contract.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// counters[name] += delta.
  void Count(std::string_view name, uint64_t delta = 1);

  /// gauges[name] = max(gauges[name], value).
  void GaugeMax(std::string_view name, double value);

  /// Folds `value` into histogram `name`.
  void Observe(std::string_view name, double value);

  MetricsSnapshot Snapshot() const;

  /// Flat JSON dump: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {"count": .., "min": .., "max": ..,
  /// "buckets": {"le_<bound>": n, ...}}}} with keys sorted.
  void WriteJson(std::ostream& os) const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  struct Shard {
    std::mutex mutex;
    std::map<std::string, uint64_t, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, MetricsSnapshot::Histogram, std::less<>> histograms;
  };

  Shard& LocalShard();

  const uint64_t id_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qjo

#endif  // QJO_OBS_OBS_H_

#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace qjo {
namespace {

/// Process-unique sink ids. Thread-local shard maps are keyed by id (not
/// address), so a destroyed sink's stale entries can never be revived by
/// an unrelated sink reusing its address — they just miss forever.
std::atomic<uint64_t> g_next_sink_id{1};

thread_local std::unordered_map<uint64_t, void*> t_trace_shards;
thread_local std::unordered_map<uint64_t, void*> t_metric_shards;

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

int HistogramBucket(double value) {
  using Histogram = MetricsSnapshot::Histogram;
  if (!(value > 0.0)) return 0;
  const int exponent =
      static_cast<int>(std::ceil(std::log2(value))) + Histogram::kZeroBucket;
  return std::clamp(exponent, 0, Histogram::kNumBuckets - 1);
}

double HistogramBound(int bucket) {
  return std::ldexp(1.0, bucket - MetricsSnapshot::Histogram::kZeroBucket);
}

void MergeHistogram(MetricsSnapshot::Histogram& into,
                    const MetricsSnapshot::Histogram& from) {
  for (int b = 0; b < MetricsSnapshot::Histogram::kNumBuckets; ++b) {
    into.buckets[static_cast<size_t>(b)] +=
        from.buckets[static_cast<size_t>(b)];
  }
  if (into.count == 0) {
    into.min = from.min;
    into.max = from.max;
  } else if (from.count > 0) {
    into.min = std::min(into.min, from.min);
    into.max = std::max(into.max, from.max);
  }
  into.count += from.count;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceRecorder.

TraceRecorder::TraceRecorder()
    : id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::Shard& TraceRecorder::LocalShard() {
  void*& slot = t_trace_shards[id_];
  if (slot == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto shard = std::make_unique<Shard>();
    shard->tid = static_cast<uint32_t>(shards_.size());
    slot = shard.get();
    shards_.push_back(std::move(shard));
  }
  return *static_cast<Shard*>(slot);
}

void TraceRecorder::Record(std::string_view name,
                           std::chrono::steady_clock::time_point start,
                           std::chrono::steady_clock::time_point end) {
  if (end < start) end = start;
  TraceEvent event;
  event.name.assign(name);
  event.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_)
          .count());
  event.duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  event.tid = shard.tid;
  shard.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mutex);
      events.insert(events.end(), shard->events.begin(), shard->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  return events;
}

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = Snapshot();
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    WriteJsonString(os, e.name);
    os << ", \"cat\": \"qjo\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << static_cast<double>(e.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(e.duration_ns) / 1e3 << "}";
  }
  os << "\n  ]\n}\n";
}

bool TraceRecorder::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteChromeTrace(out);
  out.flush();
  return static_cast<bool>(out);
}

StageSpan::~StageSpan() {
  if (recorder_ == nullptr && sink_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  if (recorder_ != nullptr) recorder_->Record(name_, start_, end);
  if (sink_ != nullptr) {
    sink_->stages.push_back(
        {name_, std::chrono::duration<double, std::milli>(end - start_)
                    .count()});
  }
}

double StageTimings::Of(std::string_view name) const {
  double total = 0.0;
  for (const Stage& stage : stages) {
    if (stage.name == name) total += stage.ms;
  }
  return total;
}

bool StageTimings::Has(std::string_view name) const {
  for (const Stage& stage : stages) {
    if (stage.name == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

MetricsRegistry::MetricsRegistry()
    : id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  void*& slot = t_metric_shards[id_];
  if (slot == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto shard = std::make_unique<Shard>();
    slot = shard.get();
    shards_.push_back(std::move(shard));
  }
  return *static_cast<Shard*>(slot);
}

void MetricsRegistry::Count(std::string_view name, uint64_t delta) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    shard.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::GaugeMax(std::string_view name, double value) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    shard.gauges.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms.emplace(std::string(name),
                                  MetricsSnapshot::Histogram{})
             .first;
  }
  MetricsSnapshot::Histogram& h = it->second;
  ++h.buckets[static_cast<size_t>(HistogramBucket(value))];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (const auto& [name, value] : shard->counters) {
      snapshot.counters[name] += value;
    }
    for (const auto& [name, value] : shard->gauges) {
      auto [it, inserted] = snapshot.gauges.emplace(name, value);
      if (!inserted) it->second = std::max(it->second, value);
    }
    for (const auto& [name, histogram] : shard->histograms) {
      MergeHistogram(snapshot.histograms[name], histogram);
    }
  }
  return snapshot;
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  const MetricsSnapshot snapshot = Snapshot();
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    os << (first ? "\n    " : ",\n    ");
    WriteJsonString(os, name);
    os << ": " << value;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    os << (first ? "\n    " : ",\n    ");
    WriteJsonString(os, name);
    std::ostringstream number;
    number << value;
    os << ": " << number.str();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    os << (first ? "\n    " : ",\n    ");
    WriteJsonString(os, name);
    os << ": {\"count\": " << h.count << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"buckets\": {";
    bool first_bucket = true;
    for (int b = 0; b < MetricsSnapshot::Histogram::kNumBuckets; ++b) {
      const uint64_t n = h.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;
      if (!first_bucket) os << ", ";
      os << "\"le_" << HistogramBound(b) << "\": " << n;
      first_bucket = false;
    }
    os << "}}";
    first = false;
  }
  os << "\n  }\n}\n";
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteJson(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace qjo

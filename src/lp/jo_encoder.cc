#include "lp/jo_encoder.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.h"

namespace qjo {
namespace {

std::string VarName(const char* base, int a, int b) {
  return std::string(base) + "_" + std::to_string(a) + "_" + std::to_string(b);
}

}  // namespace

int JoMilpModel::pao(int p, int j) const {
  if (pao_.empty()) return -1;
  return pao_[p * num_joins() + j];
}

int JoMilpModel::cto(int r, int j) const {
  if (cto_.empty()) return -1;
  return cto_[r * num_joins() + j];
}

double JoMilpModel::MaxLogCardinality(int j) const {
  std::vector<double> logs;
  logs.reserve(query_.num_relations());
  for (const Relation& rel : query_.relations()) {
    logs.push_back(std::log10(rel.cardinality));
  }
  std::sort(logs.begin(), logs.end(), std::greater<double>());
  double sum = 0.0;
  const int count = std::min<int>(j + 1, static_cast<int>(logs.size()));
  for (int i = 0; i < count; ++i) sum += logs[i];
  return sum;
}

StatusOr<JoMilpModel> EncodeJoAsMilp(const Query& query,
                                     const JoMilpOptions& options) {
  if (query.num_relations() < 2) {
    return Status::InvalidArgument("need at least 2 relations");
  }
  if (query.num_relations() > 63) {
    return Status::InvalidArgument("at most 63 relations supported");
  }
  if (options.thresholds.empty()) {
    return Status::InvalidArgument("need at least one threshold value");
  }
  for (size_t r = 0; r < options.thresholds.size(); ++r) {
    if (options.thresholds[r] <= 0.0) {
      return Status::InvalidArgument("thresholds must be positive");
    }
    if (r > 0 && options.thresholds[r] <= options.thresholds[r - 1]) {
      return Status::InvalidArgument("thresholds must be strictly increasing");
    }
  }
  if (!(options.omega > 0.0)) {
    return Status::InvalidArgument("omega must be positive");
  }

  JoMilpModel out;
  out.query_ = query;
  out.options_ = options;

  const int T = query.num_relations();
  const int J = query.num_joins();
  const int P = query.num_predicates();
  const int R = static_cast<int>(options.thresholds.size());
  const bool pruned = options.variant == JoModelVariant::kPruned;
  LpModel& m = out.model_;

  auto add_var = [&out, &m](std::string name, JoVarInfo info,
                            VarKind kind = VarKind::kBinary) {
    const int id = m.AddVariable(std::move(name), kind);
    out.var_info_.push_back(info);
    return id;
  };

  // --- Relation placement variables (Sec. 3.2, "Modelling Relations"). ---
  out.tio_.assign(static_cast<size_t>(T) * J, -1);
  out.tii_.assign(static_cast<size_t>(T) * J, -1);
  for (int t = 0; t < T; ++t) {
    for (int j = 0; j < J; ++j) {
      out.tio_[out.IndexOf(t, j)] =
          add_var(VarName("tio", t, j), JoVarInfo{JoVarKind::kTio, t, j});
      out.tii_[out.IndexOf(t, j)] =
          add_var(VarName("tii", t, j), JoVarInfo{JoVarKind::kTii, t, j});
      ++out.stats_.tio;
      ++out.stats_.tii;
    }
  }

  // Each inner operand is exactly one relation: sum_t tii_tj = 1.
  for (int j = 0; j < J; ++j) {
    LpConstraint c;
    c.name = "inner_leaf_" + std::to_string(j);
    for (int t = 0; t < T; ++t) c.expr.AddTerm(out.tii(t, j), 1.0);
    c.sense = Sense::kEq;
    c.rhs = 1.0;
    m.AddConstraint(std::move(c));
    ++out.stats_.constraints_inner_leaf;
  }
  // The outer operand of the very first join is exactly one relation.
  {
    LpConstraint c;
    c.name = "outer_leaf_0";
    for (int t = 0; t < T; ++t) c.expr.AddTerm(out.tio(t, 0), 1.0);
    c.sense = Sense::kEq;
    c.rhs = 1.0;
    m.AddConstraint(std::move(c));
    ++out.stats_.constraints_outer_leaf;
  }

  // Eq. (3): tio_tj = tii_{t,j-1} + tio_{t,j-1} for j > 0.
  for (int j = 1; j < J; ++j) {
    for (int t = 0; t < T; ++t) {
      LpConstraint c;
      c.name = "propagate_" + std::to_string(t) + "_" + std::to_string(j);
      c.expr.AddTerm(out.tio(t, j), 1.0);
      c.expr.AddTerm(out.tii(t, j - 1), -1.0);
      c.expr.AddTerm(out.tio(t, j - 1), -1.0);
      c.sense = Sense::kEq;
      c.rhs = 0.0;
      m.AddConstraint(std::move(c));
      ++out.stats_.constraints_propagation;
    }
  }

  // Eq. (4): tio_tj + tii_tj <= 1. Pruned: final join only (redundant for
  // earlier joins given Eq. (3)); original: all joins.
  const int overlap_first_join = pruned ? J - 1 : 0;
  for (int j = overlap_first_join; j < J; ++j) {
    for (int t = 0; t < T; ++t) {
      LpConstraint c;
      c.name = "overlap_" + std::to_string(t) + "_" + std::to_string(j);
      c.expr.AddTerm(out.tio(t, j), 1.0);
      c.expr.AddTerm(out.tii(t, j), 1.0);
      c.sense = Sense::kLe;
      c.rhs = 1.0;
      c.slack_kind = SlackKind::kInteger;
      c.slack_bound = 1.0;
      m.AddConstraint(std::move(c));
      ++out.stats_.constraints_overlap;
    }
  }

  // --- Predicate applicability (Sec. 3.2, "Modelling Predicates"). ---
  // Pruned model omits pao_p0: the first join's outer operand is a single
  // relation, so no binary predicate can ever apply there.
  const int pao_first_join = pruned ? 1 : 0;
  out.pao_.assign(static_cast<size_t>(std::max(P, 1)) * J, -1);
  for (int p = 0; p < P; ++p) {
    for (int j = pao_first_join; j < J; ++j) {
      out.pao_[p * J + j] =
          add_var(VarName("pao", p, j), JoVarInfo{JoVarKind::kPao, -1, j, p});
      ++out.stats_.pao;
      // Eq. (5): pao_pj <= tio_{T1(p),j} and pao_pj <= tio_{T2(p),j}.
      for (int side = 0; side < 2; ++side) {
        const int rel = side == 0 ? query.predicate(p).left
                                  : query.predicate(p).right;
        LpConstraint c;
        c.name = "pao_" + std::to_string(p) + "_" + std::to_string(j) +
                 (side == 0 ? "_l" : "_r");
        c.expr.AddTerm(out.pao(p, j), 1.0);
        c.expr.AddTerm(out.tio(rel, j), -1.0);
        c.sense = Sense::kLe;
        c.rhs = 0.0;
        c.slack_kind = SlackKind::kInteger;
        c.slack_bound = 1.0;
        m.AddConstraint(std::move(c));
        ++out.stats_.constraints_pao;
      }
    }
  }

  // --- Cardinality thresholds (Sec. 3.2, "Cost Function"). ---
  // Original model materialises c_j as continuous convenience variables.
  std::vector<int> cj_vars;
  if (!pruned) {
    for (int j = 0; j < J; ++j) {
      cj_vars.push_back(add_var("c_" + std::to_string(j),
                                JoVarInfo{JoVarKind::kCjContinuous, -1, j},
                                VarKind::kContinuous));
      ++out.stats_.cj;
      LpConstraint c;
      c.name = "cj_def_" + std::to_string(j);
      c.expr.AddTerm(cj_vars.back(), 1.0);
      for (int t = 0; t < T; ++t) {
        c.expr.AddTerm(out.tio(t, j),
                       -std::log10(query.relation(t).cardinality));
      }
      for (int p = 0; p < P; ++p) {
        if (out.pao(p, j) >= 0) {
          c.expr.AddTerm(out.pao(p, j),
                         -std::log10(query.predicate(p).selectivity));
        }
      }
      c.sense = Sense::kEq;
      c.rhs = 0.0;
      m.AddConstraint(std::move(c));
      ++out.stats_.constraints_cj_definition;
    }
  }

  // cto_rj variables and Eq. (7) constraints. Pruned: joins 1..J-1 only
  // (join 0's outer operand is a base relation, not an intermediate), and
  // variables whose threshold can never be exceeded are dropped.
  const int cto_first_join = pruned ? 1 : 0;
  out.cto_.assign(static_cast<size_t>(R) * J, -1);
  LinearExpr objective;
  for (int r = 0; r < R; ++r) {
    const double log_theta = std::log10(options.thresholds[r]);
    for (int j = cto_first_join; j < J; ++j) {
      const double cj_max = out.MaxLogCardinality(j);
      if (pruned && cj_max <= log_theta) continue;  // Lemma-based pruning.
      out.cto_[r * J + j] =
          add_var(VarName("cto", r, j),
                  JoVarInfo{JoVarKind::kCto, -1, j, -1, r});
      ++out.stats_.cto;
      objective.AddTerm(out.cto(r, j), options.thresholds[r]);

      // Eq. (7): c_j - cto_rj * inf_rj <= log(theta_r) with the smallest
      // admissible inf_rj = cj_max - log(theta_r) (proof of Lemma 5.1).
      const double inf_rj = std::max(cj_max - log_theta, 0.0);
      LpConstraint c;
      c.name = "cto_" + std::to_string(r) + "_" + std::to_string(j);
      if (pruned) {
        for (int t = 0; t < T; ++t) {
          c.expr.AddTerm(out.tio(t, j),
                         std::log10(query.relation(t).cardinality));
        }
        for (int p = 0; p < P; ++p) {
          if (out.pao(p, j) >= 0) {
            c.expr.AddTerm(out.pao(p, j),
                           std::log10(query.predicate(p).selectivity));
          }
        }
      } else {
        c.expr.AddTerm(cj_vars[j], 1.0);
      }
      c.expr.AddTerm(out.cto(r, j), -inf_rj);
      c.sense = Sense::kLe;
      c.rhs = log_theta;
      c.slack_kind = SlackKind::kContinuous;
      c.slack_bound = cj_max;  // Lemma 5.1.
      m.AddConstraint(std::move(c));
      ++out.stats_.constraints_cto;
    }
  }
  objective.Canonicalize();
  m.SetObjective(std::move(objective));

  return out;
}

std::vector<double> MakeGeometricThresholds(const Query& query,
                                            int num_thresholds) {
  QJO_CHECK_GE(num_thresholds, 1);
  std::vector<double> logs;
  for (const Relation& rel : query.relations()) {
    logs.push_back(std::log10(rel.cardinality));
  }
  std::sort(logs.begin(), logs.end(), std::greater<double>());
  double cmax = 0.0;
  // Outer operand of the final join holds T-1 relations (Lemma 5.2).
  for (size_t i = 0; i + 1 < logs.size(); ++i) cmax += logs[i];
  if (logs.size() == 1) cmax = logs[0];
  std::vector<double> thresholds;
  for (int r = 0; r < num_thresholds; ++r) {
    const double exponent =
        cmax * static_cast<double>(r + 1) / static_cast<double>(num_thresholds + 1);
    thresholds.push_back(std::pow(10.0, exponent));
  }
  return thresholds;
}

}  // namespace qjo

#ifndef QJO_LP_JO_ENCODER_H_
#define QJO_LP_JO_ENCODER_H_

#include <string>
#include <vector>

#include "jo/query.h"
#include "lp/model.h"
#include "util/statusor.h"

namespace qjo {

/// Which MILP formulation to generate. The paper's contribution is the
/// *pruned* model (Sec. 3.2); the *original* Trummer-Koch-style model is
/// implemented for the Table 1 comparison.
enum class JoModelVariant { kPruned, kOriginal };

/// Options for encoding a join-ordering problem as MILP.
struct JoMilpOptions {
  /// Cardinality threshold values theta_r (raw, not logarithmic). Must be
  /// non-empty and strictly increasing.
  std::vector<double> thresholds;

  /// Discretisation precision omega for continuous slack variables in the
  /// BILP lowering (Sec. 3.3). Carried here because it determines slack
  /// metadata attached to Eq. (7) constraints.
  double omega = 1.0;

  JoModelVariant variant = JoModelVariant::kPruned;
};

/// Per-variable-type and per-constraint-type tallies, exactly the rows of
/// the paper's Table 1.
struct JoModelStats {
  int tio = 0;
  int tii = 0;
  int pao = 0;
  int cto = 0;
  int cj = 0;  ///< Continuous convenience variables (original model only).

  int constraints_inner_leaf = 0;      ///< sum_t tii_tj = 1
  int constraints_outer_leaf = 0;      ///< sum_t tio_t0 = 1
  int constraints_propagation = 0;     ///< Eq. (3)
  int constraints_overlap = 0;         ///< Eq. (4): tio + tii <= 1
  int constraints_pao = 0;             ///< Eq. (5)
  int constraints_cto = 0;             ///< Eq. (7)
  int constraints_cj_definition = 0;   ///< c_j = ... (original model only)
};

/// Role of a variable in the JO encoding; used by the postprocessor to
/// decode QPU samples back into join trees (Sec. 3.5).
enum class JoVarKind { kTio, kTii, kPao, kCto, kCjContinuous };

struct JoVarInfo {
  JoVarKind kind = JoVarKind::kTio;
  int t = -1;  ///< relation index (tio/tii)
  int j = -1;  ///< join index
  int p = -1;  ///< predicate index (pao)
  int r = -1;  ///< threshold index (cto)
};

/// A join-ordering problem encoded as MILP, together with the metadata
/// required to decode solutions and to compute Table 1 statistics.
class JoMilpModel {
 public:
  const LpModel& model() const { return model_; }
  const Query& query() const { return query_; }
  const JoMilpOptions& options() const { return options_; }
  const JoModelStats& stats() const { return stats_; }
  const std::vector<JoVarInfo>& var_info() const { return var_info_; }

  /// Variable ids; -1 when the variable was pruned away.
  int tio(int t, int j) const { return tio_[IndexOf(t, j)]; }
  int tii(int t, int j) const { return tii_[IndexOf(t, j)]; }
  int pao(int p, int j) const;
  int cto(int r, int j) const;

  int num_relations() const { return query_.num_relations(); }
  int num_joins() const { return query_.num_joins(); }

  /// Maximum logarithmic cardinality of the outer operand of join j
  /// (Lemma 5.2): the sum of the j+1 largest log10 cardinalities.
  double MaxLogCardinality(int j) const;

 private:
  friend StatusOr<JoMilpModel> EncodeJoAsMilp(const Query&,
                                              const JoMilpOptions&);

  int IndexOf(int t, int j) const { return t * num_joins() + j; }

  LpModel model_;
  Query query_;
  JoMilpOptions options_;
  JoModelStats stats_;
  std::vector<JoVarInfo> var_info_;
  std::vector<int> tio_;
  std::vector<int> tii_;
  std::vector<int> pao_;  // p * J + j
  std::vector<int> cto_;  // r * J + j
};

/// Encodes a join-ordering problem as a MILP model (Sec. 3.1-3.2). Fails
/// for queries with < 2 relations, empty/unsorted thresholds, or
/// non-positive omega.
StatusOr<JoMilpModel> EncodeJoAsMilp(const Query& query,
                                     const JoMilpOptions& options);

/// Geometrically-spaced threshold values spanning the achievable range of
/// intermediate logarithmic cardinalities: theta_r = 10^((r+1) * cmax /
/// (R+1)) where cmax is the Lemma 5.2 bound for the final join's outer
/// operand.
std::vector<double> MakeGeometricThresholds(const Query& query,
                                            int num_thresholds);

}  // namespace qjo

#endif  // QJO_LP_JO_ENCODER_H_

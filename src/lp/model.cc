#include "lp/model.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace qjo {

void LinearExpr::AddTerm(int variable, double coefficient) {
  QJO_CHECK_GE(variable, 0);
  terms_.emplace_back(variable, coefficient);
}

void LinearExpr::Canonicalize() {
  std::map<int, double> merged;
  for (const auto& [var, coeff] : terms_) merged[var] += coeff;
  terms_.clear();
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0.0) terms_.emplace_back(var, coeff);
  }
}

double LinearExpr::Evaluate(const std::vector<int>& assignment) const {
  double value = constant_;
  for (const auto& [var, coeff] : terms_) {
    QJO_CHECK_LT(static_cast<size_t>(var), assignment.size());
    value += coeff * static_cast<double>(assignment[var]);
  }
  return value;
}

int LpModel::AddVariable(std::string name, VarKind kind) {
  variables_.push_back(LpVariable{std::move(name), kind});
  return static_cast<int>(variables_.size()) - 1;
}

void LpModel::AddConstraint(LpConstraint constraint) {
  constraint.expr.Canonicalize();
  constraints_.push_back(std::move(constraint));
}

int LpModel::num_binary_variables() const {
  int count = 0;
  for (const auto& v : variables_) {
    if (v.kind == VarKind::kBinary) ++count;
  }
  return count;
}

double LpModel::EvaluateObjective(const std::vector<int>& assignment) const {
  return objective_.Evaluate(assignment);
}

bool LpModel::IsFeasible(const std::vector<int>& assignment,
                         double tolerance) const {
  for (const auto& c : constraints_) {
    const double lhs = c.expr.Evaluate(assignment);
    if (c.sense == Sense::kEq) {
      if (std::abs(lhs - c.rhs) > tolerance) return false;
    } else {
      if (lhs > c.rhs + tolerance) return false;
    }
  }
  return true;
}

}  // namespace qjo

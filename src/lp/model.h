#ifndef QJO_LP_MODEL_H_
#define QJO_LP_MODEL_H_

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace qjo {

/// A linear expression sum_i coeff_i * x_i + constant over model variables.
class LinearExpr {
 public:
  LinearExpr() = default;

  /// Adds `coefficient * variable` to the expression.
  void AddTerm(int variable, double coefficient);
  /// Adds a constant offset.
  void AddConstant(double value) { constant_ += value; }

  /// Merges duplicate variables and removes zero coefficients.
  void Canonicalize();

  const std::vector<std::pair<int, double>>& terms() const { return terms_; }
  double constant() const { return constant_; }

  /// Evaluates the expression under a 0/1 assignment indexed by variable id.
  double Evaluate(const std::vector<int>& assignment) const;

 private:
  std::vector<std::pair<int, double>> terms_;
  double constant_ = 0.0;
};

/// Comparison sense of a linear constraint.
enum class Sense { kLe, kEq };

/// Slack discretisation class for inequality constraints (Sec. 3.3): integer
/// constraints receive integral binary slack; continuous ones are
/// discretised with precision omega.
enum class SlackKind { kInteger, kContinuous };

/// A linear constraint `expr (<=|=) rhs`.
struct LpConstraint {
  std::string name;
  LinearExpr expr;
  Sense sense = Sense::kLe;
  double rhs = 0.0;

  SlackKind slack_kind = SlackKind::kInteger;
  /// Upper bound for the slack variable of a <= constraint. NaN means
  /// "derive by interval arithmetic over the expression" (conservative);
  /// the JO encoder overrides it with the tight Lemma 5.1 bound.
  double slack_bound = std::nan("");

  bool has_explicit_slack_bound() const { return !std::isnan(slack_bound); }
};

/// Kind of a decision variable. The pruned JO model is purely binary;
/// continuous variables only appear in the paper's *original* model (the
/// c_j convenience variables) and cannot be lowered to BILP by this library.
enum class VarKind { kBinary, kContinuous };

/// Metadata of a model variable.
struct LpVariable {
  std::string name;
  VarKind kind = VarKind::kBinary;
};

/// A (mixed-)binary linear program: minimise `objective` subject to the
/// constraints, all decision variables binary (continuous variables are
/// tracked for Table 1 accounting only).
class LpModel {
 public:
  LpModel() = default;

  /// Adds a variable; returns its id.
  int AddVariable(std::string name, VarKind kind = VarKind::kBinary);

  void AddConstraint(LpConstraint constraint);
  void SetObjective(LinearExpr objective) { objective_ = std::move(objective); }

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_binary_variables() const;
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  const LpVariable& variable(int id) const { return variables_[id]; }
  const std::vector<LpVariable>& variables() const { return variables_; }
  const std::vector<LpConstraint>& constraints() const { return constraints_; }
  const LinearExpr& objective() const { return objective_; }

  /// Objective value under an assignment (indexed by variable id).
  double EvaluateObjective(const std::vector<int>& assignment) const;

  /// True if the assignment satisfies all constraints within `tolerance`.
  bool IsFeasible(const std::vector<int>& assignment,
                  double tolerance = 1e-9) const;

 private:
  std::vector<LpVariable> variables_;
  std::vector<LpConstraint> constraints_;
  LinearExpr objective_;
};

}  // namespace qjo

#endif  // QJO_LP_MODEL_H_

#ifndef QJO_LP_BILP_H_
#define QJO_LP_BILP_H_

#include <string>
#include <vector>

#include "lp/model.h"
#include "util/statusor.h"

namespace qjo {

/// A single equality constraint sum_i S_i x_i = b over binary variables.
struct BilpConstraint {
  std::string name;
  std::vector<std::pair<int, double>> terms;
  double rhs = 0.0;
};

/// Metadata of one slack-variable group introduced while lowering an
/// inequality constraint (Sec. 3.3): slack ~= step * sum_i 2^(i-1) b_i.
struct SlackGroup {
  int constraint_index = -1;   ///< index into BilpModel::constraints
  int first_variable = -1;     ///< id of the first slack bit
  int num_bits = 0;
  double step = 1.0;           ///< omega for continuous slack, 1 for integer
  double bound = 0.0;          ///< the upper bound C used for sizing
};

/// Binary integer linear program with equality constraints only: minimise
/// c.x subject to S x = b, x binary. Produced by LowerToBilp; consumed by
/// the BILP -> QUBO transformation (Sec. 3.4).
struct BilpModel {
  std::vector<std::string> variable_names;
  /// Number of leading variables inherited from the MILP model (problem
  /// encoding variables); ids >= this are slack bits.
  int num_problem_variables = 0;
  std::vector<BilpConstraint> constraints;
  std::vector<std::pair<int, double>> objective;
  std::vector<SlackGroup> slack_groups;

  int num_variables() const {
    return static_cast<int>(variable_names.size());
  }
  int num_slack_variables() const {
    return num_variables() - num_problem_variables;
  }

  /// Objective value of an assignment (indexed by variable id).
  double EvaluateObjective(const std::vector<int>& assignment) const;

  /// Sum of squared constraint violations (the unweighted H_A of Eq. (10)).
  double ConstraintViolation(const std::vector<int>& assignment) const;

  /// True if every equality holds within `tolerance`.
  bool IsFeasible(const std::vector<int>& assignment,
                  double tolerance = 1e-6) const;
};

/// Number of binary variables needed to represent an integer bounded by
/// `bound` at discretisation step `step` (Eq. (9)):
/// n = floor(log2(bound / step)) + 1, clamped at 0 for bound < step.
int NumSlackBits(double bound, double step);

/// Lowers a MILP model whose decision variables are all binary into a BILP
/// model by adding (discretised) slack variables to every inequality
/// (Sec. 3.3). `omega` is the discretisation precision for continuous
/// slack. Fails if the model contains continuous decision variables or an
/// unsatisfiable inequality.
StatusOr<BilpModel> LowerToBilp(const LpModel& milp, double omega);

}  // namespace qjo

#endif  // QJO_LP_BILP_H_

#include "lp/bilp.h"

#include <cmath>

#include "util/check.h"

namespace qjo {

double BilpModel::EvaluateObjective(const std::vector<int>& assignment) const {
  double value = 0.0;
  for (const auto& [var, coeff] : objective) {
    value += coeff * static_cast<double>(assignment[var]);
  }
  return value;
}

double BilpModel::ConstraintViolation(
    const std::vector<int>& assignment) const {
  double total = 0.0;
  for (const BilpConstraint& c : constraints) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : c.terms) {
      lhs += coeff * static_cast<double>(assignment[var]);
    }
    const double gap = lhs - c.rhs;
    total += gap * gap;
  }
  return total;
}

bool BilpModel::IsFeasible(const std::vector<int>& assignment,
                           double tolerance) const {
  for (const BilpConstraint& c : constraints) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : c.terms) {
      lhs += coeff * static_cast<double>(assignment[var]);
    }
    if (std::abs(lhs - c.rhs) > tolerance) return false;
  }
  return true;
}

int NumSlackBits(double bound, double step) {
  QJO_CHECK_GT(step, 0.0);
  if (bound < step) return 0;
  return static_cast<int>(std::floor(std::log2(bound / step))) + 1;
}

StatusOr<BilpModel> LowerToBilp(const LpModel& milp, double omega) {
  if (!(omega > 0.0)) {
    return Status::InvalidArgument("omega must be positive");
  }
  for (const LpVariable& v : milp.variables()) {
    if (v.kind != VarKind::kBinary) {
      return Status::FailedPrecondition(
          "BILP lowering requires a purely binary model; use the pruned "
          "JO formulation (variable '" + v.name + "' is continuous)");
    }
  }

  BilpModel out;
  out.num_problem_variables = milp.num_variables();
  for (const LpVariable& v : milp.variables()) {
    out.variable_names.push_back(v.name);
  }
  for (const auto& [var, coeff] : milp.objective().terms()) {
    out.objective.emplace_back(var, coeff);
  }

  for (const LpConstraint& c : milp.constraints()) {
    BilpConstraint eq;
    eq.name = c.name;
    eq.rhs = c.rhs - c.expr.constant();
    for (const auto& [var, coeff] : c.expr.terms()) {
      eq.terms.emplace_back(var, coeff);
    }
    if (c.sense == Sense::kLe) {
      // Slack bound: explicit (Lemma 5.1 for Eq. (7)) or derived from the
      // interval minimum of the expression.
      double bound;
      if (c.has_explicit_slack_bound()) {
        bound = c.slack_bound;
      } else {
        double min_expr = 0.0;
        for (const auto& [var, coeff] : c.expr.terms()) {
          (void)var;
          if (coeff < 0.0) min_expr += coeff;
        }
        bound = eq.rhs - min_expr;
      }
      if (bound < 0.0) {
        return Status::FailedPrecondition("unsatisfiable inequality: " +
                                          c.name);
      }
      const double step = c.slack_kind == SlackKind::kInteger ? 1.0 : omega;
      const int bits = NumSlackBits(bound, step);
      SlackGroup group;
      group.constraint_index = static_cast<int>(out.constraints.size());
      group.first_variable = out.num_variables();
      group.num_bits = bits;
      group.step = step;
      group.bound = bound;
      for (int i = 0; i < bits; ++i) {
        out.variable_names.push_back("slack_" + c.name + "_b" +
                                     std::to_string(i));
        eq.terms.emplace_back(group.first_variable + i,
                              step * std::pow(2.0, i));
      }
      out.slack_groups.push_back(group);
    }
    out.constraints.push_back(std::move(eq));
  }
  return out;
}

}  // namespace qjo

#ifndef QJO_SERVE_PLAN_CACHE_H_
#define QJO_SERVE_PLAN_CACHE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/quantum_optimizer.h"

namespace qjo {

class MetricsRegistry;

/// Configuration of the serving layer's plan/result cache.
struct PlanCacheOptions {
  /// Shard count; rounded up to the next power of two so the shard pick
  /// is a mask. More shards = less lock contention between concurrent
  /// service workers hitting unrelated keys.
  int num_shards = 8;
  /// Per-shard LRU capacity (total capacity = shards x this).
  size_t capacity_per_shard = 128;
  /// Entry time-to-live in milliseconds; <= 0 = entries never expire.
  /// TTL exists because cached plans embed cardinality estimates — a
  /// serving deployment refreshing statistics wants stale plans aged
  /// out even when the key space is small enough to never hit the LRU.
  double ttl_ms = -1.0;
};

/// Sharded full plan/result cache of the serving layer: where
/// QuboBuildCache memoizes the *encoding* (MILP -> BILP -> QUBO) so a
/// repeated query skips the rebuild, PlanCache memoizes the entire
/// pipeline *answer* (the QjoReport, join order included) so a repeated
/// request skips the solve as well. Keyed by the serving plan key — the
/// encoding fingerprint extended with every result-determining QjoConfig
/// field (see OptimizerService::PlanKey).
///
/// Eviction order: expired entries go first. A lookup that lands on an
/// expired entry removes it (counted as ttl_expiration + miss, never as
/// an eviction); an insert into a full shard first sweeps that shard's
/// expired entries (ttl_expirations) and only displaces the
/// least-recently-used live entry (evictions) when none were expired.
/// Hits refresh recency; a re-insert of a present key replaces the value
/// in place and refreshes its insert time without evicting anything.
///
/// Stats follow the QuboBuildCache memory-order contract: relaxed atomic
/// increments, lock-free relaxed reads — each counter individually exact
/// and monotone, cross-counter consistency only at quiescence. stats()
/// never touches a shard mutex, so scraping metrics cannot stall a
/// lookup.
class PlanCache {
 public:
  using Clock = std::chrono::steady_clock;

  explicit PlanCache(const PlanCacheOptions& options = {});

  /// Returns the cached report for `key`, or null on miss/expiry.
  /// The *At overloads take an explicit clock reading so tests can drive
  /// TTL behaviour deterministically.
  std::shared_ptr<const QjoReport> Lookup(std::string_view key);
  std::shared_ptr<const QjoReport> LookupAt(std::string_view key,
                                            Clock::time_point now);

  /// Inserts (or replaces) the entry for `key`.
  void Insert(std::string_view key, QjoReport report);
  void InsertAt(std::string_view key, QjoReport report, Clock::time_point now);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Live entries displaced by inserts into a full shard.
    uint64_t evictions = 0;
    /// Entries removed because their TTL had passed (on lookup or by the
    /// pre-eviction sweep of a full insert).
    uint64_t ttl_expirations = 0;
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  Stats stats() const;

  /// Publishes the counters as `serve.cache.{hits,misses,evictions,
  /// ttl_expirations}` gauges (cumulative values under max-merge, so the
  /// exported numbers are the latest totals). Null registry = no-op.
  void ExportGauges(MetricsRegistry* metrics) const;

  /// Snapshot of every live (non-expired at `now`) key, most recently
  /// used first within each shard. This is the warm-up export: the
  /// serving layer persists it on Drain()/shutdown and replays a matching
  /// workload through WarmUp() on the next start.
  std::vector<std::string> Keys() const;
  std::vector<std::string> KeysAt(Clock::time_point now) const;

  size_t size() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const QjoReport> report;
    Clock::time_point inserted;
  };
  /// Most-recently-used entries sit at the front; eviction pops the back.
  using LruList = std::list<Entry>;
  struct Shard {
    std::mutex mutex;
    LruList lru;
    /// Keys view into the node-stable strings owned by `lru`.
    std::unordered_map<std::string_view, LruList::iterator> entries;
  };

  Shard& ShardFor(std::string_view key);
  bool Expired(const Entry& entry, Clock::time_point now) const;

  const size_t capacity_per_shard_;
  const double ttl_ms_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> ttl_expirations_{0};
};

}  // namespace qjo

#endif  // QJO_SERVE_PLAN_CACHE_H_

#ifndef QJO_SERVE_TOKEN_BUCKET_H_
#define QJO_SERVE_TOKEN_BUCKET_H_

#include <chrono>

namespace qjo {

/// Classic token-bucket rate limiter: `rate_per_sec` tokens accrue
/// continuously up to a `burst` ceiling, and an acquisition succeeds only
/// when the bucket holds the full cost. The serving layer keeps one per
/// tenant to police *request rate* independently of the in-flight quota
/// (which polices concurrency): a tenant hammering cheap cache hits can
/// stay under its quota forever yet still monopolise the admission path.
///
/// Deliberately clock-free: every method takes an explicit time point, so
/// the service passes the submit timestamp it already read and tests
/// drive refill behaviour deterministically. Not internally synchronised
/// — the owner serialises access (the service holds its admission mutex).
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts full (burst tokens) at `start`. Non-positive rate/burst are
  /// clamped to tiny positive values so a misconfigured bucket rejects
  /// (almost) everything instead of dividing by zero.
  TokenBucket(double rate_per_sec, double burst, Clock::time_point start);

  /// Takes `cost` tokens at `now` if available and returns true. On
  /// refusal returns false and, when `retry_after_ms` is non-null, writes
  /// the exact time until the deficit refills at the configured rate —
  /// the hint is derived from bucket state, not queue depth.
  bool TryAcquireAt(Clock::time_point now, double cost,
                    double* retry_after_ms = nullptr);

  /// Tokens available at `now` (refill applied, before any acquisition).
  double TokensAt(Clock::time_point now) const;

  double rate_per_sec() const { return rate_per_sec_; }
  double burst() const { return burst_; }

 private:
  void RefillTo(Clock::time_point now);

  double rate_per_sec_;
  double burst_;
  double tokens_;
  Clock::time_point last_refill_;
};

}  // namespace qjo

#endif  // QJO_SERVE_TOKEN_BUCKET_H_

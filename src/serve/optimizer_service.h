#ifndef QJO_SERVE_OPTIMIZER_SERVICE_H_
#define QJO_SERVE_OPTIMIZER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/quantum_optimizer.h"
#include "qubo/deadline_monitor.h"
#include "serve/plan_cache.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace qjo {

/// Configuration of an OptimizerService instance.
struct ServeOptions {
  /// Dispatcher workers draining the admission queue. Each worker runs one
  /// request at a time end-to-end; the solve itself fans out over the
  /// shared `pool` (nested ParallelFor serialises safely), so workers
  /// bound *concurrent requests*, not threads.
  int workers = 2;
  /// Total queued (not yet dispatched) requests across all tenants; a
  /// submit past this cap is rejected with ResourceExhausted and a
  /// retry-after hint instead of queueing unboundedly.
  size_t queue_capacity = 256;
  /// Per-tenant cap on queued + running requests; 0 = unlimited. A tenant
  /// at its quota is rejected (ResourceExhausted) even when the global
  /// queue has room — one chatty tenant cannot starve the others, and
  /// round-robin dispatch across tenants prevents head-of-line blocking
  /// behind a tenant with a deep backlog.
  size_t per_tenant_inflight = 0;
  /// Deadline applied to requests that do not carry their own; <= 0 = no
  /// default deadline.
  double default_deadline_ms = -1.0;
  /// When a request reaches a worker with less than this much of its
  /// deadline remaining, the full pipeline is skipped in favour of the
  /// classical DP/greedy fallback (graceful degradation: an approximate
  /// plan beats a deadline miss).
  double degrade_margin_ms = 5.0;

  /// Plan/result cache over (encoding fingerprint, result-determining
  /// config) — see OptimizerService::PlanKey.
  bool enable_plan_cache = true;
  PlanCacheOptions cache;

  /// Optional externally-owned solve pool shared by every request (the
  /// OptimizeJoinOrderBatch ownership rule applies: the service never
  /// creates a second pool when one is supplied). Null = per-request
  /// transient pools per the QjoConfig contract.
  ThreadPool* pool = nullptr;

  /// Observability sinks (null-sink default, not owned). The service
  /// records serve.queue/serve.solve spans and serve.* counters and
  /// exports the plan-cache gauges on every completion.
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// One optimisation request submitted to the service.
struct ServeRequest {
  Query query;
  QjoConfig config;
  /// Admission-control identity; requests with the same tenant share one
  /// quota and one round-robin slot.
  std::string tenant = "default";
  /// Wall-clock budget from *submit* (queue wait included); <= 0 = use
  /// ServeOptions::default_deadline_ms.
  double deadline_ms = -1.0;
  /// Skip the plan cache for this request (always solve, never insert).
  bool bypass_cache = false;
};

/// Outcome of one served request.
struct ServeResult {
  Status status = Status::Ok();
  QjoReport report;
  /// The report came from the plan cache (no solve ran).
  bool cache_hit = false;
  /// The report came from the degraded classical fallback path (deadline
  /// pressure at dequeue), not the full pipeline.
  bool degraded = false;
  /// The deadline had fully expired before a worker picked the request
  /// up; the result is the classical fallback (degraded is also true).
  bool deadline_expired_in_queue = false;
  double queue_ms = 0.0;
  double solve_ms = 0.0;
};

/// Multi-tenant serving front door for the join-order optimiser: one
/// service multiplexes many in-flight OptimizeJoinOrder requests over a
/// bounded worker set and one shared ThreadPool.
///
///  * Admission control — Submit() rejects (never blocks) when the global
///    queue is full or the tenant is at its in-flight quota, returning
///    ResourceExhausted plus a retry-after hint derived from the observed
///    mean solve time and current backlog.
///  * No head-of-line blocking — queued requests live in per-tenant FIFO
///    lanes; workers pop round-robin across tenants, so a tenant with a
///    thousand queued requests delays a new tenant by at most one request
///    per worker.
///  * Deadlines — a request's wall budget covers queue wait + solve. The
///    shared DeadlineMonitor arms one stop token per dispatched request;
///    expiry winds the portfolio/decomp strands down cooperatively.
///    Requests dequeued with (almost) no budget left degrade to the
///    classical DP/greedy fallback instead of failing.
///  * Plan cache — results are memoized by PlanKey(); a hit returns the
///    cached report without touching the solvers.
///
/// Determinism: a cache-miss request that never has its stop token fire
/// returns a report bit-identical to a direct OptimizeJoinOrder(query,
/// config) call, at any worker count and pool parallelism (the solvers'
/// existing contract; the service adds no RNG or cross-request coupling).
class OptimizerService {
 public:
  explicit OptimizerService(const ServeOptions& options = {});
  /// Fails queued, never-dispatched requests with FailedPrecondition and
  /// joins the workers. In-flight solves run to completion.
  ~OptimizerService();

  OptimizerService(const OptimizerService&) = delete;
  OptimizerService& operator=(const OptimizerService&) = delete;

  /// Admits or rejects `request`. On admission the future resolves once a
  /// worker finishes the request (possibly with a degraded or failed
  /// ServeResult — per-request errors land in ServeResult::status, not
  /// here). On rejection returns ResourceExhausted and, when
  /// `retry_after_ms` is non-null, writes a backoff hint estimating when
  /// capacity frees up.
  StatusOr<std::future<ServeResult>> Submit(ServeRequest request,
                                            double* retry_after_ms = nullptr);

  /// Blocks until every admitted request has resolved its future. New
  /// submits during a drain are allowed and also waited for.
  void Drain();

  /// Cache key of a request: the encoding fingerprint (query + threshold
  /// grid + omega, bit-exact) extended with every QjoConfig field that
  /// determines the report (backend, seed, parallel-independent solver
  /// settings...). Fields that only affect *where* work runs
  /// (parallelism, pool, sinks) are excluded — the determinism contract
  /// makes them result-neutral. Caveat: the exotic hardware-model fields
  /// (DeviceProperties, transpile/embedding options, custom topologies)
  /// are *not* keyed — a deployment varying them per request must set
  /// `bypass_cache`.
  static std::string PlanKey(const Query& query, const QjoConfig& config);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_tenant_quota = 0;
    uint64_t completed = 0;
    uint64_t degraded = 0;
    uint64_t expired_in_queue = 0;
    uint64_t cache_hits = 0;
  };
  /// Race-free snapshot (same relaxed-atomic contract as the caches).
  Stats stats() const;

  PlanCache* plan_cache() { return cache_.get(); }
  size_t queued() const;

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point submitted;
    /// Resolved absolute deadline; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline;
    double deadline_ms = -1.0;  ///< resolved budget; <= 0 = none
  };

  void WorkerLoop(std::stop_token stop);
  /// Pops the next request round-robin across tenant lanes; null when the
  /// queue is empty. Caller holds `mutex_`.
  std::unique_ptr<Pending> PopLocked();
  void Process(Pending& pending);
  /// Classical DP (greedy past the DP size cap) fallback; also labels the
  /// report's portfolio section so callers see the degradation.
  Status DegradedSolve(const ServeRequest& request, QjoReport* report);
  void FinishTenant(const std::string& tenant);

  const ServeOptions options_;
  std::unique_ptr<PlanCache> cache_;  ///< null when the cache is disabled
  DeadlineMonitor monitor_;

  mutable std::mutex mutex_;
  std::condition_variable_any work_ready_;
  std::condition_variable drained_;
  /// Per-tenant FIFO lanes + round-robin rotation over tenants with
  /// queued work.
  std::unordered_map<std::string, std::deque<std::unique_ptr<Pending>>>
      lanes_;
  std::vector<std::string> rotation_;
  size_t rotation_next_ = 0;
  /// queued + running per tenant (admission quota accounting).
  std::unordered_map<std::string, size_t> tenant_inflight_;
  size_t queued_ = 0;
  size_t running_ = 0;

  /// EWMA of observed solve wall time, feeding the retry-after hint.
  std::atomic<double> avg_solve_ms_{50.0};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_tenant_quota_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> cache_hits_{0};

  std::vector<std::jthread> workers_;  ///< last member: join before the rest
};

}  // namespace qjo

#endif  // QJO_SERVE_OPTIMIZER_SERVICE_H_

#ifndef QJO_SERVE_OPTIMIZER_SERVICE_H_
#define QJO_SERVE_OPTIMIZER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/quantum_optimizer.h"
#include "core/strand_select.h"
#include "qubo/deadline_monitor.h"
#include "serve/plan_cache.h"
#include "serve/token_bucket.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace qjo {

/// Configuration of an OptimizerService instance.
struct ServeOptions {
  /// Dispatcher workers draining the admission queue. Each worker runs one
  /// request at a time end-to-end; the solve itself fans out over the
  /// shared `pool` (nested ParallelFor serialises safely), so workers
  /// bound *concurrent requests*, not threads.
  int workers = 2;
  /// Total queued (not yet dispatched) requests across all tenants; a
  /// submit past this cap is rejected with ResourceExhausted and a
  /// retry-after hint instead of queueing unboundedly.
  size_t queue_capacity = 256;
  /// Per-tenant cap on queued + running quota units; 0 = unlimited. A
  /// tenant at its quota is rejected (ResourceExhausted) even when the
  /// global queue has room — one chatty tenant cannot starve the others,
  /// and round-robin dispatch across tenants prevents head-of-line
  /// blocking behind a tenant with a deep backlog. Coalesced followers
  /// count `follower_quota_weight` units instead of 1.
  size_t per_tenant_inflight = 0;
  /// Deadline applied to requests that do not carry their own; <= 0 = no
  /// default deadline.
  double default_deadline_ms = -1.0;
  /// When a request reaches a worker with less than this much of its
  /// deadline remaining, the full pipeline is skipped in favour of the
  /// classical DP/greedy fallback (graceful degradation: an approximate
  /// plan beats a deadline miss).
  double degrade_margin_ms = 5.0;

  /// Single-flight request coalescing: a submit whose plan key matches an
  /// in-flight solve attaches to that leader instead of queueing a second
  /// solve, and is answered with a copy of the leader's report the moment
  /// it lands. Duplicate work on the hot path becomes structurally
  /// impossible: any plan key has at most one solve running at a time.
  bool enable_coalescing = true;
  /// Quota units a coalesced follower costs its tenant (a follower holds
  /// no worker and no queue slot, so charging it like a full request
  /// would make duplicate-heavy tenants look busier than they are).
  /// Also the token-bucket cost of a follower admission.
  double follower_quota_weight = 0.25;

  /// One QuboBuildCache shared by every request of this service: a plan
  /// cache miss still reuses the pre-built CSR from any prior request
  /// with the same encoding fingerprint (and the decomposition strand's
  /// window re-encodes are shared across requests too). Cached entries
  /// are deterministic, so sharing never changes a result. Disable only
  /// to measure the rebuild cost; a request carrying its own
  /// `config.qubo_cache` keeps it (caller wins).
  bool share_build_cache = true;
  size_t build_cache_entries = 1024;

  /// Per-tenant token-bucket rate limit in admissions/sec; <= 0 = off.
  /// Layered *before* the inflight quotas: the quota bounds concurrency,
  /// the bucket bounds request rate (a tenant hammering cheap cache hits
  /// never trips the quota but still monopolises admission). When the
  /// bucket rejects, the retry-after hint is the bucket's refill time —
  /// not the queue-depth estimate.
  double tenant_rate_per_sec = 0.0;
  /// Bucket capacity in tokens; <= 0 = max(1, tenant_rate_per_sec).
  double tenant_burst = 0.0;

  /// Ceiling on every retry-after hint this service emits (queue-depth
  /// and bucket-refill alike). Keeps a pathological solve-time EWMA from
  /// telling clients to go away for hours.
  double max_retry_after_ms = 30000.0;

  /// Plan/result cache over (encoding fingerprint, result-determining
  /// config) — see OptimizerService::PlanKey.
  bool enable_plan_cache = true;
  PlanCacheOptions cache;

  /// Plan-cache warm-up persistence: when non-empty, the live key set is
  /// written here by Drain() and at shutdown, and loaded at construction
  /// into warmup_keys() for a WarmUp(workload) call to replay. Empty =
  /// no persistence.
  std::string warmup_file;

  /// Adaptive strand selection across requests (core/strand_select.h):
  /// when on, every portfolio-backend request runs with the
  /// service-owned RunRecordStore attached and `adaptive` enabled, so
  /// the per-bucket bandit learns from each race and throttles strands
  /// that never win a request's problem shape. A request carrying its
  /// own `config.strand_records` keeps it (caller wins). Note the plan
  /// cache still serves hits recorded under an older records state —
  /// stale-but-valid by the cache's never-changing-plan-validity
  /// argument; set `bypass_cache` per request to force re-selection.
  bool adaptive = false;
  /// Strand-records persistence (versioned text, next to `warmup_file`):
  /// when non-empty, the store is loaded at construction (a missing file
  /// is a cold start, not an error) and written by Drain() and at
  /// shutdown, so strand knowledge survives restarts. Setting only this
  /// — with `adaptive` off — records outcomes without shaping budgets
  /// (warm-up mode).
  std::string strand_records_file;

  /// Optional externally-owned solve pool shared by every request (the
  /// OptimizeJoinOrderBatch ownership rule applies: the service never
  /// creates a second pool when one is supplied). Null = per-request
  /// transient pools per the QjoConfig contract.
  ThreadPool* pool = nullptr;

  /// Observability sinks (null-sink default, not owned). The service
  /// records serve.queue/serve.solve/serve.warmup spans and serve.*
  /// counters and exports the plan-cache gauges on every completion.
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// One optimisation request submitted to the service.
struct ServeRequest {
  Query query;
  QjoConfig config;
  /// Admission-control identity; requests with the same tenant share one
  /// quota and one round-robin slot.
  std::string tenant = "default";
  /// Wall-clock budget from *submit* (queue wait included); <= 0 = use
  /// ServeOptions::default_deadline_ms.
  double deadline_ms = -1.0;
  /// Skip the plan cache for this request (always solve, never insert);
  /// also opts out of coalescing in both directions.
  bool bypass_cache = false;
};

/// Outcome of one served request.
struct ServeResult {
  Status status = Status::Ok();
  QjoReport report;
  /// The report came from the plan cache (no solve ran).
  bool cache_hit = false;
  /// The report is a copy of a coalesced leader's result (this request
  /// attached to an identical in-flight solve and never ran its own).
  bool coalesced = false;
  /// The report came from the degraded classical fallback path (deadline
  /// pressure at dequeue), not the full pipeline.
  bool degraded = false;
  /// The deadline had fully expired before a worker picked the request
  /// up (or, for a coalesced follower, before its leader finished); the
  /// result is the classical fallback (degraded is also true).
  bool deadline_expired_in_queue = false;
  double queue_ms = 0.0;
  double solve_ms = 0.0;
};

/// Retry-after hint: `backlog` requests paced at the observed mean solve
/// time spread over `workers`, clamped to [0, max_retry_after_ms]. By
/// construction monotone non-decreasing in `backlog` for any fixed
/// average: a pathological EWMA (NaN, infinite, non-positive) falls back
/// to a default estimate instead of leaking into the hint, and the clamp
/// bounds the hint even when the average itself is unbounded.
double RetryAfterHintMs(double avg_solve_ms, size_t backlog, size_t workers,
                        double max_retry_after_ms);

/// Multi-tenant serving front door for the join-order optimiser: one
/// service multiplexes many in-flight OptimizeJoinOrder requests over a
/// bounded worker set and one shared ThreadPool.
///
///  * Admission control — Submit() rejects (never blocks) when the
///    tenant's token bucket is dry, the global queue is full or the
///    tenant is at its in-flight quota, returning ResourceExhausted plus
///    a retry-after hint (bucket refill time for rate rejections, mean
///    solve time x backlog otherwise, both capped by max_retry_after_ms).
///  * No head-of-line blocking — queued requests live in per-tenant FIFO
///    lanes; workers pop round-robin across tenants, so a tenant with a
///    thousand queued requests delays a new tenant by at most one request
///    per worker.
///  * Single-flight coalescing — a submit whose PlanKey matches an
///    in-flight solve attaches to the leader and is resolved with a copy
///    of the leader's report; duplicate keys cost one solve total.
///    Followers keep their own deadlines: one whose deadline expires
///    before the leader finishes is degraded to the classical fallback by
///    the follower reaper instead of blocking on the leader.
///  * Shared QUBO-build cache — every request's encode goes through one
///    service-owned QuboBuildCache (single-flight itself), so even a
///    plan-cache miss reuses the pre-built CSR from any prior request.
///  * Deadlines — a request's wall budget covers queue wait + solve. The
///    shared DeadlineMonitor arms one stop token per dispatched request;
///    expiry winds the portfolio/decomp strands down cooperatively.
///    Requests dequeued with (almost) no budget left degrade to the
///    classical DP/greedy fallback instead of failing.
///  * Plan cache — results are memoized by PlanKey(); a hit returns the
///    cached report without touching the solvers. The key set can be
///    persisted (warmup_file) and replayed through WarmUp() so a restart
///    starts hot.
///
/// Determinism: a cache-miss request that never has its stop token fire
/// returns a report bit-identical to a direct OptimizeJoinOrder(query,
/// config) call, at any worker count and pool parallelism (the solvers'
/// existing contract; the service adds no RNG or cross-request coupling,
/// and coalesced followers receive byte-for-byte copies of a report with
/// that same property).
class OptimizerService {
 public:
  explicit OptimizerService(const ServeOptions& options = {});
  /// Fails queued, never-dispatched requests (and coalesced followers
  /// still waiting on them) with FailedPrecondition and joins the
  /// workers. In-flight solves run to completion. Persists the warm-up
  /// key set when `warmup_file` is configured.
  ~OptimizerService();

  OptimizerService(const OptimizerService&) = delete;
  OptimizerService& operator=(const OptimizerService&) = delete;

  /// Admits or rejects `request`. On admission the future resolves once a
  /// worker finishes the request (possibly with a degraded or failed
  /// ServeResult — per-request errors land in ServeResult::status, not
  /// here), or — for a coalesced follower — once its leader finishes. On
  /// rejection returns ResourceExhausted and, when `retry_after_ms` is
  /// non-null, writes a backoff hint estimating when capacity frees up.
  StatusOr<std::future<ServeResult>> Submit(ServeRequest request,
                                            double* retry_after_ms = nullptr);

  /// Blocks until every admitted request (coalesced followers included)
  /// has resolved its future. New submits during a drain are allowed and
  /// also waited for. Persists the warm-up key set when `warmup_file` is
  /// configured.
  void Drain();

  /// Pre-populates the plan cache before taking traffic: every workload
  /// request whose PlanKey appears in `keys` is solved synchronously
  /// (service pool + shared build cache, full budget, no deadline) and
  /// inserted. Returns the number of entries warmed. Keys without a
  /// matching workload entry are skipped — a key alone cannot
  /// reconstruct its query, so the caller supplies the candidate
  /// workload (e.g. its known query templates). Call before serving;
  /// warming concurrently with traffic is safe but may duplicate a solve.
  size_t WarmUp(const std::vector<std::string>& keys,
                std::span<const ServeRequest> workload);
  /// WarmUp() against the key set loaded from `warmup_file`.
  size_t WarmUp(std::span<const ServeRequest> workload);

  /// Writes the live plan-cache key set to `path` (header line + one key
  /// per line); returns false when the cache is disabled or the write
  /// fails. Drain() and the destructor call this with `warmup_file`.
  bool SaveWarmupKeys(const std::string& path) const;
  /// Loads a key set written by SaveWarmupKeys; empty on any error or
  /// header mismatch.
  static std::vector<std::string> LoadWarmupKeys(const std::string& path);
  /// Keys loaded from `warmup_file` at construction (empty otherwise).
  const std::vector<std::string>& warmup_keys() const {
    return pending_warmup_keys_;
  }

  /// Cache key of a request: the encoding fingerprint (query + threshold
  /// grid + omega, bit-exact) extended with every QjoConfig field that
  /// determines the report (backend, seed, parallel-independent solver
  /// settings...). Fields that only affect *where* work runs
  /// (parallelism, pool, sinks) are excluded — the determinism contract
  /// makes them result-neutral. Caveat: the exotic hardware-model fields
  /// (DeviceProperties, transpile/embedding options, custom topologies)
  /// are *not* keyed — a deployment varying them per request must set
  /// `bypass_cache`.
  static std::string PlanKey(const Query& query, const QjoConfig& config);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_tenant_quota = 0;
    uint64_t rejected_rate_limited = 0;
    uint64_t completed = 0;
    uint64_t degraded = 0;
    uint64_t expired_in_queue = 0;
    uint64_t cache_hits = 0;
    /// Requests answered with a copy of a coalesced leader's report.
    uint64_t coalesced = 0;
    /// Full pipeline solves actually run (excludes cache hits, coalesced
    /// followers and degraded fallbacks) — the denominator of duplicate
    /// work. On a duplicate-heavy workload with coalescing on, solves ==
    /// unique plan keys.
    uint64_t solves = 0;
    /// Plan-cache entries populated by WarmUp(), and hits served from
    /// them.
    uint64_t warmed = 0;
    uint64_t warm_hits = 0;
  };
  /// Race-free snapshot (same relaxed-atomic contract as the caches).
  Stats stats() const;

  PlanCache* plan_cache() { return cache_.get(); }
  /// Service-owned shared build cache; null when share_build_cache is
  /// off.
  QuboBuildCache* build_cache() { return build_cache_.get(); }
  /// Service-owned strand run records (attached to portfolio requests
  /// when `adaptive` is on or `strand_records_file` is set).
  RunRecordStore* strand_records() { return &strand_records_; }
  size_t queued() const;
  /// Followers currently attached to in-flight leaders.
  size_t coalesced_waiting() const;

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point submitted;
    /// Resolved absolute deadline; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline;
    double deadline_ms = -1.0;  ///< resolved budget; <= 0 = none
    /// PlanKey, precomputed at submit; empty for bypass_cache requests
    /// when the plan cache is off.
    std::string plan_key;
    /// Quota units charged to the tenant (1.0, or follower weight).
    double quota_cost = 1.0;
    /// This request registered the in-flight entry for its plan key and
    /// owns resolving/re-dispatching its followers when it finishes.
    bool is_leader = false;
  };
  /// Followers attached to one in-flight leader, keyed by plan key.
  struct InflightSolve {
    std::vector<std::unique_ptr<Pending>> followers;
  };

  void WorkerLoop(std::stop_token stop);
  /// Follower-deadline watcher: degrades followers whose own deadline
  /// expires before their leader finishes (classical fallback, same as
  /// expiry-at-dequeue), so a follower never blocks on a slow leader.
  void ReaperLoop(std::stop_token stop);
  /// Pops the next request round-robin across tenant lanes; null when the
  /// queue is empty. Caller holds `mutex_`.
  std::unique_ptr<Pending> PopLocked();
  /// Appends (or, for re-dispatched followers, prepends) to the tenant's
  /// lane and maintains the rotation invariant. Caller holds `mutex_`.
  void EnqueueLocked(std::unique_ptr<Pending> pending, bool front);
  void Process(Pending& pending);
  /// Leader epilogue: pops the in-flight entry and either resolves every
  /// follower with a copy of `result` (when it is a full-fidelity,
  /// shareable answer) or re-dispatches them as ordinary requests.
  void FinishInflight(Pending& leader, const ServeResult& result,
                      bool shareable);
  /// Classical DP (greedy past the DP size cap) fallback; also labels the
  /// report's portfolio section so callers see the degradation.
  Status DegradedSolve(const ServeRequest& request, QjoReport* report);
  void FinishTenant(const std::string& tenant, double cost);

  const ServeOptions options_;
  std::unique_ptr<PlanCache> cache_;  ///< null when the cache is disabled
  std::unique_ptr<QuboBuildCache> build_cache_;  ///< null when sharing off
  DeadlineMonitor monitor_;
  std::vector<std::string> pending_warmup_keys_;
  /// Cross-request strand run records (thread-safe; loaded from and
  /// persisted to strand_records_file when configured).
  RunRecordStore strand_records_;

  mutable std::mutex mutex_;
  std::condition_variable_any work_ready_;
  std::condition_variable drained_;
  /// Per-tenant FIFO lanes + round-robin rotation over tenants with
  /// queued work.
  std::unordered_map<std::string, std::deque<std::unique_ptr<Pending>>>
      lanes_;
  std::vector<std::string> rotation_;
  size_t rotation_next_ = 0;
  /// queued + running quota units per tenant (admission accounting;
  /// followers weigh follower_quota_weight).
  std::unordered_map<std::string, double> tenant_inflight_;
  /// Per-tenant admission-rate buckets (tenant_rate_per_sec > 0 only).
  std::unordered_map<std::string, TokenBucket> buckets_;
  /// In-flight single-flight registry: plan key -> waiting followers.
  /// An entry exists from the leader's admission until its epilogue.
  std::unordered_map<std::string, std::unique_ptr<InflightSolve>> inflight_;
  size_t queued_ = 0;
  size_t running_ = 0;
  size_t coalesced_waiting_ = 0;
  /// Bumped per follower attach so the reaper recomputes its sleep.
  uint64_t reaper_generation_ = 0;
  std::condition_variable_any reaper_wakeup_;
  /// Keys inserted by WarmUp(); hits on them count as warm hits. Guarded
  /// by mutex_; the flag makes the empty case lock-free on the hit path.
  std::unordered_set<std::string> warmed_keys_;
  std::atomic<bool> has_warmed_keys_{false};

  /// EWMA of observed solve wall time, feeding the retry-after hint.
  std::atomic<double> avg_solve_ms_{50.0};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_tenant_quota_{0};
  std::atomic<uint64_t> rejected_rate_limited_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> solves_{0};
  std::atomic<uint64_t> warmed_{0};
  std::atomic<uint64_t> warm_hits_{0};

  std::jthread reaper_;
  std::vector<std::jthread> workers_;  ///< last member: join before the rest
};

}  // namespace qjo

#endif  // QJO_SERVE_OPTIMIZER_SERVICE_H_

#include "serve/optimizer_service.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <utility>

#include "jo/classical.h"
#include "obs/obs.h"

namespace qjo {
namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

void AppendU64(std::string* key, const char* tag, uint64_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "|%s=%llx", tag,
                static_cast<unsigned long long>(v));
  key->append(buf);
}

void AppendI64(std::string* key, const char* tag, int64_t v) {
  AppendU64(key, tag, static_cast<uint64_t>(v));
}

void AppendDouble(std::string* key, const char* tag, double v) {
  // Bit-exact, same convention as JoEncodingFingerprint: distinct doubles
  // never collide.
  AppendU64(key, tag, std::bit_cast<uint64_t>(v));
}

}  // namespace

OptimizerService::OptimizerService(const ServeOptions& options)
    : options_(options) {
  if (options_.enable_plan_cache) {
    cache_ = std::make_unique<PlanCache>(options_.cache);
  }
  const int workers = std::max(1, options_.workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { WorkerLoop(std::move(stop)); });
  }
}

OptimizerService::~OptimizerService() {
  for (auto& worker : workers_) worker.request_stop();
  // wait(lock, stop, pred) wakes on request_stop; joining here (instead of
  // relying on member destruction order) lets us fail the never-dispatched
  // requests afterwards knowing no worker will race us for them.
  for (auto& worker : workers_) worker.join();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [tenant, lane] : lanes_) {
    for (auto& pending : lane) {
      ServeResult result;
      result.status = Status::FailedPrecondition(
          "optimizer service shut down before the request was dispatched");
      pending->promise.set_value(std::move(result));
    }
  }
  lanes_.clear();
  rotation_.clear();
  tenant_inflight_.clear();
  queued_ = 0;
  drained_.notify_all();
}

StatusOr<std::future<ServeResult>> OptimizerService::Submit(
    ServeRequest request, double* retry_after_ms) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) options_.metrics->Count("serve.requests");

  const auto now = Clock::now();
  const double budget_ms = request.deadline_ms > 0.0
                               ? request.deadline_ms
                               : options_.default_deadline_ms;

  std::unique_lock<std::mutex> lock(mutex_);
  // Retry-after hint: the backlog ahead of (and including) this request,
  // paced at the observed mean solve time, spread over the workers.
  const double backlog = static_cast<double>(queued_ + running_ + 1);
  const double hint = avg_solve_ms_.load(std::memory_order_relaxed) *
                      backlog /
                      static_cast<double>(std::max<size_t>(1, workers_.size()));
  if (queued_ >= options_.queue_capacity) {
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    if (options_.metrics != nullptr) {
      options_.metrics->Count("serve.rejected.queue_full");
    }
    if (retry_after_ms != nullptr) *retry_after_ms = hint;
    return Status::ResourceExhausted("serving queue full (" +
                                     std::to_string(options_.queue_capacity) +
                                     " queued); retry after ~" +
                                     std::to_string(hint) + " ms");
  }
  if (options_.per_tenant_inflight > 0) {
    auto it = tenant_inflight_.find(request.tenant);
    if (it != tenant_inflight_.end() &&
        it->second >= options_.per_tenant_inflight) {
      rejected_tenant_quota_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      if (options_.metrics != nullptr) {
        options_.metrics->Count("serve.rejected.tenant_quota");
      }
      if (retry_after_ms != nullptr) *retry_after_ms = hint;
      return Status::ResourceExhausted(
          "tenant '" + request.tenant + "' at its in-flight quota (" +
          std::to_string(options_.per_tenant_inflight) + "); retry after ~" +
          std::to_string(hint) + " ms");
    }
  }

  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->submitted = now;
  pending->deadline_ms = budget_ms;
  pending->deadline = budget_ms > 0.0
                          ? now + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          budget_ms))
                          : Clock::time_point::max();
  std::future<ServeResult> future = pending->promise.get_future();

  const std::string& tenant = pending->request.tenant;
  auto lane = lanes_.find(tenant);
  if (lane == lanes_.end()) {
    // Invariant: rotation_ lists exactly the tenants with a lane (lanes
    // are erased the moment they drain), so a fresh lane joins the
    // round-robin here and nowhere else.
    lane = lanes_.emplace(tenant, std::deque<std::unique_ptr<Pending>>())
               .first;
    rotation_.push_back(tenant);
  }
  lane->second.push_back(std::move(pending));
  ++queued_;
  ++tenant_inflight_[tenant];
  lock.unlock();
  work_ready_.notify_one();
  return future;
}

std::unique_ptr<OptimizerService::Pending> OptimizerService::PopLocked() {
  while (!rotation_.empty()) {
    if (rotation_next_ >= rotation_.size()) rotation_next_ = 0;
    auto lane = lanes_.find(rotation_[rotation_next_]);
    if (lane == lanes_.end() || lane->second.empty()) {
      if (lane != lanes_.end()) lanes_.erase(lane);
      rotation_.erase(rotation_.begin() +
                      static_cast<ptrdiff_t>(rotation_next_));
      continue;
    }
    auto pending = std::move(lane->second.front());
    lane->second.pop_front();
    --queued_;
    if (lane->second.empty()) {
      lanes_.erase(lane);
      rotation_.erase(rotation_.begin() +
                      static_cast<ptrdiff_t>(rotation_next_));
    } else {
      ++rotation_next_;
    }
    return pending;
  }
  return nullptr;
}

void OptimizerService::WorkerLoop(std::stop_token stop) {
  while (true) {
    std::unique_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!work_ready_.wait(lock, stop, [this] { return queued_ > 0; })) {
        return;  // stop requested and queue empty
      }
      // Shutting down: leave queued requests for the destructor to fail
      // instead of dispatching new work.
      if (stop.stop_requested()) return;
      pending = PopLocked();
      if (pending == nullptr) continue;
      ++running_;
    }
    Process(*pending);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      FinishTenant(pending->request.tenant);
    }
    drained_.notify_all();
  }
}

void OptimizerService::FinishTenant(const std::string& tenant) {
  auto it = tenant_inflight_.find(tenant);
  if (it == tenant_inflight_.end()) return;
  if (--it->second == 0) tenant_inflight_.erase(it);
}

void OptimizerService::Process(Pending& pending) {
  const auto dequeued = Clock::now();
  const ServeRequest& request = pending.request;
  ServeResult result;
  result.queue_ms = MsBetween(pending.submitted, dequeued);
  if (options_.trace != nullptr) {
    options_.trace->Record("serve.queue", pending.submitted, dequeued);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->Observe("serve.queue_ms", result.queue_ms);
  }

  double remaining_ms = std::numeric_limits<double>::infinity();
  if (pending.deadline_ms > 0.0) {
    remaining_ms = MsBetween(dequeued, pending.deadline);
  }

  // Cache first: a hit costs microseconds, so even an expired request is
  // better served from the cache than degraded.
  std::string key;
  std::shared_ptr<const QjoReport> hit;
  if (cache_ != nullptr && !request.bypass_cache) {
    key = PlanKey(request.query, request.config);
    hit = cache_->Lookup(key);
  }
  if (hit != nullptr) {
    result.report = *hit;
    result.cache_hit = true;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (options_.metrics != nullptr) options_.metrics->Count("serve.cache_hit");
  } else if (remaining_ms <= options_.degrade_margin_ms) {
    // Graceful degradation: (almost) no budget left at dequeue — answer
    // with the classical fallback instead of missing the deadline or
    // failing outright.
    result.degraded = true;
    degraded_.fetch_add(1, std::memory_order_relaxed);
    if (options_.metrics != nullptr) options_.metrics->Count("serve.degraded");
    if (remaining_ms <= 0.0) {
      result.deadline_expired_in_queue = true;
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      if (options_.metrics != nullptr) {
        options_.metrics->Count("serve.expired_in_queue");
      }
    }
    const auto solve_start = Clock::now();
    result.status = DegradedSolve(request, &result.report);
    result.solve_ms = MsBetween(solve_start, Clock::now());
  } else {
    QjoConfig config = request.config;
    if (config.pool == nullptr) config.pool = options_.pool;
    if (config.trace == nullptr) config.trace = options_.trace;
    if (config.metrics == nullptr) config.metrics = options_.metrics;

    // Arm the shared monitor so deadline expiry mid-solve flips the stop
    // token and the portfolio/decomp strands wind down cooperatively. A
    // caller-supplied token is respected as-is (never overridden).
    std::atomic<bool> token{false};
    uint64_t arm_id = 0;
    bool armed = false;
    if (std::isfinite(remaining_ms) && config.stop == nullptr) {
      config.stop = &token;
      arm_id = monitor_.Arm(&token, pending.deadline);
      armed = true;
    }

    const auto solve_start = Clock::now();
    StatusOr<QjoReport> report = [&] {
      StageSpan span(options_.trace, "serve.solve");
      return OptimizeJoinOrder(request.query, config);
    }();
    if (armed) monitor_.Disarm(arm_id);
    result.solve_ms = MsBetween(solve_start, Clock::now());

    // EWMA of solve time feeding the retry-after hint. Plain load/store:
    // concurrent updates may drop each other, which only blurs a hint.
    const double prev = avg_solve_ms_.load(std::memory_order_relaxed);
    avg_solve_ms_.store(0.8 * prev + 0.2 * result.solve_ms,
                        std::memory_order_relaxed);

    if (report.ok()) {
      result.report = std::move(report).value();
      // Never cache a truncated (token-fired) result: it reflects this
      // request's deadline, not the config's full-budget answer.
      const bool truncated =
          armed && token.load(std::memory_order_relaxed);
      if (cache_ != nullptr && !request.bypass_cache && !key.empty() &&
          !truncated && result.report.found_valid) {
        cache_->Insert(key, result.report);
      }
    } else {
      result.status = report.status();
    }
    if (options_.metrics != nullptr) {
      options_.metrics->Observe("serve.solve_ms", result.solve_ms);
    }
  }

  completed_.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    options_.metrics->Count("serve.completed");
    if (cache_ != nullptr) cache_->ExportGauges(options_.metrics);
  }
  pending.promise.set_value(std::move(result));
}

Status OptimizerService::DegradedSolve(const ServeRequest& request,
                                       QjoReport* report) {
  StatusOr<JoResult> plan = OptimizeDp(request.query);
  const bool exact = plan.ok();
  if (!plan.ok() && plan.status().code() == StatusCode::kResourceExhausted) {
    plan = OptimizeGreedy(request.query);
  }
  if (!plan.ok()) return plan.status();
  report->found_valid = true;
  report->best_order = plan->order;
  report->best_cost = plan->cost;
  if (exact) {
    report->optimal_order = plan->order;
    report->optimal_cost = plan->cost;
  }
  report->portfolio.found_valid = true;
  report->portfolio.best_order = plan->order;
  report->portfolio.best_cost = plan->cost;
  report->portfolio.used_classical_fallback = true;
  report->portfolio.winner = "classical_fallback";
  return Status::Ok();
}

void OptimizerService::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

std::string OptimizerService::PlanKey(const Query& query,
                                      const QjoConfig& config) {
  JoEncodingOptions enc;
  enc.thresholds = config.thresholds;
  enc.num_thresholds = config.num_thresholds;
  enc.omega = config.omega;
  std::string key = JoEncodingFingerprint(query, enc);
  key += "|backend=";
  key += QjoBackendName(config.backend);
  AppendU64(&key, "seed", config.seed);
  AppendI64(&key, "kernel", static_cast<int64_t>(config.solver_kernel));
  AppendI64(&key, "shots", config.shots);
  AppendI64(&key, "qi", config.qaoa_iterations);
  AppendI64(&key, "qg", config.qaoa_grid);
  AppendI64(&key, "noiseless", config.noiseless ? 1 : 0);
  AppendI64(&key, "sqa_reads", config.sqa.num_reads);
  const PortfolioOptions& p = config.portfolio;
  AppendDouble(&key, "p_dl", p.deadline_ms);
  AppendI64(&key, "p_sb", p.sweep_budget);
  AppendI64(&key, "p_rpr", p.reads_per_round);
  AppendI64(&key, "p_spr", p.sweeps_per_round);
  const uint64_t strands = (p.enable_exact ? 1u : 0u) |
                           (p.enable_sa ? 2u : 0u) |
                           (p.enable_tabu ? 4u : 0u) |
                           (p.enable_sqa ? 8u : 0u) |
                           (p.enable_qaoa ? 16u : 0u) |
                           (p.enable_decomp ? 32u : 0u);
  AppendU64(&key, "p_strands", strands);
  AppendI64(&key, "p_mev", p.max_exact_variables);
  AppendI64(&key, "p_mqv", p.max_qaoa_variables);
  AppendI64(&key, "p_qs", p.qaoa_shots);
  AppendI64(&key, "p_qi", p.qaoa_iterations);
  AppendI64(&key, "p_mdr", p.min_decomp_relations);
  AppendDouble(&key, "p_lb", p.lower_bound);
  return key;
}

OptimizerService::Stats OptimizerService::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_tenant_quota =
      rejected_tenant_quota_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  return s;
}

size_t OptimizerService::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

}  // namespace qjo

#include "serve/optimizer_service.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string_view>
#include <utility>

#include "jo/classical.h"
#include "obs/obs.h"

namespace qjo {
namespace {

using Clock = std::chrono::steady_clock;

constexpr char kWarmupHeader[] = "qjo-plan-cache-keys v1";

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

void AppendU64(std::string* key, const char* tag, uint64_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "|%s=%llx", tag,
                static_cast<unsigned long long>(v));
  key->append(buf);
}

void AppendI64(std::string* key, const char* tag, int64_t v) {
  AppendU64(key, tag, static_cast<uint64_t>(v));
}

void AppendDouble(std::string* key, const char* tag, double v) {
  // Bit-exact, same convention as JoEncodingFingerprint: distinct doubles
  // never collide.
  AppendU64(key, tag, std::bit_cast<uint64_t>(v));
}

}  // namespace

double RetryAfterHintMs(double avg_solve_ms, size_t backlog, size_t workers,
                        double max_retry_after_ms) {
  constexpr double kDefaultAvgMs = 50.0;
  if (!std::isfinite(avg_solve_ms) || avg_solve_ms <= 0.0) {
    avg_solve_ms = kDefaultAvgMs;
  }
  const double hint = avg_solve_ms * static_cast<double>(backlog) /
                      static_cast<double>(std::max<size_t>(1, workers));
  if (max_retry_after_ms > 0.0 && hint > max_retry_after_ms) {
    return max_retry_after_ms;
  }
  return std::max(hint, 0.0);
}

OptimizerService::OptimizerService(const ServeOptions& options)
    : options_(options) {
  if (options_.enable_plan_cache) {
    cache_ = std::make_unique<PlanCache>(options_.cache);
  }
  if (options_.share_build_cache) {
    build_cache_ = std::make_unique<QuboBuildCache>(
        std::max<size_t>(1, options_.build_cache_entries));
  }
  if (!options_.warmup_file.empty()) {
    pending_warmup_keys_ = LoadWarmupKeys(options_.warmup_file);
    if (options_.metrics != nullptr && !pending_warmup_keys_.empty()) {
      options_.metrics->Count("serve.warmup.keys_loaded",
                              pending_warmup_keys_.size());
    }
  }
  if (!options_.strand_records_file.empty()) {
    // A missing or unreadable file is a cold start, not an error: the
    // store fills as races complete and is persisted on Drain/shutdown.
    const Status loaded =
        strand_records_.LoadRecords(options_.strand_records_file);
    if (loaded.ok() && options_.metrics != nullptr) {
      options_.metrics->Count("serve.adaptive.buckets_loaded",
                              strand_records_.NumBuckets());
    }
  }
  reaper_ = std::jthread(
      [this](std::stop_token stop) { ReaperLoop(std::move(stop)); });
  const int workers = std::max(1, options_.workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { WorkerLoop(std::move(stop)); });
  }
}

OptimizerService::~OptimizerService() {
  for (auto& worker : workers_) worker.request_stop();
  reaper_.request_stop();
  // wait(lock, stop, pred) wakes on request_stop; joining here (instead of
  // relying on member destruction order) lets us fail the never-dispatched
  // requests afterwards knowing no worker will race us for them.
  for (auto& worker : workers_) worker.join();
  reaper_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto fail = [](Pending& pending) {
      ServeResult result;
      result.status = Status::FailedPrecondition(
          "optimizer service shut down before the request was dispatched");
      pending.promise.set_value(std::move(result));
    };
    for (auto& [tenant, lane] : lanes_) {
      for (auto& pending : lane) fail(*pending);
    }
    // Followers whose leader never got dispatched (it sits in a lane
    // above) or whose leader's epilogue raced shutdown are still parked
    // here; they hold no queue slot, so the lane sweep missed them.
    for (auto& [key, entry] : inflight_) {
      for (auto& pending : entry->followers) fail(*pending);
    }
    lanes_.clear();
    rotation_.clear();
    inflight_.clear();
    tenant_inflight_.clear();
    queued_ = 0;
    coalesced_waiting_ = 0;
  }
  drained_.notify_all();
  if (!options_.warmup_file.empty()) SaveWarmupKeys(options_.warmup_file);
  if (!options_.strand_records_file.empty()) {
    (void)strand_records_.SaveRecords(options_.strand_records_file);
  }
}

StatusOr<std::future<ServeResult>> OptimizerService::Submit(
    ServeRequest request, double* retry_after_ms) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) options_.metrics->Count("serve.requests");

  const auto now = Clock::now();
  const double budget_ms = request.deadline_ms > 0.0
                               ? request.deadline_ms
                               : options_.default_deadline_ms;
  const bool coalescible = options_.enable_coalescing && !request.bypass_cache;
  // The plan key doubles as the single-flight identity, so compute it
  // whenever either consumer (cache or coalescer) wants it — outside the
  // lock; fingerprinting a large query under the admission mutex would
  // serialise every submit behind it.
  std::string key;
  if (coalescible || (cache_ != nullptr && !request.bypass_cache)) {
    key = PlanKey(request.query, request.config);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  // Retry-after hint: the backlog ahead of (and including) this request,
  // paced at the observed mean solve time, spread over the workers.
  const double hint =
      RetryAfterHintMs(avg_solve_ms_.load(std::memory_order_relaxed),
                       queued_ + running_ + 1, workers_.size(),
                       options_.max_retry_after_ms);
  const auto inflight =
      coalescible ? inflight_.find(key) : inflight_.end();
  const bool follower = coalescible && inflight != inflight_.end();
  const double cost = follower ? options_.follower_quota_weight : 1.0;

  // Rate limit first: the bucket polices how often a tenant may knock at
  // all, before shared resources (queue slots, quotas) are considered.
  if (options_.tenant_rate_per_sec > 0.0) {
    auto bucket = buckets_.find(request.tenant);
    if (bucket == buckets_.end()) {
      const double burst = options_.tenant_burst > 0.0
                               ? options_.tenant_burst
                               : std::max(1.0, options_.tenant_rate_per_sec);
      bucket = buckets_
                   .emplace(request.tenant,
                            TokenBucket(options_.tenant_rate_per_sec, burst,
                                        now))
                   .first;
    }
    double refill_ms = 0.0;
    if (!bucket->second.TryAcquireAt(now, cost, &refill_ms)) {
      rejected_rate_limited_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      if (options_.metrics != nullptr) {
        options_.metrics->Count("serve.rejected.rate_limited");
      }
      // The bucket rejected, so the honest hint is its refill time — the
      // queue-depth estimate says when a *worker* frees up, which is
      // irrelevant while the tenant is over rate.
      const double bucket_hint =
          options_.max_retry_after_ms > 0.0
              ? std::min(refill_ms, options_.max_retry_after_ms)
              : refill_ms;
      if (retry_after_ms != nullptr) *retry_after_ms = bucket_hint;
      return Status::ResourceExhausted(
          "tenant '" + request.tenant + "' over its request rate (" +
          std::to_string(options_.tenant_rate_per_sec) +
          "/s); retry after ~" + std::to_string(bucket_hint) + " ms");
    }
  }
  // A follower takes no queue slot, so the capacity check applies only to
  // requests that will actually occupy one.
  if (!follower && queued_ >= options_.queue_capacity) {
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    if (options_.metrics != nullptr) {
      options_.metrics->Count("serve.rejected.queue_full");
    }
    if (retry_after_ms != nullptr) *retry_after_ms = hint;
    return Status::ResourceExhausted("serving queue full (" +
                                     std::to_string(options_.queue_capacity) +
                                     " queued); retry after ~" +
                                     std::to_string(hint) + " ms");
  }
  if (options_.per_tenant_inflight > 0) {
    auto it = tenant_inflight_.find(request.tenant);
    const double current = it != tenant_inflight_.end() ? it->second : 0.0;
    if (current + cost >
        static_cast<double>(options_.per_tenant_inflight) + 1e-9) {
      rejected_tenant_quota_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      if (options_.metrics != nullptr) {
        options_.metrics->Count("serve.rejected.tenant_quota");
      }
      if (retry_after_ms != nullptr) *retry_after_ms = hint;
      return Status::ResourceExhausted(
          "tenant '" + request.tenant + "' at its in-flight quota (" +
          std::to_string(options_.per_tenant_inflight) + "); retry after ~" +
          std::to_string(hint) + " ms");
    }
  }

  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->submitted = now;
  pending->deadline_ms = budget_ms;
  pending->deadline = budget_ms > 0.0
                          ? now + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          budget_ms))
                          : Clock::time_point::max();
  pending->plan_key = std::move(key);
  pending->quota_cost = cost;
  std::future<ServeResult> future = pending->promise.get_future();
  tenant_inflight_[pending->request.tenant] += cost;

  if (follower) {
    // Single flight: attach to the in-flight leader instead of queueing a
    // second solve for the same plan key. The leader's epilogue resolves
    // (or, if its answer isn't shareable, re-dispatches) us; the reaper
    // covers our own deadline meanwhile.
    inflight->second->followers.push_back(std::move(pending));
    ++coalesced_waiting_;
    ++reaper_generation_;
    lock.unlock();
    reaper_wakeup_.notify_all();
    return future;
  }
  if (coalescible) {
    // Register the single-flight entry at admission (not at dispatch), so
    // a duplicate arriving while the leader still queues coalesces too.
    pending->is_leader = true;
    inflight_.emplace(pending->plan_key, std::make_unique<InflightSolve>());
  }
  EnqueueLocked(std::move(pending), /*front=*/false);
  lock.unlock();
  work_ready_.notify_one();
  return future;
}

void OptimizerService::EnqueueLocked(std::unique_ptr<Pending> pending,
                                     bool front) {
  const std::string& tenant = pending->request.tenant;
  auto lane = lanes_.find(tenant);
  if (lane == lanes_.end()) {
    // Invariant: rotation_ lists exactly the tenants with a lane (lanes
    // are erased the moment they drain), so a fresh lane joins the
    // round-robin here and nowhere else.
    lane = lanes_.emplace(tenant, std::deque<std::unique_ptr<Pending>>())
               .first;
    rotation_.push_back(tenant);
  }
  if (front) {
    lane->second.push_front(std::move(pending));
  } else {
    lane->second.push_back(std::move(pending));
  }
  ++queued_;
}

std::unique_ptr<OptimizerService::Pending> OptimizerService::PopLocked() {
  while (!rotation_.empty()) {
    if (rotation_next_ >= rotation_.size()) rotation_next_ = 0;
    auto lane = lanes_.find(rotation_[rotation_next_]);
    if (lane == lanes_.end() || lane->second.empty()) {
      if (lane != lanes_.end()) lanes_.erase(lane);
      rotation_.erase(rotation_.begin() +
                      static_cast<ptrdiff_t>(rotation_next_));
      continue;
    }
    auto pending = std::move(lane->second.front());
    lane->second.pop_front();
    --queued_;
    if (lane->second.empty()) {
      lanes_.erase(lane);
      rotation_.erase(rotation_.begin() +
                      static_cast<ptrdiff_t>(rotation_next_));
    } else {
      ++rotation_next_;
    }
    return pending;
  }
  return nullptr;
}

void OptimizerService::WorkerLoop(std::stop_token stop) {
  while (true) {
    std::unique_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!work_ready_.wait(lock, stop, [this] { return queued_ > 0; })) {
        return;  // stop requested and queue empty
      }
      // Shutting down: leave queued requests for the destructor to fail
      // instead of dispatching new work.
      if (stop.stop_requested()) return;
      pending = PopLocked();
      if (pending == nullptr) continue;
      ++running_;
    }
    Process(*pending);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      FinishTenant(pending->request.tenant, pending->quota_cost);
    }
    drained_.notify_all();
  }
}

void OptimizerService::ReaperLoop(std::stop_token stop) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop.stop_requested()) {
    const auto now = Clock::now();
    auto next = Clock::time_point::max();
    std::vector<std::unique_ptr<Pending>> expired;
    for (auto& [key, entry] : inflight_) {
      auto& followers = entry->followers;
      for (size_t i = 0; i < followers.size();) {
        if (followers[i]->deadline <= now) {
          expired.push_back(std::move(followers[i]));
          followers[i] = std::move(followers.back());
          followers.pop_back();
        } else {
          next = std::min(next, followers[i]->deadline);
          ++i;
        }
      }
    }
    if (!expired.empty()) {
      // Solve outside the lock: the degraded fallback is classical DP and
      // can take milliseconds, which must not stall admission.
      lock.unlock();
      for (auto& pending : expired) {
        ServeResult result;
        result.degraded = true;
        result.deadline_expired_in_queue = true;
        degraded_.fetch_add(1, std::memory_order_relaxed);
        expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics != nullptr) {
          options_.metrics->Count("serve.degraded");
          options_.metrics->Count("serve.expired_in_queue");
        }
        const auto solve_start = Clock::now();
        result.queue_ms = MsBetween(pending->submitted, solve_start);
        result.status = DegradedSolve(pending->request, &result.report);
        result.solve_ms = MsBetween(solve_start, Clock::now());
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics != nullptr) options_.metrics->Count("serve.completed");
        pending->promise.set_value(std::move(result));
      }
      lock.lock();
      // Release accounting only after the promises resolved, so Drain()
      // cannot return while a follower's future is still unset.
      for (auto& pending : expired) {
        --coalesced_waiting_;
        FinishTenant(pending->request.tenant, pending->quota_cost);
      }
      drained_.notify_all();
      continue;  // re-scan: attaches may have happened while unlocked
    }
    const uint64_t generation = reaper_generation_;
    const auto rearmed = [this, generation] {
      return reaper_generation_ != generation;
    };
    if (next == Clock::time_point::max()) {
      reaper_wakeup_.wait(lock, stop, rearmed);
    } else {
      reaper_wakeup_.wait_until(lock, stop, next, rearmed);
    }
  }
}

void OptimizerService::FinishTenant(const std::string& tenant, double cost) {
  auto it = tenant_inflight_.find(tenant);
  if (it == tenant_inflight_.end()) return;
  it->second -= cost;
  if (it->second <= 1e-9) tenant_inflight_.erase(it);
}

void OptimizerService::Process(Pending& pending) {
  const auto dequeued = Clock::now();
  const ServeRequest& request = pending.request;
  ServeResult result;
  result.queue_ms = MsBetween(pending.submitted, dequeued);
  if (options_.trace != nullptr) {
    options_.trace->Record("serve.queue", pending.submitted, dequeued);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->Observe("serve.queue_ms", result.queue_ms);
  }

  double remaining_ms = std::numeric_limits<double>::infinity();
  if (pending.deadline_ms > 0.0) {
    remaining_ms = MsBetween(dequeued, pending.deadline);
  }

  // Cache first: a hit costs microseconds, so even an expired request is
  // better served from the cache than degraded.
  const std::string& key = pending.plan_key;
  std::shared_ptr<const QjoReport> hit;
  const bool use_cache =
      cache_ != nullptr && !request.bypass_cache && !key.empty();
  if (use_cache) hit = cache_->Lookup(key);
  bool truncated = false;
  if (hit != nullptr) {
    result.report = *hit;
    result.cache_hit = true;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (options_.metrics != nullptr) options_.metrics->Count("serve.cache_hit");
    if (has_warmed_keys_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (warmed_keys_.count(key) != 0) {
        warm_hits_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics != nullptr) {
          options_.metrics->Count("serve.warmup.hits");
        }
      }
    }
  } else if (remaining_ms <= options_.degrade_margin_ms) {
    // Graceful degradation: (almost) no budget left at dequeue — answer
    // with the classical fallback instead of missing the deadline or
    // failing outright.
    result.degraded = true;
    degraded_.fetch_add(1, std::memory_order_relaxed);
    if (options_.metrics != nullptr) options_.metrics->Count("serve.degraded");
    if (remaining_ms <= 0.0) {
      result.deadline_expired_in_queue = true;
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      if (options_.metrics != nullptr) {
        options_.metrics->Count("serve.expired_in_queue");
      }
    }
    const auto solve_start = Clock::now();
    result.status = DegradedSolve(request, &result.report);
    result.solve_ms = MsBetween(solve_start, Clock::now());
  } else {
    QjoConfig config = request.config;
    if (config.run.pool == nullptr) config.run.pool = options_.pool;
    if (config.run.trace == nullptr) config.run.trace = options_.trace;
    if (config.run.metrics == nullptr) config.run.metrics = options_.metrics;
    // Adaptive strand selection: the service-owned record store backs
    // every request unless the caller brought their own (caller wins).
    if (options_.adaptive) config.adaptive = true;
    if (config.strand_records == nullptr &&
        (options_.adaptive || !options_.strand_records_file.empty())) {
      config.strand_records = &strand_records_;
    }
    // Shared build cache: even when the plan cache misses, the encode
    // stage reuses any prior request's CSR build for this fingerprint. A
    // request carrying its own cache keeps it (caller wins).
    if (config.qubo_cache == nullptr && build_cache_ != nullptr) {
      config.qubo_cache = build_cache_.get();
    }

    // Arm the shared monitor so deadline expiry mid-solve flips the stop
    // token and the portfolio/decomp strands wind down cooperatively. A
    // caller-supplied token is respected as-is (never overridden).
    std::atomic<bool> token{false};
    uint64_t arm_id = 0;
    bool armed = false;
    if (std::isfinite(remaining_ms) && config.run.stop == nullptr) {
      config.run.stop = &token;
      arm_id = monitor_.Arm(&token, pending.deadline);
      armed = true;
    }

    solves_.fetch_add(1, std::memory_order_relaxed);
    const auto solve_start = Clock::now();
    StatusOr<QjoReport> report = [&] {
      StageSpan span(options_.trace, "serve.solve");
      return OptimizeJoinOrder(request.query, config);
    }();
    if (armed) monitor_.Disarm(arm_id);
    result.solve_ms = MsBetween(solve_start, Clock::now());

    // EWMA of solve time feeding the retry-after hint. Plain load/store:
    // concurrent updates may drop each other, which only blurs a hint.
    const double prev = avg_solve_ms_.load(std::memory_order_relaxed);
    avg_solve_ms_.store(0.8 * prev + 0.2 * result.solve_ms,
                        std::memory_order_relaxed);

    if (report.ok()) {
      result.report = std::move(report).value();
      // Never cache a truncated (token-fired) result: it reflects this
      // request's deadline, not the config's full-budget answer.
      truncated = armed && token.load(std::memory_order_relaxed);
      if (use_cache && !truncated && result.report.found_valid) {
        cache_->Insert(key, result.report);
      }
    } else {
      result.status = report.status();
    }
    if (options_.metrics != nullptr) {
      options_.metrics->Observe("serve.solve_ms", result.solve_ms);
    }
  }

  completed_.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    options_.metrics->Count("serve.completed");
    if (cache_ != nullptr) cache_->ExportGauges(options_.metrics);
  }
  if (pending.is_leader) {
    // Shareable = the full-fidelity answer any follower would have
    // computed itself: not degraded, not deadline-truncated, valid (a
    // cache hit qualifies — cached entries met the same bar on insert).
    const bool shareable = result.status.ok() && !result.degraded &&
                           !truncated && result.report.found_valid;
    FinishInflight(pending, result, shareable);
  }
  pending.promise.set_value(std::move(result));
}

void OptimizerService::FinishInflight(Pending& leader,
                                      const ServeResult& result,
                                      bool shareable) {
  std::vector<std::unique_ptr<Pending>> followers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(leader.plan_key);
    // The entry is registered at the leader's admission and removed only
    // here (or at shutdown), so it must still be present.
    if (it != inflight_.end()) {
      followers = std::move(it->second->followers);
      inflight_.erase(it);
    }
  }
  if (followers.empty()) return;
  const auto now = Clock::now();
  if (shareable) {
    for (auto& follower : followers) {
      ServeResult copy;
      copy.report = result.report;
      copy.cache_hit = result.cache_hit;
      copy.coalesced = true;
      copy.queue_ms = MsBetween(follower->submitted, now);
      copy.solve_ms = 0.0;
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (options_.metrics != nullptr) {
        options_.metrics->Count("serve.coalesced");
        options_.metrics->Count("serve.completed");
      }
      follower->promise.set_value(std::move(copy));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    // Accounting drops only after every promise resolved (Drain must not
    // return while a follower's future is unset).
    for (auto& follower : followers) {
      --coalesced_waiting_;
      FinishTenant(follower->request.tenant, follower->quota_cost);
    }
  } else {
    // The leader's answer is degraded/truncated/failed — private to its
    // own deadline or fate, not something to fan out. Re-dispatch the
    // followers as ordinary requests; push_front keeps their effective
    // queueing from restarting at the back. They stay non-leaders (no new
    // single-flight entry), so two of them can't re-coalesce into a
    // second stampede of waiting.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& follower : followers) {
      --coalesced_waiting_;
      EnqueueLocked(std::move(follower), /*front=*/true);
    }
    work_ready_.notify_all();
  }
  drained_.notify_all();
}

Status OptimizerService::DegradedSolve(const ServeRequest& request,
                                       QjoReport* report) {
  StatusOr<JoResult> plan = OptimizeDp(request.query);
  const bool exact = plan.ok();
  if (!plan.ok() && plan.status().code() == StatusCode::kResourceExhausted) {
    plan = OptimizeGreedy(request.query);
  }
  if (!plan.ok()) return plan.status();
  report->found_valid = true;
  report->best_order = plan->order;
  report->best_cost = plan->cost;
  if (exact) {
    report->optimal_order = plan->order;
    report->optimal_cost = plan->cost;
  }
  report->portfolio.found_valid = true;
  report->portfolio.best_order = plan->order;
  report->portfolio.best_cost = plan->cost;
  report->portfolio.used_classical_fallback = true;
  report->portfolio.winner = "classical_fallback";
  return Status::Ok();
}

void OptimizerService::Drain() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] {
      return queued_ == 0 && running_ == 0 && coalesced_waiting_ == 0;
    });
  }
  if (!options_.warmup_file.empty()) SaveWarmupKeys(options_.warmup_file);
  if (!options_.strand_records_file.empty()) {
    (void)strand_records_.SaveRecords(options_.strand_records_file);
  }
}

size_t OptimizerService::WarmUp(const std::vector<std::string>& keys,
                                std::span<const ServeRequest> workload) {
  if (cache_ == nullptr || keys.empty()) return 0;
  StageSpan span(options_.trace, "serve.warmup");
  const std::unordered_set<std::string_view> wanted(keys.begin(), keys.end());
  std::unordered_set<std::string> done;
  size_t warmed = 0;
  for (const ServeRequest& request : workload) {
    if (request.bypass_cache) continue;
    std::string key = PlanKey(request.query, request.config);
    if (wanted.find(key) == wanted.end() || done.count(key) != 0) continue;
    done.insert(key);
    QjoConfig config = request.config;
    if (config.run.pool == nullptr) config.run.pool = options_.pool;
    if (config.run.trace == nullptr) config.run.trace = options_.trace;
    if (config.run.metrics == nullptr) config.run.metrics = options_.metrics;
    if (config.qubo_cache == nullptr && build_cache_ != nullptr) {
      config.qubo_cache = build_cache_.get();
    }
    StatusOr<QjoReport> report = OptimizeJoinOrder(request.query, config);
    if (!report.ok() || !report->found_valid) continue;
    cache_->Insert(key, std::move(report).value());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      warmed_keys_.insert(std::move(key));
    }
    has_warmed_keys_.store(true, std::memory_order_relaxed);
    warmed_.fetch_add(1, std::memory_order_relaxed);
    if (options_.metrics != nullptr) {
      options_.metrics->Count("serve.warmup.warmed");
    }
    ++warmed;
  }
  return warmed;
}

size_t OptimizerService::WarmUp(std::span<const ServeRequest> workload) {
  return WarmUp(pending_warmup_keys_, workload);
}

bool OptimizerService::SaveWarmupKeys(const std::string& path) const {
  if (cache_ == nullptr) return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << kWarmupHeader << "\n";
  for (const std::string& key : cache_->Keys()) out << key << "\n";
  out.flush();
  return static_cast<bool>(out);
}

std::vector<std::string> OptimizerService::LoadWarmupKeys(
    const std::string& path) {
  std::vector<std::string> keys;
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line) || line != kWarmupHeader) return keys;
  while (std::getline(in, line)) {
    if (!line.empty()) keys.push_back(line);
  }
  return keys;
}

std::string OptimizerService::PlanKey(const Query& query,
                                      const QjoConfig& config) {
  JoEncodingOptions enc;
  enc.thresholds = config.thresholds;
  enc.num_thresholds = config.num_thresholds;
  enc.omega = config.omega;
  std::string key = JoEncodingFingerprint(query, enc);
  key += "|backend=";
  key += QjoBackendName(config.backend);
  AppendU64(&key, "seed", config.seed);
  AppendI64(&key, "kernel", static_cast<int64_t>(config.solver_kernel));
  AppendI64(&key, "shots", config.shots);
  AppendI64(&key, "qi", config.qaoa_iterations);
  AppendI64(&key, "qg", config.qaoa_grid);
  AppendI64(&key, "noiseless", config.noiseless ? 1 : 0);
  AppendI64(&key, "sqa_reads", config.sqa.num_reads);
  // Adaptive runs are keyed separately from fixed-order runs: the learned
  // budgets change which strand wins, so the two must not share entries.
  AppendI64(&key, "adaptive",
            (config.adaptive || config.portfolio.adaptive.enabled) ? 1 : 0);
  const PortfolioOptions& p = config.portfolio;
  AppendDouble(&key, "p_dl", p.run.deadline_ms);
  AppendI64(&key, "p_sb", p.sweep_budget);
  AppendI64(&key, "p_rpr", p.reads_per_round);
  AppendI64(&key, "p_spr", p.sweeps_per_round);
  const uint64_t strands = (p.enable_exact ? 1u : 0u) |
                           (p.enable_sa ? 2u : 0u) |
                           (p.enable_tabu ? 4u : 0u) |
                           (p.enable_sqa ? 8u : 0u) |
                           (p.enable_qaoa ? 16u : 0u) |
                           (p.enable_decomp ? 32u : 0u);
  AppendU64(&key, "p_strands", strands);
  AppendI64(&key, "p_mev", p.max_exact_variables);
  AppendI64(&key, "p_mqv", p.max_qaoa_variables);
  AppendI64(&key, "p_qs", p.qaoa_shots);
  AppendI64(&key, "p_qi", p.qaoa_iterations);
  AppendI64(&key, "p_mdr", p.min_decomp_relations);
  AppendDouble(&key, "p_lb", p.lower_bound);
  return key;
}

OptimizerService::Stats OptimizerService::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_tenant_quota =
      rejected_tenant_quota_.load(std::memory_order_relaxed);
  s.rejected_rate_limited =
      rejected_rate_limited_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.solves = solves_.load(std::memory_order_relaxed);
  s.warmed = warmed_.load(std::memory_order_relaxed);
  s.warm_hits = warm_hits_.load(std::memory_order_relaxed);
  return s;
}

size_t OptimizerService::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

size_t OptimizerService::coalesced_waiting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coalesced_waiting_;
}

}  // namespace qjo

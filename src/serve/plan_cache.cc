#include "serve/plan_cache.h"

#include <algorithm>
#include <functional>

#include "obs/obs.h"

namespace qjo {
namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

PlanCache::PlanCache(const PlanCacheOptions& options)
    : capacity_per_shard_(std::max<size_t>(1, options.capacity_per_shard)),
      ttl_ms_(options.ttl_ms) {
  const size_t shards =
      RoundUpPow2(static_cast<size_t>(std::max(1, options.num_shards)));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(std::string_view key) {
  const size_t h = std::hash<std::string_view>{}(key);
  return *shards_[h & (shards_.size() - 1)];
}

bool PlanCache::Expired(const Entry& entry, Clock::time_point now) const {
  if (ttl_ms_ <= 0.0) return false;
  const double age_ms =
      std::chrono::duration<double, std::milli>(now - entry.inserted).count();
  return age_ms > ttl_ms_;
}

std::shared_ptr<const QjoReport> PlanCache::Lookup(std::string_view key) {
  return LookupAt(key, Clock::now());
}

std::shared_ptr<const QjoReport> PlanCache::LookupAt(std::string_view key,
                                                     Clock::time_point now) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (Expired(*it->second, now)) {
    shard.lru.erase(it->second);
    shard.entries.erase(it);
    ttl_expirations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Refresh recency: move the hit to the front of the LRU list. Splice
  // keeps the node (and therefore the string the map's key views) alive.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return shard.lru.front().report;
}

void PlanCache::Insert(std::string_view key, QjoReport report) {
  InsertAt(key, std::move(report), Clock::now());
}

void PlanCache::InsertAt(std::string_view key, QjoReport report,
                         Clock::time_point now) {
  auto value = std::make_shared<const QjoReport>(std::move(report));
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // Replace in place and refresh both recency and the TTL clock.
    it->second->report = std::move(value);
    it->second->inserted = now;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= capacity_per_shard_) {
    // Sweep expired entries first so TTL victims are never miscounted as
    // LRU evictions.
    for (auto node = shard.lru.begin(); node != shard.lru.end();) {
      if (Expired(*node, now)) {
        shard.entries.erase(std::string_view(node->key));
        node = shard.lru.erase(node);
        ttl_expirations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++node;
      }
    }
  }
  while (shard.lru.size() >= capacity_per_shard_) {
    shard.entries.erase(std::string_view(shard.lru.back().key));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{std::string(key), std::move(value), now});
  shard.entries.emplace(std::string_view(shard.lru.front().key),
                        shard.lru.begin());
}

PlanCache::Stats PlanCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.ttl_expirations = ttl_expirations_.load(std::memory_order_relaxed);
  return s;
}

void PlanCache::ExportGauges(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  const Stats s = stats();
  metrics->GaugeMax("serve.cache.hits", static_cast<double>(s.hits));
  metrics->GaugeMax("serve.cache.misses", static_cast<double>(s.misses));
  metrics->GaugeMax("serve.cache.evictions", static_cast<double>(s.evictions));
  metrics->GaugeMax("serve.cache.ttl_expirations",
                    static_cast<double>(s.ttl_expirations));
}

std::vector<std::string> PlanCache::Keys() const {
  return KeysAt(Clock::now());
}

std::vector<std::string> PlanCache::KeysAt(Clock::time_point now) const {
  std::vector<std::string> keys;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const Entry& entry : shard->lru) {
      if (!Expired(entry, now)) keys.push_back(entry.key);
    }
  }
  return keys;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace qjo

#include "serve/token_bucket.h"

#include <algorithm>

namespace qjo {
namespace {

constexpr double kMinRate = 1e-9;  ///< tokens/sec; avoids divide-by-zero

double SecondsBetween(TokenBucket::Clock::time_point from,
                      TokenBucket::Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

TokenBucket::TokenBucket(double rate_per_sec, double burst,
                         Clock::time_point start)
    : rate_per_sec_(std::max(rate_per_sec, kMinRate)),
      burst_(std::max(burst, kMinRate)),
      tokens_(burst_),
      last_refill_(start) {}

void TokenBucket::RefillTo(Clock::time_point now) {
  if (now <= last_refill_) return;  // steady_clock, but stay defensive
  tokens_ = std::min(burst_,
                     tokens_ + rate_per_sec_ * SecondsBetween(last_refill_, now));
  last_refill_ = now;
}

bool TokenBucket::TryAcquireAt(Clock::time_point now, double cost,
                               double* retry_after_ms) {
  RefillTo(now);
  if (tokens_ >= cost) {
    tokens_ -= cost;
    return true;
  }
  if (retry_after_ms != nullptr) {
    // Time until the deficit accrues at the refill rate. A cost above the
    // burst ceiling can never succeed; report the full-cost refill time
    // anyway so the caller sees a finite (if hopeless) number.
    *retry_after_ms = 1000.0 * (cost - tokens_) / rate_per_sec_;
  }
  return false;
}

double TokenBucket::TokensAt(Clock::time_point now) const {
  if (now <= last_refill_) return tokens_;
  return std::min(burst_,
                  tokens_ + rate_per_sec_ * SecondsBetween(last_refill_, now));
}

}  // namespace qjo

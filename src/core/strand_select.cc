#include "core/strand_select.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace qjo {

namespace {

constexpr char kRecordsHeader[] = "qjo-strand-records v1";

/// Power-of-two range label: 1, 2-3, 4-7, 8-15, ... Deterministic and
/// stable under small instance perturbations, so buckets aggregate.
std::string PowerRange(int value) {
  if (value <= 1) return "1";
  int lo = 2;
  while (lo * 2 <= value) lo *= 2;
  return std::to_string(lo) + "-" + std::to_string(2 * lo - 1);
}

/// %.17g survives a text round-trip bit-exactly for every finite double,
/// which is what makes Serialize -> Deserialize -> Serialize byte-stable.
std::string FormatExact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

QueryFeatures ExtractQueryFeatures(const Query& query, int qubo_variables) {
  QueryFeatures f;
  const int n = query.num_relations();
  const int m = query.num_predicates();
  f.relations = n;
  f.qubo_variables = qubo_variables;
  const double pairs = n >= 2 ? 0.5 * n * (n - 1) : 1.0;
  f.predicate_density = static_cast<double>(m) / pairs;

  // Degree profile of the join graph (parallel predicates between the
  // same pair count once — the shape, not the multiplicity, is what
  // separates the paper's chain/star/cycle/clique workloads).
  std::vector<std::vector<bool>> seen(n, std::vector<bool>(n, false));
  std::vector<int> degree(n, 0);
  int edges = 0;
  for (const Predicate& p : query.predicates()) {
    if (p.left < 0 || p.left >= n || p.right < 0 || p.right >= n) continue;
    if (p.left == p.right || seen[p.left][p.right]) continue;
    seen[p.left][p.right] = seen[p.right][p.left] = true;
    ++degree[p.left];
    ++degree[p.right];
    ++edges;
  }
  int deg1 = 0, deg2 = 0, max_degree = 0;
  for (int d : degree) {
    if (d == 1) ++deg1;
    if (d == 2) ++deg2;
    max_degree = std::max(max_degree, d);
  }
  if (n < 3) {
    f.graph_class = "chain";
  } else if (edges == n * (n - 1) / 2) {
    f.graph_class = "clique";
  } else if (edges == n - 1 && max_degree == n - 1) {
    f.graph_class = "star";
  } else if (edges == n - 1 && deg1 == 2 && deg2 == n - 2) {
    f.graph_class = "chain";
  } else if (edges == n && deg2 == n) {
    f.graph_class = "cycle";
  } else {
    f.graph_class = f.predicate_density < 0.5 ? "sparse" : "dense";
  }
  return f;
}

std::string FeatureBucketKey(const QueryFeatures& features) {
  // Density quartile d0..d3 (clique saturates at d3).
  int quartile = static_cast<int>(features.predicate_density * 4.0);
  quartile = std::clamp(quartile, 0, 3);
  return "r" + PowerRange(features.relations) + "|" + features.graph_class +
         "|d" + std::to_string(quartile) + "|q" +
         PowerRange(features.qubo_variables);
}

std::string FallbackBucketKey(int qubo_variables) {
  return "q" + PowerRange(qubo_variables);
}

void RunRecordStore::Record(const std::string& bucket,
                            const std::vector<StrandOutcome>& strands) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++races_[bucket];
  std::map<std::string, StrandRecord>& per_strand = records_[bucket];
  for (const StrandOutcome& outcome : strands) {
    if (!outcome.eligible) continue;
    StrandRecord& record = per_strand[outcome.name];
    ++record.trials;
    if (outcome.won) ++record.wins;
    if (outcome.feasible) {
      ++record.feasible;
      record.time_to_incumbent_ms += outcome.time_to_incumbent_ms;
      record.sweeps_to_incumbent +=
          static_cast<double>(outcome.sweeps_to_incumbent);
    }
  }
}

StrandRecord RunRecordStore::Get(const std::string& bucket,
                                 const std::string& strand) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto bucket_it = records_.find(bucket);
  if (bucket_it == records_.end()) return {};
  auto strand_it = bucket_it->second.find(strand);
  if (strand_it == bucket_it->second.end()) return {};
  return strand_it->second;
}

uint64_t RunRecordStore::BucketTrials(const std::string& bucket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = races_.find(bucket);
  return it == races_.end() ? 0 : it->second;
}

std::vector<std::string> RunRecordStore::Buckets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> buckets;
  buckets.reserve(races_.size());
  for (const auto& [bucket, unused] : races_) buckets.push_back(bucket);
  return buckets;
}

size_t RunRecordStore::NumBuckets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return races_.size();
}

std::string RunRecordStore::Serialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << kRecordsHeader << "\n";
  for (const auto& [bucket, races] : races_) {
    os << bucket << " " << races << "\n";
    auto bucket_it = records_.find(bucket);
    if (bucket_it == records_.end()) continue;
    for (const auto& [strand, r] : bucket_it->second) {
      os << bucket << " " << strand << " " << r.trials << " " << r.wins << " "
         << r.feasible << " " << FormatExact(r.time_to_incumbent_ms) << " "
         << FormatExact(r.sweeps_to_incumbent) << "\n";
    }
  }
  return os.str();
}

Status RunRecordStore::Deserialize(const std::string& text) {
  std::map<std::string, uint64_t> races;
  std::map<std::string, std::map<std::string, StrandRecord>> records;
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kRecordsHeader) {
    return Status::InvalidArgument(
        "strand records: bad header (expected \"" +
        std::string(kRecordsHeader) + "\")");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string bucket, second;
    if (!(fields >> bucket >> second)) {
      return Status::InvalidArgument("strand records: malformed line: " +
                                     line);
    }
    StrandRecord r;
    if (fields >> r.trials >> r.wins >> r.feasible >> r.time_to_incumbent_ms >>
        r.sweeps_to_incumbent) {
      // Seven fields: a strand record line; `second` is the strand name.
      records[bucket][second] = r;
    } else {
      // Two fields: the bucket's race count; `second` is the counter.
      char* end = nullptr;
      const unsigned long long value = std::strtoull(second.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("strand records: malformed line: " +
                                       line);
      }
      races[bucket] = value;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  races_ = std::move(races);
  records_ = std::move(records);
  return Status::Ok();
}

Status RunRecordStore::SaveRecords(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("strand records: cannot open for write: " +
                                   path);
  }
  out << Serialize();
  out.flush();
  if (!out) {
    return Status::Internal("strand records: write failed: " + path);
  }
  return Status::Ok();
}

Status RunRecordStore::LoadRecords(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("strand records: no such file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

StrandSelector::StrandSelector(const RunRecordStore* records,
                               const std::string& bucket,
                               std::vector<std::string> strand_names,
                               const AdaptiveOptions& options)
    : names_(std::move(strand_names)),
      throttle_divisor_(std::max(1, options.throttle_divisor)) {
  snapshot_.resize(names_.size());
  throttled_.assign(names_.size(), false);
  if (records == nullptr || !options.enabled) return;
  bucket_trials_ = records->BucketTrials(bucket);
  if (bucket_trials_ < options.min_bucket_trials) return;
  for (size_t i = 0; i < names_.size(); ++i) {
    snapshot_[i] = records->Get(bucket, names_[i]);
  }
  cold_start_ = false;

  // Rank the *tried* arms by UCB score, ties broken by registration
  // index: the ordering — hence the throttle verdict — is a
  // deterministic function of the snapshot alone. Untried arms stay out
  // of the ranking entirely (and are never throttled — optimism under
  // uncertainty): the registry's one-shot strands are ineligible in most
  // buckets, so their infinite scores would otherwise fill the keep-half
  // and throttle every arm that actually competes, including the best.
  std::vector<int> order;
  order.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    if (snapshot_[i].trials > 0) order.push_back(static_cast<int>(i));
  }
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const double sa = UcbScore(a), sb = UcbScore(b);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  // The upper half keeps its full budget; the lower half is throttled.
  // Applied to throttleable arms only by Throttled()/Allocate().
  const size_t keep = (order.size() + 1) / 2;
  for (size_t rank = keep; rank < order.size(); ++rank) {
    throttled_[order[rank]] = true;
  }
}

double StrandSelector::UcbScore(int strand) const {
  if (strand < 0 || strand >= static_cast<int>(snapshot_.size())) return 0.0;
  const StrandRecord& r = snapshot_[strand];
  if (r.trials == 0) {
    // Optimism under uncertainty: untried arms run at full budget.
    return std::numeric_limits<double>::infinity();
  }
  const double mean =
      static_cast<double>(r.wins) / static_cast<double>(r.trials);
  const double n = static_cast<double>(std::max<uint64_t>(bucket_trials_, 2));
  const double bonus =
      std::sqrt(2.0 * std::log(n) / static_cast<double>(r.trials));
  return mean + bonus;
}

bool StrandSelector::Throttled(int strand, bool throttleable) const {
  if (cold_start_ || !throttleable) return false;
  if (strand < 0 || strand >= static_cast<int>(throttled_.size())) {
    return false;
  }
  return throttled_[strand];
}

StrandBudget StrandSelector::Allocate(int strand, int round, bool throttleable,
                                      int reads_per_round,
                                      int sweeps_per_round,
                                      int64_t sweep_budget) const {
  (void)round;  // reserved for per-round schedules; constant today
  StrandBudget budget;
  budget.reads_per_round = reads_per_round;
  budget.sweeps_per_round = sweeps_per_round;
  budget.sweep_budget = sweep_budget;
  if (!Throttled(strand, throttleable)) return budget;
  budget.throttled = true;
  budget.reads_per_round = std::max(1, reads_per_round / throttle_divisor_);
  if (sweep_budget > 0) {
    // Never below one (reduced) round: throttled strands still race.
    const int64_t round_sweeps =
        static_cast<int64_t>(budget.reads_per_round) * sweeps_per_round;
    budget.sweep_budget =
        std::max(round_sweeps, sweep_budget / throttle_divisor_);
  }
  return budget;
}

}  // namespace qjo

#include "core/postprocess.h"

#include <cmath>

namespace qjo {

StatusOr<LeftDeepOrder> DecodeSample(const JoMilpModel& encoding,
                                     const std::vector<int>& bits) {
  const int t = encoding.num_relations();
  const int j = encoding.num_joins();
  if (static_cast<int>(bits.size()) < encoding.model().num_variables()) {
    return Status::InvalidArgument("sample smaller than variable count");
  }

  std::vector<int> order;
  std::vector<bool> used(t, false);
  // Inner operands: exactly one relation per join, no repeats.
  for (int join = 0; join < j; ++join) {
    int inner = -1;
    for (int rel = 0; rel < t; ++rel) {
      if (bits[encoding.tii(rel, join)] == 1) {
        if (inner != -1) {
          return Status::InvalidArgument("ambiguous inner operand");
        }
        inner = rel;
      }
    }
    if (inner < 0) return Status::InvalidArgument("join without inner operand");
    if (used[inner]) return Status::InvalidArgument("relation reused");
    used[inner] = true;
    order.push_back(inner);
  }
  // The remaining relation is the outer operand of the first join.
  int outer = -1;
  for (int rel = 0; rel < t; ++rel) {
    if (!used[rel]) {
      if (outer != -1) return Status::InvalidArgument("no unique outer");
      outer = rel;
    }
  }
  if (outer < 0) return Status::Internal("no remaining outer relation");
  order.insert(order.begin(), outer);
  return LeftDeepOrder::Create(std::move(order), encoding.query());
}

StatusOr<std::vector<int>> EncodeOrderAsAssignment(
    const JoMilpModel& encoding, const LeftDeepOrder& order) {
  const Query& query = encoding.query();
  if (order.size() != query.num_relations()) {
    return Status::InvalidArgument("order does not match query");
  }
  if (encoding.options().variant != JoModelVariant::kPruned) {
    return Status::InvalidArgument("only the pruned model is supported");
  }
  std::vector<int> bits(encoding.model().num_variables(), 0);
  const int j_count = encoding.num_joins();

  // Leaves: order[0] is the outer operand of join 0, order[j+1] the inner
  // operand of join j; Eq. (3) then fixes all later tio variables.
  bits[encoding.tio(order[0], 0)] = 1;
  for (int j = 0; j < j_count; ++j) {
    bits[encoding.tii(order[j + 1], j)] = 1;
    for (int i = 0; i <= j; ++i) {
      if (j + 1 < j_count) bits[encoding.tio(order[i], j + 1)] = 1;
    }
    if (j + 1 < j_count) bits[encoding.tio(order[j + 1], j + 1)] = 1;
  }

  // Predicates and thresholds per join.
  for (int j = 1; j < j_count; ++j) {
    double cj = 0.0;
    for (int t = 0; t < query.num_relations(); ++t) {
      if (bits[encoding.tio(t, j)]) {
        cj += std::log10(query.relation(t).cardinality);
      }
    }
    for (int p = 0; p < query.num_predicates(); ++p) {
      const int pao = encoding.pao(p, j);
      if (pao < 0) continue;
      if (bits[encoding.tio(query.predicate(p).left, j)] &&
          bits[encoding.tio(query.predicate(p).right, j)]) {
        bits[pao] = 1;
        cj += std::log10(query.predicate(p).selectivity);
      }
    }
    for (int r = 0;
         r < static_cast<int>(encoding.options().thresholds.size()); ++r) {
      const int cto = encoding.cto(r, j);
      if (cto < 0) continue;
      const double log_theta =
          std::log10(encoding.options().thresholds[r]);
      if (cj > log_theta + 1e-12) bits[cto] = 1;
    }
  }
  return bits;
}

SampleSetStats EvaluateSamples(const JoMilpModel& encoding,
                               const std::vector<std::vector<int>>& samples,
                               double optimal_cost, const BilpModel* bilp) {
  SampleSetStats stats;
  stats.total = static_cast<int>(samples.size());
  for (const auto& bits : samples) {
    if (bilp != nullptr &&
        static_cast<int>(bits.size()) >= bilp->num_variables() &&
        bilp->IsFeasible(bits)) {
      ++stats.bilp_feasible;
    }
    auto order = DecodeSample(encoding, bits);
    if (!order.ok()) continue;
    ++stats.valid;
    const double cost = Cost(encoding.query(), *order);
    if (!stats.found_valid || cost < stats.best_cost) {
      stats.found_valid = true;
      stats.best_cost = cost;
      stats.best_order = *order;
    }
    if (cost <= optimal_cost * (1.0 + 1e-9) + 1e-12) ++stats.optimal;
  }
  return stats;
}

}  // namespace qjo

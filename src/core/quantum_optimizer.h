#ifndef QJO_CORE_QUANTUM_OPTIMIZER_H_
#define QJO_CORE_QUANTUM_OPTIMIZER_H_

#include <atomic>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/portfolio.h"
#include "core/postprocess.h"
#include "core/qubo_cache.h"
#include "embedding/embedded_qubo.h"
#include "embedding/minor_embedding.h"
#include "jo/join_tree.h"
#include "jo/query.h"
#include "lp/jo_encoder.h"
#include "obs/obs.h"
#include "qubo/bilp_to_qubo.h"
#include "sim/device.h"
#include "sim/sqa.h"
#include "topology/coupling_graph.h"
#include "transpiler/transpiler.h"
#include "util/statusor.h"

namespace qjo {

class ThreadPool;

/// Execution backends of the quantum join-ordering pipeline.
enum class QjoBackend {
  /// Exact QUBO minimisation (Gray-code brute force) — the "perfect QPU".
  kExact,
  /// Classical simulated annealing on the logical QUBO.
  kSimulatedAnnealing,
  /// Gate-based flow: QAOA p=1, angles tuned classically, sampled through
  /// the depolarising noise model of a transpiled circuit (Table 2 setup).
  kQaoaSimulator,
  /// Annealer flow: minor-embed onto a Pegasus graph and run SQA with ICE
  /// noise (Table 3 setup).
  kQuantumAnnealerSim,
  /// Deadline-aware portfolio: races exact, SA, tabu, SQA and QAOA strands
  /// over one pool and returns the best valid plan found within the
  /// budget, degrading to the classical DP/greedy plan when nothing valid
  /// was sampled (a valid join tree is always returned).
  kPortfolio,
};

const char* QjoBackendName(QjoBackend backend);

/// Configuration of the end-to-end pipeline. Defaults reproduce the
/// paper's experimental setup at small scale.
struct QjoConfig {
  QjoBackend backend = QjoBackend::kExact;

  /// Problem encoding (Sec. 3): threshold values (empty = geometric
  /// defaults) and discretisation precision.
  std::vector<double> thresholds;
  int num_thresholds = 1;  ///< used when `thresholds` is empty
  double omega = 1.0;

  uint64_t seed = 7;

  /// Deadline, threads, pool, cancel token and observability sinks
  /// shared with the other orchestration layers (util/run_context.h):
  ///
  ///  * `run.parallelism`/`run.pool` — threads for the per-read loops of
  ///    the stochastic backends (SA reads, SQA anneals) and the
  ///    portfolio fan-out. 1 = serial; reports are bit-identical for
  ///    every value. The pool (set by OptimizeJoinOrderBatch; not owned)
  ///    is shared across pipeline runs; null = solvers create transient
  ///    pools when parallelism > 1.
  ///  * `run.deadline_ms` — pipeline-level wall budget, forwarded to the
  ///    portfolio race when `portfolio.run.deadline_ms` is left at its
  ///    default; ignored by the non-cooperative backends.
  ///  * `run.stop` — cooperative cancel token (e.g. flipped by the
  ///    serving layer's DeadlineMonitor), plumbed into the stochastic
  ///    solvers' SolverControl::stop and the portfolio race. The exact
  ///    and QAOA backends are not cooperative and run to completion.
  ///    While the token stays unset, results are bit-identical to a run
  ///    without one.
  ///  * `run.trace`/`run.metrics` — when attached, every pipeline stage
  ///    plus the nested solver spans record into the trace; solver
  ///    counters and pipeline gauges land in the registry. Attaching
  ///    sinks never changes a result. Lifetime must cover the
  ///    optimisation call(s); one recorder/registry may be shared across
  ///    a whole batch.
  RunContext run;

  /// Inner-loop kernel for every stochastic solve this pipeline issues
  /// (SA reads, SQA anneals, portfolio strands, decomp sub-solves).
  /// kBatched (default) anneals replica groups in SIMD lanes and is
  /// bit-identical to kIncremental; kReference is the slow oracle.
  /// Tabu always runs its incremental kernel. Also settable via
  /// `qjo_cli --kernel`; the SIMD tier itself is picked at runtime
  /// (QJO_SIMD to override).
  SolverKernel solver_kernel = SolverKernel::kBatched;

  // --- Gate-based options. ---
  int shots = 1024;
  int qaoa_iterations = 20;
  /// When > 1, refine the analytic QAOA angles over a qaoa_grid x
  /// qaoa_grid (gamma, beta) grid spanning [0.5, 1.5] x the analytic
  /// values, evaluated in one batched sweep (QaoaSimulator::
  /// EvaluateBatch). 0 or 1 = analytic angles only (paper setup).
  int qaoa_grid = 0;
  DeviceProperties device;        ///< defaults to IBM Q Auckland
  TranspileOptions transpile;     ///< gate set defaults to IBM
  /// Topology for transpilation; empty = IBM Falcon 27.
  std::optional<CouplingGraph> gate_topology;
  /// Disable the noise model (ideal sampling).
  bool noiseless = false;

  // --- Annealer options. ---
  SqaOptions sqa;
  EmbeddingOptions embedding;
  EmbedQuboOptions embed_qubo;
  /// Hardware graph for embedding; empty = Pegasus P6 (720 qubits; use
  /// MakePegasus(16) for the full Advantage scale).
  std::optional<CouplingGraph> annealer_topology;

  // --- Portfolio options (kPortfolio backend). ---
  /// Strand selection and budgets; parallelism/pool fall back to the
  /// fields above when left at their defaults.
  PortfolioOptions portfolio;
  /// Optional memoizing QUBO-build cache shared across runs (not owned).
  /// Null = every run encodes from scratch; OptimizeJoinOrderBatch
  /// supplies a batch-wide cache automatically.
  QuboBuildCache* qubo_cache = nullptr;

  // --- Adaptive strand selection (kPortfolio backend; see
  // core/strand_select.h). ---
  /// Let the per-bucket bandit shape strand budgets from the learned
  /// records. Off (default): fixed-order race. Equivalent to setting
  /// `portfolio.adaptive.enabled`.
  bool adaptive = false;
  /// Learned run records consulted and updated across runs (not owned,
  /// thread-safe). Null = cold start every run; also reachable via
  /// `portfolio.adaptive.records`. The serving layer persists its store
  /// through ServeOptions::strand_records_file.
  RunRecordStore* strand_records = nullptr;

  QjoConfig();
};

/// Problem-size diagnostics of the JO -> MILP -> BILP -> QUBO encoding
/// chain (filled for every backend).
struct EncodingDiag {
  int milp_variables = 0;
  int bilp_variables = 0;  ///< logical qubits
  int qubo_quadratic_terms = 0;
};

/// Gate-based diagnostics (QAOA backend; defaults otherwise).
struct GateDiag {
  int circuit_depth = 0;
  int two_qubit_gates = 0;
  double fidelity = 1.0;
  double gamma = 0.0;
  double beta = 0.0;
  QpuTimings timings;
};

/// Annealer diagnostics (kQuantumAnnealerSim backend; defaults
/// otherwise).
struct AnnealDiag {
  int physical_qubits = 0;
  int max_chain_length = 0;
  double chain_strength = 0.0;
  double mean_chain_break_fraction = 0.0;
};

/// Everything the pipeline learned about one optimisation run.
struct QjoReport {
  /// Best valid join order found by the backend, if any.
  bool found_valid = false;
  LeftDeepOrder best_order;
  double best_cost = 0.0;

  /// Ground truth (classical DP oracle) for comparison.
  LeftDeepOrder optimal_order;
  double optimal_cost = 0.0;

  SampleSetStats stats;

  /// Diagnostics, grouped by pipeline layer.
  EncodingDiag encoding;
  GateDiag gate;
  AnnealDiag anneal;

  /// Per-stage wall times of this run. Always filled (the per-stage
  /// clock reads cost nanoseconds); independent of whether a
  /// TraceRecorder was attached. Stage times nest and can overlap, so
  /// they are not disjoint fractions of total_ms.
  StageTimings stage_timings;

  /// Per-strand race statistics (kPortfolio backend only; `winner` is
  /// empty otherwise).
  PortfolioReport portfolio;

  /// Solver kernel this run dispatched to ("batched", "incremental",
  /// "reference") and the SIMD tier the dispatched kernels ran on
  /// ("scalar", "sse2", "avx2", "avx512").
  std::string solver_kernel;
  std::string simd_isa;

  std::string Summary() const;
};

/// Runs the full pipeline of Sec. 3 on `query` and returns the report.
/// Fails when the problem exceeds the backend's capabilities (e.g. too
/// many logical qubits for the QAOA simulator, or no embedding found).
StatusOr<QjoReport> OptimizeJoinOrder(const Query& query,
                                      const QjoConfig& config);

/// Batch front door: optimises every query of `queries` under the same
/// `config`, sharing one thread pool of `parallelism` threads across
/// queries *and* their inner read loops (whichever level has work). Slot
/// i holds exactly what OptimizeJoinOrder(queries[i], config) returns —
/// per-query failures land in their slot instead of failing the batch,
/// and results are bit-identical to one-by-one serial runs.
///
/// Pool ownership rule: when `config.pool` is set, the batch runs on the
/// caller's pool — `parallelism` then only caps the per-query inner
/// loops, and no second pool is ever created. Only with `config.pool ==
/// nullptr` does the batch own a transient pool of `parallelism` threads
/// for its duration.
std::vector<StatusOr<QjoReport>> OptimizeJoinOrderBatch(
    std::span<const Query> queries, const QjoConfig& config, int parallelism);

}  // namespace qjo

#endif  // QJO_CORE_QUANTUM_OPTIMIZER_H_

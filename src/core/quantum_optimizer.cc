#include "core/quantum_optimizer.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "circuit/qaoa_builder.h"
#include "jo/classical.h"
#include "qubo/ising.h"
#include "qubo/solvers.h"
#include "sim/qaoa_analytic.h"
#include "sim/qaoa_simulator.h"
#include "topology/vendor_topologies.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace qjo {

QjoConfig::QjoConfig() : device(IbmAucklandProperties()) {
  transpile.gate_set = NativeGateSet::kIbm;
  sqa.num_reads = 1000;
  sqa.ice_sigma = 0.015;
}

const char* QjoBackendName(QjoBackend backend) {
  switch (backend) {
    case QjoBackend::kExact:
      return "exact";
    case QjoBackend::kSimulatedAnnealing:
      return "simulated_annealing";
    case QjoBackend::kQaoaSimulator:
      return "qaoa_simulator";
    case QjoBackend::kQuantumAnnealerSim:
      return "quantum_annealer_sim";
    case QjoBackend::kPortfolio:
      return "portfolio";
  }
  return "unknown";
}

std::string QjoReport::Summary() const {
  std::ostringstream os;
  os << "logical qubits: " << encoding.bilp_variables
     << ", quadratic terms: " << encoding.qubo_quadratic_terms << "\n";
  if (gate.circuit_depth > 0) {
    os << "circuit depth: " << gate.circuit_depth
       << ", 2q gates: " << gate.two_qubit_gates
       << ", est. fidelity: " << FormatDouble(gate.fidelity, 4) << "\n";
  }
  if (anneal.physical_qubits > 0) {
    os << "physical qubits: " << anneal.physical_qubits
       << ", max chain: " << anneal.max_chain_length
       << ", chain breaks: " << FormatPercent(anneal.mean_chain_break_fraction)
       << "\n";
  }
  if (stage_timings.total_ms > 0.0) {
    double solve_ms = 0.0;
    for (const StageTimings::Stage& stage : stage_timings.stages) {
      if (stage.name.rfind("solve.", 0) == 0) solve_ms += stage.ms;
    }
    os << "pipeline: " << FormatDouble(stage_timings.total_ms, 2)
       << " ms (encode " << FormatDouble(stage_timings.Of("encode"), 2)
       << " ms, solve " << FormatDouble(solve_ms, 2) << " ms)\n";
  }
  if (!solver_kernel.empty()) {
    os << "solver kernel: " << solver_kernel << " (simd " << simd_isa
       << ")\n";
  }
  os << "samples: " << stats.total << " (valid "
     << FormatPercent(stats.valid_fraction()) << ", optimal "
     << FormatPercent(stats.optimal_fraction()) << ")\n";
  if (found_valid) {
    os << "best cost: " << best_cost << " (optimum " << optimal_cost << ")";
  } else {
    os << "no valid solution sampled (optimum " << optimal_cost << ")";
  }
  if (!portfolio.winner.empty()) {
    os << "\n" << portfolio.Summary();
  }
  return os.str();
}

namespace {

/// Expands a sampled basis state into a bit vector (LSB = variable 0).
std::vector<int> BasisToBits(uint64_t basis, int num_bits) {
  std::vector<int> bits(num_bits);
  for (int i = 0; i < num_bits; ++i) {
    bits[i] = static_cast<int>((basis >> i) & 1);
  }
  return bits;
}

}  // namespace

StatusOr<QjoReport> OptimizeJoinOrder(const Query& query,
                                      const QjoConfig& config) {
  if (query.num_relations() < 2) {
    return Status::InvalidArgument("need at least 2 relations");
  }
  QJO_RETURN_IF_ERROR(ValidateRunContext(config.run));
  Rng rng(config.seed);
  QjoReport report;
  // Spans that feed report.stage_timings close inside their own scope —
  // none may be alive at the return statement, where the report is moved
  // into the result before locals unwind.
  const auto pipeline_start = std::chrono::steady_clock::now();

  // --- Encode: JO -> MILP -> BILP -> QUBO (Sec. 3), via the memoizing
  // cache when one is attached (repeated fingerprints skip the rebuild).
  std::shared_ptr<const JoQuboEncoding> entry;
  {
    StageSpan encode_span(config.run.trace, "encode", &report.stage_timings);
    JoEncodingOptions encode_options;
    encode_options.thresholds = config.thresholds;
    encode_options.num_thresholds = config.num_thresholds;
    encode_options.omega = config.omega;
    if (config.qubo_cache != nullptr) {
      QJO_ASSIGN_OR_RETURN(
          entry, config.qubo_cache->GetOrBuild(query, encode_options));
    } else {
      QJO_ASSIGN_OR_RETURN(entry, BuildJoQuboEncoding(query, encode_options));
    }
  }
  const JoMilpModel& milp = entry->milp;
  const BilpModel& bilp = entry->bilp;
  const QuboEncoding& encoding = entry->encoding;

  report.encoding.milp_variables = milp.model().num_variables();
  report.encoding.bilp_variables = bilp.num_variables();
  report.encoding.qubo_quadratic_terms = encoding.qubo.num_quadratic_terms();
  // Which inner-loop kernel the stochastic solves will dispatch to, and
  // which SIMD tier the dispatched kernels run on (host-resolved).
  report.solver_kernel = SolverKernelName(config.solver_kernel);
  report.simd_isa = Simd().name;
  if (config.run.metrics != nullptr) {
    config.run.metrics->Count("pipeline.runs");
    config.run.metrics->GaugeMax(
        "solver.kernel",
        static_cast<double>(static_cast<int>(config.solver_kernel)));
    config.run.metrics->GaugeMax(
        "simd.isa", static_cast<double>(static_cast<int>(Simd().isa)));
    config.run.metrics->GaugeMax("pipeline.bilp_variables",
                             report.encoding.bilp_variables);
    config.run.metrics->GaugeMax("pipeline.qubo_quadratic_terms",
                             report.encoding.qubo_quadratic_terms);
    if (config.qubo_cache != nullptr) {
      // Cache stats are cumulative, so max-merge across shards/runs
      // yields the latest totals.
      const QuboBuildCache::Stats cache = config.qubo_cache->stats();
      config.run.metrics->GaugeMax("qubo_cache.hits",
                               static_cast<double>(cache.hits));
      config.run.metrics->GaugeMax("qubo_cache.misses",
                               static_cast<double>(cache.misses));
      config.run.metrics->GaugeMax("qubo_cache.evictions",
                               static_cast<double>(cache.evictions));
    }
  }

  // Ground truth for optimality labelling. Past kMaxDpRelations the DP
  // tables would not fit, so the reference degrades to the greedy plan:
  // "optimal" labels then mean "matched the classical reference", and the
  // pipeline keeps solving instead of failing the whole query.
  JoResult oracle;
  {
    StageSpan oracle_span(config.run.trace, "oracle_dp", &report.stage_timings);
    auto exact = OptimizeDp(query);
    if (exact.ok()) {
      oracle = std::move(*exact);
    } else if (exact.status().code() == StatusCode::kResourceExhausted) {
      QJO_ASSIGN_OR_RETURN(oracle, OptimizeGreedy(query));
    } else {
      return exact.status();
    }
  }
  report.optimal_order = oracle.order;
  report.optimal_cost = oracle.cost;

  // --- Solve on the selected backend. ---
  std::vector<std::vector<int>> samples;
  {
  const std::string solve_stage =
      std::string("solve.") + QjoBackendName(config.backend);
  StageSpan solve_span(config.run.trace, solve_stage.c_str(),
                       &report.stage_timings);
  switch (config.backend) {
    case QjoBackend::kExact: {
      QJO_ASSIGN_OR_RETURN(QuboSolution best,
                           SolveQuboBruteForce(encoding.qubo));
      samples.push_back(best.assignment);
      break;
    }
    case QjoBackend::kSimulatedAnnealing: {
      SaOptions sa;
      sa.num_reads = std::max(1, config.shots / 8);
      sa.kernel = config.solver_kernel;
      sa.control.parallelism = config.run.parallelism;
      sa.control.pool = config.run.pool;
      sa.control.stop = config.run.stop;
      sa.control.trace = config.run.trace;
      sa.control.metrics = config.run.metrics;
      const std::vector<QuboSolution> reads =
          SolveQuboSimulatedAnnealing(encoding.qubo, sa, rng);
      for (const auto& read : reads) samples.push_back(read.assignment);
      break;
    }
    case QjoBackend::kQaoaSimulator: {
      // Sampled basis states are decoded through a uint64_t, so anything
      // past 64 logical variables would silently truncate to garbage
      // bits; fail loudly instead. (The simulator's own memory limit is
      // far below this — the check documents the decode boundary.)
      if (bilp.num_variables() > 64) {
        return Status::ResourceExhausted(
            "QAOA backend supports at most 64 logical variables (basis "
            "states are decoded from uint64_t)");
      }
      const IsingModel ising = QuboToIsing(encoding.qubo);
      QJO_ASSIGN_OR_RETURN(QaoaSimulator sim, QaoaSimulator::Create(ising));
      // The 2^n amplitude loops run blocked on the shared pool (or a
      // transient one); chunking is thread-count-independent, so the
      // report does not depend on the parallelism setting.
      std::optional<ThreadPool> sim_pool;
      ThreadPool* pool = config.run.pool;
      if (pool == nullptr && config.run.parallelism > 1) {
        sim_pool.emplace(config.run.parallelism);
        pool = &*sim_pool;
      }
      sim.set_pool(pool);
      sim.set_metrics(config.run.metrics);
      QaoaAngles angles;
      {
        StageSpan angles_span(config.run.trace, "qaoa_angles",
                              &report.stage_timings);
        angles = OptimizeQaoaAngles(ising, config.qaoa_iterations, rng);
      }
      report.gate.gamma = angles.gamma;
      report.gate.beta = angles.beta;
      if (config.qaoa_grid > 1) {
        StageSpan grid_span(config.run.trace, "qaoa_grid",
                            &report.stage_timings);
        // Local grid refinement around the analytic angles: one batched
        // sweep over a gamma-major qaoa_grid^2 grid in [0.5, 1.5] x the
        // analytic values. Gamma-major order maximises phase-table reuse
        // inside EvaluateBatch; the argmin takes the lowest index on
        // ties, so the result is parallelism-independent.
        const int g = config.qaoa_grid;
        std::vector<QaoaParameters> grid;
        grid.reserve(static_cast<size_t>(g) * g);
        for (int i = 0; i < g; ++i) {
          const double sg = 0.5 + 1.0 * i / (g - 1);
          for (int j = 0; j < g; ++j) {
            const double sb = 0.5 + 1.0 * j / (g - 1);
            QaoaParameters candidate;
            candidate.gammas = {angles.gamma * sg};
            candidate.betas = {angles.beta * sb};
            grid.push_back(std::move(candidate));
          }
        }
        const std::vector<double> energies = sim.EvaluateBatch(grid);
        size_t best = 0;
        for (size_t i = 1; i < energies.size(); ++i) {
          if (energies[i] < energies[best]) best = i;
        }
        report.gate.gamma = grid[best].gammas[0];
        report.gate.beta = grid[best].betas[0];
      }
      QaoaParameters params;
      params.gammas = {report.gate.gamma};
      params.betas = {report.gate.beta};
      {
        StageSpan run_span(config.run.trace, "qaoa_run", &report.stage_timings);
        sim.Run(params);
      }

      // Transpile the circuit for the device to obtain depth and fidelity.
      {
        StageSpan transpile_span(config.run.trace, "transpile",
                                 &report.stage_timings);
        QJO_ASSIGN_OR_RETURN(QuantumCircuit logical,
                             BuildQaoaCircuit(ising, params));
        const CouplingGraph topology = config.gate_topology.has_value()
                                           ? *config.gate_topology
                                           : MakeIbmFalcon27();
        TranspileOptions transpile = config.transpile;
        transpile.seed = rng.Next();
        QJO_ASSIGN_OR_RETURN(TranspileResult physical,
                             Transpile(logical, topology, transpile));
        report.gate.circuit_depth = physical.depth;
        report.gate.two_qubit_gates = physical.two_qubit_gate_count;
        report.gate.fidelity =
            config.noiseless
                ? 1.0
                : EstimateCircuitFidelity(physical.circuit, config.device);
        report.gate.timings =
            EstimateQpuTimings(physical.circuit, config.shots, config.device);
      }

      StageSpan sample_span(config.run.trace, "sample", &report.stage_timings);
      const std::vector<uint64_t> raw =
          sim.Sample(config.shots, report.gate.fidelity, rng);
      samples.reserve(raw.size());
      for (uint64_t basis : raw) {
        samples.push_back(BasisToBits(basis, bilp.num_variables()));
      }
      break;
    }
    case QjoBackend::kQuantumAnnealerSim: {
      CouplingGraph topology;
      if (config.annealer_topology.has_value()) {
        topology = *config.annealer_topology;
      } else {
        QJO_ASSIGN_OR_RETURN(topology, MakePegasus(6));
      }
      std::optional<Embedding> embedding;
      std::optional<EmbeddedQubo> embedded;
      {
        StageSpan embed_span(config.run.trace, "embedding",
                             &report.stage_timings);
        QJO_ASSIGN_OR_RETURN(
            embedding,
            FindMinorEmbedding(encoding.qubo.Edges(),
                               encoding.qubo.num_variables(), topology,
                               config.embedding, rng));
      }
      {
        StageSpan embed_qubo_span(config.run.trace, "embed_qubo",
                                  &report.stage_timings);
        QJO_ASSIGN_OR_RETURN(embedded,
                             EmbedQubo(encoding.qubo, *embedding, topology,
                                       config.embed_qubo));
      }
      report.anneal.physical_qubits = embedding->NumPhysicalQubits();
      report.anneal.max_chain_length = embedding->MaxChainLength();
      report.anneal.chain_strength = embedded->chain_strength;

      const IsingModel physical_ising = QuboToIsing(embedded->physical);
      SqaOptions sqa = config.sqa;
      sqa.kernel = config.solver_kernel;
      if (sqa.control.parallelism <= 1) {
        sqa.control.parallelism = config.run.parallelism;
      }
      if (sqa.control.pool == nullptr) sqa.control.pool = config.run.pool;
      if (sqa.control.stop == nullptr) sqa.control.stop = config.run.stop;
      sqa.control.trace = config.run.trace;
      sqa.control.metrics = config.run.metrics;
      QJO_ASSIGN_OR_RETURN(std::vector<SqaSample> reads,
                           RunSqa(physical_ising, sqa, rng));
      double chain_breaks = 0.0;
      for (const SqaSample& read : reads) {
        const UnembeddedSample logical =
            UnembedSample(SpinsToBits(read.spins), *embedding, rng);
        chain_breaks += logical.chain_break_fraction;
        samples.push_back(logical.logical_bits);
      }
      if (!reads.empty()) {
        report.anneal.mean_chain_break_fraction =
            chain_breaks / static_cast<double>(reads.size());
      }
      break;
    }
    case QjoBackend::kPortfolio: {
      PortfolioOptions race = config.portfolio;
      race.solver_kernel = config.solver_kernel;
      if (race.run.parallelism <= 1) {
        race.run.parallelism = config.run.parallelism;
      }
      if (race.run.pool == nullptr) race.run.pool = config.run.pool;
      if (race.run.stop == nullptr) race.run.stop = config.run.stop;
      if (race.run.trace == nullptr) race.run.trace = config.run.trace;
      if (race.run.metrics == nullptr) race.run.metrics = config.run.metrics;
      // Pipeline-level wall budget: forwarded when the race has none of
      // its own.
      if (race.run.deadline_ms < 0.0 && config.run.deadline_ms >= 0.0) {
        race.run.deadline_ms = config.run.deadline_ms;
      }
      // Adaptive strand selection: the config-level switches are sugar
      // for the portfolio's own adaptive block.
      if (config.adaptive) race.adaptive.enabled = true;
      if (race.adaptive.records == nullptr) {
        race.adaptive.records = config.strand_records;
      }
      // The decomposition strand re-encodes window subqueries constantly;
      // the pipeline's shared build cache absorbs the repeats.
      if (race.decomp.cache == nullptr) race.decomp.cache = config.qubo_cache;
      QJO_ASSIGN_OR_RETURN(report.portfolio,
                           RunJoPortfolio(query, *entry, race, rng));
      if (config.qubo_cache != nullptr) {
        const QuboBuildCache::Stats cache = config.qubo_cache->stats();
        report.portfolio.cache_hits = cache.hits;
        report.portfolio.cache_misses = cache.misses;
        report.portfolio.cache_hit_rate = cache.hit_rate();
      }
      if (!report.portfolio.race.best_assignment.empty()) {
        samples.push_back(report.portfolio.race.best_assignment);
      }
      break;
    }
  }
  }  // solve span

  {
    StageSpan post_span(config.run.trace, "postprocess", &report.stage_timings);
    report.stats = EvaluateSamples(milp, samples, oracle.cost, &bilp);
  }
  report.found_valid = report.stats.found_valid;
  report.best_order = report.stats.best_order;
  report.best_cost = report.stats.best_cost;
  if (config.backend == QjoBackend::kPortfolio) {
    // The portfolio guarantees a plan (classical fallback included) even
    // when its best QUBO sample decodes as invalid.
    report.found_valid = report.portfolio.found_valid;
    report.best_order = report.portfolio.best_order;
    report.best_cost = report.portfolio.best_cost;
  }
  if (config.run.metrics != nullptr) {
    config.run.metrics->Count("pipeline.samples",
                          static_cast<uint64_t>(report.stats.total));
    if (config.run.pool != nullptr) {
      // Cumulative dispatch count of the shared pool; max-merge keeps the
      // latest value.
      config.run.metrics->GaugeMax(
          "pool.tasks_dispatched",
          static_cast<double>(config.run.pool->tasks_dispatched()));
    }
  }
  const auto pipeline_end = std::chrono::steady_clock::now();
  if (config.run.trace != nullptr) {
    // Root span enclosing every stage; recorded directly (a StageSpan
    // would still be alive at the return, after the report moved out).
    config.run.trace->Record("pipeline", pipeline_start, pipeline_end);
  }
  report.stage_timings.total_ms =
      std::chrono::duration<double, std::milli>(pipeline_end - pipeline_start)
          .count();
  return report;
}

std::vector<StatusOr<QjoReport>> OptimizeJoinOrderBatch(
    std::span<const Query> queries, const QjoConfig& config,
    int parallelism) {
  std::vector<StatusOr<QjoReport>> reports(
      queries.size(), Status::Internal("batch slot not executed"));
  if (queries.empty()) return reports;

  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = config.run.pool;
  if (pool == nullptr && parallelism > 1) {
    owned_pool.emplace(parallelism);
    pool = &*owned_pool;
  }

  // Every query sees the same pool, both for the query-level fan-out and
  // for its inner read loops (nested ParallelFor is safe): whichever
  // level has the most work soaks up the threads. Per-query results do
  // not depend on this sharing — seed-splitting makes them bit-identical
  // to a serial one-by-one run.
  QjoConfig per_query = config;
  per_query.run.pool = pool;
  per_query.run.parallelism = std::max(config.run.parallelism, parallelism);

  // Batch-wide QUBO-build cache: repeated query shapes (same
  // cardinalities, predicates, thresholds, omega) encode once. Cached
  // entries are deterministic, so sharing cannot change any result.
  std::optional<QuboBuildCache> owned_cache;
  if (per_query.qubo_cache == nullptr) {
    owned_cache.emplace();
    per_query.qubo_cache = &*owned_cache;
  }
  ParallelFor(pool, 0, static_cast<int64_t>(queries.size()),
              [&](int64_t i) {
                reports[i] = OptimizeJoinOrder(queries[i], per_query);
              });
  return reports;
}

}  // namespace qjo

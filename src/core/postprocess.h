#ifndef QJO_CORE_POSTPROCESS_H_
#define QJO_CORE_POSTPROCESS_H_

#include <vector>

#include "jo/join_tree.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "util/statusor.h"

namespace qjo {

/// Decodes one QPU sample (a 0/1 assignment over at least the problem
/// variables of the encoding) into a left-deep join order, following the
/// paper's postprocessing (Sec. 3.5): a sample is *valid* iff the tii
/// variables select exactly one distinct relation per join; the first
/// join's outer relation follows by elimination. Violations of cardinality
/// constraints do not invalidate a sample. Returns InvalidArgument for
/// ambiguous/invalid samples.
StatusOr<LeftDeepOrder> DecodeSample(const JoMilpModel& encoding,
                                     const std::vector<int>& bits);

/// Aggregate statistics over a sample set, the Table 2 / Table 3 metrics.
struct SampleSetStats {
  int total = 0;
  int valid = 0;             ///< decodable into a unique join tree
  int optimal = 0;           ///< valid and cost-optimal
  int bilp_feasible = 0;     ///< satisfies every BILP constraint exactly
  double best_cost = 0.0;    ///< cost of the best valid join order
  bool found_valid = false;
  LeftDeepOrder best_order;

  double valid_fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(valid) / total;
  }
  double optimal_fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(optimal) / total;
  }
};

/// Inverse of DecodeSample: the canonical MILP assignment of a left-deep
/// order — tio/tii per the join tree, pao set whenever both relations of a
/// predicate are in the outer operand, cto set exactly when the
/// logarithmic cardinality exceeds the threshold. The result is feasible
/// for the *pruned MILP model* (slack variables are not part of it) and
/// its objective value is the staircase-approximated cost of the order.
StatusOr<std::vector<int>> EncodeOrderAsAssignment(
    const JoMilpModel& encoding, const LeftDeepOrder& order);

/// Decodes every sample, evaluates costs with the true C_out model, and
/// counts valid/optimal solutions. `optimal_cost` is the ground-truth
/// optimum (from the classical DP oracle); costs within a relative 1e-9
/// of it count as optimal. If `bilp` is non-null, samples satisfying every
/// BILP constraint exactly are tallied in `bilp_feasible` (the paper notes
/// that on hardware *no* sample reached the minimal penalty).
SampleSetStats EvaluateSamples(const JoMilpModel& encoding,
                               const std::vector<std::vector<int>>& samples,
                               double optimal_cost,
                               const BilpModel* bilp = nullptr);

}  // namespace qjo

#endif  // QJO_CORE_POSTPROCESS_H_

#include "core/portfolio.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/postprocess.h"
#include "core/strand_select.h"
#include "jo/classical.h"
#include "qubo/ising.h"
#include "sim/qaoa_analytic.h"
#include "sim/qaoa_simulator.h"
#include "util/strings.h"

namespace qjo {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Mutable race state of one strand: the published outcome plus the
/// feasible incumbent's assignment. Owned exclusively by the strand's
/// loop body until the ParallelFor join barrier.
struct StrandState {
  StrandOutcome outcome;
  std::vector<int> best_feasible_assignment;
};

/// Tolerance for "incumbent matches the known lower bound".
bool MatchesBound(double energy, double bound) {
  if (std::isnan(bound)) return false;
  return energy <= bound + 1e-9 * std::max(1.0, std::abs(bound));
}

/// Folds one sample into the strand's incumbents. `energy` must be the
/// sample's QUBO energy (offset included) so strands stay comparable.
void AbsorbSample(const PortfolioOptions& options, Clock::time_point start,
                  const std::vector<int>& assignment, double energy,
                  StrandState& state) {
  state.outcome.best_energy = std::min(state.outcome.best_energy, energy);
  double score = energy;
  if (options.score) {
    score = options.score(assignment);
    if (std::isnan(score)) return;  // domain-infeasible sample
  }
  if (!state.outcome.feasible || score < state.outcome.best_score) {
    // The timestamp tracks *material* improvements only: float-level
    // wiggles (common when strands saturate to the same optimum) would
    // otherwise push time-to-incumbent into the wind-down after a
    // deadline expires.
    const bool material =
        !state.outcome.feasible ||
        score < state.outcome.best_score -
                    1e-9 * std::max(1.0, std::abs(score));
    state.outcome.feasible = true;
    state.outcome.best_score = score;
    state.best_feasible_assignment = assignment;
    if (material) {
      state.outcome.time_to_incumbent_ms = MsSince(start);
      // Round-granular (sweeps completed before the current round), and
      // therefore deterministic in sweep-budget mode — unlike the
      // wall-clock twin above.
      state.outcome.sweeps_to_incumbent = state.outcome.sweeps_completed;
    }
  }
}

/// Shared SolverControl wiring of the sweep-strand bodies.
SolverControl StrandControl(const StrandRunEnv& env) {
  SolverControl control;
  control.parallelism = env.options->run.parallelism;
  control.pool = env.pool;
  control.stop = env.stop;
  control.trace = env.options->run.trace;
  control.metrics = env.options->run.metrics;
  return control;
}

bool BudgetLeft(const StrandRunEnv& env) {
  return env.budget.sweep_budget <= 0 ||
         env.outcome->sweeps_completed < env.budget.sweep_budget;
}

// --- Built-in strand bodies. Each consumes its StrandBudget allocation
// and keeps rounds_completed/sweeps_completed current; incumbents go
// through env.absorb. ---

void RunExactStrand(const StrandRunEnv& env, Rng& rng) {
  (void)rng;  // deterministic enumeration; the stream stays untouched
  if (env.stop_requested()) return;
  auto best =
      SolveQuboBruteForce(*env.qubo, env.options->max_exact_variables);
  if (!best.ok()) return;
  env.absorb(best->assignment, best->energy);
  env.outcome->rounds_completed = 1;
  env.outcome->sweeps_completed = int64_t{1} << env.qubo->num_variables();
  // The exact minimum *is* a proven lower bound: nothing can beat it on
  // energy, so in deadline mode the race ends here.
  env.outcome->hit_lower_bound = true;
  env.request_stop();
}

void RunSaStrand(const StrandRunEnv& env, Rng& rng) {
  SaOptions sa;
  sa.num_reads = env.budget.reads_per_round;
  sa.sweeps_per_read = env.budget.sweeps_per_round;
  sa.kernel = env.options->solver_kernel;
  sa.control = StrandControl(env);
  const int64_t round_sweeps =
      static_cast<int64_t>(env.budget.reads_per_round) *
      env.budget.sweeps_per_round;
  while (!env.stop_requested() && BudgetLeft(env)) {
    const auto reads = SolveQuboSimulatedAnnealing(*env.qubo, sa, rng);
    for (const QuboSolution& read : reads) {
      env.absorb(read.assignment, read.energy);
    }
    ++env.outcome->rounds_completed;
    env.outcome->sweeps_completed += round_sweeps;
  }
}

void RunTabuStrand(const StrandRunEnv& env, Rng& rng) {
  TabuOptions tabu;
  tabu.num_restarts = env.budget.reads_per_round;
  tabu.iterations_per_restart = env.budget.sweeps_per_round;
  tabu.kernel = env.options->solver_kernel;
  tabu.control = StrandControl(env);
  const int64_t round_sweeps =
      static_cast<int64_t>(env.budget.reads_per_round) *
      env.budget.sweeps_per_round;
  while (!env.stop_requested() && BudgetLeft(env)) {
    const auto restarts = SolveQuboTabuSearch(*env.qubo, tabu, rng);
    for (const QuboSolution& restart : restarts) {
      env.absorb(restart.assignment, restart.energy);
    }
    ++env.outcome->rounds_completed;
    env.outcome->sweeps_completed += round_sweeps;
  }
}

void RunSqaStrand(const StrandRunEnv& env, Rng& rng) {
  const IsingModel ising = QuboToIsing(*env.qubo);
  SqaOptions sqa = env.options->sqa;
  sqa.num_reads = env.budget.reads_per_round;
  // One Monte-Carlo sweep per "microsecond" maps the round budget
  // directly onto SQA sweeps (RunSqa clamps to at least 8).
  sqa.annealing_time_us = env.budget.sweeps_per_round;
  sqa.sweeps_per_us = 1.0;
  sqa.kernel = env.options->solver_kernel;
  sqa.control = StrandControl(env);
  const int64_t sqa_round_sweeps =
      static_cast<int64_t>(env.budget.reads_per_round) *
      std::max(8, env.budget.sweeps_per_round);
  while (!env.stop_requested() && BudgetLeft(env)) {
    auto samples = RunSqa(ising, sqa, rng);
    if (!samples.ok()) break;
    for (const SqaSample& sample : *samples) {
      // ising.Energy(z) == qubo.Energy(SpinsToBits(z)): directly
      // comparable with the other strands.
      env.absorb(SpinsToBits(sample.spins), sample.energy);
    }
    ++env.outcome->rounds_completed;
    env.outcome->sweeps_completed += sqa_round_sweeps;
  }
}

void RunQaoaStrand(const StrandRunEnv& env, Rng& rng) {
  if (env.stop_requested()) return;
  const Qubo& qubo = *env.qubo;
  const int n = qubo.num_variables();
  const IsingModel ising = QuboToIsing(qubo);
  auto sim = QaoaSimulator::Create(ising);
  if (!sim.ok()) return;
  sim->set_pool(env.pool);
  const QaoaAngles angles =
      OptimizeQaoaAngles(ising, env.options->qaoa_iterations, rng);
  QaoaParameters params;
  params.gammas = {angles.gamma};
  params.betas = {angles.beta};
  sim->Run(params);
  const std::vector<uint64_t> raw =
      sim->Sample(env.options->qaoa_shots, /*fidelity=*/1.0, rng);
  std::vector<int> bits(n);
  for (uint64_t basis : raw) {
    for (int i = 0; i < n; ++i) {
      bits[i] = static_cast<int>((basis >> i) & 1);
    }
    env.absorb(bits, qubo.Energy(bits));
  }
  env.outcome->rounds_completed = 1;
  env.outcome->sweeps_completed = env.options->qaoa_shots;
}

void RunDecompStrand(const StrandRunEnv& env, Rng& rng) {
  if (env.stop_requested()) return;
  auto decomp = env.options->decomp_run(env.stop, env.pool, rng);
  if (!decomp.ok()) return;
  // The strand's incumbent is the join order itself; its C_out cost is
  // directly comparable with the other strands' decoded scores. The
  // QUBO energy stays +inf (there is no monolithic sample), so winner
  // selection rests purely on the domain score.
  StrandOutcome& outcome = *env.outcome;
  outcome.feasible = true;
  outcome.best_score = decomp->cost;
  outcome.time_to_incumbent_ms = env.elapsed_ms();
  outcome.rounds_completed = decomp->rounds;
  outcome.sweeps_completed = decomp->windows_solved;
  outcome.sweeps_to_incumbent = outcome.sweeps_completed;
  env.publish_assignment(decomp->order.order());
}

}  // namespace

Status StrandRegistry::Register(StrandDesc desc) {
  if (desc.name.empty()) {
    return Status::InvalidArgument("strand name must not be empty");
  }
  if (desc.name.find_first_of(" \t\n") != std::string::npos) {
    return Status::InvalidArgument(
        "strand name must not contain whitespace: " + desc.name);
  }
  if (IndexOf(desc.name) >= 0) {
    return Status::InvalidArgument("duplicate strand name: " + desc.name);
  }
  if (!desc.run) {
    return Status::InvalidArgument("strand has no run hook: " + desc.name);
  }
  desc.rng_stream = strands_.size();
  strands_.push_back(std::move(desc));
  return Status::Ok();
}

int StrandRegistry::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < strands_.size(); ++i) {
    if (strands_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> StrandRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(strands_.size());
  for (const StrandDesc& desc : strands_) names.push_back(desc.name);
  return names;
}

const StrandRegistry& StrandRegistry::Default() {
  static const StrandRegistry* kDefault = [] {
    auto* registry = new StrandRegistry();
    const auto must_register = [registry](StrandDesc desc) {
      const Status status = registry->Register(std::move(desc));
      (void)status;  // built-in names are unique by construction
    };

    StrandDesc exact;
    exact.name = "exact";
    exact.eligible = [](const Qubo& qubo, const PortfolioOptions& options) {
      return options.enable_exact &&
             qubo.num_variables() <= std::min(options.max_exact_variables, 63);
    };
    exact.run = RunExactStrand;
    must_register(std::move(exact));

    StrandDesc sa;
    sa.name = "sa";
    sa.throttleable = true;
    sa.eligible = [](const Qubo&, const PortfolioOptions& options) {
      return options.enable_sa;
    };
    sa.run = RunSaStrand;
    must_register(std::move(sa));

    StrandDesc tabu;
    tabu.name = "tabu";
    tabu.throttleable = true;
    tabu.eligible = [](const Qubo&, const PortfolioOptions& options) {
      return options.enable_tabu;
    };
    tabu.run = RunTabuStrand;
    must_register(std::move(tabu));

    StrandDesc sqa;
    sqa.name = "sqa";
    sqa.throttleable = true;
    sqa.eligible = [](const Qubo&, const PortfolioOptions& options) {
      return options.enable_sqa;
    };
    sqa.run = RunSqaStrand;
    must_register(std::move(sqa));

    StrandDesc qaoa;
    qaoa.name = "qaoa";
    qaoa.eligible = [](const Qubo& qubo, const PortfolioOptions& options) {
      // The simulator itself refuses above 27 qubits.
      return options.enable_qaoa &&
             qubo.num_variables() <= std::min(options.max_qaoa_variables, 27);
    };
    qaoa.run = RunQaoaStrand;
    must_register(std::move(qaoa));

    StrandDesc decomp;
    decomp.name = "decomp";
    // Query-level strand: only runnable through the hook the JO layer
    // installs (the race itself has no Query to decompose). Runs first
    // so a serial deadline race cannot starve the one strand that
    // guarantees a valid large-query plan.
    decomp.run_first = true;
    decomp.publishes_order = true;
    decomp.eligible = [](const Qubo&, const PortfolioOptions& options) {
      return options.enable_decomp && options.decomp_run != nullptr;
    };
    decomp.run = RunDecompStrand;
    must_register(std::move(decomp));

    return registry;
  }();
  return *kDefault;
}

Status ValidatePortfolioOptions(const PortfolioOptions& options) {
  QJO_RETURN_IF_ERROR(ValidateRunContext(options.run));
  // The one budget error path: a race must be bounded by wall clock or
  // by sweeps. (deadline_ms == 0 is the documented "skip the race"
  // fast-path, not an unbounded run.)
  if (options.run.deadline_ms < 0.0 && options.sweep_budget <= 0) {
    return Status::InvalidArgument(
        "unbounded portfolio: need a deadline or a sweep budget");
  }
  if (options.reads_per_round <= 0 || options.sweeps_per_round <= 0) {
    return Status::InvalidArgument("portfolio round sizes must be positive");
  }
  if (options.adaptive.throttle_divisor < 1) {
    return Status::InvalidArgument(
        "adaptive throttle_divisor must be >= 1");
  }
  if (options.registry != nullptr && options.registry->size() == 0) {
    return Status::InvalidArgument("portfolio strand registry is empty");
  }
  return Status::Ok();
}

StatusOr<QuboRaceResult> RaceQuboPortfolio(const Qubo& qubo,
                                           const PortfolioOptions& options,
                                           Rng& rng) {
  const int n = qubo.num_variables();
  if (n == 0) return Status::InvalidArgument("empty QUBO");
  QJO_RETURN_IF_ERROR(ValidatePortfolioOptions(options));

  const StrandRegistry& registry =
      options.registry != nullptr ? *options.registry
                                  : StrandRegistry::Default();

  // Materialise the shared CSR before any fan-out (see Qubo::Csr()).
  qubo.Csr();

  StageSpan race_span(options.run.trace, "portfolio.race");
  QuboRaceResult result;
  const Clock::time_point start = Clock::now();

  // Adaptive budget allocation, fixed before the fan-out: a pure
  // function of (records snapshot, feature bucket), never of the live
  // race, so strands stay independent and sweep-budget races keep the
  // bit-reproducibility contract.
  const bool records_attached = options.adaptive.records != nullptr;
  std::string bucket;
  if (records_attached || options.adaptive.enabled) {
    bucket = options.feature_bucket.empty() ? FallbackBucketKey(n)
                                            : options.feature_bucket;
    result.feature_bucket = bucket;
  }
  const StrandSelector selector(options.adaptive.records, bucket,
                                registry.Names(), options.adaptive);
  result.adaptive_applied = !selector.cold_start();

  std::vector<StrandState> states(registry.size());
  for (int s = 0; s < registry.size(); ++s) {
    const StrandDesc& desc = registry.strands()[s];
    StrandOutcome& outcome = states[s].outcome;
    outcome.name = desc.name;
    outcome.index = s;
    outcome.eligible = !desc.eligible || desc.eligible(qubo, options);
    outcome.allocation = selector.Allocate(
        s, /*round=*/0, desc.throttleable, options.reads_per_round,
        options.sweeps_per_round, options.sweep_budget);
  }

  if (options.run.metrics != nullptr && result.adaptive_applied) {
    options.run.metrics->Count("portfolio.adaptive.races");
    for (const StrandState& state : states) {
      if (state.outcome.allocation.throttled) {
        options.run.metrics->Count("portfolio.adaptive.throttled");
      }
    }
  }

  if (options.run.deadline_ms == 0.0) {
    // Zero budget: answer immediately with an empty race. The JO layer
    // degrades to the classical plan.
    result.deadline_expired = true;
    for (StrandState& state : states) {
      result.strands.push_back(state.outcome);
    }
    return result;
  }

  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = options.run.pool;
  if (pool == nullptr && options.run.parallelism > 1) {
    local_pool.emplace(options.run.parallelism);
    pool = &*local_pool;
  }

  std::atomic<bool> stop{false};
  // Early exit (lower-bound hit, exact strand finished) only cancels the
  // race in deadline mode: cancellation truncates other strands at a
  // wall-clock-dependent point, which would break the bit-reproducibility
  // contract of pure sweep-budget runs.
  const bool deadline_mode = options.run.deadline_ms > 0.0;
  const auto request_stop = [&] {
    if (deadline_mode) stop.store(true, std::memory_order_relaxed);
  };
  // External cancel token (serving-layer deadline, caller shutdown):
  // relayed onto the internal token in any budget mode — a fired token
  // is an unconditional cancel, unlike the opportunistic early exits.
  const std::atomic<bool>* external = options.run.stop;

  // Deadline watchdog: flips the internal stop token when the wall-clock
  // budget expires or the external cancel token fires, and exits silently
  // when the race finishes first. The external token is polled at 1 ms
  // granularity — the solvers themselves only check between sweeps, so
  // millisecond relay latency is below their own reaction time.
  std::mutex watchdog_mutex;
  std::condition_variable watchdog_cv;
  bool race_done = false;
  bool deadline_expired = false;
  std::optional<std::jthread> watchdog;
  if (deadline_mode || external != nullptr) {
    watchdog.emplace([&] {
      const Clock::time_point hard_deadline =
          deadline_mode
              ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       options.run.deadline_ms))
              : Clock::time_point::max();
      std::unique_lock<std::mutex> lock(watchdog_mutex);
      for (;;) {
        Clock::time_point wake = hard_deadline;
        if (external != nullptr) {
          wake = std::min(wake, Clock::now() + std::chrono::milliseconds(1));
        }
        if (watchdog_cv.wait_until(lock, wake, [&] { return race_done; })) {
          return;  // race finished first
        }
        if (external != nullptr &&
            external->load(std::memory_order_relaxed)) {
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        if (Clock::now() >= hard_deadline) {
          deadline_expired = true;
          stop.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  const Rng base(rng.Next());
  const auto stop_requested = [&] {
    return stop.load(std::memory_order_relaxed) ||
           (external != nullptr &&
            external->load(std::memory_order_relaxed));
  };

  const auto run_strand = [&](int64_t s) {
    StrandState& state = states[s];
    StrandOutcome& outcome = state.outcome;
    if (!outcome.eligible) return;
    const StrandDesc& desc = registry.strands()[s];
    const std::string span_name = "strand." + desc.name;
    StageSpan strand_span(options.run.trace, span_name.c_str());
    const Clock::time_point strand_start = Clock::now();
    Rng strand_rng = base.Fork(desc.rng_stream);

    StrandRunEnv env;
    env.qubo = &qubo;
    env.options = &options;
    env.pool = pool;
    env.stop = &stop;
    env.stop_requested = stop_requested;
    env.request_stop = request_stop;
    env.elapsed_ms = [&start] { return MsSince(start); };
    env.budget = outcome.allocation;
    env.outcome = &outcome;
    env.absorb = [&](const std::vector<int>& assignment, double energy) {
      AbsorbSample(options, start, assignment, energy, state);
      if (MatchesBound(outcome.best_energy, options.lower_bound)) {
        outcome.hit_lower_bound = true;
        request_stop();
      }
    };
    env.publish_assignment = [&state](const std::vector<int>& assignment) {
      state.best_feasible_assignment = assignment;
    };

    desc.run(env, strand_rng);
    outcome.total_ms = MsSince(strand_start);
    if (options.run.metrics != nullptr) {
      // Mirrors StrandOutcome so exported metrics can be checked against
      // PortfolioReport; counter sums are deterministic in sweep-budget
      // mode at every parallelism level.
      const std::string prefix = "portfolio." + desc.name;
      options.run.metrics->Count(
          prefix + ".rounds", static_cast<uint64_t>(outcome.rounds_completed));
      options.run.metrics->Count(
          prefix + ".sweeps", static_cast<uint64_t>(outcome.sweeps_completed));
      options.run.metrics->Observe("portfolio.strand_ms", outcome.total_ms);
    }
  };

  // Execution order: run_first strands (decomp) ahead of the QUBO sweep
  // strands. With threads to spare the order is irrelevant; in a
  // *serial* deadline run it is what keeps the one strand that
  // guarantees a valid large-query plan from being starved by the sweep
  // loops ahead of it. Winner selection below still tie-breaks in
  // registration order, so this never affects results of
  // sweep-budget-bounded races.
  std::vector<int64_t> run_order;
  run_order.reserve(states.size());
  for (int s = 0; s < registry.size(); ++s) {
    if (registry.strands()[s].run_first) run_order.push_back(s);
  }
  for (int s = 0; s < registry.size(); ++s) {
    if (!registry.strands()[s].run_first) run_order.push_back(s);
  }
  ParallelFor(pool, 0, static_cast<int64_t>(run_order.size()),
              [&](int64_t i) { run_strand(run_order[i]); });

  // Retire the watchdog before reading its verdict.
  if (watchdog.has_value()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mutex);
      race_done = true;
    }
    watchdog_cv.notify_all();
    watchdog.reset();  // joins
  }
  result.deadline_expired = deadline_expired;

  // Winner: best (lowest) domain score among feasible strands; strand
  // order breaks ties, so the pick is deterministic.
  for (size_t s = 0; s < states.size(); ++s) {
    const StrandOutcome& outcome = states[s].outcome;
    if (!outcome.feasible) continue;
    if (result.winner < 0 || outcome.best_score < result.best_score) {
      result.winner = static_cast<int>(s);
      result.best_score = outcome.best_score;
      result.best_energy = outcome.best_energy;
      result.best_assignment = states[s].best_feasible_assignment;
    }
  }
  if (result.winner >= 0) {
    states[result.winner].outcome.won = true;
  }
  for (StrandState& state : states) {
    result.strands.push_back(std::move(state.outcome));
  }
  // Race epilogue: fold this race's outcomes into the learned records.
  // Recording never influences *this* race (the selector snapshot was
  // taken at entry), so determinism within a race is unaffected.
  if (records_attached && options.adaptive.record) {
    options.adaptive.records->Record(bucket, result.strands);
    if (options.run.metrics != nullptr) {
      options.run.metrics->GaugeMax(
          "portfolio.adaptive.bucket_trials",
          static_cast<double>(
              options.adaptive.records->BucketTrials(bucket)));
    }
  }
  result.elapsed_ms = MsSince(start);
  return result;
}

StatusOr<PortfolioReport> RunJoPortfolio(const Query& query,
                                         const JoQuboEncoding& encoding,
                                         const PortfolioOptions& options,
                                         Rng& rng) {
  const Clock::time_point start = Clock::now();
  PortfolioReport report;

  PortfolioOptions race_options = options;
  race_options.score =
      [&encoding, &query](const std::vector<int>& bits) -> double {
    const auto order = DecodeSample(encoding.milp, bits);
    if (!order.ok()) return std::numeric_limits<double>::quiet_NaN();
    return Cost(query, *order);
  };
  // The selector and the record store key on the query's feature bucket;
  // computed here because only the JO layer sees the query graph.
  if (race_options.feature_bucket.empty() &&
      (options.adaptive.records != nullptr || options.adaptive.enabled)) {
    race_options.feature_bucket = FeatureBucketKey(ExtractQueryFeatures(
        query, encoding.encoding.qubo.num_variables()));
  }
  // Give the QUBO-level race its query-level strand: past the gate size
  // the decomposition loop is the only strand with a realistic shot at a
  // valid plan (monolithic samples stop decoding), and below it the
  // strand only burns threads the QUBO strands use better.
  if (options.enable_decomp &&
      query.num_relations() >= options.min_decomp_relations) {
    race_options.decomp_run = [&query, &options](
                                  const std::atomic<bool>* stop,
                                  ThreadPool* pool, Rng& strand_rng) {
      DecompOptions local = options.decomp;
      local.solver_kernel = options.solver_kernel;
      local.run.stop = stop;
      local.run.pool = pool;
      local.run.parallelism = options.run.parallelism;
      local.run.trace = options.run.trace;
      local.run.metrics = options.run.metrics;
      // In deadline mode the race budget caps the loop directly (the
      // internal check reacts between window solves, faster than the
      // watchdog's stop token).
      if (options.run.deadline_ms > 0.0) {
        local.run.deadline_ms = options.run.deadline_ms;
      }
      return OptimizeJoinOrderDecomposed(query, local, strand_rng);
    };
  }
  QJO_ASSIGN_OR_RETURN(
      report.race, RaceQuboPortfolio(encoding.encoding.qubo, race_options, rng));

  if (report.race.winner >= 0) {
    const StrandRegistry& registry = options.registry != nullptr
                                         ? *options.registry
                                         : StrandRegistry::Default();
    const StrandOutcome& winner = report.race.strands[report.race.winner];
    const bool publishes_order =
        winner.index >= 0 && winner.index < registry.size() &&
        registry.strands()[winner.index].publishes_order;
    // Order-publishing strands (decomp) hand back the join order itself;
    // QUBO strands publish a bit assignment that decodes through the
    // MILP metadata.
    auto order = publishes_order
                     ? LeftDeepOrder::Create(report.race.best_assignment, query)
                     : DecodeSample(encoding.milp, report.race.best_assignment);
    if (order.ok()) {
      report.found_valid = true;
      report.best_order = *order;
      report.best_cost = report.race.best_score;
      report.winner = winner.name;
    }
  }

  if (!report.found_valid) {
    // Graceful degradation: the DP oracle (exact up to kMaxDpRelations),
    // then the greedy heuristic beyond — a valid join tree regardless of
    // what the race produced.
    auto plan = OptimizeDp(query);
    if (!plan.ok()) plan = OptimizeGreedy(query);
    QJO_RETURN_IF_ERROR(plan.status());
    report.found_valid = true;
    report.best_order = plan->order;
    report.best_cost = plan->cost;
    report.used_classical_fallback = true;
    report.winner = "classical_fallback";
  }
  report.elapsed_ms = MsSince(start);
  return report;
}

std::string PortfolioReport::Summary() const {
  std::ostringstream os;
  os << "portfolio winner: " << winner
     << (used_classical_fallback ? " (fallback)" : "") << ", cost "
     << best_cost << ", " << FormatDouble(elapsed_ms, 2) << " ms";
  if (race.deadline_expired) os << ", deadline expired";
  if (race.adaptive_applied) {
    os << ", adaptive (" << race.feature_bucket << ")";
  }
  if (cache_hits + cache_misses > 0) {
    os << ", cache hit rate " << FormatPercent(cache_hit_rate);
  }
  os << "\n";
  for (const StrandOutcome& s : race.strands) {
    os << "  " << s.name << ": ";
    if (!s.eligible) {
      os << "not eligible\n";
      continue;
    }
    os << s.rounds_completed << " rounds, " << s.sweeps_completed
       << " sweeps, best energy " << s.best_energy;
    if (s.feasible) {
      os << ", cost " << s.best_score << ", incumbent at "
         << FormatDouble(s.time_to_incumbent_ms, 2) << " ms";
    } else {
      os << ", no valid plan";
    }
    os << ", total " << FormatDouble(s.total_ms, 2) << " ms";
    if (s.allocation.throttled) os << ", throttled";
    if (s.hit_lower_bound) os << ", hit lower bound";
    if (s.won) os << " [winner]";
    os << "\n";
  }
  return os.str();
}

}  // namespace qjo

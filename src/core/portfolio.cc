#include "core/portfolio.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/postprocess.h"
#include "jo/classical.h"
#include "qubo/ising.h"
#include "sim/qaoa_analytic.h"
#include "sim/qaoa_simulator.h"
#include "util/strings.h"

namespace qjo {

const char* PortfolioStrandName(PortfolioStrand strand) {
  switch (strand) {
    case PortfolioStrand::kExact:
      return "exact";
    case PortfolioStrand::kSa:
      return "sa";
    case PortfolioStrand::kTabu:
      return "tabu";
    case PortfolioStrand::kSqa:
      return "sqa";
    case PortfolioStrand::kQaoa:
      return "qaoa";
    case PortfolioStrand::kDecomp:
      return "decomp";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Mutable race state of one strand: the published outcome plus the
/// feasible incumbent's assignment. Owned exclusively by the strand's
/// loop body until the ParallelFor join barrier.
struct StrandState {
  StrandOutcome outcome;
  std::vector<int> best_feasible_assignment;
};

/// Tolerance for "incumbent matches the known lower bound".
bool MatchesBound(double energy, double bound) {
  if (std::isnan(bound)) return false;
  return energy <= bound + 1e-9 * std::max(1.0, std::abs(bound));
}

/// Folds one sample into the strand's incumbents. `energy` must be the
/// sample's QUBO energy (offset included) so strands stay comparable.
void AbsorbSample(const PortfolioOptions& options, Clock::time_point start,
                  const std::vector<int>& assignment, double energy,
                  StrandState& state) {
  state.outcome.best_energy = std::min(state.outcome.best_energy, energy);
  double score = energy;
  if (options.score) {
    score = options.score(assignment);
    if (std::isnan(score)) return;  // domain-infeasible sample
  }
  if (!state.outcome.feasible || score < state.outcome.best_score) {
    // The timestamp tracks *material* improvements only: float-level
    // wiggles (common when strands saturate to the same optimum) would
    // otherwise push time-to-incumbent into the wind-down after a
    // deadline expires.
    const bool material =
        !state.outcome.feasible ||
        score < state.outcome.best_score -
                    1e-9 * std::max(1.0, std::abs(score));
    state.outcome.feasible = true;
    state.outcome.best_score = score;
    state.best_feasible_assignment = assignment;
    if (material) state.outcome.time_to_incumbent_ms = MsSince(start);
  }
}

}  // namespace

StatusOr<QuboRaceResult> RaceQuboPortfolio(const Qubo& qubo,
                                           const PortfolioOptions& options,
                                           Rng& rng) {
  const int n = qubo.num_variables();
  if (n == 0) return Status::InvalidArgument("empty QUBO");
  if (options.deadline_ms < 0.0 && options.sweep_budget <= 0) {
    return Status::InvalidArgument(
        "unbounded portfolio: need a deadline or a sweep budget");
  }
  if (options.reads_per_round <= 0 || options.sweeps_per_round <= 0) {
    return Status::InvalidArgument("portfolio round sizes must be positive");
  }

  // Materialise the shared CSR before any fan-out (see Qubo::Csr()).
  qubo.Csr();

  StageSpan race_span(options.trace, "portfolio.race");
  QuboRaceResult result;
  const Clock::time_point start = Clock::now();

  // Fixed strand universe: the vector index doubles as the deterministic
  // winner tie-break and matches the enum (= RNG stream id).
  const PortfolioStrand kStrands[] = {
      PortfolioStrand::kExact, PortfolioStrand::kSa, PortfolioStrand::kTabu,
      PortfolioStrand::kSqa, PortfolioStrand::kQaoa, PortfolioStrand::kDecomp};
  std::vector<StrandState> states(std::size(kStrands));
  for (size_t s = 0; s < std::size(kStrands); ++s) {
    StrandOutcome& outcome = states[s].outcome;
    outcome.strand = kStrands[s];
    switch (kStrands[s]) {
      case PortfolioStrand::kExact:
        outcome.eligible = options.enable_exact &&
                           n <= std::min(options.max_exact_variables, 63);
        break;
      case PortfolioStrand::kSa:
        outcome.eligible = options.enable_sa;
        break;
      case PortfolioStrand::kTabu:
        outcome.eligible = options.enable_tabu;
        break;
      case PortfolioStrand::kSqa:
        outcome.eligible = options.enable_sqa;
        break;
      case PortfolioStrand::kQaoa:
        // The simulator itself refuses above 27 qubits.
        outcome.eligible = options.enable_qaoa &&
                           n <= std::min(options.max_qaoa_variables, 27);
        break;
      case PortfolioStrand::kDecomp:
        // Query-level strand: only runnable through the hook the JO layer
        // installs (the race itself has no Query to decompose).
        outcome.eligible =
            options.enable_decomp && options.decomp_run != nullptr;
        break;
    }
  }

  if (options.deadline_ms == 0.0) {
    // Zero budget: answer immediately with an empty race. The JO layer
    // degrades to the classical plan.
    result.deadline_expired = true;
    for (StrandState& state : states) {
      result.strands.push_back(state.outcome);
    }
    return result;
  }

  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && options.parallelism > 1) {
    local_pool.emplace(options.parallelism);
    pool = &*local_pool;
  }

  std::atomic<bool> stop{false};
  // Early exit (lower-bound hit, exact strand finished) only cancels the
  // race in deadline mode: cancellation truncates other strands at a
  // wall-clock-dependent point, which would break the bit-reproducibility
  // contract of pure sweep-budget runs.
  const bool deadline_mode = options.deadline_ms > 0.0;
  const auto request_stop = [&] {
    if (deadline_mode) stop.store(true, std::memory_order_relaxed);
  };
  // External cancel token (serving-layer deadline, caller shutdown):
  // relayed onto the internal token in any budget mode — a fired token
  // is an unconditional cancel, unlike the opportunistic early exits.
  const std::atomic<bool>* external = options.stop;

  // Deadline watchdog: flips the internal stop token when the wall-clock
  // budget expires or the external cancel token fires, and exits silently
  // when the race finishes first. The external token is polled at 1 ms
  // granularity — the solvers themselves only check between sweeps, so
  // millisecond relay latency is below their own reaction time.
  std::mutex watchdog_mutex;
  std::condition_variable watchdog_cv;
  bool race_done = false;
  bool deadline_expired = false;
  std::optional<std::jthread> watchdog;
  if (deadline_mode || external != nullptr) {
    watchdog.emplace([&] {
      const Clock::time_point hard_deadline =
          deadline_mode
              ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       options.deadline_ms))
              : Clock::time_point::max();
      std::unique_lock<std::mutex> lock(watchdog_mutex);
      for (;;) {
        Clock::time_point wake = hard_deadline;
        if (external != nullptr) {
          wake = std::min(wake, Clock::now() + std::chrono::milliseconds(1));
        }
        if (watchdog_cv.wait_until(lock, wake, [&] { return race_done; })) {
          return;  // race finished first
        }
        if (external != nullptr &&
            external->load(std::memory_order_relaxed)) {
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        if (Clock::now() >= hard_deadline) {
          deadline_expired = true;
          stop.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  const Rng base(rng.Next());
  const auto stop_requested = [&] {
    return stop.load(std::memory_order_relaxed) ||
           (external != nullptr &&
            external->load(std::memory_order_relaxed));
  };

  // Strand span names, indexed by the strand enum (= vector index).
  static constexpr const char* kStrandSpanNames[] = {
      "strand.exact", "strand.sa",   "strand.tabu",
      "strand.sqa",   "strand.qaoa", "strand.decomp"};

  const auto run_strand = [&](int64_t s) {
    StrandState& state = states[s];
    StrandOutcome& outcome = state.outcome;
    if (!outcome.eligible) return;
    StageSpan strand_span(options.trace, kStrandSpanNames[s]);
    const Clock::time_point strand_start = Clock::now();
    Rng strand_rng = base.Fork(static_cast<uint64_t>(outcome.strand));
    const int64_t round_sweeps = static_cast<int64_t>(options.reads_per_round) *
                                 options.sweeps_per_round;
    const auto budget_left = [&] {
      return options.sweep_budget <= 0 ||
             outcome.sweeps_completed < options.sweep_budget;
    };
    const auto absorb = [&](const std::vector<int>& assignment,
                            double energy) {
      AbsorbSample(options, start, assignment, energy, state);
      if (MatchesBound(outcome.best_energy, options.lower_bound)) {
        outcome.hit_lower_bound = true;
        request_stop();
      }
    };

    switch (outcome.strand) {
      case PortfolioStrand::kExact: {
        if (stop_requested()) break;
        auto best = SolveQuboBruteForce(qubo, options.max_exact_variables);
        if (!best.ok()) break;
        absorb(best->assignment, best->energy);
        outcome.rounds_completed = 1;
        outcome.sweeps_completed = int64_t{1} << n;  // states enumerated
        // The exact minimum *is* a proven lower bound: nothing can beat
        // it on energy, so in deadline mode the race ends here.
        outcome.hit_lower_bound = true;
        request_stop();
        break;
      }
      case PortfolioStrand::kSa: {
        SaOptions sa;
        sa.num_reads = options.reads_per_round;
        sa.sweeps_per_read = options.sweeps_per_round;
        sa.kernel = options.solver_kernel;
        sa.control.parallelism = options.parallelism;
        sa.control.pool = pool;
        sa.control.stop = &stop;
        sa.control.trace = options.trace;
        sa.control.metrics = options.metrics;
        while (!stop_requested() && budget_left()) {
          const auto reads = SolveQuboSimulatedAnnealing(qubo, sa, strand_rng);
          for (const QuboSolution& read : reads) {
            absorb(read.assignment, read.energy);
          }
          ++outcome.rounds_completed;
          outcome.sweeps_completed += round_sweeps;
        }
        break;
      }
      case PortfolioStrand::kTabu: {
        TabuOptions tabu;
        tabu.num_restarts = options.reads_per_round;
        tabu.iterations_per_restart = options.sweeps_per_round;
        tabu.kernel = options.solver_kernel;
        tabu.control.parallelism = options.parallelism;
        tabu.control.pool = pool;
        tabu.control.stop = &stop;
        tabu.control.trace = options.trace;
        tabu.control.metrics = options.metrics;
        while (!stop_requested() && budget_left()) {
          const auto restarts = SolveQuboTabuSearch(qubo, tabu, strand_rng);
          for (const QuboSolution& restart : restarts) {
            absorb(restart.assignment, restart.energy);
          }
          ++outcome.rounds_completed;
          outcome.sweeps_completed += round_sweeps;
        }
        break;
      }
      case PortfolioStrand::kSqa: {
        const IsingModel ising = QuboToIsing(qubo);
        SqaOptions sqa = options.sqa;
        sqa.num_reads = options.reads_per_round;
        // One Monte-Carlo sweep per "microsecond" maps the round budget
        // directly onto SQA sweeps (RunSqa clamps to at least 8).
        sqa.annealing_time_us = options.sweeps_per_round;
        sqa.sweeps_per_us = 1.0;
        sqa.kernel = options.solver_kernel;
        sqa.control.parallelism = options.parallelism;
        sqa.control.pool = pool;
        sqa.control.stop = &stop;
        sqa.control.trace = options.trace;
        sqa.control.metrics = options.metrics;
        const int64_t sqa_round_sweeps =
            static_cast<int64_t>(options.reads_per_round) *
            std::max(8, options.sweeps_per_round);
        while (!stop_requested() && budget_left()) {
          auto samples = RunSqa(ising, sqa, strand_rng);
          if (!samples.ok()) break;
          for (const SqaSample& sample : *samples) {
            // ising.Energy(z) == qubo.Energy(SpinsToBits(z)): directly
            // comparable with the other strands.
            absorb(SpinsToBits(sample.spins), sample.energy);
          }
          ++outcome.rounds_completed;
          outcome.sweeps_completed += sqa_round_sweeps;
        }
        break;
      }
      case PortfolioStrand::kQaoa: {
        if (stop_requested()) break;
        const IsingModel ising = QuboToIsing(qubo);
        auto sim = QaoaSimulator::Create(ising);
        if (!sim.ok()) break;
        sim->set_pool(pool);
        const QaoaAngles angles =
            OptimizeQaoaAngles(ising, options.qaoa_iterations, strand_rng);
        QaoaParameters params;
        params.gammas = {angles.gamma};
        params.betas = {angles.beta};
        sim->Run(params);
        const std::vector<uint64_t> raw =
            sim->Sample(options.qaoa_shots, /*fidelity=*/1.0, strand_rng);
        std::vector<int> bits(n);
        for (uint64_t basis : raw) {
          for (int i = 0; i < n; ++i) {
            bits[i] = static_cast<int>((basis >> i) & 1);
          }
          absorb(bits, qubo.Energy(bits));
        }
        outcome.rounds_completed = 1;
        outcome.sweeps_completed = options.qaoa_shots;
        break;
      }
      case PortfolioStrand::kDecomp: {
        if (stop_requested()) break;
        auto decomp = options.decomp_run(&stop, pool, strand_rng);
        if (!decomp.ok()) break;
        // The strand's incumbent is the join order itself; its C_out cost
        // is directly comparable with the other strands' decoded scores.
        // The QUBO energy stays +inf (there is no monolithic sample), so
        // winner selection rests purely on the domain score.
        outcome.feasible = true;
        outcome.best_score = decomp->cost;
        outcome.time_to_incumbent_ms = MsSince(start);
        outcome.rounds_completed = decomp->rounds;
        outcome.sweeps_completed = decomp->windows_solved;
        state.best_feasible_assignment = decomp->order.order();
        break;
      }
    }
    outcome.total_ms = MsSince(strand_start);
    if (options.metrics != nullptr) {
      // Mirrors StrandOutcome so exported metrics can be checked against
      // PortfolioReport; counter sums are deterministic in sweep-budget
      // mode at every parallelism level.
      const std::string prefix =
          std::string("portfolio.") + PortfolioStrandName(outcome.strand);
      options.metrics->Count(
          prefix + ".rounds", static_cast<uint64_t>(outcome.rounds_completed));
      options.metrics->Count(
          prefix + ".sweeps", static_cast<uint64_t>(outcome.sweeps_completed));
      options.metrics->Observe("portfolio.strand_ms", outcome.total_ms);
    }
  };

  // Execution order: decomp first, then the QUBO strands. With threads
  // to spare the order is irrelevant; in a *serial* deadline run it is
  // what keeps the one strand that guarantees a valid large-query plan
  // from being starved by the sweep loops ahead of it. Winner selection
  // below still ties-breaks in enum order, so this never affects results
  // of sweep-budget-bounded races.
  static constexpr int64_t kRunOrder[] = {5, 0, 1, 2, 3, 4};
  static_assert(std::size(kRunOrder) == std::size(kStrandSpanNames));
  ParallelFor(pool, 0, static_cast<int64_t>(states.size()),
              [&](int64_t i) { run_strand(kRunOrder[i]); });

  // Retire the watchdog before reading its verdict.
  if (watchdog.has_value()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mutex);
      race_done = true;
    }
    watchdog_cv.notify_all();
    watchdog.reset();  // joins
  }
  result.deadline_expired = deadline_expired;

  // Winner: best (lowest) domain score among feasible strands; strand
  // order breaks ties, so the pick is deterministic.
  for (size_t s = 0; s < states.size(); ++s) {
    const StrandOutcome& outcome = states[s].outcome;
    if (!outcome.feasible) continue;
    if (result.winner < 0 || outcome.best_score < result.best_score) {
      result.winner = static_cast<int>(s);
      result.best_score = outcome.best_score;
      result.best_energy = outcome.best_energy;
      result.best_assignment = states[s].best_feasible_assignment;
    }
  }
  if (result.winner >= 0) {
    states[result.winner].outcome.won = true;
  }
  for (StrandState& state : states) {
    result.strands.push_back(std::move(state.outcome));
  }
  result.elapsed_ms = MsSince(start);
  return result;
}

StatusOr<PortfolioReport> RunJoPortfolio(const Query& query,
                                         const JoQuboEncoding& encoding,
                                         const PortfolioOptions& options,
                                         Rng& rng) {
  const Clock::time_point start = Clock::now();
  PortfolioReport report;

  PortfolioOptions race_options = options;
  race_options.score =
      [&encoding, &query](const std::vector<int>& bits) -> double {
    const auto order = DecodeSample(encoding.milp, bits);
    if (!order.ok()) return std::numeric_limits<double>::quiet_NaN();
    return Cost(query, *order);
  };
  // Give the QUBO-level race its query-level strand: past the gate size
  // the decomposition loop is the only strand with a realistic shot at a
  // valid plan (monolithic samples stop decoding), and below it the
  // strand only burns threads the QUBO strands use better.
  if (options.enable_decomp &&
      query.num_relations() >= options.min_decomp_relations) {
    race_options.decomp_run = [&query, &options](
                                  const std::atomic<bool>* stop,
                                  ThreadPool* pool, Rng& strand_rng) {
      DecompOptions local = options.decomp;
      local.solver_kernel = options.solver_kernel;
      local.stop = stop;
      local.pool = pool;
      local.parallelism = options.parallelism;
      local.trace = options.trace;
      local.metrics = options.metrics;
      // In deadline mode the race budget caps the loop directly (the
      // internal check reacts between window solves, faster than the
      // watchdog's stop token).
      if (options.deadline_ms > 0.0) local.deadline_ms = options.deadline_ms;
      return OptimizeJoinOrderDecomposed(query, local, strand_rng);
    };
  }
  QJO_ASSIGN_OR_RETURN(
      report.race, RaceQuboPortfolio(encoding.encoding.qubo, race_options, rng));

  if (report.race.winner >= 0) {
    const PortfolioStrand winner_strand =
        report.race.strands[report.race.winner].strand;
    // kDecomp publishes the join order itself; QUBO strands publish a bit
    // assignment that decodes through the MILP metadata.
    auto order = winner_strand == PortfolioStrand::kDecomp
                     ? LeftDeepOrder::Create(report.race.best_assignment, query)
                     : DecodeSample(encoding.milp, report.race.best_assignment);
    if (order.ok()) {
      report.found_valid = true;
      report.best_order = *order;
      report.best_cost = report.race.best_score;
      report.winner = PortfolioStrandName(winner_strand);
    }
  }

  if (!report.found_valid) {
    // Graceful degradation: the DP oracle (exact up to kMaxDpRelations),
    // then the greedy heuristic beyond — a valid join tree regardless of
    // what the race produced.
    auto plan = OptimizeDp(query);
    if (!plan.ok()) plan = OptimizeGreedy(query);
    QJO_RETURN_IF_ERROR(plan.status());
    report.found_valid = true;
    report.best_order = plan->order;
    report.best_cost = plan->cost;
    report.used_classical_fallback = true;
    report.winner = "classical_fallback";
  }
  report.elapsed_ms = MsSince(start);
  return report;
}

std::string PortfolioReport::Summary() const {
  std::ostringstream os;
  os << "portfolio winner: " << winner
     << (used_classical_fallback ? " (fallback)" : "") << ", cost "
     << best_cost << ", " << FormatDouble(elapsed_ms, 2) << " ms";
  if (race.deadline_expired) os << ", deadline expired";
  if (cache_hits + cache_misses > 0) {
    os << ", cache hit rate " << FormatPercent(cache_hit_rate);
  }
  os << "\n";
  for (const StrandOutcome& s : race.strands) {
    os << "  " << PortfolioStrandName(s.strand) << ": ";
    if (!s.eligible) {
      os << "not eligible\n";
      continue;
    }
    os << s.rounds_completed << " rounds, " << s.sweeps_completed
       << " sweeps, best energy " << s.best_energy;
    if (s.feasible) {
      os << ", cost " << s.best_score << ", incumbent at "
         << FormatDouble(s.time_to_incumbent_ms, 2) << " ms";
    } else {
      os << ", no valid plan";
    }
    os << ", total " << FormatDouble(s.total_ms, 2) << " ms";
    if (s.hit_lower_bound) os << ", hit lower bound";
    if (s.won) os << " [winner]";
    os << "\n";
  }
  return os.str();
}

}  // namespace qjo

#ifndef QJO_CORE_PORTFOLIO_H_
#define QJO_CORE_PORTFOLIO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/qubo_cache.h"
#include "decomp/decomp.h"
#include "jo/join_tree.h"
#include "jo/query.h"
#include "obs/obs.h"
#include "qubo/qubo.h"
#include "qubo/solvers.h"
#include "sim/sqa.h"
#include "util/random.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace qjo {

/// Solver strands a portfolio can race. Strand order is fixed (it is the
/// deterministic tie-break for winner selection and the RNG stream id of
/// each strand); kDecomp is appended last so the existing stream ids stay
/// stable.
enum class PortfolioStrand { kExact, kSa, kTabu, kSqa, kQaoa, kDecomp };

const char* PortfolioStrandName(PortfolioStrand strand);

/// Configuration of a portfolio race. Two budget dimensions compose:
///
///  * `deadline_ms` — wall-clock budget. A watchdog flips a shared stop
///    token on expiry; every strand winds down cooperatively (the solvers'
///    new `stop` hooks) and the best incumbent wins. Wall-clock cut-offs
///    are inherently scheduling-dependent, so deadline-bounded runs are
///    *not* bit-reproducible.
///  * `sweep_budget` — total sweeps per strand (SA sweeps summed over
///    reads, tabu iterations summed over restarts, SQA Monte-Carlo sweeps
///    summed over reads). A run bounded only by sweeps (deadline_ms < 0)
///    is bit-identical at every parallelism level: strands fork disjoint
///    RNG streams and never communicate except through the stop token,
///    which stays unset.
struct PortfolioOptions {
  /// > 0: wall-clock budget in milliseconds. 0: zero budget — the race is
  /// skipped entirely (the JO layer answers with the classical fallback).
  /// < 0: no deadline; `sweep_budget` must then be positive.
  double deadline_ms = -1.0;
  /// Total sweeps each strand may spend; 0 = unlimited (requires a
  /// positive deadline). The budget is checked between rounds, so the
  /// last round may run to completion past it.
  int64_t sweep_budget = 4096;

  /// Work per round: every stochastic strand alternates solver rounds of
  /// `reads_per_round` restarts x `sweeps_per_round` sweeps with
  /// incumbent/budget/stop checks. Smaller rounds react faster to the
  /// deadline; larger rounds amortise dispatch overhead.
  int reads_per_round = 4;
  int sweeps_per_round = 64;

  /// Threads shared by the strand fan-out and the solvers' inner read
  /// loops (nested ParallelFor on one pool); results never depend on it.
  int parallelism = 1;
  ThreadPool* pool = nullptr;  ///< optional externally-owned pool

  /// Optional externally-owned cancel token (e.g. a per-request deadline
  /// token armed with the serving layer's DeadlineMonitor). When it
  /// fires, the race relays it onto its internal stop token — in *any*
  /// budget mode — and every strand winds down exactly as on deadline
  /// expiry (the incumbent so far wins; the JO layer still guarantees a
  /// plan). While the token stays unset it never influences the race, so
  /// sweep-budget runs remain bit-reproducible; once it fires, results
  /// are truncation-dependent like any wall-clock cut-off.
  const std::atomic<bool>* stop = nullptr;

  /// Observability sinks (null-sink default, not owned). When attached,
  /// the race records one span per strand (plus the nested solver-call
  /// and per-read spans via SolverControl) and publishes per-strand
  /// round/sweep counters that mirror StrandOutcome. Never affects
  /// results: recorded races are bit-identical to unrecorded ones.
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  // --- Strand selection. ---
  bool enable_exact = true;
  bool enable_sa = true;
  bool enable_tabu = true;
  bool enable_sqa = true;
  bool enable_qaoa = true;
  /// The exact (Gray-code brute force) strand only joins the race for
  /// instances of at most this many variables.
  int max_exact_variables = 20;
  /// Likewise for the QAOA-simulator strand (2^n amplitudes + spectrum).
  int max_qaoa_variables = 20;
  int qaoa_shots = 128;
  int qaoa_iterations = 10;
  /// Inner-loop kernel every stochastic strand dispatches to (SA and SQA
  /// rounds plus the decomp strand's sub-solves; tabu treats kBatched as
  /// its incremental kernel). kBatched is bit-identical to kIncremental.
  SolverKernel solver_kernel = SolverKernel::kBatched;
  /// Template for the SQA strand (trotter slices, temperatures, ICE
  /// noise). num_reads, the sweep schedule, parallelism/pool/stop are
  /// overridden per round.
  SqaOptions sqa;

  /// The decomposition strand (large-neighborhood search over the join
  /// order, src/decomp) is the only strand that does not attack the
  /// monolithic QUBO, so it is the one that still returns valid plans
  /// for 30-50 relation queries. RunJoPortfolio enables it for queries
  /// of at least `min_decomp_relations` relations; RaceQuboPortfolio
  /// alone cannot run it (it only sees the QUBO) and treats the strand
  /// as ineligible unless `decomp_run` is installed.
  bool enable_decomp = true;
  int min_decomp_relations = 10;
  /// Template for the strand's decomposition loop. pool/stop/trace/
  /// metrics and (in deadline mode) the deadline are overridden by the
  /// race; `cache` should point at the pipeline's shared build cache.
  DecompOptions decomp;
  /// Internal: installed by RunJoPortfolio to give the QUBO-level race a
  /// query-level strand. Receives the race's stop token, shared pool and
  /// the strand's forked RNG stream. Null = strand ineligible.
  std::function<StatusOr<DecompReport>(const std::atomic<bool>*, ThreadPool*,
                                       Rng&)>
      decomp_run;

  /// Known lower bound on the QUBO energy (e.g. from a previous exact
  /// solve of the same fingerprint). In deadline mode a strand whose
  /// incumbent reaches it stops the whole race; in pure sweep-budget mode
  /// it is only recorded (stopping on a wall-clock event would break
  /// bit-reproducibility). NaN = unknown.
  double lower_bound = std::numeric_limits<double>::quiet_NaN();

  /// Optional domain scorer, called on every sample a strand produces:
  /// returns the domain objective (lower is better — e.g. the C_out cost
  /// of the decoded join order) or NaN when the sample is infeasible in
  /// the domain. Null = every sample is feasible with score = QUBO
  /// energy. Must be thread-safe: strands call it concurrently.
  std::function<double(const std::vector<int>&)> score;
};

/// Per-strand outcome statistics of one race.
struct StrandOutcome {
  PortfolioStrand strand = PortfolioStrand::kSa;
  /// False when the strand was disabled or the instance exceeded its size
  /// gate; such strands report zero rounds and never win.
  bool eligible = false;
  int rounds_completed = 0;
  int64_t sweeps_completed = 0;
  /// Best QUBO energy over every sample the strand produced.
  double best_energy = std::numeric_limits<double>::infinity();
  /// True once the strand produced a domain-feasible sample.
  bool feasible = false;
  /// Domain score of the feasible incumbent (NaN while infeasible).
  double best_score = std::numeric_limits<double>::quiet_NaN();
  /// Wall time from race start to the last *material* improvement of the
  /// feasible incumbent (relative 1e-9; float-level wiggles don't reset
  /// the clock).
  double time_to_incumbent_ms = 0.0;
  double total_ms = 0.0;
  /// The strand matched the known lower bound (or, for the exact strand,
  /// proved the optimum) and triggered the early exit.
  bool hit_lower_bound = false;
  bool won = false;
};

/// Result of a QUBO-level portfolio race.
struct QuboRaceResult {
  /// Feasible incumbent of the winning strand; empty when no strand
  /// produced a feasible sample (the JO layer then degrades to the
  /// classical plan). For the QUBO strands this is a bit assignment; when
  /// kDecomp wins it is the join-order permutation itself (the strand
  /// never touches the monolithic QUBO).
  std::vector<int> best_assignment;
  double best_energy = std::numeric_limits<double>::infinity();
  double best_score = std::numeric_limits<double>::quiet_NaN();
  int winner = -1;  ///< index into `strands`; -1 = no feasible strand
  std::vector<StrandOutcome> strands;
  double elapsed_ms = 0.0;
  bool deadline_expired = false;
};

/// Races the configured strands on one QUBO over the shared pool. Each
/// strand runs on its own forked RNG stream (stream id = strand enum
/// value), so a sweep-budget-bounded race is bit-identical at every
/// parallelism level. The winner is the strand with the best (lowest)
/// domain score, ties broken by strand order. Fails on an empty QUBO or
/// when neither budget dimension bounds the run.
StatusOr<QuboRaceResult> RaceQuboPortfolio(const Qubo& qubo,
                                           const PortfolioOptions& options,
                                           Rng& rng);

/// Everything the JO layer learned from one portfolio run.
struct PortfolioReport {
  /// Always true on a successful run: when no strand produced a valid
  /// join tree (or the budget was zero), the classical fallback plan is
  /// returned instead.
  bool found_valid = false;
  LeftDeepOrder best_order;
  double best_cost = 0.0;
  /// The plan came from the classical DP/greedy baseline, not a strand.
  bool used_classical_fallback = false;
  /// Name of the winning strand, or "classical_fallback".
  std::string winner;
  QuboRaceResult race;
  /// QUBO-build cache counters (filled by the pipeline owner when a cache
  /// is attached; zero otherwise).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  double elapsed_ms = 0.0;

  std::string Summary() const;
};

/// Runs a deadline-aware portfolio race for one join-ordering query on
/// its prebuilt encoding: strands race on the QUBO, samples are decoded
/// through the MILP metadata, the winner is the valid join order with the
/// lowest C_out cost, and when the race yields no valid plan (or
/// deadline_ms == 0) the classical DP baseline (greedy beyond the DP size
/// limit) supplies one — a valid join tree is always returned.
StatusOr<PortfolioReport> RunJoPortfolio(const Query& query,
                                         const JoQuboEncoding& encoding,
                                         const PortfolioOptions& options,
                                         Rng& rng);

}  // namespace qjo

#endif  // QJO_CORE_PORTFOLIO_H_

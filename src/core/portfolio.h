#ifndef QJO_CORE_PORTFOLIO_H_
#define QJO_CORE_PORTFOLIO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "core/qubo_cache.h"
#include "decomp/decomp.h"
#include "jo/join_tree.h"
#include "jo/query.h"
#include "obs/obs.h"
#include "qubo/qubo.h"
#include "qubo/solvers.h"
#include "sim/sqa.h"
#include "util/random.h"
#include "util/run_context.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace qjo {

class RunRecordStore;  // core/strand_select.h
struct PortfolioOptions;
struct StrandOutcome;

/// Budget granted to one strand for one race. In a fixed (non-adaptive
/// or cold-start) race every strand receives the race-wide base budgets;
/// in an adaptive race the selector throttles deprioritised round-based
/// strands by dividing their restarts and total sweep budget — strands
/// are throttled, never removed, so the classical-fallback guarantee and
/// every eligibility rule are untouched.
struct StrandBudget {
  int reads_per_round = 0;
  int sweeps_per_round = 0;
  /// Total sweeps the strand may spend; 0 = unlimited (deadline-bounded).
  int64_t sweep_budget = 0;
  /// The selector deprioritised this strand (budgets above are divided).
  bool throttled = false;
};

/// Adaptive strand selection (see core/strand_select.h). The selector is
/// a per-feature-bucket UCB1 bandit over the registered strands, fed by
/// a persistent RunRecordStore of per-strand win/time-to-incumbent
/// events. Decisions are a pure function of (records snapshot, feature
/// bucket, round index) — never wall clock — so adaptive sweep-budget
/// races keep the bit-reproducibility contract at any parallelism.
struct AdaptiveOptions {
  /// Master switch for budget shaping. Off (default): every strand runs
  /// at full budget — byte-for-byte today's fixed race.
  bool enabled = false;
  /// Learned per-bucket run records the selector consults and (when
  /// `record` is set) updates at race epilogue. Externally owned,
  /// thread-safe. Null = permanent cold start: full budgets everywhere,
  /// nothing recorded.
  RunRecordStore* records = nullptr;
  /// Record this race's strand outcomes into `records` at epilogue.
  /// Learning can stay on while `enabled` is off, to warm a records
  /// store from fixed races.
  bool record = true;
  /// Cold-start prior: a bucket needs at least this many recorded races
  /// before the selector shapes budgets; below the threshold the race is
  /// bit-identical to the fixed-order race.
  uint64_t min_bucket_trials = 8;
  /// Divisor applied to a deprioritised strand's reads_per_round and
  /// total sweep budget (clamped so at least one round always runs).
  int throttle_divisor = 4;
};

/// Everything a strand's run hook sees during a race. Hooks run
/// concurrently with each other; a hook may only touch its own
/// `outcome`, must report every sample through `absorb`, and should
/// check `stop_requested` between units of work.
struct StrandRunEnv {
  const Qubo* qubo = nullptr;
  const PortfolioOptions* options = nullptr;
  /// Shared pool for the strand's inner loops (null = serial).
  ThreadPool* pool = nullptr;
  /// The race's internal stop token (armed by the deadline watchdog and
  /// the early-exit paths); wire into SolverControl::stop.
  const std::atomic<bool>* stop = nullptr;
  /// True once the strand should wind down (the internal token or the
  /// caller's external cancel token fired).
  std::function<bool()> stop_requested;
  /// Requests the race-wide early exit (a proven optimum / lower-bound
  /// hit). Honoured in deadline mode only: cancelling sweep-budget races
  /// on a wall-clock event would break bit-reproducibility.
  std::function<void()> request_stop;
  /// Milliseconds since race start (for one-shot strands that stamp
  /// their own time_to_incumbent; `absorb` stamps it for the others).
  std::function<double()> elapsed_ms;
  /// Folds one sample into the strand's incumbents; `energy` must be the
  /// sample's QUBO energy (offset included) so strands stay comparable.
  /// Call only from the hook's own thread.
  std::function<void(const std::vector<int>& assignment, double energy)>
      absorb;
  /// Publishes the strand's incumbent verbatim, bypassing the domain
  /// scorer — for `publishes_order` strands whose incumbent is a join
  /// order, not a QUBO sample (the hook must set the outcome's
  /// feasible/best_score fields itself).
  std::function<void(const std::vector<int>& assignment)> publish_assignment;
  /// The budget granted to this strand (full budgets in a fixed race).
  StrandBudget budget;
  /// The outcome slot the hook must keep current
  /// (rounds_completed/sweeps_completed); `absorb` maintains the
  /// incumbent fields.
  StrandOutcome* outcome = nullptr;
};

/// One registered solver strand. The registration index doubles as the
/// strand's RNG stream id and the deterministic winner tie-break, so
/// registration order is part of the reproducibility contract.
struct StrandDesc {
  /// Unique lowercase identifier; also the metrics prefix
  /// ("portfolio.<name>.*"), the trace span suffix ("strand.<name>")
  /// and the records-store key.
  std::string name;
  /// RNG stream forked off the race seed; assigned by
  /// StrandRegistry::Register as the registration index — the built-in
  /// strands keep the stream ids of the pre-registry enum (exact=0,
  /// sa=1, tabu=2, sqa=3, qaoa=4, decomp=5).
  uint64_t rng_stream = 0;
  /// Round-based strands accept selector throttling; one-shot strands
  /// (exact, qaoa, decomp) always run at full budget.
  bool throttleable = false;
  /// Runs before the other strands in the serial fan-out. Set for the
  /// decomp strand: in a serial deadline race it is what keeps the one
  /// strand that guarantees a valid large-query plan from being starved
  /// by the sweep loops ahead of it. Never affects sweep-budget results.
  bool run_first = false;
  /// The strand publishes a join-order permutation instead of a QUBO bit
  /// assignment (the decomp strand); RunJoPortfolio decodes accordingly.
  bool publishes_order = false;
  /// Eligibility for one race; ineligible strands report zero rounds and
  /// never win. Null = always eligible.
  std::function<bool(const Qubo& qubo, const PortfolioOptions& options)>
      eligible;
  /// The strand body. `rng` is the strand's private forked stream.
  std::function<void(const StrandRunEnv& env, Rng& rng)> run;
};

/// The strand universe of a race. Replaces the hard-coded PortfolioStrand
/// enum fan-out: built-in and external strands (the decomp strand, future
/// backends) register into one table that fixes names, RNG streams, the
/// execution order and the winner tie-break.
class StrandRegistry {
 public:
  /// The built-in strand set in canonical order: exact, sa, tabu, sqa,
  /// qaoa, decomp. Indices — and hence RNG streams, tie-breaks and every
  /// sweep-budget race result — are identical to the pre-registry enum.
  static const StrandRegistry& Default();

  StrandRegistry() = default;

  /// Appends a strand. `desc.rng_stream` is overwritten with the
  /// registration index so streams stay disjoint and stable. Fails on an
  /// empty, duplicate, or whitespace-bearing name.
  Status Register(StrandDesc desc);

  const std::vector<StrandDesc>& strands() const { return strands_; }
  int size() const { return static_cast<int>(strands_.size()); }
  /// Index of `name`; -1 when absent.
  int IndexOf(std::string_view name) const;
  /// Names in registration order (the selector's arm universe).
  std::vector<std::string> Names() const;

 private:
  std::vector<StrandDesc> strands_;
};

/// Configuration of a portfolio race. Two budget dimensions compose:
///
///  * `run.deadline_ms` — wall-clock budget. A watchdog flips a shared
///    stop token on expiry; every strand winds down cooperatively (the
///    solvers' `stop` hooks) and the best incumbent wins. Wall-clock
///    cut-offs are inherently scheduling-dependent, so deadline-bounded
///    runs are *not* bit-reproducible.
///  * `sweep_budget` — total sweeps per strand (SA sweeps summed over
///    reads, tabu iterations summed over restarts, SQA Monte-Carlo sweeps
///    summed over reads). A run bounded only by sweeps (deadline_ms < 0)
///    is bit-identical at every parallelism level: strands fork disjoint
///    RNG streams and never communicate except through the stop token,
///    which stays unset.
///
/// An unbounded configuration — `sweep_budget == 0` (or negative) with
/// `run.deadline_ms < 0` — is rejected with InvalidArgument by the one
/// entry validation (ValidatePortfolioOptions); no strand ever performs
/// its own ad-hoc budget checks.
struct PortfolioOptions {
  /// Deadline, threads/pool, cancel token and observability sinks shared
  /// with the other orchestration layers (see util/run_context.h for the
  /// per-field contracts). `run.deadline_ms` keeps the historical race
  /// semantics: > 0 wall-clock budget, 0 = skip the race entirely (the
  /// JO layer answers with the classical fallback), < 0 = no deadline
  /// (`sweep_budget` must then be positive).
  RunContext run;

  /// Total sweeps each strand may spend; 0 = unlimited (requires a
  /// positive deadline). The budget is checked between rounds, so the
  /// last round may run to completion past it.
  int64_t sweep_budget = 4096;

  /// Work per round: every stochastic strand alternates solver rounds of
  /// `reads_per_round` restarts x `sweeps_per_round` sweeps with
  /// incumbent/budget/stop checks. Smaller rounds react faster to the
  /// deadline; larger rounds amortise dispatch overhead. Must be
  /// positive (ValidatePortfolioOptions).
  int reads_per_round = 4;
  int sweeps_per_round = 64;

  /// The strand universe; null = StrandRegistry::Default(). Externally
  /// owned and immutable for the duration of the race.
  const StrandRegistry* registry = nullptr;

  /// Adaptive budget shaping (off by default) and the feature-bucket key
  /// the selector learns under. RunJoPortfolio fills `feature_bucket`
  /// from the query graph (core/strand_select.h); direct
  /// RaceQuboPortfolio callers may set it themselves — when left empty a
  /// QUBO-size-only fallback bucket is used.
  AdaptiveOptions adaptive;
  std::string feature_bucket;

  // --- Strand selection. ---
  bool enable_exact = true;
  bool enable_sa = true;
  bool enable_tabu = true;
  bool enable_sqa = true;
  bool enable_qaoa = true;
  /// The exact (Gray-code brute force) strand only joins the race for
  /// instances of at most this many variables.
  int max_exact_variables = 20;
  /// Likewise for the QAOA-simulator strand (2^n amplitudes + spectrum).
  int max_qaoa_variables = 20;
  int qaoa_shots = 128;
  int qaoa_iterations = 10;
  /// Inner-loop kernel every stochastic strand dispatches to (SA and SQA
  /// rounds plus the decomp strand's sub-solves; tabu treats kBatched as
  /// its incremental kernel). kBatched is bit-identical to kIncremental.
  SolverKernel solver_kernel = SolverKernel::kBatched;
  /// Template for the SQA strand (trotter slices, temperatures, ICE
  /// noise). num_reads, the sweep schedule, parallelism/pool/stop are
  /// overridden per round.
  SqaOptions sqa;

  /// The decomposition strand (large-neighborhood search over the join
  /// order, src/decomp) is the only strand that does not attack the
  /// monolithic QUBO, so it is the one that still returns valid plans
  /// for 30-50 relation queries. RunJoPortfolio enables it for queries
  /// of at least `min_decomp_relations` relations; RaceQuboPortfolio
  /// alone cannot run it (it only sees the QUBO) and treats the strand
  /// as ineligible unless `decomp_run` is installed.
  bool enable_decomp = true;
  int min_decomp_relations = 10;
  /// Template for the strand's decomposition loop. run.pool/stop/trace/
  /// metrics and (in deadline mode) the deadline are overridden by the
  /// race; `cache` should point at the pipeline's shared build cache.
  DecompOptions decomp;
  /// Internal: installed by RunJoPortfolio to give the QUBO-level race a
  /// query-level strand. Receives the race's stop token, shared pool and
  /// the strand's forked RNG stream. Null = strand ineligible.
  std::function<StatusOr<DecompReport>(const std::atomic<bool>*, ThreadPool*,
                                       Rng&)>
      decomp_run;

  /// Known lower bound on the QUBO energy (e.g. from a previous exact
  /// solve of the same fingerprint). In deadline mode a strand whose
  /// incumbent reaches it stops the whole race; in pure sweep-budget mode
  /// it is only recorded (stopping on a wall-clock event would break
  /// bit-reproducibility). NaN = unknown.
  double lower_bound = std::numeric_limits<double>::quiet_NaN();

  /// Optional domain scorer, called on every sample a strand produces:
  /// returns the domain objective (lower is better — e.g. the C_out cost
  /// of the decoded join order) or NaN when the sample is infeasible in
  /// the domain. Null = every sample is feasible with score = QUBO
  /// energy. Must be thread-safe: strands call it concurrently.
  std::function<double(const std::vector<int>&)> score;
};

/// The single entry validation of a race configuration: RunContext
/// invariants, positive round sizes, and the budget rule (`sweep_budget
/// <= 0` together with `run.deadline_ms < 0` is an unbounded race and is
/// rejected here — not ad-hoc per strand). RaceQuboPortfolio calls this
/// first; exposed so config builders can validate early.
Status ValidatePortfolioOptions(const PortfolioOptions& options);

/// Per-strand outcome statistics of one race.
struct StrandOutcome {
  /// Registry name ("exact", "sa", "tabu", "sqa", "qaoa", "decomp", or a
  /// custom strand's name) and registration index (= RNG stream id and
  /// winner tie-break rank).
  std::string name;
  int index = -1;
  /// False when the strand was disabled or the instance exceeded its size
  /// gate; such strands report zero rounds and never win.
  bool eligible = false;
  /// The budget the selector granted this strand (full budgets whenever
  /// adaptive shaping was off or cold).
  StrandBudget allocation;
  int rounds_completed = 0;
  int64_t sweeps_completed = 0;
  /// Best QUBO energy over every sample the strand produced.
  double best_energy = std::numeric_limits<double>::infinity();
  /// True once the strand produced a domain-feasible sample.
  bool feasible = false;
  /// Domain score of the feasible incumbent (NaN while infeasible).
  double best_score = std::numeric_limits<double>::quiet_NaN();
  /// Wall time from race start to the last *material* improvement of the
  /// feasible incumbent (relative 1e-9; float-level wiggles don't reset
  /// the clock).
  double time_to_incumbent_ms = 0.0;
  /// Sweeps the strand had completed when that incumbent landed
  /// (round-granular, hence deterministic in sweep-budget mode — the
  /// wall-clock twin above is not).
  int64_t sweeps_to_incumbent = 0;
  double total_ms = 0.0;
  /// The strand matched the known lower bound (or, for the exact strand,
  /// proved the optimum) and triggered the early exit.
  bool hit_lower_bound = false;
  bool won = false;
};

/// Result of a QUBO-level portfolio race.
struct QuboRaceResult {
  /// Feasible incumbent of the winning strand; empty when no strand
  /// produced a feasible sample (the JO layer then degrades to the
  /// classical plan). For the QUBO strands this is a bit assignment;
  /// when a `publishes_order` strand (decomp) wins it is the join-order
  /// permutation itself.
  std::vector<int> best_assignment;
  double best_energy = std::numeric_limits<double>::infinity();
  double best_score = std::numeric_limits<double>::quiet_NaN();
  int winner = -1;  ///< index into `strands`; -1 = no feasible strand
  std::vector<StrandOutcome> strands;
  /// The feature bucket the race keyed its records under (empty when no
  /// adaptive records were attached).
  std::string feature_bucket;
  /// The selector shaped budgets this race (false on cold start or when
  /// adaptive mode was off).
  bool adaptive_applied = false;
  double elapsed_ms = 0.0;
  bool deadline_expired = false;
};

/// Races the registered strands on one QUBO over the shared pool. Each
/// strand runs on its own forked RNG stream (stream id = registration
/// index), so a sweep-budget-bounded race is bit-identical at every
/// parallelism level — with adaptive shaping on as well, since budget
/// allocations are a pure function of the records snapshot taken at
/// entry. The winner is the strand with the best (lowest) domain score,
/// ties broken by registration order. Fails on an empty QUBO or an
/// invalid configuration (ValidatePortfolioOptions).
StatusOr<QuboRaceResult> RaceQuboPortfolio(const Qubo& qubo,
                                           const PortfolioOptions& options,
                                           Rng& rng);

/// Everything the JO layer learned from one portfolio run.
struct PortfolioReport {
  /// Always true on a successful run: when no strand produced a valid
  /// join tree (or the budget was zero), the classical fallback plan is
  /// returned instead.
  bool found_valid = false;
  LeftDeepOrder best_order;
  double best_cost = 0.0;
  /// The plan came from the classical DP/greedy baseline, not a strand.
  bool used_classical_fallback = false;
  /// Name of the winning strand, or "classical_fallback".
  std::string winner;
  QuboRaceResult race;
  /// QUBO-build cache counters (filled by the pipeline owner when a cache
  /// is attached; zero otherwise).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  double elapsed_ms = 0.0;

  std::string Summary() const;
};

/// Runs a deadline-aware portfolio race for one join-ordering query on
/// its prebuilt encoding: strands race on the QUBO, samples are decoded
/// through the MILP metadata, the winner is the valid join order with the
/// lowest C_out cost, and when the race yields no valid plan (or
/// deadline_ms == 0) the classical DP baseline (greedy beyond the DP size
/// limit) supplies one — a valid join tree is always returned. When
/// adaptive records are attached, the query's feature bucket is computed
/// here and the race outcomes are recorded at epilogue.
StatusOr<PortfolioReport> RunJoPortfolio(const Query& query,
                                         const JoQuboEncoding& encoding,
                                         const PortfolioOptions& options,
                                         Rng& rng);

}  // namespace qjo

#endif  // QJO_CORE_PORTFOLIO_H_

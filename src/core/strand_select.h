#ifndef QJO_CORE_STRAND_SELECT_H_
#define QJO_CORE_STRAND_SELECT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/portfolio.h"
#include "jo/query.h"
#include "util/status.h"
#include "util/statusor.h"

namespace qjo {

/// Adaptive strand selection for the portfolio race (ROADMAP:
/// "observability-driven adaptive portfolio"). Three pieces compose:
///
///  1. A *feature extractor* maps a query graph to a deterministic
///     feature bucket: relation count, graph class (degree profile),
///     predicate density, QUBO variable count.
///  2. A *RunRecordStore* accumulates per-strand win /
///     time-to-incumbent / sweeps-to-incumbent events keyed by feature
///     bucket, fed from StrandOutcome at race epilogue and persisted to
///     a versioned text format so knowledge survives restarts.
///  3. A *StrandSelector* — a per-bucket UCB1 bandit over the registered
///     strands — allocates each strand's reads/sweeps budget share:
///     deprioritised strands are throttled, never removed.
///
/// Replay determinism: every selector decision is a pure function of
/// (records snapshot, feature bucket, round index) — never wall clock —
/// so a sweep-budget race with a fixed records file is bit-identical at
/// any parallelism.

// --- Feature extraction. ---

/// Deterministic features of one join-ordering instance.
struct QueryFeatures {
  int relations = 0;
  /// Degree-profile classification of the join graph: "chain", "star",
  /// "cycle", "clique", or the density fallbacks "sparse" / "dense".
  std::string graph_class;
  /// Join predicates relative to the complete graph: m / C(n, 2).
  double predicate_density = 0.0;
  /// Logical QUBO variables of the instance's encoding.
  int qubo_variables = 0;
};

QueryFeatures ExtractQueryFeatures(const Query& query, int qubo_variables);

/// Collapses features into the bucket key the record store and selector
/// operate on, e.g. "r8-15|star|d1|q64-127". Relation and variable
/// counts land in power-of-two ranges, density in quartiles, so one
/// bucket aggregates instances the portfolio treats alike. Keys never
/// contain whitespace (the records file is token-separated).
std::string FeatureBucketKey(const QueryFeatures& features);

/// Bucket for a bare QUBO when no query-level features are available
/// (direct RaceQuboPortfolio callers): variable-count range only.
std::string FallbackBucketKey(int qubo_variables);

// --- Run records. ---

/// Accumulated outcomes of one strand within one feature bucket.
struct StrandRecord {
  uint64_t trials = 0;    ///< races in which the strand was eligible
  uint64_t wins = 0;      ///< races the strand won
  uint64_t feasible = 0;  ///< trials that produced a feasible plan
  /// Summed over feasible trials (averages = sum / feasible).
  double time_to_incumbent_ms = 0.0;
  double sweeps_to_incumbent = 0.0;
};

/// Thread-safe per-bucket, per-strand record store. The portfolio race
/// feeds it at epilogue (AdaptiveOptions::records); the serving layer
/// persists it across restarts next to the plan-cache warm-up file.
class RunRecordStore {
 public:
  /// Folds one race's outcomes into `bucket` (ineligible strands are
  /// skipped; they carry no signal).
  void Record(const std::string& bucket,
              const std::vector<StrandOutcome>& strands);

  /// Record of (bucket, strand); zeroes when never seen.
  StrandRecord Get(const std::string& bucket,
                   const std::string& strand) const;
  /// Races recorded into `bucket` (the bandit's total trial count).
  uint64_t BucketTrials(const std::string& bucket) const;
  std::vector<std::string> Buckets() const;
  size_t NumBuckets() const;

  /// Versioned text round-trip. Serialize() is deterministic (sorted
  /// buckets/strands, fixed float formatting), so
  /// Serialize -> Deserialize -> Serialize is byte-stable.
  ///
  /// Format, one record per line after the header:
  ///   qjo-strand-records v1
  ///   <bucket> <races>
  ///   <bucket> <strand> <trials> <wins> <feasible> <tti_ms> <sweeps>
  std::string Serialize() const;
  /// Replaces the store's contents; fails on a bad header or a malformed
  /// line (the store is left empty in that case).
  Status Deserialize(const std::string& text);

  /// File round-trip (analogous to the serving layer's plan-cache
  /// warm-up file). SaveRecords writes Serialize() atomically enough for
  /// single-writer use; LoadRecords fails with NotFound on a missing
  /// file so callers can treat first runs as a cold start.
  Status SaveRecords(const std::string& path) const;
  Status LoadRecords(const std::string& path);

 private:
  mutable std::mutex mutex_;
  /// bucket -> races recorded.
  std::map<std::string, uint64_t> races_;
  /// bucket -> strand -> record. std::map keeps serialization sorted.
  std::map<std::string, std::map<std::string, StrandRecord>> records_;
};

// --- Selection. ---

/// Per-bucket UCB1 bandit over the registered strands. Construction
/// takes an immutable snapshot of the records for one bucket; every
/// later call is const and wall-clock-free, which is what makes adaptive
/// races replayable and bit-identical at any parallelism.
class StrandSelector {
 public:
  /// `strand_names` is the registry's arm universe in registration
  /// order. A null store, an unknown bucket, or fewer than
  /// `options.min_bucket_trials` recorded races put the selector in
  /// cold-start mode: Allocate() then returns the full base budget for
  /// every strand — the fixed-order race.
  StrandSelector(const RunRecordStore* records, const std::string& bucket,
                 std::vector<std::string> strand_names,
                 const AdaptiveOptions& options);

  bool cold_start() const { return cold_start_; }

  /// UCB1 score of arm `strand`: win-rate mean + sqrt(2 ln N / n_i)
  /// exploration bonus; +inf for an arm the bucket never tried (optimism
  /// under uncertainty). Meaningless (0) in cold-start mode.
  double UcbScore(int strand) const;

  /// True when the bandit deprioritises `strand`: the arm ranks in the
  /// lower half of the throttleable arms by UCB score (ties broken by
  /// index, so the ranking is deterministic). Non-throttleable strands
  /// are never throttled.
  bool Throttled(int strand, bool throttleable) const;

  /// The budget granted to `strand` for `round`, given the race-wide
  /// base budgets. Pure function of the construction-time snapshot and
  /// its arguments: full budgets in cold start, divided reads and total
  /// sweep budget (never below one round) for throttled strands.
  StrandBudget Allocate(int strand, int round, bool throttleable,
                        int reads_per_round, int sweeps_per_round,
                        int64_t sweep_budget) const;

 private:
  std::vector<std::string> names_;
  std::vector<StrandRecord> snapshot_;
  uint64_t bucket_trials_ = 0;
  bool cold_start_ = true;
  int throttle_divisor_ = 4;
  std::vector<bool> throttled_;  ///< rank verdict per arm (throttleable)
};

}  // namespace qjo

#endif  // QJO_CORE_STRAND_SELECT_H_

#ifndef QJO_CORE_QUBO_CACHE_H_
#define QJO_CORE_QUBO_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "jo/query.h"
#include "lp/bilp.h"
#include "lp/jo_encoder.h"
#include "qubo/bilp_to_qubo.h"
#include "util/statusor.h"

namespace qjo {

/// Everything the JO -> MILP -> BILP -> QUBO pipeline (Sec. 3) produces
/// for one query: the decode metadata (milp), the constraint bookkeeping
/// (bilp) and the QUBO with its CSR view already materialised — so an
/// entry can be shared read-only across threads without touching the lazy
/// CSR rebuild path.
struct JoQuboEncoding {
  JoMilpModel milp;
  BilpModel bilp;
  QuboEncoding encoding;
};

/// The QjoConfig slice that determines the encoding pipeline's output.
struct JoEncodingOptions {
  /// Cardinality threshold values; empty = geometric defaults derived
  /// from the query (MakeGeometricThresholds).
  std::vector<double> thresholds;
  int num_thresholds = 1;  ///< used when `thresholds` is empty
  double omega = 1.0;      ///< discretisation precision
};

/// Runs the MILP -> BILP -> QUBO pipeline once, outside any cache. The
/// returned entry has its CSR built, so concurrent readers are safe.
StatusOr<std::shared_ptr<const JoQuboEncoding>> BuildJoQuboEncoding(
    const Query& query, const JoEncodingOptions& options);

/// Fingerprint of (query, options) over every input of the encoding
/// pipeline: relation cardinalities, predicates (endpoints and
/// selectivity), the *resolved* threshold grid, and omega — doubles are
/// keyed bit-exactly, so no two distinct encodings can collide. Relation
/// names are deliberately excluded (they never influence the encoding),
/// and an explicit threshold vector equal to the geometric defaults maps
/// to the same key as the defaults themselves.
std::string JoEncodingFingerprint(const Query& query,
                                  const JoEncodingOptions& options);

/// Memoizing, thread-safe cache of encoding pipeline results keyed by
/// JoEncodingFingerprint: repeated or batched queries skip the MILP ->
/// BILP -> QUBO rebuild and share one immutable entry. Failures are never
/// cached. When an insert would exceed `max_entries`, exactly the
/// least-recently-used entry is evicted (entries already handed out stay
/// alive through their shared_ptr); a lookup that finds the key already
/// present never evicts anything. Eviction counts are surfaced in Stats
/// so a workload that thrashes the cache (e.g. a decomposition loop whose
/// window shapes exceed the capacity) is visible instead of silent.
///
/// Builds are single-flight: a miss that lands while another thread is
/// already building the same key waits for that build and shares its
/// result instead of encoding a duplicate — with the serving layer
/// pointing every request at one shared cache, concurrent requests can
/// never build the same QUBO twice. Waiters are counted as hits (they
/// reused a build) plus `coalesced_builds`; a failed build is handed to
/// its waiters but never cached, so the next caller retries.
class QuboBuildCache {
 public:
  explicit QuboBuildCache(size_t max_entries = 1024);

  /// Returns the cached entry for (query, options), building and
  /// inserting it on a miss. Concurrent misses on the same key
  /// single-flight: one thread builds, the rest block on that build and
  /// share its result.
  StatusOr<std::shared_ptr<const JoQuboEncoding>> GetOrBuild(
      const Query& query, const JoEncodingOptions& options);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Entries displaced one at a time (LRU order) by inserts at
    /// capacity. Never incremented by hits or duplicate-key inserts.
    uint64_t evictions = 0;
    /// Lookups that found the key being built by another thread and
    /// waited for that build instead of starting a duplicate one. Such
    /// lookups are also counted in `hits`.
    uint64_t coalesced_builds = 0;
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  /// Race-free snapshot of the counters, safe to call concurrently with
  /// any number of GetOrBuild calls and never contending on the entry
  /// mutex. Memory-order contract: counters are incremented with relaxed
  /// atomics and read with relaxed loads — each counter is individually
  /// exact and monotone, but a snapshot taken mid-operation may observe
  /// one counter of a concurrent lookup and not another (e.g. a miss
  /// counted whose insert has not landed yet). Once the writers quiesce,
  /// a snapshot is exact; cross-counter invariants (hits + misses ==
  /// lookups) hold only at quiescence.
  Stats stats() const;

  size_t size() const;

 private:
  /// Most-recently-used entries sit at the front; eviction pops the back.
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const JoQuboEncoding>>>;

  /// One in-flight build: the builder publishes its result under `mutex`
  /// and notifies; waiters block on `cv`. Lives in `building_` only while
  /// the build runs, but shared_ptr-held waiters may outlive that window.
  struct BuildState {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    StatusOr<std::shared_ptr<const JoQuboEncoding>> result =
        Status::Internal("build not finished");
  };

  const size_t max_entries_;
  mutable std::mutex mutex_;
  /// Relaxed atomics so stats() never blocks a lookup (see the contract
  /// on stats()); everything else stays under mutex_.
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> coalesced_builds_{0};
  LruList lru_;
  /// Keys view into the node-stable strings owned by `lru_`.
  std::unordered_map<std::string_view, LruList::iterator> entries_;
  /// Keys currently being built (single-flight registry). Owns its key
  /// strings: the LRU node does not exist until the build lands.
  std::unordered_map<std::string, std::shared_ptr<BuildState>> building_;
};

}  // namespace qjo

#endif  // QJO_CORE_QUBO_CACHE_H_

#include "core/qubo_cache.h"

#include <bit>
#include <sstream>
#include <utility>

namespace qjo {
namespace {

/// Bit-exact rendering of a double (hex of its IEEE-754 pattern): two
/// fingerprints match iff every keyed double is identical to the bit.
void AppendDouble(std::ostringstream& os, double value) {
  os << std::hex << std::bit_cast<uint64_t>(value) << std::dec;
}

std::vector<double> ResolveThresholds(const Query& query,
                                      const JoEncodingOptions& options) {
  return options.thresholds.empty()
             ? MakeGeometricThresholds(query, options.num_thresholds)
             : options.thresholds;
}

}  // namespace

std::string JoEncodingFingerprint(const Query& query,
                                  const JoEncodingOptions& options) {
  std::ostringstream os;
  os << "T" << query.num_relations() << ";R";
  for (const Relation& r : query.relations()) {
    AppendDouble(os, r.cardinality);
    os << ",";
  }
  os << ";P";
  for (const Predicate& p : query.predicates()) {
    os << p.left << "-" << p.right << ":";
    AppendDouble(os, p.selectivity);
    os << ",";
  }
  os << ";TH";
  for (double t : ResolveThresholds(query, options)) {
    AppendDouble(os, t);
    os << ",";
  }
  os << ";W";
  AppendDouble(os, options.omega);
  return os.str();
}

StatusOr<std::shared_ptr<const JoQuboEncoding>> BuildJoQuboEncoding(
    const Query& query, const JoEncodingOptions& options) {
  JoMilpOptions milp_options;
  milp_options.thresholds = ResolveThresholds(query, options);
  milp_options.omega = options.omega;
  QJO_ASSIGN_OR_RETURN(JoMilpModel milp, EncodeJoAsMilp(query, milp_options));
  QJO_ASSIGN_OR_RETURN(BilpModel bilp,
                       LowerToBilp(milp.model(), options.omega));
  QuboConversionOptions qubo_options;
  qubo_options.omega = options.omega;
  QJO_ASSIGN_OR_RETURN(QuboEncoding encoding,
                       ConvertBilpToQubo(bilp, qubo_options));
  auto entry = std::make_shared<JoQuboEncoding>();
  entry->milp = std::move(milp);
  entry->bilp = std::move(bilp);
  entry->encoding = std::move(encoding);
  // Materialise the CSR while the entry is still private: after this the
  // QUBO is only ever read, so sharing across solver threads is safe.
  entry->encoding.qubo.Csr();
  return std::shared_ptr<const JoQuboEncoding>(std::move(entry));
}

QuboBuildCache::QuboBuildCache(size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

StatusOr<std::shared_ptr<const JoQuboEncoding>> QuboBuildCache::GetOrBuild(
    const Query& query, const JoEncodingOptions& options) {
  const std::string key = JoEncodingFingerprint(query, options);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(std::string_view(key));
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
      return it->second->second;
    }
    // Single-flight: if another thread is mid-build on this key, wait on
    // its BuildState instead of encoding a duplicate. Waiters count as
    // hits (they reuse a build) plus coalesced_builds.
    if (auto building = building_.find(key); building != building_.end()) {
      std::shared_ptr<BuildState> state = building->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      coalesced_builds_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      std::unique_lock<std::mutex> wait_lock(state->mutex);
      state->cv.wait(wait_lock, [&] { return state->done; });
      return state->result;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    building_.emplace(key, std::make_shared<BuildState>());
  }
  // Build outside the lock: a slow encode must not serialise unrelated
  // queries of a batch. The building_ entry guarantees no concurrent
  // build of the same key; publish to waiters whatever happens.
  StatusOr<std::shared_ptr<const JoQuboEncoding>> built =
      BuildJoQuboEncoding(query, options);
  std::shared_ptr<BuildState> state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto building = building_.find(key);
    state = building->second;
    building_.erase(building);
    if (built.ok()) {
      if (entries_.size() >= max_entries_) {
        // Displace exactly the least-recently-used entry; one cold key
        // can no longer dump every hot entry.
        entries_.erase(std::string_view(lru_.back().first));
        lru_.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      lru_.emplace_front(key, *built);
      entries_.emplace(std::string_view(lru_.front().first), lru_.begin());
    }
  }
  {
    std::lock_guard<std::mutex> publish(state->mutex);
    state->result = built;
    state->done = true;
  }
  state->cv.notify_all();
  return built;
}

QuboBuildCache::Stats QuboBuildCache::stats() const {
  // Lock-free by design (see the header contract): relaxed loads of
  // counters that are only ever incremented, so concurrent lookups are
  // never serialised behind a stats scrape.
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.coalesced_builds = coalesced_builds_.load(std::memory_order_relaxed);
  return s;
}

size_t QuboBuildCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace qjo

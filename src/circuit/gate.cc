#include "circuit/gate.h"

#include <sstream>

namespace qjo {

const char* GateTypeName(GateType type) {
  switch (type) {
    case GateType::kH:
      return "h";
    case GateType::kX:
      return "x";
    case GateType::kSx:
      return "sx";
    case GateType::kRx:
      return "rx";
    case GateType::kRy:
      return "ry";
    case GateType::kRz:
      return "rz";
    case GateType::kCx:
      return "cx";
    case GateType::kCz:
      return "cz";
    case GateType::kSwap:
      return "swap";
    case GateType::kRzz:
      return "rzz";
    case GateType::kMs:
      return "ms";
  }
  return "unknown";
}

bool IsTwoQubitGate(GateType type) {
  switch (type) {
    case GateType::kCx:
    case GateType::kCz:
    case GateType::kSwap:
    case GateType::kRzz:
    case GateType::kMs:
      return true;
    default:
      return false;
  }
}

bool IsParameterised(GateType type) {
  switch (type) {
    case GateType::kRx:
    case GateType::kRy:
    case GateType::kRz:
    case GateType::kRzz:
    case GateType::kMs:
      return true;
    default:
      return false;
  }
}

std::string Gate::ToString() const {
  std::ostringstream os;
  os << GateTypeName(type);
  if (IsParameterised(type)) os << "(" << parameter << ")";
  os << " ";
  for (size_t i = 0; i < qubits.size(); ++i) {
    if (i > 0) os << ",";
    os << "q" << qubits[i];
  }
  return os.str();
}

}  // namespace qjo

#include "circuit/fusion.h"

namespace qjo {
namespace {

/// True if `gate` can extend a single-qubit run: one operand, below the
/// cache-block boundary. (Diagonal single-qubit gates are classified as
/// diagonal first — the diagonal sweep is cheaper than a butterfly.)
bool FitsSingleQubitRun(const Gate& gate) {
  return gate.qubits.size() == 1 && gate.qubits[0] < kFusionBlockQubits;
}

}  // namespace

bool IsDiagonalGate(GateType type) {
  switch (type) {
    case GateType::kRz:
    case GateType::kRzz:
    case GateType::kCz:
      return true;
    default:
      return false;
  }
}

FusedCircuit FuseCircuit(const QuantumCircuit& circuit) {
  FusedCircuit fused;
  fused.num_qubits = circuit.num_qubits();
  fused.num_gates = circuit.num_gates();
  for (const Gate& gate : circuit.gates()) {
    FusedOpKind kind = FusedOpKind::kGate;
    if (IsDiagonalGate(gate.type)) {
      kind = FusedOpKind::kDiagonalRun;
    } else if (FitsSingleQubitRun(gate)) {
      kind = FusedOpKind::kSingleQubitRun;
    }
    const bool extends = !fused.ops.empty() &&
                         fused.ops.back().kind == kind &&
                         kind != FusedOpKind::kGate;
    if (extends) {
      fused.ops.back().gates.push_back(gate);
    } else {
      fused.ops.push_back(FusedOp{kind, {gate}});
    }
  }
  return fused;
}

}  // namespace qjo

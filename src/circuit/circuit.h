#ifndef QJO_CIRCUIT_CIRCUIT_H_
#define QJO_CIRCUIT_CIRCUIT_H_

#include <string>
#include <vector>

#include "circuit/gate.h"
#include "util/status.h"

namespace qjo {

/// An ordered sequence of gates over `num_qubits` qubits. Depth is the
/// length of the longest dependency chain (gates on disjoint qubits
/// parallelise), matching the circuit-depth metric of the paper's Fig. 2
/// and Fig. 5.
class QuantumCircuit {
 public:
  explicit QuantumCircuit(int num_qubits = 0) : num_qubits_(num_qubits) {}

  int num_qubits() const { return num_qubits_; }
  const std::vector<Gate>& gates() const { return gates_; }
  int num_gates() const { return static_cast<int>(gates_.size()); }

  /// Appends a gate; aborts on out-of-range or duplicate qubit operands.
  void Append(Gate gate);

  /// Convenience wrappers.
  void H(int q) { Append(Gate::Single(GateType::kH, q)); }
  void X(int q) { Append(Gate::Single(GateType::kX, q)); }
  void Sx(int q) { Append(Gate::Single(GateType::kSx, q)); }
  void Rx(int q, double theta) {
    Append(Gate::Single(GateType::kRx, q, theta));
  }
  void Ry(int q, double theta) {
    Append(Gate::Single(GateType::kRy, q, theta));
  }
  void Rz(int q, double theta) {
    Append(Gate::Single(GateType::kRz, q, theta));
  }
  void Cx(int control, int target) {
    Append(Gate::Two(GateType::kCx, control, target));
  }
  void Cz(int a, int b) { Append(Gate::Two(GateType::kCz, a, b)); }
  void Swap(int a, int b) { Append(Gate::Two(GateType::kSwap, a, b)); }
  void Rzz(int a, int b, double theta) {
    Append(Gate::Two(GateType::kRzz, a, b, theta));
  }
  void Ms(int a, int b, double theta) {
    Append(Gate::Two(GateType::kMs, a, b, theta));
  }

  /// Longest dependency chain over the qubits.
  int Depth() const;

  /// Depth counting two-qubit gates only (the error-dominating layer count
  /// on superconducting hardware).
  int TwoQubitDepth() const;

  /// Number of gates of the given type.
  int CountGates(GateType type) const;

  /// Number of two-qubit gates of any type.
  int CountTwoQubitGates() const;

  /// Multi-line textual rendering (for examples and debugging).
  std::string ToString() const;

 private:
  int num_qubits_;
  std::vector<Gate> gates_;
};

}  // namespace qjo

#endif  // QJO_CIRCUIT_CIRCUIT_H_

#ifndef QJO_CIRCUIT_GATE_H_
#define QJO_CIRCUIT_GATE_H_

#include <string>
#include <vector>

namespace qjo {

/// Gate vocabulary covering the QAOA circuits we build plus the native
/// gate sets of the modelled vendors (IBM: RZ/SX/X/CX; Rigetti: RX/RZ/CZ;
/// IonQ: single-qubit rotations + MS).
enum class GateType {
  // Single-qubit.
  kH,
  kX,
  kSx,       ///< sqrt(X)
  kRx,       ///< exp(-i theta X / 2)
  kRy,       ///< exp(-i theta Y / 2)
  kRz,       ///< exp(-i theta Z / 2)
  // Two-qubit.
  kCx,
  kCz,
  kSwap,
  kRzz,      ///< exp(-i theta Z(x)Z / 2)
  kMs,       ///< Moelmer-Soerensen XX(theta) = exp(-i theta X(x)X / 2)
};

/// Name of a gate type, e.g. "rzz".
const char* GateTypeName(GateType type);

/// True for two-qubit gate types.
bool IsTwoQubitGate(GateType type);

/// True for parameterised (rotation) gates.
bool IsParameterised(GateType type);

/// One gate application. Two-qubit gates use qubits[0] (control / first)
/// and qubits[1] (target / second).
struct Gate {
  GateType type = GateType::kH;
  std::vector<int> qubits;
  double parameter = 0.0;

  static Gate Single(GateType type, int qubit, double parameter = 0.0) {
    return Gate{type, {qubit}, parameter};
  }
  static Gate Two(GateType type, int a, int b, double parameter = 0.0) {
    return Gate{type, {a, b}, parameter};
  }

  std::string ToString() const;
};

}  // namespace qjo

#endif  // QJO_CIRCUIT_GATE_H_

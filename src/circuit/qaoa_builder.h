#ifndef QJO_CIRCUIT_QAOA_BUILDER_H_
#define QJO_CIRCUIT_QAOA_BUILDER_H_

#include <vector>

#include "circuit/circuit.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "util/statusor.h"

namespace qjo {

/// QAOA variational parameters: one (gamma, beta) pair per repetition p.
struct QaoaParameters {
  std::vector<double> gammas;
  std::vector<double> betas;

  int p() const { return static_cast<int>(gammas.size()); }
};

/// Circuit-generation options.
struct QaoaBuilderOptions {
  /// All gates of one cost layer commute, so their order is free. When
  /// set, the RZZ terms are scheduled into greedy matching rounds (no
  /// qubit twice per round), which compresses the logical cost-layer
  /// depth from "however the terms happened to be ordered" towards the
  /// graph's chromatic index. The paper's conclusion names efficient
  /// circuit generation as an open problem; this is the zero-cost part.
  bool schedule_cost_layer = false;
};

/// Builds the depth-2p QAOA circuit (Farhi et al.) for an Ising
/// Hamiltonian: H^n, then p alternations of the diagonal cost operator
/// exp(-i gamma H_C) (RZ for fields, RZZ for couplings) and the transverse
/// mixer exp(-i beta sum X) (RX). Fails when gammas/betas sizes differ or
/// are empty.
StatusOr<QuantumCircuit> BuildQaoaCircuit(
    const IsingModel& ising, const QaoaParameters& parameters,
    const QaoaBuilderOptions& options = QaoaBuilderOptions{});

/// Convenience overload: converts the QUBO to Ising first.
StatusOr<QuantumCircuit> BuildQaoaCircuit(
    const Qubo& qubo, const QaoaParameters& parameters,
    const QaoaBuilderOptions& options = QaoaBuilderOptions{});

/// Greedy matching-round schedule of an interaction list: returns the
/// same couplings reordered so that consecutive "rounds" touch each qubit
/// at most once. Exposed for testing and reuse.
std::vector<std::tuple<int, int, double>> ScheduleCommutingTerms(
    const std::vector<std::tuple<int, int, double>>& couplings,
    int num_qubits);

}  // namespace qjo

#endif  // QJO_CIRCUIT_QAOA_BUILDER_H_

#include "circuit/qaoa_builder.h"

#include <vector>

namespace qjo {

std::vector<std::tuple<int, int, double>> ScheduleCommutingTerms(
    const std::vector<std::tuple<int, int, double>>& couplings,
    int num_qubits) {
  std::vector<std::tuple<int, int, double>> scheduled;
  scheduled.reserve(couplings.size());
  std::vector<bool> used(couplings.size(), false);
  std::vector<bool> busy(num_qubits);
  size_t remaining = couplings.size();
  while (remaining > 0) {
    std::fill(busy.begin(), busy.end(), false);
    for (size_t e = 0; e < couplings.size(); ++e) {
      if (used[e]) continue;
      const auto& [a, b, w] = couplings[e];
      if (busy[a] || busy[b]) continue;
      busy[a] = true;
      busy[b] = true;
      used[e] = true;
      scheduled.push_back(couplings[e]);
      --remaining;
    }
  }
  return scheduled;
}

StatusOr<QuantumCircuit> BuildQaoaCircuit(const IsingModel& ising,
                                          const QaoaParameters& parameters,
                                          const QaoaBuilderOptions& options) {
  if (parameters.gammas.empty() ||
      parameters.gammas.size() != parameters.betas.size()) {
    return Status::InvalidArgument(
        "QAOA needs matching non-empty gamma/beta vectors");
  }
  const int n = ising.num_spins();
  if (n == 0) return Status::InvalidArgument("empty Hamiltonian");

  const std::vector<std::tuple<int, int, double>> couplings =
      options.schedule_cost_layer
          ? ScheduleCommutingTerms(ising.couplings, n)
          : ising.couplings;

  QuantumCircuit circuit(n);
  for (int q = 0; q < n; ++q) circuit.H(q);
  for (int rep = 0; rep < parameters.p(); ++rep) {
    const double gamma = parameters.gammas[rep];
    const double beta = parameters.betas[rep];
    // Cost operator exp(-i gamma H_C): with RZ(t) = exp(-i t Z/2) a field
    // h_i contributes RZ(2 gamma h_i); a coupling J_ij contributes
    // RZZ(2 gamma J_ij).
    for (int q = 0; q < n; ++q) {
      if (ising.h[q] != 0.0) circuit.Rz(q, 2.0 * gamma * ising.h[q]);
    }
    for (const auto& [i, j, w] : couplings) {
      if (w != 0.0) circuit.Rzz(i, j, 2.0 * gamma * w);
    }
    // Mixer exp(-i beta sum X) = RX(2 beta) on every qubit.
    for (int q = 0; q < n; ++q) circuit.Rx(q, 2.0 * beta);
  }
  return circuit;
}

StatusOr<QuantumCircuit> BuildQaoaCircuit(const Qubo& qubo,
                                          const QaoaParameters& parameters,
                                          const QaoaBuilderOptions& options) {
  return BuildQaoaCircuit(QuboToIsing(qubo), parameters, options);
}

}  // namespace qjo

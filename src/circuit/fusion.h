#ifndef QJO_CIRCUIT_FUSION_H_
#define QJO_CIRCUIT_FUSION_H_

#include <vector>

#include "circuit/circuit.h"

namespace qjo {

/// Qubit-index boundary of the fused single-qubit kernel: a butterfly on
/// qubit q pairs amplitudes 2^q apart, so every pair stays inside one
/// 2^kFusionBlockQubits-amplitude cache block iff q < kFusionBlockQubits.
/// Matches the fixed dispatch block of the simulator loops (2^14).
inline constexpr int kFusionBlockQubits = 14;

enum class FusedOpKind {
  /// Run of adjacent single-qubit gates, every operand qubit below
  /// kFusionBlockQubits: applied gate-by-gate inside one cache-blocked
  /// sweep (one pass over the state instead of one per gate).
  kSingleQubitRun,
  /// Run of adjacent diagonal gates (RZ / RZZ / CZ, any qubits): applied
  /// per amplitude in gate order inside a single element-wise sweep.
  kDiagonalRun,
  /// Single gate applied through the reference kernel (non-diagonal
  /// two-qubit gates, and single-qubit gates on high qubits).
  kGate,
};

/// One op of a fused circuit: the original gates, in original order.
struct FusedOp {
  FusedOpKind kind = FusedOpKind::kGate;
  std::vector<Gate> gates;
};

/// Order-preserving partition of a circuit into fused ops. Concatenating
/// ops[i].gates in order reproduces the input gate sequence exactly.
struct FusedCircuit {
  int num_qubits = 0;
  std::vector<FusedOp> ops;
  int num_gates = 0;
};

/// True for gates that are diagonal in the computational basis.
bool IsDiagonalGate(GateType type);

/// Greedy adjacent-only fusion pass. Gates are never reordered — not even
/// across disjoint qubits — because reordering regroups floating-point
/// sums and breaks bit-parity with the gate-by-gate reference kernel; a
/// run simply extends while consecutive gates remain mergeable.
FusedCircuit FuseCircuit(const QuantumCircuit& circuit);

}  // namespace qjo

#endif  // QJO_CIRCUIT_FUSION_H_

#include "circuit/circuit.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace qjo {

void QuantumCircuit::Append(Gate gate) {
  QJO_CHECK(!gate.qubits.empty());
  QJO_CHECK_EQ(gate.qubits.size(), IsTwoQubitGate(gate.type) ? 2u : 1u);
  for (int q : gate.qubits) {
    QJO_CHECK_GE(q, 0);
    QJO_CHECK_LT(q, num_qubits_);
  }
  if (gate.qubits.size() == 2) {
    QJO_CHECK_NE(gate.qubits[0], gate.qubits[1]);
  }
  gates_.push_back(std::move(gate));
}

int QuantumCircuit::Depth() const {
  std::vector<int> level(num_qubits_, 0);
  int depth = 0;
  for (const Gate& g : gates_) {
    int d = 0;
    for (int q : g.qubits) d = std::max(d, level[q]);
    ++d;
    for (int q : g.qubits) level[q] = d;
    depth = std::max(depth, d);
  }
  return depth;
}

int QuantumCircuit::TwoQubitDepth() const {
  std::vector<int> level(num_qubits_, 0);
  int depth = 0;
  for (const Gate& g : gates_) {
    if (!IsTwoQubitGate(g.type)) continue;
    const int d = std::max(level[g.qubits[0]], level[g.qubits[1]]) + 1;
    level[g.qubits[0]] = d;
    level[g.qubits[1]] = d;
    depth = std::max(depth, d);
  }
  return depth;
}

int QuantumCircuit::CountGates(GateType type) const {
  int count = 0;
  for (const Gate& g : gates_) {
    if (g.type == type) ++count;
  }
  return count;
}

int QuantumCircuit::CountTwoQubitGates() const {
  int count = 0;
  for (const Gate& g : gates_) {
    if (IsTwoQubitGate(g.type)) ++count;
  }
  return count;
}

std::string QuantumCircuit::ToString() const {
  std::ostringstream os;
  os << "circuit(" << num_qubits_ << " qubits, " << gates_.size()
     << " gates, depth " << Depth() << ")\n";
  for (const Gate& g : gates_) os << "  " << g.ToString() << "\n";
  return os.str();
}

}  // namespace qjo

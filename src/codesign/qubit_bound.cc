#include "codesign/qubit_bound.h"

#include <algorithm>
#include <cmath>

namespace qjo {

double MaxLogCardinality(const std::vector<double>& log_cardinalities,
                         int j) {
  std::vector<double> sorted = log_cardinalities;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double sum = 0.0;
  const int count = std::min<int>(j + 1, static_cast<int>(sorted.size()));
  for (int i = 0; i < count; ++i) sum += sorted[i];
  return sum;
}

StatusOr<int> QubitUpperBound(const QubitBoundSpec& spec) {
  const int t = spec.num_relations;
  const int p = spec.num_predicates;
  const int r = spec.num_thresholds;
  if (t < 2) return Status::InvalidArgument("need at least 2 relations");
  if (p < 0 || r < 0) return Status::InvalidArgument("negative counts");
  if (!(spec.omega > 0.0)) {
    return Status::InvalidArgument("omega must be positive");
  }
  if (static_cast<int>(spec.log_cardinalities.size()) != t) {
    return Status::InvalidArgument("need one log-cardinality per relation");
  }
  const int j = t - 1;
  long long bound = 2LL * t * j + (3LL * p + r) * (j - 1) + t;
  for (int join = 1; join < j; ++join) {
    const double cj_max = MaxLogCardinality(spec.log_cardinalities, join);
    const double ratio = cj_max / spec.omega;
    const int bits =
        ratio >= 1.0
            ? static_cast<int>(std::floor(std::log2(ratio))) + 1
            : 0;
    bound += static_cast<long long>(r) * bits;
  }
  return static_cast<int>(bound);
}

StatusOr<int> QubitUpperBound(const Query& query, int num_thresholds,
                              double omega) {
  QubitBoundSpec spec;
  spec.num_relations = query.num_relations();
  spec.num_predicates = query.num_predicates();
  spec.num_thresholds = num_thresholds;
  spec.omega = omega;
  for (const Relation& rel : query.relations()) {
    spec.log_cardinalities.push_back(std::log10(rel.cardinality));
  }
  return QubitUpperBound(spec);
}

}  // namespace qjo

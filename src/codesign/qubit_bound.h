#ifndef QJO_CODESIGN_QUBIT_BOUND_H_
#define QJO_CODESIGN_QUBIT_BOUND_H_

#include <vector>

#include "jo/query.h"
#include "util/statusor.h"

namespace qjo {

/// Inputs of the Theorem 5.3 qubit bound.
struct QubitBoundSpec {
  int num_relations = 0;   ///< T
  int num_predicates = 0;  ///< P
  int num_thresholds = 0;  ///< R
  double omega = 1.0;      ///< discretisation precision
  /// log10 cardinalities of the relations, any order.
  std::vector<double> log_cardinalities;
};

/// Theorem 5.3: an upper bound on the number of binary variables (=
/// logical qubits) needed to encode a JO problem:
///   n <= 2TJ + (3P+R)(J-1) + T + R * sum_{j=1}^{J-1}
///        (floor(log2(c_jmax / omega)) + 1)
/// where c_jmax is the Lemma 5.2 bound. Fails for T < 2 or omega <= 0.
StatusOr<int> QubitUpperBound(const QubitBoundSpec& spec);

/// Convenience: derives the spec from a concrete query.
StatusOr<int> QubitUpperBound(const Query& query, int num_thresholds,
                              double omega);

/// Lemma 5.2 for a standalone cardinality list: max logarithmic cardinality
/// of the outer operand of join j (sum of the j+1 largest entries).
double MaxLogCardinality(const std::vector<double>& log_cardinalities, int j);

}  // namespace qjo

#endif  // QJO_CODESIGN_QUBIT_BOUND_H_

#ifndef QJO_TOPOLOGY_COUPLING_GRAPH_H_
#define QJO_TOPOLOGY_COUPLING_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/statusor.h"

namespace qjo {

/// Undirected qubit-connectivity graph of a QPU. Used both as the coupling
/// map constraining two-qubit gates (gate-based QPUs) and as the hardware
/// graph targeted by minor embedding (annealers).
class CouplingGraph {
 public:
  explicit CouplingGraph(int num_qubits = 0);

  int num_qubits() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return num_edges_; }

  /// Adds an undirected edge; ignores duplicates; aborts on bad operands.
  void AddEdge(int a, int b);
  bool HasEdge(int a, int b) const;

  const std::vector<int>& Neighbors(int q) const { return adjacency_[q]; }
  int Degree(int q) const { return static_cast<int>(adjacency_[q].size()); }
  int MaxDegree() const;
  double AverageDegree() const;

  /// All edges as (a, b) with a < b, sorted.
  std::vector<std::pair<int, int>> Edges() const;

  /// BFS distances from `source`; unreachable nodes get -1.
  std::vector<int> BfsDistances(int source) const;

  /// Full distance matrix (BFS from every node). O(V * (V + E)).
  std::vector<std::vector<int>> AllPairsDistances() const;

  bool IsConnected() const;

  /// Edge density relative to the complete graph: |E| / (n(n-1)/2).
  double Density() const;

  std::string ToString() const;

 private:
  static uint64_t Key(int a, int b);

  std::vector<std::vector<int>> adjacency_;
  std::unordered_set<uint64_t> edge_set_;
  int num_edges_ = 0;
};

/// Complete graph K_n — the IonQ trapped-ion topology (all-to-all).
CouplingGraph MakeCompleteGraph(int num_qubits);

/// Simple 1D chain 0-1-2-...-n-1 (used in tests).
CouplingGraph MakeLineGraph(int num_qubits);

/// 2D grid graph with `rows` x `cols` qubits (used in tests/ablations).
CouplingGraph MakeGridGraph(int rows, int cols);

}  // namespace qjo

#endif  // QJO_TOPOLOGY_COUPLING_GRAPH_H_

#include "topology/coupling_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "util/check.h"

namespace qjo {

CouplingGraph::CouplingGraph(int num_qubits) : adjacency_(num_qubits) {
  QJO_CHECK_GE(num_qubits, 0);
}

uint64_t CouplingGraph::Key(int a, int b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(b);
}

void CouplingGraph::AddEdge(int a, int b) {
  QJO_CHECK_NE(a, b);
  QJO_CHECK_GE(std::min(a, b), 0);
  QJO_CHECK_LT(std::max(a, b), num_qubits());
  if (!edge_set_.insert(Key(a, b)).second) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++num_edges_;
}

bool CouplingGraph::HasEdge(int a, int b) const {
  if (a == b) return false;
  return edge_set_.count(Key(a, b)) > 0;
}

int CouplingGraph::MaxDegree() const {
  int max_degree = 0;
  for (const auto& n : adjacency_) {
    max_degree = std::max(max_degree, static_cast<int>(n.size()));
  }
  return max_degree;
}

double CouplingGraph::AverageDegree() const {
  if (num_qubits() == 0) return 0.0;
  return 2.0 * num_edges_ / static_cast<double>(num_qubits());
}

std::vector<std::pair<int, int>> CouplingGraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(num_edges_);
  for (uint64_t key : edge_set_) {
    edges.emplace_back(static_cast<int>(key >> 32),
                       static_cast<int>(key & 0xffffffffu));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::vector<int> CouplingGraph::BfsDistances(int source) const {
  QJO_CHECK_GE(source, 0);
  QJO_CHECK_LT(source, num_qubits());
  std::vector<int> dist(num_qubits(), -1);
  std::deque<int> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop_front();
    for (int next : adjacency_[node]) {
      if (dist[next] < 0) {
        dist[next] = dist[node] + 1;
        queue.push_back(next);
      }
    }
  }
  return dist;
}

std::vector<std::vector<int>> CouplingGraph::AllPairsDistances() const {
  std::vector<std::vector<int>> dist;
  dist.reserve(num_qubits());
  for (int q = 0; q < num_qubits(); ++q) dist.push_back(BfsDistances(q));
  return dist;
}

bool CouplingGraph::IsConnected() const {
  if (num_qubits() == 0) return true;
  const std::vector<int> dist = BfsDistances(0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

double CouplingGraph::Density() const {
  const int n = num_qubits();
  if (n < 2) return 0.0;
  return static_cast<double>(num_edges_) /
         (static_cast<double>(n) * (n - 1) / 2.0);
}

std::string CouplingGraph::ToString() const {
  std::ostringstream os;
  os << "graph(" << num_qubits() << " qubits, " << num_edges_
     << " edges, max degree " << MaxDegree() << ")";
  return os.str();
}

CouplingGraph MakeCompleteGraph(int num_qubits) {
  CouplingGraph g(num_qubits);
  for (int a = 0; a < num_qubits; ++a) {
    for (int b = a + 1; b < num_qubits; ++b) g.AddEdge(a, b);
  }
  return g;
}

CouplingGraph MakeLineGraph(int num_qubits) {
  CouplingGraph g(num_qubits);
  for (int q = 0; q + 1 < num_qubits; ++q) g.AddEdge(q, q + 1);
  return g;
}

CouplingGraph MakeGridGraph(int rows, int cols) {
  CouplingGraph g(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int q = r * cols + c;
      if (c + 1 < cols) g.AddEdge(q, q + 1);
      if (r + 1 < rows) g.AddEdge(q, q + cols);
    }
  }
  return g;
}

}  // namespace qjo

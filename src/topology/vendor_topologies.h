#ifndef QJO_TOPOLOGY_VENDOR_TOPOLOGIES_H_
#define QJO_TOPOLOGY_VENDOR_TOPOLOGIES_H_

#include "topology/coupling_graph.h"
#include "util/statusor.h"

namespace qjo {

/// IBM Q Falcon r5.11 (27 qubits) — the heavy-hex layout of IBM Q Auckland
/// used in the paper's Fig. 2 and Table 2. The edge list is the published
/// coupling map of the 27-qubit Falcon family.
CouplingGraph MakeIbmFalcon27();

/// Generic IBM heavy-hex lattice: `rows` horizontal qubit rows (odd, >= 3)
/// of `row_length` qubits (row_length = 4k+3), linked by bridge qubits
/// every fourth column with alternating offsets. MakeIbmHeavyHex(7, 15)
/// reproduces the 127-qubit Eagle r1 layout (IBM Q Washington); larger
/// parameters give the structural size extrapolation of Sec. 6.2.
StatusOr<CouplingGraph> MakeIbmHeavyHex(int rows, int row_length);

/// IBM Eagle r1 (127 qubits) — IBM Q Washington.
CouplingGraph MakeIbmEagle127();

/// Smallest heavy-hex lattice with at least `min_qubits` qubits, grown by
/// the repeating-pattern extrapolation (add row pairs, then widen rows).
CouplingGraph MakeIbmHeavyHexAtLeast(int min_qubits);

/// Rigetti Aspen-M-style octagonal lattice: a `rows` x `cols` grid of
/// 8-qubit rings; horizontally adjacent octagons share two couplers, as do
/// vertically adjacent ones. MakeRigettiAspen(2, 5) gives the 80-qubit
/// Aspen-M. Larger grids give the size extrapolation of Sec. 6.2.
StatusOr<CouplingGraph> MakeRigettiAspen(int rows, int cols);

/// Smallest Aspen-style lattice with at least `min_qubits` qubits.
CouplingGraph MakeRigettiAspenAtLeast(int min_qubits);

/// D-Wave Pegasus graph P_m with 24*m*(m-1) qubits and degree <= 15
/// (12 internal + 2 external + 1 odd coupler), built from the geometric
/// crossing construction of Boothby et al. MakePegasus(16) models the
/// Advantage system's working graph (5760 qubits when defect-free).
StatusOr<CouplingGraph> MakePegasus(int m);

/// D-Wave Chimera graph C_m (the 2000Q-generation topology that the
/// paper's MQO predecessor work targeted): an m x m grid of K_{4,4} unit
/// cells, 8*m*m qubits, degree <= 6. Used for the Pegasus-vs-Chimera
/// embedding ablation.
StatusOr<CouplingGraph> MakeChimera(int m);

}  // namespace qjo

#endif  // QJO_TOPOLOGY_VENDOR_TOPOLOGIES_H_

#include "topology/vendor_topologies.h"

#include <array>
#include <vector>

#include "util/check.h"

namespace qjo {

CouplingGraph MakeIbmFalcon27() {
  // Published coupling map of the 27-qubit Falcon processors
  // (Auckland/Montreal/Mumbai family).
  static constexpr std::array<std::pair<int, int>, 28> kEdges = {{
      {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},   {5, 8},
      {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14}, {12, 13},
      {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
      {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26},
  }};
  CouplingGraph g(27);
  for (const auto& [a, b] : kEdges) g.AddEdge(a, b);
  return g;
}

StatusOr<CouplingGraph> MakeIbmHeavyHex(int rows, int row_length) {
  if (rows < 3 || rows % 2 == 0) {
    return Status::InvalidArgument("heavy-hex needs an odd row count >= 3");
  }
  if (row_length < 7 || row_length % 4 != 3) {
    return Status::InvalidArgument(
        "heavy-hex row length must be 4k+3 with k >= 1");
  }

  // Row i spans columns [col_begin(i), col_end(i)): the first row omits the
  // last column and the last row omits the first (as on Eagle r1).
  auto col_begin = [&](int i) { return i == rows - 1 ? 1 : 0; };
  auto col_end = [&](int i) { return i == 0 ? row_length - 1 : row_length; };

  // Assign ids: rows interleaved with their bridge qubits, in reading order.
  std::vector<std::vector<int>> row_ids(rows);
  int next_id = 0;
  std::vector<std::vector<std::pair<int, int>>> bridges(rows - 1);
  for (int i = 0; i < rows; ++i) {
    row_ids[i].assign(row_length, -1);
    for (int c = col_begin(i); c < col_end(i); ++c) row_ids[i][c] = next_id++;
    if (i + 1 < rows) {
      // Bridge columns alternate: even gaps at 0,4,8,...; odd at 2,6,10,...
      for (int c = (i % 2) * 2; c < row_length; c += 4) {
        bridges[i].emplace_back(c, next_id++);
      }
    }
  }

  CouplingGraph g(next_id);
  for (int i = 0; i < rows; ++i) {
    for (int c = col_begin(i); c + 1 < col_end(i); ++c) {
      g.AddEdge(row_ids[i][c], row_ids[i][c + 1]);
    }
  }
  for (int i = 0; i + 1 < rows; ++i) {
    for (const auto& [c, id] : bridges[i]) {
      if (row_ids[i][c] >= 0) g.AddEdge(row_ids[i][c], id);
      if (row_ids[i + 1][c] >= 0) g.AddEdge(id, row_ids[i + 1][c]);
    }
  }
  return g;
}

CouplingGraph MakeIbmEagle127() {
  auto graph = MakeIbmHeavyHex(7, 15);
  QJO_CHECK(graph.ok());
  QJO_CHECK_EQ(graph->num_qubits(), 127);
  return std::move(graph).value();
}

CouplingGraph MakeIbmHeavyHexAtLeast(int min_qubits) {
  QJO_CHECK_GT(min_qubits, 0);
  // Grow rows first (IBM's roadmap stacks row pairs), then widen.
  for (int row_length = 15;; row_length += 4) {
    for (int rows = 7; rows <= row_length + 6; rows += 2) {
      auto graph = MakeIbmHeavyHex(rows, row_length);
      QJO_CHECK(graph.ok());
      if (graph->num_qubits() >= min_qubits) return std::move(graph).value();
    }
  }
}

StatusOr<CouplingGraph> MakeRigettiAspen(int rows, int cols) {
  if (rows < 1 || cols < 1) {
    return Status::InvalidArgument("need at least one octagon");
  }
  const int n = rows * cols * 8;
  CouplingGraph g(n);
  auto qubit = [&](int r, int c, int k) { return (r * cols + c) * 8 + k; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Octagon ring.
      for (int k = 0; k < 8; ++k) g.AddEdge(qubit(r, c, k), qubit(r, c, (k + 1) % 8));
      // Two couplers to the right-hand neighbour (facing sides), as on
      // Aspen-M: qubits 1,2 face the neighbour's 6,5.
      if (c + 1 < cols) {
        g.AddEdge(qubit(r, c, 1), qubit(r, c + 1, 6));
        g.AddEdge(qubit(r, c, 2), qubit(r, c + 1, 5));
      }
      // Two couplers to the octagon below: qubits 3,4 face its 0,7.
      if (r + 1 < rows) {
        g.AddEdge(qubit(r, c, 3), qubit(r + 1, c, 0));
        g.AddEdge(qubit(r, c, 4), qubit(r + 1, c, 7));
      }
    }
  }
  return g;
}

CouplingGraph MakeRigettiAspenAtLeast(int min_qubits) {
  QJO_CHECK_GT(min_qubits, 0);
  // Aspen-M is 2 x 5 octagons; extrapolate by keeping the 2:5-ish aspect.
  for (int scale = 1;; ++scale) {
    const int rows = 2 * scale;
    const int cols = 5 * scale;
    auto graph = MakeRigettiAspen(rows, cols);
    QJO_CHECK(graph.ok());
    if (graph->num_qubits() >= min_qubits) return std::move(graph).value();
    // Try intermediate sizes before jumping to the next full scale.
    for (int extra = 1; extra <= 3; ++extra) {
      auto wider = MakeRigettiAspen(rows, cols + extra * scale);
      QJO_CHECK(wider.ok());
      if (wider->num_qubits() >= min_qubits) return std::move(wider).value();
    }
  }
}

StatusOr<CouplingGraph> MakeChimera(int m) {
  if (m < 1) return Status::InvalidArgument("Chimera needs m >= 1");
  if (m > 64) return Status::InvalidArgument("Chimera size capped at m=64");
  // Cell (r, c) holds 8 qubits: 4 "left" (vertical) + 4 "right"
  // (horizontal); the K_{4,4} couples left x right. External couplers link
  // same-offset left qubits vertically and right qubits horizontally.
  auto index = [&](int r, int c, int side, int k) {
    return ((r * m + c) * 2 + side) * 4 + k;
  };
  CouplingGraph g(8 * m * m);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < m; ++c) {
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          g.AddEdge(index(r, c, 0, a), index(r, c, 1, b));
        }
      }
      for (int k = 0; k < 4; ++k) {
        if (r + 1 < m) g.AddEdge(index(r, c, 0, k), index(r + 1, c, 0, k));
        if (c + 1 < m) g.AddEdge(index(r, c, 1, k), index(r, c + 1, 1, k));
      }
    }
  }
  return g;
}

StatusOr<CouplingGraph> MakePegasus(int m) {
  if (m < 2) return Status::InvalidArgument("Pegasus needs m >= 2");
  if (m > 24) return Status::InvalidArgument("Pegasus size capped at m=24");

  // Vertex (u, w, k, z): u = orientation, w in [m] = perpendicular tile
  // offset, k in [12] = qubit offset, z in [m-1] = parallel tile offset.
  const int kShift = 12;
  auto index = [&](int u, int w, int k, int z) {
    return ((u * m + w) * kShift + k) * (m - 1) + z;
  };
  const int n = 2 * m * kShift * (m - 1);

  // Standard offset lists of the Advantage working graph.
  static constexpr std::array<int, 12> kOffset0 = {2, 2, 2, 2,  6,  6,
                                                   6, 6, 10, 10, 10, 10};
  static constexpr std::array<int, 12> kOffset1 = {6,  6,  6,  6, 10, 10,
                                                   10, 10, 2,  2, 2,  2};

  CouplingGraph g(n);
  // External couplers: consecutive parallel tiles.
  for (int u = 0; u < 2; ++u) {
    for (int w = 0; w < m; ++w) {
      for (int k = 0; k < kShift; ++k) {
        for (int z = 0; z + 1 < m - 1; ++z) {
          g.AddEdge(index(u, w, k, z), index(u, w, k, z + 1));
        }
      }
    }
  }
  // Odd couplers: paired qubit offsets (k, k^1) in the same tile.
  for (int u = 0; u < 2; ++u) {
    for (int w = 0; w < m; ++w) {
      for (int k = 0; k < kShift; k += 2) {
        for (int z = 0; z < m - 1; ++z) {
          g.AddEdge(index(u, w, k, z), index(u, w, k + 1, z));
        }
      }
    }
  }
  // Internal couplers via the geometric crossing rule: a vertical qubit
  // (u=0) at x = 12w + k covers y in [12z + off0[k], 12z + off0[k] + 12);
  // a horizontal qubit (u=1) at y = 12w' + k' covers x in
  // [12z' + off1[k'], 12z' + off1[k'] + 12). They are coupled iff the
  // segments cross.
  for (int w = 0; w < m; ++w) {
    for (int k = 0; k < kShift; ++k) {
      for (int z = 0; z < m - 1; ++z) {
        const int x = kShift * w + k;
        const int y_lo = kShift * z + kOffset0[k];
        for (int wp = 0; wp < m; ++wp) {
          for (int kp = 0; kp < kShift; ++kp) {
            const int y = kShift * wp + kp;
            if (y < y_lo || y >= y_lo + kShift) continue;
            // Solve for the z' whose x-interval contains x.
            const int x_rel = x - kOffset1[kp];
            if (x_rel < 0) continue;
            const int zp = x_rel / kShift;
            if (zp >= m - 1) continue;
            g.AddEdge(index(0, w, k, z), index(1, wp, kp, zp));
          }
        }
      }
    }
  }
  return g;
}

}  // namespace qjo

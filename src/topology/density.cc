#include "topology/density.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace qjo {

int NumExtraEdges(const CouplingGraph& base, double density) {
  const long long n = base.num_qubits();
  const long long complete = n * (n - 1) / 2;
  const long long missing = complete - base.num_edges();
  return static_cast<int>(std::llround(density * static_cast<double>(missing)));
}

StatusOr<CouplingGraph> ExtrapolateDensity(const CouplingGraph& base,
                                           double density, Rng& rng) {
  if (density < 0.0 || density > 1.0) {
    return Status::InvalidArgument("density must lie in [0, 1]");
  }
  if (!base.IsConnected()) {
    return Status::InvalidArgument("base topology must be connected");
  }
  CouplingGraph result = base;
  int remaining = NumExtraEdges(base, density);
  if (remaining == 0) return result;

  // Group missing pairs by hardware distance in the *base* graph.
  const std::vector<std::vector<int>> dist = base.AllPairsDistances();
  int max_distance = 0;
  for (int a = 0; a < base.num_qubits(); ++a) {
    for (int b = a + 1; b < base.num_qubits(); ++b) {
      max_distance = std::max(max_distance, dist[a][b]);
    }
  }

  for (int delta = 2; delta <= max_distance && remaining > 0; ++delta) {
    std::vector<std::pair<int, int>> candidates;
    for (int a = 0; a < base.num_qubits(); ++a) {
      for (int b = a + 1; b < base.num_qubits(); ++b) {
        if (dist[a][b] == delta) candidates.emplace_back(a, b);
      }
    }
    rng.Shuffle(candidates);
    for (const auto& [a, b] : candidates) {
      if (remaining == 0) break;
      result.AddEdge(a, b);
      --remaining;
    }
  }
  QJO_CHECK_EQ(remaining, 0);
  return result;
}

}  // namespace qjo

#ifndef QJO_TOPOLOGY_DENSITY_H_
#define QJO_TOPOLOGY_DENSITY_H_

#include "topology/coupling_graph.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// Density extrapolation of Sec. 6.2: augments `base` with `d * (N - M)`
/// extra edges, where N = n(n-1)/2 and M is the base edge count, so that
/// d = 0 is the baseline topology and d = 1 a complete mesh. Following the
/// paper, connections between topologically close qubits are added first:
/// all missing pairs at hardware distance delta = 2 are sampled uniformly
/// before any pair at delta = 3, and so on.
/// Fails for d outside [0, 1] or a disconnected base graph.
StatusOr<CouplingGraph> ExtrapolateDensity(const CouplingGraph& base,
                                           double density, Rng& rng);

/// Number of edges ExtrapolateDensity would add for the given density.
int NumExtraEdges(const CouplingGraph& base, double density);

}  // namespace qjo

#endif  // QJO_TOPOLOGY_DENSITY_H_

#include "sim/sqa.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "obs/obs.h"
#include "qubo/qubo_csr.h"
#include "util/check.h"

namespace qjo {

StatusOr<std::vector<SqaSample>> RunSqa(const IsingModel& ising,
                                        const SqaOptions& options, Rng& rng) {
  const int n = ising.num_spins();
  if (n == 0) return Status::InvalidArgument("empty Ising model");
  if (options.num_reads <= 0 || options.annealing_time_us <= 0.0 ||
      options.sweeps_per_us <= 0.0 || options.trotter_slices < 2) {
    return Status::InvalidArgument("bad SQA schedule parameters");
  }

  const int num_sweeps = std::max(
      8, static_cast<int>(options.annealing_time_us * options.sweeps_per_us));
  const int slices = options.trotter_slices;
  const double scale = std::max(ising.MaxAbsCoefficient(), 1e-9);
  const double temperature = options.relative_temperature * scale;
  const double gamma0 = options.relative_initial_field * scale;
  // Shared flat adjacency; entries carry the coupling index so each read
  // can look up its own ICE-perturbed weights through the one structure.
  const IsingCsr csr = IsingCsr::FromIsing(ising);
  const bool incremental = options.kernel == SolverKernel::kIncremental;

  // One draw off the shared generator, then one forked stream per read:
  // the sample set is bit-identical for every parallelism level and
  // thread interleaving (reads land in pre-sized slots).
  const SolverControl& control = options.control;
  StageSpan solve_span(control.trace, "sqa.solve");
  const Rng base(rng.Next());
  std::vector<SqaSample> samples(options.num_reads);

  const auto run_read = [&](int64_t read) {
    StageSpan read_span(control.trace, "sqa.read");
    Rng read_rng = base.Fork(static_cast<uint64_t>(read));

    // Per-read perturbed coefficients (ICE noise), drawn from the read's
    // own stream so noise realisations stay attached to their read.
    std::vector<double> h(ising.h);
    std::vector<double> coupling_weights(ising.couplings.size());
    const double sigma = options.ice_sigma * scale;
    for (int i = 0; i < n; ++i) {
      h[i] = ising.h[i] + (sigma > 0.0 ? sigma * read_rng.Gaussian() : 0.0);
    }
    for (size_t e = 0; e < ising.couplings.size(); ++e) {
      coupling_weights[e] =
          std::get<2>(ising.couplings[e]) +
          (sigma > 0.0 ? sigma * read_rng.Gaussian() : 0.0);
    }

    // spins[p * n + i] in {-1, +1}.
    std::vector<int8_t> spins(static_cast<size_t>(slices) * n);
    for (auto& s : spins) s = read_rng.Bernoulli(0.5) ? 1 : -1;

    // Incremental kernel: persistent classical local fields per Trotter
    // slice, fields[p * n + i] = h_i + sum_j J_ij s_pj, updated on
    // accepted flips only; a proposal is then O(1). The replica term
    // needs no cache — it reads two spins directly.
    std::vector<double> fields;
    if (incremental) {
      fields.assign(static_cast<size_t>(slices) * n, 0.0);
      for (int p = 0; p < slices; ++p) {
        const int8_t* slice = &spins[static_cast<size_t>(p) * n];
        double* slice_fields = &fields[static_cast<size_t>(p) * n];
        for (int i = 0; i < n; ++i) {
          double field = h[i];
          for (int32_t k = csr.offsets[i]; k < csr.offsets[i + 1]; ++k) {
            field += coupling_weights[csr.edge_ids[k]] *
                     static_cast<double>(slice[csr.columns[k]]);
          }
          slice_fields[i] = field;
        }
      }
    }

    int sweeps_run = 0;
    uint64_t slice_flips = 0;
    for (int sweep = 0; sweep < num_sweeps; ++sweep) {
      if (control.stop != nullptr &&
          control.stop->load(std::memory_order_relaxed)) {
        break;
      }
      ++sweeps_run;
      const double s_frac =
          static_cast<double>(sweep) / static_cast<double>(num_sweeps - 1);
      const double gamma = gamma0 * (1.0 - s_frac);
      // Replica coupling J_perp = -(P T / 2) ln tanh(Gamma / (P T)) > 0.
      const double arg =
          std::max(gamma / (slices * temperature), 1e-12);
      const double j_perp = std::min(
          -(slices * temperature / 2.0) * std::log(std::tanh(arg)),
          50.0 * scale);

      for (int p = 0; p < slices; ++p) {
        int8_t* slice = &spins[static_cast<size_t>(p) * n];
        const int8_t* up = &spins[static_cast<size_t>((p + 1) % slices) * n];
        const int8_t* down =
            &spins[static_cast<size_t>((p + slices - 1) % slices) * n];
        double* slice_fields =
            incremental ? &fields[static_cast<size_t>(p) * n] : nullptr;
        for (int i = 0; i < n; ++i) {
          // Classical field (scaled by 1/P) + replica field.
          double field;
          if (incremental) {
            field = slice_fields[i];
          } else {
            field = h[i];
            for (int32_t k = csr.offsets[i]; k < csr.offsets[i + 1]; ++k) {
              field += coupling_weights[csr.edge_ids[k]] *
                       static_cast<double>(slice[csr.columns[k]]);
            }
          }
          double delta =
              -2.0 * static_cast<double>(slice[i]) * field / slices;
          delta += 2.0 * static_cast<double>(slice[i]) * j_perp *
                   (static_cast<double>(up[i]) + static_cast<double>(down[i]));
          if (delta <= 0.0 ||
              read_rng.UniformDouble() < std::exp(-delta / temperature)) {
            slice[i] = static_cast<int8_t>(-slice[i]);
            ++slice_flips;
            if (incremental) {
              // Neighbour fields lose J * old_s and gain J * new_s:
              // += 2 J new_s.
              const double two_s = 2.0 * static_cast<double>(slice[i]);
              for (int32_t k = csr.offsets[i]; k < csr.offsets[i + 1]; ++k) {
                slice_fields[csr.columns[k]] +=
                    two_s * coupling_weights[csr.edge_ids[k]];
              }
            }
          }
        }
      }
    }

    if (control.metrics != nullptr) {
      control.metrics->Count("sqa.reads");
      control.metrics->Count("sqa.sweeps", static_cast<uint64_t>(sweeps_run));
      control.metrics->Count(
          "sqa.proposals", static_cast<uint64_t>(sweeps_run) *
                               static_cast<uint64_t>(slices) *
                               static_cast<uint64_t>(n));
      control.metrics->Count("sqa.slice_flips", slice_flips);
    }

    // Output: the slice with the lowest *true* classical energy.
    SqaSample best;
    best.energy = std::numeric_limits<double>::infinity();
    std::vector<int> candidate(n);
    for (int p = 0; p < slices; ++p) {
      for (int i = 0; i < n; ++i) {
        candidate[i] = spins[static_cast<size_t>(p) * n + i];
      }
      const double energy = ising.Energy(candidate);
      if (energy < best.energy) {
        best.energy = energy;
        best.spins = candidate;
      }
    }
    samples[read] = std::move(best);
  };

  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = control.pool;
  if (pool == nullptr && control.parallelism > 1) {
    local_pool.emplace(control.parallelism);
    pool = &*local_pool;
  }
  ParallelFor(pool, 0, options.num_reads, run_read);
  return samples;
}

}  // namespace qjo

#include "sim/sqa.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

#include "obs/obs.h"
#include "qubo/metropolis.h"
#include "qubo/qubo_csr.h"
#include "util/check.h"
#include "util/simd.h"

namespace qjo {
namespace {

/// Replicas per SoA group of the kBatched kernel (see the SA counterpart
/// in qubo/solvers.cc — same chunking discipline, so group membership
/// depends only on the read index and results are parallelism-invariant).
constexpr int kReplicaBatch = 16;

/// Below/at this many accepted lanes the neighbour update walks the
/// accepted lanes' strided plane entries directly.
constexpr int kScalarUpdateLanes = 2;

/// Fixed per-group schedule parameters, resolved once by RunSqa.
struct SqaScheduleParams {
  int num_sweeps = 0;
  int slices = 0;
  double scale = 0.0;
  double temperature = 0.0;
  double gamma0 = 0.0;
};

/// One SoA group of the kBatched SQA kernel: `lanes` reads anneal in
/// lock step, each with its own ICE-perturbed h/J planes, spin planes
/// and per-slice field planes keyed (p * n + i) * lanes + r. Lane r
/// replays scalar read first_read+r draw for draw (Gaussians for the ICE
/// noise, Bernoullis for the spin init, one uniform per uphill
/// proposal), and every arithmetic expression mirrors the incremental
/// kernel's operand order, so samples are bit-identical to kIncremental.
void RunSqaBatchedGroup(const IsingModel& ising, const IsingCsr& csr,
                        const SqaOptions& options,
                        const SqaScheduleParams& params, const Rng& base,
                        int64_t first_read, int lanes,
                        std::vector<SqaSample>& samples) {
  const int n = ising.num_spins();
  const int slices = params.slices;
  const double temperature = params.temperature;
  const SolverControl& control = options.control;
  const SimdOps& simd = Simd();
  const int64_t L = lanes;
  const size_t num_edges = ising.couplings.size();

  std::vector<Rng> rngs;
  rngs.reserve(static_cast<size_t>(lanes));
  for (int r = 0; r < lanes; ++r) {
    rngs.push_back(base.Fork(static_cast<uint64_t>(first_read + r)));
  }

  // Per-lane ICE-perturbed coefficients and spins, drawn in the scalar
  // read's exact order: n field Gaussians, then one Gaussian per
  // coupling, then slices*n spin Bernoullis.
  const double sigma = options.ice_sigma * params.scale;
  std::vector<double> h_plane(static_cast<size_t>(n) * L);
  std::vector<double> cw_plane(num_edges * L);
  std::vector<int8_t> spins(static_cast<size_t>(slices) * n * L);
  for (int r = 0; r < lanes; ++r) {
    Rng& lane_rng = rngs[r];
    for (int i = 0; i < n; ++i) {
      h_plane[static_cast<size_t>(i) * L + r] =
          ising.h[i] + (sigma > 0.0 ? sigma * lane_rng.Gaussian() : 0.0);
    }
    for (size_t e = 0; e < num_edges; ++e) {
      cw_plane[e * L + r] =
          std::get<2>(ising.couplings[e]) +
          (sigma > 0.0 ? sigma * lane_rng.Gaussian() : 0.0);
    }
    for (size_t idx = 0; idx < static_cast<size_t>(slices) * n; ++idx) {
      spins[idx * L + r] = lane_rng.Bernoulli(0.5) ? 1 : -1;
    }
  }

  // Per-slice local-field planes, accumulated in the scalar kernel's
  // k order per (p, i).
  std::vector<double> fields(static_cast<size_t>(slices) * n * L);
  for (int r = 0; r < lanes; ++r) {
    for (int p = 0; p < slices; ++p) {
      const size_t slice_base = static_cast<size_t>(p) * n;
      for (int i = 0; i < n; ++i) {
        double field = h_plane[static_cast<size_t>(i) * L + r];
        for (int32_t k = csr.offsets[i]; k < csr.offsets[i + 1]; ++k) {
          field += cw_plane[static_cast<size_t>(csr.edge_ids[k]) * L + r] *
                   static_cast<double>(
                       spins[(slice_base + csr.columns[k]) * L + r]);
        }
        fields[(slice_base + i) * L + r] = field;
      }
    }
  }

  std::vector<double> dir(static_cast<size_t>(lanes));
  std::vector<int> accepted_lane(static_cast<size_t>(lanes));
  MetropolisBands bands;
  bands.Prepare(temperature);  // fixed temperature across SQA sweeps
  int sweeps_run = 0;
  uint64_t slice_flips = 0;
  for (int sweep = 0; sweep < params.num_sweeps; ++sweep) {
    if (control.stop != nullptr &&
        control.stop->load(std::memory_order_relaxed)) {
      break;
    }
    ++sweeps_run;
    const double s_frac = static_cast<double>(sweep) /
                          static_cast<double>(params.num_sweeps - 1);
    const double gamma = params.gamma0 * (1.0 - s_frac);
    const double arg = std::max(gamma / (slices * temperature), 1e-12);
    const double j_perp =
        std::min(-(slices * temperature / 2.0) * std::log(std::tanh(arg)),
                 50.0 * params.scale);

    for (int p = 0; p < slices; ++p) {
      int8_t* slice = &spins[static_cast<size_t>(p) * n * L];
      const int8_t* up =
          &spins[static_cast<size_t>((p + 1) % slices) * n * L];
      const int8_t* down =
          &spins[static_cast<size_t>((p + slices - 1) % slices) * n * L];
      double* slice_fields = &fields[static_cast<size_t>(p) * n * L];
      for (int i = 0; i < n; ++i) {
        int8_t* srow = slice + static_cast<size_t>(i) * L;
        const int8_t* uprow = up + static_cast<size_t>(i) * L;
        const int8_t* downrow = down + static_cast<size_t>(i) * L;
        double* frow = slice_fields + static_cast<size_t>(i) * L;
        int num_accepted = 0;
        for (int r = 0; r < lanes; ++r) {
          double delta =
              -2.0 * static_cast<double>(srow[r]) * frow[r] / slices;
          delta += 2.0 * static_cast<double>(srow[r]) * j_perp *
                   (static_cast<double>(uprow[r]) +
                    static_cast<double>(downrow[r]));
          const bool accept =
              delta <= 0.0 || bands.UnderExp(rngs[r].UniformDouble(), -delta);
          if (accept) {
            srow[r] = static_cast<int8_t>(-srow[r]);
            ++slice_flips;
            // += 2 J new_s per neighbour; +-2.0 * J is exact, so the
            // vector update matches the scalar += two_s * J bit for bit.
            dir[r] = 2.0 * static_cast<double>(srow[r]);
            accepted_lane[num_accepted++] = r;
          } else {
            dir[r] = 0.0;
          }
        }
        if (num_accepted == 0) continue;
        const int32_t row_begin = csr.offsets[i];
        const int count = csr.offsets[i + 1] - row_begin;
        if (count == 0) continue;
        if (num_accepted <= kScalarUpdateLanes) {
          for (int a = 0; a < num_accepted; ++a) {
            const int r = accepted_lane[a];
            const double two_s = dir[r];
            for (int32_t k = row_begin; k < row_begin + count; ++k) {
              slice_fields[static_cast<size_t>(csr.columns[k]) * L + r] +=
                  two_s * cw_plane[static_cast<size_t>(csr.edge_ids[k]) * L + r];
            }
          }
        } else {
          simd.sqa_row_update(slice_fields, csr.columns.data() + row_begin,
                              csr.edge_ids.data() + row_begin, cw_plane.data(),
                              count, L, dir.data());
        }
      }
    }
  }

  if (control.metrics != nullptr) {
    control.metrics->Count("sqa.reads", static_cast<uint64_t>(lanes));
    control.metrics->Count("sqa.sweeps", static_cast<uint64_t>(lanes) *
                                             static_cast<uint64_t>(sweeps_run));
    control.metrics->Count("sqa.proposals",
                           static_cast<uint64_t>(lanes) *
                               static_cast<uint64_t>(sweeps_run) *
                               static_cast<uint64_t>(slices) *
                               static_cast<uint64_t>(n));
    control.metrics->Count("sqa.slice_flips", slice_flips);
  }

  // Per lane: the slice with the lowest *true* classical energy, scanned
  // in the scalar kernel's slice order (strict < keeps the first).
  for (int r = 0; r < lanes; ++r) {
    SqaSample best;
    best.energy = std::numeric_limits<double>::infinity();
    std::vector<int> candidate(n);
    for (int p = 0; p < slices; ++p) {
      for (int i = 0; i < n; ++i) {
        candidate[i] =
            spins[(static_cast<size_t>(p) * n + i) * L + r];
      }
      const double energy = ising.Energy(candidate);
      if (energy < best.energy) {
        best.energy = energy;
        best.spins = candidate;
      }
    }
    samples[static_cast<size_t>(first_read) + r] = std::move(best);
  }
}

}  // namespace

StatusOr<std::vector<SqaSample>> RunSqa(const IsingModel& ising,
                                        const SqaOptions& options, Rng& rng) {
  const int n = ising.num_spins();
  if (n == 0) return Status::InvalidArgument("empty Ising model");
  if (options.num_reads <= 0 || options.annealing_time_us <= 0.0 ||
      options.sweeps_per_us <= 0.0 || options.trotter_slices < 2) {
    return Status::InvalidArgument("bad SQA schedule parameters");
  }

  const int num_sweeps = std::max(
      8, static_cast<int>(options.annealing_time_us * options.sweeps_per_us));
  const int slices = options.trotter_slices;
  const double scale = std::max(ising.MaxAbsCoefficient(), 1e-9);
  const double temperature = options.relative_temperature * scale;
  const double gamma0 = options.relative_initial_field * scale;
  // Shared flat adjacency; entries carry the coupling index so each read
  // can look up its own ICE-perturbed weights through the one structure.
  const IsingCsr csr = IsingCsr::FromIsing(ising);
  const bool incremental = options.kernel == SolverKernel::kIncremental;

  // One draw off the shared generator, then one forked stream per read:
  // the sample set is bit-identical for every parallelism level and
  // thread interleaving (reads land in pre-sized slots).
  const SolverControl& control = options.control;
  StageSpan solve_span(control.trace, "sqa.solve");
  const Rng base(rng.Next());
  std::vector<SqaSample> samples(options.num_reads);

  if (options.kernel == SolverKernel::kBatched) {
    SqaScheduleParams params;
    params.num_sweeps = num_sweeps;
    params.slices = slices;
    params.scale = scale;
    params.temperature = temperature;
    params.gamma0 = gamma0;
    const int64_t groups =
        (options.num_reads + kReplicaBatch - 1) / kReplicaBatch;
    const auto run_group = [&](int64_t group) {
      StageSpan group_span(control.trace, "sqa.read_batch");
      const int64_t first_read = group * kReplicaBatch;
      const int lanes = static_cast<int>(std::min<int64_t>(
          kReplicaBatch, options.num_reads - first_read));
      RunSqaBatchedGroup(ising, csr, options, params, base, first_read, lanes,
                         samples);
    };
    std::optional<ThreadPool> local_pool;
    ThreadPool* pool = control.pool;
    if (pool == nullptr && control.parallelism > 1) {
      local_pool.emplace(control.parallelism);
      pool = &*local_pool;
    }
    ParallelFor(pool, 0, groups, run_group);
    return samples;
  }

  const auto run_read = [&](int64_t read) {
    StageSpan read_span(control.trace, "sqa.read");
    Rng read_rng = base.Fork(static_cast<uint64_t>(read));

    // Per-read perturbed coefficients (ICE noise), drawn from the read's
    // own stream so noise realisations stay attached to their read.
    std::vector<double> h(ising.h);
    std::vector<double> coupling_weights(ising.couplings.size());
    const double sigma = options.ice_sigma * scale;
    for (int i = 0; i < n; ++i) {
      h[i] = ising.h[i] + (sigma > 0.0 ? sigma * read_rng.Gaussian() : 0.0);
    }
    for (size_t e = 0; e < ising.couplings.size(); ++e) {
      coupling_weights[e] =
          std::get<2>(ising.couplings[e]) +
          (sigma > 0.0 ? sigma * read_rng.Gaussian() : 0.0);
    }

    // spins[p * n + i] in {-1, +1}.
    std::vector<int8_t> spins(static_cast<size_t>(slices) * n);
    for (auto& s : spins) s = read_rng.Bernoulli(0.5) ? 1 : -1;

    // Incremental kernel: persistent classical local fields per Trotter
    // slice, fields[p * n + i] = h_i + sum_j J_ij s_pj, updated on
    // accepted flips only; a proposal is then O(1). The replica term
    // needs no cache — it reads two spins directly.
    std::vector<double> fields;
    if (incremental) {
      fields.assign(static_cast<size_t>(slices) * n, 0.0);
      for (int p = 0; p < slices; ++p) {
        const int8_t* slice = &spins[static_cast<size_t>(p) * n];
        double* slice_fields = &fields[static_cast<size_t>(p) * n];
        for (int i = 0; i < n; ++i) {
          double field = h[i];
          for (int32_t k = csr.offsets[i]; k < csr.offsets[i + 1]; ++k) {
            field += coupling_weights[csr.edge_ids[k]] *
                     static_cast<double>(slice[csr.columns[k]]);
          }
          slice_fields[i] = field;
        }
      }
    }

    int sweeps_run = 0;
    uint64_t slice_flips = 0;
    for (int sweep = 0; sweep < num_sweeps; ++sweep) {
      if (control.stop != nullptr &&
          control.stop->load(std::memory_order_relaxed)) {
        break;
      }
      ++sweeps_run;
      const double s_frac =
          static_cast<double>(sweep) / static_cast<double>(num_sweeps - 1);
      const double gamma = gamma0 * (1.0 - s_frac);
      // Replica coupling J_perp = -(P T / 2) ln tanh(Gamma / (P T)) > 0.
      const double arg =
          std::max(gamma / (slices * temperature), 1e-12);
      const double j_perp = std::min(
          -(slices * temperature / 2.0) * std::log(std::tanh(arg)),
          50.0 * scale);

      for (int p = 0; p < slices; ++p) {
        int8_t* slice = &spins[static_cast<size_t>(p) * n];
        const int8_t* up = &spins[static_cast<size_t>((p + 1) % slices) * n];
        const int8_t* down =
            &spins[static_cast<size_t>((p + slices - 1) % slices) * n];
        double* slice_fields =
            incremental ? &fields[static_cast<size_t>(p) * n] : nullptr;
        for (int i = 0; i < n; ++i) {
          // Classical field (scaled by 1/P) + replica field.
          double field;
          if (incremental) {
            field = slice_fields[i];
          } else {
            field = h[i];
            for (int32_t k = csr.offsets[i]; k < csr.offsets[i + 1]; ++k) {
              field += coupling_weights[csr.edge_ids[k]] *
                       static_cast<double>(slice[csr.columns[k]]);
            }
          }
          double delta =
              -2.0 * static_cast<double>(slice[i]) * field / slices;
          delta += 2.0 * static_cast<double>(slice[i]) * j_perp *
                   (static_cast<double>(up[i]) + static_cast<double>(down[i]));
          if (delta <= 0.0 ||
              read_rng.UniformDouble() < std::exp(-delta / temperature)) {
            slice[i] = static_cast<int8_t>(-slice[i]);
            ++slice_flips;
            if (incremental) {
              // Neighbour fields lose J * old_s and gain J * new_s:
              // += 2 J new_s.
              const double two_s = 2.0 * static_cast<double>(slice[i]);
              for (int32_t k = csr.offsets[i]; k < csr.offsets[i + 1]; ++k) {
                slice_fields[csr.columns[k]] +=
                    two_s * coupling_weights[csr.edge_ids[k]];
              }
            }
          }
        }
      }
    }

    if (control.metrics != nullptr) {
      control.metrics->Count("sqa.reads");
      control.metrics->Count("sqa.sweeps", static_cast<uint64_t>(sweeps_run));
      control.metrics->Count(
          "sqa.proposals", static_cast<uint64_t>(sweeps_run) *
                               static_cast<uint64_t>(slices) *
                               static_cast<uint64_t>(n));
      control.metrics->Count("sqa.slice_flips", slice_flips);
    }

    // Output: the slice with the lowest *true* classical energy.
    SqaSample best;
    best.energy = std::numeric_limits<double>::infinity();
    std::vector<int> candidate(n);
    for (int p = 0; p < slices; ++p) {
      for (int i = 0; i < n; ++i) {
        candidate[i] = spins[static_cast<size_t>(p) * n + i];
      }
      const double energy = ising.Energy(candidate);
      if (energy < best.energy) {
        best.energy = energy;
        best.spins = candidate;
      }
    }
    samples[read] = std::move(best);
  };

  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = control.pool;
  if (pool == nullptr && control.parallelism > 1) {
    local_pool.emplace(control.parallelism);
    pool = &*local_pool;
  }
  ParallelFor(pool, 0, options.num_reads, run_read);
  return samples;
}

}  // namespace qjo

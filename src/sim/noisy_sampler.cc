#include "sim/noisy_sampler.h"

#include <cmath>

#include "sim/statevector.h"
#include "util/check.h"

namespace qjo {
namespace {

/// Appends a uniformly random non-identity Pauli on `qubit` to the
/// trajectory circuit. The rng draw order matches the pre-fusion
/// implementation that applied the gates directly, draw for draw.
void AppendRandomPauli(QuantumCircuit& trajectory, int qubit, Rng& rng) {
  switch (rng.UniformInt(3)) {
    case 0:
      trajectory.X(qubit);
      break;
    case 1:
      // Y = i X Z: global phase is irrelevant for sampling.
      trajectory.Rz(qubit, 3.14159265358979323846);
      trajectory.X(qubit);
      break;
    default:
      trajectory.Rz(qubit, 3.14159265358979323846);
      break;
  }
}

/// Builds one stochastic trajectory: the base circuit with the drawn
/// gate-error Paulis and idle-decoherence flips spliced in after each
/// gate, in the order the pre-fusion implementation applied them.
QuantumCircuit BuildTrajectory(const QuantumCircuit& circuit,
                               const NoiseModel& noise, double pz, double px,
                               Rng& rng) {
  QuantumCircuit trajectory(circuit.num_qubits());
  // Track layer boundaries the same way Depth() does; when a qubit's
  // layer advances, it idles for one layer -> decoherence channel.
  std::vector<int> level(circuit.num_qubits(), 0);
  for (const Gate& gate : circuit.gates()) {
    trajectory.Append(gate);
    // Gate error.
    const double error_rate = gate.qubits.size() == 2 ? noise.two_qubit_pauli
                                                      : noise.one_qubit_pauli;
    for (int q : gate.qubits) {
      if (rng.Bernoulli(error_rate)) AppendRandomPauli(trajectory, q, rng);
    }
    // Idle decoherence for the layer each operand just spent.
    int layer = 0;
    for (int q : gate.qubits) layer = std::max(layer, level[q]);
    ++layer;
    for (int q : gate.qubits) {
      level[q] = layer;
      if (pz > 0.0 && rng.Bernoulli(pz)) {
        trajectory.Rz(q, 3.14159265358979323846);
      }
      if (px > 0.0 && rng.Bernoulli(px)) {
        trajectory.X(q);
      }
    }
  }
  return trajectory;
}

}  // namespace

NoiseModel NoiseModel::FromDevice(const DeviceProperties& device) {
  NoiseModel noise;
  noise.one_qubit_pauli = device.one_qubit_error;
  noise.two_qubit_pauli = device.two_qubit_error;
  noise.t1_us = device.t1_us;
  noise.t2_us = device.t2_us;
  noise.layer_time_ns = device.avg_gate_time_ns;
  return noise;
}

double NoiseModel::DephasingProbability() const {
  const double dt_us = layer_time_ns / 1000.0;
  return 0.5 * (1.0 - std::exp(-dt_us / t2_us));
}

double NoiseModel::RelaxationProbability() const {
  const double dt_us = layer_time_ns / 1000.0;
  return 0.25 * (1.0 - std::exp(-dt_us / t1_us));
}

uint64_t ApplyReadoutError(uint64_t basis, int num_qubits, double flip_prob,
                           Rng& rng) {
  if (flip_prob <= 0.0) return basis;
  for (int q = 0; q < num_qubits; ++q) {
    if (rng.Bernoulli(flip_prob)) basis ^= uint64_t{1} << q;
  }
  return basis;
}

StatusOr<std::vector<uint64_t>> SampleWithTrajectories(
    const QuantumCircuit& circuit, const NoiseModel& noise, int shots,
    Rng& rng, int max_qubits, SimKernel kernel) {
  if (circuit.num_qubits() > max_qubits) {
    return Status::ResourceExhausted(
        "trajectory sampling is capped; use the global depolarising model "
        "for larger circuits");
  }
  if (shots <= 0) return Status::InvalidArgument("shots must be positive");

  const double pz = noise.DephasingProbability();
  const double px = noise.RelaxationProbability();

  std::vector<uint64_t> samples;
  samples.reserve(shots);
  for (int shot = 0; shot < shots; ++shot) {
    QJO_ASSIGN_OR_RETURN(StateVector state,
                         StateVector::Create(circuit.num_qubits()));
    const QuantumCircuit trajectory =
        BuildTrajectory(circuit, noise, pz, px, rng);
    state.ApplyCircuit(trajectory, kernel);
    const std::vector<uint64_t> outcome = state.Sample(1, rng);
    samples.push_back(ApplyReadoutError(outcome[0], circuit.num_qubits(),
                                        noise.readout_flip, rng));
  }
  return samples;
}

}  // namespace qjo

#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/sampling.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

/// Block size for the amplitude loops. Fixed (never derived from the
/// thread count) so chunk boundaries — and therefore reduction partials —
/// are identical at every parallelism level. 2^14 amplitudes per chunk is
/// large enough to amortise dispatch and keeps every state of <= 14
/// qubits in a single chunk, i.e. bit-identical to the old serial loops.
constexpr int64_t kBlock = int64_t{1} << 14;

using Complex = std::complex<double>;

}  // namespace

StateVector::StateVector(int num_qubits)
    : num_qubits_(num_qubits),
      amplitudes_(uint64_t{1} << num_qubits, Complex(0.0, 0.0)) {
  amplitudes_[0] = Complex(1.0, 0.0);
}

StatusOr<StateVector> StateVector::Create(int num_qubits) {
  if (num_qubits < 1 || num_qubits > 28) {
    return Status::InvalidArgument("state vector supports 1..28 qubits");
  }
  return StateVector(num_qubits);
}

void StateVector::ApplySingleQubitMatrix(int qubit,
                                         const Complex m[2][2]) {
  const uint64_t bit = uint64_t{1} << qubit;
  const uint64_t low_mask = bit - 1;
  // Compressed index space: k in [0, size/2) enumerates exactly the
  // bases with `bit` clear (base = k with a zero spliced in at the bit
  // position), so no iteration is wasted skipping partners and the range
  // splits into equal-work chunks.
  const int64_t half = static_cast<int64_t>(amplitudes_.size() >> 1);
  const Complex m00 = m[0][0], m01 = m[0][1], m10 = m[1][0], m11 = m[1][1];
  Complex* amps = amplitudes_.data();
  ParallelForBlocks(pool_, 0, half, kBlock, [&](int64_t begin, int64_t end) {
    for (int64_t k = begin; k < end; ++k) {
      const uint64_t uk = static_cast<uint64_t>(k);
      const uint64_t base = ((uk & ~low_mask) << 1) | (uk & low_mask);
      const uint64_t partner = base | bit;
      const Complex a0 = amps[base];
      const Complex a1 = amps[partner];
      amps[base] = m00 * a0 + m01 * a1;
      amps[partner] = m10 * a0 + m11 * a1;
    }
  });
}

void StateVector::ApplyCx(int control, int target) {
  const uint64_t cbit = uint64_t{1} << control;
  const uint64_t tbit = uint64_t{1} << target;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  // Only i with control set / target clear is enumerated; its partner
  // i | tbit never is, so chunks write disjoint pairs.
  ParallelForBlocks(pool_, 0, size, kBlock, [&](int64_t begin, int64_t end) {
    for (int64_t s = begin; s < end; ++s) {
      const uint64_t i = static_cast<uint64_t>(s);
      if ((i & cbit) && !(i & tbit)) {
        std::swap(amps[i], amps[i | tbit]);
      }
    }
  });
}

void StateVector::ApplyCz(int a, int b) {
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  ParallelForBlocks(pool_, 0, size, kBlock, [&](int64_t begin, int64_t end) {
    for (int64_t s = begin; s < end; ++s) {
      const uint64_t i = static_cast<uint64_t>(s);
      if ((i & abit) && (i & bbit)) amps[i] = -amps[i];
    }
  });
}

void StateVector::ApplySwap(int a, int b) {
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  // Enumerated i has a set / b clear; the partner has a clear / b set and
  // is never enumerated, so chunks write disjoint pairs.
  ParallelForBlocks(pool_, 0, size, kBlock, [&](int64_t begin, int64_t end) {
    for (int64_t s = begin; s < end; ++s) {
      const uint64_t i = static_cast<uint64_t>(s);
      if ((i & abit) && !(i & bbit)) {
        std::swap(amps[i], amps[(i & ~abit) | bbit]);
      }
    }
  });
}

void StateVector::ApplyRzz(int a, int b, double theta) {
  // exp(-i theta Z(x)Z / 2): phase e^{-i theta/2} when bits agree,
  // e^{+i theta/2} when they differ.
  const Complex same = std::polar(1.0, -theta / 2.0);
  const Complex diff = std::polar(1.0, theta / 2.0);
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  ParallelForBlocks(pool_, 0, size, kBlock, [&](int64_t begin, int64_t end) {
    for (int64_t s = begin; s < end; ++s) {
      const uint64_t i = static_cast<uint64_t>(s);
      const bool ba = i & abit;
      const bool bb = i & bbit;
      amps[i] *= (ba == bb) ? same : diff;
    }
  });
}

void StateVector::ApplyMs(int a, int b, double theta) {
  // exp(-i theta X(x)X / 2) mixes i with i XOR (a|b).
  const double c = std::cos(theta / 2.0);
  const Complex s(0.0, -std::sin(theta / 2.0));
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const uint64_t mask = abit | bbit;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  // Each pair {i, i ^ mask} is owned by its smaller member, so chunks
  // write disjoint pairs.
  ParallelForBlocks(pool_, 0, size, kBlock, [&](int64_t begin, int64_t end) {
    for (int64_t t = begin; t < end; ++t) {
      const uint64_t i = static_cast<uint64_t>(t);
      const uint64_t j = i ^ mask;
      if (j < i) continue;
      const Complex ai = amps[i];
      const Complex aj = amps[j];
      amps[i] = c * ai + s * aj;
      amps[j] = s * ai + c * aj;
    }
  });
}

void StateVector::Apply(const Gate& gate) {
  for (int q : gate.qubits) {
    QJO_CHECK_GE(q, 0);
    QJO_CHECK_LT(q, num_qubits_);
  }
  const double t = gate.parameter;
  switch (gate.type) {
    case GateType::kH: {
      const Complex m[2][2] = {{kInvSqrt2, kInvSqrt2},
                               {kInvSqrt2, -kInvSqrt2}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kX: {
      const Complex m[2][2] = {{0.0, 1.0}, {1.0, 0.0}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kSx: {
      // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]].
      const Complex p(0.5, 0.5), q(0.5, -0.5);
      const Complex m[2][2] = {{p, q}, {q, p}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kRx: {
      const double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
      const Complex m[2][2] = {{c, Complex(0.0, -s)}, {Complex(0.0, -s), c}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kRy: {
      const double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
      const Complex m[2][2] = {{c, -s}, {s, c}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kRz: {
      const Complex m[2][2] = {{std::polar(1.0, -t / 2.0), 0.0},
                               {0.0, std::polar(1.0, t / 2.0)}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kCx:
      ApplyCx(gate.qubits[0], gate.qubits[1]);
      return;
    case GateType::kCz:
      ApplyCz(gate.qubits[0], gate.qubits[1]);
      return;
    case GateType::kSwap:
      ApplySwap(gate.qubits[0], gate.qubits[1]);
      return;
    case GateType::kRzz:
      ApplyRzz(gate.qubits[0], gate.qubits[1], t);
      return;
    case GateType::kMs:
      ApplyMs(gate.qubits[0], gate.qubits[1], t);
      return;
  }
  QJO_CHECK(false) << "unhandled gate";
}

void StateVector::ApplyCircuit(const QuantumCircuit& circuit) {
  QJO_CHECK_EQ(circuit.num_qubits(), num_qubits_);
  for (const Gate& g : circuit.gates()) Apply(g);
}

double StateVector::Probability(uint64_t basis) const {
  QJO_CHECK_LT(basis, amplitudes_.size());
  return std::norm(amplitudes_[basis]);
}

std::vector<double> StateVector::Probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  const Complex* amps = amplitudes_.data();
  double* out = probs.data();
  ParallelForBlocks(pool_, 0, static_cast<int64_t>(amplitudes_.size()), kBlock,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        out[i] = std::norm(amps[i]);
                      }
                    });
  return probs;
}

std::vector<uint64_t> StateVector::Sample(int shots, Rng& rng) const {
  QJO_CHECK_GT(shots, 0);
  std::vector<uint64_t> samples;
  SampleByInverseCdf(
      amplitudes_.size(),
      [this](uint64_t i) { return std::norm(amplitudes_[i]); }, shots, rng,
      samples);
  // Return in random order (the sorted order is an artefact).
  rng.Shuffle(samples);
  return samples;
}

double StateVector::ExpectationZ(int qubit) const {
  const uint64_t bit = uint64_t{1} << qubit;
  const Complex* amps = amplitudes_.data();
  return ParallelBlockedSum(
      pool_, static_cast<int64_t>(amplitudes_.size()), kBlock,
      [&](int64_t begin, int64_t end) {
        double partial = 0.0;
        for (int64_t s = begin; s < end; ++s) {
          const uint64_t i = static_cast<uint64_t>(s);
          const double p = std::norm(amps[i]);
          partial += (i & bit) ? -p : p;
        }
        return partial;
      });
}

double StateVector::ExpectationZZ(int a, int b) const {
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const Complex* amps = amplitudes_.data();
  return ParallelBlockedSum(
      pool_, static_cast<int64_t>(amplitudes_.size()), kBlock,
      [&](int64_t begin, int64_t end) {
        double partial = 0.0;
        for (int64_t s = begin; s < end; ++s) {
          const uint64_t i = static_cast<uint64_t>(s);
          const double p = std::norm(amps[i]);
          const bool same =
              static_cast<bool>(i & abit) == static_cast<bool>(i & bbit);
          partial += same ? p : -p;
        }
        return partial;
      });
}

double StateVector::Overlap(const StateVector& other) const {
  QJO_CHECK_EQ(num_qubits_, other.num_qubits_);
  Complex inner(0.0, 0.0);
  for (size_t i = 0; i < amplitudes_.size(); ++i) {
    inner += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  }
  return std::norm(inner);
}

void StateVector::Normalize() {
  double norm = 0.0;
  for (const Complex& a : amplitudes_) norm += std::norm(a);
  QJO_CHECK_GT(norm, 0.0);
  const double inv = 1.0 / std::sqrt(norm);
  for (Complex& a : amplitudes_) a *= inv;
}

StatusOr<std::vector<std::vector<Complex>>> CircuitUnitary(
    const QuantumCircuit& circuit) {
  if (circuit.num_qubits() > 10) {
    return Status::InvalidArgument("unitary extraction capped at 10 qubits");
  }
  const uint64_t dim = uint64_t{1} << circuit.num_qubits();
  std::vector<std::vector<Complex>> unitary(dim);
  for (uint64_t b = 0; b < dim; ++b) {
    QJO_ASSIGN_OR_RETURN(StateVector sv,
                         StateVector::Create(circuit.num_qubits()));
    // Prepare |b> by X gates.
    for (int q = 0; q < circuit.num_qubits(); ++q) {
      if (b & (uint64_t{1} << q)) sv.Apply(Gate::Single(GateType::kX, q));
    }
    sv.ApplyCircuit(circuit);
    unitary[b] = sv.amplitudes();
  }
  return unitary;
}

bool UnitariesEqualUpToPhase(
    const std::vector<std::vector<Complex>>& a,
    const std::vector<std::vector<Complex>>& b, double tolerance) {
  if (a.size() != b.size()) return false;
  // Find a reference entry with non-negligible magnitude.
  Complex phase(0.0, 0.0);
  for (size_t col = 0; col < a.size() && phase == Complex(0.0, 0.0); ++col) {
    if (a[col].size() != b[col].size()) return false;
    for (size_t row = 0; row < a[col].size(); ++row) {
      if (std::abs(a[col][row]) > 0.5 / std::sqrt(a.size()) &&
          std::abs(b[col][row]) > 1e-12) {
        phase = a[col][row] / b[col][row];
        break;
      }
    }
  }
  if (phase == Complex(0.0, 0.0)) return false;
  if (std::abs(std::abs(phase) - 1.0) > tolerance) return false;
  for (size_t col = 0; col < a.size(); ++col) {
    for (size_t row = 0; row < a[col].size(); ++row) {
      if (std::abs(a[col][row] - phase * b[col][row]) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace qjo

#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace qjo {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

using Complex = std::complex<double>;

}  // namespace

StateVector::StateVector(int num_qubits)
    : num_qubits_(num_qubits),
      amplitudes_(uint64_t{1} << num_qubits, Complex(0.0, 0.0)) {
  amplitudes_[0] = Complex(1.0, 0.0);
}

StatusOr<StateVector> StateVector::Create(int num_qubits) {
  if (num_qubits < 1 || num_qubits > 28) {
    return Status::InvalidArgument("state vector supports 1..28 qubits");
  }
  return StateVector(num_qubits);
}

void StateVector::ApplySingleQubitMatrix(int qubit,
                                         const Complex m[2][2]) {
  const uint64_t bit = uint64_t{1} << qubit;
  const uint64_t size = amplitudes_.size();
  for (uint64_t base = 0; base < size; ++base) {
    if (base & bit) continue;
    const uint64_t partner = base | bit;
    const Complex a0 = amplitudes_[base];
    const Complex a1 = amplitudes_[partner];
    amplitudes_[base] = m[0][0] * a0 + m[0][1] * a1;
    amplitudes_[partner] = m[1][0] * a0 + m[1][1] * a1;
  }
}

void StateVector::ApplyCx(int control, int target) {
  const uint64_t cbit = uint64_t{1} << control;
  const uint64_t tbit = uint64_t{1} << target;
  const uint64_t size = amplitudes_.size();
  for (uint64_t i = 0; i < size; ++i) {
    if ((i & cbit) && !(i & tbit)) {
      std::swap(amplitudes_[i], amplitudes_[i | tbit]);
    }
  }
}

void StateVector::ApplyCz(int a, int b) {
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const uint64_t size = amplitudes_.size();
  for (uint64_t i = 0; i < size; ++i) {
    if ((i & abit) && (i & bbit)) amplitudes_[i] = -amplitudes_[i];
  }
}

void StateVector::ApplySwap(int a, int b) {
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const uint64_t size = amplitudes_.size();
  for (uint64_t i = 0; i < size; ++i) {
    if ((i & abit) && !(i & bbit)) {
      std::swap(amplitudes_[i], amplitudes_[(i & ~abit) | bbit]);
    }
  }
}

void StateVector::ApplyRzz(int a, int b, double theta) {
  // exp(-i theta Z(x)Z / 2): phase e^{-i theta/2} when bits agree,
  // e^{+i theta/2} when they differ.
  const Complex same = std::polar(1.0, -theta / 2.0);
  const Complex diff = std::polar(1.0, theta / 2.0);
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const uint64_t size = amplitudes_.size();
  for (uint64_t i = 0; i < size; ++i) {
    const bool ba = i & abit;
    const bool bb = i & bbit;
    amplitudes_[i] *= (ba == bb) ? same : diff;
  }
}

void StateVector::ApplyMs(int a, int b, double theta) {
  // exp(-i theta X(x)X / 2) mixes i with i XOR (a|b).
  const double c = std::cos(theta / 2.0);
  const Complex s(0.0, -std::sin(theta / 2.0));
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const uint64_t mask = abit | bbit;
  const uint64_t size = amplitudes_.size();
  for (uint64_t i = 0; i < size; ++i) {
    const uint64_t j = i ^ mask;
    if (j < i) continue;
    const Complex ai = amplitudes_[i];
    const Complex aj = amplitudes_[j];
    amplitudes_[i] = c * ai + s * aj;
    amplitudes_[j] = s * ai + c * aj;
  }
}

void StateVector::Apply(const Gate& gate) {
  for (int q : gate.qubits) {
    QJO_CHECK_GE(q, 0);
    QJO_CHECK_LT(q, num_qubits_);
  }
  const double t = gate.parameter;
  switch (gate.type) {
    case GateType::kH: {
      const Complex m[2][2] = {{kInvSqrt2, kInvSqrt2},
                               {kInvSqrt2, -kInvSqrt2}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kX: {
      const Complex m[2][2] = {{0.0, 1.0}, {1.0, 0.0}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kSx: {
      // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]].
      const Complex p(0.5, 0.5), q(0.5, -0.5);
      const Complex m[2][2] = {{p, q}, {q, p}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kRx: {
      const double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
      const Complex m[2][2] = {{c, Complex(0.0, -s)}, {Complex(0.0, -s), c}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kRy: {
      const double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
      const Complex m[2][2] = {{c, -s}, {s, c}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kRz: {
      const Complex m[2][2] = {{std::polar(1.0, -t / 2.0), 0.0},
                               {0.0, std::polar(1.0, t / 2.0)}};
      ApplySingleQubitMatrix(gate.qubits[0], m);
      return;
    }
    case GateType::kCx:
      ApplyCx(gate.qubits[0], gate.qubits[1]);
      return;
    case GateType::kCz:
      ApplyCz(gate.qubits[0], gate.qubits[1]);
      return;
    case GateType::kSwap:
      ApplySwap(gate.qubits[0], gate.qubits[1]);
      return;
    case GateType::kRzz:
      ApplyRzz(gate.qubits[0], gate.qubits[1], t);
      return;
    case GateType::kMs:
      ApplyMs(gate.qubits[0], gate.qubits[1], t);
      return;
  }
  QJO_CHECK(false) << "unhandled gate";
}

void StateVector::ApplyCircuit(const QuantumCircuit& circuit) {
  QJO_CHECK_EQ(circuit.num_qubits(), num_qubits_);
  for (const Gate& g : circuit.gates()) Apply(g);
}

double StateVector::Probability(uint64_t basis) const {
  QJO_CHECK_LT(basis, amplitudes_.size());
  return std::norm(amplitudes_[basis]);
}

std::vector<double> StateVector::Probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  for (size_t i = 0; i < amplitudes_.size(); ++i) {
    probs[i] = std::norm(amplitudes_[i]);
  }
  return probs;
}

std::vector<uint64_t> StateVector::Sample(int shots, Rng& rng) const {
  QJO_CHECK_GT(shots, 0);
  // Sorted uniforms + one cumulative pass: O(2^n + shots log shots).
  std::vector<double> u(shots);
  for (double& v : u) v = rng.UniformDouble();
  std::sort(u.begin(), u.end());
  std::vector<uint64_t> samples(shots);
  double cumulative = 0.0;
  size_t next = 0;
  for (uint64_t i = 0; i < amplitudes_.size() && next < u.size(); ++i) {
    cumulative += std::norm(amplitudes_[i]);
    while (next < u.size() && u[next] < cumulative) samples[next++] = i;
  }
  // Rounding slack: assign the last basis state.
  while (next < u.size()) samples[next++] = amplitudes_.size() - 1;
  // Return in random order (the sorted order is an artefact).
  rng.Shuffle(samples);
  return samples;
}

double StateVector::ExpectationZ(int qubit) const {
  const uint64_t bit = uint64_t{1} << qubit;
  double expectation = 0.0;
  for (uint64_t i = 0; i < amplitudes_.size(); ++i) {
    const double p = std::norm(amplitudes_[i]);
    expectation += (i & bit) ? -p : p;
  }
  return expectation;
}

double StateVector::ExpectationZZ(int a, int b) const {
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  double expectation = 0.0;
  for (uint64_t i = 0; i < amplitudes_.size(); ++i) {
    const double p = std::norm(amplitudes_[i]);
    const bool same = static_cast<bool>(i & abit) == static_cast<bool>(i & bbit);
    expectation += same ? p : -p;
  }
  return expectation;
}

double StateVector::Overlap(const StateVector& other) const {
  QJO_CHECK_EQ(num_qubits_, other.num_qubits_);
  Complex inner(0.0, 0.0);
  for (size_t i = 0; i < amplitudes_.size(); ++i) {
    inner += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  }
  return std::norm(inner);
}

void StateVector::Normalize() {
  double norm = 0.0;
  for (const Complex& a : amplitudes_) norm += std::norm(a);
  QJO_CHECK_GT(norm, 0.0);
  const double inv = 1.0 / std::sqrt(norm);
  for (Complex& a : amplitudes_) a *= inv;
}

StatusOr<std::vector<std::vector<Complex>>> CircuitUnitary(
    const QuantumCircuit& circuit) {
  if (circuit.num_qubits() > 10) {
    return Status::InvalidArgument("unitary extraction capped at 10 qubits");
  }
  const uint64_t dim = uint64_t{1} << circuit.num_qubits();
  std::vector<std::vector<Complex>> unitary(dim);
  for (uint64_t b = 0; b < dim; ++b) {
    QJO_ASSIGN_OR_RETURN(StateVector sv,
                         StateVector::Create(circuit.num_qubits()));
    // Prepare |b> by X gates.
    for (int q = 0; q < circuit.num_qubits(); ++q) {
      if (b & (uint64_t{1} << q)) sv.Apply(Gate::Single(GateType::kX, q));
    }
    sv.ApplyCircuit(circuit);
    unitary[b] = sv.amplitudes();
  }
  return unitary;
}

bool UnitariesEqualUpToPhase(
    const std::vector<std::vector<Complex>>& a,
    const std::vector<std::vector<Complex>>& b, double tolerance) {
  if (a.size() != b.size()) return false;
  // Find a reference entry with non-negligible magnitude.
  Complex phase(0.0, 0.0);
  for (size_t col = 0; col < a.size() && phase == Complex(0.0, 0.0); ++col) {
    if (a[col].size() != b[col].size()) return false;
    for (size_t row = 0; row < a[col].size(); ++row) {
      if (std::abs(a[col][row]) > 0.5 / std::sqrt(a.size()) &&
          std::abs(b[col][row]) > 1e-12) {
        phase = a[col][row] / b[col][row];
        break;
      }
    }
  }
  if (phase == Complex(0.0, 0.0)) return false;
  if (std::abs(std::abs(phase) - 1.0) > tolerance) return false;
  for (size_t col = 0; col < a.size(); ++col) {
    for (size_t row = 0; row < a[col].size(); ++row) {
      if (std::abs(a[col][row] - phase * b[col][row]) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace qjo

#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/sampling.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

/// Block size for the amplitude loops. Fixed (never derived from the
/// thread count) so chunk boundaries — and therefore reduction partials —
/// are identical at every parallelism level. 2^14 amplitudes per chunk is
/// large enough to amortise dispatch and keeps every state of <= 14
/// qubits in a single chunk, i.e. bit-identical to the old serial loops.
constexpr int64_t kBlock = int64_t{1} << 14;

// The fusion pass promises single-qubit runs stay inside one dispatch
// block; both constants must describe the same boundary.
static_assert(kBlock == int64_t{1} << kFusionBlockQubits);

using Complex = std::complex<double>;

/// Size-thresholded pool: states below kMinParallelAmplitudes run their
/// sweeps serially — the sweep is cheaper than waking the workers, and
/// when the call already sits inside a pool task (batched evaluation,
/// parallel reads) serial is the only sane choice anyway.
ThreadPool* PoolFor(ThreadPool* pool, size_t amplitudes) {
  return amplitudes >= static_cast<size_t>(kMinParallelAmplitudes) ? pool
                                                                   : nullptr;
}

/// Fills `m` with the 2x2 unitary of a single-qubit gate; false for
/// two-qubit gates. Shared by the per-gate reference path and the fused
/// run kernel so both apply bit-identical matrix entries.
bool SingleQubitGateMatrix(const Gate& gate, Complex m[2][2]) {
  const double t = gate.parameter;
  switch (gate.type) {
    case GateType::kH: {
      m[0][0] = kInvSqrt2;
      m[0][1] = kInvSqrt2;
      m[1][0] = kInvSqrt2;
      m[1][1] = -kInvSqrt2;
      return true;
    }
    case GateType::kX: {
      m[0][0] = 0.0;
      m[0][1] = 1.0;
      m[1][0] = 1.0;
      m[1][1] = 0.0;
      return true;
    }
    case GateType::kSx: {
      // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]].
      const Complex p(0.5, 0.5), q(0.5, -0.5);
      m[0][0] = p;
      m[0][1] = q;
      m[1][0] = q;
      m[1][1] = p;
      return true;
    }
    case GateType::kRx: {
      const double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
      m[0][0] = c;
      m[0][1] = Complex(0.0, -s);
      m[1][0] = Complex(0.0, -s);
      m[1][1] = c;
      return true;
    }
    case GateType::kRy: {
      const double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
      m[0][0] = c;
      m[0][1] = -s;
      m[1][0] = s;
      m[1][1] = c;
      return true;
    }
    case GateType::kRz: {
      m[0][0] = std::polar(1.0, -t / 2.0);
      m[0][1] = 0.0;
      m[1][0] = 0.0;
      m[1][1] = std::polar(1.0, t / 2.0);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

StateVector::StateVector(int num_qubits)
    : num_qubits_(num_qubits),
      amplitudes_(uint64_t{1} << num_qubits, Complex(0.0, 0.0)) {
  amplitudes_[0] = Complex(1.0, 0.0);
}

StatusOr<StateVector> StateVector::Create(int num_qubits) {
  if (num_qubits < 1 || num_qubits > 28) {
    return Status::InvalidArgument("state vector supports 1..28 qubits");
  }
  return StateVector(num_qubits);
}

void StateVector::ApplySingleQubitMatrix(int qubit,
                                         const Complex m[2][2]) {
  const uint64_t bit = uint64_t{1} << qubit;
  const uint64_t low_mask = bit - 1;
  // Compressed index space: k in [0, size/2) enumerates exactly the
  // bases with `bit` clear (base = k with a zero spliced in at the bit
  // position), so no iteration is wasted skipping partners and the range
  // splits into equal-work chunks.
  const int64_t half = static_cast<int64_t>(amplitudes_.size() >> 1);
  const Complex m00 = m[0][0], m01 = m[0][1], m10 = m[1][0], m11 = m[1][1];
  Complex* amps = amplitudes_.data();
  ParallelForBlocks(PoolFor(pool_, amplitudes_.size()), 0, half, kBlock,
                    [&](int64_t begin, int64_t end) {
    for (int64_t k = begin; k < end; ++k) {
      const uint64_t uk = static_cast<uint64_t>(k);
      const uint64_t base = ((uk & ~low_mask) << 1) | (uk & low_mask);
      const uint64_t partner = base | bit;
      const Complex a0 = amps[base];
      const Complex a1 = amps[partner];
      amps[base] = m00 * a0 + m01 * a1;
      amps[partner] = m10 * a0 + m11 * a1;
    }
  });
}

void StateVector::ApplyCx(int control, int target) {
  const uint64_t cbit = uint64_t{1} << control;
  const uint64_t tbit = uint64_t{1} << target;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  // Only i with control set / target clear is enumerated; its partner
  // i | tbit never is, so chunks write disjoint pairs.
  ParallelForBlocks(PoolFor(pool_, amplitudes_.size()), 0, size, kBlock,
                    [&](int64_t begin, int64_t end) {
    for (int64_t s = begin; s < end; ++s) {
      const uint64_t i = static_cast<uint64_t>(s);
      if ((i & cbit) && !(i & tbit)) {
        std::swap(amps[i], amps[i | tbit]);
      }
    }
  });
}

void StateVector::ApplyCz(int a, int b) {
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  ParallelForBlocks(PoolFor(pool_, amplitudes_.size()), 0, size, kBlock,
                    [&](int64_t begin, int64_t end) {
    for (int64_t s = begin; s < end; ++s) {
      const uint64_t i = static_cast<uint64_t>(s);
      if ((i & abit) && (i & bbit)) amps[i] = -amps[i];
    }
  });
}

void StateVector::ApplySwap(int a, int b) {
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  // Enumerated i has a set / b clear; the partner has a clear / b set and
  // is never enumerated, so chunks write disjoint pairs.
  ParallelForBlocks(PoolFor(pool_, amplitudes_.size()), 0, size, kBlock,
                    [&](int64_t begin, int64_t end) {
    for (int64_t s = begin; s < end; ++s) {
      const uint64_t i = static_cast<uint64_t>(s);
      if ((i & abit) && !(i & bbit)) {
        std::swap(amps[i], amps[(i & ~abit) | bbit]);
      }
    }
  });
}

void StateVector::ApplyRzz(int a, int b, double theta) {
  // exp(-i theta Z(x)Z / 2): phase e^{-i theta/2} when bits agree,
  // e^{+i theta/2} when they differ.
  const Complex same = std::polar(1.0, -theta / 2.0);
  const Complex diff = std::polar(1.0, theta / 2.0);
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  ParallelForBlocks(PoolFor(pool_, amplitudes_.size()), 0, size, kBlock,
                    [&](int64_t begin, int64_t end) {
    for (int64_t s = begin; s < end; ++s) {
      const uint64_t i = static_cast<uint64_t>(s);
      const bool ba = i & abit;
      const bool bb = i & bbit;
      amps[i] *= (ba == bb) ? same : diff;
    }
  });
}

void StateVector::ApplyMs(int a, int b, double theta) {
  // exp(-i theta X(x)X / 2) mixes i with i XOR (a|b).
  const double c = std::cos(theta / 2.0);
  const Complex s(0.0, -std::sin(theta / 2.0));
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const uint64_t mask = abit | bbit;
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  // Each pair {i, i ^ mask} is owned by its smaller member, so chunks
  // write disjoint pairs.
  ParallelForBlocks(PoolFor(pool_, amplitudes_.size()), 0, size, kBlock,
                    [&](int64_t begin, int64_t end) {
    for (int64_t t = begin; t < end; ++t) {
      const uint64_t i = static_cast<uint64_t>(t);
      const uint64_t j = i ^ mask;
      if (j < i) continue;
      const Complex ai = amps[i];
      const Complex aj = amps[j];
      amps[i] = c * ai + s * aj;
      amps[j] = s * ai + c * aj;
    }
  });
}

void StateVector::Apply(const Gate& gate) {
  for (int q : gate.qubits) {
    QJO_CHECK_GE(q, 0);
    QJO_CHECK_LT(q, num_qubits_);
  }
  Complex m[2][2];
  if (SingleQubitGateMatrix(gate, m)) {
    ApplySingleQubitMatrix(gate.qubits[0], m);
    return;
  }
  const double t = gate.parameter;
  switch (gate.type) {
    case GateType::kCx:
      ApplyCx(gate.qubits[0], gate.qubits[1]);
      return;
    case GateType::kCz:
      ApplyCz(gate.qubits[0], gate.qubits[1]);
      return;
    case GateType::kSwap:
      ApplySwap(gate.qubits[0], gate.qubits[1]);
      return;
    case GateType::kRzz:
      ApplyRzz(gate.qubits[0], gate.qubits[1], t);
      return;
    case GateType::kMs:
      ApplyMs(gate.qubits[0], gate.qubits[1], t);
      return;
    default:
      break;
  }
  QJO_CHECK(false) << "unhandled gate";
}

void StateVector::ApplySingleQubitRun(const std::vector<Gate>& gates) {
  struct RunGate {
    uint64_t bit;
    Complex m00, m01, m10, m11;
  };
  std::vector<RunGate> run;
  run.reserve(gates.size());
  for (const Gate& gate : gates) {
    QJO_CHECK_GE(gate.qubits[0], 0);
    QJO_CHECK_LT(gate.qubits[0], num_qubits_);
    QJO_CHECK_LT(gate.qubits[0], kFusionBlockQubits);
    Complex m[2][2];
    QJO_CHECK(SingleQubitGateMatrix(gate, m));
    run.push_back(RunGate{uint64_t{1} << gate.qubits[0], m[0][0], m[0][1],
                          m[1][0], m[1][1]});
  }
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  // One pass over the state: each block applies every gate of the run
  // before the next block is touched. Every butterfly pair lives inside
  // one block (bit < kBlock), gates within a block run in circuit order,
  // and butterflies of one gate are independent across pairs — so each
  // amplitude sees exactly the arithmetic of the gate-by-gate sweeps.
  ParallelForBlocks(
      PoolFor(pool_, amplitudes_.size()), 0, size, kBlock,
      [&](int64_t begin, int64_t end) {
        const uint64_t len = static_cast<uint64_t>(end - begin);
        for (const RunGate& g : run) {
          for (uint64_t group = 0; group < len; group += 2 * g.bit) {
            Complex* lo = amps + begin + group;
            Complex* hi = lo + g.bit;
            for (uint64_t l = 0; l < g.bit; ++l) {
              const Complex a0 = lo[l];
              const Complex a1 = hi[l];
              lo[l] = g.m00 * a0 + g.m01 * a1;
              hi[l] = g.m10 * a0 + g.m11 * a1;
            }
          }
        }
      });
}

void StateVector::ApplyDiagonalRun(const std::vector<Gate>& gates) {
  struct DiagTerm {
    GateType type;
    uint64_t abit = 0;
    uint64_t bbit = 0;
    Complex f0{1.0, 0.0};  ///< kRz: bit clear; kRzz: bits agree
    Complex f1{1.0, 0.0};  ///< kRz: bit set; kRzz: bits differ
  };
  std::vector<DiagTerm> terms;
  terms.reserve(gates.size());
  for (const Gate& gate : gates) {
    for (int q : gate.qubits) {
      QJO_CHECK_GE(q, 0);
      QJO_CHECK_LT(q, num_qubits_);
    }
    DiagTerm term;
    term.type = gate.type;
    const double t = gate.parameter;
    switch (gate.type) {
      case GateType::kRz:
        term.abit = uint64_t{1} << gate.qubits[0];
        term.f0 = std::polar(1.0, -t / 2.0);
        term.f1 = std::polar(1.0, t / 2.0);
        break;
      case GateType::kRzz:
        term.abit = uint64_t{1} << gate.qubits[0];
        term.bbit = uint64_t{1} << gate.qubits[1];
        term.f0 = std::polar(1.0, -t / 2.0);
        term.f1 = std::polar(1.0, t / 2.0);
        break;
      case GateType::kCz:
        term.abit = uint64_t{1} << gate.qubits[0];
        term.bbit = uint64_t{1} << gate.qubits[1];
        break;
      default:
        QJO_CHECK(false) << "non-diagonal gate in diagonal run";
    }
    terms.push_back(term);
  }
  const int64_t size = static_cast<int64_t>(amplitudes_.size());
  Complex* amps = amplitudes_.data();
  // Single element-wise sweep; per amplitude the factors multiply in gate
  // order with the same operand order as the reference kernels (kRz:
  // factor * amp, mirroring the matrix row; kRzz: amp *= factor; kCz:
  // plain negation), so values match the gate-by-gate path exactly.
  ParallelForBlocks(
      PoolFor(pool_, amplitudes_.size()), 0, size, kBlock,
      [&](int64_t begin, int64_t end) {
        for (int64_t s = begin; s < end; ++s) {
          const uint64_t i = static_cast<uint64_t>(s);
          Complex a = amps[i];
          for (const DiagTerm& term : terms) {
            switch (term.type) {
              case GateType::kRz:
                a = (i & term.abit) ? term.f1 * a : term.f0 * a;
                break;
              case GateType::kRzz: {
                const bool same =
                    ((i & term.abit) != 0) == ((i & term.bbit) != 0);
                a = a * (same ? term.f0 : term.f1);
                break;
              }
              default:  // kCz
                if ((i & term.abit) && (i & term.bbit)) a = -a;
                break;
            }
          }
          amps[i] = a;
        }
      });
}

void StateVector::ApplyFused(const FusedCircuit& fused) {
  QJO_CHECK_EQ(fused.num_qubits, num_qubits_);
  for (const FusedOp& op : fused.ops) {
    switch (op.kind) {
      case FusedOpKind::kSingleQubitRun:
        ApplySingleQubitRun(op.gates);
        break;
      case FusedOpKind::kDiagonalRun:
        ApplyDiagonalRun(op.gates);
        break;
      case FusedOpKind::kGate:
        Apply(op.gates.front());
        break;
    }
  }
}

void StateVector::ApplyCircuit(const QuantumCircuit& circuit,
                               SimKernel kernel) {
  QJO_CHECK_EQ(circuit.num_qubits(), num_qubits_);
  if (kernel == SimKernel::kFused) {
    ApplyFused(FuseCircuit(circuit));
    return;
  }
  for (const Gate& g : circuit.gates()) Apply(g);
}

double StateVector::Probability(uint64_t basis) const {
  QJO_CHECK_LT(basis, amplitudes_.size());
  return std::norm(amplitudes_[basis]);
}

std::vector<double> StateVector::Probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  const Complex* amps = amplitudes_.data();
  double* out = probs.data();
  ParallelForBlocks(PoolFor(pool_, amplitudes_.size()), 0,
                    static_cast<int64_t>(amplitudes_.size()), kBlock,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        out[i] = std::norm(amps[i]);
                      }
                    });
  return probs;
}

std::vector<uint64_t> StateVector::Sample(int shots, Rng& rng) const {
  QJO_CHECK_GT(shots, 0);
  std::vector<uint64_t> samples;
  SampleByInverseCdf(
      amplitudes_.size(),
      [this](uint64_t i) { return std::norm(amplitudes_[i]); }, shots, rng,
      samples);
  // Return in random order (the sorted order is an artefact).
  rng.Shuffle(samples);
  return samples;
}

double StateVector::ExpectationZ(int qubit) const {
  const uint64_t bit = uint64_t{1} << qubit;
  const Complex* amps = amplitudes_.data();
  return ParallelBlockedSum(
      PoolFor(pool_, amplitudes_.size()),
      static_cast<int64_t>(amplitudes_.size()), kBlock,
      [&](int64_t begin, int64_t end) {
        double partial = 0.0;
        for (int64_t s = begin; s < end; ++s) {
          const uint64_t i = static_cast<uint64_t>(s);
          const double p = std::norm(amps[i]);
          partial += (i & bit) ? -p : p;
        }
        return partial;
      });
}

double StateVector::ExpectationZZ(int a, int b) const {
  const uint64_t abit = uint64_t{1} << a;
  const uint64_t bbit = uint64_t{1} << b;
  const Complex* amps = amplitudes_.data();
  return ParallelBlockedSum(
      PoolFor(pool_, amplitudes_.size()),
      static_cast<int64_t>(amplitudes_.size()), kBlock,
      [&](int64_t begin, int64_t end) {
        double partial = 0.0;
        for (int64_t s = begin; s < end; ++s) {
          const uint64_t i = static_cast<uint64_t>(s);
          const double p = std::norm(amps[i]);
          const bool same =
              static_cast<bool>(i & abit) == static_cast<bool>(i & bbit);
          partial += same ? p : -p;
        }
        return partial;
      });
}

double StateVector::Overlap(const StateVector& other) const {
  QJO_CHECK_EQ(num_qubits_, other.num_qubits_);
  Complex inner(0.0, 0.0);
  for (size_t i = 0; i < amplitudes_.size(); ++i) {
    inner += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  }
  return std::norm(inner);
}

void StateVector::Normalize() {
  double norm = 0.0;
  for (const Complex& a : amplitudes_) norm += std::norm(a);
  QJO_CHECK_GT(norm, 0.0);
  const double inv = 1.0 / std::sqrt(norm);
  for (Complex& a : amplitudes_) a *= inv;
}

StatusOr<std::vector<std::vector<Complex>>> CircuitUnitary(
    const QuantumCircuit& circuit) {
  if (circuit.num_qubits() > 10) {
    return Status::InvalidArgument("unitary extraction capped at 10 qubits");
  }
  const uint64_t dim = uint64_t{1} << circuit.num_qubits();
  std::vector<std::vector<Complex>> unitary(dim);
  for (uint64_t b = 0; b < dim; ++b) {
    QJO_ASSIGN_OR_RETURN(StateVector sv,
                         StateVector::Create(circuit.num_qubits()));
    // Prepare |b> by X gates.
    for (int q = 0; q < circuit.num_qubits(); ++q) {
      if (b & (uint64_t{1} << q)) sv.Apply(Gate::Single(GateType::kX, q));
    }
    sv.ApplyCircuit(circuit);
    unitary[b] = sv.amplitudes();
  }
  return unitary;
}

bool UnitariesEqualUpToPhase(
    const std::vector<std::vector<Complex>>& a,
    const std::vector<std::vector<Complex>>& b, double tolerance) {
  if (a.size() != b.size()) return false;
  // Find a reference entry with non-negligible magnitude.
  Complex phase(0.0, 0.0);
  for (size_t col = 0; col < a.size() && phase == Complex(0.0, 0.0); ++col) {
    if (a[col].size() != b[col].size()) return false;
    for (size_t row = 0; row < a[col].size(); ++row) {
      if (std::abs(a[col][row]) > 0.5 / std::sqrt(a.size()) &&
          std::abs(b[col][row]) > 1e-12) {
        phase = a[col][row] / b[col][row];
        break;
      }
    }
  }
  if (phase == Complex(0.0, 0.0)) return false;
  if (std::abs(std::abs(phase) - 1.0) > tolerance) return false;
  for (size_t col = 0; col < a.size(); ++col) {
    for (size_t row = 0; row < a[col].size(); ++row) {
      if (std::abs(a[col][row] - phase * b[col][row]) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace qjo

#include "sim/qaoa_simulator.h"

#include <algorithm>
#include <cmath>

#include "qubo/qubo_csr.h"
#include "util/check.h"
#include "util/sampling.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

/// Fixed block size for the 2^n amplitude loops; see the StateVector
/// kernels for the determinism rationale (chunk boundaries never depend
/// on the thread count).
constexpr int64_t kBlock = int64_t{1} << 14;

}  // namespace

QaoaSimulator::QaoaSimulator(const IsingModel& ising)
    : num_qubits_(ising.num_spins()) {
  BuildCostSpectrum(ising);
}

StatusOr<QaoaSimulator> QaoaSimulator::Create(const IsingModel& ising) {
  if (ising.num_spins() < 1 || ising.num_spins() > 27) {
    return Status::InvalidArgument("QAOA simulator supports 1..27 qubits");
  }
  return QaoaSimulator(ising);
}

void QaoaSimulator::BuildCostSpectrum(const IsingModel& ising) {
  const int n = num_qubits_;
  const uint64_t size = uint64_t{1} << n;
  cost_.assign(size, 0.0f);

  // Shared flat CSR adjacency for O(degree) Gray-code energy deltas; its
  // per-row entry order matches the adjacency-list build it replaced, so
  // the spectrum is bit-identical.
  const IsingCsr csr = IsingCsr::FromIsing(ising);

  // Bit b set in x means spin b is -1 (QUBO bit 1).
  std::vector<int8_t> spins(n, 1);
  double energy = ising.offset;
  for (int i = 0; i < n; ++i) energy += ising.h[i];
  for (const auto& [i, j, w] : ising.couplings) {
    (void)i;
    (void)j;
    energy += w;
  }
  cost_[0] = static_cast<float>(energy);

  uint64_t x = 0;
  for (uint64_t k = 1; k < size; ++k) {
    const int bit = static_cast<int>(__builtin_ctzll(k));
    // Flipping spin `bit`: dE = -2 s_bit (h_bit + sum_j J_bj s_j).
    double field = ising.h[bit];
    for (int32_t e = csr.offsets[bit]; e < csr.offsets[bit + 1]; ++e) {
      field += csr.weights[e] * static_cast<double>(spins[csr.columns[e]]);
    }
    energy -= 2.0 * static_cast<double>(spins[bit]) * field;
    spins[bit] = static_cast<int8_t>(-spins[bit]);
    x ^= uint64_t{1} << bit;
    cost_[x] = static_cast<float>(energy);
  }
}

double QaoaSimulator::Run(const QaoaParameters& parameters) {
  QJO_CHECK_GT(parameters.p(), 0);
  QJO_CHECK_EQ(parameters.gammas.size(), parameters.betas.size());
  const uint64_t size = uint64_t{1} << num_qubits_;
  const float amp0 = 1.0f / std::sqrt(static_cast<float>(size));
  amplitudes_.assign(size, std::complex<float>(amp0, 0.0f));

  std::complex<float>* amps = amplitudes_.data();
  const float* cost = cost_.data();
  for (int rep = 0; rep < parameters.p(); ++rep) {
    const float gamma = static_cast<float>(parameters.gammas[rep]);
    // Cost phase: exp(-i gamma E(x)) (the offset is a global phase).
    ParallelForBlocks(pool_, 0, static_cast<int64_t>(size), kBlock,
                      [&](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) {
                          const float angle = -gamma * cost[i];
                          amps[i] *= std::complex<float>(std::cos(angle),
                                                         std::sin(angle));
                        }
                      });
    // Mixer: RX(2 beta) on every qubit, over the compressed index space
    // (k with a zero spliced in at the qubit's bit position).
    const float beta = static_cast<float>(parameters.betas[rep]);
    const float c = std::cos(beta);
    const std::complex<float> s(0.0f, -std::sin(beta));
    for (int q = 0; q < num_qubits_; ++q) {
      const uint64_t bit = uint64_t{1} << q;
      const uint64_t low_mask = bit - 1;
      ParallelForBlocks(
          pool_, 0, static_cast<int64_t>(size >> 1), kBlock,
          [&](int64_t begin, int64_t end) {
            for (int64_t k = begin; k < end; ++k) {
              const uint64_t uk = static_cast<uint64_t>(k);
              const uint64_t base = ((uk & ~low_mask) << 1) | (uk & low_mask);
              const uint64_t partner = base | bit;
              const std::complex<float> a0 = amps[base];
              const std::complex<float> a1 = amps[partner];
              amps[base] = c * a0 + s * a1;
              amps[partner] = s * a0 + c * a1;
            }
          });
    }
  }
  state_loaded_ = true;

  return ParallelBlockedSum(pool_, static_cast<int64_t>(size), kBlock,
                            [&](int64_t begin, int64_t end) {
                              double partial = 0.0;
                              for (int64_t i = begin; i < end; ++i) {
                                partial +=
                                    static_cast<double>(std::norm(amps[i])) *
                                    static_cast<double>(cost[i]);
                              }
                              return partial;
                            });
}

double QaoaSimulator::Expectation(double gamma, double beta) {
  QaoaParameters params;
  params.gammas = {gamma};
  params.betas = {beta};
  return Run(params);
}

std::vector<uint64_t> QaoaSimulator::Sample(int shots, double fidelity,
                                            Rng& rng) {
  QJO_CHECK(state_loaded_) << "call Run() before Sample()";
  QJO_CHECK_GT(shots, 0);
  QJO_CHECK_GE(fidelity, 0.0);
  QJO_CHECK_LE(fidelity, 1.0);
  const uint64_t size = uint64_t{1} << num_qubits_;

  std::vector<uint64_t> samples;
  samples.reserve(shots);
  int ideal_shots = 0;
  for (int s = 0; s < shots; ++s) {
    if (rng.Bernoulli(fidelity)) {
      ++ideal_shots;
    } else {
      samples.push_back(rng.Next() & (size - 1));  // depolarised shot
    }
  }
  if (ideal_shots > 0) {
    SampleByInverseCdf(
        size,
        [this](uint64_t i) {
          return static_cast<double>(std::norm(amplitudes_[i]));
        },
        ideal_shots, rng, samples);
  }
  rng.Shuffle(samples);
  return samples;
}

double QaoaSimulator::Probability(uint64_t basis) const {
  QJO_CHECK(state_loaded_);
  QJO_CHECK_LT(basis, amplitudes_.size());
  return static_cast<double>(std::norm(amplitudes_[basis]));
}

double QaoaSimulator::MinCost(uint64_t* argmin) const {
  uint64_t best = 0;
  float best_cost = cost_[0];
  for (uint64_t i = 1; i < cost_.size(); ++i) {
    if (cost_[i] < best_cost) {
      best_cost = cost_[i];
      best = i;
    }
  }
  if (argmin != nullptr) *argmin = best;
  return static_cast<double>(best_cost);
}

}  // namespace qjo

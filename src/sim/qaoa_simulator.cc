#include "sim/qaoa_simulator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace qjo {

QaoaSimulator::QaoaSimulator(const IsingModel& ising)
    : num_qubits_(ising.num_spins()) {
  BuildCostSpectrum(ising);
}

StatusOr<QaoaSimulator> QaoaSimulator::Create(const IsingModel& ising) {
  if (ising.num_spins() < 1 || ising.num_spins() > 27) {
    return Status::InvalidArgument("QAOA simulator supports 1..27 qubits");
  }
  return QaoaSimulator(ising);
}

void QaoaSimulator::BuildCostSpectrum(const IsingModel& ising) {
  const int n = num_qubits_;
  const uint64_t size = uint64_t{1} << n;
  cost_.assign(size, 0.0f);

  // Neighbour lists for O(degree) Gray-code energy deltas.
  std::vector<std::vector<std::pair<int, double>>> adjacency(n);
  for (const auto& [i, j, w] : ising.couplings) {
    adjacency[i].emplace_back(j, w);
    adjacency[j].emplace_back(i, w);
  }

  // Bit b set in x means spin b is -1 (QUBO bit 1).
  std::vector<int8_t> spins(n, 1);
  double energy = ising.offset;
  for (int i = 0; i < n; ++i) energy += ising.h[i];
  for (const auto& [i, j, w] : ising.couplings) {
    (void)i;
    (void)j;
    energy += w;
  }
  cost_[0] = static_cast<float>(energy);

  uint64_t x = 0;
  for (uint64_t k = 1; k < size; ++k) {
    const int bit = static_cast<int>(__builtin_ctzll(k));
    // Flipping spin `bit`: dE = -2 s_bit (h_bit + sum_j J_bj s_j).
    double field = ising.h[bit];
    for (const auto& [j, w] : adjacency[bit]) {
      field += w * static_cast<double>(spins[j]);
    }
    energy -= 2.0 * static_cast<double>(spins[bit]) * field;
    spins[bit] = static_cast<int8_t>(-spins[bit]);
    x ^= uint64_t{1} << bit;
    cost_[x] = static_cast<float>(energy);
  }
}

double QaoaSimulator::Run(const QaoaParameters& parameters) {
  QJO_CHECK_GT(parameters.p(), 0);
  QJO_CHECK_EQ(parameters.gammas.size(), parameters.betas.size());
  const uint64_t size = uint64_t{1} << num_qubits_;
  const float amp0 = 1.0f / std::sqrt(static_cast<float>(size));
  amplitudes_.assign(size, std::complex<float>(amp0, 0.0f));

  for (int rep = 0; rep < parameters.p(); ++rep) {
    const float gamma = static_cast<float>(parameters.gammas[rep]);
    // Cost phase: exp(-i gamma E(x)) (the offset is a global phase).
    for (uint64_t i = 0; i < size; ++i) {
      const float angle = -gamma * cost_[i];
      amplitudes_[i] *= std::complex<float>(std::cos(angle), std::sin(angle));
    }
    // Mixer: RX(2 beta) on every qubit.
    const float beta = static_cast<float>(parameters.betas[rep]);
    const float c = std::cos(beta);
    const std::complex<float> s(0.0f, -std::sin(beta));
    for (int q = 0; q < num_qubits_; ++q) {
      const uint64_t bit = uint64_t{1} << q;
      for (uint64_t base = 0; base < size; ++base) {
        if (base & bit) continue;
        const uint64_t partner = base | bit;
        const std::complex<float> a0 = amplitudes_[base];
        const std::complex<float> a1 = amplitudes_[partner];
        amplitudes_[base] = c * a0 + s * a1;
        amplitudes_[partner] = s * a0 + c * a1;
      }
    }
  }
  state_loaded_ = true;

  double expectation = 0.0;
  for (uint64_t i = 0; i < size; ++i) {
    expectation += static_cast<double>(std::norm(amplitudes_[i])) *
                   static_cast<double>(cost_[i]);
  }
  return expectation;
}

double QaoaSimulator::Expectation(double gamma, double beta) {
  QaoaParameters params;
  params.gammas = {gamma};
  params.betas = {beta};
  return Run(params);
}

std::vector<uint64_t> QaoaSimulator::Sample(int shots, double fidelity,
                                            Rng& rng) {
  QJO_CHECK(state_loaded_) << "call Run() before Sample()";
  QJO_CHECK_GT(shots, 0);
  QJO_CHECK_GE(fidelity, 0.0);
  QJO_CHECK_LE(fidelity, 1.0);
  const uint64_t size = uint64_t{1} << num_qubits_;

  std::vector<uint64_t> samples;
  samples.reserve(shots);
  int ideal_shots = 0;
  for (int s = 0; s < shots; ++s) {
    if (rng.Bernoulli(fidelity)) {
      ++ideal_shots;
    } else {
      samples.push_back(rng.Next() & (size - 1));  // depolarised shot
    }
  }
  if (ideal_shots > 0) {
    std::vector<double> u(ideal_shots);
    for (double& v : u) v = rng.UniformDouble();
    std::sort(u.begin(), u.end());
    double cumulative = 0.0;
    size_t next = 0;
    for (uint64_t i = 0; i < size && next < u.size(); ++i) {
      cumulative += static_cast<double>(std::norm(amplitudes_[i]));
      while (next < u.size() && u[next] < cumulative) {
        samples.push_back(i);
        ++next;
      }
    }
    while (next < u.size()) {
      samples.push_back(size - 1);
      ++next;
    }
  }
  rng.Shuffle(samples);
  return samples;
}

double QaoaSimulator::Probability(uint64_t basis) const {
  QJO_CHECK(state_loaded_);
  QJO_CHECK_LT(basis, amplitudes_.size());
  return static_cast<double>(std::norm(amplitudes_[basis]));
}

double QaoaSimulator::MinCost(uint64_t* argmin) const {
  uint64_t best = 0;
  float best_cost = cost_[0];
  for (uint64_t i = 1; i < cost_.size(); ++i) {
    if (cost_[i] < best_cost) {
      best_cost = cost_[i];
      best = i;
    }
  }
  if (argmin != nullptr) *argmin = best;
  return static_cast<double>(best_cost);
}

}  // namespace qjo

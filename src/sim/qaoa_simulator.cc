#include "sim/qaoa_simulator.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "obs/obs.h"
#include "qubo/qubo_csr.h"
#include "util/check.h"
#include "util/sampling.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

/// Fixed block size for the 2^n amplitude loops; see the StateVector
/// kernels for the determinism rationale (chunk boundaries never depend
/// on the thread count). A 2^14-amplitude block is 128 KiB of
/// complex<float> — it fits in L2, which is what makes fusing the phase
/// multiply with the low-qubit butterflies profitable: the block is
/// loaded once per layer instead of once per gate.
constexpr int kBlockQubits = 14;
constexpr int64_t kBlock = int64_t{1} << kBlockQubits;

/// Column tile (in amplitudes) for the high-qubit mixer sweep: all
/// qubits with bit >= kBlockQubits are applied to one 2^11-column strip
/// before moving to the next, so the strip's rows stay cache-resident
/// across the whole high-qubit pass.
constexpr int64_t kHighTile = int64_t{1} << 11;

/// Memory budget for the per-gamma phase-factor tables exp(-i gamma
/// E(x)). A table turns the sincos per amplitude per layer into a load
/// and is reused verbatim whenever a layer's gamma was seen before
/// (replicated layers, gamma-major grid sweeps — a depth-p evaluation
/// needs p live tables for cross-evaluation reuse, hence a small cache
/// rather than a single slot). The budget caps cache_entries *
/// 2^n * sizeof(complex<float>): 8 entries up to 20 qubits, dropping to
/// 0 (inline sincos) above 23.
constexpr uint64_t kMaxPhaseTableBytes = uint64_t{64} << 20;
constexpr size_t kMaxPhaseTableEntries = 8;

size_t MaxPhaseTableEntries(int num_qubits) {
  const uint64_t table_bytes =
      (uint64_t{1} << num_qubits) * sizeof(std::complex<float>);
  return std::min(kMaxPhaseTableEntries,
                  static_cast<size_t>(kMaxPhaseTableBytes / table_bytes));
}

/// Gates per-sweep parallelism on the state size: below the threshold
/// the dispatch overhead exceeds the loop body and the sweeps run
/// serially (see sim/sim_kernel.h).
ThreadPool* GatedPool(ThreadPool* pool, uint64_t amplitudes) {
  return amplitudes >= static_cast<uint64_t>(kMinParallelAmplitudes) ? pool
                                                                     : nullptr;
}

// ---------------------------------------------------------------------------
// Butterfly and phase kernels live in util/simd (runtime-dispatched
// scalar/SSE2/AVX2/AVX-512 tiers). All tiers compute exactly
//   lo' = c*lo + (0,-sn)*hi     hi' = (0,-sn)*lo + c*hi
// with the same per-component rounding as the std::complex expression in
// the reference kernel, so fused and reference amplitudes compare equal
// with operator== (only signs of zeros can differ) on every tier — see
// the determinism contract in util/simd.h. Dispatch granularity is one
// block or row run per indirect call, so the function-pointer hop is
// amortised over thousands of amplitudes.
// ---------------------------------------------------------------------------

/// Mixer butterflies for all qubits with bit >= block_qubits. Amplitude
/// index = row * bsz + column; high qubits only pair up row indices at a
/// fixed column, so the sweep walks 2^11-column strips and applies every
/// high qubit (ascending, matching the reference order) while the strip
/// is hot. Strips are independent, which is also the parallel axis.
void MixerHighSweep(float* amps, int n, int block_qubits, float c, float sn,
                    ThreadPool* pool) {
  const int h = n - block_qubits;
  if (h <= 0) return;
  const int64_t bsz = int64_t{1} << block_qubits;
  const int64_t tile = std::min(bsz, kHighTile);
  const int64_t half_rows = int64_t{1} << (h - 1);
  const SimdOps& simd = Simd();
  ParallelForBlocks(
      pool, 0, bsz, tile, [&](int64_t col_begin, int64_t col_end) {
        for (int64_t l0 = col_begin; l0 < col_end; l0 += tile) {
          const int64_t cols = std::min(tile, col_end - l0);
          for (int q = 0; q < h; ++q) {
            const int64_t rbit = int64_t{1} << q;
            const int64_t rlow = rbit - 1;
            for (int64_t rk = 0; rk < half_rows; ++rk) {
              const int64_t row = ((rk & ~rlow) << 1) | (rk & rlow);
              float* lo = amps + 2 * (row * bsz + l0);
              float* hi = amps + 2 * ((row | rbit) * bsz + l0);
              simd.butterfly_rows(lo, hi, 2 * cols, c, sn);
            }
          }
        }
      });
}

/// One fused QAOA layer: per 2^14 block, the cost phase multiply and the
/// low-qubit mixer run back to back while the block is cache-resident
/// (one memory pass instead of 1 + block_qubits); the remaining high
/// qubits follow in the column-tiled sweep. `factors` is the per-gamma
/// phase table, or nullptr to compute the factors inline (n above the
/// table cap).
void FusedLayer(std::complex<float>* amps_c, const float* cost,
                const std::complex<float>* factors, float gamma, float beta,
                int n, ThreadPool* pool) {
  const uint64_t size = uint64_t{1} << n;
  const int block_qubits = std::min(n, kBlockQubits);
  const int64_t bsz = int64_t{1} << block_qubits;
  const float c = std::cos(beta);
  const float sn = std::sin(beta);
  float* amps = reinterpret_cast<float*>(amps_c);
  const float* table = reinterpret_cast<const float*>(factors);
  const SimdOps& simd = Simd();

  ParallelForBlocks(
      pool, 0, static_cast<int64_t>(size), bsz,
      [&](int64_t begin, int64_t end) {
        for (int64_t b0 = begin; b0 < end; b0 += bsz) {
          float* a = amps + 2 * b0;
          if (table != nullptr) {
            simd.phase_rows(a, table + 2 * b0, 2 * bsz);
          } else {
            for (int64_t i = b0; i < b0 + bsz; ++i) {
              const float angle = -gamma * cost[i];
              amps_c[i] *= std::complex<float>(std::cos(angle),
                                               std::sin(angle));
            }
          }
          simd.mixer_low_block(a, bsz, block_qubits, c, sn);
        }
      });
  MixerHighSweep(amps, n, block_qubits, c, sn, pool);
}

/// One pre-fusion QAOA layer, kept verbatim as the kReference kernel:
/// one full phase sweep, then one full sweep per mixer qubit.
void ReferenceLayer(std::complex<float>* amps, const float* cost, float gamma,
                    float beta, int n, ThreadPool* pool) {
  const uint64_t size = uint64_t{1} << n;
  // Cost phase: exp(-i gamma E(x)) (the offset is a global phase).
  ParallelForBlocks(pool, 0, static_cast<int64_t>(size), kBlock,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        const float angle = -gamma * cost[i];
                        amps[i] *= std::complex<float>(std::cos(angle),
                                                       std::sin(angle));
                      }
                    });
  // Mixer: RX(2 beta) on every qubit, over the compressed index space
  // (k with a zero spliced in at the qubit's bit position).
  const float c = std::cos(beta);
  const std::complex<float> s(0.0f, -std::sin(beta));
  for (int q = 0; q < n; ++q) {
    const uint64_t bit = uint64_t{1} << q;
    const uint64_t low_mask = bit - 1;
    ParallelForBlocks(
        pool, 0, static_cast<int64_t>(size >> 1), kBlock,
        [&](int64_t begin, int64_t end) {
          for (int64_t k = begin; k < end; ++k) {
            const uint64_t uk = static_cast<uint64_t>(k);
            const uint64_t base = ((uk & ~low_mask) << 1) | (uk & low_mask);
            const uint64_t partner = base | bit;
            const std::complex<float> a0 = amps[base];
            const std::complex<float> a1 = amps[partner];
            amps[base] = c * a0 + s * a1;
            amps[partner] = s * a0 + c * a1;
          }
        });
  }
}

}  // namespace

QaoaSimulator::QaoaSimulator(const IsingModel& ising)
    : num_qubits_(ising.num_spins()) {
  BuildCostSpectrum(ising);
}

StatusOr<QaoaSimulator> QaoaSimulator::Create(const IsingModel& ising) {
  if (ising.num_spins() < 1 || ising.num_spins() > 27) {
    return Status::InvalidArgument("QAOA simulator supports 1..27 qubits");
  }
  return QaoaSimulator(ising);
}

void QaoaSimulator::BuildCostSpectrum(const IsingModel& ising) {
  const int n = num_qubits_;
  const uint64_t size = uint64_t{1} << n;
  cost_.assign(size, 0.0f);

  // Shared flat CSR adjacency for O(degree) Gray-code energy deltas; its
  // per-row entry order matches the adjacency-list build it replaced, so
  // the spectrum is bit-identical.
  const IsingCsr csr = IsingCsr::FromIsing(ising);

  // Bit b set in x means spin b is -1 (QUBO bit 1).
  std::vector<int8_t> spins(n, 1);
  double energy = ising.offset;
  for (int i = 0; i < n; ++i) energy += ising.h[i];
  for (const auto& [i, j, w] : ising.couplings) {
    (void)i;
    (void)j;
    energy += w;
  }
  cost_[0] = static_cast<float>(energy);
  min_cost_ = cost_[0];
  argmin_ = 0;

  uint64_t x = 0;
  for (uint64_t k = 1; k < size; ++k) {
    const int bit = static_cast<int>(__builtin_ctzll(k));
    // Flipping spin `bit`: dE = -2 s_bit (h_bit + sum_j J_bj s_j).
    double field = ising.h[bit];
    for (int32_t e = csr.offsets[bit]; e < csr.offsets[bit + 1]; ++e) {
      field += csr.weights[e] * static_cast<double>(spins[csr.columns[e]]);
    }
    energy -= 2.0 * static_cast<double>(spins[bit]) * field;
    spins[bit] = static_cast<int8_t>(-spins[bit]);
    x ^= uint64_t{1} << bit;
    const float fc = static_cast<float>(energy);
    cost_[x] = fc;
    // Running argmin; the tie-break towards the smallest basis index is
    // load-bearing because the Gray-code walk does not visit x in
    // ascending order, while the O(2^n) scan this replaces did.
    if (fc < min_cost_ || (fc == min_cost_ && x < argmin_)) {
      min_cost_ = fc;
      argmin_ = x;
    }
  }
}

const std::complex<float>* QaoaSimulator::PhaseFactors(
    float gamma, PhaseTableCache& tables, ThreadPool* pool) const {
  const size_t max_entries = MaxPhaseTableEntries(num_qubits_);
  if (max_entries == 0) return nullptr;
  for (const PhaseTable& entry : tables.entries) {
    if (entry.gamma == gamma) {
      if (metrics_ != nullptr) metrics_->Count("qaoa.phase_table_hits");
      return entry.factors.data();
    }
  }
  if (metrics_ != nullptr) metrics_->Count("qaoa.phase_table_misses");
  PhaseTable* slot = nullptr;
  if (tables.entries.size() < max_entries) {
    slot = &tables.entries.emplace_back();
  } else {
    slot = &tables.entries[tables.next_evict];
    tables.next_evict = (tables.next_evict + 1) % max_entries;
  }
  const uint64_t size = uint64_t{1} << num_qubits_;
  slot->factors.resize(size);
  slot->gamma = gamma;
  std::complex<float>* factors = slot->factors.data();
  const float* cost = cost_.data();
  ParallelForBlocks(pool, 0, static_cast<int64_t>(size), kBlock,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        const float angle = -gamma * cost[i];
                        factors[i] = std::complex<float>(std::cos(angle),
                                                         std::sin(angle));
                      }
                    });
  return factors;
}

double QaoaSimulator::RunCore(const QaoaParameters& parameters,
                              std::vector<std::complex<float>>& amps_vec,
                              PhaseTableCache& tables, SimKernel kernel,
                              ThreadPool* pool) const {
  QJO_CHECK_GT(parameters.p(), 0);
  QJO_CHECK_EQ(parameters.gammas.size(), parameters.betas.size());
  const uint64_t size = uint64_t{1} << num_qubits_;
  const float amp0 = 1.0f / std::sqrt(static_cast<float>(size));
  amps_vec.assign(size, std::complex<float>(amp0, 0.0f));

  std::complex<float>* amps = amps_vec.data();
  const float* cost = cost_.data();
  for (int rep = 0; rep < parameters.p(); ++rep) {
    const float gamma = static_cast<float>(parameters.gammas[rep]);
    const float beta = static_cast<float>(parameters.betas[rep]);
    if (kernel == SimKernel::kFused) {
      const std::complex<float>* factors = PhaseFactors(gamma, tables, pool);
      FusedLayer(amps, cost, factors, gamma, beta, num_qubits_, pool);
    } else {
      ReferenceLayer(amps, cost, gamma, beta, num_qubits_, pool);
    }
  }

  return ParallelBlockedSum(pool, static_cast<int64_t>(size), kBlock,
                            [&](int64_t begin, int64_t end) {
                              double partial = 0.0;
                              for (int64_t i = begin; i < end; ++i) {
                                partial +=
                                    static_cast<double>(std::norm(amps[i])) *
                                    static_cast<double>(cost[i]);
                              }
                              return partial;
                            });
}

double QaoaSimulator::Run(const QaoaParameters& parameters, SimKernel kernel) {
  const uint64_t size = uint64_t{1} << num_qubits_;
  const double energy = RunCore(parameters, amplitudes_, phase_tables_, kernel,
                                GatedPool(pool_, size));
  state_loaded_ = true;
  return energy;
}

std::vector<double> QaoaSimulator::EvaluateBatch(
    std::span<const QaoaParameters> batch, SimKernel kernel) {
  std::vector<double> energies(batch.size());
  if (batch.empty()) return energies;

  // Scratch statevectors are recycled through a freelist: concurrent
  // evaluations never share one, and the pool never holds more than the
  // peak in-flight count. Which scratch an evaluation gets is
  // scheduling-dependent, but RunCore's result is a pure function of the
  // parameters (the amplitude buffer is fully re-assigned and a reused
  // phase table holds exactly the factors a rebuild would produce), so
  // slot i of the result is bit-identical at every parallelism level.
  std::mutex mutex;
  std::vector<EvalScratch*> free_list;
  free_list.reserve(batch_scratch_.size());
  for (const auto& scratch : batch_scratch_) free_list.push_back(scratch.get());

  ParallelFor(pool_, 0, static_cast<int64_t>(batch.size()), [&](int64_t i) {
    EvalScratch* scratch = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (!free_list.empty()) {
        scratch = free_list.back();
        free_list.pop_back();
      }
    }
    if (scratch == nullptr) {
      if (metrics_ != nullptr) metrics_->Count("qaoa.scratch_alloc");
      auto owned = std::make_unique<EvalScratch>();
      scratch = owned.get();
      std::lock_guard<std::mutex> lock(mutex);
      batch_scratch_.push_back(std::move(owned));
    } else if (metrics_ != nullptr) {
      metrics_->Count("qaoa.scratch_reuse");
    }
    // Serial amplitude loops inside: the parallelism budget is spent at
    // the batch level, and pool workers would refuse nested dispatch
    // anyway (see ThreadPool::ParallelFor).
    energies[static_cast<size_t>(i)] = RunCore(
        batch[static_cast<size_t>(i)], scratch->amps, scratch->tables, kernel,
        /*pool=*/nullptr);
    {
      std::lock_guard<std::mutex> lock(mutex);
      free_list.push_back(scratch);
    }
  });
  return energies;
}

double QaoaSimulator::Expectation(double gamma, double beta) {
  QaoaParameters params;
  params.gammas = {gamma};
  params.betas = {beta};
  return Run(params);
}

void QaoaSimulator::ApplyMixerLayer(double beta, SimKernel kernel) {
  QJO_CHECK(state_loaded_) << "call Run() before ApplyMixerLayer()";
  const uint64_t size = uint64_t{1} << num_qubits_;
  ThreadPool* pool = GatedPool(pool_, size);
  const float b = static_cast<float>(beta);
  if (kernel == SimKernel::kFused) {
    const int block_qubits = std::min(num_qubits_, kBlockQubits);
    const int64_t bsz = int64_t{1} << block_qubits;
    const float c = std::cos(b);
    const float sn = std::sin(b);
    float* amps = reinterpret_cast<float*>(amplitudes_.data());
    const SimdOps& simd = Simd();
    ParallelForBlocks(pool, 0, static_cast<int64_t>(size), bsz,
                      [&](int64_t begin, int64_t end) {
                        for (int64_t b0 = begin; b0 < end; b0 += bsz) {
                          simd.mixer_low_block(amps + 2 * b0, bsz,
                                               block_qubits, c, sn);
                        }
                      });
    MixerHighSweep(amps, num_qubits_, block_qubits, c, sn, pool);
  } else {
    const float c = std::cos(b);
    const std::complex<float> s(0.0f, -std::sin(b));
    std::complex<float>* amps = amplitudes_.data();
    for (int q = 0; q < num_qubits_; ++q) {
      const uint64_t bit = uint64_t{1} << q;
      const uint64_t low_mask = bit - 1;
      ParallelForBlocks(
          pool, 0, static_cast<int64_t>(size >> 1), kBlock,
          [&](int64_t begin, int64_t end) {
            for (int64_t k = begin; k < end; ++k) {
              const uint64_t uk = static_cast<uint64_t>(k);
              const uint64_t base = ((uk & ~low_mask) << 1) | (uk & low_mask);
              const uint64_t partner = base | bit;
              const std::complex<float> a0 = amps[base];
              const std::complex<float> a1 = amps[partner];
              amps[base] = c * a0 + s * a1;
              amps[partner] = s * a0 + c * a1;
            }
          });
    }
  }
}

std::vector<uint64_t> QaoaSimulator::Sample(int shots, double fidelity,
                                            Rng& rng) {
  QJO_CHECK(state_loaded_) << "call Run() before Sample()";
  QJO_CHECK_GT(shots, 0);
  QJO_CHECK_GE(fidelity, 0.0);
  QJO_CHECK_LE(fidelity, 1.0);
  const uint64_t size = uint64_t{1} << num_qubits_;

  std::vector<uint64_t> samples;
  samples.reserve(shots);
  int ideal_shots = 0;
  for (int s = 0; s < shots; ++s) {
    if (rng.Bernoulli(fidelity)) {
      ++ideal_shots;
    } else {
      samples.push_back(rng.Next() & (size - 1));  // depolarised shot
    }
  }
  if (ideal_shots > 0) {
    SampleByInverseCdf(
        size,
        [this](uint64_t i) {
          return static_cast<double>(std::norm(amplitudes_[i]));
        },
        ideal_shots, rng, samples);
  }
  rng.Shuffle(samples);
  return samples;
}

double QaoaSimulator::Probability(uint64_t basis) const {
  QJO_CHECK(state_loaded_);
  QJO_CHECK_LT(basis, amplitudes_.size());
  return static_cast<double>(std::norm(amplitudes_[basis]));
}

const std::vector<std::complex<float>>& QaoaSimulator::amplitudes() const {
  QJO_CHECK(state_loaded_) << "call Run() before amplitudes()";
  return amplitudes_;
}

double QaoaSimulator::MinCost(uint64_t* argmin) const {
  if (argmin != nullptr) *argmin = argmin_;
  return static_cast<double>(min_cost_);
}

}  // namespace qjo

#ifndef QJO_SIM_QAOA_SIMULATOR_H_
#define QJO_SIM_QAOA_SIMULATOR_H_

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "circuit/qaoa_builder.h"
#include "qubo/ising.h"
#include "sim/sim_kernel.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

class MetricsRegistry;
class ThreadPool;

/// Specialised QAOA state-vector simulator. Exploits the diagonality of
/// the cost operator: the full cost spectrum E(x) is computed once by a
/// Gray-code sweep over the CSR coupling graph, after which each circuit
/// evaluation is an element-wise phase multiplication plus n RX
/// butterflies. Amplitudes are stored in single precision so 27-qubit
/// problems (the paper's largest gate-based instances) fit comfortably in
/// memory.
///
/// Two kernels share the same contract (amplitudes equal under
/// operator== at every parallelism level):
///  - kReference: one 2^n sweep for the phase plus one per qubit for the
///    mixer, exactly the pre-fusion implementation.
///  - kFused (default): the phase multiply and all mixer butterflies with
///    bit index inside a 2^14-amplitude cache block run in one sweep per
///    block (~ceil(n/14) passes per layer instead of n+1), with the
///    remaining high qubits handled by a column-tiled second sweep and
///    the per-gamma phase factors cached across evaluations.
class QaoaSimulator {
 public:
  /// Builds the simulator and cost spectrum. Fails above 27 qubits.
  static StatusOr<QaoaSimulator> Create(const IsingModel& ising);

  int num_qubits() const { return num_qubits_; }

  /// Attaches an externally-owned pool (nullptr = serial, the default).
  /// Run() uses it for the 2^n amplitude loops (only above the
  /// kMinParallelAmplitudes threshold); EvaluateBatch() uses it for
  /// parameter-set-level parallelism. Not owned.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Attaches a metrics registry (nullptr = no metrics, the default; not
  /// owned). Publishes qaoa.phase_table_hits/misses and
  /// qaoa.scratch_reuse/scratch_alloc. Under EvaluateBatch these counts
  /// depend on which in-flight evaluation grabs which scratch buffer —
  /// they are scheduling telemetry, excluded from the deterministic-merge
  /// contract (the evaluation *results* stay bit-identical regardless).
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Cost spectrum E(x) including the Ising offset.
  const std::vector<float>& cost_spectrum() const { return cost_; }

  /// Runs the QAOA circuit for `parameters`, leaving the final state
  /// loaded; returns <H_C>. The amplitude buffer and the per-gamma phase
  /// table are retained across calls, so repeated evaluations allocate
  /// nothing after the first.
  double Run(const QaoaParameters& parameters,
             SimKernel kernel = SimKernel::kFused);

  /// Evaluates <H_C> for every parameter set of `batch`. Parallelises at
  /// the parameter-set level on the attached pool — one scratch
  /// statevector per in-flight evaluation, serial amplitude loops inside
  /// — which is the profitable axis for n <= ~22 where per-sweep
  /// parallelism cannot amortise its dispatch. Results land in
  /// slot-indexed order and depend only on the parameters, so they are
  /// bit-identical at every parallelism level and equal to calling Run()
  /// entry by entry. Scratch buffers persist across calls; the state
  /// loaded by a previous Run() is left untouched.
  std::vector<double> EvaluateBatch(std::span<const QaoaParameters> batch,
                                    SimKernel kernel = SimKernel::kFused);

  /// <H_C> at (gamma, beta) for p=1 (convenience for optimisation loops).
  double Expectation(double gamma, double beta);

  /// Applies one mixer layer (RX(2 beta) on every qubit) to the loaded
  /// state. Exposed for kernel parity tests and the mixer benchmark;
  /// Run() must have been called.
  void ApplyMixerLayer(double beta, SimKernel kernel = SimKernel::kFused);

  /// Samples `shots` bitstrings from the loaded state through a global
  /// depolarising channel with survival probability `fidelity`: each shot
  /// is drawn from the ideal distribution with probability `fidelity` and
  /// uniformly otherwise (the deeper the physical circuit, the lower the
  /// fidelity, the more uniform the output — the NISQ behaviour of
  /// Table 2). Run() must have been called.
  std::vector<uint64_t> Sample(int shots, double fidelity, Rng& rng);

  /// Probability of basis state x in the loaded state.
  double Probability(uint64_t basis) const;

  /// Amplitudes of the loaded state (Run() must have been called).
  const std::vector<std::complex<float>>& amplitudes() const;

  /// Ground-state energy and one minimising bitstring of the spectrum;
  /// O(1) — the argmin is tracked while the spectrum is built, with ties
  /// resolved towards the smallest basis index.
  double MinCost(uint64_t* argmin = nullptr) const;

 private:
  /// Cached phase factors exp(-i gamma E(x)) for one gamma value.
  struct PhaseTable {
    std::vector<std::complex<float>> factors;
    float gamma = 0.0f;
  };

  /// Small round-robin cache of phase tables, one per recent gamma, so a
  /// depth-p evaluation keeps all p of its layer tables live and a
  /// gamma-major grid sweep reuses them across the whole beta row. The
  /// entry count is capped by a memory budget (see the .cc); 0 entries
  /// above the budget means the factors are computed inline.
  struct PhaseTableCache {
    std::vector<PhaseTable> entries;
    size_t next_evict = 0;
  };

  /// Per-evaluation scratch: amplitude buffer plus phase-table cache.
  struct EvalScratch {
    std::vector<std::complex<float>> amps;
    PhaseTableCache tables;
  };

  QaoaSimulator(const IsingModel& ising);

  void BuildCostSpectrum(const IsingModel& ising);

  /// Shared evaluation core: initialises `amps`, applies p layers with
  /// the selected kernel, returns <H_C>. `pool` parallelises the
  /// amplitude loops (Run); EvaluateBatch passes nullptr because its
  /// parallelism lives at the batch level.
  double RunCore(const QaoaParameters& parameters,
                 std::vector<std::complex<float>>& amps,
                 PhaseTableCache& tables, SimKernel kernel,
                 ThreadPool* pool) const;

  /// Returns the cached (building on miss) phase factors for `gamma`, or
  /// nullptr when the qubit count exceeds the table memory budget.
  const std::complex<float>* PhaseFactors(float gamma, PhaseTableCache& tables,
                                          ThreadPool* pool) const;

  int num_qubits_ = 0;
  std::vector<float> cost_;
  float min_cost_ = 0.0f;
  uint64_t argmin_ = 0;
  std::vector<std::complex<float>> amplitudes_;
  PhaseTableCache phase_tables_;
  std::vector<std::unique_ptr<EvalScratch>> batch_scratch_;
  bool state_loaded_ = false;
  ThreadPool* pool_ = nullptr;           // not owned
  MetricsRegistry* metrics_ = nullptr;   // not owned
};

}  // namespace qjo

#endif  // QJO_SIM_QAOA_SIMULATOR_H_

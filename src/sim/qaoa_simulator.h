#ifndef QJO_SIM_QAOA_SIMULATOR_H_
#define QJO_SIM_QAOA_SIMULATOR_H_

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/qaoa_builder.h"
#include "qubo/ising.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

class ThreadPool;

/// Specialised QAOA state-vector simulator. Exploits the diagonality of
/// the cost operator: the full cost spectrum E(x) is computed once by a
/// Gray-code sweep over the CSR coupling graph, after which each circuit
/// evaluation is an element-wise phase multiplication plus n RX
/// butterflies. Amplitudes are stored in single precision so 27-qubit
/// problems (the paper's largest gate-based instances) fit comfortably in
/// memory.
///
/// Run()'s 2^n loops execute blocked on the attached pool with fixed
/// chunk boundaries and reduction order, so <H_C> and the loaded state
/// are bit-identical at every parallelism level (and, for <= 2^14
/// amplitudes, to the pre-parallel serial loops).
class QaoaSimulator {
 public:
  /// Builds the simulator and cost spectrum. Fails above 27 qubits.
  static StatusOr<QaoaSimulator> Create(const IsingModel& ising);

  int num_qubits() const { return num_qubits_; }

  /// Attaches an externally-owned pool for the 2^n amplitude loops
  /// (nullptr = serial, the default). Not owned.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Cost spectrum E(x) including the Ising offset.
  const std::vector<float>& cost_spectrum() const { return cost_; }

  /// Runs the QAOA circuit for `parameters`, leaving the final state
  /// loaded; returns <H_C>.
  double Run(const QaoaParameters& parameters);

  /// <H_C> at (gamma, beta) for p=1 (convenience for optimisation loops).
  double Expectation(double gamma, double beta);

  /// Samples `shots` bitstrings from the loaded state through a global
  /// depolarising channel with survival probability `fidelity`: each shot
  /// is drawn from the ideal distribution with probability `fidelity` and
  /// uniformly otherwise (the deeper the physical circuit, the lower the
  /// fidelity, the more uniform the output — the NISQ behaviour of
  /// Table 2). Run() must have been called.
  std::vector<uint64_t> Sample(int shots, double fidelity, Rng& rng);

  /// Probability of basis state x in the loaded state.
  double Probability(uint64_t basis) const;

  /// Ground-state energy and one minimising bitstring of the spectrum.
  double MinCost(uint64_t* argmin = nullptr) const;

 private:
  QaoaSimulator(const IsingModel& ising);

  void BuildCostSpectrum(const IsingModel& ising);

  int num_qubits_ = 0;
  std::vector<float> cost_;
  std::vector<std::complex<float>> amplitudes_;
  bool state_loaded_ = false;
  ThreadPool* pool_ = nullptr;  // not owned
};

}  // namespace qjo

#endif  // QJO_SIM_QAOA_SIMULATOR_H_

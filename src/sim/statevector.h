#ifndef QJO_SIM_STATEVECTOR_H_
#define QJO_SIM_STATEVECTOR_H_

#include <complex>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "sim/sim_kernel.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

class ThreadPool;

/// Dense state-vector simulator. Intended for verification and small-scale
/// sampling (<= ~24 qubits); the specialised QaoaSimulator handles the
/// larger QAOA workloads.
///
/// All 2^n-amplitude loops (gate kernels, Probabilities, expectations) run
/// blocked over contiguous index ranges on the attached pool, with block
/// boundaries and reduction order fixed independently of the thread count
/// — results are bit-identical at every parallelism level, and for states
/// of <= 2^14 amplitudes bit-identical to the pre-parallel serial loops.
class StateVector {
 public:
  /// Initialises |0...0> over `num_qubits` qubits (<= 28).
  static StatusOr<StateVector> Create(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<std::complex<double>>& amplitudes() const {
    return amplitudes_;
  }

  /// Attaches an externally-owned pool for the amplitude loops (nullptr =
  /// serial, the default). Not owned; must outlive this object's use.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Applies one gate in place.
  void Apply(const Gate& gate);

  /// Applies all gates of a circuit (sizes must match). The default
  /// kFused kernel runs the circuit through FuseCircuit first: adjacent
  /// single-qubit gates share one cache-blocked sweep and runs of
  /// diagonal gates collapse into a single element-wise phase sweep.
  /// kReference applies gate by gate. Amplitudes from the two kernels
  /// compare equal with operator== (only IEEE zero signs can differ).
  void ApplyCircuit(const QuantumCircuit& circuit,
                    SimKernel kernel = SimKernel::kFused);

  /// Applies a pre-fused circuit (see circuit/fusion.h).
  void ApplyFused(const FusedCircuit& fused);

  /// Probability of measuring basis state `basis`.
  double Probability(uint64_t basis) const;

  /// All basis-state probabilities.
  std::vector<double> Probabilities() const;

  /// Samples `shots` basis states from the current distribution.
  std::vector<uint64_t> Sample(int shots, Rng& rng) const;

  /// <state|Z_q|state>.
  double ExpectationZ(int qubit) const;

  /// <state|Z_a Z_b|state>.
  double ExpectationZZ(int a, int b) const;

  /// Fidelity |<this|other>|^2 (sizes must match).
  double Overlap(const StateVector& other) const;

  /// L2-normalises (guards against accumulated rounding).
  void Normalize();

 private:
  explicit StateVector(int num_qubits);

  void ApplySingleQubitMatrix(int qubit, const std::complex<double> m[2][2]);
  void ApplySingleQubitRun(const std::vector<Gate>& gates);
  void ApplyDiagonalRun(const std::vector<Gate>& gates);
  void ApplyCx(int control, int target);
  void ApplyCz(int a, int b);
  void ApplySwap(int a, int b);
  void ApplyRzz(int a, int b, double theta);
  void ApplyMs(int a, int b, double theta);

  int num_qubits_;
  std::vector<std::complex<double>> amplitudes_;
  ThreadPool* pool_ = nullptr;  // not owned
};

/// Unitary of a small circuit (n <= 10) as a dense column-major matrix of
/// size 2^n x 2^n: column b is the state the circuit maps |b> to. Used by
/// the decomposition-equivalence tests.
StatusOr<std::vector<std::vector<std::complex<double>>>> CircuitUnitary(
    const QuantumCircuit& circuit);

/// True if two unitaries are equal up to a global phase within `tolerance`.
bool UnitariesEqualUpToPhase(
    const std::vector<std::vector<std::complex<double>>>& a,
    const std::vector<std::vector<std::complex<double>>>& b,
    double tolerance = 1e-9);

}  // namespace qjo

#endif  // QJO_SIM_STATEVECTOR_H_

#ifndef QJO_SIM_DEVICE_H_
#define QJO_SIM_DEVICE_H_

#include <string>

#include "circuit/circuit.h"

namespace qjo {

/// Calibration sheet of a gate-based NISQ device. The Auckland/Washington
/// presets carry the exact values the paper reports (Sec. 4.2.1).
struct DeviceProperties {
  std::string name;
  double t1_us = 100.0;               ///< relaxation time T1 (microseconds)
  double t2_us = 100.0;               ///< dephasing time T2 (microseconds)
  double avg_gate_time_ns = 500.0;    ///< reported average gate time
  double one_qubit_error = 3e-4;      ///< depolarising error per 1q gate
  double two_qubit_error = 1e-2;      ///< depolarising error per 2q gate

  /// The paper's lax upper bound on feasible circuit depth:
  /// d = floor(min(T1, T2) / g_avg).
  int MaxFeasibleDepth() const;
};

/// IBM Q Auckland at the time of the paper's experiments:
/// T1 = 151.13us, T2 = 138.72us, g_avg = 472.51ns (27 qubits, Falcon).
DeviceProperties IbmAucklandProperties();

/// IBM Q Washington: T1 = 92.81us, T2 = 93.36us, g_avg = 550.41ns
/// (127 qubits, Eagle).
DeviceProperties IbmWashingtonProperties();

/// Generic trapped-ion system (IonQ-style): coherence times orders of
/// magnitude longer than superconducting devices, but much slower gates
/// (Sec. 6.2: "more stable ... but feature faster gates" for SC qubits).
DeviceProperties IonTrapProperties();

/// Estimated probability that a circuit execution stays coherent and
/// error-free: exp(-duration / min(T1,T2)) * (1-e1)^n1q * (1-e2)^n2q,
/// with duration = depth * avg gate time. Used as the survival weight of
/// the global depolarising noise model.
double EstimateCircuitFidelity(const QuantumCircuit& circuit,
                               const DeviceProperties& device);

/// Timing model of one QPU job (Sec. 4.2.1): sampling time t_s grows with
/// shots x depth x gate time, while the overall QPU time t_qpu is dominated
/// by initialisation and communication overhead.
struct QpuTimings {
  double sampling_ms = 0.0;  ///< t_s
  double total_s = 0.0;      ///< t_qpu
};

QpuTimings EstimateQpuTimings(const QuantumCircuit& circuit, int shots,
                              const DeviceProperties& device);

}  // namespace qjo

#endif  // QJO_SIM_DEVICE_H_

#ifndef QJO_SIM_SIM_KERNEL_H_
#define QJO_SIM_SIM_KERNEL_H_

#include <cstdint>

namespace qjo {

/// Simulator kernel selector, mirroring SolverKernel on the annealing
/// side: kReference is the straightforward one-sweep-per-gate
/// implementation kept for bit-parity tests, kFused the cache-blocked
/// fast path. Both produce states whose amplitudes compare equal with
/// operator== (the fused arithmetic performs the same per-amplitude
/// operation sequence; only signs of IEEE zeros may differ).
enum class SimKernel {
  kReference,
  kFused,
};

/// States below this amplitude count skip parallel dispatch entirely:
/// a 2^18-amplitude sweep takes tens of microseconds, the same order as
/// waking pool workers, so forking buys nothing and (dispatched from
/// inside an already-parallel region) used to oversubscribe the pool.
inline constexpr int64_t kMinParallelAmplitudes = int64_t{1} << 18;

}  // namespace qjo

#endif  // QJO_SIM_SIM_KERNEL_H_

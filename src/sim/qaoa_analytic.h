#ifndef QJO_SIM_QAOA_ANALYTIC_H_
#define QJO_SIM_QAOA_ANALYTIC_H_

#include <functional>

#include "qubo/ising.h"
#include "util/random.h"

namespace qjo {

/// Closed-form p=1 QAOA expectation values for a general Ising Hamiltonian
/// with local fields (Ozaeta, van Dam, McMahon 2022). Evaluating <H_C>
/// costs O(sum_i deg(i)^2) instead of a 2^n state-vector run, which makes
/// the 20/50-iteration classical optimisation loops of Table 2 cheap.
/// Validated against the dense simulator in the test suite.
double AnalyticQaoaExpectation(const IsingModel& ising, double gamma,
                               double beta);

/// <Z_i> under p=1 QAOA.
double AnalyticExpectationZ(const IsingModel& ising, int i, double gamma,
                            double beta);

/// <Z_i Z_j> under p=1 QAOA.
double AnalyticExpectationZZ(const IsingModel& ising, int i, int j,
                             double gamma, double beta);

/// Result of classical angle optimisation.
struct QaoaAngles {
  double gamma = 0.0;
  double beta = 0.0;
  double expectation = 0.0;
  int iterations_used = 0;
};

/// Gradient-descent angle optimisation in the spirit of Qiskit's AQGD: a
/// coarse grid pick followed by `iterations` momentum-gradient steps on
/// the provided expectation function.
QaoaAngles OptimizeQaoaAngles(
    const std::function<double(double gamma, double beta)>& expectation,
    int iterations, Rng& rng);

/// Convenience overload using the analytic p=1 expectation.
QaoaAngles OptimizeQaoaAngles(const IsingModel& ising, int iterations,
                              Rng& rng);

}  // namespace qjo

#endif  // QJO_SIM_QAOA_ANALYTIC_H_

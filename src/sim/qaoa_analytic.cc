#include "sim/qaoa_analytic.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace qjo {
namespace {

/// Dense coupling lookup built once per evaluation batch.
struct CouplingView {
  explicit CouplingView(const IsingModel& ising)
      : n(ising.num_spins()), adjacency(ising.num_spins()) {
    for (const auto& [i, j, w] : ising.couplings) {
      adjacency[i].emplace_back(j, w);
      adjacency[j].emplace_back(i, w);
    }
  }

  double Get(int i, int j) const {
    for (const auto& [k, w] : adjacency[i]) {
      if (k == j) return w;
    }
    return 0.0;
  }

  int n;
  std::vector<std::vector<std::pair<int, double>>> adjacency;
};

double ExpectationZImpl(const IsingModel& ising, const CouplingView& view,
                        int i, double gamma, double beta) {
  double product = 1.0;
  for (const auto& [k, w] : view.adjacency[i]) {
    (void)k;
    product *= std::cos(2.0 * gamma * w);
  }
  return std::sin(2.0 * beta) * std::sin(2.0 * gamma * ising.h[i]) * product;
}

double ExpectationZZImpl(const IsingModel& ising, const CouplingView& view,
                         int i, int j, double gamma, double beta) {
  const double jij = view.Get(i, j);

  double prod_i = 1.0;
  for (const auto& [k, w] : view.adjacency[i]) {
    if (k == j) continue;
    prod_i *= std::cos(2.0 * gamma * w);
  }
  double prod_j = 1.0;
  for (const auto& [k, w] : view.adjacency[j]) {
    if (k == i) continue;
    prod_j *= std::cos(2.0 * gamma * w);
  }
  const double term1 =
      0.5 * std::sin(4.0 * beta) * std::sin(2.0 * gamma * jij) *
      (std::cos(2.0 * gamma * ising.h[i]) * prod_i +
       std::cos(2.0 * gamma * ising.h[j]) * prod_j);

  // Products over the union of neighbourhoods of i and j (excluding i, j).
  double prod_plus = 1.0;
  double prod_minus = 1.0;
  for (int k = 0; k < view.n; ++k) {
    if (k == i || k == j) continue;
    const double jik = view.Get(i, k);
    const double jjk = view.Get(j, k);
    if (jik == 0.0 && jjk == 0.0) continue;
    prod_plus *= std::cos(2.0 * gamma * (jik + jjk));
    prod_minus *= std::cos(2.0 * gamma * (jik - jjk));
  }
  const double s2b = std::sin(2.0 * beta);
  const double term2 =
      -0.5 * s2b * s2b *
      (std::cos(2.0 * gamma * (ising.h[i] + ising.h[j])) * prod_plus -
       std::cos(2.0 * gamma * (ising.h[i] - ising.h[j])) * prod_minus);

  return term1 + term2;
}

}  // namespace

double AnalyticExpectationZ(const IsingModel& ising, int i, double gamma,
                            double beta) {
  QJO_CHECK_GE(i, 0);
  QJO_CHECK_LT(i, ising.num_spins());
  CouplingView view(ising);
  return ExpectationZImpl(ising, view, i, gamma, beta);
}

double AnalyticExpectationZZ(const IsingModel& ising, int i, int j,
                             double gamma, double beta) {
  QJO_CHECK_NE(i, j);
  CouplingView view(ising);
  return ExpectationZZImpl(ising, view, i, j, gamma, beta);
}

double AnalyticQaoaExpectation(const IsingModel& ising, double gamma,
                               double beta) {
  CouplingView view(ising);
  double expectation = ising.offset;
  for (int i = 0; i < ising.num_spins(); ++i) {
    if (ising.h[i] != 0.0) {
      expectation +=
          ising.h[i] * ExpectationZImpl(ising, view, i, gamma, beta);
    }
  }
  for (const auto& [i, j, w] : ising.couplings) {
    expectation += w * ExpectationZZImpl(ising, view, i, j, gamma, beta);
  }
  return expectation;
}

QaoaAngles OptimizeQaoaAngles(
    const std::function<double(double gamma, double beta)>& expectation,
    int iterations, Rng& rng) {
  QJO_CHECK_GE(iterations, 0);
  constexpr double kPi = 3.14159265358979323846;

  // Coarse grid pick (mirrors a warm start; AQGD then refines).
  double gamma = rng.UniformDouble(0.0, 0.1);
  double beta = rng.UniformDouble(0.0, kPi / 2);
  double best = expectation(gamma, beta);
  for (int gi = 0; gi < 8; ++gi) {
    for (int bi = 0; bi < 8; ++bi) {
      const double g = 0.002 * std::pow(2.2, gi);  // log-spaced: QUBO
                                                   // coefficients are large
      const double b = kPi / 16.0 + bi * kPi / 8.0;
      const double value = expectation(g, b);
      if (value < best) {
        best = value;
        gamma = g;
        beta = b;
      }
    }
  }

  // Momentum gradient descent (finite differences), step-size backtracking.
  double vg = 0.0, vb = 0.0;
  double lr = 0.05;
  int used = 0;
  for (int it = 0; it < iterations; ++it) {
    ++used;
    const double eps_g = std::max(1e-7, std::abs(gamma) * 1e-3);
    const double eps_b = 1e-4;
    const double dg = (expectation(gamma + eps_g, beta) -
                       expectation(gamma - eps_g, beta)) /
                      (2.0 * eps_g);
    const double db = (expectation(gamma, beta + eps_b) -
                       expectation(gamma, beta - eps_b)) /
                      (2.0 * eps_b);
    // Normalise the gradient: gamma and beta live on very different
    // scales when QUBO coefficients are large.
    const double norm = std::sqrt(dg * dg + db * db);
    if (norm < 1e-12) break;
    vg = 0.7 * vg - lr * dg / norm * std::max(std::abs(gamma), 1e-3);
    vb = 0.7 * vb - lr * db / norm;
    const double new_gamma = gamma + vg;
    const double new_beta = beta + vb;
    const double value = expectation(new_gamma, new_beta);
    if (value < best) {
      best = value;
      gamma = new_gamma;
      beta = new_beta;
    } else {
      lr *= 0.7;
      vg = vb = 0.0;
    }
  }
  return QaoaAngles{gamma, beta, best, used};
}

QaoaAngles OptimizeQaoaAngles(const IsingModel& ising, int iterations,
                              Rng& rng) {
  return OptimizeQaoaAngles(
      [&ising](double gamma, double beta) {
        return AnalyticQaoaExpectation(ising, gamma, beta);
      },
      iterations, rng);
}

}  // namespace qjo

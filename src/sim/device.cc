#include "sim/device.h"

#include <cmath>

namespace qjo {

int DeviceProperties::MaxFeasibleDepth() const {
  const double t_min_us = std::min(t1_us, t2_us);
  return static_cast<int>(std::floor(t_min_us * 1000.0 / avg_gate_time_ns));
}

DeviceProperties IbmAucklandProperties() {
  DeviceProperties d;
  d.name = "ibm_auckland";
  d.t1_us = 151.13;
  d.t2_us = 138.72;
  d.avg_gate_time_ns = 472.51;
  d.one_qubit_error = 2.6e-4;
  d.two_qubit_error = 9.0e-3;
  return d;
}

DeviceProperties IbmWashingtonProperties() {
  DeviceProperties d;
  d.name = "ibm_washington";
  d.t1_us = 92.81;
  d.t2_us = 93.36;
  d.avg_gate_time_ns = 550.41;
  d.one_qubit_error = 3.5e-4;
  d.two_qubit_error = 1.2e-2;
  return d;
}

DeviceProperties IonTrapProperties() {
  DeviceProperties d;
  d.name = "ion_trap";
  d.t1_us = 1e7;               // ~10 s
  d.t2_us = 1e6;               // ~1 s
  d.avg_gate_time_ns = 1e5;    // ~100 us two-qubit gates
  d.one_qubit_error = 5e-4;
  d.two_qubit_error = 8e-3;
  return d;
}

double EstimateCircuitFidelity(const QuantumCircuit& circuit,
                               const DeviceProperties& device) {
  const double duration_us =
      circuit.Depth() * device.avg_gate_time_ns / 1000.0;
  const double t_min_us = std::min(device.t1_us, device.t2_us);
  double fidelity = std::exp(-duration_us / t_min_us);
  const int two_qubit = circuit.CountTwoQubitGates();
  const int one_qubit = circuit.num_gates() - two_qubit;
  fidelity *= std::pow(1.0 - device.one_qubit_error, one_qubit);
  fidelity *= std::pow(1.0 - device.two_qubit_error, two_qubit);
  return fidelity;
}

QpuTimings EstimateQpuTimings(const QuantumCircuit& circuit, int shots,
                              const DeviceProperties& device) {
  QpuTimings t;
  // Per-shot duration: circuit execution + reset/readout latency (~25us).
  // t_s for 1024 shots at the observed depths lands in the paper's
  // 78-114ms range.
  const double circuit_us = circuit.Depth() * device.avg_gate_time_ns / 1e3;
  const double per_shot_us = circuit_us + 25.0;
  t.sampling_ms = shots * per_shot_us / 1e3;
  // Initialisation, calibration and communication overhead dominate t_qpu
  // (~9.7s observed); it grows only marginally with problem size.
  t.total_s = 9.6 + t.sampling_ms / 1e3 +
              0.002 * circuit.num_qubits();
  return t;
}

}  // namespace qjo

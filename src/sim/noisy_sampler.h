#ifndef QJO_SIM_NOISY_SAMPLER_H_
#define QJO_SIM_NOISY_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "sim/device.h"
#include "sim/sim_kernel.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// Stochastic (quantum-trajectory) noise model: after every gate a random
/// Pauli hits the operand qubits with the per-gate error probability, and
/// between circuit layers every qubit dephases/relaxes according to
/// T2/T1. Measurement suffers independent readout bit flips. This is the
/// high-fidelity counterpart of the global depolarising channel used for
/// the large Table 2 instances; the two are cross-validated in the test
/// suite and the ablation bench.
struct NoiseModel {
  double one_qubit_pauli = 3e-4;
  double two_qubit_pauli = 1e-2;
  double readout_flip = 1.5e-2;
  double t1_us = 150.0;
  double t2_us = 140.0;
  double layer_time_ns = 470.0;  ///< wall time per circuit layer

  /// Derives error rates and relaxation times from a device sheet.
  static NoiseModel FromDevice(const DeviceProperties& device);

  /// Per-layer dephasing probability (phase-flip approximation of T2).
  double DephasingProbability() const;
  /// Per-layer relaxation probability (bit-flip approximation of T1).
  double RelaxationProbability() const;
};

/// Samples `shots` measurement outcomes of `circuit` under `noise`, one
/// stochastic trajectory per shot. Exact but expensive: each shot is a
/// full state-vector run, so the qubit count is capped (default 16).
///
/// Each trajectory is materialised as a circuit (base gates with the
/// drawn Pauli errors spliced in) and simulated through the selected
/// StateVector kernel; the rng draw order is independent of the kernel
/// and the kernels agree under operator==, so the sample stream is
/// identical for kFused and kReference.
StatusOr<std::vector<uint64_t>> SampleWithTrajectories(
    const QuantumCircuit& circuit, const NoiseModel& noise, int shots,
    Rng& rng, int max_qubits = 16, SimKernel kernel = SimKernel::kFused);

/// Applies independent readout bit flips to a sampled basis state.
uint64_t ApplyReadoutError(uint64_t basis, int num_qubits, double flip_prob,
                           Rng& rng);

}  // namespace qjo

#endif  // QJO_SIM_NOISY_SAMPLER_H_

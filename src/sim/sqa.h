#ifndef QJO_SIM_SQA_H_
#define QJO_SIM_SQA_H_

#include <atomic>
#include <vector>

#include "qubo/ising.h"
#include "qubo/solvers.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/statusor.h"

namespace qjo {

/// Simulated quantum annealing (path-integral / Trotterised quantum Monte
/// Carlo) — our stand-in for the D-Wave Advantage QPU. The transverse
/// field Gamma is annealed to zero while the replica coupling grows; each
/// read returns the best Trotter slice. The ICE term models D-Wave's
/// integrated control errors: every read perturbs h and J with Gaussian
/// noise proportional to the largest coefficient, which is the dominant
/// cause of the paper's quality collapse for growing problems (Table 3).
struct SqaOptions {
  int num_reads = 100;
  /// Annealing time per read; mapped to Monte-Carlo sweeps via
  /// sweeps_per_us. The paper sweeps 20/60/100 us.
  double annealing_time_us = 20.0;
  double sweeps_per_us = 5.0;
  int trotter_slices = 12;
  /// Thermal temperature relative to the largest |coefficient|.
  double relative_temperature = 0.03;
  /// Initial transverse field relative to the largest |coefficient|.
  double relative_initial_field = 1.5;
  /// ICE noise: sigma of the Gaussian perturbation on every h_i and J_ij,
  /// relative to the largest |coefficient|. 0 disables noise.
  double ice_sigma = 0.0;
  /// Shared runtime control (parallelism/pool/stop/observability). Every
  /// read — its ICE perturbation, spin init and Metropolis sweeps —
  /// draws from its own forked RNG stream and writes its own result
  /// slot, so samples are bit-identical regardless of thread count. The
  /// stop token is checked between Monte Carlo sweeps: a cancelled read
  /// stops annealing where it is and still returns its best Trotter
  /// slice.
  SolverControl control;
  /// Inner-loop implementation: SoA replica groups with SIMD neighbour
  /// updates (kBatched, default — bit-identical to kIncremental),
  /// persistent per-slice local fields (kIncremental), or the O(degree)
  /// scan per proposal (kReference, for parity tests and benches).
  SolverKernel kernel = SolverKernel::kBatched;
};

/// One annealing read: the sampled spin configuration (+1/-1 per site)
/// and its energy under the *unperturbed* Hamiltonian.
struct SqaSample {
  std::vector<int> spins;
  double energy = 0.0;
};

/// Runs `options.num_reads` independent anneals of `ising`, in parallel
/// per `options.parallelism`. Fails on an empty model or non-positive
/// schedule parameters.
StatusOr<std::vector<SqaSample>> RunSqa(const IsingModel& ising,
                                        const SqaOptions& options, Rng& rng);

}  // namespace qjo

#endif  // QJO_SIM_SQA_H_

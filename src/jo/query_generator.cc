#include "jo/query_generator.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace qjo {
namespace {

double DrawLogCard(const QueryGenOptions& options, Rng& rng) {
  if (options.integer_log_values) {
    return static_cast<double>(
        rng.UniformRange(static_cast<int64_t>(options.min_log_card),
                         static_cast<int64_t>(options.max_log_card)));
  }
  return rng.UniformDouble(options.min_log_card, options.max_log_card);
}

double DrawNegLogSel(const QueryGenOptions& options, Rng& rng) {
  if (options.integer_log_values) {
    return static_cast<double>(
        rng.UniformRange(static_cast<int64_t>(options.min_neg_log_sel),
                         static_cast<int64_t>(options.max_neg_log_sel)));
  }
  return rng.UniformDouble(options.min_neg_log_sel, options.max_neg_log_sel);
}

std::string RelationName(int index) {
  std::string name;
  name.push_back(static_cast<char>('R'));
  name += std::to_string(index);
  return name;
}

Query MakeRelations(const QueryGenOptions& options, Rng& rng) {
  Query query;
  for (int t = 0; t < options.num_relations; ++t) {
    query.AddRelation(RelationName(t),
                      std::pow(10.0, DrawLogCard(options, rng)));
  }
  return query;
}

/// Edge list of the requested graph type, chain-first ordering so a prefix
/// of the list is always a connected chain.
StatusOr<std::vector<std::pair<int, int>>> GraphEdges(QueryGraphType type,
                                                      int t) {
  std::vector<std::pair<int, int>> edges;
  switch (type) {
    case QueryGraphType::kChain:
      for (int i = 0; i + 1 < t; ++i) edges.emplace_back(i, i + 1);
      break;
    case QueryGraphType::kStar:
      for (int i = 1; i < t; ++i) edges.emplace_back(0, i);
      break;
    case QueryGraphType::kCycle:
      if (t < 3) {
        return Status::InvalidArgument("cycle queries need >= 3 relations");
      }
      for (int i = 0; i + 1 < t; ++i) edges.emplace_back(i, i + 1);
      edges.emplace_back(t - 1, 0);
      break;
    case QueryGraphType::kClique:
      for (int i = 0; i < t; ++i)
        for (int j = i + 1; j < t; ++j) edges.emplace_back(i, j);
      break;
  }
  return edges;
}

}  // namespace

StatusOr<Query> GenerateQuery(const QueryGenOptions& options, Rng& rng) {
  if (options.num_relations < 2) {
    return Status::InvalidArgument("need at least 2 relations");
  }
  Query query = MakeRelations(options, rng);
  auto edges_or = GraphEdges(options.graph_type, options.num_relations);
  if (!edges_or.ok()) return edges_or.status();
  for (const auto& [l, r] : *edges_or) {
    QJO_RETURN_IF_ERROR(query.AddPredicate(
        l, r, std::pow(10.0, -DrawNegLogSel(options, rng))));
  }
  return query;
}

StatusOr<Query> GenerateQueryWithPredicateCount(const QueryGenOptions& options,
                                                int num_predicates, Rng& rng) {
  if (options.num_relations < 2) {
    return Status::InvalidArgument("need at least 2 relations");
  }
  const int t = options.num_relations;
  if (num_predicates < 0 || num_predicates > t * (t - 1) / 2) {
    return Status::InvalidArgument("predicate count out of range");
  }
  Query query = MakeRelations(options, rng);
  // Chain edges first, then the cycle-closing edge, then remaining pairs:
  // matches the paper's progression chain -> cycle -> denser graphs.
  auto edges_or = GraphEdges(QueryGraphType::kClique, t);
  if (!edges_or.ok()) return edges_or.status();
  const std::vector<std::pair<int, int>>& edges = *edges_or;
  std::vector<std::pair<int, int>> ordered;
  for (int i = 0; i + 1 < t; ++i) ordered.emplace_back(i, i + 1);
  if (t >= 3) ordered.emplace_back(0, t - 1);
  for (const auto& e : edges) {
    bool present = false;
    for (const auto& o : ordered) {
      if ((o.first == e.first && o.second == e.second) ||
          (o.first == e.second && o.second == e.first)) {
        present = true;
        break;
      }
    }
    if (!present) ordered.push_back(e);
  }
  for (int p = 0; p < num_predicates; ++p) {
    QJO_RETURN_IF_ERROR(
        query.AddPredicate(ordered[p].first, ordered[p].second,
                           std::pow(10.0, -DrawNegLogSel(options, rng))));
  }
  return query;
}

}  // namespace qjo

#ifndef QJO_JO_QUERY_H_
#define QJO_JO_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace qjo {

/// A base relation with its (estimated) cardinality.
struct Relation {
  std::string name;
  double cardinality = 1.0;  // Card(t) >= 1, as required by the paper.
};

/// An (uncorrelated) binary join predicate between two relations, following
/// Sec. 3.2 of the paper: T1(p), T2(p) and selectivity Sel(p) in (0, 1].
struct Predicate {
  int left = 0;
  int right = 0;
  double selectivity = 1.0;
};

/// Shape of the join (query) graph, as in Steinbrunn et al. / Sec. 4.1.
enum class QueryGraphType { kChain, kStar, kCycle, kClique };

/// Name of a query graph type ("chain", "star", ...).
const char* QueryGraphTypeName(QueryGraphType type);

/// A join query: a set of relations plus binary join predicates. Left-deep
/// join trees over the query may require cross products when the query
/// graph is disconnected (the formulation explicitly allows them).
class Query {
 public:
  Query() = default;

  /// Adds a relation; returns its index.
  int AddRelation(std::string name, double cardinality);

  /// Adds a predicate between existing relations. Fails if indices are out
  /// of range, equal, or selectivity is outside (0, 1].
  Status AddPredicate(int left, int right, double selectivity);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  /// Number of joins in a left-deep tree: T - 1.
  int num_joins() const { return num_relations() - 1; }

  const Relation& relation(int t) const { return relations_[t]; }
  const Predicate& predicate(int p) const { return predicates_[p]; }
  const std::vector<Relation>& relations() const { return relations_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// Combined selectivity of all predicates connecting relation `t` with
  /// any relation in `joined` (a bitmask over relation indices). 1.0 if no
  /// predicate applies (cross product).
  double SelectivityBetween(uint64_t joined_mask, int t) const;

  /// Cardinality of the join of all relations in `mask`: the product of
  /// base cardinalities times the selectivity of every predicate with both
  /// endpoints inside the mask (uncorrelated-predicate model).
  double JoinCardinality(uint64_t mask) const;

  /// True if any predicate has both endpoints in `mask`.
  bool HasInternalPredicate(uint64_t mask) const;

  /// Human-readable description for logs/examples.
  std::string ToString() const;

 private:
  std::vector<Relation> relations_;
  std::vector<Predicate> predicates_;
};

}  // namespace qjo

#endif  // QJO_JO_QUERY_H_

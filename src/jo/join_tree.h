#ifndef QJO_JO_JOIN_TREE_H_
#define QJO_JO_JOIN_TREE_H_

#include <string>
#include <vector>

#include "jo/query.h"
#include "util/statusor.h"

namespace qjo {

/// A left-deep join order: a permutation of relation indices where order[0]
/// is the outer operand of the first join and order[i] (i >= 1) is the
/// inner operand of join i-1. This is exactly the solution space of the
/// paper's formulation (left-deep trees, cross products allowed).
class LeftDeepOrder {
 public:
  LeftDeepOrder() = default;
  explicit LeftDeepOrder(std::vector<int> order) : order_(std::move(order)) {}

  /// Validates that `order` is a permutation of 0..T-1 for `query`.
  static StatusOr<LeftDeepOrder> Create(std::vector<int> order,
                                        const Query& query);

  const std::vector<int>& order() const { return order_; }
  int size() const { return static_cast<int>(order_.size()); }
  int operator[](int i) const { return order_[i]; }

  /// Renders "((R ⋈ S) ⋈ T)"-style text using relation names.
  std::string ToString(const Query& query) const;

  bool operator==(const LeftDeepOrder& other) const = default;

 private:
  std::vector<int> order_;
};

/// Cost-model evaluation of a left-deep order.
struct CostBreakdown {
  /// |s_1 ... s_i| for i = 2..n — the intermediate result cardinalities.
  std::vector<double> intermediate_cardinalities;
  /// C(s) = sum of intermediate cardinalities (C_out model, Eq. 2).
  double total_cost = 0.0;
};

/// Evaluates the C_out cost function of Eq. (2) on a left-deep order.
/// Requires `order` to cover all relations of `query`.
CostBreakdown EvaluateCost(const Query& query, const LeftDeepOrder& order);

/// Shorthand: just the scalar cost.
double Cost(const Query& query, const LeftDeepOrder& order);

/// Result of any (classical or quantum) join-ordering optimisation.
struct JoResult {
  LeftDeepOrder order;
  double cost = 0.0;
};

}  // namespace qjo

#endif  // QJO_JO_JOIN_TREE_H_

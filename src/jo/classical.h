#ifndef QJO_JO_CLASSICAL_H_
#define QJO_JO_CLASSICAL_H_

#include "jo/join_tree.h"
#include "jo/query.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// Exhaustive enumeration of all T! left-deep orders. Exact but only
/// feasible for small T; fails beyond `max_relations` (default 10).
StatusOr<JoResult> OptimizeExhaustive(const Query& query,
                                      int max_relations = 10);

/// Relation cap of OptimizeDp. The dp (double) and parent (int) tables
/// hold 2^T + 1 entries each, so the cap bounds them to ~50 MiB
/// ((8 + 4) bytes x 2^22); past it OptimizeDp returns ResourceExhausted
/// with the byte estimate instead of silently allocating hundreds of
/// megabytes.
inline constexpr int kMaxDpRelations = 22;

/// Dynamic programming over relation subsets (DPsub restricted to left-deep
/// trees with cross products): O(2^T * T). Exact; fails beyond
/// kMaxDpRelations relations to bound memory. This is the ground-truth
/// oracle used to label "optimal" quantum samples in the Table 2/3
/// reproductions.
StatusOr<JoResult> OptimizeDp(const Query& query);

/// Greedy construction: start from the pair with the cheapest join result,
/// then repeatedly append the relation minimising the next intermediate
/// cardinality (minimum-selectivity flavour of Steinbrunn et al.).
/// Cardinality ties prefer predicate-connected joins over cross products,
/// so the plans it seeds (e.g. the decomposition repair loop) avoid
/// avoidable cross joins.
StatusOr<JoResult> OptimizeGreedy(const Query& query);

/// Iterative improvement (Steinbrunn et al.): random restarts followed by
/// best-improvement swap moves until a local optimum is reached.
StatusOr<JoResult> OptimizeIterativeImprovement(const Query& query, Rng& rng,
                                                int restarts = 10);

}  // namespace qjo

#endif  // QJO_JO_CLASSICAL_H_

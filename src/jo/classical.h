#ifndef QJO_JO_CLASSICAL_H_
#define QJO_JO_CLASSICAL_H_

#include "jo/join_tree.h"
#include "jo/query.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// Exhaustive enumeration of all T! left-deep orders. Exact but only
/// feasible for small T; fails beyond `max_relations` (default 10).
StatusOr<JoResult> OptimizeExhaustive(const Query& query,
                                      int max_relations = 10);

/// Dynamic programming over relation subsets (DPsub restricted to left-deep
/// trees with cross products): O(2^T * T). Exact; fails beyond 25 relations
/// to bound memory. This is the ground-truth oracle used to label "optimal"
/// quantum samples in the Table 2/3 reproductions.
StatusOr<JoResult> OptimizeDp(const Query& query);

/// Greedy construction: start from the pair with the cheapest join result,
/// then repeatedly append the relation minimising the next intermediate
/// cardinality (minimum-selectivity flavour of Steinbrunn et al.).
StatusOr<JoResult> OptimizeGreedy(const Query& query);

/// Iterative improvement (Steinbrunn et al.): random restarts followed by
/// best-improvement swap moves until a local optimum is reached.
StatusOr<JoResult> OptimizeIterativeImprovement(const Query& query, Rng& rng,
                                                int restarts = 10);

}  // namespace qjo

#endif  // QJO_JO_CLASSICAL_H_

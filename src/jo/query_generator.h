#ifndef QJO_JO_QUERY_GENERATOR_H_
#define QJO_JO_QUERY_GENERATOR_H_

#include "jo/query.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// Options for the Steinbrunn-style random query generator used throughout
/// the paper's evaluation (Sec. 4.1). In `integer_log_values` mode (the
/// paper's relaxed scenario), base-10 logarithmic cardinalities and
/// selectivities are integers, which keeps the MILP/QUBO coefficients
/// integral and avoids discretisation artefacts.
struct QueryGenOptions {
  int num_relations = 3;
  QueryGraphType graph_type = QueryGraphType::kChain;

  /// Integer log10 cardinalities/selectivities (paper's Sec. 4.1 setup).
  bool integer_log_values = true;

  /// Cardinality range as log10 exponents: Card(t) = 10^u,
  /// u ~ U[min_log_card, max_log_card].
  double min_log_card = 1.0;
  double max_log_card = 4.0;

  /// Selectivity range as log10 exponents: Sel(p) = 10^-u,
  /// u ~ U[min_neg_log_sel, max_neg_log_sel].
  double min_neg_log_sel = 1.0;
  double max_neg_log_sel = 2.0;
};

/// Generates a random query with the requested graph type:
///  chain : predicates (0,1), (1,2), ..., (T-2, T-1)        — T-1 predicates
///  star  : predicates (0,i) for i = 1..T-1                  — T-1 predicates
///  cycle : chain plus closing predicate (T-1, 0)            — T   predicates
///  clique: all pairs                                        — T(T-1)/2
/// Fails for fewer than 2 relations (cycle needs >= 3).
StatusOr<Query> GenerateQuery(const QueryGenOptions& options, Rng& rng);

/// Generates a query with an explicit number of predicates placed greedily
/// chain-first (the Sec. 4.1 "varying number of predicates" scenario for
/// three-relation queries: 0..3 predicates; fewer than T-1 predicates force
/// cross products). Fails if num_predicates exceeds T(T-1)/2.
StatusOr<Query> GenerateQueryWithPredicateCount(const QueryGenOptions& options,
                                                int num_predicates, Rng& rng);

}  // namespace qjo

#endif  // QJO_JO_QUERY_GENERATOR_H_

#include "jo/join_tree.h"

#include <sstream>
#include <vector>

#include "util/check.h"

namespace qjo {

StatusOr<LeftDeepOrder> LeftDeepOrder::Create(std::vector<int> order,
                                              const Query& query) {
  if (static_cast<int>(order.size()) != query.num_relations()) {
    return Status::InvalidArgument("order must cover all relations");
  }
  std::vector<bool> seen(order.size(), false);
  for (int t : order) {
    if (t < 0 || t >= query.num_relations()) {
      return Status::InvalidArgument("order references unknown relation");
    }
    if (seen[t]) return Status::InvalidArgument("order repeats a relation");
    seen[t] = true;
  }
  return LeftDeepOrder(std::move(order));
}

std::string LeftDeepOrder::ToString(const Query& query) const {
  std::ostringstream os;
  for (int i = 0; i < size(); ++i) {
    if (i == 0) {
      os << query.relation(order_[0]).name;
    } else {
      os << " ⋈ " << query.relation(order_[i]).name;
    }
    if (i >= 1 && i + 1 < size()) {
      // Wrap the prefix for the next join.
      std::string prefix = os.str();
      os.str("");
      os << "(" << prefix << ")";
    }
  }
  return os.str();
}

CostBreakdown EvaluateCost(const Query& query, const LeftDeepOrder& order) {
  QJO_CHECK_EQ(order.size(), query.num_relations());
  CostBreakdown result;
  if (order.size() < 2) return result;
  uint64_t joined = uint64_t{1} << order[0];
  double card = query.relation(order[0]).cardinality;
  for (int i = 1; i < order.size(); ++i) {
    const int t = order[i];
    const double sel = query.SelectivityBetween(joined, t);
    card = card * query.relation(t).cardinality * sel;
    result.intermediate_cardinalities.push_back(card);
    result.total_cost += card;
    joined |= uint64_t{1} << t;
  }
  return result;
}

double Cost(const Query& query, const LeftDeepOrder& order) {
  return EvaluateCost(query, order).total_cost;
}

}  // namespace qjo

#include "jo/query.h"

#include <sstream>

#include "util/check.h"

namespace qjo {

const char* QueryGraphTypeName(QueryGraphType type) {
  switch (type) {
    case QueryGraphType::kChain:
      return "chain";
    case QueryGraphType::kStar:
      return "star";
    case QueryGraphType::kCycle:
      return "cycle";
    case QueryGraphType::kClique:
      return "clique";
  }
  return "unknown";
}

int Query::AddRelation(std::string name, double cardinality) {
  QJO_CHECK_GE(cardinality, 1.0);
  relations_.push_back(Relation{std::move(name), cardinality});
  return static_cast<int>(relations_.size()) - 1;
}

Status Query::AddPredicate(int left, int right, double selectivity) {
  if (left < 0 || left >= num_relations() || right < 0 ||
      right >= num_relations()) {
    return Status::InvalidArgument("predicate references unknown relation");
  }
  if (left == right) {
    return Status::InvalidArgument("predicate endpoints must differ");
  }
  if (!(selectivity > 0.0) || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  predicates_.push_back(Predicate{left, right, selectivity});
  return Status::Ok();
}

double Query::SelectivityBetween(uint64_t joined_mask, int t) const {
  double sel = 1.0;
  const uint64_t t_bit = uint64_t{1} << t;
  for (const Predicate& p : predicates_) {
    const uint64_t l_bit = uint64_t{1} << p.left;
    const uint64_t r_bit = uint64_t{1} << p.right;
    const bool touches_t = (l_bit == t_bit) || (r_bit == t_bit);
    const bool other_in_joined =
        (l_bit == t_bit) ? (joined_mask & r_bit) : (joined_mask & l_bit);
    if (touches_t && other_in_joined) sel *= p.selectivity;
  }
  return sel;
}

double Query::JoinCardinality(uint64_t mask) const {
  double card = 1.0;
  for (int t = 0; t < num_relations(); ++t) {
    if (mask & (uint64_t{1} << t)) card *= relations_[t].cardinality;
  }
  for (const Predicate& p : predicates_) {
    if ((mask & (uint64_t{1} << p.left)) && (mask & (uint64_t{1} << p.right))) {
      card *= p.selectivity;
    }
  }
  return card;
}

bool Query::HasInternalPredicate(uint64_t mask) const {
  for (const Predicate& p : predicates_) {
    if ((mask & (uint64_t{1} << p.left)) && (mask & (uint64_t{1} << p.right))) {
      return true;
    }
  }
  return false;
}

std::string Query::ToString() const {
  std::ostringstream os;
  os << "Query(" << num_relations() << " relations: ";
  for (int t = 0; t < num_relations(); ++t) {
    if (t > 0) os << ", ";
    os << relations_[t].name << "|" << relations_[t].cardinality;
  }
  os << "; predicates: ";
  for (int p = 0; p < num_predicates(); ++p) {
    if (p > 0) os << ", ";
    os << relations_[predicates_[p].left].name << "~"
       << relations_[predicates_[p].right].name << "@"
       << predicates_[p].selectivity;
  }
  os << ")";
  return os.str();
}

}  // namespace qjo

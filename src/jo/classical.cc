#include "jo/classical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace qjo {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

StatusOr<JoResult> OptimizeExhaustive(const Query& query, int max_relations) {
  const int t = query.num_relations();
  if (t < 2) return Status::InvalidArgument("need at least 2 relations");
  if (t > max_relations) {
    return Status::ResourceExhausted("too many relations for exhaustive");
  }
  std::vector<int> perm(t);
  std::iota(perm.begin(), perm.end(), 0);
  double best_cost = kInf;
  std::vector<int> best = perm;
  do {
    const double cost = Cost(query, LeftDeepOrder(perm));
    if (cost < best_cost) {
      best_cost = cost;
      best = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return JoResult{LeftDeepOrder(std::move(best)), best_cost};
}

StatusOr<JoResult> OptimizeDp(const Query& query) {
  const int t = query.num_relations();
  if (t < 2) return Status::InvalidArgument("need at least 2 relations");
  if (t > kMaxDpRelations) {
    // dp (double) + parent (int) tables hold 2^t + 1 entries each; past
    // the cap that silently becomes hundreds of megabytes (t = 25 would
    // allocate ~400 MB), so refuse with the estimate instead.
    const double bytes =
        static_cast<double>(sizeof(double) + sizeof(int)) *
        (std::pow(2.0, t) + 1.0);
    std::ostringstream os;
    os << "DP tables for " << t << " relations would need ~"
       << static_cast<uint64_t>(bytes / (1024.0 * 1024.0)) << " MiB ("
       << (sizeof(double) + sizeof(int)) << " bytes x 2^" << t
       << " entries); the cap is " << kMaxDpRelations << " relations";
    return Status::ResourceExhausted(os.str());
  }

  const uint64_t full = (uint64_t{1} << t) - 1;
  // dp[mask] = minimum sum of intermediate cardinalities to left-deep-join
  // exactly the relations in mask; parent[mask] = last (inner) relation.
  std::vector<double> dp(full + 1, kInf);
  std::vector<int> parent(full + 1, -1);
  // Cardinality of each subset, computed incrementally where cheap.
  for (int r = 0; r < t; ++r) dp[uint64_t{1} << r] = 0.0;

  for (uint64_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singleton
    const double mask_card = query.JoinCardinality(mask);
    for (int r = 0; r < t; ++r) {
      const uint64_t bit = uint64_t{1} << r;
      if (!(mask & bit)) continue;
      const uint64_t rest = mask ^ bit;
      if (dp[rest] == kInf) continue;
      // Appending r to any order of `rest` adds intermediate result
      // |rest ⋈ r| = JoinCardinality(mask) — order-independent.
      const double cost = dp[rest] + mask_card;
      if (cost < dp[mask]) {
        dp[mask] = cost;
        parent[mask] = r;
      }
    }
  }

  std::vector<int> order;
  uint64_t mask = full;
  while ((mask & (mask - 1)) != 0) {
    const int r = parent[mask];
    QJO_CHECK_GE(r, 0);
    order.push_back(r);
    mask ^= uint64_t{1} << r;
  }
  // The remaining singleton is the outer operand of the first join.
  for (int r = 0; r < t; ++r) {
    if (mask & (uint64_t{1} << r)) order.push_back(r);
  }
  std::reverse(order.begin(), order.end());
  return JoResult{LeftDeepOrder(std::move(order)), dp[full]};
}

StatusOr<JoResult> OptimizeGreedy(const Query& query) {
  const int t = query.num_relations();
  if (t < 2) return Status::InvalidArgument("need at least 2 relations");

  // Predicate adjacency masks: adjacency[r] has bit s set iff some
  // predicate connects r and s. Used to prefer predicate-connected joins
  // over cross products on cardinality ties.
  std::vector<uint64_t> adjacency(t, 0);
  for (const Predicate& p : query.predicates()) {
    adjacency[p.left] |= uint64_t{1} << p.right;
    adjacency[p.right] |= uint64_t{1} << p.left;
  }

  // Pick the cheapest first join. JoinCardinality depends only on the
  // unordered pair, so scanning b > a covers every candidate once.
  double best_first = kInf;
  bool best_connected = false;
  int first_outer = 0, first_inner = 1;
  for (int a = 0; a < t; ++a) {
    for (int b = a + 1; b < t; ++b) {
      const uint64_t mask = (uint64_t{1} << a) | (uint64_t{1} << b);
      const double card = query.JoinCardinality(mask);
      const bool connected = (adjacency[a] >> b) & 1;
      if (card < best_first || (card == best_first && connected &&
                                !best_connected)) {
        best_first = card;
        best_connected = connected;
        first_outer = a;
        first_inner = b;
      }
    }
  }
  std::vector<int> order = {first_outer, first_inner};
  uint64_t joined = (uint64_t{1} << first_outer) | (uint64_t{1} << first_inner);
  double total = best_first;
  while (static_cast<int>(order.size()) < t) {
    double best_card = kInf;
    bool best_rel_connected = false;
    int best_rel = -1;
    for (int r = 0; r < t; ++r) {
      if (joined & (uint64_t{1} << r)) continue;
      const double card = query.JoinCardinality(joined | (uint64_t{1} << r));
      const bool connected = (adjacency[r] & joined) != 0;
      if (card < best_card ||
          (card == best_card && connected && !best_rel_connected)) {
        best_card = card;
        best_rel_connected = connected;
        best_rel = r;
      }
    }
    QJO_CHECK_GE(best_rel, 0);
    order.push_back(best_rel);
    joined |= uint64_t{1} << best_rel;
    total += best_card;
  }
  return JoResult{LeftDeepOrder(std::move(order)), total};
}

StatusOr<JoResult> OptimizeIterativeImprovement(const Query& query, Rng& rng,
                                                int restarts) {
  const int t = query.num_relations();
  if (t < 2) return Status::InvalidArgument("need at least 2 relations");
  if (restarts < 1) return Status::InvalidArgument("restarts must be >= 1");

  double best_cost = kInf;
  std::vector<int> best;
  for (int round = 0; round < restarts; ++round) {
    std::vector<int> order(t);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);
    double cost = Cost(query, LeftDeepOrder(order));
    bool improved = true;
    while (improved) {
      improved = false;
      for (int i = 0; i < t && !improved; ++i) {
        for (int j = i + 1; j < t && !improved; ++j) {
          std::swap(order[i], order[j]);
          const double new_cost = Cost(query, LeftDeepOrder(order));
          if (new_cost + 1e-12 < cost) {
            cost = new_cost;
            improved = true;
          } else {
            std::swap(order[i], order[j]);
          }
        }
      }
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = order;
    }
  }
  return JoResult{LeftDeepOrder(std::move(best)), best_cost};
}

}  // namespace qjo

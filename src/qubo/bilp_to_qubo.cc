#include "qubo/bilp_to_qubo.h"

#include <cmath>
#include <vector>

namespace qjo {
namespace {

double RoundToStep(double value, double step) {
  return std::round(value / step) * step;
}

}  // namespace

StatusOr<QuboEncoding> ConvertBilpToQubo(
    const BilpModel& bilp, const QuboConversionOptions& options) {
  if (!(options.omega > 0.0)) {
    return Status::InvalidArgument("omega must be positive");
  }
  if (!(options.objective_weight > 0.0)) {
    return Status::InvalidArgument("objective weight must be positive");
  }

  QuboEncoding out;
  out.num_problem_variables = bilp.num_problem_variables;
  out.objective_weight = options.objective_weight;

  // Penalty weight rule of Sec. 3.4: the smallest constraint violation a
  // discretised model can exhibit is omega, contributing A * omega^2; C is
  // the total objective weight that could be "saved" by cheating.
  double total_objective = 0.0;
  for (const auto& [var, coeff] : bilp.objective) {
    (void)var;
    total_objective += std::abs(coeff);
  }
  out.penalty_weight =
      options.penalty_weight_override >= 0.0
          ? options.penalty_weight_override
          : options.objective_weight * total_objective /
                    (options.omega * options.omega) +
                options.epsilon;

  Qubo qubo(bilp.num_variables());
  const double a = out.penalty_weight;

  // H_A: A * sum_j (b_j - sum_i S_ji x_i)^2, with S and b rounded to the
  // discretisation grid so exact equality is achievable (Sec. 3.4).
  for (const BilpConstraint& c : bilp.constraints) {
    std::vector<std::pair<int, double>> terms;
    terms.reserve(c.terms.size());
    for (const auto& [var, coeff] : c.terms) {
      const double rounded = RoundToStep(coeff, options.omega);
      if (rounded != 0.0) terms.emplace_back(var, rounded);
    }
    const double b = RoundToStep(c.rhs, options.omega);
    qubo.AddOffset(a * b * b);
    for (size_t i = 0; i < terms.size(); ++i) {
      const auto& [vi, si] = terms[i];
      // Diagonal: S_i^2 x_i^2 = S_i^2 x_i; cross with -2 b S_i x_i.
      qubo.AddLinear(vi, a * (si * si - 2.0 * b * si));
      for (size_t k = i + 1; k < terms.size(); ++k) {
        const auto& [vk, sk] = terms[k];
        qubo.AddQuadratic(vi, vk, a * 2.0 * si * sk);
      }
    }
  }

  // H_B: B * c.x.
  for (const auto& [var, coeff] : bilp.objective) {
    qubo.AddLinear(var, options.objective_weight * coeff);
  }

  out.qubo = std::move(qubo);
  return out;
}

}  // namespace qjo

#ifndef QJO_QUBO_QUBO_H_
#define QJO_QUBO_QUBO_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "qubo/qubo_csr.h"
#include "util/check.h"

namespace qjo {

/// A quadratic unconstrained binary optimisation problem (Eq. (1)):
///   f(x) = offset + sum_i linear_i x_i + sum_{i<j} quadratic_ij x_i x_j,
/// x_i in {0,1}. The coefficient matrix doubles as the problem graph used
/// for minor embedding and for QAOA circuit construction.
class Qubo {
 public:
  explicit Qubo(int num_variables = 0) : linear_(num_variables, 0.0) {}

  int num_variables() const { return static_cast<int>(linear_.size()); }

  /// Accumulates into the linear coefficient of variable i.
  void AddLinear(int i, double weight);
  /// Accumulates into the quadratic coefficient of the pair {i, j}. The
  /// pair is canonicalised to i < j, so either argument order addresses
  /// the same coefficient; i == j (a self-coupling) is a programmer error.
  void AddQuadratic(int i, int j, double weight);
  /// Accumulates into the constant offset.
  void AddOffset(double weight) {
    offset_ += weight;
    csr_dirty_ = true;
  }

  double linear(int i) const {
    QJO_CHECK_GE(i, 0);
    QJO_CHECK_LT(i, num_variables());
    return linear_[i];
  }
  /// Coefficient of the pair {i, j}, in either argument order (0.0 when
  /// the variables are uncoupled). i == j is a programmer error, matching
  /// AddQuadratic.
  double quadratic(int i, int j) const;
  double offset() const { return offset_; }

  /// Number of non-zero quadratic couplings (graph edges).
  int num_quadratic_terms() const {
    return static_cast<int>(quadratic_.size());
  }

  /// All non-zero couplings as (i, j, weight) with i < j.
  std::vector<std::tuple<int, int, double>> QuadraticTerms() const;

  /// Edges of the problem graph (pairs with non-zero coupling), i < j.
  std::vector<std::pair<int, int>> Edges() const;

  /// Adjacency lists of the problem graph.
  std::vector<std::vector<int>> AdjacencyLists() const;

  /// Flat CSR view of the problem (see QuboCsr), built lazily and cached
  /// until the next mutation. NOT thread-safe while dirty: callers that
  /// share a Qubo across threads (the parallel solvers) must touch Csr()
  /// once before fanning out, after which concurrent reads are safe.
  const QuboCsr& Csr() const;

  /// Energy f(x) of an assignment (evaluated on the CSR view).
  double Energy(const std::vector<int>& assignment) const;

  /// Largest absolute coefficient (used for chain-strength heuristics).
  double MaxAbsCoefficient() const;

 private:
  static uint64_t Key(int i, int j) {
    return (static_cast<uint64_t>(i) << 32) | static_cast<uint32_t>(j);
  }

  std::vector<double> linear_;
  std::unordered_map<uint64_t, double> quadratic_;  // key(i,j) with i < j
  double offset_ = 0.0;

  // Cache of the CSR view; rebuilt on demand after mutations.
  mutable QuboCsr csr_;
  mutable bool csr_dirty_ = true;
};

}  // namespace qjo

#endif  // QJO_QUBO_QUBO_H_
